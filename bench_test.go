// Package agcm's top-level benchmark harness: one testing.B benchmark per
// table and figure of the paper, each regenerating its experiment on the
// simulated machines and reporting the headline numbers as custom metrics
// (virtual seconds per simulated day, imbalance percentages, speedups).
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Native kernel benchmarks (FFT, Laplace layouts, advection, BLAS-1) live
// next to their packages under internal/.
package agcm

import (
	"strconv"
	"strings"
	"testing"

	"agcm/internal/bench"
	"agcm/internal/experiments"
	"agcm/internal/loadbalance"
	"agcm/internal/machine"
	"agcm/internal/singlenode"
)

var benchOpt = experiments.Options{MeasuredSteps: 1}

// cellFloat parses a numeric table cell (strips % and x suffixes).
func cellFloat(b *testing.B, s string) float64 {
	b.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(s, "%"), "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("unparsable cell %q: %v", s, err)
	}
	return v
}

// benchExperiment runs one paper experiment per iteration and lets the
// caller pull metrics out of the final output.
func benchExperiment(b *testing.B, fn func(experiments.Options) (*experiments.Output, error),
	metrics func(*experiments.Output, *testing.B)) {
	b.Helper()
	var out *experiments.Output
	for i := 0; i < b.N; i++ {
		var err error
		out, err = fn(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
	}
	if metrics != nil {
		metrics(out, b)
	}
}

// BenchmarkFig1Breakdown regenerates Figure 1's component shares.  The body
// lives in internal/bench so `agcmbench -bench-json` tracks the identical
// workload.
func BenchmarkFig1Breakdown(b *testing.B) {
	bench.Fig1Breakdown(b)
}

// BenchmarkTable1PhysicsLB64 regenerates the 8x8 physics balancing table.
func BenchmarkTable1PhysicsLB64(b *testing.B) {
	benchExperiment(b, experiments.Table1, func(o *experiments.Output, b *testing.B) {
		rows := o.Tables[0].Rows
		b.ReportMetric(cellFloat(b, rows[0][3]), "imbalance-before-pct")
		b.ReportMetric(cellFloat(b, rows[len(rows)-1][3]), "imbalance-after-pct")
	})
}

// BenchmarkTable2PhysicsLB126 regenerates the 9x14 physics balancing table.
func BenchmarkTable2PhysicsLB126(b *testing.B) {
	benchExperiment(b, experiments.Table2, func(o *experiments.Output, b *testing.B) {
		rows := o.Tables[0].Rows
		b.ReportMetric(cellFloat(b, rows[0][3]), "imbalance-before-pct")
		b.ReportMetric(cellFloat(b, rows[len(rows)-1][3]), "imbalance-after-pct")
	})
}

// BenchmarkTable3PhysicsLB252 regenerates the 14x18 physics balancing table.
func BenchmarkTable3PhysicsLB252(b *testing.B) {
	benchExperiment(b, experiments.Table3, func(o *experiments.Output, b *testing.B) {
		rows := o.Tables[0].Rows
		b.ReportMetric(cellFloat(b, rows[0][3]), "imbalance-before-pct")
		b.ReportMetric(cellFloat(b, rows[len(rows)-1][3]), "imbalance-after-pct")
	})
}

// wholeCodeMetrics reports the 1x1 and 8x30 Dynamics/total numbers.
func wholeCodeMetrics(o *experiments.Output, b *testing.B) {
	rows := o.Tables[0].Rows
	first, last := rows[0], rows[len(rows)-1]
	b.ReportMetric(cellFloat(b, first[1]), "dyn-1x1-s/day")
	b.ReportMetric(cellFloat(b, last[1]), "dyn-8x30-s/day")
	b.ReportMetric(cellFloat(b, last[2]), "dyn-speedup-240")
	b.ReportMetric(cellFloat(b, last[3]), "total-8x30-s/day")
}

// BenchmarkTable4AGCMOldFilterParagon regenerates Table 4.
func BenchmarkTable4AGCMOldFilterParagon(b *testing.B) {
	benchExperiment(b, experiments.Table4, wholeCodeMetrics)
}

// BenchmarkTable5AGCMNewFilterParagon regenerates Table 5.
func BenchmarkTable5AGCMNewFilterParagon(b *testing.B) {
	benchExperiment(b, experiments.Table5, wholeCodeMetrics)
}

// BenchmarkTable6AGCMOldFilterT3D regenerates Table 6.
func BenchmarkTable6AGCMOldFilterT3D(b *testing.B) {
	benchExperiment(b, experiments.Table6, wholeCodeMetrics)
}

// BenchmarkTable7AGCMNewFilterT3D regenerates Table 7.
func BenchmarkTable7AGCMNewFilterT3D(b *testing.B) {
	benchExperiment(b, experiments.Table7, wholeCodeMetrics)
}

// filterTableMetrics reports the three variants' 8x30 costs and the
// convolution-to-balanced ratio.
func filterTableMetrics(o *experiments.Output, b *testing.B) {
	rows := o.Tables[0].Rows
	last := rows[len(rows)-1]
	conv := cellFloat(b, last[1])
	fft := cellFloat(b, last[2])
	lb := cellFloat(b, last[3])
	b.ReportMetric(conv, "conv-8x30-s/day")
	b.ReportMetric(fft, "fft-8x30-s/day")
	b.ReportMetric(lb, "fftlb-8x30-s/day")
	b.ReportMetric(conv/lb, "conv-over-lb")
}

// BenchmarkTable8FilterParagon9 regenerates Table 8.
func BenchmarkTable8FilterParagon9(b *testing.B) {
	benchExperiment(b, experiments.Table8, filterTableMetrics)
}

// BenchmarkTable9FilterT3D9 regenerates Table 9.
func BenchmarkTable9FilterT3D9(b *testing.B) {
	benchExperiment(b, experiments.Table9, filterTableMetrics)
}

// BenchmarkTable10FilterParagon15 regenerates Table 10.
func BenchmarkTable10FilterParagon15(b *testing.B) {
	benchExperiment(b, experiments.Table10, filterTableMetrics)
}

// BenchmarkTable11FilterT3D15 regenerates Table 11.
func BenchmarkTable11FilterT3D15(b *testing.B) {
	benchExperiment(b, experiments.Table11, filterTableMetrics)
}

// BenchmarkBlockArrayLaplace regenerates the Section 3.4 layout experiment
// (paper: 5.0x on the Paragon, 2.6x on the T3D).
func BenchmarkBlockArrayLaplace(b *testing.B) {
	var p, c singlenode.LayoutResult
	for i := 0; i < b.N; i++ {
		p = singlenode.ModelLaplaceLayout(machine.Paragon(), 32, 12)
		c = singlenode.ModelLaplaceLayout(machine.CrayT3D(), 32, 12)
	}
	b.ReportMetric(p.Speedup, "paragon-speedup")
	b.ReportMetric(c.Speedup, "t3d-speedup")
}

// BenchmarkAdvectionOptimization regenerates the Section 3.4 advection
// experiment (paper: about 35% on a T3D node).
func BenchmarkAdvectionOptimization(b *testing.B) {
	var r singlenode.AdvectionResult
	for i := 0; i < b.N; i++ {
		r = singlenode.ModelAdvection(machine.CrayT3D(), 90, 144, 9)
	}
	b.ReportMetric(r.Reduction*100, "t3d-reduction-pct")
}

// BenchmarkFig2RowRedistribution benches the Figures 2-3 generic row
// balancing plan for the paper's filtering workload shape.
func BenchmarkFig2RowRedistribution(b *testing.B) {
	counts := []int{216, 108, 0, 0, 0, 0, 108, 216}
	for i := 0; i < b.N; i++ {
		cs := append([]int(nil), counts...)
		loadbalance.PlanRows(cs)
	}
}

// BenchmarkFig46SchemePlanning benches the three physics balancing
// planners of Figures 4-6 on a 256-node load vector.
func BenchmarkFig46SchemePlanning(b *testing.B) {
	loads := make([]float64, 256)
	for i := range loads {
		loads[i] = float64((i*37)%100) + 1
	}
	b.Run("scheme1-shuffle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			loadbalance.CyclicShuffle(loads)
		}
	})
	b.Run("scheme2-greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			loadbalance.SortedGreedy(loads, 1)
		}
	})
	b.Run("scheme3-pairwise", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			loadbalance.Pairwise(loads, 1, 0.02, 4)
		}
	})
}

// BenchmarkWholeStepLBFFT measures one full simulated AGCM step (dynamics +
// filter + physics) on an 8x8 T3D — the end-to-end cost of the simulation
// harness itself.  The body lives in internal/bench so
// `agcmbench -bench-json` tracks the identical workload.
func BenchmarkWholeStepLBFFT(b *testing.B) {
	bench.WholeStepLBFFT(b)
}
