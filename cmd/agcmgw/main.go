// Command agcmgw is the fault-tolerant gateway daemon: an HTTP front end
// over internal/gateway that routes simulation requests across N agcmd
// backends with health probing, per-backend circuit breakers, budgeted
// retries, hedging for high-priority jobs, and degraded serves from any
// backend's result cache.
//
//	agcmgw -addr :8090 -backends http://h1:8080,http://h2:8080 -policy key-affinity
//
// Endpoints:
//
//	POST /v1/run   same body as agcmd; routed, retried, hedged
//	GET  /healthz  liveness: "ok" while the process is up
//	GET  /readyz   readiness: 200 while at least one backend is routable
//	GET  /metrics  Prometheus text format (agcmgw_* families)
//
// Structured JSON event lines (breaker transitions, ejections,
// readmissions, hedges, degraded serves) go to stderr by default; -events
// redirects them to a file or discards them with "none".
package main

import (
	"context"
	"errors"
	"flag"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"agcm/internal/gateway"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	backends := flag.String("backends", "", "comma-separated agcmd base URLs (required)")
	policy := flag.String("policy", "key-affinity", "routing policy: "+strings.Join(gateway.PolicyNames(), ", "))
	probeInterval := flag.Duration("probe-interval", 250*time.Millisecond, "active /readyz probe period")
	probeTimeout := flag.Duration("probe-timeout", time.Second, "per-probe budget")
	failThreshold := flag.Int("fail-threshold", 3, "consecutive failures that open a backend's circuit breaker")
	openFor := flag.Duration("open-for", 2*time.Second, "how long an open breaker ejects its backend before a half-open probe")
	retryMax := flag.Int("retry-max", 3, "retries per request")
	retryRatio := flag.Float64("retry-ratio", 0.2, "retry-budget tokens deposited per accepted request")
	retryBurst := flag.Float64("retry-burst", 10, "retry-budget token-bucket cap")
	backoffBase := flag.Duration("backoff-base", 25*time.Millisecond, "base retry backoff")
	backoffCap := flag.Duration("backoff-cap", time.Second, "retry backoff ceiling")
	attemptTimeout := flag.Duration("attempt-timeout", 60*time.Second, "per-attempt budget")
	hedgeDelay := flag.Duration("hedge-delay", 0, "hedge high-priority requests after this delay until a latency p95 exists (0 = hedging off)")
	seed := flag.Int64("seed", 1, "deterministic backoff-jitter seed")
	events := flag.String("events", "stderr", `event-log destination: "stderr", "none", or a file path`)
	flag.Parse()

	if *backends == "" {
		log.Fatal("agcmgw: -backends is required")
	}
	var urls []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			urls = append(urls, b)
		}
	}

	var eventsW io.Writer
	switch *events {
	case "stderr":
		eventsW = os.Stderr
	case "none", "":
	default:
		f, err := os.OpenFile(*events, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("agcmgw: opening event log: %v", err)
		}
		defer f.Close()
		eventsW = f
	}

	g, err := gateway.New(gateway.Options{
		Backends:       urls,
		Policy:         *policy,
		ProbeInterval:  *probeInterval,
		ProbeTimeout:   *probeTimeout,
		FailThreshold:  *failThreshold,
		OpenFor:        *openFor,
		RetryMax:       *retryMax,
		RetryRatio:     *retryRatio,
		RetryBurst:     *retryBurst,
		BackoffBase:    *backoffBase,
		BackoffCap:     *backoffCap,
		AttemptTimeout: *attemptTimeout,
		HedgeDelay:     *hedgeDelay,
		Seed:           *seed,
		Events:         eventsW,
	})
	if err != nil {
		log.Fatalf("agcmgw: %v", err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: g.Handler()}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	log.Printf("agcmgw: serving on %s (policy=%s backends=%d retry-max=%d hedge-delay=%s)",
		*addr, *policy, len(urls), *retryMax, *hedgeDelay)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)

	select {
	case sig := <-sigCh:
		log.Printf("agcmgw: received %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("agcmgw: http shutdown: %v", err)
		}
		g.Close()
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("agcmgw: %v", err)
		}
	}
}
