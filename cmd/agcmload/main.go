// Command agcmload is the load generator and correctness prober for agcmd.
// It replays a seeded, reproducible request mix (configurable concurrency
// and duplicate ratio) against a live daemon and verifies the serving
// layer's core promise while measuring it:
//
//   - every 200 response for a given job key is byte-identical (the cache
//     and single-flight layers may never change what a config returns),
//   - the daemon's /metrics deltas reconcile exactly with the client-side
//     tallies (hits, misses, coalesced, shed, and runs == misses).
//
// It emits a BENCH_5.json-style report (throughput, p50/p99 latency, cache
// hit ratio) and exits nonzero on any inconsistency, so it doubles as the
// CI smoke test.
package main

import (
	"bufio"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// poolConfig builds the i-th distinct request body. The pool cycles meshes
// and filters and then varies init_wind, so it is unbounded and every index
// maps to a distinct config (hence a distinct job key).
func poolConfig(i, steps int) string {
	meshes := [][2]int{{1, 1}, {1, 2}, {2, 1}, {2, 2}}
	filters := []string{
		"fft", "fft-load-balanced", "convolution-ring",
		"convolution-tree", "polar-implicit-diffusion", "none",
	}
	mesh := meshes[i%len(meshes)]
	filter := filters[(i/len(meshes))%len(filters)]
	wind := 20.0 + float64(i/(len(meshes)*len(filters)))
	return fmt.Sprintf(`{"config":{"nlon":36,"nlat":24,"nlayers":3,"machine":"paragon",`+
		`"mesh_py":%d,"mesh_px":%d,"filter":%q,"init_wind":%s},"steps":%d}`,
		mesh[0], mesh[1], filter, strconv.FormatFloat(wind, 'g', -1, 64), steps)
}

// buildSequence fixes the request mix up front: with probability dup a
// request repeats an already-issued config, otherwise it draws the next
// fresh one. Seeded, so the same flags reproduce the same mix.
func buildSequence(n int, dup float64, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	seq := make([]int, n)
	fresh := 0
	for i := range seq {
		if fresh > 0 && rng.Float64() < dup {
			seq[i] = rng.Intn(fresh)
		} else {
			seq[i] = fresh
			fresh++
		}
	}
	rng.Shuffle(n, func(i, j int) { seq[i], seq[j] = seq[j], seq[i] })
	return seq
}

// tally is the client-side view of the run, reconciled against /metrics.
type tally struct {
	mu         sync.Mutex
	byStatus   map[int]int
	byCache    map[string]int // X-Agcmd-Cache header on 200s
	bodyHash   map[string][32]byte
	latencies  []float64 // seconds, 200s only
	mismatches []string
}

func (t *tally) record(status int, cacheHeader string, key string, body []byte, elapsed time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.byStatus[status]++
	if status != http.StatusOK {
		return
	}
	t.byCache[cacheHeader]++
	t.latencies = append(t.latencies, elapsed.Seconds())
	h := sha256.Sum256(body)
	if prev, ok := t.bodyHash[key]; ok {
		if prev != h {
			t.mismatches = append(t.mismatches,
				fmt.Sprintf("key %s: response bytes changed between requests", key))
		}
		return
	}
	t.bodyHash[key] = h
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// scrapeMetrics fetches /metrics and returns the agcmd counter samples.
func scrapeMetrics(addr string) (map[string]float64, error) {
	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "agcmd_") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("bad metrics line %q", line)
		}
		out[line[:i]] = v
	}
	return out, sc.Err()
}

// benchReport is the BENCH_5.json document.
type benchReport struct {
	Note          string         `json:"note"`
	Requests      int            `json:"requests"`
	Concurrency   int            `json:"concurrency"`
	DupRatio      float64        `json:"dup_ratio"`
	Steps         int            `json:"steps"`
	Seed          int64          `json:"seed"`
	DurationS     float64        `json:"duration_s"`
	ThroughputRPS float64        `json:"throughput_rps"`
	P50Ms         float64        `json:"p50_ms"`
	P99Ms         float64        `json:"p99_ms"`
	HitRatio      float64        `json:"hit_ratio"`
	Dispositions  map[string]int `json:"dispositions"`
	StatusCounts  map[string]int `json:"status_counts"`
	DistinctKeys  int            `json:"distinct_keys"`
	RunsDelta     float64        `json:"server_runs_delta"`
	Reconciled    bool           `json:"metrics_reconciled"`
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "agcmd base URL")
	requests := flag.Int("requests", 200, "number of requests to issue")
	duration := flag.Duration("duration", 0, "optional wall-clock cutoff (0 = run the full request count)")
	concurrency := flag.Int("concurrency", 8, "concurrent client connections")
	dup := flag.Float64("dup", 0.5, "fraction of requests repeating an already-issued config")
	steps := flag.Int("steps", 1, "measured steps per simulation request")
	seed := flag.Int64("seed", 1, "mix seed (same seed, same request mix)")
	out := flag.String("out", "BENCH_5.json", "report path ('-' for stdout)")
	flag.Parse()

	seq := buildSequence(*requests, *dup, *seed)
	before, err := scrapeMetrics(*addr)
	if err != nil {
		log.Fatalf("agcmload: initial metrics scrape: %v", err)
	}

	t := &tally{
		byStatus: make(map[int]int),
		byCache:  make(map[string]int),
		bodyHash: make(map[string][32]byte),
	}
	var next atomic.Int64
	deadline := time.Time{}
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(seq) {
					return
				}
				if !deadline.IsZero() && time.Now().After(deadline) {
					return
				}
				body := poolConfig(seq[i], *steps)
				t0 := time.Now()
				resp, err := http.Post(*addr+"/v1/run", "application/json", strings.NewReader(body))
				if err != nil {
					log.Fatalf("agcmload: request %d: %v", i, err)
				}
				raw, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					log.Fatalf("agcmload: reading response %d: %v", i, err)
				}
				elapsed := time.Since(t0)
				key := ""
				if resp.StatusCode == http.StatusOK {
					var parsed struct {
						Key string `json:"key"`
					}
					if err := json.Unmarshal(raw, &parsed); err != nil || parsed.Key == "" {
						log.Fatalf("agcmload: response %d has no key: %v", i, err)
					}
					key = parsed.Key
				}
				t.record(resp.StatusCode, resp.Header.Get("X-Agcmd-Cache"), key, raw, elapsed)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := scrapeMetrics(*addr)
	if err != nil {
		log.Fatalf("agcmload: final metrics scrape: %v", err)
	}
	delta := func(name string) float64 { return after[name] - before[name] }

	// Reconcile: the daemon's counters must agree exactly with what this
	// client observed (it assumes it is the only client meanwhile).
	failures := append([]string(nil), t.mismatches...)
	reconcile := func(metric string, observed int) {
		if got := delta(metric); got != float64(observed) {
			failures = append(failures,
				fmt.Sprintf("%s advanced by %g, client observed %d", metric, got, observed))
		}
	}
	reconcile(`agcmd_requests_total{result="hit"}`, t.byCache["hit"])
	reconcile(`agcmd_requests_total{result="miss"}`, t.byCache["miss"])
	reconcile(`agcmd_requests_total{result="coalesced"}`, t.byCache["coalesced"])
	reconcile(`agcmd_requests_total{result="shed"}`, t.byStatus[http.StatusTooManyRequests])
	reconcile(`agcmd_runs_total`, t.byCache["miss"]) // every miss runs exactly once

	sort.Float64s(t.latencies)
	issued := 0
	for _, n := range t.byStatus {
		issued += n
	}
	okCount := t.byStatus[http.StatusOK]
	hits := t.byCache["hit"] + t.byCache["coalesced"]
	rep := benchReport{
		Note: "agcmd serving benchmark: latency/throughput are host-dependent; " +
			"dispositions and reconciliation are deterministic for a given mix and pool size",
		Requests:      issued,
		Concurrency:   *concurrency,
		DupRatio:      *dup,
		Steps:         *steps,
		Seed:          *seed,
		DurationS:     elapsed.Seconds(),
		ThroughputRPS: float64(okCount) / elapsed.Seconds(),
		P50Ms:         percentile(t.latencies, 0.50) * 1000,
		P99Ms:         percentile(t.latencies, 0.99) * 1000,
		HitRatio:      float64(hits) / float64(max(okCount, 1)),
		Dispositions:  t.byCache,
		StatusCounts:  statusKeys(t.byStatus),
		DistinctKeys:  len(t.bodyHash),
		RunsDelta:     delta("agcmd_runs_total"),
		Reconciled:    len(failures) == 0,
	}
	raw, _ := json.MarshalIndent(rep, "", "  ")
	raw = append(raw, '\n')
	if *out == "-" {
		os.Stdout.Write(raw)
	} else if err := os.WriteFile(*out, raw, 0o644); err != nil {
		log.Fatalf("agcmload: writing %s: %v", *out, err)
	}

	fmt.Fprintf(os.Stderr, "agcmload: %d requests in %.2fs (%.1f ok-rps), %d distinct keys, hit ratio %.2f\n",
		issued, elapsed.Seconds(), rep.ThroughputRPS, rep.DistinctKeys, rep.HitRatio)
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "agcmload: INCONSISTENT: %s\n", f)
		}
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "agcmload: all responses per-key byte-identical; metrics reconcile\n")
}

func statusKeys(m map[int]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[strconv.Itoa(k)] = v
	}
	return out
}
