// Command agcmload is the load generator and correctness prober for agcmd
// and the agcmgw gateway.  It has two front ends over one measurement core:
//
//   - the legacy mix (default): a seeded, reproducible request mix with
//     configurable concurrency, duplicate ratio, and optional Zipf-skewed
//     key reuse (internal/workload's Sequence and PoolBody),
//   - the workload engine (-spec spec.json): a declarative workload —
//     arrival process, diurnal modulation, SLO class mix, Zipf config
//     popularity — generated deterministically and dispatched open-loop at
//     its virtual arrival times (compressed by -timescale).  -record writes
//     the generated schedule as a trace; -replay dispatches a recorded
//     trace byte-for-byte; -dump-spec prints the canonicalized spec.
//
// Either way it verifies the serving layer's core promise while measuring:
//
//   - every 200 response for a given job key is byte-identical (the cache,
//     single-flight, and — through the gateway — retry/hedge/degraded
//     layers may never change what a config returns),
//   - the daemon's /metrics deltas reconcile with the client-side tallies.
//
// Against agcmd (-target agcmd, the default) reconciliation is exact:
// hits, misses, coalesced, shed, and runs == misses.  Against a gateway
// (-target gateway, with -backends naming the agcmd members) it checks the
// cluster ledger: the gateway's client-edge counters must match the
// client's view exactly, and each backend's own served count may exceed
// the gateway's received count only by the attempts the gateway abandoned
// (hedge losers, timeouts) or lost in transport.
//
// 429 responses carry Retry-After; -retry429 makes the client honor it
// (sleep, then reissue the same request) instead of just recording the
// shed.  Every response, including retried ones, is tallied so the ledgers
// still balance.
//
// It emits a BENCH_5.json-style report (throughput, p50/p99 latency, cache
// hit ratio, and in gateway mode the retry/hedge/breaker ledger) and exits
// nonzero on any inconsistency, so it doubles as the CI smoke test.
package main

import (
	"bufio"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"agcm/internal/server"
	"agcm/internal/workload"
)

// tally is the client-side view of the run, reconciled against /metrics.
type tally struct {
	mu         sync.Mutex
	byStatus   map[int]int
	byCache    map[string]int // X-Agcmd-Cache header on 200s
	bodyHash   map[string][32]byte
	latencies  []float64 // seconds, 200s only
	mismatches []string
	retried429 int
	// Per-SLO-class ledger (spec mode): issued counts every HTTP issue,
	// reissues included, mirroring the server's validated-request counter;
	// latencies holds 200s only.
	classIssued    map[string]int
	classLatencies map[string][]float64
}

func newTally() *tally {
	return &tally{
		byStatus:       make(map[int]int),
		byCache:        make(map[string]int),
		bodyHash:       make(map[string][32]byte),
		classIssued:    make(map[string]int),
		classLatencies: make(map[string][]float64),
	}
}

func (t *tally) record(class string, status int, cacheHeader string, key string, body []byte, elapsed time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.byStatus[status]++
	t.classIssued[class]++
	if status != http.StatusOK {
		return
	}
	t.byCache[cacheHeader]++
	t.latencies = append(t.latencies, elapsed.Seconds())
	t.classLatencies[class] = append(t.classLatencies[class], elapsed.Seconds())
	h := sha256.Sum256(body)
	if prev, ok := t.bodyHash[key]; ok {
		if prev != h {
			t.mismatches = append(t.mismatches,
				fmt.Sprintf("key %s: response bytes changed between requests", key))
		}
		return
	}
	t.bodyHash[key] = h
}

// responseSetSHA256 hashes the run's key→body-hash set in sorted order: two
// runs that produced the same bytes for the same keys hash identically, no
// matter the interleaving — the replay-determinism fingerprint.
func (t *tally) responseSetSHA256() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	keys := make([]string, 0, len(t.bodyHash))
	for k := range t.bodyHash {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		bh := t.bodyHash[k]
		fmt.Fprintf(h, "%s %x\n", k, bh)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

func (t *tally) noteRetry429() {
	t.mu.Lock()
	t.retried429++
	t.mu.Unlock()
}

// issuer issues one request (plus its 429 reissues) and records the outcome;
// both the legacy worker pool and the open-loop dispatcher run through it.
type issuer struct {
	addr      string
	wantFrame bool
	retry429  int
	t         *tally
}

func (c *issuer) issue(i int, class, body string) {
	for attempt := 0; ; attempt++ {
		t0 := time.Now()
		req, err := http.NewRequest(http.MethodPost, c.addr+"/v1/run", strings.NewReader(body))
		if err != nil {
			log.Fatalf("agcmload: request %d: %v", i, err)
		}
		req.Header.Set("Content-Type", "application/json")
		if c.wantFrame {
			req.Header.Set("Accept", server.FrameContentType)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			log.Fatalf("agcmload: request %d: %v", i, err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			log.Fatalf("agcmload: reading response %d: %v", i, err)
		}
		elapsed := time.Since(t0)
		key := ""
		if resp.StatusCode == http.StatusOK {
			// In frame mode the byte-identity hash covers the raw frame; the
			// key is parsed from the embedded JSON section, which every valid
			// frame must carry.
			jsonBody := raw
			if c.wantFrame {
				if ct := resp.Header.Get("Content-Type"); ct != server.FrameContentType {
					log.Fatalf("agcmload: response %d content-type %q, want %q", i, ct, server.FrameContentType)
				}
				if jsonBody, err = server.JSONBody(raw); err != nil {
					log.Fatalf("agcmload: response %d is not a valid frame: %v", i, err)
				}
			}
			var parsed struct {
				Key string `json:"key"`
			}
			if err := json.Unmarshal(jsonBody, &parsed); err != nil || parsed.Key == "" {
				log.Fatalf("agcmload: response %d has no key: %v", i, err)
			}
			key = parsed.Key
		}
		c.t.record(class, resp.StatusCode, resp.Header.Get("X-Agcmd-Cache"), key, raw, elapsed)
		if resp.StatusCode != http.StatusTooManyRequests || attempt >= c.retry429 {
			return
		}
		// Honor the server's own backpressure estimate before reissuing; the
		// shed above is already tallied, so the ledgers still balance.
		c.t.noteRetry429()
		time.Sleep(retryAfterSeconds(resp.Header))
	}
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// scrapeMetrics fetches /metrics and returns the counter samples whose
// family carries the given prefix ("agcmd_" or "agcmgw_").
func scrapeMetrics(addr, prefix string) (map[string]float64, error) {
	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("bad metrics line %q", line)
		}
		out[line[:i]] = v
	}
	return out, sc.Err()
}

// deltaSum sums (after − before) over every sample whose name starts with
// prefix, skipping samples whose name contains any exclude substring.
// Iteration order is irrelevant: addition commutes.
func deltaSum(before, after map[string]float64, prefix string, exclude ...string) float64 {
	var s float64
	for k, v := range after {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		skip := false
		for _, e := range exclude {
			if strings.Contains(k, e) {
				skip = true
				break
			}
		}
		if !skip {
			s += v - before[k]
		}
	}
	return s
}

// retryAfterSeconds parses a Retry-After header, defaulting and capping so
// a misbehaving server cannot park the client forever.
func retryAfterSeconds(h http.Header) time.Duration {
	secs := 1
	if v := h.Get("Retry-After"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 {
			secs = n
		}
	}
	if secs > 5 {
		secs = 5
	}
	return time.Duration(secs) * time.Second
}

// backendRecon is one backend's side of the cluster ledger.
type backendRecon struct {
	// Served is the backend's own /v1/run disposition count (its
	// agcmd_requests_total delta, cache peeks excluded).
	Served float64 `json:"served"`
	// GatewayReceived is how many responses the gateway fully read from it.
	GatewayReceived float64 `json:"gateway_received"`
	// Canceled and TransportErrors bound the allowed gap: an abandoned or
	// transport-failed attempt may have been served without being received.
	Canceled        float64 `json:"canceled"`
	TransportErrors float64 `json:"transport_errors"`
	// Restarted marks a backend whose counters regressed mid-run (the
	// process died and came back): its ledger is unverifiable for this
	// window and is skipped when -allow-restart is set.
	Restarted bool `json:"restarted,omitempty"`
}

// gatewayStats is the gateway-mode section of the report.
type gatewayStats struct {
	Policy             string                  `json:"policy"`
	Retries            float64                 `json:"retries"`
	RetryExhausted     float64                 `json:"retry_exhausted"`
	HedgesLaunched     float64                 `json:"hedges_launched"`
	HedgesWon          float64                 `json:"hedges_won"`
	HedgesLost         float64                 `json:"hedges_lost"`
	Degraded           float64                 `json:"degraded"`
	BreakerTransitions float64                 `json:"breaker_transitions"`
	PerBackend         map[string]backendRecon `json:"per_backend"`
}

// classLatency is one SLO class's client-side view in spec mode.
type classLatency struct {
	Issued int     `json:"issued"` // HTTP issues, reissues included
	OK     int     `json:"ok"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

// specStats is the workload-engine section of the report.
type specStats struct {
	Name string `json:"name"`
	// SpecSHA256 addresses the canonical spec; ScheduleSHA256 addresses the
	// generated (or replayed) trace bytes — same spec, same schedule hash.
	SpecSHA256     string `json:"spec_sha256"`
	ScheduleSHA256 string `json:"schedule_sha256"`
	Timescale      float64 `json:"timescale"`
	Replayed       bool    `json:"replayed,omitempty"`
	// ResponseSetSHA256 fingerprints the key→body-hash set: two replays of
	// the same trace against fresh daemons must produce the same value.
	ResponseSetSHA256 string                  `json:"response_set_sha256"`
	PerClass          map[string]classLatency `json:"per_class"`
}

// benchReport is the BENCH_5.json / BENCH_6.json document.
type benchReport struct {
	Note          string         `json:"note"`
	Target        string         `json:"target"`
	Requests      int            `json:"requests"`
	Concurrency   int            `json:"concurrency"`
	DupRatio      float64        `json:"dup_ratio"`
	Zipf          float64        `json:"zipf,omitempty"`
	Steps         int            `json:"steps"`
	Seed          int64          `json:"seed"`
	Accept        string         `json:"accept,omitempty"`
	DurationS     float64        `json:"duration_s"`
	ThroughputRPS float64        `json:"throughput_rps"`
	P50Ms         float64        `json:"p50_ms"`
	P99Ms         float64        `json:"p99_ms"`
	HitRatio      float64        `json:"hit_ratio"`
	Dispositions  map[string]int `json:"dispositions"`
	StatusCounts  map[string]int `json:"status_counts"`
	DistinctKeys  int            `json:"distinct_keys"`
	Retried429    int            `json:"retried_429"`
	RunsDelta     float64        `json:"server_runs_delta"`
	Reconciled    bool           `json:"metrics_reconciled"`
	Gateway       *gatewayStats  `json:"gateway,omitempty"`
	Spec          *specStats     `json:"spec,omitempty"`
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "agcmd or agcmgw base URL")
	target := flag.String("target", "agcmd", `what -addr points at: "agcmd" (exact cache reconciliation) or "gateway" (cluster ledger reconciliation)`)
	backendsFlag := flag.String("backends", "", "comma-separated agcmd base URLs behind the gateway (gateway mode)")
	policy := flag.String("policy", "", "routing policy label recorded in the report (gateway mode)")
	requests := flag.Int("requests", 200, "number of requests to issue")
	duration := flag.Duration("duration", 0, "optional wall-clock cutoff (0 = run the full request count)")
	concurrency := flag.Int("concurrency", 8, "concurrent client connections")
	dup := flag.Float64("dup", 0.5, "fraction of requests repeating an already-issued config")
	zipf := flag.Float64("zipf", 0, "Zipf exponent for repeated-config draws (> 1 skews reuse toward hot keys; 0 = uniform)")
	steps := flag.Int("steps", 1, "measured steps per simulation request")
	seed := flag.Int64("seed", 1, "mix seed (same seed, same request mix)")
	retry429 := flag.Int("retry429", 0, "times to honor a 429's Retry-After and reissue the request (0 = record the shed and move on)")
	allowRestart := flag.Bool("allow-restart", false, "tolerate backend counter resets (a member was killed and restarted mid-run); its per-backend ledger is skipped, everything else still reconciles")
	accept := flag.String("accept", "json", `response encoding to request: "json" or "frame" (sends Accept: application/x-agcm-frame; every 200 must be a well-formed frame whose embedded JSON section carries the key)`)
	out := flag.String("out", "BENCH_5.json", "report path ('-' for stdout)")
	specPath := flag.String("spec", "", "workload spec JSON: generate and dispatch its schedule instead of the legacy mix")
	replayPath := flag.String("replay", "", "recorded trace: dispatch its requests byte-for-byte instead of generating")
	recordPath := flag.String("record", "", "write the dispatched schedule as a replayable trace before running")
	dumpSpec := flag.Bool("dump-spec", false, "print the canonicalized spec (requires -spec or -replay) and exit")
	timescale := flag.Float64("timescale", 1, "virtual-to-wall time compression for -spec/-replay pacing (2 = dispatch twice as fast)")
	flag.Parse()

	if *target != "agcmd" && *target != "gateway" {
		log.Fatalf("agcmload: unknown -target %q (want agcmd or gateway)", *target)
	}
	if *accept != "json" && *accept != "frame" {
		log.Fatalf("agcmload: unknown -accept %q (want json or frame)", *accept)
	}
	if *specPath != "" && *replayPath != "" {
		log.Fatal("agcmload: -spec and -replay are mutually exclusive")
	}
	if *timescale <= 0 {
		log.Fatalf("agcmload: -timescale %g out of range (must be > 0)", *timescale)
	}

	// Workload-engine mode: load the schedule before touching the network so
	// a bad spec or trace fails fast.
	var sched *workload.Schedule
	replayed := false
	switch {
	case *replayPath != "":
		f, err := os.Open(*replayPath)
		if err != nil {
			log.Fatalf("agcmload: %v", err)
		}
		if sched, err = workload.ReadTrace(f); err != nil {
			log.Fatalf("agcmload: reading trace %s: %v", *replayPath, err)
		}
		f.Close()
		replayed = true
	case *specPath != "":
		raw, err := os.ReadFile(*specPath)
		if err != nil {
			log.Fatalf("agcmload: %v", err)
		}
		spec, err := workload.ParseSpec(raw)
		if err != nil {
			log.Fatalf("agcmload: parsing spec %s: %v", *specPath, err)
		}
		if sched, err = workload.Generate(spec); err != nil {
			log.Fatalf("agcmload: generating schedule: %v", err)
		}
	}
	if *dumpSpec {
		if sched == nil {
			log.Fatal("agcmload: -dump-spec needs -spec or -replay")
		}
		canonical, err := sched.Spec.CanonicalJSON()
		if err != nil {
			log.Fatalf("agcmload: %v", err)
		}
		os.Stdout.Write(append(canonical, '\n'))
		return
	}
	if *recordPath != "" {
		if sched == nil {
			log.Fatal("agcmload: -record needs -spec or -replay")
		}
		f, err := os.Create(*recordPath)
		if err != nil {
			log.Fatalf("agcmload: %v", err)
		}
		if err := workload.WriteTrace(f, sched); err != nil {
			log.Fatalf("agcmload: writing trace %s: %v", *recordPath, err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("agcmload: closing trace %s: %v", *recordPath, err)
		}
	}
	wantFrame := *accept == "frame"
	var backends []string
	if *target == "gateway" {
		for _, b := range strings.Split(*backendsFlag, ",") {
			if b = strings.TrimSpace(b); b != "" {
				backends = append(backends, strings.TrimRight(b, "/"))
			}
		}
		if len(backends) == 0 {
			log.Fatal("agcmload: gateway mode needs -backends")
		}
	}
	prefix := "agcmd_"
	if *target == "gateway" {
		prefix = "agcmgw_"
	}

	before, err := scrapeMetrics(*addr, prefix)
	if err != nil {
		log.Fatalf("agcmload: initial metrics scrape: %v", err)
	}
	beforeBackends := make([]map[string]float64, len(backends))
	for i, b := range backends {
		if beforeBackends[i], err = scrapeMetrics(b, "agcmd_"); err != nil {
			log.Fatalf("agcmload: initial backend scrape %s: %v", b, err)
		}
	}

	t := newTally()
	is := &issuer{addr: *addr, wantFrame: wantFrame, retry429: *retry429, t: t}
	deadline := time.Time{}
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}
	start := time.Now()
	if sched != nil {
		// Open-loop dispatch: one goroutine per request, launched at its
		// virtual arrival time compressed by -timescale.  The dispatcher
		// sleeps between launches (arrival times are non-decreasing), so a
		// slow server cannot slow the arrival process down — that is the
		// point of open-loop load.
		var wg sync.WaitGroup
		for _, r := range sched.Requests {
			at := time.Duration(float64(r.AtUS) / *timescale * float64(time.Microsecond))
			if d := time.Until(start.Add(at)); d > 0 {
				time.Sleep(d)
			}
			if !deadline.IsZero() && time.Now().After(deadline) {
				break
			}
			wg.Add(1)
			go func(r workload.Request) {
				defer wg.Done()
				is.issue(r.Seq, r.Class, r.Body)
			}(r)
		}
		wg.Wait()
	} else {
		seq := workload.Sequence(*requests, *dup, *zipf, *seed)
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < *concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(seq) {
						return
					}
					if !deadline.IsZero() && time.Now().After(deadline) {
						return
					}
					// Legacy bodies carry no priority or slo field, so the
					// server classes every one of them batch.
					is.issue(i, "batch", workload.PoolBody(seq[i], *steps))
				}
			}()
		}
		wg.Wait()
	}
	elapsed := time.Since(start)

	after, err := scrapeMetrics(*addr, prefix)
	if err != nil {
		log.Fatalf("agcmload: final metrics scrape: %v", err)
	}
	afterBackends := make([]map[string]float64, len(backends))
	for i, b := range backends {
		if afterBackends[i], err = scrapeMetrics(b, "agcmd_"); err != nil {
			log.Fatalf("agcmload: final backend scrape %s: %v", b, err)
		}
	}
	delta := func(name string) float64 { return after[name] - before[name] }

	// Reconcile: the daemon's counters must agree with what this client
	// observed (it assumes it is the only client meanwhile).
	failures := append([]string(nil), t.mismatches...)
	reconcile := func(metric string, observed int) {
		if got := delta(metric); got != float64(observed) {
			failures = append(failures,
				fmt.Sprintf("%s advanced by %g, client observed %d", metric, got, observed))
		}
	}

	var gwStats *gatewayStats
	var runsDelta float64
	if *target == "agcmd" {
		reconcile(`agcmd_requests_total{result="hit"}`, t.byCache["hit"])
		reconcile(`agcmd_requests_total{result="miss"}`, t.byCache["miss"])
		reconcile(`agcmd_requests_total{result="coalesced"}`, t.byCache["coalesced"])
		reconcile(`agcmd_requests_total{result="shed"}`, t.byStatus[http.StatusTooManyRequests])
		reconcile(`agcmd_runs_total`, t.byCache["miss"]) // every miss runs exactly once
		runsDelta = delta("agcmd_runs_total")
	} else {
		// Client edge: the gateway's outcome counters must match the client's
		// status tallies exactly — nothing accepted may go unaccounted.
		ok200 := t.byStatus[http.StatusOK]
		shed, errs, rejected := 0, 0, 0
		for status, n := range t.byStatus {
			switch {
			case status == http.StatusTooManyRequests ||
				status == http.StatusBadGateway || status == http.StatusServiceUnavailable:
				shed += n
			case status >= 500:
				errs += n
			case status >= 400:
				rejected += n
			}
		}
		okDelta := delta(`agcmgw_requests_total{result="ok"}`) + delta(`agcmgw_requests_total{result="degraded"}`)
		if okDelta != float64(ok200) {
			failures = append(failures, fmt.Sprintf("gateway ok+degraded advanced by %g, client saw %d 200s", okDelta, ok200))
		}
		reconcile(`agcmgw_requests_total{result="shed"}`, shed)
		reconcile(`agcmgw_requests_total{result="error"}`, errs)
		reconcile(`agcmgw_requests_total{result="rejected"}`, rejected)

		// Cluster ledger: per backend, what it served may exceed what the
		// gateway fully received only by abandoned or transport-failed
		// attempts (hedge losers read to completion appear on both sides).
		perBackend := make(map[string]backendRecon, len(backends))
		for i, b := range backends {
			served := deltaSum(beforeBackends[i], afterBackends[i],
				"agcmd_requests_total{", "peek_hit", "peek_miss")
			received := deltaSum(before, after,
				`agcmgw_backend_responses_total{backend="`+b+`"`)
			canceled := deltaSum(before, after,
				`agcmgw_backend_canceled_total{backend="`+b+`"`)
			transport := deltaSum(before, after,
				`agcmgw_backend_transport_errors_total{backend="`+b+`"`)
			diff := served - received
			// A monotonic counter going backwards means the process restarted;
			// a negative gap is the same signal seen through the ledger.
			regressed := afterBackends[i]["agcmd_runs_total"] < beforeBackends[i]["agcmd_runs_total"]
			rec := backendRecon{
				Served: served, GatewayReceived: received,
				Canceled: canceled, TransportErrors: transport,
			}
			switch {
			case *allowRestart && (regressed || diff < 0):
				rec.Restarted = true
			case diff < 0 || diff > canceled+transport:
				failures = append(failures, fmt.Sprintf(
					"backend %s served %g but gateway received %g (allowed gap 0..%g)",
					b, served, received, canceled+transport))
			}
			perBackend[b] = rec
			runsDelta += afterBackends[i]["agcmd_runs_total"] - beforeBackends[i]["agcmd_runs_total"]
		}
		gwStats = &gatewayStats{
			Policy:             *policy,
			Retries:            delta("agcmgw_retries_total"),
			RetryExhausted:     delta("agcmgw_retry_budget_exhausted_total"),
			HedgesLaunched:     delta(`agcmgw_hedges_total{result="launched"}`),
			HedgesWon:          delta(`agcmgw_hedges_total{result="won"}`),
			HedgesLost:         delta(`agcmgw_hedges_total{result="lost"}`),
			Degraded:           delta(`agcmgw_requests_total{result="degraded"}`),
			BreakerTransitions: deltaSum(before, after, "agcmgw_breaker_transitions_total{"),
			PerBackend:         perBackend,
		}
	}

	var spStats *specStats
	if sched != nil {
		// Per-class ledger: the edge the client talked to counts every
		// validated request by class (reissues included), so its per-class
		// deltas must match the client's issue counts exactly.
		classFamily := "agcmd_class_requests_total"
		if *target == "gateway" {
			classFamily = "agcmgw_class_requests_total"
		}
		perClass := make(map[string]classLatency)
		for _, class := range sched.Classes() {
			reconcile(fmt.Sprintf(`%s{class=%q}`, classFamily, class), t.classIssued[class])
			lat := append([]float64(nil), t.classLatencies[class]...)
			sort.Float64s(lat)
			perClass[class] = classLatency{
				Issued: t.classIssued[class],
				OK:     len(lat),
				P50Ms:  percentile(lat, 0.50) * 1000,
				P95Ms:  percentile(lat, 0.95) * 1000,
				P99Ms:  percentile(lat, 0.99) * 1000,
			}
		}
		schedHash, err := sched.Hash()
		if err != nil {
			log.Fatalf("agcmload: hashing schedule: %v", err)
		}
		spStats = &specStats{
			Name:              sched.Spec.Name,
			SpecSHA256:        mustSpecHash(sched.Spec),
			ScheduleSHA256:    schedHash,
			Timescale:         *timescale,
			Replayed:          replayed,
			ResponseSetSHA256: t.responseSetSHA256(),
			PerClass:          perClass,
		}
	}

	sort.Float64s(t.latencies)
	issued := 0
	for _, n := range t.byStatus {
		issued += n
	}
	okCount := t.byStatus[http.StatusOK]
	hits := t.byCache["hit"] + t.byCache["coalesced"]
	rep := benchReport{
		Note: "agcm serving benchmark: latency/throughput are host-dependent; " +
			"dispositions and reconciliation are deterministic for a given mix and pool size",
		Target:        *target,
		Requests:      issued,
		Concurrency:   *concurrency,
		DupRatio:      *dup,
		Zipf:          *zipf,
		Steps:         *steps,
		Seed:          *seed,
		Accept:        *accept,
		DurationS:     elapsed.Seconds(),
		ThroughputRPS: float64(okCount) / elapsed.Seconds(),
		P50Ms:         percentile(t.latencies, 0.50) * 1000,
		P99Ms:         percentile(t.latencies, 0.99) * 1000,
		HitRatio:      float64(hits) / float64(max(okCount, 1)),
		Dispositions:  t.byCache,
		StatusCounts:  statusKeys(t.byStatus),
		DistinctKeys:  len(t.bodyHash),
		Retried429:    t.retried429,
		RunsDelta:     runsDelta,
		Reconciled:    len(failures) == 0,
		Gateway:       gwStats,
		Spec:          spStats,
	}
	raw, _ := json.MarshalIndent(rep, "", "  ")
	raw = append(raw, '\n')
	if *out == "-" {
		os.Stdout.Write(raw)
	} else if err := os.WriteFile(*out, raw, 0o644); err != nil {
		log.Fatalf("agcmload: writing %s: %v", *out, err)
	}

	fmt.Fprintf(os.Stderr, "agcmload: %d requests in %.2fs (%.1f ok-rps), %d distinct keys, hit ratio %.2f\n",
		issued, elapsed.Seconds(), rep.ThroughputRPS, rep.DistinctKeys, rep.HitRatio)
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "agcmload: INCONSISTENT: %s\n", f)
		}
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "agcmload: all responses per-key byte-identical; metrics reconcile\n")
}

func mustSpecHash(s workload.Spec) string {
	h, err := s.Hash()
	if err != nil {
		log.Fatalf("agcmload: hashing spec: %v", err)
	}
	return h
}

func statusKeys(m map[int]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[strconv.Itoa(k)] = v
	}
	return out
}
