// Command lbsim is a stand-alone load-balancing simulator in the spirit of
// the paper's Section 3.4 methodology: feed it a load distribution (or let
// it measure one from the simulated AGCM physics) and watch the three
// schemes balance it.
//
//	lbsim -loads 65,24,38,15 -scheme pairwise -iters 2
//	lbsim -mesh 8x8 -scheme pairwise -iters 2    # loads from simulated physics
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"agcm/internal/core"
	"agcm/internal/grid"
	"agcm/internal/loadbalance"
	"agcm/internal/machine"
	"agcm/internal/physics"
	"agcm/internal/stats"
)

func main() {
	loadsStr := flag.String("loads", "", "comma-separated initial loads (e.g. the paper's 65,24,38,15)")
	meshStr := flag.String("mesh", "", "measure loads from simulated physics on this PyxPx T3D mesh")
	scheme := flag.String("scheme", "pairwise", "scheme: shuffle, greedy or pairwise")
	iters := flag.Int("iters", 2, "pairwise iterations")
	gran := flag.Float64("granularity", 1, "transfer granularity (0 = continuous)")
	flag.Parse()

	var loads []float64
	switch {
	case *loadsStr != "":
		for _, s := range strings.Split(*loadsStr, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				fatal(fmt.Errorf("bad load %q: %w", s, err))
			}
			loads = append(loads, v)
		}
	case *meshStr != "":
		var py, px int
		if _, err := fmt.Sscanf(strings.ToLower(*meshStr), "%dx%d", &py, &px); err != nil {
			fatal(fmt.Errorf("invalid mesh %q", *meshStr))
		}
		rep, err := core.Run(core.Config{
			Spec:    grid.TwoByTwoPointFive(9),
			Machine: machine.CrayT3D(),
			MeshPy:  py, MeshPx: px,
			Filter:        core.FilterFFTBalanced,
			PhysicsScheme: physics.None,
		}, 3)
		if err != nil {
			fatal(err)
		}
		loads = rep.PhysicsLoads
		fmt.Printf("Measured physics loads (s/simulated day) on a %dx%d Cray T3D mesh\n\n", py, px)
	default:
		loads = []float64{65, 24, 38, 15} // the paper's Figure 5/6 example
		fmt.Println("Using the paper's four-node example: 65, 24, 38, 15")
	}

	switch *scheme {
	case "pairwise":
		hist := loadbalance.Pairwise(loads, *gran, 0, *iters)
		tbl := &stats.Table{Header: []string{"Iteration", "Max load", "Min load", "% imbalance", "Exchanges"}}
		for _, h := range hist {
			tbl.AddRow(fmt.Sprintf("%d", h.Iteration),
				stats.Seconds(h.MaxLoad), stats.Seconds(h.MinLoad),
				stats.Percent(h.Imbalance), fmt.Sprintf("%d", len(h.Moves)))
		}
		fmt.Print(tbl.Render())
	case "greedy", "shuffle":
		var moves []loadbalance.Move
		if *scheme == "greedy" {
			moves = loadbalance.SortedGreedy(loads, *gran)
		} else {
			moves = loadbalance.CyclicShuffle(loads)
		}
		after := loadbalance.Apply(loads, moves)
		msgs, vol := loadbalance.PlanCost(moves)
		fmt.Printf("before: imbalance %s\n", stats.Percent(loadbalance.Imbalance(loads)))
		fmt.Printf("after:  imbalance %s  (%d messages, %.1f load units moved)\n",
			stats.Percent(loadbalance.Imbalance(after)), msgs, vol)
		for _, m := range moves {
			fmt.Printf("  move %.1f from node %d to node %d\n", m.Amount, m.Src, m.Dst)
		}
	default:
		fatal(fmt.Errorf("unknown scheme %q", *scheme))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lbsim:", err)
	os.Exit(2)
}
