// Command agcmbench regenerates the paper's tables and figures on the
// simulated Paragon and T3D machines.
//
//	agcmbench -experiment all           # everything, in paper order
//	agcmbench -experiment table8        # one table
//	agcmbench -list                     # valid experiment names
//	agcmbench -bench-json BENCH.json    # host-performance regression report
//	agcmbench -calibrate BENCH_10.json  # roofline observe-predict-calibrate loop
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"agcm/internal/bench"
	"agcm/internal/experiments"
)

func main() {
	expName := flag.String("experiment", "all", "experiment id or 'all'")
	steps := flag.Int("steps", 3, "measured time steps per run")
	list := flag.Bool("list", false, "list experiment ids and exit")
	format := flag.String("format", "table", "output format: table or csv")
	benchJSON := flag.String("bench-json", "",
		"run the host benchmark suite and write the JSON report to this file ('-' for stdout)")
	bench8JSON := flag.String("bench8-json", "",
		"run the frame-format and disk-tier benchmark suite and write the JSON report to this file ('-' for stdout)")
	bench9JSON := flag.String("bench9-json", "",
		"run the deterministic scheduler comparison over the reference workload and write the JSON report to this file ('-' for stdout)")
	calibrate := flag.String("calibrate", "",
		"run the roofline observe-predict-calibrate loop (host micro+phase benchmarks, deterministic fit, paper-machine grid) and write the JSON report to this file ('-' for stdout)")
	calibOut := flag.String("calib-out", "",
		"with -calibrate: also write the fitted host calibration (canonical JSON) to this file, ready for agcmd -cost-oracle roofline:<file>")
	topologyStr := flag.String("topology", "",
		"route every run over an interconnect model: auto, mesh[:XxY], torus[:XxYxZ], switch")
	placementStr := flag.String("placement", "",
		"rank placement for -topology: rowmajor, snake, blocked, perm:n0,n1,...")
	flag.Parse()
	if *format != "table" && *format != "csv" {
		fatal(fmt.Errorf("unknown format %q (table, csv)", *format))
	}

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}
	if *benchJSON != "" {
		writeBenchJSON(*benchJSON)
		return
	}
	if *bench8JSON != "" {
		writeBench8JSON(*bench8JSON)
		return
	}
	if *bench9JSON != "" {
		writeBench9JSON(*bench9JSON)
		return
	}
	if *calibrate != "" {
		writeBench10JSON(*calibrate, *calibOut)
		return
	}
	if *calibOut != "" {
		fatal(fmt.Errorf("-calib-out requires -calibrate"))
	}
	opt := experiments.Options{
		MeasuredSteps: *steps,
		Topology:      *topologyStr,
		Placement:     *placementStr,
	}

	var outs []*experiments.Output
	if *expName == "all" {
		all, err := experiments.All(opt)
		if err != nil {
			fatal(err)
		}
		outs = all
	} else {
		out, err := experiments.ByID(*expName, opt)
		if err != nil {
			fatal(err)
		}
		outs = []*experiments.Output{out}
	}
	for _, o := range outs {
		for _, t := range o.Tables {
			if *format == "csv" {
				fmt.Printf("# %s\n%s", t.Title, t.CSV())
			} else {
				fmt.Print(t.Render())
			}
		}
		if *format == "table" {
			for _, n := range o.Notes {
				fmt.Println("  //", n)
			}
		}
		fmt.Println()
	}
}

// writeBenchJSON runs the internal/bench suite and writes the report —
// recorded pre-optimization baseline plus the current tree's host numbers —
// as indented JSON.
func writeBenchJSON(path string) {
	rep := bench.NewReport()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if path == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

// writeBench8JSON runs the frame-format and disk-tier measurements —
// cache-hit cost, binary-versus-JSON codec comparisons, cold-versus-warm
// restart latency — as indented JSON.
func writeBench8JSON(path string) {
	rep, err := bench.NewBench8Report()
	if err != nil {
		fatal(err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if path == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

// writeBench9JSON runs the virtual-time scheduler comparison — per-class
// latency under fcfs, priority, and sjf, plus the label-inverted variant —
// as indented JSON.  Unlike the host benchmarks the output is
// bit-deterministic, so CI diffs the regenerated document against the
// committed one.
func writeBench9JSON(path string) {
	rep, err := bench.NewBench9Report()
	if err != nil {
		fatal(err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if path == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

// writeBench10JSON runs the roofline calibration loop: host micro- and
// phase-benchmarks, the deterministic least-squares fit, and the
// paper-machine prediction grid.  The host sections are wall-clock and gated
// by thresholds in CI; the machine sections are deterministic.  When
// calibOut is non-empty the fitted host calibration is also written there as
// canonical JSON for `agcmd -cost-oracle roofline:<file>`.
func writeBench10JSON(path, calibOut string) {
	rep, err := bench.NewBench10Report()
	if err != nil {
		fatal(err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if path == "-" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
	if calibOut != "" {
		raw, err := rep.Host.Calib.CanonicalJSON()
		if err != nil {
			fatal(err)
		}
		raw = append(raw, '\n')
		if err := os.WriteFile(calibOut, raw, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", calibOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "agcmbench:", err)
	os.Exit(2)
}
