// Command agcmbench regenerates the paper's tables and figures on the
// simulated Paragon and T3D machines.
//
//	agcmbench -experiment all           # everything, in paper order
//	agcmbench -experiment table8        # one table
//	agcmbench -list                     # valid experiment names
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"agcm/internal/experiments"
)

func main() {
	expName := flag.String("experiment", "all", "experiment id or 'all'")
	steps := flag.Int("steps", 3, "measured time steps per run")
	list := flag.Bool("list", false, "list experiment ids and exit")
	format := flag.String("format", "table", "output format: table or csv")
	flag.Parse()
	if *format != "table" && *format != "csv" {
		fatal(fmt.Errorf("unknown format %q (table, csv)", *format))
	}

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}
	opt := experiments.Options{MeasuredSteps: *steps}

	var outs []*experiments.Output
	if *expName == "all" {
		all, err := experiments.All(opt)
		if err != nil {
			fatal(err)
		}
		outs = all
	} else {
		out, err := experiments.ByID(*expName, opt)
		if err != nil {
			fatal(err)
		}
		outs = []*experiments.Output{out}
	}
	for _, o := range outs {
		for _, t := range o.Tables {
			if *format == "csv" {
				fmt.Printf("# %s\n%s", t.Title, t.CSV())
			} else {
				fmt.Print(t.Render())
			}
		}
		if *format == "table" {
			for _, n := range o.Notes {
				fmt.Println("  //", n)
			}
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "agcmbench:", err)
	os.Exit(2)
}
