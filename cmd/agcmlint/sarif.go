package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"

	"agcm/internal/analysis"
)

// SARIF 2.1.0 output (-sarif): the static-analysis interchange format GitHub
// code scanning and most SARIF viewers ingest.  Only the fields consumers
// actually read are emitted — schema/version, the tool driver with one rule
// per registered analyzer, and one result per diagnostic with a repo-relative
// physical location.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// sarifRules builds one reportingDescriptor per registered analyzer, using
// the first line of its Doc as the short description.
func sarifRules() []sarifRule {
	all := analysis.All()
	rules := make([]sarifRule, 0, len(all))
	for _, a := range all {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: strings.TrimSpace(doc)},
		})
	}
	return rules
}

// sarifURI renders a diagnostic's filename relative to the working directory
// (the repo root in CI), with forward slashes as SARIF requires.  Files
// outside the tree keep their absolute path.
func sarifURI(filename string) string {
	if cwd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(cwd, filename); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(filename)
}

// writeSarif encodes the diagnostics (already resolved to file positions)
// as a single-run SARIF log.
func writeSarif(w io.Writer, diags []jsonDiagnostic) error {
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: sarifURI(d.File)},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "agcmlint",
				InformationURI: "https://github.com/agcm/agcm/tree/main/internal/analysis",
				Rules:          sarifRules(),
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(log)
}
