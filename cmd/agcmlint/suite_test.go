package main

import (
	"bytes"
	"encoding/json"
	"os/exec"
	"strings"
	"testing"

	"agcm/internal/analysis"
)

// repoRoot resolves the module root so suite-wide runs execute from the same
// directory CI uses.
func repoRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	return strings.TrimSpace(string(out))
}

// TestStandaloneSuiteCleanOverRepo runs the full eight-analyzer suite over
// every package in the repository and requires a clean exit.  This is the
// PR-hygiene gate: a new finding must be either fixed or suppressed with a
// reasoned //lint:allow before it lands.
func TestStandaloneSuiteCleanOverRepo(t *testing.T) {
	bin := buildLint(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = repoRoot(t)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("agcmlint ./... reported findings or failed: %v\n%s", err, stderr.String())
	}
}

// TestSarifViolation checks the -sarif mode end to end: a violating module
// yields exit status 1 and a parseable SARIF 2.1.0 log whose driver lists
// every registered analyzer as a rule and whose single result carries the
// nondeterm ruleId with a physical location.
func TestSarifViolation(t *testing.T) {
	bin := buildLint(t)
	dir := writeProbeModule(t, `package sim

func Sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}
`)
	cmd := exec.Command(bin, "-sarif", "./...")
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	exit, ok := err.(*exec.ExitError)
	if !ok || exit.ExitCode() != 1 {
		t.Fatalf("agcmlint -sarif on a violating module: err=%v (want exit status 1)\n%s", err, stderr.String())
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("-sarif output is not JSON: %v\n%s", err, stdout.String())
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("SARIF version %q schema %q: want 2.1.0", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("SARIF has %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "agcmlint" {
		t.Errorf("driver name %q, want agcmlint", run.Tool.Driver.Name)
	}
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has an empty shortDescription", r.ID)
		}
	}
	for _, a := range analysis.All() {
		if !ruleIDs[a.Name] {
			t.Errorf("driver rules missing analyzer %s", a.Name)
		}
	}
	if len(run.Results) == 0 {
		t.Fatal("SARIF run has no results for a violating module")
	}
	res := run.Results[0]
	if res.RuleID != "nondeterm" {
		t.Errorf("result ruleId %q, want nondeterm", res.RuleID)
	}
	if !strings.Contains(res.Message.Text, "range over map") {
		t.Errorf("result message %q lacks the nondeterm diagnostic", res.Message.Text)
	}
	if len(res.Locations) != 1 {
		t.Fatalf("result has %d locations, want 1", len(res.Locations))
	}
	loc := res.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/sim/probe.go" {
		t.Errorf("artifact uri %q, want repo-relative internal/sim/probe.go", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine == 0 || loc.Region.StartColumn == 0 {
		t.Errorf("region %+v lacks a line/column", loc.Region)
	}
}

// TestSarifCleanRepo runs -sarif over the repository: still exit 0, and the
// log must parse with zero results — the shape CI uploads on every build.
func TestSarifCleanRepo(t *testing.T) {
	bin := buildLint(t)
	cmd := exec.Command(bin, "-sarif", "./...")
	cmd.Dir = repoRoot(t)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("agcmlint -sarif ./... : %v\n%s", err, stderr.String())
	}
	var log struct {
		Runs []struct {
			Results []json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("-sarif output is not JSON: %v", err)
	}
	if len(log.Runs) != 1 || len(log.Runs[0].Results) != 0 {
		t.Fatalf("clean repo SARIF: want 1 run with 0 results, got %+v", log.Runs)
	}
}

// TestJSONAndSarifMutuallyExclusive pins the operational-error exit.
func TestJSONAndSarifMutuallyExclusive(t *testing.T) {
	bin := buildLint(t)
	err := exec.Command(bin, "-json", "-sarif", "./...").Run()
	exit, ok := err.(*exec.ExitError)
	if !ok || exit.ExitCode() != 2 {
		t.Fatalf("-json -sarif together: err=%v, want exit status 2", err)
	}
}
