// The `go vet -vettool` unit protocol: cmd/go hands the tool one JSON .cfg
// file per compilation unit describing sources, the import map, and export
// data locations, and expects diagnostics on stderr (exit 1) or, with -json,
// a JSON tree on stdout (exit 0).  This mirrors the behaviour of
// x/tools/go/analysis/unitchecker, which this offline tree cannot depend on
// (see the note in go.mod).
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"agcm/internal/analysis"
)

// vetConfig is the compilation-unit description written by cmd/go
// (src/cmd/go/internal/work/exec.go, vet action).  Field names and JSON
// shapes must match exactly.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string // import path -> canonical package path
	PackageFile               map[string]string // package path -> export data file
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes the single unit described by cfgPath.
func runVetUnit(cfgPath string, jsonOut bool) {
	cfg, err := readVetConfig(cfgPath)
	if err != nil {
		fatal(err)
	}

	// cmd/go expects a vetx "facts" output for every unit, including
	// VetxOnly dependency visits, and caches it for downstream units.  The
	// agcmlint analyzers exchange no facts, so the file is a placeholder.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("agcmlint: no facts\n"), 0o666); err != nil {
			fatal(err)
		}
	}
	if cfg.VetxOnly {
		return
	}

	fset := token.NewFileSet()
	pkg, err := typecheckVetUnit(fset, cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fatal(err)
	}

	diags, err := analysis.Run([]*analysis.Package{pkg}, analysis.All())
	if err != nil {
		fatal(err)
	}

	if jsonOut {
		// The unitchecker JSON shape: {pkgID: {analyzer: [{posn, message}]}}.
		type jsonDiag struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		byAnalyzer := make(map[string][]jsonDiag)
		for _, d := range diags {
			byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{
				Posn: d.Position(fset).String(), Message: d.Message,
			})
		}
		tree := map[string]map[string][]jsonDiag{cfg.ID: byAnalyzer}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(tree); err != nil {
			fatal(err)
		}
		return
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", d.Position(fset), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func readVetConfig(path string) (*vetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("decoding vet config %s: %w", path, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("vet config %s describes no Go files", path)
	}
	return cfg, nil
}

// typecheckVetUnit parses and type-checks the unit from the cfg's file
// lists, importing dependencies through the cfg's export-data map.
func typecheckVetUnit(fset *token.FileSet, cfg *vetConfig) (*analysis.Package, error) {
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("cannot resolve import %q", importPath)
		}
		return compilerImporter.(types.ImporterFrom).ImportFrom(path, cfg.Dir, 0)
	})
	conf := &types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &analysis.Package{Fset: fset, Files: files, Pkg: tpkg, TypesInfo: info}, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "agcmlint: %v\n", err)
	os.Exit(2)
}
