package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildLint compiles the agcmlint binary once per test run.
func buildLint(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping vettool integration in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "agcmlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestVersionHandshake checks the -V=full reply cmd/go parses for its build
// cache: `<name> version <ver>` with a non-"devel" version so the whole line
// keys cached vet results.
func TestVersionHandshake(t *testing.T) {
	bin := buildLint(t)
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	f := strings.Fields(strings.TrimSpace(string(out)))
	if len(f) < 3 || f[1] != "version" {
		t.Fatalf("-V=full output %q: want `name version ver ...`", out)
	}
	if f[2] == "devel" {
		t.Errorf("-V=full version is %q: cmd/go would reject the tool for caching", f[2])
	}
}

// TestFlagsHandshake checks that -flags emits the JSON flag-definition list
// go vet uses to decide which flags it may forward.
func TestFlagsHandshake(t *testing.T) {
	bin := buildLint(t)
	out, err := exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	var defs []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal(out, &defs); err != nil {
		t.Fatalf("-flags output is not a JSON flag list: %v\n%s", err, out)
	}
	found := false
	for _, d := range defs {
		if d.Name == "json" && d.Bool {
			found = true
		}
	}
	if !found {
		t.Errorf("-flags output %s lacks the boolean json flag", out)
	}
}

// writeProbeModule lays out a throwaway module whose package path places it
// inside the nondeterm scope (internal/sim), with one flagged map range and
// one annotated one.
func writeProbeModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module lintprobe\n\ngo 1.22\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	pkgDir := filepath.Join(dir, "internal", "sim")
	if err := os.MkdirAll(pkgDir, 0o777); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(pkgDir, "probe.go"), []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestGoVetFlagsViolation runs the real `go vet -vettool` pipeline over a
// module containing a determinism violation and expects the diagnostic.
func TestGoVetFlagsViolation(t *testing.T) {
	bin := buildLint(t)
	dir := writeProbeModule(t, `package sim

func Sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}
`)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	if err == nil {
		t.Fatalf("go vet -vettool succeeded on a violating package; stderr:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "nondeterm") || !strings.Contains(stderr.String(), "range over map") {
		t.Errorf("go vet stderr missing nondeterm diagnostic:\n%s", stderr.String())
	}
}

// TestGoVetCleanPackage runs the pipeline over an annotated version of the
// same code and expects a clean exit.
func TestGoVetCleanPackage(t *testing.T) {
	bin := buildLint(t)
	dir := writeProbeModule(t, `package sim

// Sum is order-insensitive only up to float rounding, but this probe only
// checks that the annotation suppresses the diagnostic.
func Sum(m map[string]float64) float64 {
	var s float64
	//lint:allow nondeterm probe fixture exercising the vettool suppression path
	for _, v := range m {
		s += v
	}
	return s
}
`)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("go vet -vettool failed on an annotated package: %v\n%s", err, stderr.String())
	}
}

// TestGoVetRealPackages runs the pipeline over representative repo packages,
// exercising the export-data importer on real dependency graphs.  The tree
// must be clean: PR hygiene is enforced by CI running the same command.
func TestGoVetRealPackages(t *testing.T) {
	bin := buildLint(t)
	root, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./internal/trace", "./internal/comm")
	cmd.Dir = strings.TrimSpace(string(root))
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("go vet -vettool over repo packages: %v\n%s", err, stderr.String())
	}
}
