// Command agcmlint statically enforces the simulator's determinism,
// communication-protocol, and concurrency-correctness invariants (see
// internal/analysis for the analyzers: nondeterm, commtag, collective,
// sendalias, lockorder, goleak, ctxflow, wgmisuse).
//
// Standalone mode loads packages itself:
//
//	agcmlint ./...
//	agcmlint -json ./internal/comm ./internal/sim
//	agcmlint -sarif ./... > findings.sarif
//
// It also speaks the `go vet -vettool` protocol (-V=full, -flags, and
// single-unit *.cfg analysis), so the same binary runs under the build
// system's caching:
//
//	go build -o /tmp/agcmlint ./cmd/agcmlint
//	go vet -vettool=/tmp/agcmlint ./...
//
// Exit status: 0 clean, 1 diagnostics reported, 2 operational error.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"agcm/internal/analysis"
	"agcm/internal/analysis/load"
)

func main() {
	// The vettool handshake flags must be handled before flag parsing
	// rewrites usage: cmd/go invokes `agcmlint -V=full` for build caching
	// and `agcmlint -flags` for flag discovery.
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			printFlags()
			return
		}
	}

	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON (file, line, col, analyzer, message)")
	sarifOut := flag.Bool("sarif", false, "emit diagnostics as SARIF 2.1.0 (standalone mode only)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: agcmlint [-json|-sarif] [packages]\n   or: go vet -vettool=$(which agcmlint) [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()

	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "agcmlint: -json and -sarif are mutually exclusive")
		os.Exit(2)
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runVetUnit(args[0], *jsonOut)
		return
	}
	runStandalone(args, *jsonOut, *sarifOut)
}

// jsonDiagnostic is the machine-readable diagnostic record of -json mode.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// runStandalone loads packages with the go list based loader and reports.
func runStandalone(patterns []string, jsonOut, sarifOut bool) {
	pkgs, err := load.Packages("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "agcmlint: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, analysis.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "agcmlint: %v\n", err)
		os.Exit(2)
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(os.Stderr, "agcmlint: no packages matched")
		os.Exit(2)
	}
	fset := pkgs[0].Fset
	switch {
	case jsonOut, sarifOut:
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			p := d.Position(fset)
			out = append(out, jsonDiagnostic{
				File: p.Filename, Line: p.Line, Col: p.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		var err error
		if sarifOut {
			err = writeSarif(os.Stdout, out)
		} else {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "\t")
			err = enc.Encode(out)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "agcmlint: %v\n", err)
			os.Exit(2)
		}
	default:
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", d.Position(fset), d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// printVersion answers `-V=full`.  cmd/go requires `<name> version <ver>`
// and uses the whole line as the tool's build-cache ID, so the line embeds a
// content hash of the binary: rebuilding agcmlint invalidates cached vet
// results.
func printVersion() {
	h := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			sum := sha256.New()
			if _, err := io.Copy(sum, f); err == nil {
				h = fmt.Sprintf("%x", sum.Sum(nil))[:16]
			}
			f.Close()
		}
	}
	fmt.Printf("agcmlint version 1.0.0-%s\n", h)
}

// vetFlagDef mirrors the JSON shape `go vet` expects from `tool -flags`.
type vetFlagDef struct {
	Name  string `json:"Name"`
	Bool  bool   `json:"Bool"`
	Usage string `json:"Usage"`
}

// printFlags answers `-flags`: the tool flags go vet may forward.
func printFlags() {
	defs := []vetFlagDef{{Name: "json", Bool: true, Usage: "emit diagnostics as JSON"}}
	json.NewEncoder(os.Stdout).Encode(defs)
}
