// Command agcmd is the simulation-serving daemon: an HTTP front end over the
// virtual AGCM (internal/server) with a bounded worker pool, a deterministic
// result cache and Prometheus metrics.
//
//	agcmd -addr :8080 -workers 4 -queue 64 -cache 1024
//
// Endpoints:
//
//	POST /v1/run         {"config": {...canonical config...}, "steps": 2,
//	                      "priority": "high|normal|low", "timeout_ms": 5000}
//	GET  /v1/cache/{key} cached response body for a job key, or 404
//	GET  /healthz        liveness: "ok" while the process is up
//	GET  /readyz         readiness: "ready" while routable, 503 while draining
//	GET  /metrics        Prometheus text format
//
// On SIGTERM or SIGINT the daemon drains: it refuses new requests, finishes
// every accepted job (bounded by -drain-timeout), then exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"agcm/internal/core"
	"agcm/internal/roofline"
	"agcm/internal/server"
)

// buildOracle resolves the -cost-oracle flag: "" or "linear" keeps the
// built-in core.PredictCost, "roofline" uses the baked-in reference host
// calibration, and "roofline:<file>" loads a fitted calibration written by
// `agcmbench -calibrate -calib-out <file>` on this host.
func buildOracle(spec string) (core.CostOracle, error) {
	switch {
	case spec == "" || spec == "linear":
		return nil, nil
	case spec == "roofline":
		return roofline.NewMachine(roofline.DefaultHost())
	case strings.HasPrefix(spec, "roofline:"):
		path := strings.TrimPrefix(spec, "roofline:")
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("reading calibration %q: %w", path, err)
		}
		calib, err := roofline.ParseCalib(data)
		if err != nil {
			return nil, err
		}
		return roofline.NewMachine(calib)
	}
	return nil, fmt.Errorf("unknown cost oracle %q (linear, roofline, roofline:<calib.json>)", spec)
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 4, "simulations in flight at once")
	queueCap := flag.Int("queue", 64, "admission queue capacity (beyond it requests are shed with 429)")
	cacheEntries := flag.Int("cache", 1024, "result-cache capacity in entries")
	jobTimeout := flag.Duration("job-timeout", 60*time.Second, "per-job execution budget")
	maxSteps := flag.Int("max-steps", 0, "reject requests asking for more measured steps (0 = no limit)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long to wait for accepted jobs on shutdown")
	backendID := flag.String("backend-id", "", "cluster member ID stamped on responses as X-Agcmd-Backend (empty = omit)")
	cacheDir := flag.String("cache-dir", "", "disk cache tier directory: finished runs persist here and survive restarts (empty = memory only)")
	cacheDiskBytes := flag.Int64("cache-disk-bytes", 0, "disk cache tier byte budget (0 = default 256 MiB)")
	scheduler := flag.String("scheduler", "fcfs", "admission scheduling policy: fcfs, priority or sjf")
	costOracle := flag.String("cost-oracle", "linear", "sjf job-cost oracle: linear, roofline, or roofline:<calib.json>")
	flag.Parse()

	oracle, err := buildOracle(*costOracle)
	if err != nil {
		log.Fatalf("agcmd: %v", err)
	}

	s, err := server.New(server.Options{
		Workers:        *workers,
		QueueCapacity:  *queueCap,
		Scheduler:      *scheduler,
		CacheEntries:   *cacheEntries,
		JobTimeout:     *jobTimeout,
		MaxSteps:       *maxSteps,
		BackendID:      *backendID,
		CacheDir:       *cacheDir,
		CacheDiskBytes: *cacheDiskBytes,
		CostOracle:     oracle,
	})
	if err != nil {
		log.Fatalf("agcmd: %v", err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	log.Printf("agcmd: serving on %s (workers=%d queue=%d scheduler=%s cache=%d job-timeout=%s cache-dir=%q)",
		*addr, *workers, *queueCap, s.SchedulerName(), *cacheEntries, *jobTimeout, *cacheDir)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)

	select {
	case sig := <-sigCh:
		log.Printf("agcmd: received %v, draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		drainErr := s.Drain(ctx)
		// Shutdown after Drain: clients parked on in-flight jobs need the
		// listener alive until their responses are written.
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("agcmd: http shutdown: %v", err)
		}
		if drainErr != nil {
			log.Printf("agcmd: %v", drainErr)
			os.Exit(1)
		}
		log.Printf("agcmd: drained cleanly")
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("agcmd: %v", err)
		}
	}
}
