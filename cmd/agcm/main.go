// Command agcm runs one configured parallel AGCM simulation on a simulated
// machine and prints the per-component timing breakdown in seconds per
// simulated day, plus the load-imbalance diagnostics.
//
// Example:
//
//	agcm -machine paragon -mesh 8x30 -filter fft-lb -physics pairwise -layers 9 -steps 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"agcm/internal/core"
	"agcm/internal/dynamics"
	"agcm/internal/fault"
	"agcm/internal/grid"
	"agcm/internal/history"
	"agcm/internal/machine"
	"agcm/internal/diag"
	"agcm/internal/physics"
	"agcm/internal/stats"
	"agcm/internal/topology"
	"agcm/internal/trace"
)

func parseMesh(s string) (py, px int, err error) {
	if _, err := fmt.Sscanf(strings.ToLower(s), "%dx%d", &py, &px); err != nil {
		return 0, 0, fmt.Errorf("invalid mesh %q (want e.g. 8x30)", s)
	}
	return py, px, nil
}

// Filter and scheme names parse through the shared canonical-name tables
// (core.FilterVariantByName, physics.SchemeByName) so the CLI, the serving
// daemon and canonical configs accept exactly the same vocabulary.

func main() {
	machName := flag.String("machine", "paragon", "machine model: paragon, t3d or sp2")
	meshStr := flag.String("mesh", "4x4", "processor mesh PyxPx (latitude x longitude)")
	filterStr := flag.String("filter", "fft-lb",
		"filter: conv, conv-tree, fft, fft-lb, fft-rowwise, polar-diffusion, none")
	schemeStr := flag.String("physics", "none", "physics load balancing: none, shuffle, greedy, pairwise")
	rounds := flag.Int("rounds", 2, "pairwise balancing rounds per step")
	layers := flag.Int("layers", 9, "vertical layers (paper: 9 or 15)")
	steps := flag.Int("steps", 3, "measured time steps (after warmup)")
	dt := flag.Float64("dt", 0, "time step in seconds (0 = CFL-derived)")
	profile := flag.Bool("profile", false, "print per-rank utilization and a share-bar chart")
	traceFile := flag.String("tracefile", "", "write a Chrome trace-event JSON timeline to this path")
	saveState := flag.String("save-state", "", "write the final model state to this checkpoint file")
	loadState := flag.String("load-state", "", "restore the initial state from this checkpoint file")
	faultSpec := flag.String("fault-spec", "",
		"inject faults, e.g. 'seed=42;slow:rank=3,at=1.5,factor=4;crash:rank=1,at=9;jitter:max=2e-4;drop:prob=0.01,retries=4,timeout=5e-3'")
	checkpointEvery := flag.Int("checkpoint-every", 0,
		"checkpoint the model state every N measured steps (0 = off); the last checkpoint survives a crashed run")
	topologyStr := flag.String("topology", "",
		"model the interconnect: none, auto (machine's own), mesh[:XxY], torus[:XxYxZ], switch")
	placementStr := flag.String("placement", "",
		"rank placement on the topology: rowmajor, snake, blocked, perm:n0,n1,...")
	commMatrixFile := flag.String("comm-matrix", "",
		"write the rank-by-rank communication matrix JSON to this path ('-' prints the hottest pairs instead)")
	flag.Parse()

	mach, err := machine.ByName(*machName)
	if err != nil {
		fatal(err)
	}
	py, px, err := parseMesh(*meshStr)
	if err != nil {
		fatal(err)
	}
	fv, err := core.FilterVariantByName(*filterStr)
	if err != nil {
		fatal(err)
	}
	scheme, err := physics.SchemeByName(*schemeStr)
	if err != nil {
		fatal(err)
	}

	cfg := core.Config{
		Spec:            grid.TwoByTwoPointFive(*layers),
		Machine:         mach,
		MeshPy:          py,
		MeshPx:          px,
		Filter:          fv,
		PhysicsScheme:   scheme,
		PhysicsRounds:   *rounds,
		Dt: *dt,
		// The event log also feeds the communication matrix and the
		// topology contention replay.
		EventLog: *traceFile != "" || *commMatrixFile != "" ||
			(*topologyStr != "" && *topologyStr != "none"),
		CaptureState:    *saveState != "",
		CheckpointEvery: *checkpointEvery,
		Topology:        *topologyStr,
		Placement:       *placementStr,
	}
	if *faultSpec != "" {
		spec, err := fault.Parse(*faultSpec)
		if err != nil {
			fatal(err)
		}
		cfg.Fault = spec
		fmt.Printf("fault injection active: %s\n", spec)
	}
	if *loadState != "" {
		f, err := os.Open(*loadState)
		if err != nil {
			fatal(err)
		}
		file, err := history.Read(f)
		if err != nil {
			fatal(fmt.Errorf("reading checkpoint: %w", err))
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		cfg.InitialState = file
		fmt.Printf("restored checkpoint %s (step %d)\n", *loadState, file.Step)
	}
	rep, err := core.Run(cfg, *steps)
	if err != nil {
		// A faulted run can still leave usable checkpoints behind; rescue
		// the last one so the operator can restart with -load-state.
		if rep != nil && len(rep.Checkpoints) > 0 {
			last := rep.Checkpoints[len(rep.Checkpoints)-1]
			fmt.Fprintf(os.Stderr, "agcm: run failed after %d checkpoint(s); last completed at step %d\n",
				len(rep.Checkpoints), last.Step)
			if *saveState != "" {
				writeCheckpoint(*saveState, last)
				fmt.Fprintf(os.Stderr, "agcm: rescued checkpoint written to %s (restart with -load-state %s)\n",
					*saveState, *saveState)
			}
		}
		fatal(err)
	}

	fmt.Printf("AGCM 2x2.5x%d on %s, %dx%d mesh (%d nodes), filter=%s, physics=%s\n",
		*layers, mach.Name, py, px, rep.Ranks, fv, scheme)
	fmt.Printf("dt=%.0fs (%d steps/simulated day), measured %d steps\n\n",
		86400/float64(rep.StepsPerDay), rep.StepsPerDay, rep.Steps)

	tbl := &stats.Table{Header: []string{"Component", "s/simulated day", "share of total"}}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"Spectral filtering", rep.FilterTime},
		{"Finite differences", rep.FDTime},
		{"Ghost exchange (incl. wait)", rep.CommTime},
		{"Dynamics (critical path)", rep.Dynamics},
		{"Physics", rep.PhysicsTime},
		{"Total", rep.Total},
	} {
		tbl.AddRow(c.name, stats.Seconds(c.v), stats.Percent(c.v/rep.Total))
	}
	fmt.Print(tbl.Render())
	fmt.Printf("\nPhysics load imbalance: %s   Filter load imbalance: %s\n",
		stats.Percent(core.Imbalance(rep.PhysicsLoads)),
		stats.Percent(core.Imbalance(rep.FilterLoads)))
	fmt.Printf("Communication: %.0f messages/step, %.2f MB/step, max wait share %s\n",
		rep.MessagesPerStep, rep.BytesPerStep/1e6, stats.Percent(rep.MaxWaitShare))
	fmt.Printf("Stability: max |h| = %.0f m (resting depth %d m)\n",
		rep.MaxAbsH, dynamics.MeanDepth)

	if net := rep.Network; net != nil {
		fmt.Printf("\nInterconnect: %s, placement %s\n",
			net.Topology().Name(), net.Placement().Name())
		crep, err := net.Contend(topology.TransfersFromEvents(rep.Raw.Events))
		if err != nil {
			fatal(err)
		}
		fmt.Print(trace.LinkUtilizationTable(net.LinkStats(), crep, rep.Raw.MaxClock(), 10))
	}

	if *commMatrixFile != "" {
		cm := trace.NewCommMatrix(rep.Raw)
		if *commMatrixFile == "-" {
			fmt.Println()
			fmt.Print(diag.CommMatrixTable(cm, 10))
		} else {
			raw, err := cm.JSON()
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*commMatrixFile, raw, 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("\nwrote communication matrix to %s\n", *commMatrixFile)
		}
	}

	if *saveState != "" {
		writeCheckpoint(*saveState, rep.FinalState)
		fmt.Printf("\nwrote checkpoint to %s (step %d)\n", *saveState, rep.FinalState.Step)
	}

	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fatal(err)
		}
		if err := trace.ExportChromeTrace(f, rep.Raw); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote Chrome trace timeline to %s (open in Perfetto or chrome://tracing)\n",
			*traceFile)
	}

	if *profile {
		fmt.Println("\nMachine-wide summary (whole run, including warmup):")
		fmt.Print(trace.Summary(rep.Raw))
		fmt.Println("\nPer-rank utilization (virtual seconds):")
		fmt.Print(trace.UtilizationTable(rep.Raw, "physics", 12))
		fmt.Println("\nUtilization shares (not chronological):")
		fmt.Print(trace.Gantt(rep.Raw, 72))
	}
}

// writeCheckpoint writes the frame-encoded checkpoint format.  -load-state
// sniffs the magic, so checkpoints written by older builds (the legacy
// "AGMH" stream) still restore.
func writeCheckpoint(path string, file *history.File) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := history.WriteFrame(f, file); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "agcm:", err)
	os.Exit(2)
}
