// Physics load balancing: run the AGCM physics on a simulated T3D mesh and
// watch the three schemes of Section 3.4 balance the live day/night +
// convection load — including the paper's own four-node worked example.
//
//	go run ./examples/physicsbalance
package main

import (
	"fmt"
	"log"

	"agcm/internal/core"
	"agcm/internal/grid"
	"agcm/internal/loadbalance"
	"agcm/internal/machine"
	"agcm/internal/physics"
	"agcm/internal/stats"
)

func main() {
	// --- The paper's Figure 5/6 example, exactly. ---
	fmt.Println("Paper's four-node example (loads 65, 24, 38, 15):")
	paper := []float64{65, 24, 38, 15}
	hist := loadbalance.Pairwise(paper, 1, 0, 2)
	cur := paper
	for _, h := range hist {
		if h.Iteration > 0 {
			cur = loadbalance.Apply(cur, h.Moves)
		}
		fmt.Printf("  round %d: loads %v, imbalance %s\n",
			h.Iteration, cur, stats.Percent(h.Imbalance))
	}
	fmt.Println("  (paper Figure 6: 65,24,38,15 -> 40,31,31,40 -> 36,35,35,36)")

	// --- Live physics loads on an 8x8 T3D. ---
	fmt.Println("\nLive AGCM physics on a simulated 8x8 Cray T3D (2x2.5x9):")
	tbl := &stats.Table{Header: []string{
		"Scheme", "Physics s/day (max rank)", "Imbalance", "Whole code s/day"}}
	for _, scheme := range []physics.Scheme{physics.None, physics.Shuffle, physics.Greedy, physics.Pairwise} {
		rep, err := core.Run(core.Config{
			Spec:    grid.TwoByTwoPointFive(9),
			Machine: machine.CrayT3D(),
			MeshPy:  8, MeshPx: 8,
			Filter:        core.FilterFFTBalanced,
			PhysicsScheme: scheme,
			PhysicsRounds: 2,
		}, 3)
		if err != nil {
			log.Fatal(err)
		}
		tbl.AddRow(scheme.String(), stats.Seconds(rep.PhysicsTime),
			stats.Percent(core.Imbalance(rep.PhysicsLoads)), stats.Seconds(rep.Total))
	}
	fmt.Print(tbl.Render())
	fmt.Println("\nScheme 3 (pairwise) removes most of the imbalance at O(P) messages —")
	fmt.Println("the paper projects a 10-15% whole-code gain from a balanced physics.")
}
