// Filter comparison: run all four parallel filter variants on the same
// fields, verify they produce numerically identical results, and show the
// Figures 2-3 row-redistribution plan plus the per-variant cost breakdown.
//
//	go run ./examples/filtercompare
package main

import (
	"fmt"
	"log"
	"math"

	"agcm/internal/comm"
	"agcm/internal/filter"
	"agcm/internal/grid"
	"agcm/internal/loadbalance"
	"agcm/internal/machine"
	"agcm/internal/sim"
	"agcm/internal/stats"
)

// initField writes a deterministic wavy pattern.
func initField(f *grid.Field, l grid.Local, phase float64) {
	for j := 0; j < l.Nlat(); j++ {
		for i := 0; i < l.Nlon(); i++ {
			for k := 0; k < l.Nlayers(); k++ {
				f.Set(j, i, k, math.Sin(float64(l.GlobalLon(i))*0.3+phase)*
					math.Cos(float64(l.GlobalLat(j))*0.2)+0.1*float64(k))
			}
		}
	}
}

func main() {
	spec := grid.TwoByTwoPointFive(9)
	const py, px = 8, 8
	mach := machine.CrayT3D()

	// --- The Figures 2-3 story: how many filtered lines each processor
	// row holds before and after the generic row balancing. ---
	strong := filter.Rows(spec, filter.Strong)
	weak := filter.Rows(spec, filter.Weak)
	fmt.Printf("Filtered latitude rows: %d strong (poles to 45), %d weak (poles to 60) of %d\n",
		len(strong), len(weak), spec.Nlat)
	d, err := grid.NewDecomp(spec, py, px)
	if err != nil {
		log.Fatal(err)
	}
	counts := make([]int, py)
	// Two strong variables (u, v) and one weak (h), all layers.
	for _, j := range strong {
		counts[d.RowOfLat(j)] += 2 * spec.Nlayers
	}
	for _, j := range weak {
		counts[d.RowOfLat(j)] += spec.Nlayers
	}
	fmt.Printf("lines per processor row before balancing: %v\n", counts)
	_, targets := loadbalance.PlanRows(append([]int(nil), counts...))
	fmt.Printf("lines per processor row after balancing:  %v (Eq. 3)\n\n", targets)

	// --- Run every variant; verify equivalence; report virtual cost. ---
	variants := []string{"convolution-ring", "convolution-tree", "fft", "fft-load-balanced"}
	results := map[string][]float64{}
	times := map[string]float64{}
	imb := map[string]float64{}
	for _, name := range variants {
		name := name
		var gathered []float64
		m := sim.New(py*px, mach)
		res, err := m.Run(func(p *sim.Proc) error {
			world := comm.World(p)
			cart := comm.NewCart2D(world, py, px)
			l := grid.NewLocal(d, cart.MyRow, cart.MyCol)
			u := grid.NewField(l, 1)
			v := grid.NewField(l, 1)
			h := grid.NewField(l, 1)
			initField(u, l, 0)
			initField(v, l, 1)
			initField(h, l, 2)
			vars := []filter.Variable{
				{Name: "u", Kind: filter.Strong, Field: u},
				{Name: "v", Kind: filter.Strong, Field: v},
				{Name: "h", Kind: filter.Weak, Field: h},
			}
			var flt filter.Parallel
			switch name {
			case "convolution-ring":
				flt = filter.NewConvolution(cart, spec, l, filter.Ring)
			case "convolution-tree":
				flt = filter.NewConvolution(cart, spec, l, filter.Tree)
			case "fft":
				flt = filter.NewFFT(cart, spec, l, false)
			case "fft-load-balanced":
				flt = filter.NewFFT(cart, spec, l, true)
			}
			p.Timed("filter", func() { flt.Apply(vars) })
			g := grid.Gather(world, cart, u)
			if world.Rank() == 0 {
				gathered = g
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		results[name] = gathered
		times[name] = res.MaxAccount("filter")
		loads := res.Accounts["filter"]
		sum, max := 0.0, 0.0
		for _, x := range loads {
			sum += x
			if x > max {
				max = x
			}
		}
		imb[name] = (max - sum/float64(len(loads))) / (sum / float64(len(loads)))
	}

	// Equivalence check against the first variant.
	ref := results[variants[0]]
	for _, name := range variants[1:] {
		worst := 0.0
		for i, v := range results[name] {
			if dd := math.Abs(v - ref[i]); dd > worst {
				worst = dd
			}
		}
		fmt.Printf("max |%s - %s| = %.2e\n", name, variants[0], worst)
		if worst > 1e-9 {
			log.Fatalf("variant %s diverges from %s", name, variants[0])
		}
	}

	fmt.Println("\nAll variants numerically equivalent. Cost of one filter application")
	fmt.Printf("on an %dx%d %s:\n\n", py, px, mach.Name)
	tbl := &stats.Table{Header: []string{"Variant", "Virtual time (ms)", "Load imbalance"}}
	for _, name := range variants {
		tbl.AddRow(name, fmt.Sprintf("%.2f", times[name]*1e3), stats.Percent(imb[name]))
	}
	fmt.Print(tbl.Render())
}
