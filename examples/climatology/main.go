// Climatology: integrate the AGCM for half a simulated day on a 4x4 mesh
// with full physics, watch the conserved integrals, print the zonal-mean
// circulation, and demonstrate checkpoint/restart through the history file.
//
//	go run ./examples/climatology
package main

import (
	"bytes"
	"fmt"
	"log"

	"agcm/internal/comm"
	"agcm/internal/diag"
	"agcm/internal/dynamics"
	"agcm/internal/filter"
	"agcm/internal/grid"
	"agcm/internal/history"
	"agcm/internal/machine"
	"agcm/internal/physics"
	"agcm/internal/sim"
	"agcm/internal/stats"
)

func main() {
	spec := grid.TwoByTwoPointFive(9)
	const py, px = 4, 4
	dt := 0.8 * dynamics.CFLTimeStep(spec, filter.Strong.CritLat())
	stepsPerDay := int(86400/dt) + 1
	steps := stepsPerDay / 2

	d, err := grid.NewDecomp(spec, py, px)
	if err != nil {
		log.Fatal(err)
	}

	var checkpoint *history.File
	var zonalU, zonalT []float64
	var diags []diag.Global

	m := sim.New(py*px, machine.CrayT3D())
	res, err := m.Run(func(p *sim.Proc) error {
		world := comm.World(p)
		cart := comm.NewCart2D(world, py, px)
		l := grid.NewLocal(d, cart.MyRow, cart.MyCol)
		s := dynamics.NewState(l)
		dynamics.InitSolidBody(s, 20, 4)
		dy := dynamics.New(cart, spec, l, dt, filter.NewFFT(cart, spec, l, true))
		dy.SetVerticalDiffusion(0.1)
		phys := physics.NewRunner(world, cart, l,
			physics.NewModel(spec, stepsPerDay), physics.Pairwise, 2)

		for n := 0; n < steps; n++ {
			if n%(steps/4) == 0 {
				g := diag.Compute(world, l, s)
				if world.Rank() == 0 {
					diags = append(diags, g)
				}
			}
			dy.Step(s)
			p.Timed("physics", func() { phys.Step(s.T, s.Q, n) })
		}
		// Checkpoint mid-run (round-trips through serialized bytes).
		file := dynamics.SaveState(world, cart, s)
		if world.Rank() == 0 {
			var buf bytes.Buffer
			if err := history.Write(&buf, file, history.BigEndian); err != nil {
				return err
			}
			restored, err := history.Read(&buf)
			if err != nil {
				return err
			}
			checkpoint = restored
		}
		zu := diag.ZonalMean(world, cart, s.U)
		zt := diag.ZonalMean(world, cart, s.T)
		if world.Rank() == 0 {
			zonalU, zonalT = zu, zt
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Half a simulated day (%d steps of %.0f s) on a 4x4 Cray T3D\n", steps, dt)
	fmt.Printf("virtual wall time: %.1f s (%.1f s/simulated day)\n\n",
		res.MaxClock(), res.MaxClock()*2)

	fmt.Println("Conserved integrals (sampled every quarter run):")
	tbl := &stats.Table{Header: []string{"Sample", "Mass (rel.)", "Total energy (rel.)", "Max wind m/s", "Mean T (K)"}}
	for i, g := range diags {
		tbl.AddRow(fmt.Sprintf("%d", i),
			fmt.Sprintf("%.8f", g.Mass/diags[0].Mass),
			fmt.Sprintf("%.6f", g.TotalEnergy()/diags[0].TotalEnergy()),
			fmt.Sprintf("%.1f", g.MaxWind),
			fmt.Sprintf("%.1f", g.MeanT))
	}
	fmt.Print(tbl.Render())

	fmt.Println("\nZonal-mean circulation (selected latitudes):")
	zt := &stats.Table{Header: []string{"Latitude", "mean u (m/s)", "mean T (K)"}}
	for _, j := range []int{0, 15, 30, 45, 60, 75, 89} {
		latDeg := spec.LatCenter(j) * 180 / 3.14159265358979
		zt.AddRow(fmt.Sprintf("%+.1f", latDeg),
			fmt.Sprintf("%.1f", zonalU[j]),
			fmt.Sprintf("%.1f", zonalT[j]))
	}
	fmt.Print(zt.Render())

	fmt.Printf("\ncheckpoint written and re-read: step %d, %d variables — restart-ready\n",
		checkpoint.Step, len(checkpoint.Names))
}
