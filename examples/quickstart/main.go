// Quickstart: run the parallel UCLA AGCM on a simulated 4x4 Cray T3D,
// compare the original convolution filter with the paper's load-balanced
// FFT filter, and save a history snapshot.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"agcm/internal/core"
	"agcm/internal/grid"
	"agcm/internal/history"
	"agcm/internal/machine"
	"agcm/internal/physics"
)

func main() {
	// The paper's standard configuration: 2 x 2.5 degree grid, 9 layers.
	base := core.Config{
		Spec:    grid.TwoByTwoPointFive(9),
		Machine: machine.CrayT3D(),
		MeshPy:  4, MeshPx: 4,
		PhysicsScheme: physics.None,
	}

	fmt.Println("UCLA parallel AGCM on a simulated 4x4 Cray T3D")
	fmt.Printf("grid %dx%dx%d, %d time steps per simulated day\n\n",
		base.Spec.Nlon, base.Spec.Nlat, base.Spec.Nlayers, base.StepsPerDay())

	for _, fv := range []core.FilterVariant{core.FilterConvolutionRing, core.FilterFFTBalanced} {
		cfg := base
		cfg.Filter = fv
		rep, err := core.Run(cfg, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("filter=%-18s  Dynamics %7.1f s/day   filtering %6.1f s/day   total %7.1f s/day\n",
			fv, rep.Dynamics, rep.FilterTime, rep.Total)
	}

	// Save a history snapshot in the frame encoding (CRC-protected,
	// random-access; history.Read sniffs the magic and also still loads
	// the legacy big-endian stream format).
	snap, err := core.Snapshot(base, 4)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.CreateTemp("", "agcm-history-*.bin")
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(f.Name())
	if err := history.WriteFrame(f, snap); err != nil {
		log.Fatal(err)
	}
	info, _ := f.Stat()
	fmt.Printf("\nwrote history snapshot: %d variables, %d bytes (%s)\n",
		len(snap.Names), info.Size(), f.Name())
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}
