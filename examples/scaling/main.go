// Scaling study: sweep processor meshes on the simulated Paragon and T3D
// and print the whole-code speedup curves with the old (convolution) and
// new (load-balanced FFT) filtering modules — the experiment behind the
// paper's Tables 4-7.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"

	"agcm/internal/core"
	"agcm/internal/grid"
	"agcm/internal/machine"
	"agcm/internal/physics"
	"agcm/internal/stats"
)

func main() {
	spec := grid.TwoByTwoPointFive(9)
	meshes := [][2]int{{1, 1}, {2, 2}, {4, 4}, {4, 8}, {8, 8}, {8, 15}, {8, 30}}

	for _, mach := range []*machine.Model{machine.Paragon(), machine.CrayT3D()} {
		fmt.Printf("=== %s ===\n", mach.Name)
		tbl := &stats.Table{Header: []string{
			"Mesh", "Nodes", "Old total s/day", "Old speed-up",
			"New total s/day", "New speed-up", "New/Old"}}
		var old1, new1 float64
		for _, mesh := range meshes {
			row := []string{fmt.Sprintf("%dx%d", mesh[0], mesh[1]),
				fmt.Sprintf("%d", mesh[0]*mesh[1])}
			var totals [2]float64
			for i, fv := range []core.FilterVariant{core.FilterConvolutionRing, core.FilterFFTBalanced} {
				rep, err := core.Run(core.Config{
					Spec: spec, Machine: mach,
					MeshPy: mesh[0], MeshPx: mesh[1],
					Filter:        fv,
					PhysicsScheme: physics.None,
				}, 2)
				if err != nil {
					log.Fatal(err)
				}
				totals[i] = rep.Total
			}
			if mesh[0]*mesh[1] == 1 {
				old1, new1 = totals[0], totals[1]
			}
			row = append(row,
				stats.Seconds(totals[0]), stats.Ratio(old1/totals[0]),
				stats.Seconds(totals[1]), stats.Ratio(new1/totals[1]),
				fmt.Sprintf("%.2f", totals[1]/totals[0]))
			tbl.AddRow(row...)
		}
		fmt.Print(tbl.Render())
		fmt.Println()
	}
	fmt.Println("The new filtering module roughly doubles the whole-code speed on large")
	fmt.Println("meshes (paper: 216 -> 119 s/day on 240 Paragon nodes).")
}
