package stats

import (
	"strings"
	"testing"
)

func TestSpeedupAndEfficiency(t *testing.T) {
	if got := Speedup(100, 10); got != 10 {
		t.Errorf("Speedup = %g", got)
	}
	if got := Speedup(100, 0); got != 0 {
		t.Errorf("Speedup with zero time = %g", got)
	}
	if got := Efficiency(100, 10, 20); got != 0.5 {
		t.Errorf("Efficiency = %g", got)
	}
	if got := Efficiency(1, 1, 0); got != 0 {
		t.Errorf("Efficiency p=0 = %g", got)
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:  "Table 1: demo",
		Header: []string{"Node mesh", "Dynamics", "Speed-up"},
	}
	tbl.AddRow("1 x 1", "8702", "1.0")
	tbl.AddRow("8 x 30", "186", "46.8")
	out := tbl.Render()
	if !strings.Contains(out, "Table 1: demo") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "Node mesh  Dynamics  Speed-up") {
		t.Errorf("misaligned header:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: "8702" starts at the same offset as "186"'s column.
	if !strings.Contains(out, "8 x 30     186") {
		t.Errorf("row misaligned:\n%s", out)
	}
}

func TestTableRenderNoHeader(t *testing.T) {
	tbl := &Table{}
	tbl.AddRow("a", "b")
	out := tbl.Render()
	if strings.Contains(out, "-") {
		t.Errorf("rule printed without header:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{Header: []string{"mesh", "time"}}
	tbl.AddRow("1 x 1", "8702")
	tbl.AddRow(`quoted "x"`, "a,b")
	got := tbl.CSV()
	want := "mesh,time\n1 x 1,8702\n\"quoted \"\"x\"\"\",\"a,b\"\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestFormatters(t *testing.T) {
	if got := Seconds(8702.3); got != "8702" {
		t.Errorf("Seconds(8702.3) = %q", got)
	}
	if got := Seconds(87.25); got != "87.2" {
		t.Errorf("Seconds(87.25) = %q", got)
	}
	if got := Seconds(7.4); got != "7.40" {
		t.Errorf("Seconds(7.4) = %q", got)
	}
	if got := Percent(0.37); got != "37.0%" {
		t.Errorf("Percent = %q", got)
	}
	if got := Ratio(46.83); got != "46.8" {
		t.Errorf("Ratio = %q", got)
	}
}
