// Package stats provides the timing bookkeeping and fixed-width table
// rendering used to reproduce the paper's tables: speedup and parallel
// efficiency calculations, the paper's load-imbalance percentage, and plain
// text tables in the style of Tables 1-11.
package stats

import (
	"fmt"
	"strings"
)

// Speedup returns t1/tp, the paper's definition relative to the 1x1 run.
func Speedup(t1, tp float64) float64 {
	if tp == 0 {
		return 0
	}
	return t1 / tp
}

// Efficiency returns the parallel efficiency of running on p processors.
func Efficiency(t1, tp float64, p int) float64 {
	if p == 0 {
		return 0
	}
	return Speedup(t1, tp) / float64(p)
}

// Table is a fixed-width plain-text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render returns the table as aligned plain text.
func (t *Table) Render() string {
	ncol := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	widths := make([]int, ncol)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i := 0; i < ncol; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		// Trim trailing padding.
		s := b.String()
		trimmed := strings.TrimRight(s, " ")
		b.Reset()
		b.WriteString(trimmed)
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		total := 0
		for i, w := range widths {
			total += w
			if i > 0 {
				total += 2
			}
		}
		b.WriteString(strings.Repeat("-", total))
		b.WriteByte('\n')
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// CSV returns the table as RFC-4180 comma-separated values (header first,
// no title), for plotting pipelines.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Seconds formats a duration in seconds with sensible precision for the
// paper-style tables.
func Seconds(v float64) string {
	switch {
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Percent formats a fraction as a percentage.
func Percent(frac float64) string {
	return fmt.Sprintf("%.1f%%", frac*100)
}

// Ratio formats a speedup factor.
func Ratio(v float64) string { return fmt.Sprintf("%.1f", v) }
