// Package solver implements the linear-system solvers Section 5 of the
// paper lists among the reusable GCM template modules: "fast (parallel)
// linear system solvers for implicit time-differencing schemes".
//
// It provides the Thomas algorithm for tridiagonal systems (vertical
// implicit diffusion in a grid column), the Sherman-Morrison reduction for
// periodic tridiagonal systems (zonal implicit operators on a latitude
// circle), a small dense Gaussian-elimination kernel, and a distributed
// periodic tridiagonal solver over a communicator using the substructuring
// (SPIKE/partition) method: each rank eliminates its interior unknowns with
// three local solves, a 2P-unknown reduced system is solved on rank 0, and
// the interiors are reconstructed locally.
//
// All solvers assume diagonally dominant systems, which implicit diffusion
// operators (I + nu*dt*L) always are.
package solver

import (
	"fmt"
	"math"

	"agcm/internal/comm"
)

// Tridiag solves the tridiagonal system
//
//	a[i]*x[i-1] + b[i]*x[i] + c[i]*x[i+1] = d[i],  i = 0..n-1
//
// with a[0] and c[n-1] ignored, writing the solution into x (which may
// alias d).  It is the Thomas algorithm: O(n), no pivoting, valid for
// diagonally dominant systems.
func Tridiag(a, b, c, d, x []float64) error {
	n := len(b)
	if len(a) != n || len(c) != n || len(d) != n || len(x) != n {
		return fmt.Errorf("solver: tridiag length mismatch")
	}
	if n == 0 {
		return nil
	}
	cp := make([]float64, n)
	dp := make([]float64, n)
	if b[0] == 0 {
		return fmt.Errorf("solver: zero pivot at row 0")
	}
	cp[0] = c[0] / b[0]
	dp[0] = d[0] / b[0]
	for i := 1; i < n; i++ {
		den := b[i] - a[i]*cp[i-1]
		if den == 0 {
			return fmt.Errorf("solver: zero pivot at row %d", i)
		}
		cp[i] = c[i] / den
		dp[i] = (d[i] - a[i]*dp[i-1]) / den
	}
	x[n-1] = dp[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = dp[i] - cp[i]*x[i+1]
	}
	return nil
}

// PeriodicTridiag solves the cyclic tridiagonal system
//
//	a[i]*x[(i-1+n)%n] + b[i]*x[i] + c[i]*x[(i+1)%n] = d[i]
//
// via the Sherman-Morrison reduction (two Thomas solves).  n must be >= 3.
func PeriodicTridiag(a, b, c, d, x []float64) error {
	n := len(b)
	if n < 3 {
		return fmt.Errorf("solver: periodic system needs n >= 3, got %d", n)
	}
	if len(a) != n || len(c) != n || len(d) != n || len(x) != n {
		return fmt.Errorf("solver: periodic tridiag length mismatch")
	}
	// Write the matrix as T' + u*v^T with gamma = -b[0]:
	// T' is tridiagonal with modified corners, u = (gamma,0,...,a[0])^T? —
	// standard form: u = (gamma, 0, ..., c[n-1])^T, v = (1, 0, ..., a[0]/gamma).
	gamma := -b[0]
	bp := make([]float64, n)
	copy(bp, b)
	bp[0] = b[0] - gamma
	bp[n-1] = b[n-1] - c[n-1]*a[0]/gamma

	y := make([]float64, n)
	if err := Tridiag(a, bp, c, d, y); err != nil {
		return err
	}
	u := make([]float64, n)
	u[0] = gamma
	u[n-1] = c[n-1]
	z := make([]float64, n)
	if err := Tridiag(a, bp, c, u, z); err != nil {
		return err
	}
	den := 1 + z[0] + a[0]*z[n-1]/gamma
	if den == 0 {
		return fmt.Errorf("solver: singular periodic system")
	}
	fact := (y[0] + a[0]*y[n-1]/gamma) / den
	for i := 0; i < n; i++ {
		x[i] = y[i] - fact*z[i]
	}
	return nil
}

// DenseSolve solves the n x n dense system A*x = rhs by Gaussian
// elimination with partial pivoting, overwriting A and rhs; the solution is
// returned in rhs.  A is row-major: A[i*n+j].
func DenseSolve(a []float64, rhs []float64) error {
	n := len(rhs)
	if len(a) != n*n {
		return fmt.Errorf("solver: dense system shape mismatch: %d vs %d", len(a), n*n)
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		best := math.Abs(a[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r*n+col]); v > best {
				best, piv = v, r
			}
		}
		if best == 0 {
			return fmt.Errorf("solver: singular dense system at column %d", col)
		}
		if piv != col {
			for j := 0; j < n; j++ {
				a[col*n+j], a[piv*n+j] = a[piv*n+j], a[col*n+j]
			}
			rhs[col], rhs[piv] = rhs[piv], rhs[col]
		}
		inv := 1 / a[col*n+col]
		for r := col + 1; r < n; r++ {
			f := a[r*n+col] * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				a[r*n+j] -= f * a[col*n+j]
			}
			rhs[r] -= f * rhs[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		s := rhs[r]
		for j := r + 1; j < n; j++ {
			s -= a[r*n+j] * rhs[j]
		}
		rhs[r] = s / a[r*n+r]
	}
	return nil
}

// flopsTridiag is the operation-count model for one Thomas solve.
func flopsTridiag(n int) float64 { return 8 * float64(n) }

// DistributedPeriodicTridiag solves a periodic tridiagonal system whose
// rows are block-distributed over the ranks of c in comm-rank order: this
// rank holds rows of the global system corresponding to its local slices
// a, b, cc, d (all of equal length >= 1; the global size must be >= 3).
// The solution for the local rows is written into x.
//
// Algorithm (substructuring): express the local unknowns as
// x = u + v*xPrev + w*xNext, where xPrev is the last unknown of the
// previous rank and xNext the first of the next rank, via three local
// Thomas solves; gather the six interface coefficients per rank onto rank
// 0; solve the 2P x 2P reduced system densely; broadcast the interface
// values; reconstruct locally.  Collective over c.
func DistributedPeriodicTridiag(c *comm.Comm, a, b, cc, d, x []float64) error {
	m := len(b)
	if len(a) != m || len(cc) != m || len(d) != m || len(x) != m {
		return fmt.Errorf("solver: distributed tridiag length mismatch")
	}
	p := c.Size()
	if p == 1 {
		return PeriodicTridiag(a, b, cc, d, x)
	}
	if m < 1 {
		return fmt.Errorf("solver: empty local block")
	}

	// Local solves: T u = d, T v = -a[0]*e_0, T w = -cc[m-1]*e_{m-1},
	// where T is the local tridiagonal block (a[0] and cc[m-1] stripped).
	u, v, w, err := localUVW(a, b, cc, d)
	if err != nil {
		return err
	}
	c.Proc().Compute(3 * flopsTridiag(m))

	// Reduced system over interface unknowns F_p = x_first of rank p and
	// L_p = x_last of rank p (F == L for single-row blocks):
	//   F_p - v_first*L_{p-1} - w_first*F_{p+1} = u_first
	//   L_p - v_last *L_{p-1} - w_last *F_{p+1} = u_last
	coeffs := []float64{u[0], v[0], w[0], u[m-1], v[m-1], w[m-1]}
	parts := c.Gatherv(0, coeffs)
	var iface []float64
	if c.Rank() == 0 {
		n := 2 * p
		mat := make([]float64, n*n)
		rhs := make([]float64, n)
		fi := func(q int) int { return 2 * ((q + p) % p) } // F_q index
		li := func(q int) int { return 2*((q+p)%p) + 1 }   // L_q index
		for q := 0; q < p; q++ {
			cf := parts[q]
			// F_q row.
			r := fi(q)
			mat[r*n+fi(q)] += 1
			mat[r*n+li(q-1)] -= cf[1]
			mat[r*n+fi(q+1)] -= cf[2]
			rhs[r] = cf[0]
			// L_q row.
			r = li(q)
			mat[r*n+li(q)] += 1
			mat[r*n+li(q-1)] -= cf[4]
			mat[r*n+fi(q+1)] -= cf[5]
			rhs[r] = cf[3]
		}
		if err := DenseSolve(mat, rhs); err != nil {
			return fmt.Errorf("solver: reduced system: %w", err)
		}
		c.Proc().Compute(float64(n * n * n / 3))
		iface = rhs
	}
	iface = c.Bcast(0, iface)

	// Reconstruct: x_i = u_i + v_i*L_{p-1} + w_i*F_{p+1}.
	prevLast := iface[2*((c.Rank()-1+p)%p)+1]
	nextFirst := iface[2*((c.Rank()+1)%p)]
	for i := 0; i < m; i++ {
		x[i] = u[i] + v[i]*prevLast + w[i]*nextFirst
	}
	c.Proc().Compute(4 * float64(m))
	return nil
}

// localUVW computes the substructuring representation x = u + v*xPrev +
// w*xNext for one local block.
func localUVW(a, b, cc, d []float64) (u, v, w []float64, err error) {
	m := len(b)
	u = make([]float64, m)
	v = make([]float64, m)
	w = make([]float64, m)
	if m == 1 {
		if b[0] == 0 {
			return nil, nil, nil, fmt.Errorf("solver: zero pivot in 1-row block")
		}
		u[0] = d[0] / b[0]
		v[0] = -a[0] / b[0]
		w[0] = -cc[0] / b[0]
		return u, v, w, nil
	}
	e0 := make([]float64, m)
	el := make([]float64, m)
	e0[0] = -a[0]
	el[m-1] = -cc[m-1]
	if err := Tridiag(a, b, cc, d, u); err != nil {
		return nil, nil, nil, err
	}
	if err := Tridiag(a, b, cc, e0, v); err != nil {
		return nil, nil, nil, err
	}
	if err := Tridiag(a, b, cc, el, w); err != nil {
		return nil, nil, nil, err
	}
	return u, v, w, nil
}

// DistributedPeriodicTridiagBatch solves L independent periodic tridiagonal
// systems that share one block distribution over the ranks of c: a[l], b[l],
// cc[l], d[l] and x[l] are the local slices of system l.  The interface
// coefficients of all systems travel in a single gather/broadcast pair, so
// the collective cost is amortized over the batch — the pattern the polar
// implicit-diffusion filter needs, with one system per (variable, row,
// layer) line.
//
// Virtual time for the rank-0 reduced solves is charged at the cost of a
// cyclic banded elimination, O(P) per system; the in-memory reference
// implementation uses dense elimination for simplicity.
func DistributedPeriodicTridiagBatch(c *comm.Comm, a, b, cc, d, x [][]float64) error {
	L := len(b)
	if len(a) != L || len(cc) != L || len(d) != L || len(x) != L {
		return fmt.Errorf("solver: batch length mismatch")
	}
	if L == 0 {
		return nil
	}
	p := c.Size()
	if p == 1 {
		for l := 0; l < L; l++ {
			if err := PeriodicTridiag(a[l], b[l], cc[l], d[l], x[l]); err != nil {
				return fmt.Errorf("solver: system %d: %w", l, err)
			}
		}
		return nil
	}

	us := make([][]float64, L)
	vs := make([][]float64, L)
	ws := make([][]float64, L)
	coeffs := make([]float64, 0, 6*L)
	for l := 0; l < L; l++ {
		m := len(b[l])
		if len(a[l]) != m || len(cc[l]) != m || len(d[l]) != m || len(x[l]) != m {
			return fmt.Errorf("solver: system %d slice mismatch", l)
		}
		u, v, w, err := localUVW(a[l], b[l], cc[l], d[l])
		if err != nil {
			return fmt.Errorf("solver: system %d: %w", l, err)
		}
		us[l], vs[l], ws[l] = u, v, w
		coeffs = append(coeffs, u[0], v[0], w[0], u[m-1], v[m-1], w[m-1])
		c.Proc().Compute(3 * flopsTridiag(m))
	}

	parts := c.Gatherv(0, coeffs)
	var iface []float64
	if c.Rank() == 0 {
		iface = make([]float64, 2*p*L)
		n := 2 * p
		mat := make([]float64, n*n)
		rhs := make([]float64, n)
		fi := func(q int) int { return 2 * ((q + p) % p) }
		li := func(q int) int { return 2*((q+p)%p) + 1 }
		for l := 0; l < L; l++ {
			for i := range mat {
				mat[i] = 0
			}
			for q := 0; q < p; q++ {
				cf := parts[q][6*l : 6*l+6]
				r := fi(q)
				mat[r*n+fi(q)] += 1
				mat[r*n+li(q-1)] -= cf[1]
				mat[r*n+fi(q+1)] -= cf[2]
				rhs[r] = cf[0]
				r = li(q)
				mat[r*n+li(q)] += 1
				mat[r*n+li(q-1)] -= cf[4]
				mat[r*n+fi(q+1)] -= cf[5]
				rhs[r] = cf[3]
			}
			if err := DenseSolve(mat, rhs); err != nil {
				return fmt.Errorf("solver: reduced system %d: %w", l, err)
			}
			copy(iface[2*p*l:2*p*(l+1)], rhs)
		}
		// Charge a cyclic banded elimination, O(P) per system.
		c.Proc().Compute(float64(L) * 30 * float64(p))
	}
	iface = c.Bcast(0, iface)

	for l := 0; l < L; l++ {
		base := 2 * p * l
		prevLast := iface[base+2*((c.Rank()-1+p)%p)+1]
		nextFirst := iface[base+2*((c.Rank()+1)%p)]
		u, v, w := us[l], vs[l], ws[l]
		for i := range x[l] {
			x[l][i] = u[i] + v[i]*prevLast + w[i]*nextFirst
		}
		c.Proc().Compute(4 * float64(len(x[l])))
	}
	return nil
}
