package solver_test

import (
	"fmt"

	"agcm/internal/solver"
)

// Tridiag solves a diagonally dominant tridiagonal system with the Thomas
// algorithm — the kernel behind implicit vertical diffusion in a column.
func ExampleTridiag() {
	// (I + 2k)x_i - k x_{i-1} - k x_{i+1} = d with k = 1.
	a := []float64{0, -1, -1, -1}
	b := []float64{2, 3, 3, 2}
	c := []float64{-1, -1, -1, 0}
	d := []float64{1, 0, 0, 1}
	x := make([]float64, 4)
	if err := solver.Tridiag(a, b, c, d, x); err != nil {
		panic(err)
	}
	fmt.Printf("%.4f\n", x)
	// Output:
	// [0.6667 0.3333 0.3333 0.6667]
}

// PeriodicTridiag handles the wrap-around coupling of a latitude circle.
func ExamplePeriodicTridiag() {
	n := 4
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	d := make([]float64, n)
	for i := range b {
		a[i], b[i], c[i] = -1, 3, -1
		d[i] = float64(i + 1)
	}
	x := make([]float64, n)
	if err := solver.PeriodicTridiag(a, b, c, d, x); err != nil {
		panic(err)
	}
	// Verify: residual of row 2 (0-indexed): -x[1] + 3x[2] - x[3] = 3.
	fmt.Printf("residual row 2: %.6f\n", -x[1]+3*x[2]-x[3])
	// Output:
	// residual row 2: 3.000000
}
