package solver

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"agcm/internal/comm"
	"agcm/internal/machine"
	"agcm/internal/sim"
)

// randSystem builds a random diagonally dominant (cyclic) tridiagonal
// system of size n and a known solution, returning (a, b, c, want, d)
// with d computed as A*want under the given periodicity.
func randSystem(n int, periodic bool, seed int64) (a, b, c, want, d []float64) {
	rng := rand.New(rand.NewSource(seed))
	a = make([]float64, n)
	b = make([]float64, n)
	c = make([]float64, n)
	want = make([]float64, n)
	d = make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = rng.Float64() - 0.5
		c[i] = rng.Float64() - 0.5
		b[i] = 2 + rng.Float64() // diagonally dominant
		want[i] = rng.NormFloat64()
	}
	for i := 0; i < n; i++ {
		d[i] = b[i] * want[i]
		if periodic {
			d[i] += a[i]*want[(i-1+n)%n] + c[i]*want[(i+1)%n]
		} else {
			if i > 0 {
				d[i] += a[i] * want[i-1]
			}
			if i < n-1 {
				d[i] += c[i] * want[i+1]
			}
		}
	}
	return a, b, c, want, d
}

func maxErr(got, want []float64) float64 {
	m := 0.0
	for i := range got {
		if e := math.Abs(got[i] - want[i]); e > m {
			m = e
		}
	}
	return m
}

func TestTridiagSolvesRandomSystems(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 17, 100} {
		a, b, c, want, d := randSystem(n, false, int64(n))
		x := make([]float64, n)
		if err := Tridiag(a, b, c, d, x); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if e := maxErr(x, want); e > 1e-10 {
			t.Fatalf("n=%d: error %g", n, e)
		}
	}
}

func TestTridiagAliasedOutput(t *testing.T) {
	a, b, c, want, d := randSystem(20, false, 7)
	if err := Tridiag(a, b, c, d, d); err != nil {
		t.Fatal(err)
	}
	if e := maxErr(d, want); e > 1e-10 {
		t.Fatalf("aliased solve error %g", e)
	}
}

func TestTridiagErrors(t *testing.T) {
	if err := Tridiag(make([]float64, 2), make([]float64, 3),
		make([]float64, 3), make([]float64, 3), make([]float64, 3)); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := Tridiag([]float64{0}, []float64{0}, []float64{0},
		[]float64{1}, make([]float64, 1)); err == nil {
		t.Error("zero pivot accepted")
	}
	if err := Tridiag(nil, nil, nil, nil, nil); err != nil {
		t.Errorf("empty system should be a no-op: %v", err)
	}
}

func TestPeriodicTridiagSolvesRandomSystems(t *testing.T) {
	for _, n := range []int{3, 4, 8, 30, 144} {
		a, b, c, want, d := randSystem(n, true, int64(100+n))
		x := make([]float64, n)
		if err := PeriodicTridiag(a, b, c, d, x); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if e := maxErr(x, want); e > 1e-9 {
			t.Fatalf("n=%d: error %g", n, e)
		}
	}
}

func TestPeriodicTridiagRejectsTinySystems(t *testing.T) {
	if err := PeriodicTridiag(make([]float64, 2), make([]float64, 2),
		make([]float64, 2), make([]float64, 2), make([]float64, 2)); err == nil {
		t.Error("n=2 accepted")
	}
}

func TestPeriodicTridiagProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%60 + 3
		a, b, c, want, d := randSystem(n, true, seed)
		x := make([]float64, n)
		if err := PeriodicTridiag(a, b, c, d, x); err != nil {
			return false
		}
		return maxErr(x, want) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDenseSolve(t *testing.T) {
	// A fixed well-conditioned system.
	a := []float64{4, 1, 0, 1, 3, -1, 2, -1, 5}
	want := []float64{1, -2, 3}
	rhs := make([]float64, 3)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			rhs[r] += a[r*3+c] * want[c]
		}
	}
	if err := DenseSolve(append([]float64(nil), a...), rhs); err != nil {
		t.Fatal(err)
	}
	if e := maxErr(rhs, want); e > 1e-12 {
		t.Fatalf("dense error %g", e)
	}
}

func TestDenseSolveNeedsPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := []float64{0, 1, 1, 0}
	rhs := []float64{2, 3}
	if err := DenseSolve(a, rhs); err != nil {
		t.Fatal(err)
	}
	if rhs[0] != 3 || rhs[1] != 2 {
		t.Fatalf("pivoted solve = %v", rhs)
	}
}

func TestDenseSolveSingular(t *testing.T) {
	if err := DenseSolve([]float64{1, 2, 2, 4}, []float64{1, 2}); err == nil {
		t.Error("singular matrix accepted")
	}
	if err := DenseSolve([]float64{1, 2, 3}, []float64{1, 2}); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestDistributedPeriodicTridiagMatchesSerial(t *testing.T) {
	// Property: the distributed solve over any rank count equals the
	// serial periodic solve of the same global system.
	for _, tc := range []struct{ n, p int }{
		{12, 1}, {12, 2}, {12, 3}, {12, 4}, {30, 5}, {31, 4}, {8, 8}, {144, 8},
	} {
		tc := tc
		t.Run(fmt.Sprintf("n%d_p%d", tc.n, tc.p), func(t *testing.T) {
			a, b, c, want, d := randSystem(tc.n, true, int64(tc.n*100+tc.p))
			m := sim.New(tc.p, machine.CrayT3D())
			results := make([][]float64, tc.p)
			_, err := m.Run(func(proc *sim.Proc) error {
				world := comm.World(proc)
				lo := world.Rank() * tc.n / tc.p
				hi := (world.Rank() + 1) * tc.n / tc.p
				x := make([]float64, hi-lo)
				err := DistributedPeriodicTridiag(world,
					a[lo:hi], b[lo:hi], c[lo:hi], d[lo:hi], x)
				if err != nil {
					return err
				}
				results[world.Rank()] = x
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			var got []float64
			for _, r := range results {
				got = append(got, r...)
			}
			if e := maxErr(got, want); e > 1e-8 {
				t.Fatalf("distributed error %g vs exact solution", e)
			}
		})
	}
}

func TestDistributedBatchMatchesSerial(t *testing.T) {
	// L independent systems solved in one batched call must match the
	// serial periodic solutions, on several rank counts.
	const n, L = 24, 7
	type sys struct{ a, b, c, want, d []float64 }
	systems := make([]sys, L)
	for l := range systems {
		a, b, c, want, d := randSystem(n, true, int64(500+l))
		systems[l] = sys{a, b, c, want, d}
	}
	for _, p := range []int{1, 2, 3, 4, 8} {
		p := p
		t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
			results := make([][][]float64, p) // [rank][system] local solution
			m := sim.New(p, machine.CrayT3D())
			_, err := m.Run(func(proc *sim.Proc) error {
				world := comm.World(proc)
				lo := world.Rank() * n / p
				hi := (world.Rank() + 1) * n / p
				as := make([][]float64, L)
				bs := make([][]float64, L)
				cs := make([][]float64, L)
				ds := make([][]float64, L)
				xs := make([][]float64, L)
				for l := range systems {
					as[l] = systems[l].a[lo:hi]
					bs[l] = systems[l].b[lo:hi]
					cs[l] = systems[l].c[lo:hi]
					ds[l] = systems[l].d[lo:hi]
					xs[l] = make([]float64, hi-lo)
				}
				if err := DistributedPeriodicTridiagBatch(world, as, bs, cs, ds, xs); err != nil {
					return err
				}
				results[world.Rank()] = xs
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for l := range systems {
				var got []float64
				for rank := 0; rank < p; rank++ {
					got = append(got, results[rank][l]...)
				}
				if e := maxErr(got, systems[l].want); e > 1e-8 {
					t.Fatalf("system %d: error %g", l, e)
				}
			}
		})
	}
}

func TestDistributedBatchEmptyAndMismatch(t *testing.T) {
	m := sim.New(2, machine.CrayT3D())
	_, err := m.Run(func(proc *sim.Proc) error {
		world := comm.World(proc)
		// Empty batch is a no-op.
		if err := DistributedPeriodicTridiagBatch(world, nil, nil, nil, nil, nil); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run(func(proc *sim.Proc) error {
		world := comm.World(proc)
		bad := [][]float64{make([]float64, 3)}
		good := [][]float64{make([]float64, 4)}
		return DistributedPeriodicTridiagBatch(world, bad, good, good, good, good)
	})
	if err == nil {
		t.Fatal("slice mismatch accepted")
	}
}

func TestDistributedSolveChargesTime(t *testing.T) {
	a, b, c, _, d := randSystem(64, true, 3)
	m := sim.New(4, machine.Paragon())
	res, err := m.Run(func(proc *sim.Proc) error {
		world := comm.World(proc)
		lo, hi := world.Rank()*16, world.Rank()*16+16
		x := make([]float64, 16)
		return DistributedPeriodicTridiag(world, a[lo:hi], b[lo:hi], c[lo:hi], d[lo:hi], x)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxClock() <= 0 {
		t.Fatal("no virtual time charged")
	}
	if res.TotalMessages() == 0 {
		t.Fatal("no messages counted for a distributed solve")
	}
}

func TestDistributedLengthMismatch(t *testing.T) {
	m := sim.New(2, machine.Paragon())
	_, err := m.Run(func(proc *sim.Proc) error {
		world := comm.World(proc)
		return DistributedPeriodicTridiag(world,
			make([]float64, 3), make([]float64, 4), make([]float64, 4),
			make([]float64, 4), make([]float64, 4))
	})
	if err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func BenchmarkTridiag144(b *testing.B) {
	a, bb, c, _, d := randSystem(144, false, 1)
	x := make([]float64, 144)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Tridiag(a, bb, c, d, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPeriodicTridiag144(b *testing.B) {
	a, bb, c, _, d := randSystem(144, true, 1)
	x := make([]float64, 144)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := PeriodicTridiag(a, bb, c, d, x); err != nil {
			b.Fatal(err)
		}
	}
}
