package workload

// Generate expands a Spec into a Schedule: the deterministic heart of the
// engine.  Three independent derived rngs (arrival clock, class mix, one
// popularity stream per class) keep the draws decoupled — changing one
// class's pool skew cannot shift another class's arrival times — while the
// single spec seed still pins every byte.

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"agcm/internal/core"
)

// Derived-seed offsets.  Arbitrary odd constants; what matters is that the
// streams differ and never change, or every committed trace goes stale.
const (
	seedArrival   = 0x5eed0a11
	seedClassMix  = 0x5eed0c1a
	seedPoolBase  = 0x5eed0b00
	seedPoolClass = 1000003 // per-class stride on top of seedPoolBase
)

// picker draws a pool index for one class.
type picker func() int

// newPicker returns the pool-index draw for a canonicalized class: Zipf
// with the spec'd exponent when set (index 0 hottest), uniform otherwise.
func newPicker(rng *rand.Rand, p Pool) picker {
	if p.Zipf > 1 {
		z := rand.NewZipf(rng, p.Zipf, 1, uint64(p.Distinct-1))
		return func() int { return int(z.Uint64()) }
	}
	n := p.Distinct
	return func() int { return rng.Intn(n) }
}

// configJSON renders the canonical-schema config object a request of class
// c at pool index idx asks for.  The layout is fixed — field order, float
// formatting, no whitespace — so equal (class, idx) always yields equal
// bytes.
func configJSON(c Class, idx int) string {
	var b strings.Builder
	b.Grow(128)
	b.WriteString(`{"nlon":`)
	b.WriteString(strconv.Itoa(c.Template.Nlon))
	b.WriteString(`,"nlat":`)
	b.WriteString(strconv.Itoa(c.Template.Nlat))
	b.WriteString(`,"nlayers":`)
	b.WriteString(strconv.Itoa(c.Template.Nlayers))
	b.WriteString(`,"machine":"`)
	b.WriteString(c.Template.Machine)
	b.WriteString(`","mesh_py":`)
	b.WriteString(strconv.Itoa(c.Template.MeshPy))
	b.WriteString(`,"mesh_px":`)
	b.WriteString(strconv.Itoa(c.Template.MeshPx))
	b.WriteString(`,"filter":"`)
	b.WriteString(c.Template.Filter)
	b.WriteString(`","init_wind":`)
	b.WriteString(fmtFloat(poolWind(idx)))
	b.WriteString(`}`)
	return b.String()
}

// body renders the exact POST /v1/run payload for one request of class c
// asking for pool index idx.
func body(c Class, idx int) string {
	var b strings.Builder
	b.Grow(224)
	b.WriteString(`{"config":`)
	b.WriteString(configJSON(c, idx))
	b.WriteString(`,"steps":`)
	b.WriteString(strconv.Itoa(c.Steps))
	b.WriteString(`,"priority":"`)
	b.WriteString(c.Priority)
	b.WriteString(`","slo":"`)
	b.WriteString(c.Name)
	b.WriteString(`"`)
	if c.TimeoutMS > 0 {
		b.WriteString(`,"timeout_ms":`)
		b.WriteString(strconv.Itoa(c.TimeoutMS))
	}
	b.WriteString(`}`)
	return b.String()
}

// poolWind maps a pool index to the config's initial wind speed.  20 m/s is
// the config default; each index offsets it by 0.25 m/s, a perturbation
// small enough to keep every pool config numerically tame but large enough
// that every index is a distinct ConfigKey.
func poolWind(idx int) float64 { return 20 + 0.25*float64(idx) }

// Config returns the core config a request of class c at pool index idx
// simulates — the parsed form of the body's "config" object.  The
// scheduler simulator uses it to predict per-request cost without HTTP in
// the loop.
func (c Class) Config(idx int) (core.Config, error) {
	return core.ConfigFromCanonicalJSON([]byte(configJSON(c, idx)))
}

// Generate expands the spec into its schedule.  The same spec (up to
// canonicalization) always produces byte-identical requests.
func Generate(spec Spec) (*Schedule, error) {
	cs, err := spec.WithDefaults()
	if err != nil {
		return nil, err
	}

	// Fail on unsimulatable templates up front by round-tripping each
	// class's config through the server's own canonical parser.
	for _, c := range cs.Classes {
		if _, err := c.Config(c.Pool.Distinct - 1); err != nil {
			return nil, fmt.Errorf("workload: class %q template: %w", c.Name, err)
		}
	}

	arrivalRng := rand.New(rand.NewSource(cs.Seed + seedArrival))
	classRng := rand.New(rand.NewSource(cs.Seed + seedClassMix))
	draw := newSampler(cs.Arrival)

	pickers := make([]picker, len(cs.Classes))
	for i, c := range cs.Classes {
		poolRng := rand.New(rand.NewSource(cs.Seed + seedPoolBase + seedPoolClass*int64(i+1)))
		pickers[i] = newPicker(poolRng, c.Pool)
	}

	var totalWeight float64
	for _, c := range cs.Classes {
		totalWeight += c.Weight
	}

	sched := &Schedule{
		Spec:     cs,
		Requests: make([]Request, 0, cs.Requests),
	}
	t := 0.0
	for seq := 0; seq < cs.Requests; seq++ {
		t = nextArrival(cs.Arrival, arrivalRng, draw, t)

		ci := len(cs.Classes) - 1
		u := classRng.Float64() * totalWeight
		for i, c := range cs.Classes {
			if u < c.Weight {
				ci = i
				break
			}
			u -= c.Weight
		}
		c := cs.Classes[ci]
		idx := pickers[ci]()

		sched.Requests = append(sched.Requests, Request{
			Seq:       seq,
			AtUS:      int64(math.Round(t * 1e6)),
			Class:     c.Name,
			Priority:  c.Priority,
			PoolIndex: idx,
			Steps:     c.Steps,
			TimeoutMS: c.TimeoutMS,
			Body:      body(c, idx),
		})
	}
	return sched, nil
}
