package workload

import (
	"reflect"
	"testing"
)

func schedulingSchedule(t *testing.T) *Schedule {
	t.Helper()
	sched, err := Generate(SchedulingSpec())
	if err != nil {
		t.Fatal(err)
	}
	return sched
}

func TestSimulateDeterministic(t *testing.T) {
	sched := schedulingSchedule(t)
	for _, policy := range Policies {
		a, err := Simulate(sched, SimOptions{Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Simulate(sched, SimOptions{Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("policy %s: repeated simulation differs", policy)
		}
	}
}

func TestSimulateCompletesEveryRequest(t *testing.T) {
	sched := schedulingSchedule(t)
	for _, policy := range Policies {
		res, err := Simulate(sched, SimOptions{Policy: policy, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, c := range res.Classes {
			total += c.Requests
		}
		if total != len(sched.Requests) || res.Requests != len(sched.Requests) {
			t.Fatalf("policy %s: %d of %d requests completed", policy, total, len(sched.Requests))
		}
		if res.MakespanUS <= sched.Requests[len(sched.Requests)-1].AtUS {
			t.Fatalf("policy %s: makespan %d before last arrival", policy, res.MakespanUS)
		}
	}
}

func TestSimulateSJFImprovesInteractiveP95(t *testing.T) {
	sched := schedulingSchedule(t)
	fcfs, err := Simulate(sched, SimOptions{Policy: "fcfs"})
	if err != nil {
		t.Fatal(err)
	}
	sjf, err := Simulate(sched, SimOptions{Policy: "sjf"})
	if err != nil {
		t.Fatal(err)
	}
	fi, si := fcfs.Class("interactive"), sjf.Class("interactive")
	if fi.Requests == 0 || si.Requests == 0 {
		t.Fatal("interactive class missing from results")
	}
	if si.P95US > fi.P95US {
		t.Fatalf("sjf interactive p95 %dus worse than fcfs %dus", si.P95US, fi.P95US)
	}
	// The reference spec is tuned so the gap is substantial, not marginal;
	// catching a regression that erodes it matters for BENCH_9.
	if float64(si.P95US) > 0.75*float64(fi.P95US) {
		t.Fatalf("sjf interactive p95 %dus did not improve meaningfully on fcfs %dus", si.P95US, fi.P95US)
	}
	if sjf.MaxClassSlowdown >= fcfs.MaxClassSlowdown {
		t.Fatalf("sjf max-class-slowdown %.2f not below fcfs %.2f", sjf.MaxClassSlowdown, fcfs.MaxClassSlowdown)
	}
}

// TestSimulateFCFSSingleWorkerPreservesArrivalOrder pins the fcfs policy's
// defining property in the model: with one worker and uniform admission
// priority, mean latency ordering degenerates to pure FIFO — every request
// waits exactly for its predecessors.
func TestSimulateFCFSSingleWorkerPreservesArrivalOrder(t *testing.T) {
	spec := Spec{
		Requests: 50,
		Arrival:  Arrival{RatePerSec: 100},
		Classes:  []Class{{Name: "interactive"}},
	}
	sched, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(sched, SimOptions{Policy: "fcfs", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// All jobs identical: under FIFO the makespan is exactly first-start +
	// n*service (the server never idles once the queue is non-empty).
	svc := res.Classes[0].MeanServiceUS
	want := sched.Requests[0].AtUS + int64(len(sched.Requests))*svc
	if res.MakespanUS != want {
		t.Fatalf("fcfs single-worker makespan %d, want %d", res.MakespanUS, want)
	}
}

func TestSimulatePriorityFavorsInteractive(t *testing.T) {
	sched := schedulingSchedule(t)
	fcfs, err := Simulate(sched, SimOptions{Policy: "fcfs"})
	if err != nil {
		t.Fatal(err)
	}
	prio, err := Simulate(sched, SimOptions{Policy: "priority"})
	if err != nil {
		t.Fatal(err)
	}
	if prio.Class("interactive").MeanLatencyUS >= fcfs.Class("interactive").MeanLatencyUS {
		t.Fatal("priority policy did not reduce interactive mean latency under load")
	}
}

func TestSimulateRejectsUnknownPolicy(t *testing.T) {
	sched := schedulingSchedule(t)
	if _, err := Simulate(sched, SimOptions{Policy: "lifo"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestSimulateServiceScale(t *testing.T) {
	sched := schedulingSchedule(t)
	full, err := Simulate(sched, SimOptions{Policy: "fcfs"})
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := Simulate(sched, SimOptions{Policy: "fcfs", ServiceScale: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if tiny.Class("interactive").MeanServiceUS >= full.Class("interactive").MeanServiceUS {
		t.Fatal("service scale did not shrink service demands")
	}
	// At negligible service demand nothing queues: slowdown collapses to ~1.
	if tiny.MaxClassSlowdown > 1.5 {
		t.Fatalf("unloaded system still shows slowdown %.2f", tiny.MaxClassSlowdown)
	}
}
