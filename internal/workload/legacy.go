package workload

// Legacy mix: the seeded dup/Zipf request sequence agcmload has always
// fired, moved here verbatim so the load generator's classic mode and the
// workload engine share one home.  The draw order and formatting are
// load-bearing — BENCH_5/BENCH_6 runs and the CI smoke mixes are seeded —
// so these must keep producing byte-identical sequences.

import (
	"fmt"
	"math/rand"
	"strconv"
)

// PoolBody builds the i-th distinct request body of the legacy mix.  The
// pool cycles meshes and filters and then varies init_wind, so it is
// unbounded and every index maps to a distinct config (hence a distinct
// job key).
func PoolBody(i, steps int) string {
	meshes := [][2]int{{1, 1}, {1, 2}, {2, 1}, {2, 2}}
	filters := []string{
		"fft", "fft-load-balanced", "convolution-ring",
		"convolution-tree", "polar-implicit-diffusion", "none",
	}
	mesh := meshes[i%len(meshes)]
	filter := filters[(i/len(meshes))%len(filters)]
	wind := 20.0 + float64(i/(len(meshes)*len(filters)))
	return fmt.Sprintf(`{"config":{"nlon":36,"nlat":24,"nlayers":3,"machine":"paragon",`+
		`"mesh_py":%d,"mesh_px":%d,"filter":%q,"init_wind":%s},"steps":%d}`,
		mesh[0], mesh[1], filter, strconv.FormatFloat(wind, 'g', -1, 64), steps)
}

// Sequence fixes the legacy request mix up front: with probability dup a
// request repeats an already-issued config, otherwise it draws the next
// fresh one.  With zipf > 1 repeats are Zipf-skewed toward the earliest
// configs (a hot-key distribution, the regime key-affinity routing is
// built for); with zipf = 0 repeats are uniform.  Seeded, so the same
// arguments reproduce the same mix.
func Sequence(n int, dup, zipf float64, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	seq := make([]int, n)
	fresh := 0
	for i := range seq {
		if fresh > 0 && rng.Float64() < dup {
			if zipf > 1 && fresh > 1 {
				z := rand.NewZipf(rng, zipf, 1, uint64(fresh-1))
				seq[i] = int(z.Uint64())
			} else {
				seq[i] = rng.Intn(fresh)
			}
		} else {
			seq[i] = fresh
			fresh++
		}
	}
	rng.Shuffle(n, func(i, j int) { seq[i], seq[j] = seq[j], seq[i] })
	return seq
}
