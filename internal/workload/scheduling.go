package workload

// SchedulingSpec is the committed reference workload behind BENCH_9 and the
// CI `scheduling` gates (workloads/scheduling.json is its canonical
// encoding; a test pins the two together).  The shape is chosen to make
// scheduler differences visible and stable:
//
//   - Both classes carry admission priority "normal", so the fcfs baseline
//     is a true FIFO — the priority and sjf policies then show their effect
//     against it rather than against an already-prioritized queue.
//   - The interactive class is a small 1x1 grid, the batch class a 4-rank
//     grid with triple the steps: the cost oracle puts them ~5x apart, so
//     sjf has real spread to exploit.
//   - The mean rate sits near the 4-worker pool's capacity and the diurnal
//     swing (amplitude 0.7) pushes peaks well past it: queues build at the
//     crest and drain in the trough, which is exactly where scheduling
//     policy matters.
//   - Zipf popularity (exponent ~1.2 over small pools) gives live replays a
//     realistic cache-hit mix without affecting the queueing model.
// SchedulingSpecInverted is the label-inverted variant of SchedulingSpec:
// the per-class work (template, steps) is swapped so the expensive grid
// carries the interactive label, and the arrival rate is lowered to keep
// the offered load near the reference workload's.  Priority scheduling
// still favors the label; sjf follows predicted cost — on this variant the
// two must disagree, which is what distinguishes a cost oracle from a
// class rank.
func SchedulingSpecInverted() Spec {
	inv := SchedulingSpec()
	inv.Name += "-label-inverted"
	inv.Classes = append([]Class(nil), inv.Classes...)
	inv.Classes[0].Template, inv.Classes[1].Template =
		inv.Classes[1].Template, inv.Classes[0].Template
	inv.Classes[0].Steps, inv.Classes[1].Steps =
		inv.Classes[1].Steps, inv.Classes[0].Steps
	inv.Arrival.RatePerSec = 0.32
	return inv
}

func SchedulingSpec() Spec {
	return Spec{
		Name:     "scheduling",
		Seed:     42,
		Requests: 400,
		Arrival: Arrival{
			Process:          "poisson",
			RatePerSec:       0.55,
			DiurnalAmplitude: 0.7,
			DiurnalPeriodSec: 120,
		},
		Classes: []Class{
			{
				Name:     "interactive",
				Weight:   0.7,
				Priority: "normal",
				Steps:    1,
				Pool:     Pool{Distinct: 24, Zipf: 1.2},
				Template: Template{
					Nlon: 36, Nlat: 24, Nlayers: 3,
					Machine: "paragon", MeshPy: 1, MeshPx: 1, Filter: "fft",
				},
			},
			{
				Name:     "batch",
				Weight:   0.3,
				Priority: "normal",
				Steps:    3,
				Pool:     Pool{Distinct: 12, Zipf: 1.15},
				Template: Template{
					Nlon: 72, Nlat: 46, Nlayers: 9,
					Machine: "paragon", MeshPy: 2, MeshPx: 2, Filter: "fft",
				},
			},
		},
	}
}
