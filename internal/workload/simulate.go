package workload

// Simulate: a deterministic virtual-time queueing model of the serving
// daemon's admission queue and worker pool.  It runs a schedule through a
// scheduling policy — the same three the live server offers — with service
// demands from a pluggable core.CostOracle (the linear PredictCost by
// default, the calibrated roofline model via SimOptions.Oracle), and reports
// per-class latency and fairness.  Everything is integer microseconds and
// fixed-order iteration, so the same (schedule, options) always produces
// the same result: BENCH_9's scheduler comparison is a committable
// artifact, not a host measurement.

import (
	"container/heap"
	"fmt"
	"sort"

	"agcm/internal/core"
)

// Policies lists the scheduling policies, in report order.  The names
// match the live server's -scheduler flag.
var Policies = []string{"fcfs", "priority", "sjf"}

// classRank orders SLO classes for the priority policy: interactive
// before batch.
func classRank(name string) int {
	if name == "interactive" {
		return 0
	}
	return 1
}

// SimOptions configures one simulation.
type SimOptions struct {
	// Policy is the scheduling policy: "fcfs" (admission-priority bands,
	// FIFO within — the live server's default), "priority" (SLO class
	// first, then admission priority, then arrival), or "sjf" (predicted
	// cost first, arrival breaks ties).
	Policy string
	// Workers is the worker-pool size (default 4).
	Workers int
	// ServiceScale converts the oracle's predicted machine-seconds into
	// the arrival timeline's seconds (default 1).  It models how fast the
	// host executes simulated work relative to the workload clock; the
	// policy comparison holds at any fixed scale.
	ServiceScale float64
	// Oracle prices requests; nil means the built-in linear
	// core.PredictCost.  Install a roofline.Machine (via
	// core.CostOracle) to drive the what-if on predicted host seconds —
	// with ServiceScale 1, the virtual timeline then reads in real host
	// time.
	Oracle core.CostOracle
}

// simJob is one request in flight through the model.
type simJob struct {
	req    *Request
	costUS int64 // service demand in virtual microseconds
	doneUS int64 // completion time, filled at dispatch
}

// jobOrder returns the policy's strict ordering over queued jobs; arrival
// sequence breaks every tie, so the order is total and the simulation
// deterministic.
func jobOrder(policy string) (func(a, b *simJob) bool, error) {
	switch policy {
	case "fcfs":
		return func(a, b *simJob) bool {
			ar, br := priorityRank(a.req.Priority), priorityRank(b.req.Priority)
			if ar != br {
				return ar < br
			}
			return a.req.Seq < b.req.Seq
		}, nil
	case "priority":
		return func(a, b *simJob) bool {
			ac, bc := classRank(a.req.Class), classRank(b.req.Class)
			if ac != bc {
				return ac < bc
			}
			ar, br := priorityRank(a.req.Priority), priorityRank(b.req.Priority)
			if ar != br {
				return ar < br
			}
			return a.req.Seq < b.req.Seq
		}, nil
	case "sjf":
		return func(a, b *simJob) bool {
			if a.costUS != b.costUS {
				return a.costUS < b.costUS
			}
			return a.req.Seq < b.req.Seq
		}, nil
	}
	return nil, fmt.Errorf("workload: unknown policy %q (fcfs, priority, sjf)", policy)
}

// jobHeap is the ready queue under a policy's ordering.
type jobHeap struct {
	jobs []*simJob
	less func(a, b *simJob) bool
}

func (h *jobHeap) Len() int           { return len(h.jobs) }
func (h *jobHeap) Less(i, j int) bool { return h.less(h.jobs[i], h.jobs[j]) }
func (h *jobHeap) Swap(i, j int)      { h.jobs[i], h.jobs[j] = h.jobs[j], h.jobs[i] }
func (h *jobHeap) Push(x any)         { h.jobs = append(h.jobs, x.(*simJob)) }
func (h *jobHeap) Pop() any {
	old := h.jobs
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	h.jobs = old[:n-1]
	return x
}

// doneHeap orders in-service jobs by completion time, arrival sequence on
// ties — the deterministic completion order.
type doneHeap []*simJob

func (h doneHeap) Len() int { return len(h) }
func (h doneHeap) Less(i, j int) bool {
	if h[i].doneUS != h[j].doneUS {
		return h[i].doneUS < h[j].doneUS
	}
	return h[i].req.Seq < h[j].req.Seq
}
func (h doneHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *doneHeap) Push(x any)   { *h = append(*h, x.(*simJob)) }
func (h *doneHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// ClassStats is one SLO class's latency and fairness summary.  Times are
// virtual microseconds; Slowdown is mean (queueing+service)/service, the
// classic flow-time slowdown (1 = never waited).
type ClassStats struct {
	Class         string  `json:"class"`
	Requests      int     `json:"requests"`
	MeanServiceUS int64   `json:"mean_service_us"`
	MeanLatencyUS int64   `json:"mean_latency_us"`
	P50US         int64   `json:"p50_us"`
	P95US         int64   `json:"p95_us"`
	P99US         int64   `json:"p99_us"`
	MaxUS         int64   `json:"max_us"`
	Slowdown      float64 `json:"slowdown"`
}

// SimResult is one policy's run over a schedule.
type SimResult struct {
	Policy           string       `json:"policy"`
	Workers          int          `json:"workers"`
	Requests         int          `json:"requests"`
	MakespanUS       int64        `json:"makespan_us"`
	Classes          []ClassStats `json:"classes"`
	MaxClassSlowdown float64      `json:"max_class_slowdown"`
}

// Class returns the stats for a class name, or a zero value if the class
// never appeared.
func (r *SimResult) Class(name string) ClassStats {
	for _, c := range r.Classes {
		if c.Class == name {
			return c
		}
	}
	return ClassStats{}
}

// percentile returns the nearest-rank percentile of a sorted int64 slice.
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.9999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Simulate runs the schedule through the policy's queue on a fixed worker
// pool and returns per-class latency and fairness statistics.
func Simulate(sched *Schedule, opt SimOptions) (*SimResult, error) {
	if opt.Workers == 0 {
		opt.Workers = 4
	}
	if opt.Workers < 0 {
		return nil, fmt.Errorf("workload: workers must be positive, got %d", opt.Workers)
	}
	if opt.ServiceScale == 0 {
		opt.ServiceScale = 1
	}
	if opt.ServiceScale < 0 {
		return nil, fmt.Errorf("workload: service scale must be positive, got %g", opt.ServiceScale)
	}
	less, err := jobOrder(opt.Policy)
	if err != nil {
		return nil, err
	}

	// Predicted service demand per distinct (class, pool index).
	classByName := make(map[string]Class, len(sched.Spec.Classes))
	for _, c := range sched.Spec.Classes {
		classByName[c.Name] = c
	}
	costCache := make(map[string]int64)
	costOf := func(r *Request) (int64, error) {
		key := r.Key()
		if c, ok := costCache[key]; ok {
			return c, nil
		}
		cls, ok := classByName[r.Class]
		if !ok {
			return 0, fmt.Errorf("workload: request %d names class %q absent from spec", r.Seq, r.Class)
		}
		cfg, err := cls.Config(r.PoolIndex)
		if err != nil {
			return 0, err
		}
		sec, err := core.PredictCostWith(opt.Oracle, cfg, r.Steps)
		if err != nil {
			return 0, err
		}
		us := int64(sec * opt.ServiceScale * 1e6)
		if us < 1 {
			us = 1
		}
		costCache[key] = us
		return us, nil
	}

	jobs := make([]*simJob, len(sched.Requests))
	for i := range sched.Requests {
		r := &sched.Requests[i]
		cost, err := costOf(r)
		if err != nil {
			return nil, err
		}
		jobs[i] = &simJob{req: r, costUS: cost}
	}

	// Event loop: dispatch whenever a worker is free and the ready queue is
	// non-empty; otherwise advance the clock to the next completion or
	// arrival.  Completions at time t land before arrivals at t, so a
	// freed worker is visible to a simultaneous arrival — and both orders
	// are fixed, so the walk is deterministic.
	ready := &jobHeap{less: less}
	var busy doneHeap
	var clock int64
	free := opt.Workers
	next := 0 // next arrival index
	completed := 0
	var makespan int64

	type obs struct {
		latencyUS int64
		costUS    int64
	}
	perClass := make(map[string][]obs)

	for completed < len(jobs) {
		if free > 0 && ready.Len() > 0 {
			j := heap.Pop(ready).(*simJob)
			free--
			j.doneUS = clock + j.costUS
			heap.Push(&busy, j)
			continue
		}
		// Advance to the next event.
		var nextAt int64 = -1
		if next < len(jobs) {
			nextAt = jobs[next].req.AtUS
		}
		var nextDone int64 = -1
		if len(busy) > 0 {
			nextDone = busy[0].doneUS
		}
		switch {
		case nextDone >= 0 && (nextAt < 0 || nextDone <= nextAt):
			clock = nextDone
		case nextAt >= 0:
			clock = nextAt
		default:
			return nil, fmt.Errorf("workload: simulation stalled with %d jobs incomplete", len(jobs)-completed)
		}
		for len(busy) > 0 && busy[0].doneUS == clock {
			j := heap.Pop(&busy).(*simJob)
			free++
			completed++
			if j.doneUS > makespan {
				makespan = j.doneUS
			}
			perClass[j.req.Class] = append(perClass[j.req.Class], obs{
				latencyUS: j.doneUS - j.req.AtUS,
				costUS:    j.costUS,
			})
		}
		for next < len(jobs) && jobs[next].req.AtUS == clock {
			heap.Push(ready, jobs[next])
			next++
		}
	}

	res := &SimResult{
		Policy:     opt.Policy,
		Workers:    opt.Workers,
		Requests:   len(jobs),
		MakespanUS: makespan,
	}
	for _, name := range sched.Classes() {
		list := perClass[name]
		if len(list) == 0 {
			continue
		}
		lat := make([]int64, len(list))
		var latSum, costSum int64
		var slowSum float64
		for i, o := range list {
			lat[i] = o.latencyUS
			latSum += o.latencyUS
			costSum += o.costUS
			slowSum += float64(o.latencyUS) / float64(o.costUS)
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		cs := ClassStats{
			Class:         name,
			Requests:      len(list),
			MeanServiceUS: costSum / int64(len(list)),
			MeanLatencyUS: latSum / int64(len(list)),
			P50US:         percentile(lat, 0.50),
			P95US:         percentile(lat, 0.95),
			P99US:         percentile(lat, 0.99),
			MaxUS:         lat[len(lat)-1],
			Slowdown:      slowSum / float64(len(list)),
		}
		res.Classes = append(res.Classes, cs)
		if cs.Slowdown > res.MaxClassSlowdown {
			res.MaxClassSlowdown = cs.Slowdown
		}
	}
	return res, nil
}
