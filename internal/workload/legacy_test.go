package workload

import "testing"

// The legacy mix moved here from cmd/agcmload; BENCH_5/6 runs and the CI
// smoke mixes are seeded against it, so its bytes and draw order are pinned.

func TestPoolBodyGolden(t *testing.T) {
	cases := []struct {
		i, steps int
		want     string
	}{
		{0, 1, `{"config":{"nlon":36,"nlat":24,"nlayers":3,"machine":"paragon","mesh_py":1,"mesh_px":1,"filter":"fft","init_wind":20},"steps":1}`},
		{5, 2, `{"config":{"nlon":36,"nlat":24,"nlayers":3,"machine":"paragon","mesh_py":1,"mesh_px":2,"filter":"fft-load-balanced","init_wind":20},"steps":2}`},
		{24, 1, `{"config":{"nlon":36,"nlat":24,"nlayers":3,"machine":"paragon","mesh_py":1,"mesh_px":1,"filter":"fft","init_wind":21},"steps":1}`},
	}
	for _, tc := range cases {
		if got := PoolBody(tc.i, tc.steps); got != tc.want {
			t.Fatalf("PoolBody(%d,%d) =\n%s\nwant\n%s", tc.i, tc.steps, got, tc.want)
		}
	}
}

func TestSequenceGolden(t *testing.T) {
	seq := Sequence(12, 0.5, 0, 1)
	// Pin the exact draw: the sequence feeds seeded CI mixes, so any change
	// to the rng consumption order is a breaking change.
	want := []int{6, 4, 0, 0, 1, 3, 2, 5, 1, 0, 4, 3}
	if len(seq) != len(want) {
		t.Fatalf("sequence length %d", len(seq))
	}
	for i := range seq {
		if seq[i] != want[i] {
			t.Fatalf("Sequence(12, 0.5, 0, 1) = %v, want %v", seq, want)
		}
	}
	// Fresh indices are dense 0..max.
	seen := make(map[int]bool)
	max := 0
	for _, v := range seq {
		seen[v] = true
		if v > max {
			max = v
		}
	}
	for i := 0; i <= max; i++ {
		if !seen[i] {
			t.Fatalf("index %d skipped: %v", i, seq)
		}
	}
}

func TestSequenceZipfSkew(t *testing.T) {
	seq := Sequence(4000, 0.8, 1.3, 7)
	counts := make(map[int]int)
	for _, v := range seq {
		counts[v]++
	}
	if counts[0] <= counts[5] {
		t.Fatalf("zipf reuse not skewed toward index 0: %v", counts)
	}
}
