package workload

import (
	"reflect"
	"testing"

	"agcm/internal/core"
)

func TestGenerateDeterministic(t *testing.T) {
	spec := SchedulingSpec()
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec generated different schedules")
	}
	// Canonicalization-equivalent specs generate identical schedules too.
	cs, err := spec.WithDefaults()
	if err != nil {
		t.Fatal(err)
	}
	c, err := Generate(cs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, c) {
		t.Fatal("defaulted spec generated a different schedule")
	}
}

func TestGenerateSeedChangesSchedule(t *testing.T) {
	s1 := SchedulingSpec()
	s2 := SchedulingSpec()
	s2.Seed = s1.Seed + 1
	a, err := Generate(s1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(s2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Requests, b.Requests) {
		t.Fatal("different seeds generated identical schedules")
	}
}

func TestGenerateScheduleShape(t *testing.T) {
	spec := SchedulingSpec()
	cs, err := spec.WithDefaults()
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Requests) != cs.Requests {
		t.Fatalf("generated %d requests, want %d", len(sched.Requests), cs.Requests)
	}
	classes := make(map[string]Class)
	for _, c := range cs.Classes {
		classes[c.Name] = c
	}
	var prevAt int64
	counts := make(map[string]int)
	for i, r := range sched.Requests {
		if r.Seq != i {
			t.Fatalf("request %d has seq %d", i, r.Seq)
		}
		if r.AtUS < prevAt {
			t.Fatalf("request %d arrives before its predecessor", i)
		}
		prevAt = r.AtUS
		c, ok := classes[r.Class]
		if !ok {
			t.Fatalf("request %d has unknown class %q", i, r.Class)
		}
		counts[r.Class]++
		if r.PoolIndex < 0 || r.PoolIndex >= c.Pool.Distinct {
			t.Fatalf("request %d pool index %d outside [0,%d)", i, r.PoolIndex, c.Pool.Distinct)
		}
		if r.Priority != c.Priority || r.Steps != c.Steps || r.TimeoutMS != c.TimeoutMS {
			t.Fatalf("request %d metadata does not match its class: %+v", i, r)
		}
		if r.Body != body(c, r.PoolIndex) {
			t.Fatalf("request %d body not canonical", i)
		}
	}
	for name := range classes {
		if counts[name] == 0 {
			t.Fatalf("class %q never drawn", name)
		}
	}
	// The 70/30 weighting should be roughly visible over 400 draws.
	frac := float64(counts["interactive"]) / float64(cs.Requests)
	if frac < 0.6 || frac > 0.8 {
		t.Fatalf("interactive fraction %.2f far from its 0.7 weight", frac)
	}
}

func TestGenerateBodiesParseAsServerRequests(t *testing.T) {
	sched, err := Generate(SchedulingSpec())
	if err != nil {
		t.Fatal(err)
	}
	keys := make(map[string]string) // Request.Key() -> ConfigKey
	for _, r := range sched.Requests {
		cls := classByNameOrFatal(t, sched.Spec, r.Class)
		cfg, err := cls.Config(r.PoolIndex)
		if err != nil {
			t.Fatalf("request %d config: %v", r.Seq, err)
		}
		ck, err := cfg.ConfigKey()
		if err != nil {
			t.Fatalf("request %d key: %v", r.Seq, err)
		}
		if prev, ok := keys[r.Key()]; ok && prev != ck {
			t.Fatalf("pool key %s maps to two config keys", r.Key())
		}
		keys[r.Key()] = ck
	}
	// Distinct pool identities must be distinct simulations.
	seen := make(map[string]string)
	for pk, ck := range keys {
		if other, ok := seen[ck]; ok {
			t.Fatalf("pool keys %s and %s alias to one config key", pk, other)
		}
		seen[ck] = pk
	}
}

func classByNameOrFatal(t *testing.T, s Spec, name string) Class {
	t.Helper()
	for _, c := range s.Classes {
		if c.Name == name {
			return c
		}
	}
	t.Fatalf("class %q not in spec", name)
	return Class{}
}

func TestGenerateZipfSkew(t *testing.T) {
	spec := Spec{
		Requests: 2000,
		Classes: []Class{{
			Name: "interactive",
			Pool: Pool{Distinct: 32, Zipf: 1.3},
		}},
	}
	sched, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int)
	for _, r := range sched.Requests {
		counts[r.PoolIndex]++
	}
	if counts[0] <= counts[16] || counts[0] < len(sched.Requests)/4 {
		t.Fatalf("zipf draw not skewed toward index 0: %v", counts)
	}
}

func TestGenerateRejectsBadTemplate(t *testing.T) {
	spec := Spec{Classes: []Class{{
		Name:     "interactive",
		Template: Template{Machine: "cm5"},
	}}}
	if _, err := Generate(spec); err == nil {
		t.Fatal("unknown machine accepted")
	}
}

func TestGenerateArrivalProcesses(t *testing.T) {
	for _, proc := range []string{"poisson", "gamma", "weibull"} {
		for _, shape := range []float64{0.5, 1, 2} {
			spec := Spec{
				Requests: 500,
				Arrival:  Arrival{Process: proc, RatePerSec: 100, Shape: shape},
				Classes:  []Class{{Name: "interactive"}},
			}
			sched, err := Generate(spec)
			if err != nil {
				t.Fatalf("%s shape %g: %v", proc, shape, err)
			}
			// Mean interarrival must be near 1/rate: the samplers are
			// unit-mean by construction.
			span := float64(sched.Requests[len(sched.Requests)-1].AtUS) / 1e6
			mean := span / float64(len(sched.Requests))
			if mean < 0.005 || mean > 0.02 {
				t.Fatalf("%s shape %g: mean interarrival %.4fs far from 0.01s", proc, shape, mean)
			}
		}
	}
}

func TestClassConfigMatchesBody(t *testing.T) {
	cs, err := SchedulingSpec().WithDefaults()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cs.Classes {
		cfg, err := c.Config(3)
		if err != nil {
			t.Fatal(err)
		}
		fromBody, err := core.ConfigFromCanonicalJSON([]byte(configJSON(c, 3)))
		if err != nil {
			t.Fatal(err)
		}
		k1, _ := cfg.ConfigKey()
		k2, _ := fromBody.ConfigKey()
		if k1 == "" || k1 != k2 {
			t.Fatalf("Class.Config and body config diverge: %q vs %q", k1, k2)
		}
	}
}
