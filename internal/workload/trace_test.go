package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestTraceRoundTripBytes(t *testing.T) {
	sched, err := Generate(SchedulingSpec())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, sched); err != nil {
		t.Fatal(err)
	}
	first := buf.Bytes()

	back, err := ReadTrace(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, sched) {
		t.Fatal("trace round trip changed the schedule")
	}
	var buf2 bytes.Buffer
	if err := WriteTrace(&buf2, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, buf2.Bytes()) {
		t.Fatal("re-encoding a read trace changed its bytes")
	}
}

func TestTraceHashStable(t *testing.T) {
	a, err := Generate(SchedulingSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(SchedulingSpec())
	if err != nil {
		t.Fatal(err)
	}
	ha, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb || len(ha) != 64 {
		t.Fatalf("regenerated schedule hashes differ: %q vs %q", ha, hb)
	}
}

// TestTraceReplayIdenticalPerKeySequences is the engine-level half of the
// replay guarantee: a recorded trace read back yields, key by key, the
// identical ordered request sequence (and byte-identical bodies) as the
// schedule that was recorded.
func TestTraceReplayIdenticalPerKeySequences(t *testing.T) {
	orig, err := Generate(SchedulingSpec())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	replay, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	perKey := func(s *Schedule) map[string][]string {
		out := make(map[string][]string)
		for _, r := range s.Requests {
			out[r.Key()] = append(out[r.Key()], r.Body)
		}
		return out
	}
	a, b := perKey(orig), perKey(replay)
	if len(a) != len(b) {
		t.Fatalf("key sets differ: %d vs %d", len(a), len(b))
	}
	for k, seq := range a {
		if !reflect.DeepEqual(seq, b[k]) {
			t.Fatalf("key %s: replayed sequence diverges", k)
		}
	}
}

func TestTraceRejectsCorruption(t *testing.T) {
	sched, err := Generate(Spec{Requests: 5, Classes: []Class{{Name: "interactive"}}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, sched); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(buf.String(), "\n")

	cases := []struct {
		name string
		data string
	}{
		{"empty", ""},
		{"bad header", "{\"format\":\"agcm-trace/9\"}\n"},
		{"truncated", strings.Join(lines[:3], "")},
		{"out of sequence", lines[0] + lines[2] + lines[1] + strings.Join(lines[3:], "")},
		{"unknown field", lines[0] + "{\"seq\":0,\"at_us\":1,\"clazz\":\"x\"}\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadTrace(strings.NewReader(tc.data)); err == nil {
				t.Fatal("corrupted trace accepted")
			}
		})
	}
}
