package workload

import (
	"strings"
	"testing"
)

func TestSpecDefaultsAndCanonicalJSON(t *testing.T) {
	min := Spec{Classes: []Class{{Name: "interactive"}}}
	cs, err := min.WithDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Seed != 1 || cs.Requests != 100 {
		t.Fatalf("top-level defaults not applied: %+v", cs)
	}
	if cs.Arrival.Process != "poisson" || cs.Arrival.RatePerSec != 20 || cs.Arrival.Shape != 1 ||
		cs.Arrival.DiurnalPeriodSec != 10 {
		t.Fatalf("arrival defaults not applied: %+v", cs.Arrival)
	}
	c := cs.Classes[0]
	if c.Weight != 1 || c.Priority != "normal" || c.Steps != 1 || c.Pool.Distinct != 16 {
		t.Fatalf("class defaults not applied: %+v", c)
	}
	if c.Template.Nlon != 36 || c.Template.Machine != "paragon" || c.Template.Filter != "fft" {
		t.Fatalf("template defaults not applied: %+v", c.Template)
	}

	// Canonicalization is idempotent and erases default-only differences.
	raw1, err := min.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	raw2, err := cs.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(raw1) != string(raw2) {
		t.Fatalf("canonical forms differ:\n%s\n%s", raw1, raw2)
	}
	h1, _ := min.Hash()
	h2, _ := cs.Hash()
	if h1 != h2 || len(h1) != 64 {
		t.Fatalf("hashes differ or malformed: %q vs %q", h1, h2)
	}
}

func TestSpecParseRoundTrip(t *testing.T) {
	spec := SchedulingSpec()
	raw, err := spec.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseSpec(raw)
	if err != nil {
		t.Fatal(err)
	}
	raw2, err := parsed.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(raw2) {
		t.Fatalf("round trip changed canonical bytes:\n%s\n%s", raw, raw2)
	}
}

func TestSpecParseRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"name":"x","clases":[]}`)); err == nil {
		t.Fatal("misspelled field accepted")
	}
	if _, err := ParseSpec([]byte(`{"name":"x","classes":[{"name":"interactive"}]}{}`)); err == nil {
		t.Fatal("trailing data accepted")
	}
}

func TestSpecValidation(t *testing.T) {
	base := func() Spec { return Spec{Classes: []Class{{Name: "interactive"}}} }
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"negative requests", func(s *Spec) { s.Requests = -1 }, "requests"},
		{"unknown process", func(s *Spec) { s.Arrival.Process = "pareto" }, "process"},
		{"negative rate", func(s *Spec) { s.Arrival.RatePerSec = -2 }, "rate_per_sec"},
		{"negative shape", func(s *Spec) { s.Arrival.Shape = -1 }, "shape"},
		{"amplitude one", func(s *Spec) { s.Arrival.DiurnalAmplitude = 1 }, "diurnal_amplitude"},
		{"negative period", func(s *Spec) { s.Arrival.DiurnalPeriodSec = -5 }, "diurnal_period"},
		{"no classes", func(s *Spec) { s.Classes = nil }, "class"},
		{"unknown class", func(s *Spec) { s.Classes[0].Name = "gold" }, "unknown class"},
		{"duplicate class", func(s *Spec) { s.Classes = append(s.Classes, Class{Name: "interactive"}) }, "duplicate"},
		{"negative weight", func(s *Spec) { s.Classes[0].Weight = -1 }, "weight"},
		{"unknown priority", func(s *Spec) { s.Classes[0].Priority = "urgent" }, "priority"},
		{"negative steps", func(s *Spec) { s.Classes[0].Steps = -1 }, "steps"},
		{"negative timeout", func(s *Spec) { s.Classes[0].TimeoutMS = -1 }, "timeout"},
		{"negative distinct", func(s *Spec) { s.Classes[0].Pool.Distinct = -1 }, "distinct"},
		{"zipf at one", func(s *Spec) { s.Classes[0].Pool.Zipf = 1 }, "zipf"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.mut(&s)
			_, err := s.WithDefaults()
			if err == nil {
				t.Fatal("invalid spec accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
