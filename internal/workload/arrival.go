package workload

// Seeded interarrival samplers.  Each process draws a unit-mean positive
// interarrival gap; the generator scales gaps by 1/rate and stretches them
// through the diurnal modulation.  All sampling is via math/rand with an
// explicit source, so a spec's seed fully determines the arrival sequence.

import (
	"math"
	"math/rand"
)

// sampler draws one unit-mean interarrival gap.
type sampler func(rng *rand.Rand) float64

// newSampler returns the unit-mean gap sampler for a canonicalized arrival
// process.  Callers pass a validated Arrival (WithDefaults already ran), so
// an unknown process is a programming error worth a panic.
func newSampler(a Arrival) sampler {
	switch a.Process {
	case "poisson":
		// Exponential interarrivals: mean 1 by construction.
		return func(rng *rand.Rand) float64 { return rng.ExpFloat64() }
	case "gamma":
		// Gamma(k, 1/k) has mean 1; k < 1 clumps arrivals into bursts,
		// k > 1 regularizes them.
		k := a.Shape
		return func(rng *rand.Rand) float64 { return sampleGamma(rng, k) / k }
	case "weibull":
		// Weibull(k) scaled by 1/Gamma(1+1/k) has mean 1.
		k := a.Shape
		scale := 1 / math.Gamma(1+1/k)
		return func(rng *rand.Rand) float64 {
			return scale * sampleWeibull(rng, k)
		}
	}
	panic("workload: newSampler on unvalidated arrival process " + a.Process)
}

// sampleGamma draws from Gamma(shape, scale=1) via Marsaglia–Tsang
// squeeze-and-reject (for shape >= 1) with the standard boost for
// shape < 1: Gamma(k) = Gamma(k+1) * U^(1/k).
func sampleGamma(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return sampleGamma(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// sampleWeibull draws from Weibull(shape, scale=1) by inverse CDF:
// (-ln U)^(1/shape).
func sampleWeibull(rng *rand.Rand, shape float64) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return math.Pow(-math.Log(u), 1/shape)
}

// diurnalRate returns the instantaneous rate multiplier at virtual time t
// seconds: 1 + A*sin(2*pi*(t+phase)/period).  With A in [0, 1) the
// multiplier stays positive, so arrivals never stall.
func diurnalRate(a Arrival, t float64) float64 {
	if a.DiurnalAmplitude == 0 {
		return 1
	}
	return 1 + a.DiurnalAmplitude*math.Sin(2*math.Pi*(t+a.DiurnalPhaseSec)/a.DiurnalPeriodSec)
}

// nextArrival advances virtual time from t by one sampled gap: the
// unit-mean draw is scaled to the spec's mean rate, then stretched by the
// instantaneous diurnal multiplier at the gap's start.  Evaluating the
// modulation at the gap start (rather than integrating it across the gap)
// keeps the sampler cheap and exactly reproducible; for modulation periods
// much longer than a mean gap the difference is negligible.
func nextArrival(a Arrival, rng *rand.Rand, draw sampler, t float64) float64 {
	gap := draw(rng) / (a.RatePerSec * diurnalRate(a, t))
	return t + gap
}
