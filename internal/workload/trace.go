package workload

// Recorded-trace format: a schedule serialized as a header line plus one
// JSON line per request, in arrival order.  The encoding is canonical —
// WriteTrace of a given schedule always produces the same bytes, and
// ReadTrace(WriteTrace(s)) round-trips both the schedule and, re-encoded,
// the bytes — so a trace file is a content-addressable regression input: a
// live run recorded once replays forever, and Hash pins it in reports.

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
)

// traceFormat is the header's format tag; bump on any schema change so old
// readers fail loudly on new traces and vice versa.
const traceFormat = "agcm-trace/1"

// traceHeader is the first line of a trace: the format tag, the canonical
// spec the schedule came from, and the request count (a cheap truncation
// check before the last line is reached).
type traceHeader struct {
	Format   string          `json:"format"`
	Spec     json.RawMessage `json:"spec"`
	Requests int             `json:"requests"`
}

// WriteTrace writes the schedule in trace format.  The output is a pure
// function of the schedule.
func WriteTrace(w io.Writer, s *Schedule) error {
	specJSON, err := s.Spec.CanonicalJSON()
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	head, err := json.Marshal(traceHeader{
		Format:   traceFormat,
		Spec:     specJSON,
		Requests: len(s.Requests),
	})
	if err != nil {
		return fmt.Errorf("workload: encoding trace header: %w", err)
	}
	bw.Write(head)
	bw.WriteByte('\n')
	for i := range s.Requests {
		line, err := json.Marshal(&s.Requests[i])
		if err != nil {
			return fmt.Errorf("workload: encoding trace request %d: %w", i, err)
		}
		bw.Write(line)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadTrace parses a trace back into a schedule, validating the format tag,
// the spec, the request count, and that requests arrive in sequence order
// with non-decreasing arrival times.
func ReadTrace(r io.Reader) (*Schedule, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("workload: reading trace header: %w", err)
		}
		return nil, fmt.Errorf("workload: empty trace")
	}
	var head traceHeader
	if err := decodeStrict(sc.Bytes(), &head); err != nil {
		return nil, fmt.Errorf("workload: decoding trace header: %w", err)
	}
	if head.Format != traceFormat {
		return nil, fmt.Errorf("workload: trace format %q, want %q", head.Format, traceFormat)
	}
	spec, err := ParseSpec(head.Spec)
	if err != nil {
		return nil, err
	}
	cs, err := spec.WithDefaults()
	if err != nil {
		return nil, err
	}
	sched := &Schedule{Spec: cs, Requests: make([]Request, 0, head.Requests)}
	var prevAt int64
	for sc.Scan() {
		var req Request
		if err := decodeStrict(sc.Bytes(), &req); err != nil {
			return nil, fmt.Errorf("workload: decoding trace request %d: %w", len(sched.Requests), err)
		}
		if req.Seq != len(sched.Requests) {
			return nil, fmt.Errorf("workload: trace request out of sequence: got seq %d at position %d", req.Seq, len(sched.Requests))
		}
		if req.AtUS < prevAt {
			return nil, fmt.Errorf("workload: trace request %d arrives before its predecessor", req.Seq)
		}
		prevAt = req.AtUS
		sched.Requests = append(sched.Requests, req)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	if len(sched.Requests) != head.Requests {
		return nil, fmt.Errorf("workload: trace truncated: header says %d requests, read %d", head.Requests, len(sched.Requests))
	}
	return sched, nil
}

// decodeStrict unmarshals one trace line, rejecting unknown fields and
// trailing data.
func decodeStrict(line []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data")
	}
	return nil
}

// Hash returns the SHA-256 of the schedule's trace encoding as lowercase
// hex: the content address of the exact request sequence.  Two runs that
// report equal hashes replayed byte-identical workloads.
func (s *Schedule) Hash() (string, error) {
	h := sha256.New()
	if err := WriteTrace(h, s); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
