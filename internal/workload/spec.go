package workload

// Declarative workload specification.  Like core.Config's canonical wire
// form, a Spec has a fixed field set in a fixed order, defaults applied on
// canonicalization, and unknown fields rejected on decode — so a spec file
// is content-addressable and a misspelled knob fails loudly instead of
// silently changing the workload.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
)

// Arrival describes the interarrival process shared by every request in
// the workload, with optional diurnal rate modulation.
type Arrival struct {
	// Process is the interarrival distribution: "poisson" (default, i.e.
	// exponential interarrivals), "gamma", or "weibull".
	Process string `json:"process"`
	// RatePerSec is the mean arrival rate in requests per second
	// (default 20).  Diurnal modulation moves the instantaneous rate
	// around this mean.
	RatePerSec float64 `json:"rate_per_sec"`
	// Shape is the gamma/weibull shape parameter k (default 1, which makes
	// both processes exponential).  k < 1 gives burstier arrivals than
	// Poisson, k > 1 smoother ones.  Ignored for "poisson".
	Shape float64 `json:"shape"`
	// DiurnalAmplitude in [0, 1) modulates the instantaneous rate as
	// rate * (1 + A*sin(2*pi*(t+phase)/period)): 0 (default) is a flat
	// rate, 0.8 swings between 0.2x and 1.8x — a compressed day/night
	// load curve.
	DiurnalAmplitude float64 `json:"diurnal_amplitude"`
	// DiurnalPeriodSec is the modulation period in seconds (default 10).
	DiurnalPeriodSec float64 `json:"diurnal_period_sec"`
	// DiurnalPhaseSec shifts the modulation (default 0).
	DiurnalPhaseSec float64 `json:"diurnal_phase_sec"`
}

// Pool describes a class's distinct configs and their popularity skew.
type Pool struct {
	// Distinct is the number of distinct configs in the class's pool
	// (default 16); pool index i varies the config's init_wind so every
	// index is a distinct ConfigKey.
	Distinct int `json:"distinct"`
	// Zipf > 1 skews popularity toward low pool indices with the given
	// exponent (hot keys, realistic cache-hit ratios); 0 (default) draws
	// uniformly.  Values in (0, 1] are invalid.
	Zipf float64 `json:"zipf"`
}

// Template is the simulation config every request of a class asks for,
// before the pool index varies init_wind.  Field names and defaults match
// the canonical config schema (core.ConfigFromCanonicalJSON).
type Template struct {
	Nlon    int    `json:"nlon"`    // default 36
	Nlat    int    `json:"nlat"`    // default 24
	Nlayers int    `json:"nlayers"` // default 3
	Machine string `json:"machine"` // default "paragon"
	MeshPy  int    `json:"mesh_py"` // default 1
	MeshPx  int    `json:"mesh_px"` // default 1
	Filter  string `json:"filter"`  // default "fft"
}

// Class is one SLO class's share of the workload.
type Class struct {
	// Name is the SLO class: "interactive" or "batch".
	Name string `json:"name"`
	// Weight is the class's share of requests (normalized across classes;
	// default 1).
	Weight float64 `json:"weight"`
	// Priority is the admission priority requests of this class carry:
	// "high", "normal" (default), or "low".
	Priority string `json:"priority"`
	// Steps is the measured step count per request (default 1).
	Steps int `json:"steps"`
	// TimeoutMS is the per-request deadline in milliseconds (0 = server
	// default).
	TimeoutMS int `json:"timeout_ms"`
	// Pool is the class's config pool and popularity skew.
	Pool Pool `json:"pool"`
	// Template is the class's simulation config.
	Template Template `json:"template"`
}

// Spec is a declarative workload: a seeded arrival process over a weighted
// mix of SLO classes, each with its own config pool.  The zero value of
// every field takes the documented default on canonicalization.
type Spec struct {
	// Name labels the workload in reports.
	Name string `json:"name"`
	// Seed drives every random draw; the same spec always generates the
	// same schedule (default 1).
	Seed int64 `json:"seed"`
	// Requests is the total number of requests to generate (default 100).
	Requests int `json:"requests"`
	// Arrival is the interarrival process.
	Arrival Arrival `json:"arrival"`
	// Classes is the SLO class mix; at least one is required.
	Classes []Class `json:"classes"`
}

// validClass reports whether name is a known SLO class.  The set matches
// the server's (server.ClassByName); it is duplicated here rather than
// imported so the workload engine stays independent of the serving layer.
func validClass(name string) bool { return name == "interactive" || name == "batch" }

// priorityRank orders admission priorities the way the server's FCFS queue
// does: high before normal before low.  -1 means unknown.
func priorityRank(name string) int {
	switch name {
	case "high":
		return 0
	case "", "normal":
		return 1
	case "low":
		return 2
	}
	return -1
}

// WithDefaults returns the spec with every defaulted field filled in, or an
// error for specs no defaulting can make valid.
func (s Spec) WithDefaults() (Spec, error) {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Requests == 0 {
		s.Requests = 100
	}
	if s.Requests < 0 {
		return s, fmt.Errorf("workload: requests must be positive, got %d", s.Requests)
	}
	a := &s.Arrival
	if a.Process == "" {
		a.Process = "poisson"
	}
	switch a.Process {
	case "poisson", "gamma", "weibull":
	default:
		return s, fmt.Errorf("workload: unknown arrival process %q (poisson, gamma, weibull)", a.Process)
	}
	if a.RatePerSec == 0 {
		a.RatePerSec = 20
	}
	if a.RatePerSec <= 0 {
		return s, fmt.Errorf("workload: rate_per_sec must be positive, got %g", a.RatePerSec)
	}
	if a.Shape == 0 {
		a.Shape = 1
	}
	if a.Shape <= 0 {
		return s, fmt.Errorf("workload: shape must be positive, got %g", a.Shape)
	}
	if a.DiurnalAmplitude < 0 || a.DiurnalAmplitude >= 1 {
		return s, fmt.Errorf("workload: diurnal_amplitude must be in [0, 1), got %g", a.DiurnalAmplitude)
	}
	if a.DiurnalPeriodSec == 0 {
		a.DiurnalPeriodSec = 10
	}
	if a.DiurnalPeriodSec <= 0 {
		return s, fmt.Errorf("workload: diurnal_period_sec must be positive, got %g", a.DiurnalPeriodSec)
	}
	if len(s.Classes) == 0 {
		return s, fmt.Errorf("workload: at least one class required")
	}
	s.Classes = append([]Class(nil), s.Classes...)
	seen := make(map[string]bool, len(s.Classes))
	for i := range s.Classes {
		c := &s.Classes[i]
		if !validClass(c.Name) {
			return s, fmt.Errorf("workload: unknown class %q (interactive, batch)", c.Name)
		}
		if seen[c.Name] {
			return s, fmt.Errorf("workload: duplicate class %q", c.Name)
		}
		seen[c.Name] = true
		if c.Weight == 0 {
			c.Weight = 1
		}
		if c.Weight < 0 {
			return s, fmt.Errorf("workload: class %q: weight must be positive, got %g", c.Name, c.Weight)
		}
		if c.Priority == "" {
			c.Priority = "normal"
		}
		if priorityRank(c.Priority) < 0 {
			return s, fmt.Errorf("workload: class %q: unknown priority %q (high, normal, low)", c.Name, c.Priority)
		}
		if c.Steps == 0 {
			c.Steps = 1
		}
		if c.Steps < 0 {
			return s, fmt.Errorf("workload: class %q: steps must be positive, got %d", c.Name, c.Steps)
		}
		if c.TimeoutMS < 0 {
			return s, fmt.Errorf("workload: class %q: timeout_ms must be non-negative, got %d", c.Name, c.TimeoutMS)
		}
		if c.Pool.Distinct == 0 {
			c.Pool.Distinct = 16
		}
		if c.Pool.Distinct < 0 {
			return s, fmt.Errorf("workload: class %q: pool distinct must be positive, got %d", c.Name, c.Pool.Distinct)
		}
		if c.Pool.Zipf != 0 && c.Pool.Zipf <= 1 {
			return s, fmt.Errorf("workload: class %q: zipf exponent must exceed 1 (or be 0 for uniform), got %g", c.Name, c.Pool.Zipf)
		}
		t := &c.Template
		if t.Nlon == 0 {
			t.Nlon = 36
		}
		if t.Nlat == 0 {
			t.Nlat = 24
		}
		if t.Nlayers == 0 {
			t.Nlayers = 3
		}
		if t.Machine == "" {
			t.Machine = "paragon"
		}
		if t.MeshPy == 0 {
			t.MeshPy = 1
		}
		if t.MeshPx == 0 {
			t.MeshPx = 1
		}
		if t.Filter == "" {
			t.Filter = "fft"
		}
	}
	return s, nil
}

// CanonicalJSON returns the spec's canonical encoding: defaults applied,
// fields in the fixed struct order, no omitted fields.  Two specs that
// differ only in defaulted fields canonicalize to the same bytes — they
// generate the same schedule.
func (s Spec) CanonicalJSON() ([]byte, error) {
	cs, err := s.WithDefaults()
	if err != nil {
		return nil, err
	}
	return json.Marshal(cs)
}

// Hash returns the SHA-256 of the canonical encoding as lowercase hex: the
// workload's content address.
func (s Spec) Hash() (string, error) {
	raw, err := s.CanonicalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// ParseSpec decodes a workload spec, rejecting unknown fields and trailing
// data, and validates it by applying defaults.
func ParseSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("workload: decoding spec: %w", err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("workload: trailing data after spec")
	}
	if _, err := s.WithDefaults(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// fmtFloat renders a float the way the request bodies need it: shortest
// round-trip form.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
