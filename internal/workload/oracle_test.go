package workload

import (
	"fmt"
	"reflect"
	"testing"

	"agcm/internal/core"
)

type fixedOracle struct {
	seconds float64
	err     error
	calls   int
}

func (o *fixedOracle) Name() string { return "fixed" }

func (o *fixedOracle) PredictSeconds(cfg core.Config, steps int) (float64, error) {
	o.calls++
	if o.err != nil {
		return 0, o.err
	}
	return o.seconds * float64(steps), nil
}

// TestSimulateUsesInjectedOracle checks the SimOptions.Oracle seam: the
// what-if runs on the injected predictor's prices, not the linear model's.
func TestSimulateUsesInjectedOracle(t *testing.T) {
	sched := schedulingSchedule(t)
	linear, err := Simulate(sched, SimOptions{Policy: "sjf"})
	if err != nil {
		t.Fatal(err)
	}
	oracle := &fixedOracle{seconds: 0.5}
	priced, err := Simulate(sched, SimOptions{Policy: "sjf", Oracle: oracle})
	if err != nil {
		t.Fatal(err)
	}
	if oracle.calls == 0 {
		t.Fatal("injected oracle never consulted")
	}
	if reflect.DeepEqual(linear, priced) {
		t.Fatal("oracle prices did not reach the simulation")
	}
	// Still deterministic with an oracle installed.
	again, err := Simulate(sched, SimOptions{Policy: "sjf", Oracle: &fixedOracle{seconds: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(priced, again) {
		t.Fatal("oracle-priced simulation is not deterministic")
	}
}

func TestSimulateSurfacesOracleErrors(t *testing.T) {
	sched := schedulingSchedule(t)
	oracle := &fixedOracle{err: fmt.Errorf("no calibration")}
	if _, err := Simulate(sched, SimOptions{Policy: "sjf", Oracle: oracle}); err == nil {
		t.Fatal("oracle error swallowed: the what-if would silently misprice")
	}
}
