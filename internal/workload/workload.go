// Package workload is the serving stack's workload engine: it turns a
// declarative, seeded specification into a bit-deterministic schedule of
// simulation requests — who asks for what, when, and under which service
// class — so every serving benchmark measures a workload that is realistic,
// reproducible, and impossible to game by tuning against a fixed mix.
//
// The spec (Spec, canonicalized like core.Config) describes multi-client
// mixes: Poisson/Gamma/Weibull interarrival processes, diurnal rate
// modulation, Zipf-distributed config popularity (driving realistic
// cache-hit ratios), and per-request SLO class (interactive/batch) with
// priority and deadline.  Generate expands a spec into a Schedule whose
// request bodies are exact POST /v1/run payloads; the same spec always
// yields the same bytes.  A Schedule round-trips through the recorded-trace
// format (WriteTrace/ReadTrace) byte for byte, so a live run can be
// recorded once and replayed forever as a regression input.
//
// Simulate closes the loop on the server side: a deterministic virtual-time
// queueing model that runs a schedule through the pluggable scheduler
// policies (FCFS, priority, shortest-job-first on the machine cost model's
// predicted run time) and reports per-class latency and fairness — the
// model-driven scheduling question the paper asks of the AGCM, asked of the
// serving stack.
//
// Everything here is pure computation on seeded randomness: no wall clock,
// no goroutines, no I/O beyond the explicit trace readers and writers.
// Pacing a schedule against a live daemon is the load generator's job
// (cmd/agcmload).
package workload

import (
	"fmt"
	"sort"
)

// Request is one scheduled simulation request: the exact POST /v1/run body
// plus the metadata the generator decided it from.  Body is authoritative —
// replaying a schedule means sending each Body verbatim at its offset — and
// the metadata fields let clients and simulators tally per-class outcomes
// without re-parsing JSON.
type Request struct {
	// Seq is the request's position in arrival order, starting at 0.
	Seq int `json:"seq"`
	// AtUS is the arrival offset from the schedule's start in microseconds.
	AtUS int64 `json:"at_us"`
	// Class is the SLO class ("interactive" or "batch").
	Class string `json:"class"`
	// Priority is the admission priority ("high", "normal", "low").
	Priority string `json:"priority"`
	// PoolIndex identifies which of the class's distinct configs this
	// request asks for; (Class, PoolIndex) is the request's identity for
	// per-key sequence comparisons.
	PoolIndex int `json:"pool_index"`
	// Steps is the measured step count requested.
	Steps int `json:"steps"`
	// TimeoutMS is the per-request deadline (0 = server default).
	TimeoutMS int `json:"timeout_ms"`
	// Body is the exact request body to POST.
	Body string `json:"body"`
}

// Key returns the request's config identity: requests with equal keys ask
// for byte-identical simulations.
func (r Request) Key() string {
	return fmt.Sprintf("%s/%d", r.Class, r.PoolIndex)
}

// Schedule is a fully expanded workload: the spec it came from and the
// requests in arrival order.  A Schedule is a pure function of its Spec —
// Generate is deterministic — and serializes byte-for-byte through
// WriteTrace/ReadTrace.
type Schedule struct {
	Spec     Spec
	Requests []Request
}

// Classes returns the distinct class names appearing in the schedule, in
// sorted order — the deterministic iteration order for per-class reports.
func (s *Schedule) Classes() []string {
	seen := make(map[string]bool)
	var out []string
	for _, r := range s.Requests {
		if !seen[r.Class] {
			seen[r.Class] = true
			out = append(out, r.Class)
		}
	}
	sort.Strings(out)
	return out
}
