package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Sendalias flags buffers that are mutated after being handed to Comm.Send
// or Comm.SendInts.  The sim mailbox is zero-copy: Send passes the slice's
// backing array by reference, and the receiver may read it at any later
// virtual time — a post-send write races with that read and silently
// corrupts the payload (or, because delivery order is deterministic,
// corrupts it *reproducibly*, which is worse to debug).  Callers that reuse
// a buffer must use SendCopy.
//
// The check is intra-procedural and positional: a write to the sent
// expression after the call (or anywhere in a loop that re-executes the
// call) is reported unless the variable was first rebound to a fresh value.
//
// The *Into receive family (RecvInto, SendrecvInto, BcastInto, ReduceInto,
// AllreduceInto, GathervInto, ScattervInto, AlltoallvInto, RingShiftInto,
// AllgathervInto) participates in the contract from the other side: the
// scratch argument is written through its backing array (grown from buf[:0]),
// so handing an in-flight zero-copy send buffer to an *Into call is the same
// aliasing bug as writing an element — and is flagged the same way.  The
// safe steady-state idiom pairs SendCopy with *Into receives.
var Sendalias = &Analyzer{
	Name: "sendalias",
	Doc: `flag Comm.Send buffers written after the send

Comm.Send and Comm.SendInts hand over the slice's backing array without
copying; mutating it afterwards corrupts the in-flight payload.  Rebind the
variable to a fresh slice, or use SendCopy.  The *Into receive variants
write through their scratch argument's backing array, so passing a sent
buffer as *Into scratch counts as a mutation.`,
	Run: runSendalias,
}

// intoScratch maps each Comm *Into receive method to the index of its
// caller-owned scratch argument — the one the receive writes through.
var intoScratch = map[string]int{
	"RecvInto":       2,
	"SendrecvInto":   5,
	"BcastInto":      1,
	"ReduceInto":     2,
	"AllreduceInto":  1,
	"GathervInto":    2,
	"ScattervInto":   2,
	"AlltoallvInto":  1,
	"RingShiftInto":  1,
	"AllgathervInto": 1,
}

// intoMethodNames lists the intoScratch keys for methodOn matching.
var intoMethodNames = func() []string {
	names := make([]string, 0, len(intoScratch))
	for name := range intoScratch {
		names = append(names, name)
	}
	return names
}()

// intoScratchMatch reports whether call is a Comm *Into receive whose
// scratch argument renders as buf, returning the method name.
func intoScratchMatch(info *types.Info, call *ast.CallExpr, buf string) (string, bool) {
	name, ok := methodOn(info, call, "comm", "Comm", intoMethodNames...)
	if !ok {
		return "", false
	}
	idx := intoScratch[name]
	if idx >= len(call.Args) || types.ExprString(call.Args[idx]) != buf {
		return "", false
	}
	return name, true
}

func runSendalias(pass *Pass) error {
	for _, file := range pass.Files {
		funcBodies(file, func(body *ast.BlockStmt) {
			checkSendAliases(pass, body)
		})
	}
	return nil
}

// sendSite is one zero-copy send of a trackable buffer expression.
type sendSite struct {
	call   *ast.CallExpr
	method string
	buf    string    // rendering of the sent expression
	loop   ast.Node  // innermost for/range statement enclosing the call, if any
	pos    token.Pos // position of the call
}

// bufEvent is a later statement interacting with a sent buffer.
type bufEvent struct {
	pos  token.Pos
	kind int // eventMutate or eventRebind
	node ast.Node
	desc string
}

const (
	eventMutate = iota
	eventRebind
)

func checkSendAliases(pass *Pass, body *ast.BlockStmt) {
	sends := collectSends(pass, body)
	if len(sends) == 0 {
		return
	}
	for _, s := range sends {
		events := collectBufEvents(pass, body, s.buf)
		reportAliasedWrites(pass, s, events)
	}
}

// collectSends finds Send/SendInts calls whose payload argument is a plain
// variable, field or index expression (composite expressions like append(...)
// results cannot be written through afterwards by name).
func collectSends(pass *Pass, body *ast.BlockStmt) []sendSite {
	var sends []sendSite
	var loopStack []ast.Node
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return
		case *ast.ForStmt, *ast.RangeStmt:
			loopStack = append(loopStack, n)
			walkChildren(n, walk)
			loopStack = loopStack[:len(loopStack)-1]
			return
		case *ast.CallExpr:
			if name, ok := methodOn(pass.TypesInfo, n, "comm", "Comm", "Send", "SendInts"); ok && len(n.Args) == 3 {
				if trackable(n.Args[2]) {
					var loop ast.Node
					if len(loopStack) > 0 {
						loop = loopStack[len(loopStack)-1]
					}
					sends = append(sends, sendSite{
						call: n, method: name,
						buf:  types.ExprString(n.Args[2]),
						loop: loop, pos: n.Pos(),
					})
				}
			}
		}
		walkChildren(n, walk)
	}
	walk(body)
	return sends
}

// trackable reports whether e is an expression whose later writes we can
// recognize by rendering: identifiers, field selectors, and index chains.
func trackable(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name != "nil"
	case *ast.SelectorExpr:
		return trackable(e.X)
	case *ast.IndexExpr:
		return trackable(e.X)
	default:
		return false
	}
}

// collectBufEvents gathers mutations of and rebinds to buf across the
// function body, in source order.
func collectBufEvents(pass *Pass, body *ast.BlockStmt, buf string) []bufEvent {
	var events []bufEvent
	inspectSkippingFuncLits(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, l := range n.Lhs {
				// buf[i] = v  or  buf.f = v — writes through the
				// sent backing store.
				switch l := l.(type) {
				case *ast.IndexExpr:
					if types.ExprString(l.X) == buf {
						events = append(events, bufEvent{pos: l.Pos(), kind: eventMutate, node: l,
							desc: "element write " + types.ExprString(l)})
					}
				}
				if types.ExprString(l) != buf {
					continue
				}
				// buf = append(buf, ...) may write into the sent
				// backing array when spare capacity exists; any
				// other rebind makes buf a fresh value.
				rhs := ast.Expr(nil)
				if i < len(n.Rhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				rebind := true
				if call, ok := rhs.(*ast.CallExpr); ok {
					if isAppendOf(call, buf) {
						events = append(events, bufEvent{pos: n.Pos(), kind: eventMutate, node: n,
							desc: "append to " + buf})
						rebind = false
					} else if _, into := intoScratchMatch(pass.TypesInfo, call, buf); into {
						// buf = c.RecvInto(..., buf) writes through the old
						// backing array before rebinding; the nested CallExpr
						// visit records the mutation, so record no rebind.
						rebind = false
					}
				}
				if rebind {
					events = append(events, bufEvent{pos: n.Pos(), kind: eventRebind, node: n})
				}
			}
		case *ast.CallExpr:
			// copy(buf, ...) / copy(buf[i:], ...) writes through buf.
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "copy" && len(n.Args) == 2 {
				dst := n.Args[0]
				if se, ok := dst.(*ast.SliceExpr); ok {
					dst = se.X
				}
				if types.ExprString(dst) == buf {
					events = append(events, bufEvent{pos: n.Pos(), kind: eventMutate, node: n,
						desc: "copy into " + buf})
				}
			}
			// An *Into receive writes through its scratch argument's
			// backing array (the receive lands in append(buf[:0], ...)).
			if name, ok := intoScratchMatch(pass.TypesInfo, n, buf); ok {
				events = append(events, bufEvent{pos: n.Pos(), kind: eventMutate, node: n,
					desc: "receive into " + buf + " via Comm." + name})
			}
		case *ast.IncDecStmt:
			if ix, ok := n.X.(*ast.IndexExpr); ok && types.ExprString(ix.X) == buf {
				events = append(events, bufEvent{pos: n.Pos(), kind: eventMutate, node: n,
					desc: "element write " + types.ExprString(ix)})
			}
		}
		return true
	})
	return events
}

// isAppendOf reports whether call is append(buf, ...).
func isAppendOf(call *ast.CallExpr, buf string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return false
	}
	return types.ExprString(call.Args[0]) == buf
}

// reportAliasedWrites applies the positional aliasing rules for one send.
func reportAliasedWrites(pass *Pass, s sendSite, events []bufEvent) {
	report := func(e bufEvent) {
		sendLine := pass.Fset.Position(s.pos).Line
		pass.Reportf(e.pos,
			"%s mutates a buffer passed to Comm.%s at line %d: the zero-copy mailbox hands over the backing array; use SendCopy or rebind the buffer to a fresh slice first",
			e.desc, s.method, sendLine)
	}
	// Straight-line: first mutate after the send with no intervening rebind.
	for _, e := range events {
		if e.pos <= s.pos {
			continue
		}
		if e.kind == eventRebind {
			break
		}
		report(e)
		return
	}
	// Loop wrap-around: the send re-executes, so a mutation textually before
	// it (but inside the same loop) follows it on the back edge — unless a
	// rebind at the top of the loop re-binds the buffer first.
	if s.loop == nil {
		return
	}
	loopStart, loopEnd := s.loop.Pos(), s.loop.End()
	for _, e := range events {
		if e.pos <= loopStart || e.pos >= loopEnd || e.pos > s.pos {
			continue
		}
		if e.kind == eventRebind {
			return // fresh buffer each iteration
		}
		report(e)
		return
	}
}
