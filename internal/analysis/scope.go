package analysis

import "strings"

// Concurrency-correctness scope, shared by the lockorder, goleak, ctxflow and
// wgmisuse analyzers.
//
// Unlike nondeterm's two-level scheme this is a single boolean: every package
// under internal/ is in scope — the serving stack (server, gateway), the
// simulator (sim, core, comm) and the support packages all run goroutines or
// hold locks whose discipline these analyzers encode.  cmd/ and examples/
// wrappers are exempt, matching nondeterm: a main function may block on a
// signal channel for its whole life, and its goroutines die with the
// process.
//
// concurrencyExempt lists internal packages opted out by the path segment
// directly under internal/ (the same keying as nondetermScope).  It is empty
// today; it exists so a future package with a genuinely different lifecycle
// model (e.g. a process-lifetime singleton) can be carved out in one
// reviewed place instead of via scattered //lint:allow lines.
var concurrencyExempt = map[string]bool{}

// concurrencyInScope reports whether the package with the given import path
// is held to the concurrency-correctness rules.  Fixture packages under a
// testdata tree are always in scope so analyzer tests exercise the real rule
// set.
func concurrencyInScope(path string) bool {
	if strings.Contains(path, "/testdata/") {
		return true
	}
	i := strings.LastIndex(path, "internal/")
	if i < 0 {
		return false
	}
	rest := path[i+len("internal/"):]
	if j := strings.IndexByte(rest, '/'); j >= 0 {
		rest = rest[:j]
	}
	return !concurrencyExempt[rest]
}
