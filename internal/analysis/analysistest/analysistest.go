// Package analysistest runs one analyzer over a fixture package and checks
// its diagnostics against `// want "regexp"` comments in the fixture source,
// following the conventions of golang.org/x/tools/go/analysis/analysistest
// (which this stdlib-only tree cannot depend on; see the note in go.mod).
//
// A want comment sits on the line the diagnostic is expected on and may
// carry several quoted regexps for several diagnostics on that line:
//
//	c.Send(1, 70000, buf) // want `tag 70000 .* reserved`
//
// Both double-quoted and backquoted regexps are accepted.  Lines with no
// want comment must produce no diagnostics; //lint:allow-suppressed findings
// count as not produced.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"agcm/internal/analysis"
	"agcm/internal/analysis/load"
)

// expectation is one unmatched want entry.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

// Run loads the fixture package(s) matched by pattern (e.g.
// "./testdata/src/commtag") and checks analyzer a against the want comments.
func Run(t *testing.T, a *analysis.Analyzer, pattern string) {
	t.Helper()
	pkgs, err := load.Packages("", pattern)
	if err != nil {
		t.Fatalf("loading %s: %v", pattern, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("pattern %s matched no packages", pattern)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					for _, src := range wantPatterns(t, c.Text) {
						re, err := regexp.Compile(src)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pkg.Fset.Position(c.Pos()), src, err)
						}
						pos := pkg.Fset.Position(c.Pos())
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}

	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	fset := pkgs[0].Fset
	for _, d := range diags {
		if !consume(wants, d.Position(fset), d.Message) {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", d.Position(fset), d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if w.re != nil {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// consume matches a diagnostic against the remaining expectations for its
// line, clearing the first match.
func consume(wants []*expectation, pos token.Position, message string) bool {
	for _, w := range wants {
		if w.re == nil || w.file != pos.Filename || w.line != pos.Line {
			continue
		}
		if w.re.MatchString(message) {
			w.re = nil
			return true
		}
	}
	return false
}

// wantPatterns extracts the quoted regexps of a `// want ...` comment.
func wantPatterns(t *testing.T, comment string) []string {
	t.Helper()
	text := strings.TrimPrefix(comment, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "want ") {
		return nil
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, "want"))
	var out []string
	for rest != "" {
		switch rest[0] {
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				t.Fatalf("unterminated backquoted want pattern in %q", comment)
			}
			out = append(out, rest[1:1+end])
			rest = strings.TrimSpace(rest[end+2:])
		case '"':
			end := -1
			for i := 1; i < len(rest); i++ {
				if rest[i] == '\\' {
					i++
					continue
				}
				if rest[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				t.Fatalf("unterminated quoted want pattern in %q", comment)
			}
			out = append(out, strings.ReplaceAll(rest[1:end], `\"`, `"`))
			rest = strings.TrimSpace(rest[end+1:])
		default:
			t.Fatalf("malformed want comment %q: patterns must be quoted", comment)
		}
	}
	if len(out) == 0 {
		t.Fatalf("want comment %q carries no patterns", comment)
	}
	return out
}

// Fprint is a debugging helper: it renders diagnostics one per line.
func Fprint(fset *token.FileSet, diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "%s: [%s] %s\n", d.Position(fset), d.Analyzer, d.Message)
	}
	return b.String()
}
