package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// Commtag constant-propagates the tag argument of point-to-point Comm calls
// and reports tags that land outside the user range [0, MaxUserTag): tags at
// or above MaxUserTag are reserved for collective traffic (barrier, bcast,
// reduce, gather/scatter payloads, ...), and a user message carrying one
// silently interleaves with collective payloads — the Gatherv/Scatterv
// collision fixed in PR 1.  comm.checkUserTag catches this at run time; the
// analyzer catches it before the code ever runs, extending the compile-time
// reserved-tag guard in internal/comm.
//
// Only tags the type checker can fold to a constant are checked; dynamic tag
// arithmetic (e.g. base+round) is bounds-checked at run time by
// checkUserTag.
var Commtag = &Analyzer{
	Name: "commtag",
	Doc: `flag constant point-to-point tags outside the user range

Comm.Send/SendCopy/Recv/SendInts/RecvInts/Sendrecv take a user tag that must
lie in [0, comm.MaxUserTag); the tags above are reserved for collective
traffic and colliding with them corrupts collectives without any error.`,
	Run: runCommtag,
}

// fallbackMaxUserTag mirrors comm.MaxUserTag (tagSpace - 64) for analyzed
// trees whose comm package predates the exported constant.
const fallbackMaxUserTag = 1<<16 - 64

// commtagMethods maps checked methods to the indices of their tag arguments.
var commtagMethods = map[string][]int{
	"Send":     {1},
	"SendCopy": {1},
	"Recv":     {1},
	"SendInts": {1},
	"RecvInts": {1},
	"Sendrecv": {1, 4},
}

func runCommtag(pass *Pass) error {
	methodNames := make([]string, 0, len(commtagMethods))
	for name := range commtagMethods {
		methodNames = append(methodNames, name)
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := methodOn(pass.TypesInfo, call, "comm", "Comm", methodNames...)
			if !ok {
				return true
			}
			limit := maxUserTagOf(commPackageOf(pass.TypesInfo, call))
			for _, idx := range commtagMethods[name] {
				if idx >= len(call.Args) {
					continue
				}
				arg := call.Args[idx]
				tv, ok := pass.TypesInfo.Types[arg]
				if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
					continue
				}
				v, ok := constant.Int64Val(tv.Value)
				if !ok {
					continue
				}
				switch {
				case v < 0:
					pass.Reportf(arg.Pos(),
						"tag %d passed to Comm.%s is negative: user tags must lie in [0, %d)", v, name, limit)
				case v >= limit:
					pass.Reportf(arg.Pos(),
						"tag %d passed to Comm.%s collides with the reserved collective tag range: user tags must lie in [0, %d)", v, name, limit)
				}
			}
			return true
		})
	}
	return nil
}

// commPackageOf returns the types.Package that declares the Comm method
// being called, i.e. the comm package as seen by the analyzed code.
func commPackageOf(info *types.Info, call *ast.CallExpr) *types.Package {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	selection, ok := info.Selections[sel]
	if !ok {
		return nil
	}
	return selection.Obj().Pkg()
}

// maxUserTagOf reads the exported MaxUserTag constant from the comm package,
// falling back to the built-in mirror when absent.
func maxUserTagOf(commPkg *types.Package) int64 {
	if commPkg == nil {
		return fallbackMaxUserTag
	}
	obj := commPkg.Scope().Lookup("MaxUserTag")
	c, ok := obj.(*types.Const)
	if !ok {
		return fallbackMaxUserTag
	}
	if v, ok := constant.Int64Val(c.Val()); ok {
		return v
	}
	return fallbackMaxUserTag
}
