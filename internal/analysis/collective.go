package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Collective finds collective operations (Barrier, Bcast, Reduce, ...) whose
// execution is control-dependent on a rank-varying condition.  A collective
// must be entered by every rank of its communicator; when `if c.Rank() == 0`
// guards one, the other ranks block inside the collective's internal
// receives forever.  The sim watchdog (internal/sim/watchdog.go) diagnoses
// that hang at run time — this analyzer reports the mistake before the code
// runs at all.
//
// Rank variance is tracked intra-procedurally: calls to Rank() on a Comm or
// Proc (and, inside package comm, the Comm.me / Proc.rank fields) taint the
// variables assigned from them, and any if/switch/for condition mentioning a
// tainted value makes the statements it guards rank-varying.  Code where all
// ranks provably take the same branch (e.g. a condition on replicated data)
// can annotate //lint:allow collective <reason>.
var Collective = &Analyzer{
	Name: "collective",
	Doc: `flag collectives control-dependent on rank-varying conditions

Every rank of a communicator must call a collective operation for it to
complete; guarding one behind a condition derived from Rank() is the classic
MPI deadlock shape.`,
	Run: runCollective,
}

// collectiveMethods are the Comm operations every rank must enter together.
// RingShift and Split are included: both are symmetric all-ranks protocols.
var collectiveMethods = []string{
	"Barrier", "Bcast", "Reduce", "Allreduce", "AllreduceScalar",
	"Gather", "Gatherv", "Scatterv", "Alltoallv", "Allgatherv",
	"AllgathervTree", "RingShift", "Split",
}

func runCollective(pass *Pass) error {
	for _, file := range pass.Files {
		funcBodies(file, func(body *ast.BlockStmt) {
			checkCollectives(pass, body)
		})
	}
	return nil
}

// checkCollectives analyzes one function body.
func checkCollectives(pass *Pass, body *ast.BlockStmt) {
	tainted := rankTaint(pass, body)
	exprTainted := func(e ast.Expr) bool {
		if e == nil {
			return false
		}
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.Ident:
				if obj := pass.TypesInfo.Uses[n]; obj != nil && tainted[obj] {
					found = true
				}
			case *ast.CallExpr:
				if isRankSource(pass.TypesInfo, n) {
					found = true
				}
			case *ast.SelectorExpr:
				if isRankField(pass.TypesInfo, n) {
					found = true
				}
			}
			return !found
		})
		return found
	}

	// walk descends the body carrying the position of the innermost
	// rank-varying condition currently in force (NoPos when none).
	var walk func(n ast.Node, rankCond token.Pos)
	walkAll := func(nodes []ast.Stmt, rankCond token.Pos) {
		for _, s := range nodes {
			walk(s, rankCond)
		}
	}
	walk = func(n ast.Node, rankCond token.Pos) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return // analyzed as its own function body
		case *ast.IfStmt:
			walk(n.Init, rankCond)
			walk(n.Cond, rankCond)
			inner := rankCond
			if exprTainted(n.Cond) {
				inner = n.Cond.Pos()
			}
			walk(n.Body, inner)
			walk(n.Else, inner)
		case *ast.SwitchStmt:
			walk(n.Init, rankCond)
			walk(n.Tag, rankCond)
			inner := rankCond
			if exprTainted(n.Tag) {
				inner = n.Tag.Pos()
			}
			for _, clause := range n.Body.List {
				cc := clause.(*ast.CaseClause)
				caseCond := inner
				for _, e := range cc.List {
					walk(e, rankCond)
					if caseCond == token.NoPos && exprTainted(e) {
						caseCond = e.Pos()
					}
				}
				walkAll(cc.Body, caseCond)
			}
		case *ast.ForStmt:
			walk(n.Init, rankCond)
			walk(n.Cond, rankCond)
			inner := rankCond
			if exprTainted(n.Cond) {
				inner = n.Cond.Pos()
			}
			walk(n.Post, inner)
			walk(n.Body, inner)
		case *ast.RangeStmt:
			walk(n.X, rankCond)
			inner := rankCond
			if exprTainted(n.X) {
				inner = n.X.Pos()
			}
			walk(n.Body, inner)
		case *ast.CallExpr:
			if name, ok := methodOn(pass.TypesInfo, n, "comm", "Comm", collectiveMethods...); ok && rankCond != token.NoPos {
				pos := pass.Fset.Position(rankCond)
				pass.Reportf(n.Pos(),
					"collective Comm.%s is control-dependent on the rank-varying condition at line %d: every rank must call it or none will complete; hoist it out, or annotate //lint:allow collective <reason> if all ranks provably agree",
					name, pos.Line)
			}
			for _, a := range n.Args {
				walk(a, rankCond)
			}
			walk(n.Fun, rankCond)
		default:
			walkChildren(n, func(c ast.Node) { walk(c, rankCond) })
		}
	}
	walk(body, token.NoPos)
}

// walkChildren visits n's immediate children.
func walkChildren(n ast.Node, visit func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			visit(c)
		}
		return false
	})
}

// isRankSource reports whether call is Rank() on a comm.Comm or sim.Proc.
func isRankSource(info *types.Info, call *ast.CallExpr) bool {
	if _, ok := methodOn(info, call, "comm", "Comm", "Rank"); ok {
		return true
	}
	_, ok := methodOn(info, call, "sim", "Proc", "Rank")
	return ok
}

// isRankField reports whether sel reads the rank-identity field of a
// comm.Comm (me) or sim.Proc (rank) — only reachable from inside those
// packages, where the implementation itself is analyzed.
func isRankField(info *types.Info, sel *ast.SelectorExpr) bool {
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return false
	}
	obj := selection.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch {
	case obj.Pkg().Name() == "comm" && obj.Name() == "me":
		return true
	case obj.Pkg().Name() == "sim" && obj.Name() == "rank":
		return true
	}
	return false
}

// rankTaint computes the set of objects in one function body whose values
// derive from the local rank, by fixpoint over the body's assignments.
func rankTaint(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	tainted := make(map[types.Object]bool)
	exprTainted := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.Ident:
				if obj := pass.TypesInfo.Uses[n]; obj != nil && tainted[obj] {
					found = true
				}
			case *ast.CallExpr:
				if isRankSource(pass.TypesInfo, n) {
					found = true
				}
			case *ast.SelectorExpr:
				if isRankField(pass.TypesInfo, n) {
					found = true
				}
			}
			return !found
		})
		return found
	}
	for {
		changed := false
		inspectSkippingFuncLits(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				anyRHS := false
				for _, r := range n.Rhs {
					if exprTainted(r) {
						anyRHS = true
						break
					}
				}
				if !anyRHS {
					return true
				}
				for _, l := range n.Lhs {
					id, ok := l.(*ast.Ident)
					if !ok {
						continue
					}
					obj := pass.TypesInfo.Defs[id]
					if obj == nil {
						obj = pass.TypesInfo.Uses[id]
					}
					if obj != nil && !tainted[obj] {
						tainted[obj] = true
						changed = true
					}
				}
			case *ast.ValueSpec:
				anyRHS := false
				for _, r := range n.Values {
					if exprTainted(r) {
						anyRHS = true
						break
					}
				}
				if !anyRHS {
					return true
				}
				for _, id := range n.Names {
					obj := pass.TypesInfo.Defs[id]
					if obj != nil && !tainted[obj] {
						tainted[obj] = true
						changed = true
					}
				}
			}
			return true
		})
		if !changed {
			return tainted
		}
	}
}
