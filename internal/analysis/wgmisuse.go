package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Wgmisuse flags the three sync.WaitGroup mistakes that turn a clean
// drain/Close into a race or a hang.  The server's Drain and the gateway's
// Close both join goroutines through WaitGroups, so the protocol — Add
// before `go`, Done deferred inside, never copy the WaitGroup — is part of
// the shutdown contract:
//
//   - Add called inside the spawned goroutine races Wait: the waiter can
//     observe the counter before the goroutine ran Add and return early;
//   - Done not deferred: a panic (or an early return added later) between
//     the goroutine's start and its Done leaves Wait stuck forever;
//   - a WaitGroup passed or assigned by value: Add/Done act on the copy and
//     are invisible to Wait on the original.
var Wgmisuse = &Analyzer{
	Name: "wgmisuse",
	Doc: `flag WaitGroup.Add inside the spawned goroutine, non-deferred Done, and copies

Add must happen before the go statement, Done must be deferred first thing
inside the goroutine, and WaitGroups must be passed by pointer.  Suppress
with //lint:allow wgmisuse <reason>.`,
	Run: runWgmisuse,
}

func isWaitGroup(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Name() == "sync" && obj.Name() == "WaitGroup"
}

func runWgmisuse(pass *Pass) error {
	if !concurrencyInScope(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		checkWgCopies(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				checkSpawnedWgBody(pass, lit.Body)
			}
			return true
		})
	}
	return nil
}

// checkSpawnedWgBody checks Add/Done discipline inside one go-launched
// function literal.
func checkSpawnedWgBody(pass *Pass, body *ast.BlockStmt) {
	inspectSkippingFuncLits(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false // a nested launch is checked at its own go statement
		case *ast.DeferStmt:
			// defer wg.Done() (or a deferred closure calling it) is the
			// correct shape; nothing inside a defer is a violation.
			return false
		case *ast.CallExpr:
			switch m, _ := methodOn(pass.TypesInfo, n, "sync", "WaitGroup", "Add", "Done"); m {
			case "Add":
				pass.Reportf(n.Pos(),
					"WaitGroup.Add inside the spawned goroutine races Wait: the waiter can pass before this Add runs; move the Add before the go statement")
			case "Done":
				pass.Reportf(n.Pos(),
					"WaitGroup.Done is not deferred: a panic or early return before this line leaves Wait stuck; make it `defer` first thing in the goroutine")
			}
		}
		return true
	})
}

// checkWgCopies flags sync.WaitGroup values passed by value: as parameters,
// as call arguments, or via assignment.
func checkWgCopies(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			checkWgParams(pass, n.Type)
		case *ast.FuncLit:
			checkWgParams(pass, n.Type)
		case *ast.AssignStmt:
			if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
				return true
			}
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if _, isComposite := rhs.(*ast.CompositeLit); isComposite {
					continue // wg := sync.WaitGroup{} constructs, not copies
				}
				if t := pass.TypesInfo.TypeOf(rhs); t != nil && isWaitGroup(t) {
					pass.Reportf(rhs.Pos(),
						"assignment copies a sync.WaitGroup: Add/Done on the copy are invisible to Wait on the original; use a pointer")
				}
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if _, isComposite := arg.(*ast.CompositeLit); isComposite {
					continue
				}
				if t := pass.TypesInfo.TypeOf(arg); t != nil && isWaitGroup(t) {
					pass.Reportf(arg.Pos(),
						"call passes a sync.WaitGroup by value: Add/Done in the callee act on a copy; pass &%s",
						types.ExprString(arg))
				}
			}
		}
		return true
	})
}

func checkWgParams(pass *Pass, ftype *ast.FuncType) {
	if ftype.Params == nil {
		return
	}
	for _, field := range ftype.Params.List {
		if t := pass.TypesInfo.TypeOf(field.Type); t != nil && isWaitGroup(t) {
			pass.Reportf(field.Pos(),
				"parameter receives a sync.WaitGroup by value: Add/Done here act on a copy invisible to the caller's Wait; take *sync.WaitGroup")
		}
	}
}
