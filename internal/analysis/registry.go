package analysis

// All returns agcmlint's analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Nondeterm, Commtag, Collective, Sendalias}
}
