package analysis

// All returns agcmlint's analyzer suite in reporting order: the
// simulation-protocol analyzers from PR 2 first, then the
// concurrency-correctness suite guarding the serving stack.
func All() []*Analyzer {
	return []*Analyzer{
		Nondeterm, Commtag, Collective, Sendalias,
		Lockorder, Goleak, Ctxflow, Wgmisuse,
	}
}
