// Package sendalias is the analysistest fixture for the sendalias analyzer:
// buffers mutated after being handed to the zero-copy Comm.Send.
package sendalias

import "agcm/internal/comm"

// WriteAfterSend is the basic violation.
func WriteAfterSend(c *comm.Comm, n int) {
	buf := make([]float64, n)
	c.Send(1, 7, buf)
	buf[0] = 1 // want `element write buf\[0\] mutates a buffer passed to Comm\.Send`
}

// CopyAfterSend catches copy-based mutation.
func CopyAfterSend(c *comm.Comm, src []float64) {
	buf := make([]float64, len(src))
	c.Send(1, 7, buf)
	copy(buf, src) // want `copy into buf mutates a buffer passed to Comm\.Send`
}

// AppendAfterSend catches append with possible spare capacity.
func AppendAfterSend(c *comm.Comm) {
	buf := make([]float64, 2, 8)
	c.Send(1, 7, buf)
	buf = append(buf, 3) // want `append to buf mutates a buffer passed to Comm\.Send`
	_ = buf
}

// RebindIsSafe rebinds to a fresh slice before writing again.
func RebindIsSafe(c *comm.Comm, n int) {
	buf := make([]float64, n)
	c.Send(1, 7, buf)
	buf = make([]float64, n)
	buf[0] = 1
	c.Send(1, 8, buf)
}

// SendCopyIsSafe pays for the copy and may reuse the buffer freely.
func SendCopyIsSafe(c *comm.Comm, n int) {
	buf := make([]float64, n)
	for i := 0; i < 3; i++ {
		c.SendCopy(1, 7, buf)
		buf[0] = float64(i)
	}
}

// LoopReuseWithoutRebind re-executes the send with a mutated buffer on the
// back edge.
func LoopReuseWithoutRebind(c *comm.Comm, n int) {
	buf := make([]float64, n)
	for i := 0; i < 3; i++ {
		buf[0] = float64(i) // want `element write buf\[0\] mutates a buffer passed to Comm\.Send`
		c.Send(1, 7, buf)
	}
}

// LoopFreshBuffer allocates per iteration: the sent array is never touched
// again.
func LoopFreshBuffer(c *comm.Comm, n int) {
	var buf []float64
	for i := 0; i < 3; i++ {
		buf = make([]float64, n)
		buf[0] = float64(i)
		c.Send(1, 7, buf)
	}
}

// IntPlans tracks SendInts the same way.
func IntPlans(c *comm.Comm, plan []int) {
	c.SendInts(1, 9, plan)
	plan[0]++ // want `element write plan\[0\] mutates a buffer passed to Comm\.SendInts`
}

// HandoffAllowed documents the deliberate-handoff escape hatch.
func HandoffAllowed(c *comm.Comm, n int) {
	buf := make([]float64, n)
	c.Send(1, 7, buf)
	buf[0] = 1 //lint:allow sendalias fixture demonstrates the escape hatch
}

// RecvIntoAfterSend: receiving into the in-flight send buffer writes
// through the backing array the mailbox still references.
func RecvIntoAfterSend(c *comm.Comm, n int) {
	buf := make([]float64, n)
	c.Send(1, 5, buf)
	c.RecvInto(0, 5, buf) // want `receive into buf via Comm\.RecvInto mutates a buffer passed to Comm\.Send`
}

// RecvIntoRebindAfterSend: assigning the grown scratch back does not help —
// the receive landed in the old backing array before the rebind.
func RecvIntoRebindAfterSend(c *comm.Comm, n int) {
	buf := make([]float64, n)
	c.Send(1, 5, buf)
	buf = c.RecvInto(0, 5, buf) // want `receive into buf via Comm\.RecvInto mutates a buffer passed to Comm\.Send`
	_ = buf
}

// RecvIntoFreshScratch: receiving into different scratch genuinely rebinds
// the sent variable, so the later write is safe.
func RecvIntoFreshScratch(c *comm.Comm, n int, scratch []float64) {
	buf := make([]float64, n)
	c.Send(1, 5, buf)
	buf = c.RecvInto(0, 5, scratch)
	buf[0] = 1
	_ = buf
}

// SendCopyThenRecvInto is the allocation-free steady-state idiom: SendCopy
// hands the mailbox a pooled copy, freeing the scratch for the receive.
func SendCopyThenRecvInto(c *comm.Comm, n int) {
	buf := make([]float64, n)
	for i := 0; i < 3; i++ {
		c.SendCopy(1, 5, buf)
		buf = c.RecvInto(0, 5, buf)
	}
	_ = buf
}

// LoopRecvIntoThenSend: the zero-copy send re-executes, and the next
// iteration's receive scribbles over the in-flight payload.
func LoopRecvIntoThenSend(c *comm.Comm, n int) {
	buf := make([]float64, n)
	for i := 0; i < 3; i++ {
		buf = c.RecvInto(0, 5, buf) // want `receive into buf via Comm\.RecvInto mutates a buffer passed to Comm\.Send`
		c.Send(1, 5, buf)
	}
	_ = buf
}

// ReduceIntoScratchAfterSend: collective *Into scratch participates in the
// same contract as point-to-point receives.
func ReduceIntoScratchAfterSend(c *comm.Comm, data, out []float64) {
	c.Send(1, 5, out)
	out = c.ReduceInto(0, data, out, comm.SumOp) // want `receive into out via Comm\.ReduceInto mutates a buffer passed to Comm\.Send`
	_ = out
}

// SendrecvIntoDataIsSafe: the data argument of SendrecvInto is sent by
// copy, so only its scratch argument counts as a mutation.
func SendrecvIntoDataIsSafe(c *comm.Comm, data, scratch []float64) {
	scratch = c.SendrecvInto(1, 5, data, 0, 5, scratch)
	data[0] = 1
	_ = scratch
}
