// Package sendalias is the analysistest fixture for the sendalias analyzer:
// buffers mutated after being handed to the zero-copy Comm.Send.
package sendalias

import "agcm/internal/comm"

// WriteAfterSend is the basic violation.
func WriteAfterSend(c *comm.Comm, n int) {
	buf := make([]float64, n)
	c.Send(1, 7, buf)
	buf[0] = 1 // want `element write buf\[0\] mutates a buffer passed to Comm\.Send`
}

// CopyAfterSend catches copy-based mutation.
func CopyAfterSend(c *comm.Comm, src []float64) {
	buf := make([]float64, len(src))
	c.Send(1, 7, buf)
	copy(buf, src) // want `copy into buf mutates a buffer passed to Comm\.Send`
}

// AppendAfterSend catches append with possible spare capacity.
func AppendAfterSend(c *comm.Comm) {
	buf := make([]float64, 2, 8)
	c.Send(1, 7, buf)
	buf = append(buf, 3) // want `append to buf mutates a buffer passed to Comm\.Send`
	_ = buf
}

// RebindIsSafe rebinds to a fresh slice before writing again.
func RebindIsSafe(c *comm.Comm, n int) {
	buf := make([]float64, n)
	c.Send(1, 7, buf)
	buf = make([]float64, n)
	buf[0] = 1
	c.Send(1, 8, buf)
}

// SendCopyIsSafe pays for the copy and may reuse the buffer freely.
func SendCopyIsSafe(c *comm.Comm, n int) {
	buf := make([]float64, n)
	for i := 0; i < 3; i++ {
		c.SendCopy(1, 7, buf)
		buf[0] = float64(i)
	}
}

// LoopReuseWithoutRebind re-executes the send with a mutated buffer on the
// back edge.
func LoopReuseWithoutRebind(c *comm.Comm, n int) {
	buf := make([]float64, n)
	for i := 0; i < 3; i++ {
		buf[0] = float64(i) // want `element write buf\[0\] mutates a buffer passed to Comm\.Send`
		c.Send(1, 7, buf)
	}
}

// LoopFreshBuffer allocates per iteration: the sent array is never touched
// again.
func LoopFreshBuffer(c *comm.Comm, n int) {
	var buf []float64
	for i := 0; i < 3; i++ {
		buf = make([]float64, n)
		buf[0] = float64(i)
		c.Send(1, 7, buf)
	}
}

// IntPlans tracks SendInts the same way.
func IntPlans(c *comm.Comm, plan []int) {
	c.SendInts(1, 9, plan)
	plan[0]++ // want `element write plan\[0\] mutates a buffer passed to Comm\.SendInts`
}

// HandoffAllowed documents the deliberate-handoff escape hatch.
func HandoffAllowed(c *comm.Comm, n int) {
	buf := make([]float64, n)
	c.Send(1, 7, buf)
	buf[0] = 1 //lint:allow sendalias fixture demonstrates the escape hatch
}
