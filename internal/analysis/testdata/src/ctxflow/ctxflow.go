// Package ctxflow is the analysistest fixture for the ctxflow analyzer:
// dropped contexts, unannotated lifecycle roots, context-free HTTP
// constructors, and blocking channel operations that ignore ctx.Done().
package ctxflow

import (
	"context"
	"net/http"
	"time"
)

// DropsCtx manufactures a fresh root while a context is in scope: the
// caller's deadline and cancellation no longer reach the work.
func DropsCtx(ctx context.Context) error {
	c, cancel := context.WithTimeout(context.Background(), time.Second) // want `context\.Background drops the context already in scope`
	defer cancel()
	return work(c)
}

// Threads derives properly from the incoming context.
func Threads(ctx context.Context) error {
	c, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return work(c)
}

// Unrooted creates a root outside request scope without documenting who
// cancels it.
func Unrooted() context.Context {
	return context.Background() // want `unrooted context in request-scoped code`
}

// Root is the documented lifecycle shape (the gateway's rootCtx idiom).
func Root() context.Context {
	//lint:allow ctxflow fixture lifecycle root: canceled by Close in the owning daemon
	return context.Background()
}

// HTTPNoCtx builds a request that can never be canceled.
func HTTPNoCtx(ctx context.Context, url string) (*http.Request, error) {
	return http.NewRequest("GET", url, nil) // want `http\.NewRequest ignores the context in scope`
}

// HTTPInClosure shows that closures capture the enclosing function's ctx.
func HTTPInClosure(ctx context.Context, url string) {
	fetch := func() {
		http.Get(url) // want `http\.Get ignores the context in scope`
	}
	fetch()
}

// HTTPWithCtx is the right shape.
func HTTPWithCtx(ctx context.Context, url string) (*http.Request, error) {
	return http.NewRequestWithContext(ctx, "GET", url, nil)
}

// BareRecv keeps waiting after the caller cancels.
func BareRecv(ctx context.Context, ch chan int) int {
	return <-ch // want `blocking receive from ch ignores this function's ctx`
}

// SelectRecv has the ctx.Done() escape hatch.
func SelectRecv(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// BareSend blocks a canceled caller.
func BareSend(ctx context.Context, ch chan int) {
	ch <- 1 // want `blocking send on ch ignores this function's ctx`
}

// BoundedRecv documents why its wait cannot outlive the context by much
// (the hedging pattern: every sender is deadline-bound).
func BoundedRecv(ctx context.Context, ch chan int) int {
	//lint:allow ctxflow every producer is bounded by AttemptTimeout, so the receive cannot block indefinitely
	return <-ch
}

func work(ctx context.Context) error { return ctx.Err() }
