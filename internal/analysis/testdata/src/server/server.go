// Package server is the analysistest fixture for the nondeterm analyzer's
// map-order-only level: the directory name resolves to the serving-layer
// scope, where wall-clock reads are legitimate but map emission order is
// still checked.
package server

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// MeasureLatency exercises the wall-clock exemption: the serving layer
// times real requests, so none of these are flagged.
func MeasureLatency() float64 {
	start := time.Now() // wall clock is legitimate at this level: not flagged
	time.Sleep(time.Millisecond)
	return time.Since(start).Seconds()
}

// EmitCounters exercises the map-order rule, which still applies: these
// bytes would reach a /metrics scrape.
func EmitCounters(counters map[string]uint64) string {
	var b strings.Builder
	for k, v := range counters { // want `range over map counters: iteration order is nondeterministic`
		fmt.Fprintf(&b, "%s %d\n", k, v)
	}
	return b.String()
}

// EmitSorted is the approved emission idiom: collect, sort, then render.
func EmitSorted(counters map[string]uint64) string {
	var keys []string
	for k := range counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s %d\n", k, counters[k])
	}
	return b.String()
}

// CountOnly ranges without binding variables; order is unobservable and not
// flagged at any level.
func CountOnly(counters map[string]uint64) int {
	n := 0
	for range counters {
		n++
	}
	return n
}
