// Package lockorder is the analysistest fixture for the lockorder analyzer:
// acquisition-order cycles, self-deadlocks, and locks leaked on early
// returns.  Classes A/B form a direct cycle, E/F a cycle through a callee's
// summary, C/D prove `go` statements break the held-context, and shard
// exercises nested same-class acquisition.
package lockorder

import (
	"errors"
	"sync"
)

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }
type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }
type E struct{ mu sync.Mutex }
type F struct{ mu sync.Mutex }

type shard struct {
	mu sync.Mutex
	n  int
}

// LockAB and LockBA acquire the same two classes in opposite orders: the
// canonical deadlock.  The cycle is reported once, at the A.mu -> B.mu edge.
func LockAB(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `lock-order cycle A\.mu -> B\.mu -> A\.mu`
	defer b.mu.Unlock()
}

func LockBA(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock()
	defer a.mu.Unlock()
}

// Merge nests two instances of one class with no provable order.
func Merge(x, y *shard) {
	x.mu.Lock()
	defer x.mu.Unlock()
	y.mu.Lock() // want `lock class shard\.mu is acquired while another shard\.mu is held`
	defer y.mu.Unlock()
	x.n += y.n
}

// EarlyReturn leaks the lock on the error path.
func (a *A) EarlyReturn(fail bool) error {
	a.mu.Lock()
	if fail {
		return errors.New("leaks the lock") // want `return while a\.mu \(locked at line \d+\) is still held`
	}
	a.mu.Unlock()
	return nil
}

// Double re-acquires a mutex the function already holds.
func (a *A) Double() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.mu.Lock() // want `self-deadlock`
}

// NotifyOutsideLock uses the deferred-closure unlock idiom (the gateway
// breaker's shape); the hold is covered, nothing is reported.
func (a *A) NotifyOutsideLock(observe func()) {
	a.mu.Lock()
	defer func() {
		a.mu.Unlock()
		observe()
	}()
}

// ManualUnlockPaths unlocks explicitly on every path before returning (the
// admission-queue Push shape); nothing is reported.
func (a *A) ManualUnlockPaths(full bool) bool {
	a.mu.Lock()
	if full {
		a.mu.Unlock()
		return false
	}
	a.mu.Unlock()
	return true
}

// WithHelper acquires F.mu through a same-package callee while holding E.mu;
// Reverse takes them in the opposite order directly.  The interprocedural
// summary closes the cycle.
func (e *E) WithHelper(f *F) {
	e.mu.Lock()
	defer e.mu.Unlock()
	LockF(f) // want `lock-order cycle E\.mu -> F\.mu -> E\.mu`
}

func LockF(f *F) {
	f.mu.Lock()
	defer f.mu.Unlock()
}

func Reverse(e *E, f *F) {
	f.mu.Lock()
	defer f.mu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
}

// LockDC orders D.mu before C.mu; SpawnD hands D work to a goroutine while
// holding C.mu.  The spawned goroutine starts with no holds (sim's watchdog
// relies on exactly this to break w.mu -> mailbox.mu), so no C.mu -> D.mu
// edge exists and no cycle is reported.
func LockDC(c *C, d *D) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
}

func SpawnD(c *C, d *D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	go LockD(d)
}

func LockD(d *D) {
	d.mu.Lock()
	defer d.mu.Unlock()
}

// Handoff transfers lock ownership to a consumer that unlocks it; the leak
// report is suppressed with a documented reason.
func (a *A) Handoff() {
	a.mu.Lock() //lint:allow lockorder ownership transfers to the consumer registered in Double's queue, which unlocks
}
