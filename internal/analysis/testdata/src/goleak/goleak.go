// Package goleak is the analysistest fixture for the goleak analyzer:
// goroutines with no termination path — infinite loops without an exit,
// blocking receives with no escape hatch, and sends without buffer space for
// every spawned sender.
package goleak

import (
	"context"
	"time"
)

type owner struct {
	stop chan struct{}
}

// Close closes the stop channel: every `<-o.stop` in the package is thereby
// a teardown signal, not a leak.
func (o *owner) Close() { close(o.stop) }

// SpinForever launches a goroutine that can never exit.
func SpinForever() {
	go func() {
		for { // want `goroutine never exits: infinite for loop`
			time.Sleep(time.Millisecond)
		}
	}()
}

// Stoppable is the same periodic shape done right: the ticker loop selects
// on the owner's stop channel and returns.
func (o *owner) Stoppable() {
	go func() {
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-o.stop:
				return
			case <-t.C:
			}
		}
	}()
}

// BareReceive blocks on a channel nothing in the package closes: an
// abandoned sender leaks this goroutine.
func BareReceive(ch chan int) {
	go func() {
		<-ch // want `goroutine blocks on <-ch with no escape hatch`
	}()
}

// ClosedReceive is fine: Close closes o.stop.
func (o *owner) ClosedReceive() {
	go func() {
		<-o.stop
	}()
}

// CtxReceive is fine: a context's Done channel is the canonical stop signal.
func CtxReceive(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// UnbufferedSend can block forever once the receiver takes the default
// branch and walks away.
func UnbufferedSend() {
	ch := make(chan int)
	go func() {
		ch <- 1 // want `has 0 buffered slot\(s\) for 1 spawned sender\(s\)`
	}()
	select {
	case <-ch:
	default:
	}
}

// BufferedSend reserves one slot per spawned sender (the hedging pattern:
// cap 2, two attempts); neither send can block.
func BufferedSend() int {
	ch := make(chan int, 2)
	go func() { ch <- 1 }()
	go func() { ch <- 2 }()
	return <-ch
}

// RunPump is an infinite pump launched as a named function: the launch site
// resolves the declaration and the loop is still caught.
func RunPump(ch chan int) {
	for { // want `goroutine never exits: infinite for loop`
		ch <- 0
	}
}

func StartPump(ch chan int) {
	go RunPump(ch)
}

// Detached is a deliberate fire-and-forget pump; the leak report is
// suppressed with a documented reason.
func Detached(ch chan int) {
	go func() {
		//lint:allow goleak process-lifetime pump: it dies with the binary, by design
		for {
			ch <- 0
		}
	}()
}
