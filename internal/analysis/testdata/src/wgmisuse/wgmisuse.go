// Package wgmisuse is the analysistest fixture for the wgmisuse analyzer:
// WaitGroup.Add inside the spawned goroutine, Done not deferred, and
// WaitGroups copied by value.
package wgmisuse

import "sync"

// AddInside races Wait: the waiter can observe the counter before the
// goroutine has run its Add.
func AddInside(wg *sync.WaitGroup) {
	go func() {
		wg.Add(1) // want `WaitGroup\.Add inside the spawned goroutine races Wait`
		defer wg.Done()
	}()
	wg.Wait()
}

// DoneNotDeferred leaves Wait stuck if work panics.
func DoneNotDeferred(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		work()
		wg.Done() // want `WaitGroup\.Done is not deferred`
	}()
}

// Correct is the joinable shape: Add before go, Done deferred inside.
func Correct(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// ByValueParam receives a copy: Add/Done here never reach the caller's Wait.
func ByValueParam(wg sync.WaitGroup) { // want `parameter receives a sync\.WaitGroup by value`
	wg.Wait()
}

// ByValueCall passes the copy in.
func ByValueCall() {
	var wg sync.WaitGroup
	ByValueParam(wg) // want `call passes a sync\.WaitGroup by value`
	wg.Wait()
}

// ByValueAssign copies via assignment.
func ByValueAssign() {
	var wg sync.WaitGroup
	wg2 := wg // want `assignment copies a sync\.WaitGroup`
	wg2.Wait()
}

// AllowedDone is a documented phase barrier: Done deliberately marks a
// mid-body milestone.
func AllowedDone(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		work()
		//lint:allow wgmisuse phase barrier: Done marks the warm-up milestone, not goroutine exit
		wg.Done()
	}()
}

func work() {}
