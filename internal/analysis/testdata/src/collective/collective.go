// Package collective is the analysistest fixture for the collective
// analyzer: collective operations control-dependent on rank-varying
// conditions.
package collective

import (
	"agcm/internal/comm"
	"agcm/internal/sim"
)

// RootOnlyBarrier is the classic deadlock: only rank 0 enters the barrier.
func RootOnlyBarrier(c *comm.Comm) {
	if c.Rank() == 0 {
		c.Barrier() // want `collective Comm\.Barrier is control-dependent on the rank-varying condition`
	}
}

// DerivedRank taints variables computed from Rank().
func DerivedRank(c *comm.Comm, data []float64) []float64 {
	me := c.Rank()
	north := me + 1
	if north < c.Size() {
		return c.Bcast(0, data) // want `collective Comm\.Bcast is control-dependent on the rank-varying condition`
	}
	return data
}

// ElseBranch is rank-varying on both arms.
func ElseBranch(c *comm.Comm, data []float64) []float64 {
	if c.Rank() == 0 {
		return data
	} else {
		return c.Allreduce(data, comm.SumOp) // want `collective Comm\.Allreduce is control-dependent`
	}
}

// ProcRank taints through sim.Proc.Rank too.
func ProcRank(p *sim.Proc, c *comm.Comm) {
	for i := 0; i < p.Rank(); i++ {
		c.Barrier() // want `collective Comm\.Barrier is control-dependent`
	}
}

// SwitchOnRank flags collectives under rank-varying switch cases.
func SwitchOnRank(c *comm.Comm, data []float64) {
	switch c.Rank() {
	case 0:
		c.Gatherv(0, data) // want `collective Comm\.Gatherv is control-dependent`
	default:
	}
}

// UnconditionalCollectives are the correct shape: every rank calls them.
func UnconditionalCollectives(c *comm.Comm, data []float64) []float64 {
	c.Barrier()
	out := c.Allreduce(data, comm.SumOp)
	// Rank-dependent *arguments* are fine — every rank still enters.
	parts := c.Gatherv(c.Rank()%2, out)
	_ = parts
	return out
}

// ReplicatedCondition branches on data that is identical on every rank:
// not rank-derived, so not flagged.
func ReplicatedCondition(c *comm.Comm, steps int, data []float64) []float64 {
	if steps > 10 {
		data = c.Bcast(0, data)
	}
	return data
}

// RankDependentPointToPoint is legal: Send/Recv are pairwise, not
// collective.
func RankDependentPointToPoint(c *comm.Comm, data []float64) []float64 {
	if c.Rank() == 0 {
		c.Send(1, 5, data)
		return data
	}
	if c.Rank() == 1 {
		return c.Recv(0, 5)
	}
	return data
}

// AgreedBranch uses the escape hatch: the guard is rank-varying to the
// analyzer but all ranks provably agree (size is replicated).
func AgreedBranch(c *comm.Comm, data []float64) []float64 {
	if c.Rank() < c.Size() { // always true on every rank
		return c.Bcast(0, data) //lint:allow collective every rank satisfies rank < size, all ranks enter
	}
	return data
}
