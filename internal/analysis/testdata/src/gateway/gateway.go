// Package gateway is the analysistest fixture for the nondeterm analyzer's
// map-order-only level as applied to the cluster gateway: wall-clock reads
// are legitimate (probing, backoff, cooldowns time real requests), but a
// backend ranking or metrics emission that leaks map iteration order would
// make routing and scrapes nondeterministic, so map ranges are still
// checked.
package gateway

import (
	"sort"
	"time"
)

// ProbeAge exercises the wall-clock exemption: health probing times real
// backends, so none of these are flagged at this level.
func ProbeAge(lastProbe time.Time) float64 {
	return time.Since(lastProbe).Seconds()
}

// ScoreBackends ranks cluster members for a key by iterating the backend
// map directly: ties then resolve in map order, so two gateways given the
// same cluster could route the same key differently.  Flagged.
func ScoreBackends(backends map[string]int, key string) string {
	best := ""
	bestScore := -1
	for id, weight := range backends { // want `range over map backends: iteration order is nondeterministic`
		score := len(key) * weight
		if score > bestScore {
			best, bestScore = id, score
		}
	}
	return best
}

// ScoreSorted is the approved scorer idiom: collect the IDs, sort them,
// then score — ties now break toward the lexicographically first backend
// on every gateway.
func ScoreSorted(backends map[string]int, key string) string {
	ids := make([]string, 0, len(backends))
	for id := range backends {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	best := ""
	bestScore := -1
	for _, id := range ids {
		score := len(key) * backends[id]
		if score > bestScore {
			best, bestScore = id, score
		}
	}
	return best
}

// CountEligible ranges without binding variables; order is unobservable
// and not flagged at any level.
func CountEligible(backends map[string]bool) int {
	n := 0
	for range backends {
		n++
	}
	return n
}
