// Package nondeterm is the analysistest fixture for the nondeterm analyzer:
// wall-clock time, unseeded randomness, and order-sensitive map iteration.
package nondeterm

import (
	"math/rand"
	"sort"
	"time"
)

// WallClock exercises the time package checks.
func WallClock() float64 {
	start := time.Now()            // want `time\.Now observes the wall clock`
	elapsed := time.Since(start)   // want `time\.Since observes the wall clock`
	time.Sleep(time.Millisecond)   // want `time\.Sleep observes the wall clock`
	deadline := time.Unix(1996, 0) // time.Unix is pure: not flagged
	_ = deadline
	return elapsed.Seconds()
}

// GlobalRand exercises the math/rand global-source checks.
func GlobalRand(seed int64) float64 {
	x := rand.Float64()                // want `rand\.Float64 uses the global random source`
	rand.Shuffle(3, func(i, j int) {}) // want `rand\.Shuffle uses the global random source`
	// The seeded per-run flow is the approved pattern.
	rng := rand.New(rand.NewSource(seed))
	return x + rng.Float64()
}

// MapOrder exercises the range-over-map checks.
func MapOrder(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want `range over map m: iteration order is nondeterministic`
		total += v
	}

	// Sorted-keys idiom: collect then sort — accepted without annotation.
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		total += m[k]
	}

	// Counting iterations observes no order.
	n := 0
	for range m {
		n++
	}

	// Order-insensitive by keyed writes, asserted by annotation.
	squares := make(map[string]float64, len(m))
	for k, v := range m { //lint:allow nondeterm writes are keyed by the ranged key, order cannot be observed
		squares[k] = v * v
	}
	_ = squares
	return total + float64(n)
}

// SortedViaSlice accepts sort.Slice as the sorting step of the idiom.
func SortedViaSlice(m map[int]string) []int {
	var ids []int
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// CollectWithoutSort collects keys but never sorts them: flagged.
func CollectWithoutSort(m map[int]string) []int {
	var ids []int
	for id := range m { // want `range over map m: iteration order is nondeterministic`
		ids = append(ids, id)
	}
	return ids
}

// AllowOnLineAbove suppresses via a directive on the preceding line.
func AllowOnLineAbove(m map[int]int) map[int]int {
	doubled := make(map[int]int, len(m))
	//lint:allow nondeterm keyed writes, order cannot be observed
	for k, v := range m {
		doubled[k] = 2 * v
	}
	return doubled
}

// linkRegistry mirrors the topology package's packed-pair link index: a map
// for O(1) lookup plus an ordered slice as the source of truth.  Its
// consistency check may range the map with an annotation (each iteration
// only cross-checks its own entry), but routing or reporting must never
// derive results from map order.
type linkRegistry struct {
	ids  map[uint64]int
	ends [][2]int
}

// CheckRegistry is the approved pattern: an annotated order-insensitive
// cross-check of the map view against the slice view.
func CheckRegistry(r *linkRegistry) {
	//lint:allow nondeterm each iteration cross-checks only its own ranged entry against the ends slice
	for k, id := range r.ids {
		if r.ends[id] != [2]int{int(k >> 32), int(uint32(k))} {
			panic("registry mismatch")
		}
	}
}

// LinkIDsFromMap derives an ordered result from map iteration: flagged.
func LinkIDsFromMap(r *linkRegistry) []int {
	var ids []int
	for _, id := range r.ids { // want `range over map r\.ids: iteration order is nondeterministic`
		ids = append(ids, id)
	}
	return ids
}

// LinkBytesSum accumulates floats over map order without an annotation:
// flagged, because float addition order changes the bits.
func LinkBytesSum(busy map[int]float64) float64 {
	total := 0.0
	for _, v := range busy { // want `range over map busy: iteration order is nondeterministic`
		total += v
	}
	return total
}
