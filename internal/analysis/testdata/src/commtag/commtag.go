// Package commtag is the analysistest fixture for the commtag analyzer:
// constant tag arguments outside the user range [0, comm.MaxUserTag).
package commtag

import "agcm/internal/comm"

// Fixture-local tag constants, mirroring how real packages declare theirs.
const (
	tagGood    = 41
	tagTooHigh = comm.MaxUserTag // first reserved tag
	tagHighest = comm.MaxUserTag - 1
)

// ConstantTags exercises in-range and out-of-range constants.
func ConstantTags(c *comm.Comm, buf []float64) {
	c.Send(1, tagGood, buf)
	c.Send(1, 70000, buf)          // want `tag 70000 passed to Comm\.Send collides with the reserved collective tag range`
	c.SendCopy(1, tagTooHigh, buf) // want `tag 65472 passed to Comm\.SendCopy collides with the reserved collective tag range`
	c.Send(1, tagHighest, buf)     // highest legal user tag
	_ = c.Recv(0, -3)              // want `tag -3 passed to Comm\.Recv is negative`
}

// IntSlices exercises the int-slice variants.
func IntSlices(c *comm.Comm, plan []int) {
	c.SendInts(1, tagGood, plan)
	c.SendInts(1, comm.MaxUserTag+7, plan) // want `tag 65479 passed to Comm\.SendInts collides`
	_ = c.RecvInts(0, 1<<16)               // want `tag 65536 passed to Comm\.RecvInts collides`
}

// BothSendrecvTags checks that the send and the receive tag are both
// propagated.
func BothSendrecvTags(c *comm.Comm, buf []float64) []float64 {
	return c.Sendrecv(1, comm.MaxUserTag, buf, 0, -1) // want `tag 65472 passed to Comm\.Sendrecv collides` `tag -1 passed to Comm\.Sendrecv is negative`
}

// DynamicTags cannot be folded by the type checker and are left to the
// run-time checkUserTag guard.
func DynamicTags(c *comm.Comm, buf []float64, round int) {
	tag := tagGood + round
	c.Send(1, tag, buf)
}

// Allowed demonstrates the escape hatch for a tag the checker cannot see is
// rewritten before use (none exist in the real tree; the annotation is the
// documented way out if one ever does).
func Allowed(c *comm.Comm, buf []float64) {
	c.Send(1, 70001, buf) //lint:allow commtag fixture demonstrates the escape hatch
}
