package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Goleak flags `go` launches whose goroutine has no termination path.  The
// gateway and server lean hard on short-lived goroutines — hedge attempts,
// hedge-loser reapers, probe loops, drain waiters — and a goroutine that can
// outlive its owner keeps touching breakers, metrics and transports after
// Close has returned.  Three shapes are checked, all positional:
//
//   - an infinite `for` loop (no condition) containing no return, no break
//     that targets it, and no goto: the goroutine can never exit;
//   - a blocking receive with no escape hatch: a bare `<-ch` (or a
//     single-case select) where ch is not a context's Done channel, not
//     time-derived, and not closed anywhere in the package — if the sender
//     is abandoned, the goroutine leaks;
//   - a send on a channel the spawning function makes unbuffered (or with
//     fewer slots than spawned senders): if the receiver gives up, the
//     sender blocks forever.
//
// A receive inside a select with a second case or a default always counts as
// having an escape hatch, as does receiving from a channel some function in
// the package closes (close(g.stop) in Close anchors every `<-g.stop`).
// Goroutines with finite bodies terminate on their own and are never
// flagged; whether their completion is *awaited* is wgmisuse's and the
// owners' business.
var Goleak = &Analyzer{
	Name: "goleak",
	Doc: `flag goroutines with no termination path

A goroutine must be able to exit: infinite loops need a return or break,
blocking receives need a second select case / a close signal / a context
Done channel, and sends from spawned goroutines need enough buffer for
every spawned sender.  Suppress provable false positives with
//lint:allow goleak <reason>.`,
	Run: runGoleak,
}

func runGoleak(pass *Pass) error {
	if !concurrencyInScope(pass.Pkg.Path()) {
		return nil
	}
	closed := closedChannels(pass)
	decls := declBodies(pass)
	for _, file := range pass.Files {
		funcBodies(file, func(body *ast.BlockStmt) {
			inspectSkippingFuncLits(body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				var target *ast.BlockStmt
				if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
					target = lit.Body
				} else if fn := staticCallee(pass.TypesInfo, g.Call); fn != nil {
					target = decls[fn]
				}
				if target != nil {
					checkGoroutineBody(pass, target, body, closed)
				}
				return false // the literal's own GoStmts are found via its funcBodies visit
			})
		})
	}
	return nil
}

// declBodies maps every function declared in the package to its body.
func declBodies(pass *Pass) map[*types.Func]*ast.BlockStmt {
	out := make(map[*types.Func]*ast.BlockStmt)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					out[fn] = fd.Body
				}
			}
		}
	}
	return out
}

// chanClass names a channel expression for matching receives against closes:
// field channels by (owner type, field), everything else by rendering.
func chanClass(info *types.Info, e ast.Expr) string {
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if owner := namedTypeName(info, sel.X); owner != "" {
			return owner + "." + sel.Sel.Name
		}
	}
	return types.ExprString(e)
}

// closedChannels collects the class of every channel some function in the
// package closes: receiving from one of these is receiving a teardown
// signal.
func closedChannels(pass *Pass) map[string]bool {
	out := make(map[string]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "close" && pass.TypesInfo.Uses[id] == types.Universe.Lookup("close") {
				out[chanClass(pass.TypesInfo, call.Args[0])] = true
			}
			return true
		})
	}
	return out
}

// isDoneChannel reports whether e is a call to a Done method from package
// context (ctx.Done()): receiving from it is the canonical stop signal.
func isDoneChannel(info *types.Info, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	obj := info.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Name() == "context"
}

// isTimeDerived reports whether the channel expression comes from the time
// package (time.After(...), time.Tick(...), ticker.C, timer.C): these fire
// on their own, so a receive does not block forever.
func isTimeDerived(info *types.Info, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			if pkg, ok := packageQualifier(info, sel); ok && pkg == "time" {
				return true
			}
		}
	case *ast.SelectorExpr:
		if e.Sel.Name == "C" {
			owner := namedTypeName(info, e.X)
			return owner == "Ticker" || owner == "Timer"
		}
	}
	return false
}

// checkGoroutineBody applies the three leak rules to one spawned body.
// spawner is the function body containing the `go` statement (used to find
// the make() of channels the goroutine sends on).
func checkGoroutineBody(pass *Pass, body, spawner *ast.BlockStmt, closed map[string]bool) {
	escaped := selectEscapes(body)
	inspectSkippingFuncLits(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false // a nested launch is its own goroutine
		case *ast.ForStmt:
			if n.Cond == nil && !loopCanExit(n) {
				pass.Reportf(n.Pos(),
					"goroutine never exits: infinite for loop with no return, break, or goto; give it a stop signal (ctx.Done() or a closed channel) and a return")
			}
		case *ast.UnaryExpr:
			if n.Op != token.ARROW {
				return true
			}
			if escaped[n.Pos()] || isDoneChannel(pass.TypesInfo, n.X) || isTimeDerived(pass.TypesInfo, n.X) {
				return true
			}
			if closed[chanClass(pass.TypesInfo, n.X)] {
				return true
			}
			pass.Reportf(n.Pos(),
				"goroutine blocks on <-%s with no escape hatch: no second select case, no close signal in this package, not a context Done channel; if the sender is abandoned this goroutine leaks",
				types.ExprString(n.X))
		case *ast.SendStmt:
			if escaped[n.Pos()] {
				return true
			}
			if ch, ok := n.Chan.(*ast.Ident); ok {
				// Only reason about channels whose make() is visible in the
				// spawning function; anything else is out of positional
				// reach and stays unflagged.
				if buf, sends, known := chanBudget(pass, ch, spawner); known && buf < sends {
					pass.Reportf(n.Pos(),
						"goroutine sends on %s, which has %d buffered slot(s) for %d spawned sender(s): if the receiver gives up, the send blocks forever; buffer the channel for all senders or select on a stop signal",
						ch.Name, buf, sends)
				}
			}
		}
		return true
	})
}

// selectEscapes records the position of every channel operation sitting in
// the comm clause of a select with a second case or a default: those have an
// escape hatch and are fine.  Single-case selects give no escape and their
// ops stay unmarked.
func selectEscapes(body *ast.BlockStmt) map[token.Pos]bool {
	escaped := make(map[token.Pos]bool)
	inspectSkippingFuncLits(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if len(sel.Body.List) < 2 && !hasDefault {
			return true
		}
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			ast.Inspect(cc.Comm, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.UnaryExpr:
					if m.Op == token.ARROW {
						escaped[m.Pos()] = true
					}
				case *ast.SendStmt:
					escaped[m.Pos()] = true
				}
				return true
			})
		}
		return true
	})
	return escaped
}

// loopCanExit reports whether an infinite `for` loop's body contains any way
// out: a return, a goto, a panic, a labeled break, or an unlabeled break not
// consumed by a nested for/select/switch.
func loopCanExit(loop *ast.ForStmt) bool {
	var stmtExits func(s ast.Stmt, breakable bool) bool
	listExits := func(list []ast.Stmt, breakable bool) bool {
		for _, s := range list {
			if stmtExits(s, breakable) {
				return true
			}
		}
		return false
	}
	stmtExits = func(s ast.Stmt, breakable bool) bool {
		switch s := s.(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.BranchStmt:
			switch s.Tok {
			case token.GOTO:
				return true
			case token.BREAK:
				return breakable || s.Label != nil
			}
			return false
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					return true
				}
			}
			return false
		case *ast.BlockStmt:
			return listExits(s.List, breakable)
		case *ast.IfStmt:
			if stmtExits(s.Body, breakable) {
				return true
			}
			if s.Else != nil {
				return stmtExits(s.Else, breakable)
			}
			return false
		case *ast.LabeledStmt:
			return stmtExits(s.Stmt, breakable)
		case *ast.ForStmt:
			return stmtExits(s.Body, false)
		case *ast.RangeStmt:
			return stmtExits(s.Body, false)
		case *ast.SelectStmt:
			return listExits(s.Body.List, false)
		case *ast.SwitchStmt:
			return listExits(s.Body.List, false)
		case *ast.TypeSwitchStmt:
			return listExits(s.Body.List, false)
		case *ast.CaseClause:
			return listExits(s.Body, breakable)
		case *ast.CommClause:
			return listExits(s.Body, breakable)
		}
		return false
	}
	return stmtExits(loop.Body, true)
}

// chanBudget looks for `name := make(chan T, N)` in the spawning function
// and counts how many `go` statements there send on name, returning the
// buffer size, the sender count, and whether both were found.
func chanBudget(pass *Pass, ch *ast.Ident, spawner *ast.BlockStmt) (buf, sends int, known bool) {
	obj := pass.TypesInfo.Uses[ch]
	if obj == nil {
		return 0, 0, false
	}
	found := false
	inspectSkippingFuncLits(spawner, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || pass.TypesInfo.Defs[id] != obj && pass.TypesInfo.Uses[id] != obj {
				continue
			}
			if i >= len(assign.Rhs) {
				continue
			}
			call, ok := assign.Rhs[i].(*ast.CallExpr)
			if !ok {
				continue
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || fn.Name != "make" || pass.TypesInfo.Uses[fn] != types.Universe.Lookup("make") {
				continue
			}
			found = true
			if len(call.Args) >= 2 {
				if tv, ok := pass.TypesInfo.Types[call.Args[1]]; ok && tv.Value != nil {
					if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
						buf = int(v)
					}
				}
			}
		}
		return true
	})
	if !found {
		return 0, 0, false
	}
	ast.Inspect(spawner, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				send, ok := m.(*ast.SendStmt)
				if !ok {
					return true
				}
				if id, ok := send.Chan.(*ast.Ident); ok {
					if pass.TypesInfo.Uses[id] == obj {
						sends++
					}
				}
				return true
			})
		}
		return true
	})
	return buf, sends, true
}
