package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Lockorder machine-checks the serving stack's lock discipline.  The server
// deliberately does cache lookup, single-flight registration and admission
// under one lock (internal/server: flightMu -> cacheShard.mu / queue.mu), and
// the gateway splits breaker state from gateway state; both invariants only
// hold while every code path acquires the mutexes in one global order.
//
// The analyzer builds a per-package acquisition graph: an edge A -> B is
// recorded whenever a lock of class B is acquired (directly, or by a called
// same-package function) while a lock of class A is held.  A lock's class is
// (owning struct type, field name) — e.g. Server.flightMu — so the graph is
// about lock *disciplines*, not instances.  Cycles in the graph mean two
// goroutines can acquire the same pair of locks in opposite orders and
// deadlock.
//
// It also flags the two local hazards that produce stuck-forever goroutines
// in review after review: re-acquiring a mutex the function already holds
// (self-deadlock), and returning — typically on an error path — while a lock
// is still held with no deferred unlock covering it.
//
// The tracking is positional (no CFG): statements are interpreted in source
// order, `go` statements are skipped (a spawned goroutine does not inherit
// the spawner's holds — sim's watchdog hands mailbox teardown to
// `go closeAll()` precisely to avoid holding w.mu across mailbox locks), and
// both `defer mu.Unlock()` and the deferred-closure form
// `defer func() { mu.Unlock(); ... }()` (the gateway breaker's
// notify-outside-lock idiom) mark the hold as covered.
var Lockorder = &Analyzer{
	Name: "lockorder",
	Doc: `flag mutex-acquisition cycles, self-deadlocks, and locks leaked on early returns

Builds a per-package graph of which lock classes are acquired while which
others are held (including one call level deep) and reports cycles: two
paths acquiring the same locks in opposite orders deadlock under
concurrency.  Also reports acquiring a mutex already held by the same
function and return statements that leave a lock held with no deferred
unlock.  Suppress provable false positives with
//lint:allow lockorder <reason>.`,
	Run: runLockorder,
}

// mutexMethod reports whether call is a Lock/RLock/Unlock/RUnlock call on a
// sync.Mutex or sync.RWMutex (including one embedded in a local struct),
// returning the method name and the receiver expression.
func mutexMethod(info *types.Info, call *ast.CallExpr) (string, ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", nil, false
	}
	obj, _ := info.Uses[sel.Sel].(*types.Func)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Name() != "sync" {
		return "", nil, false
	}
	sig, _ := obj.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", nil, false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", nil, false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
	default:
		return "", nil, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return sel.Sel.Name, sel.X, true
	}
	return "", nil, false
}

// namedTypeName returns the name of e's named type after stripping pointers,
// or "".
func namedTypeName(info *types.Info, e ast.Expr) string {
	t := info.TypeOf(e)
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// lockClass names the discipline a lock belongs to: for a field mutex
// (s.flightMu) it is "OwnerType.field", for an embedded mutex it is the
// outer type name, and for a plain variable it is the variable's rendering.
func lockClass(info *types.Info, recv ast.Expr) string {
	if sel, ok := recv.(*ast.SelectorExpr); ok {
		if owner := namedTypeName(info, sel.X); owner != "" {
			return owner + "." + sel.Sel.Name
		}
		return types.ExprString(recv)
	}
	if t := namedTypeName(info, recv); t != "" && t != "Mutex" && t != "RWMutex" {
		return t // embedded mutex: x.Lock() where x's type embeds sync.Mutex
	}
	return types.ExprString(recv)
}

// staticCallee resolves a call to the *types.Func it statically invokes, or
// nil for indirect calls and builtins.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// heldLock is one acquisition the positional walk believes is live.
type heldLock struct {
	expr     string // receiver rendering — instance identity within the function
	class    string
	pos      token.Pos
	deferred bool // a deferred Unlock covers this hold
	reported bool // already flagged at a return; don't re-flag at body end
}

func runLockorder(pass *Pass) error {
	if !concurrencyInScope(pass.Pkg.Path()) {
		return nil
	}
	summaries := lockSummaries(pass)
	// graph[A][B] = position of the first site acquiring class B while class
	// A was held.
	graph := make(map[string]map[string]token.Pos)
	addEdge := func(from, to string, pos token.Pos) {
		m := graph[from]
		if m == nil {
			m = make(map[string]token.Pos)
			graph[from] = m
		}
		if _, ok := m[to]; !ok {
			m[to] = pos
		}
	}
	for _, file := range pass.Files {
		funcBodies(file, func(body *ast.BlockStmt) {
			checkLockBody(pass, body, summaries, addEdge)
		})
	}
	reportLockCycles(pass, graph)
	return nil
}

// lockSummaries computes, for every function declared in the package, the
// set of lock classes it may acquire — directly or through same-package
// callees (a fixpoint over the call graph).  `go` and `defer` subtrees are
// excluded: a spawned goroutine's acquisitions do not happen on the caller's
// stack.
func lockSummaries(pass *Pass) map[*types.Func]map[string]token.Pos {
	acquired := make(map[*types.Func]map[string]token.Pos)
	callees := make(map[*types.Func][]*types.Func)
	var fns []*types.Func
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			fns = append(fns, fn)
			acq := make(map[string]token.Pos)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
					return false
				case *ast.CallExpr:
					if m, recv, ok := mutexMethod(pass.TypesInfo, n); ok {
						if m == "Lock" || m == "RLock" {
							c := lockClass(pass.TypesInfo, recv)
							if _, seen := acq[c]; !seen {
								acq[c] = n.Pos()
							}
						}
					} else if callee := staticCallee(pass.TypesInfo, n); callee != nil && callee.Pkg() == pass.Pkg {
						callees[fn] = append(callees[fn], callee)
					}
				}
				return true
			})
			acquired[fn] = acq
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			for _, callee := range callees[fn] {
				for c, pos := range acquired[callee] {
					// Keep the smallest position per class so the result is
					// independent of map iteration order.
					if old, ok := acquired[fn][c]; !ok || pos < old {
						acquired[fn][c] = pos
						changed = true
					}
				}
			}
		}
	}
	return acquired
}

// checkLockBody interprets one function body in source order, tracking held
// locks, reporting local hazards, and feeding the acquisition graph.
func checkLockBody(pass *Pass, body *ast.BlockStmt, summaries map[*types.Func]map[string]token.Pos, addEdge func(from, to string, pos token.Pos)) {
	var held []heldLock
	pop := func(expr string) {
		for i := len(held) - 1; i >= 0; i-- {
			if held[i].expr == expr {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}
	markDeferred := func(expr string) {
		for i := len(held) - 1; i >= 0; i-- {
			if held[i].expr == expr {
				held[i].deferred = true
				return
			}
		}
	}
	line := func(p token.Pos) int { return pass.Fset.Position(p).Line }
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // analyzed as its own body by funcBodies
		case *ast.GoStmt:
			return false // the goroutine does not inherit the spawner's holds
		case *ast.DeferStmt:
			if m, recv, ok := mutexMethod(pass.TypesInfo, n.Call); ok && (m == "Unlock" || m == "RUnlock") {
				markDeferred(types.ExprString(recv))
			} else if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				// defer func() { mu.Unlock(); notify() }() — the
				// unlock-then-notify idiom.
				ast.Inspect(lit.Body, func(inner ast.Node) bool {
					if call, ok := inner.(*ast.CallExpr); ok {
						if m, recv, ok := mutexMethod(pass.TypesInfo, call); ok && (m == "Unlock" || m == "RUnlock") {
							markDeferred(types.ExprString(recv))
						}
					}
					return true
				})
			}
			return false
		case *ast.ReturnStmt:
			for i := range held {
				if !held[i].deferred {
					pass.Reportf(n.Pos(),
						"return while %s (locked at line %d) is still held and no deferred unlock covers it: this path leaks the lock",
						held[i].expr, line(held[i].pos))
					held[i].reported = true
				}
			}
			return true
		case *ast.CallExpr:
			if m, recv, ok := mutexMethod(pass.TypesInfo, n); ok {
				expr := types.ExprString(recv)
				switch m {
				case "Lock", "RLock":
					for _, h := range held {
						if h.expr == expr {
							pass.Reportf(n.Pos(),
								"%s.%s while %s is already held (locked at line %d): self-deadlock",
								expr, m, expr, line(h.pos))
							return true
						}
					}
					class := lockClass(pass.TypesInfo, recv)
					for _, h := range held {
						addEdge(h.class, class, n.Pos())
					}
					held = append(held, heldLock{expr: expr, class: class, pos: n.Pos()})
				case "Unlock", "RUnlock":
					pop(expr)
				}
				return true
			}
			if len(held) > 0 {
				if callee := staticCallee(pass.TypesInfo, n); callee != nil && callee.Pkg() == pass.Pkg {
					for c := range summaries[callee] {
						for _, h := range held {
							addEdge(h.class, c, n.Pos())
						}
					}
				}
			}
		}
		return true
	})
	for _, h := range held {
		if !h.deferred && !h.reported {
			pass.Reportf(h.pos,
				"%s is still held when the function ends and no deferred unlock covers it", h.expr)
		}
	}
}

// reportLockCycles finds cycles in the acquisition graph via DFS (sorted
// neighbor order, so reports are deterministic) and reports each once, at
// the position of its lexically canonical first edge.
func reportLockCycles(pass *Pass, graph map[string]map[string]token.Pos) {
	nodes := make([]string, 0, len(graph))
	for n := range graph {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	neighbors := func(u string) []string {
		vs := make([]string, 0, len(graph[u]))
		for v := range graph[u] {
			vs = append(vs, v)
		}
		sort.Strings(vs)
		return vs
	}
	const (
		white = iota
		gray
		black
	)
	color := make(map[string]int)
	seen := make(map[string]bool)
	var path []string
	var dfs func(u string)
	dfs = func(u string) {
		color[u] = gray
		path = append(path, u)
		for _, v := range neighbors(u) {
			switch color[v] {
			case gray:
				for i := len(path) - 1; i >= 0; i-- {
					if path[i] == v {
						reportCycle(pass, graph, append([]string(nil), path[i:]...), seen)
						break
					}
				}
			case white:
				dfs(v)
			}
		}
		path = path[:len(path)-1]
		color[u] = black
	}
	for _, n := range nodes {
		if color[n] == white {
			dfs(n)
		}
	}
}

func reportCycle(pass *Pass, graph map[string]map[string]token.Pos, cycle []string, seen map[string]bool) {
	// Canonical rotation: smallest class first, so the same cycle found from
	// different DFS roots is reported once.
	minAt := 0
	for i, c := range cycle {
		if c < cycle[minAt] {
			minAt = i
		}
	}
	rot := append(append([]string(nil), cycle[minAt:]...), cycle[:minAt]...)
	key := strings.Join(rot, "->")
	if seen[key] {
		return
	}
	seen[key] = true
	at := func(p token.Pos) string {
		pos := pass.Fset.Position(p)
		return filepath.Base(pos.Filename) + ":" + strconv.Itoa(pos.Line)
	}
	if len(rot) == 1 {
		pos := graph[rot[0]][rot[0]]
		pass.Reportf(pos,
			"lock class %s is acquired while another %s is held: nested same-class acquisition has no provable order; release the first lock or document a total order with //lint:allow lockorder <reason>",
			rot[0], rot[0])
		return
	}
	var edges []string
	for i, from := range rot {
		to := rot[(i+1)%len(rot)]
		edges = append(edges, from+" -> "+to+" at "+at(graph[from][to]))
	}
	pass.Reportf(graph[rot[0]][rot[1]],
		"lock-order cycle %s -> %s (%s): opposite acquisition orders deadlock under concurrency",
		strings.Join(rot, " -> "), rot[0], strings.Join(edges, ", "))
}
