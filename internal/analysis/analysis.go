// Package analysis is agcmlint's static-analysis framework plus the four
// AGCM-specific analyzers (nondeterm, commtag, collective, sendalias) that
// machine-check the simulator's determinism and communication-protocol
// invariants (see internal/sim and internal/comm package docs for the rules
// being enforced).
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis —
// Analyzer, Pass, Diagnostic — but is built on the standard library alone:
// this tree must build with no module downloads, so x/tools cannot be a
// dependency (see the note in go.mod).  The API is kept signature-compatible
// enough that each analyzer's Run function could be ported to the real
// framework by changing only the package names.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow <name> <reason> suppression comments.
	Name string
	// Doc is the analyzer's help text; the first line is a summary.
	Doc string
	// Run applies the check to one package, reporting findings via
	// pass.Report / pass.Reportf.
	Run func(pass *Pass) error
}

// A Package is one type-checked package ready for analysis, as produced by
// the load subpackage.
type Package struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// A Pass connects one Analyzer to one Package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding.  Analyzer is filled in by Run.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Position resolves the diagnostic's file position against fset.
func (d Diagnostic) Position(fset *token.FileSet) token.Position {
	return fset.Position(d.Pos)
}

// AllowDirective is one parsed //lint:allow comment.
type AllowDirective struct {
	Line     int    // line the comment sits on
	Analyzer string // analyzer being suppressed
	Reason   string // mandatory justification
}

// allowPrefix introduces a suppression comment:
//
//	//lint:allow <analyzer> <reason>
//
// A directive suppresses diagnostics of that analyzer on its own line and on
// the line directly below it (so it can ride at the end of the offending
// line or on the line above it).  The reason is mandatory: an allow without
// a justification is itself reported.
const allowPrefix = "//lint:allow"

// parseAllows extracts the suppression directives of one file, reporting
// malformed ones (missing analyzer or reason) through report.
func parseAllows(fset *token.FileSet, file *ast.File, report func(Diagnostic)) []AllowDirective {
	var out []AllowDirective
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, allowPrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, allowPrefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //lint:allowance — not ours
			}
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				report(Diagnostic{
					Pos:      c.Pos(),
					Analyzer: "lintdirective",
					Message:  "malformed //lint:allow: need \"//lint:allow <analyzer> <reason>\" with a non-empty reason",
				})
				continue
			}
			out = append(out, AllowDirective{
				Line:     fset.Position(c.Pos()).Line,
				Analyzer: fields[0],
				Reason:   strings.Join(fields[1:], " "),
			})
		}
	}
	return out
}

// Run applies each analyzer to each package, filters out diagnostics
// suppressed by //lint:allow directives, and returns the remainder sorted by
// position.  Malformed directives are reported as diagnostics of the pseudo
// analyzer "lintdirective".
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		// The analyzers check non-test code only: tests legitimately use
		// wall clocks, randomness, and deliberately-invalid protocol calls
		// (e.g. sending a reserved tag to assert the panic).  The
		// standalone loader never reads _test.go files, but under `go vet`
		// cmd/go includes them in the unit, so filter here to keep the two
		// modes consistent.
		files := pkg.Files[:0:0]
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Package).Filename
			if !strings.HasSuffix(name, "_test.go") {
				files = append(files, f)
			}
		}
		// allowed[line] lists analyzers suppressed on that line.
		allowed := make(map[int][]string)
		for _, f := range files {
			for _, d := range parseAllows(pkg.Fset, f, func(d Diagnostic) { all = append(all, d) }) {
				allowed[d.Line] = append(allowed[d.Line], d.Analyzer)
				allowed[d.Line+1] = append(allowed[d.Line+1], d.Analyzer)
			}
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d Diagnostic) {
				d.Analyzer = a.Name
				line := pkg.Fset.Position(d.Pos).Line
				for _, name := range allowed[line] {
					if name == a.Name {
						return
					}
				}
				all = append(all, d)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Pkg.Path(), err)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Pos < all[j].Pos })
	return all, nil
}

// funcBodies yields every function body in the file exactly once: each
// FuncDecl body and each FuncLit body is visited as its own unit, with
// nested FuncLits excluded from the enclosing walk (they get their own
// visit).  Analyzers that reason about intra-function control or data flow
// use this so a closure's conditions do not leak into its enclosing
// function's analysis.
func funcBodies(file *ast.File, visit func(body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				visit(n.Body)
			}
		case *ast.FuncLit:
			visit(n.Body)
		}
		return true
	})
}

// inspectSkippingFuncLits walks the statements of one function body without
// descending into nested function literals.
func inspectSkippingFuncLits(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// methodOn reports whether call is a method call named one of names on a
// named type typeName declared in a package named pkgName, returning the
// method name.  Matching is by package *name* rather than import path so the
// analyzers also work on test fixtures and forks of the module.
func methodOn(info *types.Info, call *ast.CallExpr, pkgName, typeName string, names ...string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return "", false
	}
	obj := selection.Obj()
	if obj.Pkg() == nil || obj.Pkg().Name() != pkgName {
		return "", false
	}
	recv := selection.Recv()
	for {
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
			continue
		}
		break
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != typeName {
		return "", false
	}
	for _, n := range names {
		if obj.Name() == n {
			return n, true
		}
	}
	return "", false
}
