package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Ctxflow checks that cancellation actually propagates.  The serving stack
// threads per-job deadlines from HTTP request contexts down into
// core.RunContext, and the gateway's hedging/retry machinery relies on
// context cancellation to kill losers — a dropped or ignored context turns
// "cancel" into "keep burning a worker".  Three rules:
//
//   - a function that receives a context must not manufacture a fresh root
//     with context.Background()/TODO(): that drops the caller's deadline and
//     cancellation (shadowing an incoming ctx with a fresh root is the same
//     bug);
//   - elsewhere in scoped packages, context.Background()/TODO() marks a
//     lifecycle root and must be annotated: request-scoped code derives from
//     the caller, and the annotation forces each root to document who
//     cancels it (the gateway's root is canceled in Close; the server's
//     workers deliberately outlive disconnected clients);
//   - a context-carrying function must not ignore its context while
//     blocking: http.NewRequest/Get/Post/Head (use NewRequestWithContext —
//     checked in closures too, which capture the enclosing ctx), and bare
//     channel sends/receives outside a multi-case select (add a ctx.Done()
//     case, or annotate why the wait is bounded).
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc: `flag dropped contexts, context-free roots, and blocking ops that ignore ctx.Done()

Functions holding a context.Context must thread it: no fresh
context.Background()/TODO() roots, no context-free HTTP constructors, no
bare blocking channel operations without a ctx.Done() escape.  Lifecycle
roots outside request scope must be annotated.  Suppress with
//lint:allow ctxflow <reason>.`,
	Run: runCtxflow,
}

// funcUnit is one function declaration or literal with its context
// visibility resolved.
type funcUnit struct {
	ftype  *ast.FuncType
	body   *ast.BlockStmt
	ownCtx bool // has a context.Context parameter itself
	anyCtx bool // ownCtx, or a lexically enclosing function has one
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Name() == "context" && obj.Name() == "Context"
}

func hasCtxParam(info *types.Info, ftype *ast.FuncType) bool {
	if ftype.Params == nil {
		return false
	}
	for _, field := range ftype.Params.List {
		if t := info.TypeOf(field.Type); t != nil && isContextType(t) {
			return true
		}
	}
	return false
}

func runCtxflow(pass *Pass) error {
	if !concurrencyInScope(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		var units []*funcUnit
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					units = append(units, &funcUnit{ftype: n.Type, body: n.Body, ownCtx: hasCtxParam(pass.TypesInfo, n.Type)})
				}
			case *ast.FuncLit:
				units = append(units, &funcUnit{ftype: n.Type, body: n.Body, ownCtx: hasCtxParam(pass.TypesInfo, n.Type)})
			}
			return true
		})
		// A literal nested in a ctx-carrying function captures that ctx.
		for _, u := range units {
			u.anyCtx = u.ownCtx
			for _, outer := range units {
				if outer.ownCtx && outer.body.Pos() < u.body.Pos() && u.body.End() <= outer.body.End() {
					u.anyCtx = true
				}
			}
		}
		for _, u := range units {
			checkCtxUnit(pass, u)
		}
	}
	return nil
}

// ctxFreeHTTPFuncs are net/http package functions that issue or build a
// request without a context.
var ctxFreeHTTPFuncs = map[string]string{
	"NewRequest": "http.NewRequestWithContext",
	"Get":        "http.NewRequestWithContext + Client.Do",
	"Post":       "http.NewRequestWithContext + Client.Do",
	"PostForm":   "http.NewRequestWithContext + Client.Do",
	"Head":       "http.NewRequestWithContext + Client.Do",
}

func checkCtxUnit(pass *Pass, u *funcUnit) {
	escaped := selectEscapes(u.body)
	inspectSkippingFuncLits(u.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := packageQualifier(pass.TypesInfo, sel)
			if !ok {
				return true
			}
			switch pkg {
			case "context":
				if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
					if u.anyCtx {
						pass.Reportf(n.Pos(),
							"context.%s drops the context already in scope: the caller's deadline and cancellation no longer reach this work; derive from the incoming ctx",
							sel.Sel.Name)
					} else {
						pass.Reportf(n.Pos(),
							"context.%s creates an unrooted context in request-scoped code: derive from a caller's ctx, or annotate the lifecycle root with //lint:allow ctxflow <who cancels it>",
							sel.Sel.Name)
					}
				}
			case "net/http":
				if u.anyCtx {
					if repl, ok := ctxFreeHTTPFuncs[sel.Sel.Name]; ok {
						pass.Reportf(n.Pos(),
							"http.%s ignores the context in scope: the request cannot be canceled; use %s",
							sel.Sel.Name, repl)
					}
				}
			}
		case *ast.UnaryExpr:
			if n.Op != token.ARROW || !u.ownCtx {
				return true
			}
			if escaped[n.Pos()] || isDoneChannel(pass.TypesInfo, n.X) || isTimeDerived(pass.TypesInfo, n.X) {
				return true
			}
			pass.Reportf(n.Pos(),
				"blocking receive from %s ignores this function's ctx: a canceled caller keeps waiting; add a ctx.Done() select case or annotate why the wait is bounded",
				types.ExprString(n.X))
		case *ast.SendStmt:
			if !u.ownCtx || escaped[n.Pos()] {
				return true
			}
			pass.Reportf(n.Pos(),
				"blocking send on %s ignores this function's ctx: a canceled caller keeps waiting; add a ctx.Done() select case, buffer the channel, or annotate why the send cannot block",
				types.ExprString(n.Chan))
		}
		return true
	})
}
