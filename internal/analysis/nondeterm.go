package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Nondeterm flags code that can make a simulated run differ between two
// executions with the same inputs: wall-clock time, randomness that does not
// flow from the seeded per-run source, and iteration over maps whose order
// leaks into results.  The whole reproduction strategy rests on the virtual
// machine being bit-deterministic (internal/sim doc comment; the
// crash-recovery experiment replays runs and compares state bit for bit), so
// these are correctness bugs here, not style.
//
// A map range is accepted without annotation when its body only appends the
// keys/values to a slice that is sorted later in the same function — the
// canonical sorted-keys idiom.  Anything else order-insensitive must carry
// //lint:allow nondeterm <reason>.
//
// Scope has two levels.  Simulation packages are held to the full rule set.
// The serving layer (internal/server) measures real latencies and enforces
// real deadlines, so the wall clock is legitimate there — but its response
// bodies and /metrics text are replayed byte-for-byte, so it is still held
// to the map-iteration-order rule.
var Nondeterm = &Analyzer{
	Name: "nondeterm",
	Doc: `flag wall-clock time, unseeded randomness, and map iteration in simulation code

Wall-clock calls (time.Now, time.Since, ...), the global math/rand source,
crypto/rand, and range-over-map iteration all vary between executions.
Simulation packages must derive randomness from the per-run seed and
iterate maps in sorted key order (or prove order-insensitivity with a
//lint:allow nondeterm <reason> annotation).  Serving-layer packages
(internal/server) are checked for map-iteration order only: their emitted
bytes must be deterministic, but wall-clock reads are part of their job.`,
	Run: runNondeterm,
}

// determinismLevel is how much of the nondeterm rule set a package is held
// to.
type determinismLevel int

const (
	// levelExempt: not simulation code; nothing is checked.
	levelExempt determinismLevel = iota
	// levelMapOrder: only map-iteration order is checked.  For serving-layer
	// code whose *emitted bytes* must be deterministic (cache bodies,
	// /metrics scrapes) but which legitimately reads the wall clock for
	// latency measurement and timeouts.
	levelMapOrder
	// levelFull: bit-determinism — wall clock, randomness and map order.
	levelFull
)

// nondetermScope maps import-path segments (under internal/) to the
// determinism level their packages are held to.  Everything that contributes
// to a simulated run or renders its results is levelFull; cmd/ and examples/
// wrappers may use wall-clock time for progress reporting and are exempt.
var nondetermScope = map[string]determinismLevel{
	"sim": levelFull, "comm": levelFull, "core": levelFull, "dynamics": levelFull,
	"physics": levelFull, "filter": levelFull, "loadbalance": levelFull, "grid": levelFull,
	"solver": levelFull, "fft": levelFull,
	// Result-rendering and support packages: their output is part of the
	// experiments' reproducibility contract.
	"trace": levelFull, "diag": levelFull, "experiments": levelFull, "stats": levelFull,
	"history": levelFull, "fault": levelFull, "machine": levelFull, "cachesim": levelFull,
	"singlenode": levelFull, "topology": levelFull,
	// The frame codec's byte layout is canonical — same value, same bytes,
	// on every host — and the disk store's eviction order is insertion
	// order, not timestamps, so the whole package is held to bit-determinism.
	"frame": levelFull,
	// The workload engine's entire contract is bit-determinism: identical
	// spec, identical schedule, identical trace bytes, identical virtual-time
	// simulation — on every host.
	"workload": levelFull,
	// The roofline model's contract is the same: kernel counts are pure
	// functions of the config, and the least-squares fit must produce
	// bit-identical coefficients for any sample insertion order.  The
	// wall-clock *observation* side of its calibration loop lives in
	// internal/bench, which is exempt.
	"roofline": levelFull,
	// The serving daemon measures real latencies and enforces real
	// deadlines, so the wall clock is legitimate there — but its response
	// bodies and /metrics text are replayed byte-for-byte, so map emission
	// order still must be deterministic.
	"server": levelMapOrder,
	// The gateway routes on real time (probes, backoff, cooldowns) but its
	// /metrics scrapes, event classifications, and backend rankings must not
	// depend on map iteration order; covers internal/gateway/chaostest too.
	"gateway": levelMapOrder,
}

// nondetermLevel returns the determinism level the package with the given
// import path is held to.  Fixture packages under a testdata tree resolve
// their level by the base directory name (so a fixture named "server"
// exercises the map-order-only level); unknown fixture names stay levelFull,
// keeping pre-existing fixtures fully checked.
func nondetermLevel(path string) determinismLevel {
	if strings.Contains(path, "/testdata/") {
		base := path
		if j := strings.LastIndexByte(base, '/'); j >= 0 {
			base = base[j+1:]
		}
		if lvl, ok := nondetermScope[base]; ok {
			return lvl
		}
		return levelFull
	}
	i := strings.LastIndex(path, "internal/")
	if i < 0 {
		return levelExempt
	}
	rest := path[i+len("internal/"):]
	if j := strings.IndexByte(rest, '/'); j >= 0 {
		rest = rest[:j]
	}
	return nondetermScope[rest]
}

// wallClockFuncs are the time package functions that observe the wall clock
// or the scheduler.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Tick": true, "After": true,
	"AfterFunc": true, "NewTimer": true, "NewTicker": true, "Sleep": true,
}

// seededRandConstructors are the math/rand functions that are allowed: they
// build an explicitly seeded source, which is how per-run randomness must
// flow into the simulation.
var seededRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors.
	"NewPCG": true, "NewChaCha8": true,
}

func runNondeterm(pass *Pass) error {
	lvl := nondetermLevel(pass.Pkg.Path())
	if lvl == levelExempt {
		return nil
	}
	for _, file := range pass.Files {
		if lvl == levelFull {
			checkWallClockAndRand(pass, file)
		}
		funcBodies(file, func(body *ast.BlockStmt) {
			checkMapRanges(pass, body)
		})
	}
	return nil
}

// checkWallClockAndRand flags wall-clock reads and unseeded randomness in
// one file (the levelFull-only rules).
func checkWallClockAndRand(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgPath, ok := packageQualifier(pass.TypesInfo, sel)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		switch pkgPath {
		case "time":
			if wallClockFuncs[name] {
				pass.Reportf(sel.Pos(),
					"time.%s observes the wall clock: simulated runs must be bit-deterministic; use virtual time (sim.Proc.Clock)", name)
			}
		case "math/rand", "math/rand/v2":
			if obj := pass.TypesInfo.Uses[sel.Sel]; obj != nil {
				if _, isFunc := obj.(*types.Func); isFunc && !seededRandConstructors[name] {
					pass.Reportf(sel.Pos(),
						"%s.%s uses the global random source: randomness must flow from the seeded per-run source (rand.New(rand.NewSource(seed)))", pkgPath, name)
				}
			}
		case "crypto/rand":
			pass.Reportf(sel.Pos(),
				"crypto/rand is inherently nondeterministic: randomness must flow from the seeded per-run source")
		}
		return true
	})
}

// packageQualifier resolves sel's X to an imported package, returning its
// import path.
func packageQualifier(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}

// checkMapRanges flags order-sensitive map iteration in one function body.
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	inspectSkippingFuncLits(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		// `for range m` (no variables) only counts iterations; order
		// cannot be observed.
		if !bindsVariable(rng.Key) && !bindsVariable(rng.Value) {
			return true
		}
		if isSortedCollectLoop(pass, body, rng) {
			return true
		}
		pass.Reportf(rng.Pos(),
			"range over map %s: iteration order is nondeterministic; iterate sorted keys, or annotate //lint:allow nondeterm <reason> if provably order-insensitive",
			types.ExprString(rng.X))
		return true
	})
}

// bindsVariable reports whether a range clause expression binds an
// observable variable (anything but absent or the blank identifier).
func bindsVariable(e ast.Expr) bool {
	if e == nil {
		return false
	}
	if id, ok := e.(*ast.Ident); ok && id.Name == "_" {
		return false
	}
	return true
}

// isSortedCollectLoop recognizes the sorted-keys idiom: the loop body is a
// single append into some slice s, and later in the same function body s is
// passed to a sort (sort.Strings/Ints/Float64s/Slice/SliceStable or
// slices.Sort*).  The iteration order then provably cannot reach results.
func isSortedCollectLoop(pass *Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt) bool {
	if len(rng.Body.List) != 1 {
		return false
	}
	assign, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	target := types.ExprString(assign.Lhs[0])
	if types.ExprString(call.Args[0]) != target {
		return false
	}
	sorted := false
	inspectSkippingFuncLits(funcBody, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgPath, ok := packageQualifier(pass.TypesInfo, sel)
		if !ok {
			return true
		}
		isSortCall := (pkgPath == "sort" && (sel.Sel.Name == "Strings" || sel.Sel.Name == "Ints" ||
			sel.Sel.Name == "Float64s" || sel.Sel.Name == "Slice" || sel.Sel.Name == "SliceStable")) ||
			(pkgPath == "slices" && strings.HasPrefix(sel.Sel.Name, "Sort"))
		if isSortCall && types.ExprString(call.Args[0]) == target {
			sorted = true
			return false
		}
		return true
	})
	return sorted
}
