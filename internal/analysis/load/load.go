// Package load type-checks Go packages for agcmlint without depending on
// golang.org/x/tools/go/packages: it shells out to `go list -deps -export`
// for the build graph and compiler export data, parses the target packages'
// sources, and type-checks them with the standard library's gc importer.
// This is the same division of labour `go vet` uses, minus the per-package
// .cfg plumbing (which cmd/agcmlint also speaks, for -vettool mode).
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"agcm/internal/analysis"
)

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	DepOnly    bool
	Module     *struct {
		GoVersion string
	}
	Error *struct {
		Err string
	}
}

// Packages loads and type-checks the packages matched by patterns, run from
// dir (empty means the current directory).  Dependencies — standard library
// and module-internal alike — are imported from compiler export data, so
// only the matched packages themselves are parsed from source.
func Packages(dir string, patterns ...string) ([]*analysis.Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string)
	var targets []*listedPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var out []*analysis.Package
	for _, p := range targets {
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", p.ImportPath)
		}
		pkg, err := check(fset, imp, p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// check parses and type-checks one listed package.
func check(fset *token.FileSet, imp types.Importer, p *listedPackage) (*analysis.Package, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	goVersion := ""
	if p.Module != nil && p.Module.GoVersion != "" {
		goVersion = "go" + p.Module.GoVersion
	}
	conf := &types.Config{Importer: imp, GoVersion: goVersion}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", p.ImportPath, err)
	}
	return &analysis.Package{Fset: fset, Files: files, Pkg: tpkg, TypesInfo: info}, nil
}

// goList runs `go list -deps -export -json` over the patterns and decodes
// the JSON stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("go list %s: %s", strings.Join(patterns, " "), msg)
	}
	var out []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		out = append(out, p)
	}
	return out, nil
}
