package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"agcm/internal/analysis"
	"agcm/internal/analysis/analysistest"
)

func TestNondetermFixtures(t *testing.T) {
	analysistest.Run(t, analysis.Nondeterm, "./testdata/src/nondeterm")
}

// TestServerScopeFixtures exercises the map-order-only level: the fixture
// directory is named "server", so wall-clock reads pass while unsorted map
// emission is still flagged.
func TestServerScopeFixtures(t *testing.T) {
	analysistest.Run(t, analysis.Nondeterm, "./testdata/src/server")
}

// TestGatewayScopeFixtures pins the gateway scope to the same map-order-only
// level: backend scoring that leaks map iteration order is flagged, the wall
// clock (probes, backoff) is not.
func TestGatewayScopeFixtures(t *testing.T) {
	analysistest.Run(t, analysis.Nondeterm, "./testdata/src/gateway")
}

func TestCommtagFixtures(t *testing.T) {
	analysistest.Run(t, analysis.Commtag, "./testdata/src/commtag")
}

func TestCollectiveFixtures(t *testing.T) {
	analysistest.Run(t, analysis.Collective, "./testdata/src/collective")
}

func TestSendaliasFixtures(t *testing.T) {
	analysistest.Run(t, analysis.Sendalias, "./testdata/src/sendalias")
}

func TestLockorderFixtures(t *testing.T) {
	analysistest.Run(t, analysis.Lockorder, "./testdata/src/lockorder")
}

func TestGoleakFixtures(t *testing.T) {
	analysistest.Run(t, analysis.Goleak, "./testdata/src/goleak")
}

func TestCtxflowFixtures(t *testing.T) {
	analysistest.Run(t, analysis.Ctxflow, "./testdata/src/ctxflow")
}

func TestWgmisuseFixtures(t *testing.T) {
	analysistest.Run(t, analysis.Wgmisuse, "./testdata/src/wgmisuse")
}

// checkSource type-checks an import-free source snippet and runs the given
// analyzers over it via the framework (exercising the //lint:allow plumbing
// without the go list round trip).
func checkSource(t *testing.T, src string, analyzers []*analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "internal/sim/fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := &types.Config{}
	pkg, err := conf.Check("agcm/internal/sim", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(
		[]*analysis.Package{{Fset: fset, Files: []*ast.File{file}, Pkg: pkg, TypesInfo: info}},
		analyzers)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

// TestMalformedAllowDirective checks that //lint:allow without a reason is
// itself reported and suppresses nothing.
func TestMalformedAllowDirective(t *testing.T) {
	src := `package sim

func f(m map[int]int) int {
	s := 0
	//lint:allow nondeterm
	for _, v := range m {
		s += v
	}
	return s
}
`
	diags := checkSource(t, src, []*analysis.Analyzer{analysis.Nondeterm})
	var gotMalformed, gotRange bool
	for _, d := range diags {
		switch d.Analyzer {
		case "lintdirective":
			gotMalformed = true
			if !strings.Contains(d.Message, "non-empty reason") {
				t.Errorf("malformed-directive message = %q", d.Message)
			}
		case "nondeterm":
			gotRange = true
		}
	}
	if !gotMalformed {
		t.Error("missing lintdirective diagnostic for reason-less //lint:allow")
	}
	if !gotRange {
		t.Error("reason-less //lint:allow must not suppress the map-range diagnostic")
	}
}

// TestAllowIsAnalyzerSpecific checks that an allow for one analyzer does not
// suppress another's diagnostic on the same line.
func TestAllowIsAnalyzerSpecific(t *testing.T) {
	src := `package sim

func f(m map[int]int) int {
	s := 0
	for _, v := range m { //lint:allow commtag wrong analyzer name
		s += v
	}
	return s
}
`
	diags := checkSource(t, src, []*analysis.Analyzer{analysis.Nondeterm})
	found := false
	for _, d := range diags {
		if d.Analyzer == "nondeterm" {
			found = true
		}
	}
	if !found {
		t.Error("//lint:allow commtag suppressed a nondeterm diagnostic")
	}
}

// TestScope checks that packages outside the determinism scope are exempt
// from nondeterm but that fixtures under testdata are always in scope.
func TestScope(t *testing.T) {
	src := `package main

func f(m map[int]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cmd/agcm/main.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := (&types.Config{}).Check("agcm/cmd/agcm", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(
		[]*analysis.Package{{Fset: fset, Files: []*ast.File{file}, Pkg: pkg, TypesInfo: info}},
		[]*analysis.Analyzer{analysis.Nondeterm})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("cmd/ packages must be exempt from nondeterm, got %d diagnostics", len(diags))
	}
}
