// Package bench is the host-performance regression harness behind
// `agcmbench -bench-json`: it runs the headline whole-model benchmarks
// under testing.Benchmark (which works outside `go test`) and reports host
// nanoseconds, allocations and bytes per operation alongside the
// virtual-machine metrics each experiment produces.
//
// Host nanoseconds are machine-dependent and only comparable on the same
// build host; allocation counts are deterministic per tree and are the
// primary regression signal.  The package pins the pre-optimization
// Baseline so that BENCH_*.json artifacts carry their own point of
// comparison.
package bench

import (
	"strconv"
	"strings"
	"testing"

	"agcm/internal/core"
	"agcm/internal/experiments"
	"agcm/internal/grid"
	"agcm/internal/machine"
	"agcm/internal/physics"
)

// Opt is the per-iteration experiment configuration shared by the go test
// benchmarks and the -bench-json harness.
var Opt = experiments.Options{MeasuredSteps: 1}

// Result is one benchmark's host-side measurements plus the virtual-machine
// metrics it reports via b.ReportMetric.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations,omitempty"`
	NsPerOp     int64              `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the BENCH_*.json document: the recorded pre-optimization
// baseline next to the current tree's numbers.
type Report struct {
	Note     string   `json:"note"`
	Baseline []Result `json:"baseline"`
	Current  []Result `json:"current"`
}

// Baseline is the suite's result on this tree immediately before the
// allocation-free hot-path work, recorded on the reference build host.
// Virtual-machine metrics are bit-reproducible and must not drift; host
// timings and allocation counts are what the optimization moves.
var Baseline = []Result{
	{
		Name: "Fig1Breakdown", NsPerOp: 472718325,
		AllocsPerOp: 1443294, BytesPerOp: 187624880,
		Metrics: map[string]float64{
			"filter-pct-dyn-16n":  59.20,
			"filter-pct-dyn-240n": 75.20,
		},
	},
	{
		Name: "WholeStepLBFFT", NsPerOp: 140657144,
		AllocsPerOp: 290968, BytesPerOp: 112378637,
		Metrics: map[string]float64{
			"virtual-s/day": 87.93,
		},
	},
}

// cellFloat parses a numeric table cell (strips % and x suffixes).
func cellFloat(b *testing.B, s string) float64 {
	b.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(s, "%"), "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("unparsable cell %q: %v", s, err)
	}
	return v
}

// Fig1Breakdown regenerates Figure 1's component shares once per iteration:
// the convolution-ring filter on the simulated Paragon at 4x4 and 8x30 —
// the paper's motivating breakdown and the repo's heaviest single
// experiment.
func Fig1Breakdown(b *testing.B) {
	var out *experiments.Output
	for i := 0; i < b.N; i++ {
		var err error
		out, err = experiments.Figure1(Opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	rows := out.Tables[0].Rows
	b.ReportMetric(cellFloat(b, rows[0][4]), "filter-pct-dyn-16n")
	b.ReportMetric(cellFloat(b, rows[1][4]), "filter-pct-dyn-240n")
}

// WholeStepLBFFT measures one full simulated AGCM step (dynamics + filter +
// physics) on an 8x8 T3D with the adopted optimizations — the end-to-end
// cost of the simulation harness itself.
func WholeStepLBFFT(b *testing.B) {
	cfg := core.Config{
		Spec:    grid.TwoByTwoPointFive(9),
		Machine: machine.CrayT3D(),
		MeshPy:  8, MeshPx: 8,
		Filter:        core.FilterFFTBalanced,
		PhysicsScheme: physics.Pairwise,
		PhysicsRounds: 2,
	}
	var rep *core.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = core.Run(cfg, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.Total, "virtual-s/day")
}

// Suite lists the regression benchmarks in the order they appear in the
// JSON artifact.
var Suite = []struct {
	Name string
	F    func(*testing.B)
}{
	{"Fig1Breakdown", Fig1Breakdown},
	{"WholeStepLBFFT", WholeStepLBFFT},
}

// Run executes the suite under testing.Benchmark and collects the results.
// Allocation statistics are captured unconditionally by the testing
// runtime, so no -benchmem flag is needed.
func Run() []Result {
	results := make([]Result, 0, len(Suite))
	for _, s := range Suite {
		r := testing.Benchmark(s.F)
		results = append(results, Result{
			Name:        s.Name,
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Metrics:     r.Extra,
		})
	}
	return results
}

// NewReport runs the suite and pairs it with the recorded baseline.
func NewReport() Report {
	return Report{
		Note: "host ns/op are comparable only on the same build host; " +
			"allocs/op and the virtual-machine metrics are deterministic per tree",
		Baseline: Baseline,
		Current:  Run(),
	}
}
