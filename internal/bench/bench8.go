package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"agcm/internal/grid"
	"agcm/internal/history"
	"agcm/internal/server"
)

// Bench8Report is the BENCH_8.json document: the zero-copy frame format
// and disk-tier numbers.  Host nanoseconds are machine-dependent; the
// allocation counts and the speedup ratios are the regression signals the
// CI gate asserts on (cache-hit allocs <= 2, frame report decode at least
// 5x faster than JSON).
type Bench8Report struct {
	Note string `json:"note"`

	// CacheHit is the served-from-memory replay path: one
	// GET /v1/cache/{key} against a warm daemon, mux excluded.
	CacheHit Result `json:"cache_hit"`

	// ReportDecode compares extracting a run report from the cached
	// response frame's binary section against parsing the JSON body.
	ReportDecode struct {
		FrameNsPerOp     int64   `json:"frame_ns_per_op"`
		FrameAllocsPerOp int64   `json:"frame_allocs_per_op"`
		JSONNsPerOp      int64   `json:"json_ns_per_op"`
		Speedup          float64 `json:"speedup"`
	} `json:"report_decode"`

	// HistoryCodec compares frame and JSON encodings of a checkpoint-sized
	// history file, both directions.
	HistoryCodec struct {
		FrameEncodeNsPerOp int64   `json:"frame_encode_ns_per_op"`
		JSONEncodeNsPerOp  int64   `json:"json_encode_ns_per_op"`
		FrameDecodeNsPerOp int64   `json:"frame_decode_ns_per_op"`
		JSONDecodeNsPerOp  int64   `json:"json_decode_ns_per_op"`
		EncodeSpeedup      float64 `json:"encode_speedup"`
		DecodeSpeedup      float64 `json:"decode_speedup"`
	} `json:"history_codec"`

	// Restart is the disk tier's headline: first-response latency of a
	// freshly started daemon that must run the simulation (cold) versus
	// one restarted over a warm cache directory (disk hit, no run).
	Restart struct {
		ColdNs  int64   `json:"cold_first_response_ns"`
		WarmNs  int64   `json:"disk_warm_first_response_ns"`
		Speedup float64 `json:"speedup"`
	} `json:"restart"`
}

// bench8Body is the request every bench8 measurement replays: small enough
// that a cold run costs milliseconds, real enough to produce a full report.
const bench8Body = `{"config":{"nlon":36,"nlat":24,"nlayers":3,"machine":"paragon",` +
	`"mesh_py":1,"mesh_px":2,"filter":"fft"},"steps":1}`

// nullWriter is a ResponseWriter that discards the body — the benchmark
// measures the serve path, not an in-memory recorder's buffer growth.
type nullWriter struct{ h http.Header }

func (w *nullWriter) Header() http.Header         { return w.h }
func (w *nullWriter) WriteHeader(int)             {}
func (w *nullWriter) Write(p []byte) (int, error) { return len(p), nil }

// postRun issues one /v1/run and returns status, header, body.
func postRun(url, body string, acceptFrame bool) (int, http.Header, []byte, error) {
	req, err := http.NewRequest("POST", url+"/v1/run", strings.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if acceptFrame {
		req.Header.Set("Accept", server.FrameContentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, raw, err
}

// bench8HistoryFile builds a checkpoint-sized history file with
// deterministic contents.
func bench8HistoryFile() (*history.File, error) {
	spec := grid.Spec{Nlon: 72, Nlat: 46, Nlayers: 3}
	f := &history.File{Spec: spec, Step: 100}
	for vi, name := range []string{"u", "v", "h", "q"} {
		data := make([]float64, spec.Points())
		for i := range data {
			data[i] = math.Sin(float64(i+vi)) * 1e3
		}
		if err := f.AddVariable(name, data); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// firstResponseNs boots a daemon with the given cache directory (empty =
// no disk tier), times the first /v1/run response, and tears it down.  The
// minimum over rounds is reported: startup noise shrinks toward the true
// floor, never below it.
func firstResponseNs(cacheDir string, rounds int) (int64, error) {
	best := int64(math.MaxInt64)
	for r := 0; r < rounds; r++ {
		s, err := server.New(server.Options{Workers: 1, CacheDir: cacheDir})
		if err != nil {
			return 0, err
		}
		ts := httptest.NewServer(s.Handler())
		start := time.Now()
		status, _, body, err := postRun(ts.URL, bench8Body, false)
		elapsed := time.Since(start).Nanoseconds()
		ts.Close()
		//lint:allow ctxflow benchmark teardown: one queued job at most, bounded by the server's own job timeout
		if derr := s.Drain(context.Background()); derr != nil && err == nil {
			err = derr
		}
		if err != nil {
			return 0, err
		}
		if status != http.StatusOK {
			return 0, fmt.Errorf("bench8: restart probe status %d: %s", status, body)
		}
		if elapsed < best {
			best = elapsed
		}
	}
	return best, nil
}

// NewBench8Report runs the frame-format and disk-tier measurements.
func NewBench8Report() (Bench8Report, error) {
	var rep Bench8Report
	rep.Note = "host ns/op are comparable only on the same build host; " +
		"allocs/op and the speedup ratios are the regression signals"

	// Warm daemon shared by the cache-hit and report-decode measurements.
	s, err := server.New(server.Options{Workers: 1})
	if err != nil {
		return rep, err
	}
	//lint:allow ctxflow benchmark teardown: the seed run has already completed when this drain fires
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, _, frameBytes, err := postRun(ts.URL, bench8Body, true)
	if err != nil {
		return rep, err
	}
	if status != http.StatusOK {
		return rep, fmt.Errorf("bench8: seed run status %d: %s", status, frameBytes)
	}
	jsonBody, err := server.JSONBody(frameBytes)
	if err != nil {
		return rep, err
	}
	var wire struct {
		Key string `json:"key"`
	}
	if err := json.Unmarshal(jsonBody, &wire); err != nil {
		return rep, err
	}

	// Cache hit: the replay path the two-tier cache exists to make cheap.
	preq := httptest.NewRequest("GET", "/v1/cache/"+wire.Key, nil)
	nw := &nullWriter{h: make(http.Header)}
	hit := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.ServeCachePeek(nw, preq)
		}
	})
	rep.CacheHit = Result{
		Name:        "CacheHitPeek",
		Iterations:  hit.N,
		NsPerOp:     hit.NsPerOp(),
		AllocsPerOp: hit.AllocsPerOp(),
		BytesPerOp:  hit.AllocedBytesPerOp(),
	}

	// Report decode: binary section versus JSON body, same information.
	frameDec := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var pl, fl []float64
		for i := 0; i < b.N; i++ {
			pl, fl = pl[:0], fl[:0]
			var err error
			_, pl, fl, err = server.DecodeReportFrame(frameBytes, pl, fl)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	jsonDec := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var w struct {
				Report server.ReportWire `json:"report"`
			}
			if err := json.Unmarshal(jsonBody, &w); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.ReportDecode.FrameNsPerOp = frameDec.NsPerOp()
	rep.ReportDecode.FrameAllocsPerOp = frameDec.AllocsPerOp()
	rep.ReportDecode.JSONNsPerOp = jsonDec.NsPerOp()
	rep.ReportDecode.Speedup = ratio(jsonDec.NsPerOp(), frameDec.NsPerOp())

	// History codec: a checkpoint-sized file through both encodings.
	hf, err := bench8HistoryFile()
	if err != nil {
		return rep, err
	}
	frameRaw, err := history.EncodeFrame(hf)
	if err != nil {
		return rep, err
	}
	jsonRaw, err := json.Marshal(hf)
	if err != nil {
		return rep, err
	}
	frameEnc := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := history.EncodeFrame(hf); err != nil {
				b.Fatal(err)
			}
		}
	})
	jsonEnc := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := json.Marshal(hf); err != nil {
				b.Fatal(err)
			}
		}
	})
	frameDecH := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := history.Read(strings.NewReader(string(frameRaw))); err != nil {
				b.Fatal(err)
			}
		}
	})
	jsonDecH := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var f history.File
			if err := json.Unmarshal(jsonRaw, &f); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.HistoryCodec.FrameEncodeNsPerOp = frameEnc.NsPerOp()
	rep.HistoryCodec.JSONEncodeNsPerOp = jsonEnc.NsPerOp()
	rep.HistoryCodec.FrameDecodeNsPerOp = frameDecH.NsPerOp()
	rep.HistoryCodec.JSONDecodeNsPerOp = jsonDecH.NsPerOp()
	rep.HistoryCodec.EncodeSpeedup = ratio(jsonEnc.NsPerOp(), frameEnc.NsPerOp())
	rep.HistoryCodec.DecodeSpeedup = ratio(jsonDecH.NsPerOp(), frameDecH.NsPerOp())

	// Restart: cold (no disk tier, the run executes) versus disk-warm (a
	// predecessor persisted the frame; the restarted daemon replays it).
	cold, err := firstResponseNs("", 3)
	if err != nil {
		return rep, err
	}
	dir, err := os.MkdirTemp("", "bench8-cache-*")
	if err != nil {
		return rep, err
	}
	defer os.RemoveAll(dir)
	if _, err := firstResponseNs(dir, 1); err != nil { // seed the directory
		return rep, err
	}
	warm, err := firstResponseNs(dir, 3)
	if err != nil {
		return rep, err
	}
	rep.Restart.ColdNs = cold
	rep.Restart.WarmNs = warm
	rep.Restart.Speedup = ratio(cold, warm)
	return rep, nil
}

// ratio returns a/b rounded to two decimals (0 when b is 0).
func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return math.Round(float64(a)/float64(b)*100) / 100
}
