package bench

import (
	"bytes"
	"fmt"
	"reflect"

	"agcm/internal/workload"
)

// Bench9Report is the BENCH_9.json document: the scheduler comparison under
// the reference scheduling workload.  Unlike the host benchmarks, every
// number here is a virtual-time simulation over a seeded schedule — the
// document is bit-deterministic and committable, and CI regenerates it and
// diffs rather than gating on thresholds alone.
type Bench9Report struct {
	Note string `json:"note"`

	// Spec identifies the reference workload (workloads/scheduling.json).
	Spec struct {
		Name           string `json:"name"`
		SpecSHA256     string `json:"spec_sha256"`
		ScheduleSHA256 string `json:"schedule_sha256"`
		Requests       int    `json:"requests"`
	} `json:"spec"`

	// ReplayIdentical asserts the engine's core promise: generating the
	// schedule twice and round-tripping it through the trace codec produce
	// byte-identical traces and structurally equal request sequences.
	ReplayIdentical bool `json:"replay_identical"`

	// Policies holds one simulation per scheduling policy over the
	// reference workload, in fcfs/priority/sjf order.
	Policies []*workload.SimResult `json:"policies"`

	// LabelInverted re-runs priority and sjf on the same workload with the
	// class templates swapped, so the expensive grid carries the
	// interactive label.  Priority still favors the label; sjf follows
	// predicted cost — the two must now disagree, which is what
	// distinguishes a cost oracle from a class rank.
	LabelInverted []*workload.SimResult `json:"label_inverted"`
}

// NewBench9Report generates the reference schedule, checks replay identity,
// and simulates every scheduling policy over it.
func NewBench9Report() (*Bench9Report, error) {
	spec := workload.SchedulingSpec()
	sched, err := workload.Generate(spec)
	if err != nil {
		return nil, err
	}

	rep := &Bench9Report{
		Note: "deterministic virtual-time scheduler comparison over the seeded " +
			"scheduling workload; all latencies are virtual microseconds from the " +
			"machine cost model, identical on every host",
	}
	rep.Spec.Name = sched.Spec.Name
	if rep.Spec.SpecSHA256, err = sched.Spec.Hash(); err != nil {
		return nil, err
	}
	if rep.Spec.ScheduleSHA256, err = sched.Hash(); err != nil {
		return nil, err
	}
	rep.Spec.Requests = len(sched.Requests)

	rep.ReplayIdentical, err = replayIdentical(spec, sched)
	if err != nil {
		return nil, err
	}

	for _, policy := range workload.Policies {
		res, err := workload.Simulate(sched, workload.SimOptions{Policy: policy})
		if err != nil {
			return nil, err
		}
		rep.Policies = append(rep.Policies, res)
	}

	invSched, err := workload.Generate(workload.SchedulingSpecInverted())
	if err != nil {
		return nil, err
	}
	for _, policy := range []string{"priority", "sjf"} {
		res, err := workload.Simulate(invSched, workload.SimOptions{Policy: policy})
		if err != nil {
			return nil, err
		}
		rep.LabelInverted = append(rep.LabelInverted, res)
	}
	return rep, nil
}

// replayIdentical regenerates the schedule and round-trips it through the
// trace codec, reporting whether every copy is identical.
func replayIdentical(spec workload.Spec, sched *workload.Schedule) (bool, error) {
	again, err := workload.Generate(spec)
	if err != nil {
		return false, err
	}
	var a, b bytes.Buffer
	if err := workload.WriteTrace(&a, sched); err != nil {
		return false, err
	}
	if err := workload.WriteTrace(&b, again); err != nil {
		return false, err
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		return false, nil
	}
	decoded, err := workload.ReadTrace(bytes.NewReader(a.Bytes()))
	if err != nil {
		return false, fmt.Errorf("bench9: trace round-trip: %w", err)
	}
	return reflect.DeepEqual(decoded.Requests, sched.Requests), nil
}
