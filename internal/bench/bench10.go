package bench

// Bench10: the roofline observe → predict → calibrate loop behind
// `agcmbench -calibrate` and the BENCH_10.json artifact.
//
// Observe: micro-benchmarks measure the host's flops and memory-bandwidth
// ceilings, and phase benchmarks time real core.Run executions across a
// spread of grids, layer counts, filter variants and meshes chosen to
// decorrelate the kernel classes (physics is quadratic in the layer count,
// the convolution filter quadratic in the zonal dimension, the network terms
// appear only on multi-rank meshes).
//
// Calibrate: the efficiencies are fitted by the deterministic least squares
// in internal/roofline, yielding a host Calib that is canonical JSON —
// hashable and committable.
//
// Predict: the fitted calibration re-prices every observation (and, for the
// three paper machines, a mesh grid of simulated runs) and the report
// carries the resulting MAPE and Spearman rank correlation; CI gates on
// them, so model drift — an operation-count change the calibration cannot
// absorb — fails the build.
//
// Host wall-clock sections are machine-dependent and only comparable on the
// same build host; the paper-machine sections are virtual-time and
// deterministic per tree.

import (
	"fmt"
	"testing"
	"time"

	"agcm/internal/core"
	"agcm/internal/grid"
	"agcm/internal/machine"
	"agcm/internal/roofline"
)

// Bench10Micro is the host's measured roofline ceilings.
type Bench10Micro struct {
	// FlopsPerSec is the sustained scalar multiply-add rate of one core.
	FlopsPerSec float64 `json:"flops_per_sec"`
	// BytesPerSec is the large-copy memory bandwidth of one core.
	BytesPerSec float64 `json:"bytes_per_sec"`
}

// Bench10Sample is one predicted-vs-measured observation.
type Bench10Sample struct {
	Label      string  `json:"label"`
	PredictedS float64 `json:"predicted_s"`
	MeasuredS  float64 `json:"measured_s"`
	// APE is |predicted-measured|/measured.
	APE float64 `json:"ape"`
}

// Bench10Host is the host side of the loop: measured ceilings, the fitted
// calibration and its in-loop prediction error.
type Bench10Host struct {
	Calib     roofline.Calib  `json:"calib"`
	CalibHash string          `json:"calib_hash"`
	Micro     Bench10Micro    `json:"micro"`
	Samples   []Bench10Sample `json:"samples"`
	MAPE      float64         `json:"mape"`
	Spearman  float64         `json:"spearman"`
}

// Bench10Machine is one paper machine's calibration fit against its
// simulated (virtual-time, deterministic) mesh grid.
type Bench10Machine struct {
	Name string `json:"name"`
	// Calib is the machine-model-derived calibration with fitted compute
	// efficiencies (network efficiency stays at the derived unit value).
	Calib roofline.Calib `json:"calib"`
	// Samples compare predicted against simulated seconds per simulated
	// day across the processor-mesh grid.
	Samples []Bench10Sample `json:"samples"`
	MAPE    float64         `json:"mape"`
}

// Bench10Report is the BENCH_10.json document.
type Bench10Report struct {
	Note string      `json:"note"`
	Host Bench10Host `json:"host"`
	// Machines holds the three paper machines in paper order.
	Machines []Bench10Machine `json:"machines"`
	// GridMAPE and GridSpearman pool every machine-grid point: can the
	// model rank the whole machine x mesh plane the way the simulation
	// does?
	GridMAPE     float64 `json:"grid_mape"`
	GridSpearman float64 `json:"grid_spearman"`
}

// hostPhase is one host phase-benchmark configuration.
type hostPhase struct {
	label string
	cfg   core.Config
	steps int
}

// hostPhases spans layer counts (3/5/9/15 — the quadratic longwave term
// separates physics from dynamics), both filter families, and single- and
// multi-rank meshes (the network column).  All on the host machine model;
// wall time does not depend on the model, but host-model configs are what
// the roofline oracle will be asked to price.
func hostPhases() []hostPhase {
	host := machine.Host()
	mk := func(label string, spec grid.Spec, py, px int, v core.FilterVariant) hostPhase {
		return hostPhase{
			label: label,
			cfg: core.Config{
				Spec: spec, Machine: host, MeshPy: py, MeshPx: px, Filter: v,
			},
			steps: 2,
		}
	}
	return []hostPhase{
		mk("36x24x3/1x1/fft", grid.Spec{Nlon: 36, Nlat: 24, Nlayers: 3}, 1, 1, core.FilterFFT),
		mk("36x24x3/1x1/conv", grid.Spec{Nlon: 36, Nlat: 24, Nlayers: 3}, 1, 1, core.FilterConvolutionRing),
		mk("36x24x3/1x2/fft", grid.Spec{Nlon: 36, Nlat: 24, Nlayers: 3}, 1, 2, core.FilterFFT),
		mk("72x46x5/1x1/fft", grid.Spec{Nlon: 72, Nlat: 46, Nlayers: 5}, 1, 1, core.FilterFFT),
		mk("72x46x5/1x1/conv", grid.Spec{Nlon: 72, Nlat: 46, Nlayers: 5}, 1, 1, core.FilterConvolutionRing),
		mk("72x46x5/2x2/fft", grid.Spec{Nlon: 72, Nlat: 46, Nlayers: 5}, 2, 2, core.FilterFFT),
		mk("144x90x9/1x1/fft", grid.TwoByTwoPointFive(9), 1, 1, core.FilterFFT),
		mk("144x90x9/1x1/conv", grid.TwoByTwoPointFive(9), 1, 1, core.FilterConvolutionRing),
		mk("144x90x9/2x2/fft-lb", grid.TwoByTwoPointFive(9), 2, 2, core.FilterFFTBalanced),
		mk("144x90x9/4x4/fft-lb", grid.TwoByTwoPointFive(9), 4, 4, core.FilterFFTBalanced),
		mk("144x90x15/1x1/fft", grid.TwoByTwoPointFive(15), 1, 1, core.FilterFFT),
	}
}

var benchSink float64

// measureFlopsCeiling times a cache-resident fused multiply-add loop with
// four independent chains — about as fast as scalar Go code goes — and
// returns flop/s.
func measureFlopsCeiling() float64 {
	const n = 4096
	a := make([]float64, n)
	for i := range a {
		a[i] = 1 + 1e-9*float64(i)
	}
	r := testing.Benchmark(func(b *testing.B) {
		s0, s1, s2, s3 := 1.0, 1.0, 1.0, 1.0
		for i := 0; i < b.N; i++ {
			for j := 0; j < n; j += 4 {
				s0 = s0*0.9999999 + a[j]
				s1 = s1*0.9999999 + a[j+1]
				s2 = s2*0.9999999 + a[j+2]
				s3 = s3*0.9999999 + a[j+3]
			}
		}
		benchSink = s0 + s1 + s2 + s3
	})
	flopsPerOp := 2.0 * n // one multiply + one add per element
	return flopsPerOp / float64(r.NsPerOp()) * 1e9
}

// measureBytesCeiling times large copies (far beyond cache) and returns
// byte/s, counting each element once read and once written.
func measureBytesCeiling() float64 {
	const n = 1 << 22 // 32 MiB of float64
	src := make([]float64, n)
	dst := make([]float64, n)
	for i := range src {
		src[i] = float64(i)
	}
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			copy(dst, src)
		}
	})
	bytesPerOp := 2.0 * n * 8
	return bytesPerOp / float64(r.NsPerOp()) * 1e9
}

// measureWallSeconds runs the configuration reps times and returns the
// fastest wall time — the standard noise floor for host timing.
func measureWallSeconds(cfg core.Config, steps, reps int) (float64, error) {
	best := 0.0
	for i := 0; i < reps; i++ {
		start := time.Now()
		if _, err := core.Run(cfg, steps); err != nil {
			return 0, err
		}
		sec := time.Since(start).Seconds()
		if i == 0 || sec < best {
			best = sec
		}
	}
	return best, nil
}

// CalibrateHost runs the host side of the loop: micro ceilings, phase
// benchmarks, deterministic fit, in-loop prediction error.
func CalibrateHost() (*Bench10Host, error) {
	micro := Bench10Micro{
		FlopsPerSec: measureFlopsCeiling(),
		BytesPerSec: measureBytesCeiling(),
	}
	base := roofline.DefaultHost()
	calib := base
	calib.FlopsPerSec = micro.FlopsPerSec
	calib.BytesPerSec = micro.BytesPerSec
	calib.NetBytesPerSec = micro.BytesPerSec / 2 // messages are memcpy through channels

	phases := hostPhases()
	samples := make([]roofline.Sample, 0, len(phases))
	for _, ph := range phases {
		raw, err := roofline.RawSeconds(calib, ph.cfg, ph.steps)
		if err != nil {
			return nil, fmt.Errorf("bench10: counting %s: %w", ph.label, err)
		}
		wall, err := measureWallSeconds(ph.cfg, ph.steps, 3)
		if err != nil {
			return nil, fmt.Errorf("bench10: measuring %s: %w", ph.label, err)
		}
		samples = append(samples, roofline.Sample{
			Machine: "host", Label: ph.label, Raw: raw, Measured: wall,
		})
	}

	// Unit Base: a class the data cannot determine is charged the raw
	// roofline bound, not a stale efficiency from a previous fit — the
	// baked-in DefaultHost numbers must never steer their own refit.
	fit, err := roofline.Fit(samples, roofline.FitOptions{})
	if err != nil {
		return nil, fmt.Errorf("bench10: fitting host calib: %w", err)
	}
	calib.Eff = fit.Eff
	hash, err := calib.Hash()
	if err != nil {
		return nil, err
	}

	host := &Bench10Host{Calib: calib, CalibHash: hash, Micro: micro}
	pred := make([]float64, len(samples))
	meas := make([]float64, len(samples))
	for i, s := range samples {
		pred[i] = roofline.PredictSample(calib.Eff, s.Raw)
		meas[i] = s.Measured
		host.Samples = append(host.Samples, Bench10Sample{
			Label:      s.Label,
			PredictedS: pred[i],
			MeasuredS:  s.Measured,
			APE:        ape(pred[i], s.Measured),
		})
	}
	if host.MAPE, err = roofline.MAPE(pred, meas); err != nil {
		return nil, err
	}
	if host.Spearman, err = roofline.Spearman(pred, meas); err != nil {
		return nil, err
	}
	return host, nil
}

// calibrateMachine fits one paper machine's compute efficiencies against its
// simulated calibration grid (roofline.MachineCalibPoints: the mesh sweep
// plus the decorrelation points) and returns the fitted section plus the
// pooled series.
func calibrateMachine(m *machine.Model) (*Bench10Machine, []float64, []float64, error) {
	calib := roofline.FromModel(m)
	points := roofline.MachineCalibPoints(m)
	type point struct {
		label string
		raw   [roofline.NumClasses]float64
		meas  float64
	}
	var pts []point
	samples := make([]roofline.Sample, 0, len(points))
	for _, cp := range points {
		steps := 2
		raw, err := roofline.RawSeconds(calib, cp.Cfg, steps)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("bench10: counting %s %s: %w", m.Name, cp.Label, err)
		}
		rep, err := core.Run(cp.Cfg, steps)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("bench10: simulating %s %s: %w", m.Name, cp.Label, err)
		}
		// Compare in the paper's unit, seconds per simulated day: scale
		// the raw charged-step seconds to a day of steps.
		norm, err := cp.Cfg.Normalized()
		if err != nil {
			return nil, nil, nil, err
		}
		perDay := float64(cp.Cfg.StepsPerDay()) / float64(steps+norm.WarmupSteps)
		for j := range raw {
			raw[j] *= perDay
		}
		samples = append(samples, roofline.Sample{
			Machine: m.Name, Label: cp.Label, Raw: raw, Measured: rep.Total,
		})
		pts = append(pts, point{label: cp.Label, raw: raw, meas: rep.Total})
	}

	fit, err := roofline.Fit(samples, roofline.FitOptions{
		Base:    calib.Eff,
		Classes: roofline.ComputeClasses,
	})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("bench10: fitting %s: %w", m.Name, err)
	}
	calib.Eff = fit.Eff

	sec := &Bench10Machine{Name: m.Name, Calib: calib}
	var pred, meas []float64
	for _, p := range pts {
		pr := roofline.PredictSample(calib.Eff, p.raw)
		pred = append(pred, pr)
		meas = append(meas, p.meas)
		sec.Samples = append(sec.Samples, Bench10Sample{
			Label:      p.label,
			PredictedS: pr,
			MeasuredS:  p.meas,
			APE:        ape(pr, p.meas),
		})
	}
	if sec.MAPE, err = roofline.MAPE(pred, meas); err != nil {
		return nil, nil, nil, err
	}
	return sec, pred, meas, nil
}

// NewBench10Report runs the full loop: host calibration plus the three paper
// machines' grid fits.
func NewBench10Report() (*Bench10Report, error) {
	host, err := CalibrateHost()
	if err != nil {
		return nil, err
	}
	rep := &Bench10Report{
		Note: "roofline observe-predict-calibrate loop: host sections are wall-clock " +
			"(comparable only on the same build host, gated by thresholds, not diffed); " +
			"machine sections are virtual-time and deterministic per tree",
		Host: *host,
	}
	var allPred, allMeas []float64
	for _, m := range machine.All() {
		sec, pred, meas, err := calibrateMachine(m)
		if err != nil {
			return nil, err
		}
		rep.Machines = append(rep.Machines, *sec)
		allPred = append(allPred, pred...)
		allMeas = append(allMeas, meas...)
	}
	if rep.GridMAPE, err = roofline.MAPE(allPred, allMeas); err != nil {
		return nil, err
	}
	if rep.GridSpearman, err = roofline.Spearman(allPred, allMeas); err != nil {
		return nil, err
	}
	return rep, nil
}

func ape(pred, meas float64) float64 {
	if meas == 0 {
		return 0
	}
	d := (pred - meas) / meas
	if d < 0 {
		d = -d
	}
	return d
}
