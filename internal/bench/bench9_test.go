package bench

import (
	"encoding/json"
	"os"
	"testing"

	"agcm/internal/workload"
)

// buildBench9 memoizes the report: it is bit-deterministic, so one build
// serves every assertion.
var bench9 = func() func(t *testing.T) *Bench9Report {
	var rep *Bench9Report
	return func(t *testing.T) *Bench9Report {
		t.Helper()
		if rep == nil {
			r, err := NewBench9Report()
			if err != nil {
				t.Fatalf("NewBench9Report: %v", err)
			}
			rep = r
		}
		return rep
	}
}()

func TestBench9Deterministic(t *testing.T) {
	a := bench9(t)
	b, err := NewBench9Report()
	if err != nil {
		t.Fatal(err)
	}
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatal("two Bench9Report builds marshal differently")
	}
}

func TestBench9ReplayIdentical(t *testing.T) {
	if !bench9(t).ReplayIdentical {
		t.Fatal("regenerated schedule did not replay identically through the trace codec")
	}
}

func TestBench9CoversAllPolicies(t *testing.T) {
	rep := bench9(t)
	if len(rep.Policies) != len(workload.Policies) {
		t.Fatalf("report has %d policies, want %d", len(rep.Policies), len(workload.Policies))
	}
	for i, want := range workload.Policies {
		res := rep.Policies[i]
		if res.Policy != want {
			t.Fatalf("policy %d = %q, want %q", i, res.Policy, want)
		}
		for _, class := range []string{"interactive", "batch"} {
			if res.Class(class).Requests == 0 {
				t.Errorf("%s: no %s requests simulated", want, class)
			}
		}
	}
}

func TestBench9SJFImprovesInteractiveP95(t *testing.T) {
	rep := bench9(t)
	var fcfs, sjf int64
	for _, res := range rep.Policies {
		switch res.Policy {
		case "fcfs":
			fcfs = res.Class("interactive").P95US
		case "sjf":
			sjf = res.Class("interactive").P95US
		}
	}
	if fcfs == 0 || sjf == 0 {
		t.Fatalf("missing interactive p95: fcfs=%d sjf=%d", fcfs, sjf)
	}
	if sjf > fcfs {
		t.Fatalf("sjf interactive p95 %dus exceeds fcfs %dus", sjf, fcfs)
	}
}

func TestBench9LabelInversionSeparatesPolicies(t *testing.T) {
	// With the expensive grid under the interactive label, priority (which
	// follows the label) and sjf (which follows predicted cost) must
	// disagree; on the reference workload the label tracks the cost, so
	// they coincide.  This is the evidence that sjf consults the oracle.
	rep := bench9(t)
	if len(rep.LabelInverted) != 2 {
		t.Fatalf("label_inverted has %d results, want 2", len(rep.LabelInverted))
	}
	prio, sjf := rep.LabelInverted[0], rep.LabelInverted[1]
	if prio.Policy != "priority" || sjf.Policy != "sjf" {
		t.Fatalf("label_inverted order = %q,%q", prio.Policy, sjf.Policy)
	}
	if prio.Class("interactive").P95US == sjf.Class("interactive").P95US &&
		prio.MaxClassSlowdown == sjf.MaxClassSlowdown {
		t.Fatal("priority and sjf are indistinguishable on the label-inverted workload")
	}
	if sjf.MaxClassSlowdown >= prio.MaxClassSlowdown {
		t.Errorf("sjf max class slowdown %.2f not below priority's %.2f",
			sjf.MaxClassSlowdown, prio.MaxClassSlowdown)
	}
}

func TestCommittedSchedulingSpecIsCanonical(t *testing.T) {
	// workloads/scheduling.json is the canonical encoding of the built-in
	// reference spec — the workload CI drives live daemons with and the
	// -dump-spec round trip diffs against.
	disk, err := os.ReadFile("../../workloads/scheduling.json")
	if err != nil {
		t.Fatal(err)
	}
	want, err := workload.SchedulingSpec().CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(disk) != string(want)+"\n" && string(disk) != string(want) {
		t.Fatalf("workloads/scheduling.json is not the canonical SchedulingSpec encoding\n got: %s\nwant: %s", disk, want)
	}
}

func TestCommittedBench9Current(t *testing.T) {
	disk, err := os.ReadFile("../../BENCH_9.json")
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(bench9(t), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if string(disk) != string(data) {
		t.Fatal("committed BENCH_9.json is stale; regenerate with: go run ./cmd/agcmbench -bench9-json BENCH_9.json")
	}
}
