package experiments

import (
	"reflect"
	"testing"
)

// TestInterconnectStory checks the experiment's claims: routed networks make
// the transpose-heavy run placement-sensitive, mesh and torus price the same
// program differently, and the whole thing is bit-reproducible.
func TestInterconnectStory(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	out, err := Interconnect(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != "interconnect" || len(out.Tables) != 2 {
		t.Fatalf("bad output: %+v", out)
	}
	mesh, torus := out.Tables[0], out.Tables[1]
	for _, tbl := range out.Tables {
		if len(tbl.Rows) != 4 {
			t.Fatalf("%s: %d rows, want flat + 3 placements", tbl.Title, len(tbl.Rows))
		}
	}
	// Column indices: 0 network, 1 placement, 2 mean hops, 3 filter s/day,
	// 4 comm s/day, 5 total s/day, 6 stall ms.
	const filterCol, totalCol, stallCol = 3, 5, 6

	// Placement must matter: on the mesh, the three routed placements give
	// at least two distinct filter (transpose) costs.
	distinct := map[string]bool{}
	for _, row := range mesh.Rows[1:] {
		distinct[row[filterCol]] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("mesh filter cost identical across placements: %v", mesh.Rows)
	}

	// Topology must matter: the same placement priced on mesh vs torus
	// differs (torus wraparound halves worst-case ring distances).
	for i := 1; i < 4; i++ {
		if mesh.Rows[i][filterCol] == torus.Rows[i][filterCol] &&
			mesh.Rows[i][totalCol] == torus.Rows[i][totalCol] {
			t.Fatalf("placement %s priced identically on mesh and torus",
				mesh.Rows[i][1])
		}
	}

	// Routed rows cost at least as much as flat (hops and queueing only add
	// time under the default calibration).
	for _, tbl := range out.Tables {
		flat := cell(t, tbl.Rows[0][totalCol])
		for _, row := range tbl.Rows[1:] {
			if cell(t, row[totalCol]) < flat {
				t.Fatalf("routed run cheaper than flat: %v", row)
			}
		}
	}

	// The all-to-all transpose must actually contend somewhere.
	var anyStall bool
	for _, row := range mesh.Rows[1:] {
		if cell(t, row[stallCol]) > 0 {
			anyStall = true
		}
	}
	if !anyStall {
		t.Fatal("no link contention recorded on the mesh")
	}

	// Bit-reproducible end to end, tables and all.
	again, err := Interconnect(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, again) {
		t.Fatal("interconnect experiment is not deterministic")
	}
}
