package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"testing"
)

// crashRecoveryGolden is the SHA-256 of the crash-recovery experiment's
// rendered output, captured before the PR 2 determinism fixes.  The
// experiment's verdict is bit-identical restart state, so its output is a
// fingerprint of the whole simulation pipeline: any behavior change in sim,
// comm, dynamics, physics or the filter shifts the virtual clocks and shows
// up here.  The static-analysis fixes of PR 2 (sorted map iteration in
// trace, annotations elsewhere) must NOT change this hash — that is the
// behavior-preservation proof the analyzers' fix-ups are held to.
const crashRecoveryGolden = "bcf4c3194e3ded26821b2edc1ef7ae04ca1e616d622dc00608adfcee9d63ed5b"

// renderOutput serializes an experiment output deterministically.
func renderOutput(out *Output) string {
	var b strings.Builder
	b.WriteString(out.ID)
	b.WriteByte('\n')
	b.WriteString(out.Title)
	b.WriteByte('\n')
	for _, tbl := range out.Tables {
		b.WriteString(tbl.Render())
		b.WriteString(tbl.CSV())
	}
	for _, n := range out.Notes {
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// TestCrashRecoveryOutputGolden pins the crash-recovery experiment's exact
// output.  It re-runs the reference / crash / restart triple and compares the
// rendered result against the hash captured on the pre-PR-2 tree.
func TestCrashRecoveryOutputGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full crash-recovery triple in -short mode")
	}
	out, err := CrashRecovery(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256([]byte(renderOutput(out)))
	got := hex.EncodeToString(sum[:])
	if got != crashRecoveryGolden {
		t.Fatalf("crash-recovery output hash changed:\n got %s\nwant %s\n\noutput:\n%s",
			got, crashRecoveryGolden, renderOutput(out))
	}
}
