package experiments

import (
	"fmt"

	"agcm/internal/machine"
	"agcm/internal/roofline"
	"agcm/internal/stats"
)

// Roofline closes the observe-predict-calibrate loop in virtual time: for
// each modelled machine — the paper trio plus a cluster of host-CPU nodes —
// it simulates the calibration grid (roofline.MachineCalibPoints: the
// standard 2x2.5x9 run across processor meshes, plus the convolution-filter
// and layer-count points that decorrelate the kernel classes), derives a
// roofline calibration from the machine model, fits the per-kernel-class
// efficiencies against the simulated timings by the deterministic least
// squares, and tabulates predicted against measured seconds per simulated
// day.  The wall-clock half of the loop (real host benchmarks feeding the
// same fit) lives in `agcmbench -calibrate`; this experiment is its
// bit-deterministic twin, runnable anywhere and diffable in CI.
func Roofline(opt Options) (*Output, error) {
	machines := append(machine.All(), machine.Host())
	tbl := &stats.Table{
		Title:  "Roofline model: predicted vs simulated whole-code times, 2x2.5 grid",
		Header: []string{"Machine", "Config", "Simulated s/day", "Predicted s/day", "Error"},
	}
	notes := []string{
		"Efficiencies fitted per machine on this grid (deterministic least squares);",
		"network constants derive from the machine model and are not fitted.",
	}
	var allPred, allMeas []float64
	for _, mach := range machines {
		calib := roofline.FromModel(mach)
		var samples []roofline.Sample
		type row struct {
			label string
			raw   [roofline.NumClasses]float64
			meas  float64
		}
		var rows []row
		for _, cp := range roofline.MachineCalibPoints(mach) {
			rep, err := run(cp.Cfg, opt)
			if err != nil {
				return nil, err
			}
			raw, err := roofline.RawSeconds(calib, cp.Cfg, opt.steps())
			if err != nil {
				return nil, err
			}
			// Compare in the paper's unit: scale raw charged-step seconds
			// to seconds per simulated day.
			norm, err := cp.Cfg.Normalized()
			if err != nil {
				return nil, err
			}
			perDay := float64(cp.Cfg.StepsPerDay()) / float64(opt.steps()+norm.WarmupSteps)
			for j := range raw {
				raw[j] *= perDay
			}
			samples = append(samples, roofline.Sample{
				Machine: mach.Name, Label: cp.Label,
				Raw: raw, Measured: rep.Total,
			})
			rows = append(rows, row{label: cp.Label, raw: raw, meas: rep.Total})
		}
		fit, err := roofline.Fit(samples, roofline.FitOptions{
			Base:    calib.Eff,
			Classes: roofline.ComputeClasses,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: fitting %s: %w", mach.Name, err)
		}
		var pred, meas []float64
		for _, r := range rows {
			p := roofline.PredictSample(fit.Eff, r.raw)
			pred = append(pred, p)
			meas = append(meas, r.meas)
			errPct := 0.0
			if r.meas != 0 {
				errPct = (p - r.meas) / r.meas
			}
			tbl.AddRow(mach.Name, r.label,
				stats.Seconds(r.meas), stats.Seconds(p), stats.Percent(errPct))
		}
		allPred = append(allPred, pred...)
		allMeas = append(allMeas, meas...)
		mape, err := roofline.MAPE(pred, meas)
		if err != nil {
			return nil, err
		}
		notes = append(notes, fmt.Sprintf("%s: MAPE %.1f%% (eff dyn %.2f phys %.2f conv %.2f fft %.2f).",
			mach.Name, 100*mape, fit.Eff.Dynamics, fit.Eff.Physics, fit.Eff.FilterConv, fit.Eff.FilterFFT))
	}
	sp, err := roofline.Spearman(allPred, allMeas)
	if err != nil {
		return nil, err
	}
	mape, err := roofline.MAPE(allPred, allMeas)
	if err != nil {
		return nil, err
	}
	notes = append(notes, fmt.Sprintf(
		"Pooled over the %d-point machine x config grid: MAPE %.1f%%, Spearman rank correlation %.3f.",
		len(allPred), 100*mape, sp))
	return &Output{ID: "roofline", Title: "Roofline machine models",
		Tables: []*stats.Table{tbl}, Notes: notes}, nil
}
