package experiments

import (
	"fmt"

	"agcm/internal/core"
	"agcm/internal/grid"
	"agcm/internal/machine"
	"agcm/internal/physics"
	"agcm/internal/stats"
)

// AblationPhysicsSchemes compares the three physics load-balancing schemes
// of Section 3.4 (plus no balancing) end to end with real data movement —
// the comparison the paper argues qualitatively before adopting scheme 3.
func AblationPhysicsSchemes(opt Options) (*Output, error) {
	spec := grid.TwoByTwoPointFive(9)
	tbl := &stats.Table{
		Title:  "Ablation: physics load-balancing schemes, 8x8 Cray T3D, 2x2.5x9",
		Header: []string{"Scheme", "Physics s/day", "Physics imbalance", "Total s/day"},
	}
	for _, scheme := range []physics.Scheme{physics.None, physics.Shuffle, physics.Greedy, physics.Pairwise} {
		rep, err := run(core.Config{
			Spec: spec, Machine: machine.CrayT3D(),
			MeshPy: 8, MeshPx: 8,
			Filter:        core.FilterFFTBalanced,
			PhysicsScheme: scheme,
			PhysicsRounds: 2,
		}, opt)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(scheme.String(),
			stats.Seconds(rep.PhysicsTime),
			stats.Percent(core.Imbalance(rep.PhysicsLoads)),
			stats.Seconds(rep.Total))
	}
	return &Output{ID: "ablation-schemes", Title: "Physics balancing schemes",
		Tables: []*stats.Table{tbl},
		Notes: []string{
			"Scheme 1 (shuffle) balances well but pays O(P^2) messages;",
			"scheme 3 (pairwise) approaches it at O(P) cost — the paper's choice.",
		}}, nil
}

// AblationRingVsTree compares the original convolution filter's two data
// motions (Section 2 cites both ring and binary-tree implementations).
func AblationRingVsTree(opt Options) (*Output, error) {
	spec := grid.TwoByTwoPointFive(9)
	tbl := &stats.Table{
		Title:  "Ablation: convolution filter data motion, Intel Paragon, 2x2.5x9",
		Header: []string{"Node mesh", "Ring filter s/day", "Tree filter s/day"},
	}
	for _, mesh := range [][2]int{{4, 4}, {8, 8}, {8, 30}} {
		row := []string{meshName(mesh[0], mesh[1])}
		for _, fv := range []core.FilterVariant{core.FilterConvolutionRing, core.FilterConvolutionTree} {
			rep, err := run(core.Config{
				Spec: spec, Machine: machine.Paragon(),
				MeshPy: mesh[0], MeshPx: mesh[1],
				Filter:        fv,
				PhysicsScheme: physics.None,
			}, opt)
			if err != nil {
				return nil, err
			}
			row = append(row, stats.Seconds(rep.FilterTime))
		}
		tbl.AddRow(row...)
	}
	return &Output{ID: "ablation-topology", Title: "Ring vs tree convolution",
		Tables: []*stats.Table{tbl},
		Notes:  []string{"Both carry the same O(N^2) arithmetic; they differ only in message pattern."}}, nil
}

// AblationPairwiseRounds sweeps the scheme-3 iteration count, showing the
// cost/accuracy trade-off the paper highlights as the scheme's advantage.
func AblationPairwiseRounds(opt Options) (*Output, error) {
	spec := grid.TwoByTwoPointFive(9)
	tbl := &stats.Table{
		Title:  "Ablation: scheme-3 balancing rounds per step, 8x8 Cray T3D",
		Header: []string{"Rounds", "Physics s/day", "Physics imbalance"},
	}
	for rounds := 0; rounds <= 3; rounds++ {
		scheme := physics.Pairwise
		if rounds == 0 {
			scheme = physics.None
		}
		rep, err := run(core.Config{
			Spec: spec, Machine: machine.CrayT3D(),
			MeshPy: 8, MeshPx: 8,
			Filter:        core.FilterFFTBalanced,
			PhysicsScheme: scheme,
			PhysicsRounds: max(rounds, 1),
		}, opt)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(fmt.Sprintf("%d", rounds),
			stats.Seconds(rep.PhysicsTime),
			stats.Percent(core.Imbalance(rep.PhysicsLoads)))
	}
	return &Output{ID: "ablation-rounds", Title: "Pairwise rounds sweep",
		Tables: []*stats.Table{tbl},
		Notes: []string{
			"The paper applies scheme 3 twice; beyond that the residual",
			"imbalance is dominated by estimation error and column granularity.",
		}}, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// AblationCommPatterns measures the message counts and volumes behind the
// paper's Section 3.1-3.2 complexity analysis: the ring and tree
// convolution, the transpose-based FFT, and the load-balanced FFT all move
// different numbers of messages and bytes per step; here the simulator
// counts them instead of bounding them.
func AblationCommPatterns(opt Options) (*Output, error) {
	spec := grid.TwoByTwoPointFive(9)
	tbl := &stats.Table{
		Title: "Ablation: communication per step by filter variant, 8x30 Intel Paragon, 2x2.5x9",
		Header: []string{"Variant", "Messages/step", "MB/step", "Max wait share",
			"Filter s/day"},
	}
	for _, fv := range []core.FilterVariant{
		core.FilterConvolutionRing, core.FilterConvolutionTree,
		core.FilterFFTRowwise, core.FilterFFT, core.FilterFFTBalanced,
		core.FilterPolarDiffusion,
	} {
		rep, err := run(core.Config{
			Spec: spec, Machine: machine.Paragon(),
			MeshPy: 8, MeshPx: 30,
			Filter:        fv,
			PhysicsScheme: physics.None,
		}, opt)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(fv.String(),
			fmt.Sprintf("%.0f", rep.MessagesPerStep),
			fmt.Sprintf("%.2f", rep.BytesPerStep/1e6),
			stats.Percent(rep.MaxWaitShare),
			stats.Seconds(rep.FilterTime))
	}
	return &Output{ID: "ablation-comm", Title: "Communication patterns",
		Tables: []*stats.Table{tbl},
		Notes: []string{
			"Section 3.1-3.2's analysis in measured form: the ring moves O(P) messages",
			"per slab, the tree O(2P); the rowwise parallel FFT (approach 1) sends the",
			"fewest messages but replicates whole rows (6x the transpose's volume) and",
			"pays redundant full-row transforms on every rank; the transpose (approach",
			"2) costs more, smaller messages but the least volume, and load balancing",
			"spreads them over every node — the paper's choice, quantified.",
		}}, nil
}

// AblationPolarTreatment compares the paper's load-balanced spectral filter
// against the implicit zonal-diffusion alternative built from the Section 5
// solver toolkit: both stabilize the polar CFL violation, with different
// numerics and communication patterns.
func AblationPolarTreatment(opt Options) (*Output, error) {
	spec := grid.TwoByTwoPointFive(9)
	tbl := &stats.Table{
		Title:  "Ablation: polar treatment, Cray T3D, 2x2.5x9",
		Header: []string{"Node mesh", "FFT+LB filter s/day", "Implicit diffusion s/day"},
	}
	for _, mesh := range [][2]int{{4, 4}, {8, 8}, {8, 30}} {
		row := []string{meshName(mesh[0], mesh[1])}
		for _, fv := range []core.FilterVariant{core.FilterFFTBalanced, core.FilterPolarDiffusion} {
			rep, err := run(core.Config{
				Spec: spec, Machine: machine.CrayT3D(),
				MeshPy: mesh[0], MeshPx: mesh[1],
				Filter:        fv,
				PhysicsScheme: physics.None,
			}, opt)
			if err != nil {
				return nil, err
			}
			row = append(row, stats.Seconds(rep.FilterTime))
		}
		tbl.AddRow(row...)
	}
	return &Output{ID: "ablation-polar", Title: "Polar treatment alternatives",
		Tables: []*stats.Table{tbl},
		Notes: []string{
			"The implicit route solves batched distributed periodic tridiagonal",
			"systems across each mesh row; it inherits the polar load imbalance",
			"the spectral filter's row balancing removes.",
		}}, nil
}

// AblationDegradedNode slows one node of an 8x8 T3D by 3x and measures how
// much of the damage the estimate-driven pairwise balancer recovers —
// hardware heterogeneity looks exactly like a physics hot spot to a
// previous-pass-timing balancer, so it is absorbed for free.
func AblationDegradedNode(opt Options) (*Output, error) {
	spec := grid.TwoByTwoPointFive(9)
	tbl := &stats.Table{
		Title:  "Ablation: one 3x-degraded node on an 8x8 Cray T3D, 2x2.5x9",
		Header: []string{"Configuration", "Physics imbalance", "Total s/day"},
	}
	for _, tc := range []struct {
		name    string
		degrade bool
		scheme  physics.Scheme
	}{
		{"healthy, unbalanced", false, physics.None},
		{"degraded, unbalanced", true, physics.None},
		{"degraded, pairwise", true, physics.Pairwise},
	} {
		cfg := core.Config{
			Spec: spec, Machine: machine.CrayT3D(),
			MeshPy: 8, MeshPx: 8,
			Filter:        core.FilterFFTBalanced,
			PhysicsScheme: tc.scheme,
			PhysicsRounds: 2,
		}
		if tc.degrade {
			cfg.DegradeRank = 27 // a mid-latitude node
			cfg.DegradeFactor = 3
		}
		rep, err := run(cfg, opt)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(tc.name,
			stats.Percent(core.Imbalance(rep.PhysicsLoads)),
			stats.Seconds(rep.Total))
	}
	return &Output{ID: "ablation-degraded", Title: "Degraded-node recovery",
		Tables: []*stats.Table{tbl},
		Notes: []string{
			"The balancer moves columns off the slow node because its",
			"previous-pass timing estimate already reflects the slowness; the",
			"dynamics share of the damage stays (its decomposition is fixed), so",
			"the recovery is the physics fraction of the slow node's deficit.",
		}}, nil
}

// AblationSP2 runs the whole-code comparison on the modelled IBM SP-2,
// which the paper used but reported only as "qualitatively similar" to the
// Paragon and T3D results.
func AblationSP2(opt Options) (*Output, error) {
	spec := grid.TwoByTwoPointFive(9)
	tbl := &stats.Table{
		Title:  "Ablation: whole-code timings on the IBM SP-2, 2x2.5x9",
		Header: []string{"Node mesh", "Old filter total s/day", "New filter total s/day", "New/Old"},
	}
	for _, mesh := range [][2]int{{1, 1}, {4, 4}, {8, 8}, {8, 30}} {
		var totals [2]float64
		for i, fv := range []core.FilterVariant{core.FilterConvolutionRing, core.FilterFFTBalanced} {
			rep, err := run(core.Config{
				Spec: spec, Machine: machine.IBMSP2(),
				MeshPy: mesh[0], MeshPx: mesh[1],
				Filter:        fv,
				PhysicsScheme: physics.None,
			}, opt)
			if err != nil {
				return nil, err
			}
			totals[i] = rep.Total
		}
		tbl.AddRow(meshName(mesh[0], mesh[1]),
			stats.Seconds(totals[0]), stats.Seconds(totals[1]),
			fmt.Sprintf("%.2f", totals[1]/totals[0]))
	}
	return &Output{ID: "ablation-sp2", Title: "IBM SP-2 cross-check",
		Tables: []*stats.Table{tbl},
		Notes: []string{
			"The paper: \"timing on IBM SP-2 were also performed ... qualitatively",
			"similar\" — the new filter's advantage survives the machine change.",
		}}, nil
}

// AblationResolution checks the paper's closing expectation: "We would
// expect even better scaling be achieved for the parallel filtering as well
// as for the overall AGCM code for higher horizontal and vertical
// resolution versions."  It compares whole-code and filter scaling between
// the paper's 2x2.5 grid and a doubled 1x1.25 grid.
func AblationResolution(opt Options) (*Output, error) {
	tbl := &stats.Table{
		Title: "Ablation: scaling vs horizontal resolution, Cray T3D, FFT+LB filter",
		Header: []string{"Resolution", "Total s/day 4x4", "Total s/day 8x30",
			"Scaling (16->240)", "Efficiency"},
	}
	for _, res := range []struct {
		name string
		spec grid.Spec
	}{
		{"2 x 2.5 (144x90)", grid.TwoByTwoPointFive(9)},
		{"1 x 1.25 (288x180)", grid.Spec{Nlon: 288, Nlat: 180, Nlayers: 9}},
	} {
		var t16, t240 float64
		for _, mesh := range [][2]int{{4, 4}, {8, 30}} {
			rep, err := run(core.Config{
				Spec: res.spec, Machine: machine.CrayT3D(),
				MeshPy: mesh[0], MeshPx: mesh[1],
				Filter:        core.FilterFFTBalanced,
				PhysicsScheme: physics.None,
			}, opt)
			if err != nil {
				return nil, err
			}
			if mesh[0] == 4 {
				t16 = rep.Total
			} else {
				t240 = rep.Total
			}
		}
		scaling := t16 / t240
		tbl.AddRow(res.name, stats.Seconds(t16), stats.Seconds(t240),
			stats.Ratio(scaling), stats.Percent(scaling/15.0))
	}
	return &Output{ID: "ablation-resolution", Title: "Resolution scaling",
		Tables: []*stats.Table{tbl},
		Notes: []string{
			"More grid points per node raise the computation-to-communication",
			"ratio, so the doubled resolution scales better — the paper's closing",
			"expectation, confirmed.",
		}}, nil
}

// AblationLayerScaling compares the load-balanced filter's parallel
// efficiency between the 9- and 15-layer models (the paper finds the
// 15-layer model scales better: 32% vs 39% efficiency at 240 vs 16 nodes).
func AblationLayerScaling(opt Options) (*Output, error) {
	tbl := &stats.Table{
		Title:  "Ablation: FFT+LB filter scaling vs vertical layers, Intel Paragon",
		Header: []string{"Layers", "Filter s/day 4x4", "Filter s/day 8x30", "Scaling (16->240)", "Efficiency"},
	}
	for _, layers := range []int{9, 15} {
		spec := grid.TwoByTwoPointFive(layers)
		var t16, t240 float64
		for _, mesh := range [][2]int{{4, 4}, {8, 30}} {
			rep, err := run(core.Config{
				Spec: spec, Machine: machine.Paragon(),
				MeshPy: mesh[0], MeshPx: mesh[1],
				Filter:        core.FilterFFTBalanced,
				PhysicsScheme: physics.None,
			}, opt)
			if err != nil {
				return nil, err
			}
			if mesh[0] == 4 {
				t16 = rep.FilterTime
			} else {
				t240 = rep.FilterTime
			}
		}
		scaling := t16 / t240
		tbl.AddRow(fmt.Sprintf("%d", layers),
			stats.Seconds(t16), stats.Seconds(t240),
			stats.Ratio(scaling), stats.Percent(scaling/15.0))
	}
	return &Output{ID: "ablation-layers", Title: "Layer-count scaling",
		Tables: []*stats.Table{tbl},
		Notes: []string{
			"Paper: filter scaling 4.74 (9-layer) vs 5.87 (15-layer) from 16 to 240",
			"nodes — more vertical work per transferred byte improves efficiency.",
		}}, nil
}
