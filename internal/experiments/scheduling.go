package experiments

// Scheduling experiment: the workload engine's virtual-time scheduler
// comparison, rendered as tables.  The same seeded schedule — the committed
// workloads/scheduling.json reference spec — runs under fcfs, priority, and
// sjf, then priority and sjf rerun on a label-inverted variant where the
// expensive grid carries the interactive label.  On the reference workload
// the label tracks the cost and sjf matches priority; after inversion the
// two must split, which is the evidence that sjf consults the PredictCost
// oracle rather than the class rank.  BENCH_9.json is the same comparison
// as a committed JSON artifact.

import (
	"fmt"

	"agcm/internal/stats"
	"agcm/internal/workload"
)

// Scheduling renders the scheduler comparison.  All latencies are virtual
// seconds from the machine cost model; the numbers are bit-deterministic
// and independent of the host.
func Scheduling(opt Options) (*Output, error) {
	sched, err := workload.Generate(workload.SchedulingSpec())
	if err != nil {
		return nil, fmt.Errorf("scheduling experiment: %w", err)
	}
	ref := &stats.Table{
		Title: fmt.Sprintf("Scheduling: per-class latency by policy, reference workload (%d requests)",
			len(sched.Requests)),
		Header: []string{"Policy", "Class", "Requests", "p50 s", "p95 s", "p99 s", "Slowdown"},
	}
	if err := addSim(ref, sched, workload.Policies); err != nil {
		return nil, err
	}

	invSched, err := workload.Generate(workload.SchedulingSpecInverted())
	if err != nil {
		return nil, fmt.Errorf("scheduling experiment: %w", err)
	}
	inv := &stats.Table{
		Title:  "Scheduling: label-inverted workload (expensive grid labeled interactive)",
		Header: []string{"Policy", "Class", "Requests", "p50 s", "p95 s", "p99 s", "Slowdown"},
	}
	if err := addSim(inv, invSched, []string{"priority", "sjf"}); err != nil {
		return nil, err
	}

	notes := []string{
		"Virtual-time simulation over the seeded schedule; identical on every host.",
		"sjf tracks priority when the SLO label predicts the cost and departs",
		"from it when the labels are inverted: cost oracle, not class rank.",
	}
	return &Output{ID: "scheduling", Title: "Scheduler comparison",
		Tables: []*stats.Table{ref, inv}, Notes: notes}, nil
}

// addSim simulates each policy over the schedule and appends one row per
// (policy, class), with the policy's fairness number on its first row.
func addSim(tbl *stats.Table, sched *workload.Schedule, policies []string) error {
	for _, policy := range policies {
		res, err := workload.Simulate(sched, workload.SimOptions{Policy: policy})
		if err != nil {
			return fmt.Errorf("scheduling experiment: %s: %w", policy, err)
		}
		for i, c := range res.Classes {
			slowdown := ""
			if i == 0 {
				slowdown = stats.Ratio(res.MaxClassSlowdown)
			}
			tbl.AddRow(res.Policy, c.Class, fmt.Sprintf("%d", c.Requests),
				usSeconds(c.P50US), usSeconds(c.P95US), usSeconds(c.P99US), slowdown)
		}
	}
	return nil
}

// usSeconds renders virtual microseconds as seconds.
func usSeconds(us int64) string { return stats.Seconds(float64(us) / 1e6) }
