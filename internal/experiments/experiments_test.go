package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// fast settings for tests; the command-line harness uses more steps.
var testOpt = Options{MeasuredSteps: 1}

// cell parses a numeric table cell (possibly with a trailing % or x).
func cell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(s, "%"), "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("unparsable cell %q: %v", s, err)
	}
	return v
}

func TestOptionsDefaults(t *testing.T) {
	if DefaultOptions().steps() < 1 {
		t.Fatal("default steps invalid")
	}
	if (Options{}).steps() != 3 {
		t.Fatal("zero options not defaulted")
	}
}

func TestIDsRoundTrip(t *testing.T) {
	if _, err := ByID("no-such", testOpt); err == nil {
		t.Fatal("unknown id accepted")
	}
	ids := IDs()
	if len(ids) < 14 {
		t.Fatalf("only %d experiment ids", len(ids))
	}
	// Cheap experiments run through ByID end to end.
	for _, id := range []string{"blockarray", "advection"} {
		out, err := ByID(id, testOpt)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if out.ID != id || len(out.Tables) == 0 {
			t.Fatalf("%s: bad output %+v", id, out)
		}
	}
}

func TestBlockArrayShape(t *testing.T) {
	out, err := BlockArray(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	rows := out.Tables[0].Rows
	var paragon, t3d float64
	for _, r := range rows {
		switch r[0] {
		case "Intel Paragon":
			paragon = cell(t, r[5])
		case "Cray T3D":
			t3d = cell(t, r[5])
		}
	}
	if paragon < 4 || paragon > 6.5 {
		t.Errorf("Paragon block speedup %.1f outside band (paper 5.0)", paragon)
	}
	if t3d < 2 || t3d > 3.6 {
		t.Errorf("T3D block speedup %.1f outside band (paper 2.6)", t3d)
	}
}

func TestAdvectionShape(t *testing.T) {
	out, err := Advection(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range out.Tables[0].Rows {
		if r[0] == "Cray T3D" {
			red := cell(t, r[3])
			if red < 20 || red > 45 {
				t.Errorf("T3D advection reduction %.1f%% outside band (paper 35%%)", red)
			}
		}
	}
}

func TestTable1ImbalanceConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("full-resolution run")
	}
	out, err := Table1(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	rows := out.Tables[0].Rows
	if len(rows) < 2 {
		t.Fatalf("only %d balancing states", len(rows))
	}
	before := cell(t, rows[0][3])
	after := cell(t, rows[len(rows)-1][3])
	// Paper band: initial 35-48%, final single digits.
	if before < 15 {
		t.Errorf("initial physics imbalance %.1f%% too small (paper 37%%)", before)
	}
	if after > 15 {
		t.Errorf("final physics imbalance %.1f%% too large (paper 6%%)", after)
	}
	if after >= before {
		t.Errorf("balancing did not reduce imbalance: %.1f%% -> %.1f%%", before, after)
	}
	// Max load must decrease monotonically across iterations.
	prev := cell(t, rows[0][1])
	for _, r := range rows[1:] {
		cur := cell(t, r[1])
		if cur > prev {
			t.Errorf("max load increased: %g -> %g", prev, cur)
		}
		prev = cur
	}
}

func TestFigure1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-resolution run")
	}
	out, err := Figure1(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	rows := out.Tables[0].Rows
	if len(rows) != 2 {
		t.Fatalf("Figure 1 rows = %d", len(rows))
	}
	// Paper: both the Dynamics share and the filter share grow with the
	// node count (72->86% and 36->49%).
	dyn16, dyn240 := cell(t, rows[0][3]), cell(t, rows[1][3])
	flt16, flt240 := cell(t, rows[0][4]), cell(t, rows[1][4])
	if dyn240 <= dyn16 {
		t.Errorf("Dynamics share did not grow: %.0f%% -> %.0f%%", dyn16, dyn240)
	}
	if flt240 <= flt16 {
		t.Errorf("filter share did not grow: %.0f%% -> %.0f%%", flt16, flt240)
	}
	if dyn16 < 50 || dyn16 > 90 {
		t.Errorf("16-node Dynamics share %.0f%% outside plausible band (paper 72%%)", dyn16)
	}
}

func TestTable8Orderings(t *testing.T) {
	if testing.Short() {
		t.Skip("full-resolution run")
	}
	out, err := Table8(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	rows := out.Tables[0].Rows
	if len(rows) != 5 {
		t.Fatalf("Table 8 rows = %d", len(rows))
	}
	var prevConv float64
	for i, r := range rows {
		conv := cell(t, r[1])
		fft := cell(t, r[2])
		lb := cell(t, r[3])
		// The paper's column ordering at every mesh.
		if !(lb < fft && fft < conv) {
			t.Errorf("row %s: ordering violated: conv=%g fft=%g lb=%g", r[0], conv, fft, lb)
		}
		// Costs fall as the mesh grows (rows are ordered by node count).
		if i > 0 && conv > prevConv*1.05 {
			t.Errorf("row %s: convolution cost grew with more nodes", r[0])
		}
		prevConv = conv
	}
	// The headline: FFT+LB several times faster than convolution on 240.
	last := rows[len(rows)-1]
	if ratio := cell(t, last[1]) / cell(t, last[3]); ratio < 3 {
		t.Errorf("conv/LB ratio on 8x30 = %.1f, want >= 3 (paper ~4.9)", ratio)
	}
}

func TestTables45NewFilterWins(t *testing.T) {
	if testing.Short() {
		t.Skip("full-resolution runs")
	}
	t4, err := Table4(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	t5, err := Table5(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	oldRows, newRows := t4.Tables[0].Rows, t5.Tables[0].Rows
	// On the largest mesh the new code is about twice as fast overall
	// (paper: 216 vs 119 s/day).
	oldTot := cell(t, oldRows[len(oldRows)-1][3])
	newTot := cell(t, newRows[len(newRows)-1][3])
	if ratio := oldTot / newTot; ratio < 1.4 {
		t.Errorf("whole-code speedup from new filter on 8x30 = %.2f, want >= 1.4 (paper ~1.8)", ratio)
	}
	// Dynamics speed-up scaling improves with the new filter.
	oldSpeedup := cell(t, oldRows[len(oldRows)-1][2])
	newSpeedup := cell(t, newRows[len(newRows)-1][2])
	if newSpeedup <= oldSpeedup {
		t.Errorf("new filter scaling %.1f not above old %.1f", newSpeedup, oldSpeedup)
	}
}

func TestAblationCommPatternsStory(t *testing.T) {
	if testing.Short() {
		t.Skip("full-resolution runs")
	}
	out, err := AblationCommPatterns(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string][3]float64{} // messages, MB, wait share
	for _, r := range out.Tables[0].Rows {
		vals[r[0]] = [3]float64{cell(t, r[1]), cell(t, r[2]), cell(t, r[3])}
	}
	// The ring convolution moves far more messages than the tree.
	if vals["convolution-ring"][0] < 2*vals["convolution-tree"][0] {
		t.Errorf("ring (%v msgs) not clearly above tree (%v msgs)",
			vals["convolution-ring"][0], vals["convolution-tree"][0])
	}
	// The FFT transpose moves far less volume than the convolution
	// gathers (it never replicates whole rows).
	if vals["fft"][1] > 0.5*vals["convolution-ring"][1] {
		t.Errorf("fft volume %v MB not well below convolution %v MB",
			vals["fft"][1], vals["convolution-ring"][1])
	}
	// Load balancing reduces the worst rank's wait share.
	if vals["fft-load-balanced"][2] >= vals["fft"][2] {
		t.Errorf("load balancing did not reduce wait share: %v%% vs %v%%",
			vals["fft-load-balanced"][2], vals["fft"][2])
	}
}

func TestAblationPolarTreatmentStory(t *testing.T) {
	if testing.Short() {
		t.Skip("full-resolution runs")
	}
	out, err := AblationPolarTreatment(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	rows := out.Tables[0].Rows
	last := rows[len(rows)-1] // 8x30
	fftLB := cell(t, last[1])
	diff := cell(t, last[2])
	if diff <= fftLB {
		t.Errorf("on 240 nodes the implicit diffusion (%g) should lose to the balanced filter (%g)",
			diff, fftLB)
	}
}

func TestAblationSchemesStory(t *testing.T) {
	if testing.Short() {
		t.Skip("full-resolution runs")
	}
	out, err := AblationPhysicsSchemes(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string][2]float64{}
	for _, r := range out.Tables[0].Rows {
		vals[r[0]] = [2]float64{cell(t, r[1]), cell(t, r[2])}
	}
	// Every balancing scheme reduces the physics imbalance versus none.
	for _, s := range []string{"shuffle", "greedy", "pairwise"} {
		if vals[s][1] >= vals["none"][1] {
			t.Errorf("%s did not reduce imbalance: %.1f%% vs %.1f%%", s, vals[s][1], vals["none"][1])
		}
	}
	// Scheme 3 beats the unbalanced physics time; scheme 1 pays heavy
	// data-movement costs (the paper's drawback argument).
	if vals["pairwise"][0] >= vals["none"][0] {
		t.Errorf("pairwise physics time %.1f not below unbalanced %.1f",
			vals["pairwise"][0], vals["none"][0])
	}
	if vals["shuffle"][0] <= vals["pairwise"][0] {
		t.Errorf("shuffle (%.1f) should cost more than pairwise (%.1f): O(P^2) movement",
			vals["shuffle"][0], vals["pairwise"][0])
	}
}

func TestCrashRecoveryStory(t *testing.T) {
	if testing.Short() {
		t.Skip("full-resolution runs")
	}
	out, err := CrashRecovery(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	rows := out.Tables[0].Rows
	if len(rows) != 3 {
		t.Fatalf("crash-recovery rows = %d, want 3 legs", len(rows))
	}
	if got := rows[2][3]; got != "bit-identical to reference" {
		t.Fatalf("restarted leg outcome = %q", got)
	}
	if !strings.Contains(rows[1][3], "crashed at virtual time") {
		t.Fatalf("crashed leg outcome %q does not report the injected crash", rows[1][3])
	}
}
