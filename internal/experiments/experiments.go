// Package experiments regenerates every table and figure of the paper's
// evaluation on the simulated machines: Figure 1's component breakdown,
// Tables 1-3 (physics load-balancing), Tables 4-7 (whole-code timings with
// the old and new filter on Paragon and T3D), Tables 8-11 (filter-only
// timings for three variants at 9 and 15 layers), and the Section 3.4
// single-node results — plus the ablations the paper's design discussion
// implies (ring vs tree, balancing schemes, iteration counts).
//
// Absolute seconds come from calibrated machine models; the claims to check
// are the paper's shapes: who wins, by what factor, and how the advantage
// moves with the processor count.
package experiments

import (
	"fmt"

	"agcm/internal/core"
	"agcm/internal/grid"
	"agcm/internal/loadbalance"
	"agcm/internal/machine"
	"agcm/internal/physics"
	"agcm/internal/singlenode"
	"agcm/internal/stats"
)

// Output is one regenerated experiment: an identifier matching the paper's
// numbering, rendered tables, and free-form notes comparing with the paper.
type Output struct {
	ID     string
	Title  string
	Tables []*stats.Table
	Notes  []string
}

// Options tune experiment fidelity versus runtime.
type Options struct {
	// MeasuredSteps is the number of time steps measured per run
	// (after warmup); more steps average the physics variability.
	MeasuredSteps int
	// Topology and Placement, when set, install a routed interconnect
	// model (see topology.ByName) on every run that does not choose its
	// own — rerunning the paper's tables under hop latency and injection
	// queueing instead of the flat network.
	Topology  string
	Placement string
}

// DefaultOptions returns the settings used by the command-line harness.
func DefaultOptions() Options { return Options{MeasuredSteps: 3} }

func (o Options) steps() int {
	if o.MeasuredSteps < 1 {
		return 3
	}
	return o.MeasuredSteps
}

// meshes used by the paper's whole-code tables (Tables 4-7).
var wholeCodeMeshes = [][2]int{{1, 1}, {4, 4}, {8, 8}, {8, 30}}

// meshes used by the filter tables (Tables 8-11).
var filterMeshes = [][2]int{{4, 4}, {4, 8}, {8, 8}, {4, 30}, {8, 30}}

func meshName(py, px int) string { return fmt.Sprintf("%d x %d", py, px) }

func run(cfg core.Config, opt Options) (*core.Report, error) {
	// A harness-wide topology (agcmbench -topology) applies to every run
	// that does not pick its own; "none" opts a run out explicitly.
	if cfg.Topology == "" && opt.Topology != "" {
		cfg.Topology = opt.Topology
		cfg.Placement = opt.Placement
	}
	return core.Run(cfg, opt.steps())
}

// --- Figure 1 --------------------------------------------------------------

// Figure1 reproduces the execution-time breakdown of the original code:
// the Dynamics share of the main body and the filtering share of Dynamics,
// on 16 and 240 Paragon nodes.
func Figure1(opt Options) (*Output, error) {
	spec := grid.TwoByTwoPointFive(9)
	tbl := &stats.Table{
		Title:  "Figure 1: component shares, original (convolution) code, Intel Paragon",
		Header: []string{"Node mesh", "Dynamics s/day", "Total s/day", "Dynamics/Total", "Filter/Dynamics"},
	}
	notes := []string{
		"Paper: Dynamics 72% of main body and filtering 36% of Dynamics on 16 nodes;",
		"86% and 49% on 240 nodes.",
	}
	for _, mesh := range [][2]int{{4, 4}, {8, 30}} {
		rep, err := run(core.Config{
			Spec: spec, Machine: machine.Paragon(),
			MeshPy: mesh[0], MeshPx: mesh[1],
			Filter:        core.FilterConvolutionRing,
			PhysicsScheme: physics.None,
		}, opt)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(meshName(mesh[0], mesh[1]),
			stats.Seconds(rep.Dynamics), stats.Seconds(rep.Total),
			stats.Percent(rep.Dynamics/rep.Total),
			stats.Percent(rep.FilterTime/rep.Dynamics))
	}
	return &Output{ID: "fig1", Title: "Figure 1", Tables: []*stats.Table{tbl}, Notes: notes}, nil
}

// --- Tables 1-3 ------------------------------------------------------------

// physicsLB runs the unbalanced physics on a T3D mesh, measures the
// per-rank loads, and applies the scheme-3 pairwise balancer twice — the
// paper's load-balancing simulation.
func physicsLB(py, px int, opt Options) (*stats.Table, error) {
	spec := grid.TwoByTwoPointFive(9)
	rep, err := run(core.Config{
		Spec: spec, Machine: machine.CrayT3D(),
		MeshPy: py, MeshPx: px,
		Filter:        core.FilterFFTBalanced,
		PhysicsScheme: physics.None,
	}, opt)
	if err != nil {
		return nil, err
	}
	loads := rep.PhysicsLoads
	perCol := 0.0
	cols := spec.Nlon * spec.Nlat
	for _, v := range loads {
		perCol += v
	}
	perCol /= float64(cols)
	hist := loadbalance.Pairwise(loads, perCol, 0, 2)
	tbl := &stats.Table{
		Title: fmt.Sprintf("Physics load-balancing simulation, 2x2.5x9, %s node array, Cray T3D",
			meshName(py, px)),
		Header: []string{"Code status", "Max load (s/day)", "Min load (s/day)", "% imbalance"},
	}
	labels := []string{"Before load-balancing", "After first load-balancing", "After second load-balancing"}
	for i, h := range hist {
		label := labels[min(i, len(labels)-1)]
		tbl.AddRow(label, stats.Seconds(h.MaxLoad), stats.Seconds(h.MinLoad), stats.Percent(h.Imbalance))
	}
	return tbl, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Table1 is the 8x8 (64-node) physics load-balancing simulation.
func Table1(opt Options) (*Output, error) {
	tbl, err := physicsLB(8, 8, opt)
	if err != nil {
		return nil, err
	}
	return &Output{ID: "table1", Title: "Table 1", Tables: []*stats.Table{tbl},
		Notes: []string{"Paper: 37% -> 9% -> 6% on an 8x8 T3D array."}}, nil
}

// Table2 is the 9x14 (126-node) simulation.
func Table2(opt Options) (*Output, error) {
	tbl, err := physicsLB(9, 14, opt)
	if err != nil {
		return nil, err
	}
	return &Output{ID: "table2", Title: "Table 2", Tables: []*stats.Table{tbl},
		Notes: []string{"Paper: 35% -> 12% -> 5% on a 9x14 T3D array."}}, nil
}

// Table3 is the 14x18 (252-node) simulation.
func Table3(opt Options) (*Output, error) {
	tbl, err := physicsLB(14, 18, opt)
	if err != nil {
		return nil, err
	}
	return &Output{ID: "table3", Title: "Table 3", Tables: []*stats.Table{tbl},
		Notes: []string{"Paper: 48% -> 12.5% -> 6% on a 14x18 T3D array."}}, nil
}

// --- Tables 4-7 ------------------------------------------------------------

// wholeCode generates one of Tables 4-7: whole-AGCM timings across meshes
// for one machine and one filter variant.
func wholeCode(id, title string, mach *machine.Model, fv core.FilterVariant,
	paperNote string, opt Options) (*Output, error) {
	spec := grid.TwoByTwoPointFive(9)
	tbl := &stats.Table{
		Title:  title,
		Header: []string{"Node mesh", "Dynamics", "Dynamics speed-up", "Total time"},
	}
	var dyn1 float64
	for _, mesh := range wholeCodeMeshes {
		rep, err := run(core.Config{
			Spec: spec, Machine: mach,
			MeshPy: mesh[0], MeshPx: mesh[1],
			Filter:        fv,
			PhysicsScheme: physics.None,
		}, opt)
		if err != nil {
			return nil, err
		}
		if mesh[0] == 1 && mesh[1] == 1 {
			dyn1 = rep.Dynamics
		}
		tbl.AddRow(meshName(mesh[0], mesh[1]),
			stats.Seconds(rep.Dynamics),
			stats.Ratio(stats.Speedup(dyn1, rep.Dynamics)),
			stats.Seconds(rep.Total))
	}
	return &Output{ID: id, Title: title, Tables: []*stats.Table{tbl},
		Notes: []string{paperNote}}, nil
}

// Table4 is the old-filter whole-code timing on the Paragon.
func Table4(opt Options) (*Output, error) {
	return wholeCode("table4",
		"Table 4: AGCM timings (s/simulated day), old filtering module, Intel Paragon, 2x2.5x9",
		machine.Paragon(), core.FilterConvolutionRing,
		"Paper: 8702 / 848.5 / 366 / 186 Dynamics; 14010 / 1177 / 443.5 / 216 total.", opt)
}

// Table5 is the new-filter whole-code timing on the Paragon.
func Table5(opt Options) (*Output, error) {
	return wholeCode("table5",
		"Table 5: AGCM timings (s/simulated day), new filtering module, Intel Paragon, 2x2.5x9",
		machine.Paragon(), core.FilterFFTBalanced,
		"Paper: 8075 / 639 / 207.5 / 87.2 Dynamics; 11225 / 992.6 / 306 / 119 total.", opt)
}

// Table6 is the old-filter whole-code timing on the T3D.
func Table6(opt Options) (*Output, error) {
	return wholeCode("table6",
		"Table 6: AGCM timings (s/simulated day), old filtering module, Cray T3D, 2x2.5x9",
		machine.CrayT3D(), core.FilterConvolutionRing,
		"Paper: 3480 / 339 / 146 / 74 Dynamics; 5600 / 470 / 177 / 87.5 total.", opt)
}

// Table7 is the new-filter whole-code timing on the T3D.
func Table7(opt Options) (*Output, error) {
	return wholeCode("table7",
		"Table 7: AGCM timings (s/simulated day), new filtering module, Cray T3D, 2x2.5x9",
		machine.CrayT3D(), core.FilterFFTBalanced,
		"Paper: 3230 / 256 / 83 / 35 Dynamics; 4990 / 397 / 122 / 48 total.", opt)
}

// --- Tables 8-11 -----------------------------------------------------------

// filterTimes generates one of Tables 8-11: per-variant filtering cost
// across meshes for one machine and layer count.
func filterTimes(id, title string, mach *machine.Model, layers int,
	paperNote string, opt Options) (*Output, error) {
	spec := grid.TwoByTwoPointFive(layers)
	variants := []core.FilterVariant{
		core.FilterConvolutionRing, core.FilterFFT, core.FilterFFTBalanced,
	}
	tbl := &stats.Table{
		Title:  title,
		Header: []string{"Node mesh", "Convolution", "FFT without LB", "FFT with LB"},
	}
	for _, mesh := range filterMeshes {
		row := []string{meshName(mesh[0], mesh[1])}
		for _, fv := range variants {
			rep, err := run(core.Config{
				Spec: spec, Machine: mach,
				MeshPy: mesh[0], MeshPx: mesh[1],
				Filter:        fv,
				PhysicsScheme: physics.None,
			}, opt)
			if err != nil {
				return nil, err
			}
			row = append(row, stats.Seconds(rep.FilterTime))
		}
		tbl.AddRow(row...)
	}
	return &Output{ID: id, Title: title, Tables: []*stats.Table{tbl},
		Notes: []string{paperNote}}, nil
}

// Table8 is the 9-layer filter timing on the Paragon.
func Table8(opt Options) (*Output, error) {
	return filterTimes("table8",
		"Table 8: total filtering times (s/simulated day), Intel Paragon, 2x2.5x9",
		machine.Paragon(), 9,
		"Paper: conv 309.5..90.0, FFT 111.4..37.5, FFT+LB 87.7..18.5 across the meshes.", opt)
}

// Table9 is the 9-layer filter timing on the T3D.
func Table9(opt Options) (*Output, error) {
	return filterTimes("table9",
		"Table 9: total filtering times (s/simulated day), Cray T3D, 2x2.5x9",
		machine.CrayT3D(), 9,
		"Paper: conv 123.5..36.0, FFT 44.6..15.0, FFT+LB 35.1..7.4 across the meshes.", opt)
}

// Table10 is the 15-layer filter timing on the Paragon.
func Table10(opt Options) (*Output, error) {
	return filterTimes("table10",
		"Table 10: total filtering times (s/simulated day), Intel Paragon, 2x2.5x15",
		machine.Paragon(), 15,
		"Paper: conv 802..188, FFT 304..81, FFT+LB 221..37 across the meshes.", opt)
}

// Table11 is the 15-layer filter timing on the T3D.
func Table11(opt Options) (*Output, error) {
	return filterTimes("table11",
		"Table 11: total filtering times (s/simulated day), Cray T3D, 2x2.5x15",
		machine.CrayT3D(), 15,
		"Paper: conv 320..75, FFT 121..32, FFT+LB 88..15 across the meshes.", opt)
}

// --- Section 3.4 single-node experiments -----------------------------------

// BlockArray reproduces the block-array versus separate-arrays Laplace
// experiment on every modelled machine.
func BlockArray(opt Options) (*Output, error) {
	tbl := &stats.Table{
		Title:  "Section 3.4: 7-point Laplace on m=12 fields of 32^3, separate vs block arrays",
		Header: []string{"Machine", "Separate (s)", "Block (s)", "Sep miss rate", "Block miss rate", "Speed-up"},
	}
	for _, mach := range machine.All() {
		r := singlenode.ModelLaplaceLayout(mach, 32, 12)
		tbl.AddRow(mach.Name,
			fmt.Sprintf("%.3f", r.SeparateSeconds),
			fmt.Sprintf("%.3f", r.BlockSeconds),
			stats.Percent(r.SeparateMissRate),
			stats.Percent(r.BlockMissRate),
			fmt.Sprintf("%.1fx", r.Speedup))
	}
	return &Output{ID: "blockarray", Title: "Block-array layout experiment",
		Tables: []*stats.Table{tbl},
		Notes:  []string{"Paper: speed-up 5.0x on the Intel Paragon and 2.6x on the Cray T3D."}}, nil
}

// Advection reproduces the advection-routine optimization experiment.
func Advection(opt Options) (*Output, error) {
	tbl := &stats.Table{
		Title:  "Section 3.4: advection routine, original vs optimized, 144x90x9",
		Header: []string{"Machine", "Original (s)", "Optimized (s)", "Reduction"},
	}
	for _, mach := range machine.All() {
		r := singlenode.ModelAdvection(mach, 90, 144, 9)
		tbl.AddRow(mach.Name,
			fmt.Sprintf("%.3f", r.OriginalSeconds),
			fmt.Sprintf("%.3f", r.OptimizedSeconds),
			stats.Percent(r.Reduction))
	}
	return &Output{ID: "advection", Title: "Advection optimization",
		Tables: []*stats.Table{tbl},
		Notes:  []string{"Paper: about 35% reduction on a single Cray T3D node."}}, nil
}

// All returns every experiment in paper order, plus the ablations.
func All(opt Options) ([]*Output, error) {
	fns := []func(Options) (*Output, error){
		Figure1, Table1, Table2, Table3,
		Table4, Table5, Table6, Table7,
		Table8, Table9, Table10, Table11,
		BlockArray, Advection,
		AblationPhysicsSchemes, AblationRingVsTree, AblationPairwiseRounds,
		AblationCommPatterns, AblationPolarTreatment, AblationSP2,
		AblationDegradedNode, AblationResolution, AblationLayerScaling,
		CrashRecovery, Interconnect, Scheduling, Roofline,
	}
	var outs []*Output
	for _, fn := range fns {
		o, err := fn(opt)
		if err != nil {
			return nil, err
		}
		outs = append(outs, o)
	}
	return outs, nil
}

// ByID returns the named experiment.
func ByID(id string, opt Options) (*Output, error) {
	fns := map[string]func(Options) (*Output, error){
		"fig1": Figure1, "table1": Table1, "table2": Table2, "table3": Table3,
		"table4": Table4, "table5": Table5, "table6": Table6, "table7": Table7,
		"table8": Table8, "table9": Table9, "table10": Table10, "table11": Table11,
		"blockarray": BlockArray, "advection": Advection,
		"ablation-schemes":    AblationPhysicsSchemes,
		"ablation-topology":   AblationRingVsTree,
		"ablation-rounds":     AblationPairwiseRounds,
		"ablation-comm":       AblationCommPatterns,
		"ablation-polar":      AblationPolarTreatment,
		"ablation-sp2":        AblationSP2,
		"ablation-degraded":   AblationDegradedNode,
		"ablation-resolution": AblationResolution,
		"ablation-layers":     AblationLayerScaling,
		"crash-recovery":      CrashRecovery,
		"interconnect":        Interconnect,
		"scheduling":          Scheduling,
		"roofline":            Roofline,
	}
	fn, ok := fns[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	return fn(opt)
}

// IDs lists the valid experiment identifiers.
func IDs() []string {
	return []string{"fig1", "table1", "table2", "table3", "table4", "table5",
		"table6", "table7", "table8", "table9", "table10", "table11",
		"blockarray", "advection", "ablation-schemes", "ablation-topology",
		"ablation-rounds", "ablation-comm", "ablation-polar", "ablation-sp2",
		"ablation-degraded", "ablation-resolution", "ablation-layers",
		"crash-recovery", "interconnect", "scheduling", "roofline"}
}
