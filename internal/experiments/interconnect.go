package experiments

import (
	"fmt"

	"agcm/internal/core"
	"agcm/internal/grid"
	"agcm/internal/machine"
	"agcm/internal/physics"
	"agcm/internal/stats"
	"agcm/internal/topology"
	"agcm/internal/trace"
)

// weightedHops is the byte-weighted mean route length of a run's actual
// traffic — unlike the all-pairs mean (which any bijective placement leaves
// unchanged), it shows how well the placement matches the communication
// pattern.
func weightedHops(net *topology.Network, cm *trace.CommMatrix) float64 {
	var hopBytes, totalBytes float64
	for s := 0; s < cm.Ranks; s++ {
		for d := 0; d < cm.Ranks; d++ {
			if s == d {
				continue
			}
			_, bytes := cm.At(s, d)
			if bytes == 0 {
				continue
			}
			hopBytes += float64(bytes) * float64(net.Hops(s, d))
			totalBytes += float64(bytes)
		}
	}
	if totalBytes == 0 {
		return 0
	}
	return hopBytes / totalBytes
}

// Interconnect measures what the paper's flat machine models hide: the cost
// of the FFT filter's row transpose and the dynamics ghost exchange as a
// function of the physical interconnect and the rank placement.  The same
// 4x8 process mesh runs on the Paragon's 2-D mesh and the T3D's 3-D torus
// under row-major, snake and blocked placements, plus a flat-network
// baseline; the routed runs also replay their traffic through the links to
// expose contention stalls.
//
// The transpose is all-to-all within process rows, so its cost tracks the
// mean route length between row peers; the ghost exchange is
// nearest-neighbour in the process mesh, so it rewards placements that keep
// logical neighbours on adjacent nodes.  No placement wins both everywhere —
// which is the point of making placement an experimental variable.
func Interconnect(opt Options) (*Output, error) {
	spec := grid.TwoByTwoPointFive(9)
	const py, px = 4, 8 // 32 ranks: an 8x4 mesh or 4x4x2 torus

	type machineCase struct {
		model *machine.Model
		topo  string
	}
	cases := []machineCase{
		{machine.Paragon(), "mesh:8x4"},
		{machine.CrayT3D(), "torus:4x4x2"},
	}
	placements := []string{"rowmajor", "snake", "blocked"}

	var tables []*stats.Table
	notes := []string{
		"Flat rows are the calibrated distance-free models the paper's tables use;",
		"routed rows charge dimension-ordered hop latency and injection queueing.",
		"Stall is the post-hoc link-contention replay: time transfers spent queued",
		"behind other senders on shared links (not included in the s/day columns).",
	}
	for _, mc := range cases {
		tbl := &stats.Table{
			Title: fmt.Sprintf("Interconnect: FFT filter + ghost exchange, %s, %dx%d process mesh",
				mc.model.Name, py, px),
			Header: []string{"Network", "Placement", "Traffic hops",
				"Filter s/day", "Comm s/day", "Total s/day", "Stall ms", "Busiest link"},
		}
		base := core.Config{
			Spec: spec, Machine: mc.model,
			MeshPy: py, MeshPx: px,
			Filter:        core.FilterFFT,
			PhysicsScheme: physics.None,
			EventLog:      true,
			// The baseline stays flat even under a harness-wide
			// -topology override: it is the row the routed runs are
			// compared against.
			Topology: "none",
		}

		flat, err := run(base, opt)
		if err != nil {
			return nil, err
		}
		tbl.AddRow("flat", "-", "-",
			fmt.Sprintf("%.3f", flat.FilterTime), fmt.Sprintf("%.3f", flat.CommTime),
			fmt.Sprintf("%.3f", flat.Total), "-", "-")

		for _, pl := range placements {
			cfg := base
			cfg.Topology = mc.topo
			cfg.Placement = pl
			rep, err := run(cfg, opt)
			if err != nil {
				return nil, err
			}
			net := rep.Network
			crep, err := net.Contend(topology.TransfersFromEvents(rep.Raw.Events))
			if err != nil {
				return nil, err
			}
			hot := crep.MostContended(1)
			busiest := "-"
			if len(hot) > 0 && hot[0].Transfers > 0 {
				busiest = hot[0].Name
			}
			tbl.AddRow(cfg.Topology, pl,
				fmt.Sprintf("%.2f", weightedHops(net, trace.NewCommMatrix(rep.Raw))),
				fmt.Sprintf("%.3f", rep.FilterTime), fmt.Sprintf("%.3f", rep.CommTime),
				fmt.Sprintf("%.3f", rep.Total),
				fmt.Sprintf("%.1f", 1e3*crep.TotalStallSeconds), busiest)
		}
		tables = append(tables, tbl)
	}
	return &Output{
		ID:     "interconnect",
		Title:  "Interconnect topology and placement",
		Tables: tables,
		Notes:  notes,
	}, nil
}
