package experiments

// Crash-recovery experiment: the end-to-end proof that the checkpoint
// subsystem, the fault injector and the deterministic simulator compose.
// One run integrates the AGCM with periodic checkpoints and an injected
// rank crash; a fresh machine restarts from the last completed checkpoint
// and must reproduce an uninterrupted reference run bit for bit.

import (
	"errors"
	"fmt"

	"agcm/internal/core"
	"agcm/internal/fault"
	"agcm/internal/grid"
	"agcm/internal/machine"
	"agcm/internal/physics"
	"agcm/internal/sim"
	"agcm/internal/stats"
)

// crashRecoverySteps is the experiment's fixed step budget: long enough for
// several checkpoint intervals, short enough to run three times.
const (
	crashRecoverySteps = 6
	checkpointInterval = 2
	crashVictim        = 3    // world rank removed mid-run
	crashWhenOfRunSpan = 0.75 // crash time as a fraction of the reference run
)

// CrashRecovery runs the reference / crash / restart triple and verifies
// bitwise state equality.  The returned table reports each leg.
func CrashRecovery(opt Options) (*Output, error) {
	spec := grid.TwoByTwoPointFive(9)
	base := core.Config{
		Spec: spec, Machine: machine.CrayT3D(),
		MeshPy: 2, MeshPx: 2,
		Filter:        core.FilterFFTBalanced,
		PhysicsScheme: physics.Pairwise,
		// No warmup: the three legs must agree on absolute step indices.
		WarmupSteps:  -1,
		CaptureState: true,
	}

	// Leg 1: the uninterrupted reference run.
	ref, err := core.Run(base, crashRecoverySteps)
	if err != nil {
		return nil, fmt.Errorf("crash-recovery reference run: %w", err)
	}

	// Leg 2: same model, periodic checkpoints, rank crash mid-run.  The
	// crash instant is virtual time, derived from the reference clock, so
	// the whole scenario is reproducible.
	crashAt := crashWhenOfRunSpan * ref.Raw.MaxClock()
	faulty := base
	faulty.CheckpointEvery = checkpointInterval
	faulty.Fault = &fault.Spec{
		Seed:    1996,
		Crashes: []fault.Crash{{Rank: crashVictim, At: crashAt}},
	}
	crashed, err := core.Run(faulty, crashRecoverySteps)
	var ce *sim.CrashError
	if !errors.As(err, &ce) {
		return nil, fmt.Errorf("crash-recovery: injected crash not reported (err=%v)", err)
	}
	// Restart from the last checkpoint that still leaves steps to run (the
	// crash can in principle land between the final checkpoint and the end
	// of the run).
	cps := crashed.Checkpoints
	for len(cps) > 0 && cps[len(cps)-1].Step >= crashRecoverySteps {
		cps = cps[:len(cps)-1]
	}
	if len(cps) == 0 {
		return nil, fmt.Errorf("crash-recovery: no usable checkpoint completed before the crash at %gs", crashAt)
	}
	last := cps[len(cps)-1]

	// Leg 3: fresh machine, restart from the last checkpoint, finish the
	// remaining steps.
	resume := base
	resume.InitialState = last
	rec, err := core.Run(resume, crashRecoverySteps-last.Step)
	if err != nil {
		return nil, fmt.Errorf("crash-recovery restart run: %w", err)
	}

	identical, firstDiff := compareStates(ref, rec)
	tbl := &stats.Table{
		Title: fmt.Sprintf("Crash recovery: 2x2.5x9 on a 2x2 Cray T3D mesh, crash rank %d at %.3gs, checkpoint every %d steps",
			crashVictim, crashAt, checkpointInterval),
		Header: []string{"Leg", "Steps", "Final step", "Outcome"},
	}
	tbl.AddRow("Reference", fmt.Sprintf("%d", crashRecoverySteps),
		fmt.Sprintf("%d", ref.FinalState.Step), "completed")
	tbl.AddRow("Crashed", fmt.Sprintf("%d", crashRecoverySteps),
		fmt.Sprintf("%d (last checkpoint)", last.Step), ce.Error())
	tbl.AddRow("Restarted", fmt.Sprintf("%d", crashRecoverySteps-last.Step),
		fmt.Sprintf("%d", rec.FinalState.Step), verdict(identical, firstDiff))

	notes := []string{
		fmt.Sprintf("%d checkpoint(s) completed before the crash.", len(crashed.Checkpoints)),
		"The restarted run's final prognostic fields must equal the reference run's bit for bit;",
		"physics load balancing moves columns between ranks but never changes their values.",
	}
	if !identical {
		return nil, fmt.Errorf("crash-recovery: restarted state diverged from reference: %s", firstDiff)
	}
	return &Output{ID: "crash-recovery", Title: "Crash recovery round trip",
		Tables: []*stats.Table{tbl}, Notes: notes}, nil
}

func verdict(identical bool, firstDiff string) string {
	if identical {
		return "bit-identical to reference"
	}
	return "DIVERGED: " + firstDiff
}

// compareStates checks every stored variable of the two final states for
// bitwise equality and describes the first difference.
func compareStates(a, b *core.Report) (bool, string) {
	fa, fb := a.FinalState, b.FinalState
	if fa == nil || fb == nil {
		return false, "missing final state"
	}
	if fa.Step != fb.Step {
		return false, fmt.Sprintf("step %d vs %d", fa.Step, fb.Step)
	}
	if len(fa.Names) != len(fb.Names) {
		return false, fmt.Sprintf("%d vs %d variables", len(fa.Names), len(fb.Names))
	}
	for i, name := range fa.Names {
		if fb.Names[i] != name {
			return false, fmt.Sprintf("variable order %q vs %q", name, fb.Names[i])
		}
		for j := range fa.Data[i] {
			if fa.Data[i][j] != fb.Data[i][j] {
				return false, fmt.Sprintf("variable %q index %d: %g vs %g",
					name, j, fa.Data[i][j], fb.Data[i][j])
			}
		}
	}
	return true, ""
}
