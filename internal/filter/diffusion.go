package filter

import (
	"math"

	"agcm/internal/comm"
	"agcm/internal/grid"
	"agcm/internal/solver"
)

// PolarDiffusion is an alternative polar treatment built from the Section 5
// template components: instead of Fourier filtering, each polar latitude
// circle is smoothed by one backward-Euler step of zonal diffusion,
//
//	(I - K(lat) * Dxx) x_new = x_old,
//
// solved with the distributed periodic tridiagonal solver across the mesh
// row.  The diffusion strength K(lat) is chosen so that the damping of
// every zonal wavenumber is at least as strong as the spectral filter's
// S(s, lat) wherever S < 1, which preserves the CFL-stabilizing property;
// unlike the spectral filter it also over-damps intermediate wavenumbers —
// the accuracy price of the implicit route.
//
// It exists as a counterfactual for the paper's design choice: same
// stabilization, different numerical machinery and communication pattern
// (batched substructured solves instead of a data transpose).
type PolarDiffusion struct {
	cart  *comm.Cart2D
	spec  grid.Spec
	local grid.Local
}

// NewPolarDiffusion builds the implicit-diffusion polar treatment.
func NewPolarDiffusion(cart *comm.Cart2D, spec grid.Spec, local grid.Local) *PolarDiffusion {
	return &PolarDiffusion{cart: cart, spec: spec, local: local}
}

// Name implements Parallel.
func (f *PolarDiffusion) Name() string { return "polar-implicit-diffusion" }

// Strength returns the dimensionless diffusion number K for one latitude
// and filter kind: with K >= 1/(4 r^2), the implicit damping
// 1/(1 + 4K sin^2(theta)) stays at or below the spectral filter's
// (r/sin(theta))^2 wherever that is below one, so the diffusion route
// inherits the spectral filter's CFL protection; a 1.2 safety factor
// absorbs the leapfrog's tolerance.  r = cos(lat)/cos(critLat).
func Strength(lat, critLat float64) float64 {
	r := math.Abs(math.Cos(lat)) / math.Cos(critLat)
	if r >= 1 {
		return 0
	}
	return 1.2 / (4 * r * r)
}

// Apply implements Parallel: every filtered line becomes one periodic
// tridiagonal system; all lines are solved in one batched distributed call
// per Apply, so the collective cost is paid once.
func (f *PolarDiffusion) Apply(vars []Variable) {
	lines := buildLines(f.spec, vars)
	if len(lines) == 0 {
		return
	}
	me := f.cart.MyRow
	w := f.local.Nlon()

	// My lines: the ones whose latitude row this processor row owns.
	var mine []line
	for _, ln := range lines {
		if f.local.Decomp.RowOfLat(ln.j) == me {
			mine = append(mine, ln)
		}
	}
	// Processor rows with no polar rows still participate in nothing —
	// the same load imbalance as the unbalanced FFT filter; the batch
	// solver is collective only over the mesh row, which is uniform.
	if len(mine) == 0 {
		return
	}

	L := len(mine)
	as := make([][]float64, L)
	bs := make([][]float64, L)
	cs := make([][]float64, L)
	ds := make([][]float64, L)
	xs := make([][]float64, L)
	for li, ln := range mine {
		k := Strength(f.spec.LatCenter(ln.j), vars[ln.v].Kind.CritLat())
		row := vars[ln.v].Field.RowSlice(ln.j-f.local.Lat0, ln.k, nil)
		av := make([]float64, w)
		bv := make([]float64, w)
		cv := make([]float64, w)
		for i := 0; i < w; i++ {
			av[i] = -k
			bv[i] = 1 + 2*k
			cv[i] = -k
		}
		as[li], bs[li], cs[li] = av, bv, cv
		ds[li] = row
		xs[li] = make([]float64, w)
	}
	if err := solver.DistributedPeriodicTridiagBatch(f.cart.Row, as, bs, cs, ds, xs); err != nil {
		panic("filter: polar diffusion solve failed: " + err.Error())
	}
	for li, ln := range mine {
		vars[ln.v].Field.SetRowSlice(ln.j-f.local.Lat0, ln.k, xs[li])
	}
}
