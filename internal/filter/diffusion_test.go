package filter

import (
	"fmt"
	"math"
	"testing"

	"agcm/internal/comm"
	"agcm/internal/grid"
	"agcm/internal/machine"
	"agcm/internal/sim"
)

func TestStrength(t *testing.T) {
	crit := Strong.CritLat()
	// At or equatorward of the critical latitude: no diffusion.
	if Strength(crit, crit) != 0 {
		t.Errorf("diffusion at the critical latitude should be zero")
	}
	if Strength(0.1, crit) != 0 {
		t.Errorf("diffusion equatorward of crit should be zero")
	}
	// Poleward: positive and increasing toward the pole.
	k70 := Strength(70*math.Pi/180, crit)
	k85 := Strength(85*math.Pi/180, crit)
	if k70 <= 0 || k85 <= k70 {
		t.Errorf("diffusion strengths k70=%g k85=%g not increasing poleward", k70, k85)
	}
	// Symmetric in hemisphere.
	if Strength(-70*math.Pi/180, crit) != k70 {
		t.Errorf("diffusion not hemisphere-symmetric")
	}
}

func TestStrengthDominatesSpectralDamping(t *testing.T) {
	// The design requirement: the implicit diffusion's damping
	// 1/(1+4K sin^2(pi s/N)) must not exceed S(s, lat) wherever S < 1.
	const n = 144
	crit := Strong.CritLat()
	for _, latDeg := range []float64{50, 65, 80, 88} {
		lat := latDeg * math.Pi / 180
		k := Strength(lat, crit)
		for s := 1; s <= n/2; s++ {
			sigma := math.Sin(math.Pi * float64(s) / n)
			g := 1 / (1 + 4*k*sigma*sigma)
			sDamp := Damping(n, s, lat, crit)
			if sDamp < 1 && g > sDamp+1e-9 {
				t.Fatalf("lat %g s=%d: diffusion damping %g weaker than spectral %g",
					latDeg, s, g, sDamp)
			}
		}
	}
}

func TestPolarDiffusionPreservesZonalMean(t *testing.T) {
	spec := grid.Spec{Nlon: 24, Nlat: 16, Nlayers: 2}
	d, _ := grid.NewDecomp(spec, 2, 2)
	m := sim.New(4, machine.CrayT3D())
	_, err := m.Run(func(p *sim.Proc) error {
		world := comm.World(p)
		cart := comm.NewCart2D(world, 2, 2)
		l := grid.NewLocal(d, cart.MyRow, cart.MyCol)
		f := grid.NewField(l, 1)
		for j := 0; j < l.Nlat(); j++ {
			for i := 0; i < l.Nlon(); i++ {
				for k := 0; k < 2; k++ {
					f.Set(j, i, k, math.Sin(float64(l.GlobalLon(i)))*float64(k+1)+3)
				}
			}
		}
		vars := []Variable{{Name: "u", Kind: Strong, Field: f}}
		// Compute the pre-filter zonal means of my local filtered rows.
		type key struct{ j, k int }
		means := map[key]float64{}
		for j := 0; j < l.Nlat(); j++ {
			if !IsFiltered(spec, Strong, l.GlobalLat(j)) {
				continue
			}
			for k := 0; k < 2; k++ {
				row := f.RowSlice(j, k, nil)
				sum := 0.0
				for _, v := range row {
					sum += v
				}
				// Sum across the full circle.
				means[key{j, k}] = cart.Row.AllreduceScalar(sum, comm.SumOp)
			}
		}
		NewPolarDiffusion(cart, spec, l).Apply(vars)
		for j := 0; j < l.Nlat(); j++ {
			if !IsFiltered(spec, Strong, l.GlobalLat(j)) {
				continue
			}
			for k := 0; k < 2; k++ {
				row := f.RowSlice(j, k, nil)
				sum := 0.0
				for _, v := range row {
					sum += v
				}
				got := cart.Row.AllreduceScalar(sum, comm.SumOp)
				if math.Abs(got-means[key{j, k}]) > 1e-9 {
					return fmt.Errorf("zonal mean changed at j=%d k=%d: %g -> %g",
						j, k, means[key{j, k}], got)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPolarDiffusionDecompositionInvariant(t *testing.T) {
	// The diffusion result must not depend on the processor mesh.
	spec := grid.Spec{Nlon: 36, Nlat: 24, Nlayers: 3}
	runIt := func(py, px int) [][]float64 {
		d, err := grid.NewDecomp(spec, py, px)
		if err != nil {
			t.Fatal(err)
		}
		out := make([][]float64, 4)
		m := sim.New(py*px, machine.CrayT3D())
		_, err = m.Run(func(p *sim.Proc) error {
			world := comm.World(p)
			cart := comm.NewCart2D(world, py, px)
			l := grid.NewLocal(d, cart.MyRow, cart.MyCol)
			vars := newVars(l)
			NewPolarDiffusion(cart, spec, l).Apply(vars)
			for vi, v := range vars {
				g := grid.Gather(world, cart, v.Field)
				if world.Rank() == 0 {
					out[vi] = g
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := runIt(1, 1)
	for _, mesh := range [][2]int{{1, 4}, {3, 2}, {4, 3}} {
		got := runIt(mesh[0], mesh[1])
		for vi := range want {
			for idx := range want[vi] {
				if math.Abs(got[vi][idx]-want[vi][idx]) > 1e-8 {
					t.Fatalf("mesh %v: variable %d index %d differs: %g vs %g",
						mesh, vi, idx, got[vi][idx], want[vi][idx])
				}
			}
		}
	}
}

func TestPolarDiffusionDampsShortWaves(t *testing.T) {
	spec := grid.Spec{Nlon: 32, Nlat: 16, Nlayers: 1}
	d, _ := grid.NewDecomp(spec, 1, 1)
	m := sim.New(1, machine.CrayT3D())
	_, err := m.Run(func(p *sim.Proc) error {
		world := comm.World(p)
		cart := comm.NewCart2D(world, 1, 1)
		l := grid.NewLocal(d, 0, 0)
		f := grid.NewField(l, 1)
		// A 2-grid-interval wave on the polar-most row.
		for i := 0; i < 32; i++ {
			f.Set(0, i, 0, math.Pow(-1, float64(i)))
		}
		NewPolarDiffusion(cart, spec, l).Apply([]Variable{{Name: "u", Kind: Strong, Field: f}})
		max := 0.0
		for i := 0; i < 32; i++ {
			if v := math.Abs(f.At(0, i, 0)); v > max {
				max = v
			}
		}
		wantMax := Damping(32, 16, spec.LatCenter(0), Strong.CritLat())
		if max > wantMax+1e-9 {
			return fmt.Errorf("shortest wave damped to %g, need <= %g", max, wantMax)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPolarDiffusionName(t *testing.T) {
	spec := grid.Spec{Nlon: 8, Nlat: 8, Nlayers: 1}
	d, _ := grid.NewDecomp(spec, 1, 1)
	m := sim.New(1, machine.CrayT3D())
	_, err := m.Run(func(p *sim.Proc) error {
		cart := comm.NewCart2D(comm.World(p), 1, 1)
		l := grid.NewLocal(d, 0, 0)
		if got := NewPolarDiffusion(cart, spec, l).Name(); got != "polar-implicit-diffusion" {
			return fmt.Errorf("name %q", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
