package filter

import (
	"agcm/internal/comm"
	"agcm/internal/fft"
	"agcm/internal/grid"
)

// RowwiseFFT implements the first of the two FFT parallelizations Section
// 3.2 considers — "develop a parallel one dimensional FFT procedure for
// processors on the same rows" — the approach the authors analysed and
// rejected in favour of the data transpose.  Each mesh row assembles its
// filtered slab with a recursive-doubling allgather (the O(log P)-message,
// larger-volume pattern of the paper's analysis) and every processor then
// transforms the full latitude circles redundantly, keeping only its own
// longitude segment.  Fewer, larger messages than the transpose; duplicate
// arithmetic and no load balancing — the measured communication ablation
// shows why the paper chose the other route.
type RowwiseFFT struct {
	cart  *comm.Cart2D
	spec  grid.Spec
	local grid.Local
	rf    *rowFilter

	// dampCache holds the damping profiles indexed [kind][global j].
	dampCache [2][][]float64
}

// NewRowwiseFFT builds the rejected-alternative filter for this rank.
func NewRowwiseFFT(cart *comm.Cart2D, spec grid.Spec, local grid.Local) *RowwiseFFT {
	f := &RowwiseFFT{
		cart: cart, spec: spec, local: local,
		rf: newRowFilter(spec.Nlon),
	}
	for k := range f.dampCache {
		f.dampCache[k] = make([][]float64, spec.Nlat)
	}
	return f
}

// Name implements Parallel.
func (f *RowwiseFFT) Name() string { return "fft-rowwise" }

func (f *RowwiseFFT) damping(k Kind, j int) []float64 {
	if d := f.dampCache[k][j]; d != nil {
		return d
	}
	d := DampingRow(f.spec.Nlon, f.spec.LatCenter(j), k.CritLat())
	f.dampCache[k][j] = d
	return d
}

// Apply implements Parallel: one allgather per variable slab, redundant
// full-row FFTs, write back own segments.
func (f *RowwiseFFT) Apply(vars []Variable) {
	n := f.spec.Nlon
	w := f.local.Nlon()
	lo, _ := f.local.Decomp.LonRange(f.cart.MyCol)
	full := make([]float64, n)

	for _, v := range vars {
		// Local filtered rows of this variable (same on the whole mesh
		// row); equatorial mesh rows stay idle.
		var rows []int
		for localJ := 0; localJ < f.local.Nlat(); localJ++ {
			if IsFiltered(f.spec, v.Kind, f.local.GlobalLat(localJ)) {
				rows = append(rows, localJ)
			}
		}
		if len(rows) == 0 {
			continue
		}
		// Pack all (row, layer) segments, gather the slab once.
		buf := make([]float64, 0, len(rows)*f.spec.Nlayers*w)
		for _, localJ := range rows {
			for k := 0; k < f.spec.Nlayers; k++ {
				buf = append(buf, v.Field.RowSlice(localJ, k, nil)...)
			}
		}
		parts := f.cart.Row.AllgathervTree(buf)
		widths := make([]int, f.cart.Px)
		offs := make([]int, f.cart.Px)
		pos := 0
		for col := 0; col < f.cart.Px; col++ {
			a, b := f.local.Decomp.LonRange(col)
			widths[col] = b - a
			offs[col] = pos
			pos += b - a
		}
		// Transform every line redundantly; keep my segment.
		for li, localJ := range rows {
			damp := f.damping(v.Kind, f.local.GlobalLat(localJ))
			for k := 0; k < f.spec.Nlayers; k++ {
				line := li*f.spec.Nlayers + k
				for col := 0; col < f.cart.Px; col++ {
					copy(full[offs[col]:offs[col]+widths[col]],
						parts[col][line*widths[col]:(line+1)*widths[col]])
				}
				f.rf.apply(damp, full)
				// Redundant arithmetic: every rank pays the full-row
				// transform cost.
				f.cart.World.Proc().Compute(2*fft.Flops(n) + 4*float64(n))
				v.Field.SetRowSlice(localJ, k, full[lo:lo+w])
			}
		}
	}
}
