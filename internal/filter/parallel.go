package filter

import (
	"fmt"

	"agcm/internal/comm"
	"agcm/internal/fft"
	"agcm/internal/grid"
)

// growf returns buf resized to n float64s, reallocating only when capacity
// is insufficient.  Contents are unspecified.
func growf(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// growi is growf for int slices.
func growi(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// growSlices resizes a slice-of-slices to n entries, preserving existing
// entries (and their backing arrays, so per-entry reuse keeps paying off).
func growSlices(buf [][]float64, n int) [][]float64 {
	if cap(buf) < n {
		out := make([][]float64, n)
		copy(out, buf)
		return out
	}
	return buf[:n]
}

// Tags for the filter's column-direction traffic (user tag range).
const (
	tagBalance = 11 + iota
	tagBalanceBack
)

// Topology selects the data motion of the convolution filter's row
// gathering, matching the two implementations in the original parallel AGCM.
type Topology int

const (
	// Ring circulates segments around the processor ring in the
	// longitudinal direction: P*logP-ish message behaviour, N*P volume.
	Ring Topology = iota
	// Tree gathers and rebroadcasts along binary trees: O(2P) messages.
	Tree
)

// String returns the topology name.
func (t Topology) String() string {
	if t == Ring {
		return "ring"
	}
	return "tree"
}

// Parallel is a parallel filtering algorithm applied collectively by every
// rank of the mesh each time step.
type Parallel interface {
	// Name identifies the variant in reports.
	Name() string
	// Apply filters all variables in place.  Collective: every rank of
	// the mesh must call it with the same variable list.
	Apply(vars []Variable)
}

// --- Convolution filter (the original code) ------------------------------

// Convolution is the original AGCM's physical-space filter: each filtered
// latitude circle is gathered onto every processor of its mesh row and the
// O(N^2) circular convolution is evaluated pointwise, one variable and one
// line at a time.  Only polar mesh rows have work: the severe load
// imbalance the paper measures is inherent.
type Convolution struct {
	cart  *comm.Cart2D
	spec  grid.Spec
	local grid.Local
	topo  Topology

	// coeffCache holds the convolution kernels indexed [kind][global j] —
	// a flat table rather than a map because the slab loop consults it
	// once per line.
	coeffCache [2][][]float64

	// Persistent per-step scratch: the slab loop reuses these across calls
	// so a steady-state Apply allocates nothing on the ring topology.
	full, dst, buf []float64
	row            []float64
	lines          [][2]int
	widths, offs   []int
	gather         [][]float64 // AllgathervInto receive buffers, one per column
}

// NewConvolution builds the original filter for this rank's subdomain.
func NewConvolution(cart *comm.Cart2D, spec grid.Spec, local grid.Local, topo Topology) *Convolution {
	c := &Convolution{cart: cart, spec: spec, local: local, topo: topo}
	for k := range c.coeffCache {
		c.coeffCache[k] = make([][]float64, spec.Nlat)
	}
	// The mesh-row geometry is fixed for the lifetime of the filter.
	c.widths = make([]int, cart.Px)
	c.offs = make([]int, cart.Px)
	pos := 0
	for col := 0; col < cart.Px; col++ {
		a, b := local.Decomp.LonRange(col)
		c.widths[col] = b - a
		c.offs[col] = pos
		pos += b - a
	}
	// full carries convPad wraparound values past the circle so the
	// convolution kernel runs without modulo indexing.
	c.full = make([]float64, spec.Nlon+convPad)
	c.dst = make([]float64, local.Nlon())
	c.row = make([]float64, local.Nlon())
	c.gather = make([][]float64, cart.Px)
	return c
}

// Name implements Parallel.
func (c *Convolution) Name() string { return "convolution-" + c.topo.String() }

func (c *Convolution) coefficients(k Kind, j int) []float64 {
	if co := c.coeffCache[k][j]; co != nil {
		return co
	}
	co := Coefficients(DampingRow(c.spec.Nlon, c.spec.LatCenter(j), k.CritLat()))
	c.coeffCache[k][j] = co
	return co
}

// Apply implements Parallel.  As in the original code, variables are
// processed one at a time, layer by layer (the F77 code's 2-D slabs): for
// each (variable, layer), every rank in a mesh row packs its segments of
// the locally filtered rows into one buffer, the buffers circulate around
// the ring (or through the tree), and each rank convolves its own longitude
// segment of every reassembled line.
func (c *Convolution) Apply(vars []Variable) {
	for _, v := range vars {
		for k := 0; k < c.spec.Nlayers; k++ {
			c.applySlab(v, k)
		}
	}
}

// applySlab filters one variable's layer-k slab.  All staging lives in the
// filter's persistent scratch; on the ring topology the steady state
// allocates nothing.
func (c *Convolution) applySlab(v Variable, k int) {
	n := c.spec.Nlon
	w := c.local.Nlon()
	lo, _ := c.local.Decomp.LonRange(c.cart.MyCol)

	// The filtered (localJ, k) lines; identical across the mesh row, so
	// the collective participation is consistent.
	c.lines = c.lines[:0]
	for localJ := 0; localJ < c.local.Nlat(); localJ++ {
		if IsFiltered(c.spec, v.Kind, c.local.GlobalLat(localJ)) {
			c.lines = append(c.lines, [2]int{localJ, k})
		}
	}
	if len(c.lines) == 0 {
		return // equatorial mesh rows idle: the load imbalance
	}
	// Pack this slab's segments into one buffer per rank.
	c.buf = c.buf[:0]
	for _, ln := range c.lines {
		c.row = v.Field.RowSlice(ln[0], ln[1], c.row)
		c.buf = append(c.buf, c.row...)
	}
	var parts [][]float64
	if c.topo == Ring {
		parts = c.cart.Row.AllgathervInto(c.buf, c.gather)
	} else {
		// The tree gather hands buffers over zero-copy, so it must not
		// alias the reusable scratch; it keeps the per-call allocation.
		parts = c.cart.Row.AllgathervTree(append([]float64(nil), c.buf...))
	}
	for li, ln := range c.lines {
		for col := 0; col < c.cart.Px; col++ {
			copy(c.full[c.offs[col]:c.offs[col]+c.widths[col]],
				parts[col][li*c.widths[col]:(li+1)*c.widths[col]])
		}
		for q := 0; q < convPad; q++ {
			c.full[n+q] = c.full[q%n]
		}
		coeffs := c.coefficients(v.Kind, c.local.GlobalLat(ln[0]))
		convolveExt(coeffs, c.full, c.dst, lo)
		// The physical-space sum costs 2*N flops per point.
		c.cart.World.Proc().Compute(float64(2 * n * w))
		v.Field.SetRowSlice(ln[0], ln[1], c.dst)
	}
}

// --- FFT filter, with and without load balancing -------------------------

// FFTFilter is the paper's optimized filter: filtered lines are (optionally)
// redistributed evenly over the processor mesh in the latitudinal direction
// (Figure 2), transposed within mesh rows so each processor holds complete
// latitude circles (Figure 3), filtered by local FFTs, and restored.
// All weakly and strongly filtered variables are processed concurrently —
// the reorganization Section 3.3 describes.
type FFTFilter struct {
	cart     *comm.Cart2D
	spec     grid.Spec
	local    grid.Local
	balanced bool
	rf       *rowFilter

	// dampCache holds the damping profiles indexed [kind][global j].
	dampCache [2][][]float64

	// Static mesh-row geometry, computed once.
	widths, lonOff []int

	// Persistent per-step scratch for Apply's seven phases.  Every send
	// from these buffers goes through the pooled-copy comm paths and every
	// receive lands back here via *Into, so the steady state allocates
	// nothing.
	initOwner, finalOwner []int
	segs                  [][]float64
	segArena              []float64
	myWork, sub, myBlock  []int
	parts                 [][]float64 // transpose send staging, per column
	tOut                  [][]float64 // transpose receive buffers
	full                  [][]float64 // complete latitude circles
	back                  [][]float64 // reverse-transpose send staging
	gotOut                [][]float64 // reverse-transpose receive buffers
	colOffs               []int

	// redistribute staging (two calls per Apply when balanced).
	rSend, rRecv  [][]float64
	rCount, rOffs []int

	// Cached line enumeration (the filtered-row sets are fixed per Kind).
	lineBuf   []line
	rowsCache map[Kind][]int
}

// NewFFT builds the transpose-based FFT filter.  With balanced=true the
// generic row-balancing module spreads the filtered lines over the whole
// mesh first; with balanced=false the polar processors keep all the work
// (the middle column of the paper's Tables 8-11).
func NewFFT(cart *comm.Cart2D, spec grid.Spec, local grid.Local, balanced bool) *FFTFilter {
	f := &FFTFilter{
		cart: cart, spec: spec, local: local, balanced: balanced,
		rf: newRowFilter(spec.Nlon),
	}
	for k := range f.dampCache {
		f.dampCache[k] = make([][]float64, spec.Nlat)
	}
	px, py := cart.Px, cart.Py
	f.widths = make([]int, px)
	f.lonOff = make([]int, px)
	for c := 0; c < px; c++ {
		lo, hi := local.Decomp.LonRange(c)
		f.widths[c], f.lonOff[c] = hi-lo, lo
	}
	f.parts = make([][]float64, px)
	f.tOut = make([][]float64, px)
	f.back = make([][]float64, px)
	f.gotOut = make([][]float64, px)
	f.colOffs = make([]int, px)
	f.rSend = make([][]float64, py)
	f.rRecv = make([][]float64, py)
	f.rCount = make([]int, py)
	f.rOffs = make([]int, py)
	f.rowsCache = make(map[Kind][]int)
	return f
}

// buildLines enumerates the lines to filter in the same canonical
// (variable, row, layer) order as the package-level buildLines, reusing the
// cached per-Kind row sets and the line buffer so steady-state calls
// allocate nothing.
func (f *FFTFilter) buildLines(vars []Variable) []line {
	f.lineBuf = f.lineBuf[:0]
	for vi, v := range vars {
		rows, ok := f.rowsCache[v.Kind]
		if !ok {
			rows = Rows(f.spec, v.Kind)
			f.rowsCache[v.Kind] = rows
		}
		for _, j := range rows {
			for k := 0; k < f.spec.Nlayers; k++ {
				f.lineBuf = append(f.lineBuf, line{v: vi, j: j, k: k})
			}
		}
	}
	return f.lineBuf
}

// Name implements Parallel.
func (f *FFTFilter) Name() string {
	if f.balanced {
		return "fft-load-balanced"
	}
	return "fft"
}

func (f *FFTFilter) damping(k Kind, j int) []float64 {
	if d := f.dampCache[k][j]; d != nil {
		return d
	}
	d := DampingRow(f.spec.Nlon, f.spec.LatCenter(j), k.CritLat())
	f.dampCache[k][j] = d
	return d
}

// blockOwners assigns n items to p owners in contiguous blocks sized by the
// Eq. (3) targets, returning the owner of each item.
func blockOwners(n, p int) []int {
	return blockOwnersInto(make([]int, 0, n), n, p)
}

// blockOwnersInto is blockOwners into a caller-owned buffer (grown from
// dst[:0] as needed).  The block sizes are the loadbalance.Targets formula:
// floor(n/p) per owner, the first n%p owners taking one extra.
func blockOwnersInto(dst []int, n, p int) []int {
	dst = dst[:0]
	base, rem := n/p, n%p
	for owner := 0; owner < p; owner++ {
		t := base
		if owner < rem {
			t++
		}
		for c := 0; c < t; c++ {
			dst = append(dst, owner)
		}
	}
	return dst
}

// Apply implements Parallel.  All seven phases stage through the filter's
// persistent scratch buffers, so a steady-state call allocates nothing.
func (f *FFTFilter) Apply(vars []Variable) {
	lines := f.buildLines(vars)
	if len(lines) == 0 {
		return
	}
	d := f.local.Decomp
	py, px := f.cart.Py, f.cart.Px
	me := f.cart.MyRow
	w := f.local.Nlon()

	// Ownership before and after the balancing redistribution.  Both are
	// derived locally and identically on every rank.
	f.initOwner = growi(f.initOwner, len(lines))
	initOwner := f.initOwner
	for l, ln := range lines {
		initOwner[l] = d.RowOfLat(ln.j)
	}
	finalOwner := initOwner
	if f.balanced {
		f.finalOwner = blockOwnersInto(f.finalOwner, len(lines), py)
		finalOwner = f.finalOwner
	}

	// Phase 1: extract the local longitude segments of my lines into the
	// segment arena.
	f.segs = growSlices(f.segs, len(lines))
	segs := f.segs
	mine := 0
	for l := range lines {
		segs[l] = nil
		if initOwner[l] == me {
			mine++
		}
	}
	f.segArena = growf(f.segArena, mine*w)
	pos := 0
	for l, ln := range lines {
		if initOwner[l] != me {
			continue
		}
		seg := f.segArena[pos : pos+w]
		pos += w
		segs[l] = vars[ln.v].Field.RowSlice(ln.j-f.local.Lat0, ln.k, seg)
	}

	// Phase 2: redistribute segments along the mesh column so each
	// processor row holds its Eq. (3) share of lines.
	if f.balanced {
		f.redistribute(lines, segs, initOwner, finalOwner, tagBalance)
	}

	// myWork: the lines this processor row filters, in canonical order.
	f.myWork = f.myWork[:0]
	for l := range lines {
		if finalOwner[l] == me {
			f.myWork = append(f.myWork, l)
		}
	}
	myWork := f.myWork

	// Phase 3: transpose within the mesh row (Figure 3): sub-block c of
	// myWork becomes complete latitude circles on mesh column c.
	f.sub = blockOwnersInto(f.sub, len(myWork), px)
	sub := f.sub
	for c := range f.parts {
		f.parts[c] = f.parts[c][:0]
	}
	for t, l := range myWork {
		f.parts[sub[t]] = append(f.parts[sub[t]], segs[l]...)
	}
	recv := f.cart.Row.AlltoallvInto(f.parts, f.tOut)

	f.myBlock = f.myBlock[:0]
	for t := range myWork {
		if sub[t] == f.cart.MyCol {
			f.myBlock = append(f.myBlock, t)
		}
	}
	myBlock := f.myBlock
	f.full = growSlices(f.full, len(myBlock))
	full := f.full
	for bi := range full {
		full[bi] = growf(full[bi], f.spec.Nlon)
	}
	for c := 0; c < px; c++ {
		buf := recv[c]
		if len(buf) != len(myBlock)*f.widths[c] {
			panic(fmt.Sprintf("filter: transpose recv from col %d has %d values, want %d",
				c, len(buf), len(myBlock)*f.widths[c]))
		}
		for bi := range myBlock {
			copy(full[bi][f.lonOff[c]:f.lonOff[c]+f.widths[c]], buf[bi*f.widths[c]:(bi+1)*f.widths[c]])
		}
	}

	// Phase 4: local FFT filtering of complete circles.
	n := f.spec.Nlon
	for bi, t := range myBlock {
		ln := lines[myWork[t]]
		f.rf.apply(f.damping(vars[ln.v].Kind, ln.j), full[bi])
		f.cart.World.Proc().Compute(2*fft.Flops(n) + 4*float64(n))
	}

	// Phase 5: reverse transpose.
	for c := 0; c < px; c++ {
		buf := f.back[c][:0]
		for bi := range myBlock {
			buf = append(buf, full[bi][f.lonOff[c]:f.lonOff[c]+f.widths[c]]...)
		}
		f.back[c] = buf
	}
	got := f.cart.Row.AlltoallvInto(f.back, f.gotOut)
	for c := range f.colOffs {
		f.colOffs[c] = 0
	}
	for t, l := range myWork {
		c := sub[t]
		segs[l] = got[c][f.colOffs[c] : f.colOffs[c]+w]
		f.colOffs[c] += w
	}

	// Phase 6: reverse redistribution back to the home processor rows.
	if f.balanced {
		f.redistribute(lines, segs, finalOwner, initOwner, tagBalanceBack)
	}

	// Phase 7: write the filtered segments back into the fields.
	for l, ln := range lines {
		if initOwner[l] != me {
			continue
		}
		vars[ln.v].Field.SetRowSlice(ln.j-f.local.Lat0, ln.k, segs[l])
	}
}

// redistribute moves each line's segment from its `from` owner to its `to`
// owner along the mesh column, one message per (src, dst) pair, preserving
// the canonical line order inside every message.  Sends are pooled copies
// and receives land in the filter's persistent staging, whose contents stay
// valid (referenced through segs) until the next redistribute call — by
// which time Apply has rebound every live segment elsewhere.
func (f *FFTFilter) redistribute(lines []line, segs [][]float64, from, to []int, tag int) {
	me := f.cart.MyRow
	py := f.cart.Py
	w := f.local.Nlon()

	for dst := range f.rSend {
		f.rSend[dst] = f.rSend[dst][:0]
	}
	for l := range lines {
		if from[l] == me && to[l] != me {
			f.rSend[to[l]] = append(f.rSend[to[l]], segs[l]...)
			segs[l] = nil
		}
	}
	for dst := 0; dst < py; dst++ {
		if dst != me && len(f.rSend[dst]) > 0 {
			f.cart.Col.SendCopy(dst, tag, f.rSend[dst])
		}
	}
	for src := range f.rCount {
		f.rCount[src] = 0
	}
	for l := range lines {
		if to[l] == me && from[l] != me {
			f.rCount[from[l]]++
		}
	}
	for src := 0; src < py; src++ {
		if f.rCount[src] > 0 {
			f.rRecv[src] = f.cart.Col.RecvInto(src, tag, f.rRecv[src])
		}
	}
	for src := range f.rOffs {
		f.rOffs[src] = 0
	}
	for l := range lines {
		if to[l] == me && from[l] != me {
			src := from[l]
			segs[l] = f.rRecv[src][f.rOffs[src] : f.rOffs[src]+w]
			f.rOffs[src] += w
		}
	}
}
