package filter

import (
	"fmt"

	"agcm/internal/comm"
	"agcm/internal/fft"
	"agcm/internal/grid"
	"agcm/internal/loadbalance"
)

// Tags for the filter's column-direction traffic (user tag range).
const (
	tagBalance = 11 + iota
	tagBalanceBack
)

// Topology selects the data motion of the convolution filter's row
// gathering, matching the two implementations in the original parallel AGCM.
type Topology int

const (
	// Ring circulates segments around the processor ring in the
	// longitudinal direction: P*logP-ish message behaviour, N*P volume.
	Ring Topology = iota
	// Tree gathers and rebroadcasts along binary trees: O(2P) messages.
	Tree
)

// String returns the topology name.
func (t Topology) String() string {
	if t == Ring {
		return "ring"
	}
	return "tree"
}

// Parallel is a parallel filtering algorithm applied collectively by every
// rank of the mesh each time step.
type Parallel interface {
	// Name identifies the variant in reports.
	Name() string
	// Apply filters all variables in place.  Collective: every rank of
	// the mesh must call it with the same variable list.
	Apply(vars []Variable)
}

// --- Convolution filter (the original code) ------------------------------

// Convolution is the original AGCM's physical-space filter: each filtered
// latitude circle is gathered onto every processor of its mesh row and the
// O(N^2) circular convolution is evaluated pointwise, one variable and one
// line at a time.  Only polar mesh rows have work: the severe load
// imbalance the paper measures is inherent.
type Convolution struct {
	cart  *comm.Cart2D
	spec  grid.Spec
	local grid.Local
	topo  Topology

	coeffCache map[coeffKey][]float64
}

type coeffKey struct {
	kind Kind
	j    int
}

// NewConvolution builds the original filter for this rank's subdomain.
func NewConvolution(cart *comm.Cart2D, spec grid.Spec, local grid.Local, topo Topology) *Convolution {
	return &Convolution{
		cart: cart, spec: spec, local: local, topo: topo,
		coeffCache: make(map[coeffKey][]float64),
	}
}

// Name implements Parallel.
func (c *Convolution) Name() string { return "convolution-" + c.topo.String() }

func (c *Convolution) coefficients(k Kind, j int) []float64 {
	key := coeffKey{k, j}
	if co, ok := c.coeffCache[key]; ok {
		return co
	}
	co := Coefficients(DampingRow(c.spec.Nlon, c.spec.LatCenter(j), k.CritLat()))
	c.coeffCache[key] = co
	return co
}

// Apply implements Parallel.  As in the original code, variables are
// processed one at a time, layer by layer (the F77 code's 2-D slabs): for
// each (variable, layer), every rank in a mesh row packs its segments of
// the locally filtered rows into one buffer, the buffers circulate around
// the ring (or through the tree), and each rank convolves its own longitude
// segment of every reassembled line.
func (c *Convolution) Apply(vars []Variable) {
	for _, v := range vars {
		for k := 0; k < c.spec.Nlayers; k++ {
			c.applySlab(v, k)
		}
	}
}

// applySlab filters one variable's layer-k slab.
func (c *Convolution) applySlab(v Variable, k int) {
	n := c.spec.Nlon
	w := c.local.Nlon()
	full := make([]float64, n)
	dst := make([]float64, w)
	lo, _ := c.local.Decomp.LonRange(c.cart.MyCol)

	// The filtered (localJ, k) lines; identical across the mesh row, so
	// the collective participation is consistent.
	var lines [][2]int
	for localJ := 0; localJ < c.local.Nlat(); localJ++ {
		if IsFiltered(c.spec, v.Kind, c.local.GlobalLat(localJ)) {
			lines = append(lines, [2]int{localJ, k})
		}
	}
	if len(lines) == 0 {
		return // equatorial mesh rows idle: the load imbalance
	}
	// Pack this slab's segments into one buffer per rank.
	buf := make([]float64, 0, len(lines)*w)
	for _, ln := range lines {
		buf = append(buf, v.Field.RowSlice(ln[0], ln[1], nil)...)
	}
	var parts [][]float64
	if c.topo == Ring {
		parts = c.cart.Row.Allgatherv(buf)
	} else {
		parts = c.cart.Row.AllgathervTree(buf)
	}
	widths := make([]int, c.cart.Px)
	offs := make([]int, c.cart.Px)
	pos := 0
	for col := 0; col < c.cart.Px; col++ {
		a, b := c.local.Decomp.LonRange(col)
		widths[col] = b - a
		offs[col] = pos
		pos += b - a
	}
	for li, ln := range lines {
		for col := 0; col < c.cart.Px; col++ {
			copy(full[offs[col]:offs[col]+widths[col]],
				parts[col][li*widths[col]:(li+1)*widths[col]])
		}
		coeffs := c.coefficients(v.Kind, c.local.GlobalLat(ln[0]))
		ApplyRowConvolution(coeffs, full, dst, lo)
		// The physical-space sum costs 2*N flops per point.
		c.cart.World.Proc().Compute(float64(2 * n * w))
		v.Field.SetRowSlice(ln[0], ln[1], dst)
	}
}

// --- FFT filter, with and without load balancing -------------------------

// FFTFilter is the paper's optimized filter: filtered lines are (optionally)
// redistributed evenly over the processor mesh in the latitudinal direction
// (Figure 2), transposed within mesh rows so each processor holds complete
// latitude circles (Figure 3), filtered by local FFTs, and restored.
// All weakly and strongly filtered variables are processed concurrently —
// the reorganization Section 3.3 describes.
type FFTFilter struct {
	cart     *comm.Cart2D
	spec     grid.Spec
	local    grid.Local
	balanced bool
	rf       *rowFilter

	dampCache map[coeffKey][]float64
}

// NewFFT builds the transpose-based FFT filter.  With balanced=true the
// generic row-balancing module spreads the filtered lines over the whole
// mesh first; with balanced=false the polar processors keep all the work
// (the middle column of the paper's Tables 8-11).
func NewFFT(cart *comm.Cart2D, spec grid.Spec, local grid.Local, balanced bool) *FFTFilter {
	return &FFTFilter{
		cart: cart, spec: spec, local: local, balanced: balanced,
		rf:        newRowFilter(spec.Nlon),
		dampCache: make(map[coeffKey][]float64),
	}
}

// Name implements Parallel.
func (f *FFTFilter) Name() string {
	if f.balanced {
		return "fft-load-balanced"
	}
	return "fft"
}

func (f *FFTFilter) damping(k Kind, j int) []float64 {
	key := coeffKey{k, j}
	if d, ok := f.dampCache[key]; ok {
		return d
	}
	d := DampingRow(f.spec.Nlon, f.spec.LatCenter(j), k.CritLat())
	f.dampCache[key] = d
	return d
}

// blockOwners assigns n items to p owners in contiguous blocks sized by the
// Eq. (3) targets, returning the owner of each item.
func blockOwners(n, p int) []int {
	targets := loadbalance.Targets(n, p)
	owners := make([]int, n)
	idx := 0
	for owner, t := range targets {
		for c := 0; c < t; c++ {
			owners[idx] = owner
			idx++
		}
	}
	return owners
}

// Apply implements Parallel.
func (f *FFTFilter) Apply(vars []Variable) {
	lines := buildLines(f.spec, vars)
	if len(lines) == 0 {
		return
	}
	d := f.local.Decomp
	py, px := f.cart.Py, f.cart.Px
	me := f.cart.MyRow
	w := f.local.Nlon()

	// Ownership before and after the balancing redistribution.  Both are
	// derived locally and identically on every rank.
	initOwner := make([]int, len(lines))
	for l, ln := range lines {
		initOwner[l] = d.RowOfLat(ln.j)
	}
	finalOwner := initOwner
	if f.balanced {
		finalOwner = blockOwners(len(lines), py)
	}

	// Phase 1: extract the local longitude segments of my lines.
	segs := make([][]float64, len(lines))
	for l, ln := range lines {
		if initOwner[l] != me {
			continue
		}
		segs[l] = vars[ln.v].Field.RowSlice(ln.j-f.local.Lat0, ln.k, nil)
	}

	// Phase 2: redistribute segments along the mesh column so each
	// processor row holds its Eq. (3) share of lines.
	if f.balanced {
		f.redistribute(lines, segs, initOwner, finalOwner, tagBalance)
	}

	// myWork: the lines this processor row filters, in canonical order.
	var myWork []int
	for l := range lines {
		if finalOwner[l] == me {
			myWork = append(myWork, l)
		}
	}

	// Phase 3: transpose within the mesh row (Figure 3): sub-block c of
	// myWork becomes complete latitude circles on mesh column c.
	sub := blockOwners(len(myWork), px)
	parts := make([][]float64, px)
	for t, l := range myWork {
		parts[sub[t]] = append(parts[sub[t]], segs[l]...)
	}
	recv := f.cart.Row.Alltoallv(parts)

	var myBlock []int // indices t into myWork owned by my column
	for t := range myWork {
		if sub[t] == f.cart.MyCol {
			myBlock = append(myBlock, t)
		}
	}
	widths := make([]int, px)
	lonOff := make([]int, px)
	for c := 0; c < px; c++ {
		lo, hi := d.LonRange(c)
		widths[c], lonOff[c] = hi-lo, lo
	}
	full := make([][]float64, len(myBlock))
	for bi := range full {
		full[bi] = make([]float64, f.spec.Nlon)
	}
	for c := 0; c < px; c++ {
		buf := recv[c]
		if len(buf) != len(myBlock)*widths[c] {
			panic(fmt.Sprintf("filter: transpose recv from col %d has %d values, want %d",
				c, len(buf), len(myBlock)*widths[c]))
		}
		for bi := range myBlock {
			copy(full[bi][lonOff[c]:lonOff[c]+widths[c]], buf[bi*widths[c]:(bi+1)*widths[c]])
		}
	}

	// Phase 4: local FFT filtering of complete circles.
	n := f.spec.Nlon
	for bi, t := range myBlock {
		ln := lines[myWork[t]]
		f.rf.apply(f.damping(vars[ln.v].Kind, ln.j), full[bi])
		f.cart.World.Proc().Compute(2*fft.Flops(n) + 4*float64(n))
	}

	// Phase 5: reverse transpose.
	back := make([][]float64, px)
	for c := 0; c < px; c++ {
		buf := make([]float64, 0, len(myBlock)*widths[c])
		for bi := range myBlock {
			buf = append(buf, full[bi][lonOff[c]:lonOff[c]+widths[c]]...)
		}
		back[c] = buf
	}
	got := f.cart.Row.Alltoallv(back)
	offs := make([]int, px)
	for t, l := range myWork {
		c := sub[t]
		segs[l] = got[c][offs[c] : offs[c]+w]
		offs[c] += w
	}

	// Phase 6: reverse redistribution back to the home processor rows.
	if f.balanced {
		f.redistribute(lines, segs, finalOwner, initOwner, tagBalanceBack)
	}

	// Phase 7: write the filtered segments back into the fields.
	for l, ln := range lines {
		if initOwner[l] != me {
			continue
		}
		vars[ln.v].Field.SetRowSlice(ln.j-f.local.Lat0, ln.k, segs[l])
	}
}

// redistribute moves each line's segment from its `from` owner to its `to`
// owner along the mesh column, one message per (src, dst) pair, preserving
// the canonical line order inside every message.
func (f *FFTFilter) redistribute(lines []line, segs [][]float64, from, to []int, tag int) {
	me := f.cart.MyRow
	py := f.cart.Py
	w := f.local.Nlon()

	sendBuf := make([][]float64, py)
	for l := range lines {
		if from[l] == me && to[l] != me {
			sendBuf[to[l]] = append(sendBuf[to[l]], segs[l]...)
			segs[l] = nil
		}
	}
	for dst := 0; dst < py; dst++ {
		if dst != me && sendBuf[dst] != nil {
			f.cart.Col.Send(dst, tag, sendBuf[dst])
		}
	}
	recvCount := make([]int, py)
	for l := range lines {
		if to[l] == me && from[l] != me {
			recvCount[from[l]]++
		}
	}
	recvBuf := make([][]float64, py)
	for src := 0; src < py; src++ {
		if recvCount[src] > 0 {
			recvBuf[src] = f.cart.Col.Recv(src, tag)
		}
	}
	offs := make([]int, py)
	for l := range lines {
		if to[l] == me && from[l] != me {
			src := from[l]
			segs[l] = recvBuf[src][offs[src] : offs[src]+w]
			offs[src] += w
		}
	}
}
