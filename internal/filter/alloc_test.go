package filter

import (
	"math"
	"testing"
)

// TestRowFilterAllocFree pins the FFT filter's per-row hot path — forward
// real FFT, damping, inverse — at zero steady-state allocations.  The first
// apply warms the plan registry and the rowFilter scratch.
func TestRowFilterAllocFree(t *testing.T) {
	const n = 64
	rf := newRowFilter(n)
	damp := DampingRow(n, 80*math.Pi/180, 45*math.Pi/180)
	row := make([]float64, n)
	for i := range row {
		row[i] = math.Sin(2 * math.Pi * float64(i) / n * 3)
	}
	rf.apply(damp, row)
	if a := testing.AllocsPerRun(100, func() { rf.apply(damp, row) }); a != 0 {
		t.Fatalf("rowFilter.apply allocated %.1f times per row; want 0", a)
	}
}
