package filter

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"agcm/internal/fft"
	"agcm/internal/grid"
)

func TestKindString(t *testing.T) {
	if Strong.String() != "strong" || Weak.String() != "weak" {
		t.Fatalf("kind names wrong")
	}
}

func TestCritLat(t *testing.T) {
	if got := Strong.CritLat(); math.Abs(got-math.Pi/4) > 1e-12 {
		t.Errorf("strong crit lat = %g", got)
	}
	if got := Weak.CritLat(); math.Abs(got-math.Pi/3) > 1e-12 {
		t.Errorf("weak crit lat = %g", got)
	}
}

func TestDampingProperties(t *testing.T) {
	const n = 144
	crit := Strong.CritLat()
	for _, latDeg := range []float64{-89, -70, -50, 50, 70, 89} {
		lat := latDeg * math.Pi / 180
		row := DampingRow(n, lat, crit)
		if row[0] != 1 {
			t.Fatalf("lat %g: zonal mean damped: S(0)=%g", latDeg, row[0])
		}
		for s := 1; s < n; s++ {
			if row[s] < 0 || row[s] > 1 {
				t.Fatalf("lat %g s=%d: S=%g outside [0,1]", latDeg, s, row[s])
			}
			if math.Abs(row[s]-row[n-s]) > 1e-12 {
				t.Fatalf("lat %g: damping asymmetric at s=%d", latDeg, s)
			}
		}
		// The shortest resolvable wave (s = n/2) is damped hardest.
		if row[n/2] > row[1] {
			t.Fatalf("lat %g: S(n/2)=%g exceeds S(1)=%g", latDeg, row[n/2], row[1])
		}
	}
	// Closer to the pole means stronger damping at every wavenumber.
	d70 := DampingRow(n, 70*math.Pi/180, crit)
	d85 := DampingRow(n, 85*math.Pi/180, crit)
	for s := 1; s <= n/2; s++ {
		if d85[s] > d70[s]+1e-12 {
			t.Fatalf("s=%d: damping weaker at 85 deg (%g) than at 70 deg (%g)", s, d85[s], d70[s])
		}
	}
	// At the critical latitude nothing is damped (effective grid size ok).
	dCrit := DampingRow(n, crit, crit)
	for s := 0; s < n; s++ {
		if dCrit[s] < 1-1e-9 {
			t.Fatalf("damping %g at critical latitude, s=%d", dCrit[s], s)
		}
	}
}

func TestRowsCounts(t *testing.T) {
	spec := grid.TwoByTwoPointFive(9)
	strong := Rows(spec, Strong)
	weak := Rows(spec, Weak)
	// "strong ... applied to about one half of the latitudes (poles to
	// 45) ... weak ... about one third (poles to 60)".
	if len(strong) < 40 || len(strong) > 50 {
		t.Errorf("strong rows = %d, want about half of 90", len(strong))
	}
	if len(weak) < 26 || len(weak) > 34 {
		t.Errorf("weak rows = %d, want about a third of 90", len(weak))
	}
	// Weak rows are a subset of strong rows (further poleward).
	strongSet := map[int]bool{}
	for _, j := range strong {
		strongSet[j] = true
	}
	for _, j := range weak {
		if !strongSet[j] {
			t.Errorf("weak row %d not strongly filtered", j)
		}
	}
	// Equatorial rows are never filtered.
	if IsFiltered(spec, Strong, spec.Nlat/2) {
		t.Errorf("equator filtered")
	}
	// Symmetric about the equator.
	for _, j := range strong {
		if !IsFiltered(spec, Strong, spec.Nlat-1-j) {
			t.Errorf("row set not hemisphere-symmetric at %d", j)
		}
	}
}

func TestLineCount(t *testing.T) {
	spec := grid.TwoByTwoPointFive(9)
	want := (len(Rows(spec, Strong)) + len(Rows(spec, Weak))) * 9
	if got := LineCount(spec, []Kind{Strong, Weak}); got != want {
		t.Errorf("LineCount = %d, want %d", got, want)
	}
}

func TestConvolutionMatchesFFTRoute(t *testing.T) {
	// The mathematical heart of the paper's optimization: Eq. (2) (the
	// physical-space convolution) must equal Eq. (1) (the spectral form).
	const n = 144
	rng := rand.New(rand.NewSource(3))
	row := make([]float64, n)
	for i := range row {
		row[i] = rng.NormFloat64()
	}
	damp := DampingRow(n, 80*math.Pi/180, Strong.CritLat())
	viaFFT := append([]float64(nil), row...)
	ApplyRowFFT(fft.NewPlan(n), damp, viaFFT)
	coeffs := Coefficients(damp)
	viaConv := make([]float64, n)
	ApplyRowConvolution(coeffs, row, viaConv, 0)
	for i := 0; i < n; i++ {
		if math.Abs(viaFFT[i]-viaConv[i]) > 1e-9 {
			t.Fatalf("i=%d: FFT route %g vs convolution route %g", i, viaFFT[i], viaConv[i])
		}
	}
}

func TestConvolutionSegments(t *testing.T) {
	// Filtering a row in per-processor segments must equal filtering it
	// whole.
	const n = 90
	rng := rand.New(rand.NewSource(4))
	row := make([]float64, n)
	for i := range row {
		row[i] = rng.NormFloat64()
	}
	damp := DampingRow(n, -75*math.Pi/180, Weak.CritLat())
	coeffs := Coefficients(damp)
	whole := make([]float64, n)
	ApplyRowConvolution(coeffs, row, whole, 0)
	pieces := make([]float64, 0, n)
	for _, seg := range []struct{ off, len int }{{0, 30}, {30, 25}, {55, 35}} {
		dst := make([]float64, seg.len)
		ApplyRowConvolution(coeffs, row, dst, seg.off)
		pieces = append(pieces, dst...)
	}
	for i := range whole {
		if math.Abs(whole[i]-pieces[i]) > 1e-12 {
			t.Fatalf("segmented convolution differs at %d", i)
		}
	}
}

func TestFilterPreservesZonalMean(t *testing.T) {
	f := func(seed int64) bool {
		const n = 144
		rng := rand.New(rand.NewSource(seed))
		row := make([]float64, n)
		mean := 0.0
		for i := range row {
			row[i] = rng.NormFloat64()
			mean += row[i]
		}
		mean /= n
		damp := DampingRow(n, 85*math.Pi/180, Strong.CritLat())
		ApplyRowFFT(fft.NewPlan(n), damp, row)
		got := 0.0
		for _, v := range row {
			got += v
		}
		got /= n
		return math.Abs(got-mean) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFilterNeverAmplifies(t *testing.T) {
	// Property: |S| <= 1 implies the filtered row's spectral energy (and
	// hence L2 norm) never grows.
	f := func(seed int64, latRaw uint8) bool {
		const n = 144
		lat := (45 + float64(latRaw%45)) * math.Pi / 180
		rng := rand.New(rand.NewSource(seed))
		row := make([]float64, n)
		var e0 float64
		for i := range row {
			row[i] = rng.NormFloat64()
			e0 += row[i] * row[i]
		}
		ApplyRowFFT(fft.NewPlan(n), DampingRow(n, lat, Strong.CritLat()), row)
		var e1 float64
		for _, v := range row {
			e1 += v * v
		}
		return e1 <= e0*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFilterDampsShortWavesKeepsLongWaves(t *testing.T) {
	const n = 144
	lat := 85 * math.Pi / 180
	damp := DampingRow(n, lat, Strong.CritLat())
	plan := fft.NewPlan(n)
	amplitude := func(s int) float64 {
		row := make([]float64, n)
		for i := range row {
			row[i] = math.Cos(2 * math.Pi * float64(s*i) / n)
		}
		ApplyRowFFT(plan, damp, row)
		max := 0.0
		for _, v := range row {
			if math.Abs(v) > max {
				max = math.Abs(v)
			}
		}
		return max
	}
	long := amplitude(1)
	short := amplitude(n / 2)
	if short > 0.2*long {
		t.Fatalf("short-wave amplitude %g not strongly damped vs long-wave %g", short, long)
	}
	if long < 0.5 {
		t.Fatalf("long wave over-damped: amplitude %g", long)
	}
}

func TestCoefficientsAreRealAndNormalized(t *testing.T) {
	damp := DampingRow(144, 75*math.Pi/180, Strong.CritLat())
	coeffs := Coefficients(damp)
	// sum of coefficients == S(0) == 1 (DC gain).
	sum := 0.0
	for _, c := range coeffs {
		sum += c
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("coefficient sum %g, want 1", sum)
	}
}

func TestBuildLinesCanonicalOrder(t *testing.T) {
	spec := grid.Spec{Nlon: 16, Nlat: 12, Nlayers: 2}
	d, _ := grid.NewDecomp(spec, 1, 1)
	l := grid.NewLocal(d, 0, 0)
	vars := []Variable{
		{Name: "u", Kind: Strong, Field: grid.NewField(l, 0)},
		{Name: "T", Kind: Weak, Field: grid.NewField(l, 0)},
	}
	lines := buildLines(spec, vars)
	if len(lines) != LineCount(spec, []Kind{Strong, Weak}) {
		t.Fatalf("%d lines, want %d", len(lines), LineCount(spec, []Kind{Strong, Weak}))
	}
	for i := 1; i < len(lines); i++ {
		a, b := lines[i-1], lines[i]
		less := a.v < b.v || (a.v == b.v && (a.j < b.j || (a.j == b.j && a.k < b.k)))
		if !less {
			t.Fatalf("lines not in canonical order at %d: %+v then %+v", i, a, b)
		}
	}
}

func TestBlockOwners(t *testing.T) {
	owners := blockOwners(10, 4)
	want := []int{0, 0, 0, 1, 1, 1, 2, 2, 3, 3}
	for i := range want {
		if owners[i] != want[i] {
			t.Fatalf("blockOwners = %v", owners)
		}
	}
}

func TestApplyRowFFTPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	ApplyRowFFT(fft.NewPlan(8), make([]float64, 8), make([]float64, 7))
}
