package filter

import (
	"fmt"
	"math"
	"testing"

	"agcm/internal/comm"
	"agcm/internal/grid"
	"agcm/internal/machine"
	"agcm/internal/sim"
)

// initValue gives every (variable, j, i, k) a deterministic, smooth but
// non-trivial value.
func initValue(v, j, i, k int) float64 {
	return math.Sin(float64(j)*0.37+float64(v)) * math.Cos(float64(i)*0.21) *
		(1 + 0.1*float64(k)) * (1 + 0.01*float64(i%7))
}

// newVars allocates and initializes the standard test variable set on a
// subdomain: two strongly filtered, two weakly filtered.
func newVars(l grid.Local) []Variable {
	names := []string{"u", "v", "T", "q"}
	kinds := []Kind{Strong, Strong, Weak, Weak}
	vars := make([]Variable, 4)
	for vi := range vars {
		f := grid.NewField(l, 1)
		for j := 0; j < l.Nlat(); j++ {
			for i := 0; i < l.Nlon(); i++ {
				for k := 0; k < l.Nlayers(); k++ {
					f.Set(j, i, k, initValue(vi, l.GlobalLat(j), l.GlobalLon(i), k))
				}
			}
		}
		vars[vi] = Variable{Name: names[vi], Kind: kinds[vi], Field: f}
	}
	return vars
}

// sequentialOracle runs the sequential filter on a 1x1 decomposition and
// returns the gathered global result for each variable.
func sequentialOracle(t *testing.T, spec grid.Spec) [][]float64 {
	t.Helper()
	d, err := grid.NewDecomp(spec, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	l := grid.NewLocal(d, 0, 0)
	vars := newVars(l)
	Sequential(spec, vars)
	out := make([][]float64, len(vars))
	for vi, v := range vars {
		global := make([]float64, spec.Points())
		p := 0
		for j := 0; j < spec.Nlat; j++ {
			for i := 0; i < spec.Nlon; i++ {
				for k := 0; k < spec.Nlayers; k++ {
					global[p] = v.Field.At(j, i, k)
					p++
				}
			}
		}
		out[vi] = global
	}
	return out
}

// runParallelFilter applies the named variant on a py*px mesh and returns
// the gathered per-variable global fields plus the sim result.
func runParallelFilter(t *testing.T, spec grid.Spec, py, px int,
	mk func(cart *comm.Cart2D, local grid.Local) Parallel) ([][]float64, *sim.Result) {
	t.Helper()
	d, err := grid.NewDecomp(spec, py, px)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]float64, 4)
	m := sim.New(py*px, machine.Paragon())
	res, err := m.Run(func(p *sim.Proc) error {
		world := comm.World(p)
		cart := comm.NewCart2D(world, py, px)
		l := grid.NewLocal(d, cart.MyRow, cart.MyCol)
		vars := newVars(l)
		flt := mk(cart, l)
		p.Timed("filter", func() { flt.Apply(vars) })
		for vi, v := range vars {
			g := grid.Gather(world, cart, v.Field)
			if world.Rank() == 0 {
				out[vi] = g
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out, res
}

func variantMakers(spec grid.Spec) map[string]func(cart *comm.Cart2D, local grid.Local) Parallel {
	return map[string]func(cart *comm.Cart2D, local grid.Local) Parallel{
		"convolution-ring": func(c *comm.Cart2D, l grid.Local) Parallel {
			return NewConvolution(c, spec, l, Ring)
		},
		"convolution-tree": func(c *comm.Cart2D, l grid.Local) Parallel {
			return NewConvolution(c, spec, l, Tree)
		},
		"fft": func(c *comm.Cart2D, l grid.Local) Parallel {
			return NewFFT(c, spec, l, false)
		},
		"fft-load-balanced": func(c *comm.Cart2D, l grid.Local) Parallel {
			return NewFFT(c, spec, l, true)
		},
		"fft-rowwise": func(c *comm.Cart2D, l grid.Local) Parallel {
			return NewRowwiseFFT(c, spec, l)
		},
	}
}

func TestParallelVariantsMatchSequentialOracle(t *testing.T) {
	// The strongest correctness statement in the package: every parallel
	// variant on every mesh produces the same fields as the sequential
	// filter, to round-off.
	spec := grid.Spec{Nlon: 36, Nlat: 24, Nlayers: 3}
	want := sequentialOracle(t, spec)
	meshes := [][2]int{{1, 1}, {1, 4}, {2, 2}, {4, 1}, {3, 4}, {6, 3}}
	for name, mk := range variantMakers(spec) {
		for _, mesh := range meshes {
			py, px := mesh[0], mesh[1]
			t.Run(fmt.Sprintf("%s/%dx%d", name, py, px), func(t *testing.T) {
				got, _ := runParallelFilter(t, spec, py, px, mk)
				for vi := range want {
					for idx := range want[vi] {
						if math.Abs(got[vi][idx]-want[vi][idx]) > 1e-9 {
							t.Fatalf("variable %d index %d: got %g want %g",
								vi, idx, got[vi][idx], want[vi][idx])
						}
					}
				}
			})
		}
	}
}

func TestFilterIsDeterministicAcrossRuns(t *testing.T) {
	spec := grid.Spec{Nlon: 24, Nlat: 16, Nlayers: 2}
	mk := variantMakers(spec)["fft-load-balanced"]
	_, res1 := runParallelFilter(t, spec, 4, 2, mk)
	_, res2 := runParallelFilter(t, spec, 4, 2, mk)
	for r := range res1.Clocks {
		if res1.Clocks[r] != res2.Clocks[r] {
			t.Fatalf("rank %d virtual clock differs across runs", r)
		}
	}
}

func TestFFTFilterFasterThanConvolutionAtScale(t *testing.T) {
	// Tables 8-11's first-order story: on a many-node mesh the FFT
	// filter beats convolution, and load balancing beats plain FFT.
	spec := grid.TwoByTwoPointFive(9)
	makers := variantMakers(spec)
	times := map[string]float64{}
	for _, name := range []string{"convolution-ring", "fft", "fft-load-balanced"} {
		_, res := runParallelFilter(t, spec, 8, 8, makers[name])
		times[name] = res.MaxAccount("filter")
	}
	if !(times["fft"] < times["convolution-ring"]) {
		t.Errorf("fft (%g s) not faster than convolution (%g s) on 8x8",
			times["fft"], times["convolution-ring"])
	}
	if !(times["fft-load-balanced"] < times["fft"]) {
		t.Errorf("load-balanced fft (%g s) not faster than plain fft (%g s) on 8x8",
			times["fft-load-balanced"], times["fft"])
	}
}

func TestLoadBalanceEvensFilterTime(t *testing.T) {
	// With load balancing, per-rank filter time must be much more even
	// than without: compare the imbalance (max-avg)/avg across ranks.
	spec := grid.TwoByTwoPointFive(9)
	makers := variantMakers(spec)
	imbalance := func(name string) float64 {
		_, res := runParallelFilter(t, spec, 8, 2, makers[name])
		loads := res.Accounts["filter"]
		sum, max := 0.0, 0.0
		for _, v := range loads {
			sum += v
			if v > max {
				max = v
			}
		}
		avg := sum / float64(len(loads))
		return (max - avg) / avg
	}
	un, bal := imbalance("fft"), imbalance("fft-load-balanced")
	if bal >= un {
		t.Fatalf("balanced imbalance %.2f not below unbalanced %.2f", bal, un)
	}
	if bal > 0.5 {
		t.Errorf("balanced filter imbalance %.2f still above 50%%", bal)
	}
}

func TestTreeConvolutionUsesFewerMessagesWorthOfTimeOnWideMesh(t *testing.T) {
	// Sanity on the two original data motions: both must agree with the
	// oracle (covered above); here just check both complete and produce
	// nonzero filter time on a polar row.
	spec := grid.Spec{Nlon: 32, Nlat: 16, Nlayers: 2}
	makers := variantMakers(spec)
	for _, name := range []string{"convolution-ring", "convolution-tree"} {
		_, res := runParallelFilter(t, spec, 2, 4, makers[name])
		if res.MaxAccount("filter") <= 0 {
			t.Errorf("%s: no filter time accounted", name)
		}
	}
}

func TestFilterNamesStable(t *testing.T) {
	spec := grid.Spec{Nlon: 16, Nlat: 8, Nlayers: 1}
	d, _ := grid.NewDecomp(spec, 1, 1)
	m := sim.New(1, machine.Paragon())
	_, err := m.Run(func(p *sim.Proc) error {
		world := comm.World(p)
		cart := comm.NewCart2D(world, 1, 1)
		l := grid.NewLocal(d, 0, 0)
		if got := NewConvolution(cart, spec, l, Ring).Name(); got != "convolution-ring" {
			return fmt.Errorf("name %q", got)
		}
		if got := NewConvolution(cart, spec, l, Tree).Name(); got != "convolution-tree" {
			return fmt.Errorf("name %q", got)
		}
		if got := NewFFT(cart, spec, l, false).Name(); got != "fft" {
			return fmt.Errorf("name %q", got)
		}
		if got := NewFFT(cart, spec, l, true).Name(); got != "fft-load-balanced" {
			return fmt.Errorf("name %q", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
