// Package filter implements the UCLA AGCM's polar spectral filtering — the
// component the paper identifies as the scalability bottleneck of the
// original parallel code — in all the variants the paper compares:
//
//   - the original convolution-form filter evaluated in physical space,
//     with ring or binary-tree data motion (Section 2, Wehner et al.);
//   - the FFT filter after a latitudinal data transpose (Section 3.2);
//   - the load-balanced FFT filter, which first redistributes the rows to
//     be filtered evenly over the processor mesh (Section 3.3, Figs 2-3).
//
// The filter damps fast-moving inertia-gravity waves near the poles so that
// a uniform time step satisfying the CFL condition at mid-latitudes remains
// stable where the zonal grid distance shrinks: each latitude circle is
// Fourier transformed, wavenumber s is scaled by a prescribed damping
// S(s, lat) <= 1, and the circle is transformed back.  Strong filtering
// covers roughly half of all latitudes (poleward of 45 degrees); weak
// filtering covers roughly one third (poleward of 60 degrees).
package filter

import (
	"fmt"
	"math"

	"agcm/internal/fft"
	"agcm/internal/grid"
)

// Kind selects the filter strength applied to a variable.
type Kind int

const (
	// Strong filtering is applied from the poles to 45 degrees.
	Strong Kind = iota
	// Weak filtering is applied from the poles to 60 degrees.
	Weak
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case Strong:
		return "strong"
	case Weak:
		return "weak"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// CritLat returns the filter's critical latitude in radians: filtering is
// applied poleward of this latitude, and the damping is calibrated so that
// waves at the critical latitude pass unchanged.
func (k Kind) CritLat() float64 {
	switch k {
	case Strong:
		return 45 * math.Pi / 180
	case Weak:
		return 60 * math.Pi / 180
	}
	panic(fmt.Sprintf("filter: invalid kind %d", int(k)))
}

// Damping returns the filter response S(s, lat) for zonal wavenumber index
// s on a latitude circle of nlon points at the given latitude:
//
//	S(s, lat) = min(1, [cos(lat) / (cos(critLat) * sin(pi*s/nlon))]^2)
//
// the Arakawa-Lamb idea: damp each wavenumber just enough that its
// effective phase speed satisfies the CFL condition of the critical
// latitude.  On the staggered C-grid the discrete gravity-wave frequency
// goes like sin(pi*s/N) (the half-angle of the unstaggered factor), so the
// shortest waves are the fastest and take the hardest damping.  The square
// gives the margin a leapfrog scheme needs: the unstable mode grows like
// 2*C per step while the bracket only shrinks like 1/C, so first-power
// damping is marginal and second-power damping is decisive.  S is
// symmetric in s <-> nlon-s (conjugate wavenumbers), so filtering a real
// row yields a real row, and S(0) = 1 (the zonal mean is never damped).
func Damping(nlon, s int, lat, critLat float64) float64 {
	if s == 0 {
		return 1
	}
	den := math.Cos(critLat) * math.Sin(math.Pi*float64(s)/float64(nlon))
	if den <= 0 {
		return 1
	}
	d := math.Abs(math.Cos(lat)) / den
	if d >= 1 {
		return 1
	}
	return d * d
}

// DampingRow returns the full per-wavenumber damping vector for one
// latitude circle.
func DampingRow(nlon int, lat, critLat float64) []float64 {
	return DampingRowInto(make([]float64, 0, nlon), nlon, lat, critLat)
}

// DampingRowInto fills the damping vector into dst (grown from dst[:0] as
// needed) and returns it; with a persistent dst it allocates nothing.
func DampingRowInto(dst []float64, nlon int, lat, critLat float64) []float64 {
	dst = dst[:0]
	for s := 0; s < nlon; s++ {
		dst = append(dst, Damping(nlon, s, lat, critLat))
	}
	return dst
}

// IsFiltered reports whether global latitude row j requires filtering of
// the given kind.
func IsFiltered(spec grid.Spec, k Kind, j int) bool {
	return math.Abs(spec.LatCenter(j)) >= k.CritLat()
}

// Rows returns the global latitude rows (ascending) that require filtering
// of the given kind — about half of all rows for Strong, a third for Weak.
func Rows(spec grid.Spec, k Kind) []int {
	var rows []int
	for j := 0; j < spec.Nlat; j++ {
		if IsFiltered(spec, k, j) {
			rows = append(rows, j)
		}
	}
	return rows
}

// Coefficients returns the physical-space convolution kernel equivalent to
// the damping vector: c[d] = (1/N) sum_s S(s) exp(2*pi*i*d*s/N), which is
// real because S is symmetric.  The original AGCM evaluated the filter in
// this form at O(N^2) per row.
func Coefficients(damp []float64) []float64 {
	n := len(damp)
	re := append([]float64(nil), damp...)
	im := make([]float64, n)
	plan := fft.GetPlan(n)
	plan.Inverse(re, im)
	fft.PutPlan(plan)
	return re
}

// ApplyRowFFT filters one full latitude circle in place through the
// spectral route: forward FFT, damp, inverse FFT.  plan must have length
// len(row) == len(damp).
func ApplyRowFFT(plan *fft.Plan, damp, row []float64) {
	applyRowFFTScratch(plan, damp, row, make([]float64, len(row)))
}

// applyRowFFTScratch is ApplyRowFFT with caller-owned imaginary scratch of
// length len(row), zeroed on entry by the callee.
func applyRowFFTScratch(plan *fft.Plan, damp, row, im []float64) {
	n := len(row)
	if plan.N() != n || len(damp) != n || len(im) != n {
		panic("filter: ApplyRowFFT length mismatch")
	}
	for s := range im {
		im[s] = 0
	}
	plan.Forward(row, im)
	for s := 0; s < n; s++ {
		row[s] *= damp[s]
		im[s] *= damp[s]
	}
	plan.Inverse(row, im)
}

// rowFilter owns the per-rank scratch for filtering real latitude circles
// through the half-complex route — the production inner loop, about twice
// as fast natively as the complex path.  Odd lengths (never produced by
// the standard grids) fall back to the complex plan.
type rowFilter struct {
	n      int
	plan   *fft.RealPlan
	re, im []float64
	odd    *fft.Plan
	oddIm  []float64 // imaginary scratch for the odd-length fallback
}

// newRowFilter builds the per-rank row-filtering state, drawing plans from
// the shared fft registries so repeated construction (the sequential oracle
// plans per call) reuses warm twiddle tables.
func newRowFilter(n int) *rowFilter {
	if n%2 != 0 {
		return &rowFilter{n: n, odd: fft.GetPlan(n), oddIm: make([]float64, n)}
	}
	return &rowFilter{
		n:    n,
		plan: fft.GetRealPlan(n),
		re:   make([]float64, n/2+1),
		im:   make([]float64, n/2+1),
	}
}

// release returns the filter's plans to the shared registries.  The filter
// must not be used afterwards.
func (rf *rowFilter) release() {
	fft.PutPlan(rf.odd)
	fft.PutRealPlan(rf.plan)
	rf.odd, rf.plan = nil, nil
}

// apply filters one real row in place; damp has length n and is symmetric,
// so only its first half is consulted on the half-complex route.
func (rf *rowFilter) apply(damp, row []float64) {
	if len(row) != rf.n || len(damp) != rf.n {
		panic("filter: rowFilter length mismatch")
	}
	if rf.odd != nil {
		applyRowFFTScratch(rf.odd, damp, row, rf.oddIm)
		return
	}
	rf.plan.Forward(row, rf.re, rf.im)
	for s := 0; s <= rf.n/2; s++ {
		rf.re[s] *= damp[s]
		rf.im[s] *= damp[s]
	}
	rf.plan.Inverse(rf.re, rf.im, row)
}

// ApplyRowConvolution filters the points dst[i0:i0+len(dst)] of one full
// latitude circle `row` through the physical-space route:
// f'(i) = sum_n c[n] f((i-n) mod N) — the original code's O(N) per point.
func ApplyRowConvolution(coeffs, row, dst []float64, i0 int) {
	n := len(row)
	if len(coeffs) != n {
		panic("filter: ApplyRowConvolution length mismatch")
	}
	ext := make([]float64, n+convPad)
	copy(ext, row)
	for q := 0; q < convPad; q++ {
		ext[n+q] = row[q%n]
	}
	convolveExt(coeffs, ext, dst, i0)
}

// convPad is the wraparound padding convolveExt needs beyond the circle:
// the widest output group reads seven points past its base index.
const convPad = 7

// convolveExt is the convolution kernel on a padded circle: ext holds the
// n = len(coeffs) row values followed by convPad wraparound copies of its
// start, so no index ever needs a modulo.  Outputs are computed eight at a
// time with independent accumulators to hide the add latency of the serial
// sum; each accumulator still adds its terms in ascending-d order, so every
// output is bit-identical to the textbook one-point-at-a-time loop.
func convolveExt(coeffs, ext, dst []float64, i0 int) {
	n := len(coeffs)
	if len(ext) < n+convPad {
		panic("filter: convolveExt needs a padded row")
	}
	m := len(dst)
	t0 := 0
	for ; t0+8 <= m; t0 += 8 {
		i := i0 + t0
		if i >= n {
			i -= n
		}
		var s0, s1, s2, s3, s4, s5, s6, s7 float64
		// d ascends 0..n-1 as k = (i-d) mod n walks i..0 then n-1..i+1.
		for k := i; k >= 0; k-- {
			c := coeffs[i-k]
			s0 += c * ext[k]
			s1 += c * ext[k+1]
			s2 += c * ext[k+2]
			s3 += c * ext[k+3]
			s4 += c * ext[k+4]
			s5 += c * ext[k+5]
			s6 += c * ext[k+6]
			s7 += c * ext[k+7]
		}
		for k := n - 1; k > i; k-- {
			c := coeffs[i-k+n]
			s0 += c * ext[k]
			s1 += c * ext[k+1]
			s2 += c * ext[k+2]
			s3 += c * ext[k+3]
			s4 += c * ext[k+4]
			s5 += c * ext[k+5]
			s6 += c * ext[k+6]
			s7 += c * ext[k+7]
		}
		dst[t0] = s0
		dst[t0+1] = s1
		dst[t0+2] = s2
		dst[t0+3] = s3
		dst[t0+4] = s4
		dst[t0+5] = s5
		dst[t0+6] = s6
		dst[t0+7] = s7
	}
	// Narrow subdomains (wide meshes) rarely reach the 8-wide block, so
	// the tail runs a 4-wide group before falling back to single outputs.
	for ; t0+4 <= m; t0 += 4 {
		i := i0 + t0
		if i >= n {
			i -= n
		}
		var s0, s1, s2, s3 float64
		for k := i; k >= 0; k-- {
			c := coeffs[i-k]
			s0 += c * ext[k]
			s1 += c * ext[k+1]
			s2 += c * ext[k+2]
			s3 += c * ext[k+3]
		}
		for k := n - 1; k > i; k-- {
			c := coeffs[i-k+n]
			s0 += c * ext[k]
			s1 += c * ext[k+1]
			s2 += c * ext[k+2]
			s3 += c * ext[k+3]
		}
		dst[t0] = s0
		dst[t0+1] = s1
		dst[t0+2] = s2
		dst[t0+3] = s3
	}
	for ; t0 < m; t0++ {
		i := i0 + t0
		if i >= n {
			i -= n
		}
		var s float64
		for k := i; k >= 0; k-- {
			s += coeffs[i-k] * ext[k]
		}
		for k := n - 1; k > i; k-- {
			s += coeffs[i-k+n] * ext[k]
		}
		dst[t0] = s
	}
}

// Variable binds a field to the filter strength it receives.  In the AGCM,
// the velocity components get strong filtering while thermodynamic
// variables get weak filtering.
type Variable struct {
	Name  string
	Kind  Kind
	Field *grid.Field
}

// Sequential applies the filter to every variable on a single-subdomain
// (1x1 decomposition) field set; it is the correctness oracle for the
// parallel variants.
func Sequential(spec grid.Spec, vars []Variable) {
	rf := newRowFilter(spec.Nlon)
	defer rf.release()
	row := make([]float64, spec.Nlon)
	damp := make([]float64, 0, spec.Nlon)
	for _, v := range vars {
		l := v.Field.Local()
		if l.Nlat() != spec.Nlat || l.Nlon() != spec.Nlon {
			panic("filter: Sequential requires an undecomposed field")
		}
		for _, j := range Rows(spec, v.Kind) {
			damp = DampingRowInto(damp, spec.Nlon, spec.LatCenter(j), v.Kind.CritLat())
			for k := 0; k < spec.Nlayers; k++ {
				v.Field.RowSlice(j, k, row)
				rf.apply(damp, row)
				v.Field.SetRowSlice(j, k, row)
			}
		}
	}
}

// line identifies one unit of filtering work: a full latitude circle of one
// variable at one layer.
type line struct {
	v, j, k int // variable index, global latitude row, layer
}

// buildLines enumerates every line to be filtered, in the canonical order
// (variable, row, layer).  Every rank derives the identical list locally.
func buildLines(spec grid.Spec, vars []Variable) []line {
	var lines []line
	for vi, v := range vars {
		for _, j := range Rows(spec, v.Kind) {
			for k := 0; k < spec.Nlayers; k++ {
				lines = append(lines, line{v: vi, j: j, k: k})
			}
		}
	}
	return lines
}

// LineCount returns the number of (variable, row, layer) lines filtered per
// step for the given spec and variable kinds — the workload size that the
// load-balancing distributes.
func LineCount(spec grid.Spec, kinds []Kind) int {
	n := 0
	for _, k := range kinds {
		n += len(Rows(spec, k)) * spec.Nlayers
	}
	return n
}
