package fault

// Parsing for the -fault-spec command-line syntax: semicolon-separated
// clauses, each a kind with comma-separated key=value parameters, e.g.
//
//	seed=42;slow:rank=3,at=1.5,factor=4;crash:rank=1,at=9.2
//	jitter:max=2e-4;drop:prob=0.01,retries=4,timeout=5e-3

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Parse builds a Spec from the clause syntax above.  An empty string yields
// an empty (inject-nothing) spec.
func Parse(s string) (*Spec, error) {
	spec := &Spec{}
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		kind, params := clause, ""
		if i := strings.Index(clause, ":"); i >= 0 {
			kind, params = clause[:i], clause[i+1:]
		}
		kv, err := parseParams(params)
		if err != nil {
			return nil, fmt.Errorf("fault: clause %q: %w", clause, err)
		}
		switch {
		case strings.HasPrefix(kind, "seed="):
			// seed is a bare key=value clause, not kind:params.
			v, err := strconv.ParseUint(strings.TrimPrefix(kind, "seed="), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed in %q", clause)
			}
			spec.Seed = v
		case kind == "slow":
			sl := Slowdown{Rank: -1, Factor: 2}
			if err := assign(kv, map[string]any{"rank": &sl.Rank, "at": &sl.At, "factor": &sl.Factor}); err != nil {
				return nil, fmt.Errorf("fault: clause %q: %w", clause, err)
			}
			spec.Slowdowns = append(spec.Slowdowns, sl)
		case kind == "crash":
			c := Crash{Rank: -1}
			if err := assign(kv, map[string]any{"rank": &c.Rank, "at": &c.At}); err != nil {
				return nil, fmt.Errorf("fault: clause %q: %w", clause, err)
			}
			spec.Crashes = append(spec.Crashes, c)
		case kind == "jitter":
			j := &Jitter{}
			if err := assign(kv, map[string]any{"max": &j.Max}); err != nil {
				return nil, fmt.Errorf("fault: clause %q: %w", clause, err)
			}
			spec.Jitter = j
		case kind == "drop":
			d := &Drop{Retries: 3}
			if err := assign(kv, map[string]any{"prob": &d.Prob, "retries": &d.Retries, "timeout": &d.Timeout}); err != nil {
				return nil, fmt.Errorf("fault: clause %q: %w", clause, err)
			}
			spec.Drop = d
		default:
			return nil, fmt.Errorf("fault: unknown clause kind %q (want seed=, slow:, crash:, jitter: or drop:)", kind)
		}
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// parseParams splits "k1=v1,k2=v2" into a map.
func parseParams(s string) (map[string]string, error) {
	kv := make(map[string]string)
	if strings.TrimSpace(s) == "" {
		return kv, nil
	}
	for _, p := range strings.Split(s, ",") {
		i := strings.Index(p, "=")
		if i <= 0 {
			return nil, fmt.Errorf("bad parameter %q (want key=value)", p)
		}
		kv[strings.TrimSpace(p[:i])] = strings.TrimSpace(p[i+1:])
	}
	return kv, nil
}

// assign writes each parsed parameter into its typed destination and
// rejects keys the clause does not define.
func assign(kv map[string]string, dst map[string]any) error {
	// Visit keys in sorted order so that, with several bad parameters, the
	// one reported does not depend on map iteration order.
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := kv[k]
		d, ok := dst[k]
		if !ok {
			return fmt.Errorf("unknown parameter %q", k)
		}
		switch ptr := d.(type) {
		case *int:
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("parameter %s=%q is not an integer", k, v)
			}
			*ptr = n
		case *float64:
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return fmt.Errorf("parameter %s=%q is not a number", k, v)
			}
			*ptr = f
		default:
			panic("fault: unsupported destination type")
		}
	}
	return nil
}
