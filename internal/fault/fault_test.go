package fault

import (
	"errors"
	"math"
	"strings"
	"testing"

	"agcm/internal/sim"
)

// testModel mirrors the sim package's unit-friendly cost model.
type testModel struct{}

func (testModel) FlopSeconds(n float64) float64         { return n * 1e-6 }
func (testModel) MemSeconds(n float64) float64          { return n * 1e-8 }
func (testModel) SendOverheadSeconds(bytes int) float64 { return 1e-5 }
func (testModel) RecvOverheadSeconds(bytes int) float64 { return 1e-5 }
func (testModel) NetworkSeconds(bytes int) float64      { return 1e-4 + float64(bytes)*1e-7 }

// ringProgram is the workload used by the determinism tests: a ring
// exchange with compute between rounds, exercising Compute, Send and Recv
// on every rank.
func ringProgram(rounds int) func(p *sim.Proc) error {
	return func(p *sim.Proc) error {
		next := (p.Rank() + 1) % p.Ranks()
		prev := (p.Rank() + p.Ranks() - 1) % p.Ranks()
		for i := 0; i < rounds; i++ {
			p.Compute(1e4)
			p.Send(next, i, nil, 128)
			p.Recv(prev, i)
		}
		return nil
	}
}

// TestDeterminismUnderFaults is the satellite requirement: for every fault
// kind, the same seed and spec must yield bit-identical Clocks,
// MessagesSent and WaitSeconds across repeated runs.
func TestDeterminismUnderFaults(t *testing.T) {
	cases := []struct {
		name      string
		spec      *Spec
		wantError bool
	}{
		{"slowdown", &Spec{Seed: 7,
			Slowdowns: []Slowdown{{Rank: 1, At: 0.01, Factor: 3}}}, false},
		{"jitter", &Spec{Seed: 7, Jitter: &Jitter{Max: 2e-4}}, false},
		{"drop-retry", &Spec{Seed: 7,
			Drop: &Drop{Prob: 0.2, Retries: 8, Timeout: 5e-4}}, false},
		{"crash", &Spec{Seed: 7,
			Crashes: []Crash{{Rank: 2, At: 0.02}}}, true},
		{"combined", &Spec{Seed: 7,
			Slowdowns: []Slowdown{{Rank: 0, At: 0.005, Factor: 2}},
			Jitter:    &Jitter{Max: 1e-4},
			Drop:      &Drop{Prob: 0.05, Retries: 8, Timeout: 1e-4}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func() (*sim.Result, error) {
				m := sim.New(4, testModel{})
				m.SetFaultHook(NewInjector(tc.spec))
				return m.Run(ringProgram(40))
			}
			ref, refErr := run()
			if tc.wantError != (refErr != nil) {
				t.Fatalf("error = %v, wantError = %v", refErr, tc.wantError)
			}
			for trial := 0; trial < 3; trial++ {
				res, err := run()
				if (err == nil) != (refErr == nil) ||
					(err != nil && err.Error() != refErr.Error()) {
					t.Fatalf("trial %d: error %v, want %v", trial, err, refErr)
				}
				for r := 0; r < 4; r++ {
					if res.Clocks[r] != ref.Clocks[r] {
						t.Fatalf("trial %d: rank %d clock %v, want %v",
							trial, r, res.Clocks[r], ref.Clocks[r])
					}
					if res.MessagesSent[r] != ref.MessagesSent[r] {
						t.Fatalf("trial %d: rank %d sent %d, want %d",
							trial, r, res.MessagesSent[r], ref.MessagesSent[r])
					}
					if res.WaitSeconds[r] != ref.WaitSeconds[r] {
						t.Fatalf("trial %d: rank %d wait %v, want %v",
							trial, r, res.WaitSeconds[r], ref.WaitSeconds[r])
					}
				}
			}
		})
	}
}

// TestSlowdownStretchesOnlyVictim: the degraded rank finishes later than in
// a healthy run; untouched single-rank work is not stretched.
func TestSlowdownStretchesOnlyVictim(t *testing.T) {
	healthy := func() *sim.Result {
		m := sim.New(2, testModel{})
		res, err := m.Run(func(p *sim.Proc) error {
			p.Compute(1e6) // 1 virtual second
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}()
	m := sim.New(2, testModel{})
	m.SetFaultHook(NewInjector(&Spec{
		Slowdowns: []Slowdown{{Rank: 1, At: 0.25, Factor: 4}},
	}))
	res, err := m.Run(func(p *sim.Proc) error {
		p.Compute(1e6)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clocks[0] != healthy.Clocks[0] {
		t.Fatalf("rank 0 clock %v, want untouched %v", res.Clocks[0], healthy.Clocks[0])
	}
	// 0.25s healthy + 0.75s at factor 4 = 3.25s.
	if want := 3.25; math.Abs(res.Clocks[1]-want) > 1e-12 {
		t.Fatalf("rank 1 clock %v, want %v", res.Clocks[1], want)
	}
}

// TestComputeSecondsPiecewise checks the onset-straddling arithmetic
// directly.
func TestComputeSecondsPiecewise(t *testing.T) {
	in := NewInjector(&Spec{Slowdowns: []Slowdown{{Rank: 0, At: 10, Factor: 3}}})
	cases := []struct{ start, dt, want float64 }{
		{0, 5, 5},     // entirely before onset
		{10, 5, 15},   // entirely after
		{8, 4, 2 + 6}, // straddling: 2 healthy + 2*3 degraded
		{0, 5, 5},
	}
	for _, c := range cases {
		if got := in.ComputeSeconds(0, c.start, c.dt); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("ComputeSeconds(0, %g, %g) = %g, want %g", c.start, c.dt, got, c.want)
		}
	}
	if got := in.ComputeSeconds(1, 8, 4); got != 4 {
		t.Fatalf("other rank stretched: got %g, want 4", got)
	}
}

// TestDropExhaustionAborts: with drop probability ~1 every attempt fails
// and the sending rank must abort with the link-down error.
func TestDropExhaustionAborts(t *testing.T) {
	m := sim.New(2, testModel{})
	m.SetFaultHook(NewInjector(&Spec{
		Drop: &Drop{Prob: 0.999999, Retries: 2, Timeout: 1e-3},
	}))
	_, err := m.Run(ringProgram(5))
	if err == nil || !strings.Contains(err.Error(), "link declared down") {
		t.Fatalf("Run error = %v, want link-down abort", err)
	}
}

// TestJitterBounded: every message's extra delay stays in [0, Max).
func TestJitterBounded(t *testing.T) {
	in := NewInjector(&Spec{Seed: 3, Jitter: &Jitter{Max: 1e-3}})
	for seq := int64(1); seq <= 1000; seq++ {
		extra, err := in.SendDelay(0, 1, 0, seq, 0)
		if err != nil {
			t.Fatal(err)
		}
		if extra < 0 || extra >= 1e-3 {
			t.Fatalf("seq %d: jitter %g outside [0, 1e-3)", seq, extra)
		}
	}
}

// TestCrashInRecvWait: a rank whose crash time falls inside a Recv wait
// dies at the crash instant, not at the message arrival.
func TestCrashInRecvWait(t *testing.T) {
	m := sim.New(2, testModel{})
	m.SetFaultHook(NewInjector(&Spec{Crashes: []Crash{{Rank: 1, At: 0.5}}}))
	res, err := m.Run(func(p *sim.Proc) error {
		if p.Rank() == 0 {
			p.Compute(2e6) // 2 virtual seconds before sending
			p.Send(1, 0, nil, 8)
			return nil
		}
		p.Recv(0, 0) // message arrives ~2s, crash at 0.5s
		return nil
	})
	var ce *sim.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("Run error = %v, want *CrashError", err)
	}
	if ce.Rank != 1 {
		t.Fatalf("crash rank = %d, want 1", ce.Rank)
	}
	if res.Clocks[1] != 0.5 {
		t.Fatalf("victim clock %v, want 0.5", res.Clocks[1])
	}
	if res.WaitSeconds[1] != 0.5 {
		t.Fatalf("victim wait %v, want 0.5 (waited from 0 to crash)", res.WaitSeconds[1])
	}
}

func TestValidateRejections(t *testing.T) {
	bad := []*Spec{
		{Slowdowns: []Slowdown{{Rank: -1, At: 0, Factor: 2}}},
		{Slowdowns: []Slowdown{{Rank: 0, At: 0, Factor: 1}}},
		{Crashes: []Crash{{Rank: 0, At: -1}}},
		{Jitter: &Jitter{Max: 0}},
		{Drop: &Drop{Prob: 1}},
		{Drop: &Drop{Prob: 0.5, Retries: -1}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: Validate() accepted %+v", i, s)
		}
	}
	if err := (&Spec{}).Validate(); err != nil {
		t.Errorf("empty spec rejected: %v", err)
	}
}

func TestEmpty(t *testing.T) {
	var nilSpec *Spec
	if !nilSpec.Empty() || !(&Spec{Seed: 9}).Empty() {
		t.Fatal("nil / seed-only specs should be Empty")
	}
	if (&Spec{Jitter: &Jitter{Max: 1}}).Empty() {
		t.Fatal("jitter spec should not be Empty")
	}
}
