// Package fault implements deterministic fault injection for the virtual
// machine: per-rank slowdown onsets, message delay jitter, message drops
// with bounded retransmission, and rank crashes.  Every decision is a pure
// function of a fixed seed and virtual-time quantities (rank, message
// sequence number), never of wall-clock time or goroutine scheduling, so an
// injected failure scenario reproduces bit-identically on every run — the
// same guarantee the simulator gives healthy machines.
//
// This is the perturbation harness the load-balancing literature evaluates
// balancers under (deliberately degraded nodes, skewed links): the paper's
// estimate-driven physics balancer, for example, must absorb a node that
// silently slows down mid-run, and the checkpoint/restart path must survive
// a node that disappears outright.
package fault

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"agcm/internal/sim"
)

// Slowdown degrades one rank's processor by Factor from virtual time At on.
// An interval straddling the onset is charged piecewise.
type Slowdown struct {
	Rank   int
	At     float64 // onset, virtual seconds
	Factor float64 // > 1
}

// Crash removes one rank at virtual time At: it executes nothing past that
// instant, though messages it already posted remain deliverable.
type Crash struct {
	Rank int
	At   float64 // virtual seconds
}

// Jitter adds a seeded per-message uniform delay in [0, Max) seconds to
// every inter-rank message's in-flight time.
type Jitter struct {
	Max float64
}

// Drop models a lossy interconnect with a stop-and-wait retransmission
// protocol: each transmission attempt of a message is lost with probability
// Prob; each loss costs Timeout virtual seconds before the retransmit; after
// Retries failed retransmissions the link is declared down and the sending
// rank aborts.
type Drop struct {
	Prob    float64 // per-attempt loss probability in [0, 1)
	Retries int     // retransmission budget per message
	Timeout float64 // virtual seconds per lost attempt
}

// Spec is a complete fault scenario.  The zero value injects nothing.
type Spec struct {
	Seed      uint64
	Slowdowns []Slowdown
	Crashes   []Crash
	Jitter    *Jitter
	Drop      *Drop
}

// Validate checks the scenario's parameters.
func (s *Spec) Validate() error {
	for _, sl := range s.Slowdowns {
		if sl.Rank < 0 {
			return fmt.Errorf("fault: slowdown rank %d negative", sl.Rank)
		}
		if sl.Factor <= 1 {
			return fmt.Errorf("fault: slowdown factor %g must exceed 1", sl.Factor)
		}
		if sl.At < 0 || math.IsNaN(sl.At) {
			return fmt.Errorf("fault: slowdown onset %g invalid", sl.At)
		}
	}
	for _, c := range s.Crashes {
		if c.Rank < 0 {
			return fmt.Errorf("fault: crash rank %d negative", c.Rank)
		}
		if c.At < 0 || math.IsNaN(c.At) {
			return fmt.Errorf("fault: crash time %g invalid", c.At)
		}
	}
	if j := s.Jitter; j != nil && (j.Max <= 0 || math.IsNaN(j.Max)) {
		return fmt.Errorf("fault: jitter max %g must be positive", j.Max)
	}
	if d := s.Drop; d != nil {
		if d.Prob < 0 || d.Prob >= 1 || math.IsNaN(d.Prob) {
			return fmt.Errorf("fault: drop probability %g outside [0, 1)", d.Prob)
		}
		if d.Retries < 0 {
			return fmt.Errorf("fault: drop retries %d negative", d.Retries)
		}
		if d.Timeout < 0 || math.IsNaN(d.Timeout) {
			return fmt.Errorf("fault: drop timeout %g invalid", d.Timeout)
		}
	}
	return nil
}

// Empty reports whether the scenario injects nothing.
func (s *Spec) Empty() bool {
	return s == nil || (len(s.Slowdowns) == 0 && len(s.Crashes) == 0 &&
		s.Jitter == nil && s.Drop == nil)
}

// String renders the scenario in the -fault-spec clause syntax accepted by
// Parse.
func (s *Spec) String() string {
	var parts []string
	if s.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", s.Seed))
	}
	for _, sl := range s.Slowdowns {
		parts = append(parts, fmt.Sprintf("slow:rank=%d,at=%g,factor=%g", sl.Rank, sl.At, sl.Factor))
	}
	for _, c := range s.Crashes {
		parts = append(parts, fmt.Sprintf("crash:rank=%d,at=%g", c.Rank, c.At))
	}
	if j := s.Jitter; j != nil {
		parts = append(parts, fmt.Sprintf("jitter:max=%g", j.Max))
	}
	if d := s.Drop; d != nil {
		parts = append(parts, fmt.Sprintf("drop:prob=%g,retries=%d,timeout=%g", d.Prob, d.Retries, d.Timeout))
	}
	return strings.Join(parts, ";")
}

// Injector implements sim.FaultHook for one Spec.  It is immutable after
// construction and safe for concurrent use by every rank goroutine.
type Injector struct {
	seed    uint64
	slow    map[int]Slowdown
	crashAt map[int]float64
	jitter  *Jitter
	drop    *Drop
}

var _ sim.FaultHook = (*Injector)(nil)

// NewInjector compiles a validated Spec into a hook for
// sim.Machine.SetFaultHook.  It panics on an invalid spec (a programming
// error; command-line input is validated by Parse).
func NewInjector(s *Spec) *Injector {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	in := &Injector{
		seed:    s.Seed,
		slow:    make(map[int]Slowdown, len(s.Slowdowns)),
		crashAt: make(map[int]float64, len(s.Crashes)),
		jitter:  s.Jitter,
		drop:    s.Drop,
	}
	for _, sl := range s.Slowdowns {
		in.slow[sl.Rank] = sl
	}
	for _, c := range s.Crashes {
		// Multiple crashes for one rank: the earliest wins.
		if at, ok := in.crashAt[c.Rank]; !ok || c.At < at {
			in.crashAt[c.Rank] = c.At
		}
	}
	return in
}

// ComputeSeconds stretches the interval [start, start+dt) by the rank's
// slowdown factor for the part past the onset.
func (in *Injector) ComputeSeconds(rank int, start, dt float64) float64 {
	sl, ok := in.slow[rank]
	if !ok {
		return dt
	}
	if start >= sl.At {
		return dt * sl.Factor
	}
	if start+dt <= sl.At {
		return dt
	}
	healthy := sl.At - start
	return healthy + (dt-healthy)*sl.Factor
}

// SendDelay returns the message's extra in-flight time: jitter plus any
// retransmission timeouts, both decided by a seeded hash of the globally
// unique (src, seq) identity so the outcome is independent of scheduling.
func (in *Injector) SendDelay(src, dst, tag int, seq int64, now float64) (float64, error) {
	var extra float64
	if j := in.jitter; j != nil {
		extra += uniform01(in.mix(1, uint64(src), uint64(seq), 0)) * j.Max
	}
	if d := in.drop; d != nil && d.Prob > 0 {
		attempt := 0
		for ; attempt <= d.Retries; attempt++ {
			if uniform01(in.mix(2, uint64(src), uint64(seq), uint64(attempt))) >= d.Prob {
				break
			}
			extra += d.Timeout
		}
		if attempt > d.Retries {
			return 0, fmt.Errorf("fault: message (seq %d) dropped on all %d attempts, link declared down",
				seq, d.Retries+1)
		}
	}
	return extra, nil
}

// CrashTime returns the rank's injected crash time, or +Inf.
func (in *Injector) CrashTime(rank int) float64 {
	if at, ok := in.crashAt[rank]; ok {
		return at
	}
	return math.Inf(1)
}

// Ranks returns every rank the scenario names, for validation against a
// machine size.
func (s *Spec) Ranks() []int {
	seen := map[int]bool{}
	for _, sl := range s.Slowdowns {
		seen[sl.Rank] = true
	}
	for _, c := range s.Crashes {
		seen[c.Rank] = true
	}
	ranks := make([]int, 0, len(seen))
	for r := range seen {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	return ranks
}

// mix is a splitmix64-style hash of the seed and up to four words — the
// same construction the physics package uses for its reproducible cloud
// field.
func (in *Injector) mix(stream, a, b, c uint64) uint64 {
	x := in.seed ^ 0x9E3779B97F4A7C15
	for _, v := range [4]uint64{stream, a, b, c} {
		x += v + 0x9E3779B97F4A7C15
		x ^= x >> 30
		x *= 0xBF58476D1CE4E5B9
		x ^= x >> 27
		x *= 0x94D049BB133111EB
		x ^= x >> 31
	}
	return x
}

// uniform01 maps a hash to [0, 1).
func uniform01(x uint64) float64 {
	return float64(x>>11) / float64(1<<53)
}
