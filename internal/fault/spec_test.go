package fault

import (
	"strings"
	"testing"
)

func TestParseFullSpec(t *testing.T) {
	s, err := Parse("seed=42; slow:rank=3,at=1.5,factor=4; crash:rank=1,at=9.2; jitter:max=2e-4; drop:prob=0.01,retries=4,timeout=5e-3")
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 42 {
		t.Errorf("Seed = %d, want 42", s.Seed)
	}
	if len(s.Slowdowns) != 1 || s.Slowdowns[0] != (Slowdown{Rank: 3, At: 1.5, Factor: 4}) {
		t.Errorf("Slowdowns = %+v", s.Slowdowns)
	}
	if len(s.Crashes) != 1 || s.Crashes[0] != (Crash{Rank: 1, At: 9.2}) {
		t.Errorf("Crashes = %+v", s.Crashes)
	}
	if s.Jitter == nil || s.Jitter.Max != 2e-4 {
		t.Errorf("Jitter = %+v", s.Jitter)
	}
	if s.Drop == nil || *s.Drop != (Drop{Prob: 0.01, Retries: 4, Timeout: 5e-3}) {
		t.Errorf("Drop = %+v", s.Drop)
	}
}

func TestParseDefaults(t *testing.T) {
	s, err := Parse("slow:rank=2,at=1")
	if err != nil {
		t.Fatal(err)
	}
	if s.Slowdowns[0].Factor != 2 {
		t.Errorf("default slowdown factor = %g, want 2", s.Slowdowns[0].Factor)
	}
	s, err = Parse("drop:prob=0.1,timeout=1e-3")
	if err != nil {
		t.Fatal(err)
	}
	if s.Drop.Retries != 3 {
		t.Errorf("default drop retries = %d, want 3", s.Drop.Retries)
	}
}

func TestParseEmpty(t *testing.T) {
	s, err := Parse("")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Empty() {
		t.Fatalf("Parse(\"\") = %+v, want empty spec", s)
	}
}

func TestParseRoundTrip(t *testing.T) {
	in := "seed=7;slow:rank=3,at=1.5,factor=4;crash:rank=1,at=9.2;jitter:max=0.0002;drop:prob=0.01,retries=4,timeout=0.005"
	s, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Parse(s.String())
	if err != nil {
		t.Fatalf("re-parsing String() %q: %v", s.String(), err)
	}
	if s2.String() != s.String() {
		t.Fatalf("round trip changed spec: %q vs %q", s.String(), s2.String())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ in, wantSub string }{
		{"boom:x=1", "unknown clause kind"},
		{"slow:rank=1,at=0,speed=2", "unknown parameter"},
		{"slow:at=0", "rank -1 negative"}, // missing rank fails validation
		{"crash:rank=notanumber,at=1", "not an integer"},
		{"jitter:max=zero", "not a number"},
		{"seed=abc", "bad seed"},
		{"slow:rank", "want key=value"},
		{"drop:prob=1.5,timeout=1", "outside [0, 1)"},
	}
	for _, c := range cases {
		_, err := Parse(c.in)
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q) error = %v, want substring %q", c.in, err, c.wantSub)
		}
	}
}

// TestParseErrorDeterministic pins which error Parse reports when several
// parameters are bad: assign visits keys in sorted order, so the
// alphabetically first unknown parameter wins regardless of map iteration
// order.
func TestParseErrorDeterministic(t *testing.T) {
	for i := 0; i < 50; i++ {
		_, err := Parse("slow:rank=1,zzz=1,aaa=2,mmm=3")
		if err == nil || !strings.Contains(err.Error(), `unknown parameter "aaa"`) {
			t.Fatalf("iteration %d: Parse error = %v, want the alphabetically first unknown parameter %q", i, err, "aaa")
		}
	}
}
