package physics

import (
	"fmt"

	"agcm/internal/comm"
	"agcm/internal/grid"
	"agcm/internal/loadbalance"
)

// Scheme selects the physics load-balancing strategy of Section 3.4.
type Scheme int

const (
	// None runs every column on its home processor (the original code).
	None Scheme = iota
	// Shuffle is scheme 1: cyclic all-to-all data shuffling (Figure 4).
	Shuffle
	// Greedy is scheme 2: sorted greedy surplus-to-deficit moves (Figure 5).
	Greedy
	// Pairwise is scheme 3, the adopted one: iterative sorted pairwise
	// exchange (Figure 6).
	Pairwise
)

// String returns the scheme name.
func (s Scheme) String() string {
	switch s {
	case None:
		return "none"
	case Shuffle:
		return "shuffle"
	case Greedy:
		return "greedy"
	case Pairwise:
		return "pairwise"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// SchemeByName returns the scheme whose String() form matches name.  Every
// scheme round-trips: SchemeByName(s.String()) == s.
func SchemeByName(name string) (Scheme, error) {
	for _, s := range []Scheme{None, Shuffle, Greedy, Pairwise} {
		if name == s.String() {
			return s, nil
		}
	}
	return 0, fmt.Errorf("physics: unknown scheme %q (none, shuffle, greedy, pairwise)", name)
}

// User tags for the balancing traffic.
const (
	tagColumns = 31 + iota // shipped column inputs (one tag per round added)
	tagResults = 61
	maxRounds  = 8
)

// packBookkeepingFlops is the per-column pack/unpack overhead charged to the
// clock — the "substantial amount of local bookkeeping" the paper warns
// about for schemes that move data.
const packBookkeepingFlops = 24

// Runner executes the Physics component on one rank with optional load
// balancing by real column movement: estimate loads from the previous pass,
// plan identical transfers on every rank, ship columns, compute them where
// they land, and return the results to their home subdomains.
type Runner struct {
	Model  *Model
	world  *comm.Comm
	cart   *comm.Cart2D
	local  grid.Local
	scheme Scheme
	rounds int

	myPrevFlops  float64
	haveEstimate bool

	// Persistent column storage: the column list, the structs and their
	// T/Q profiles all live in arenas refreshed in place each step, so the
	// unbalanced path allocates nothing at steady state.
	cols     []*Column
	colArena []Column
	tqArena  []float64
	held     []*Column

	// Load-estimate exchange staging.
	loadBuf []float64
	loads   []float64
	gOut    [][]float64
}

// NewRunner builds a physics runner.  rounds is the number of balancing
// rounds per step (the paper applies scheme 3 twice); it is ignored by
// None, Shuffle and Greedy.
func NewRunner(world *comm.Comm, cart *comm.Cart2D, local grid.Local,
	model *Model, scheme Scheme, rounds int) *Runner {
	if rounds < 1 {
		rounds = 1
	}
	if rounds > maxRounds {
		rounds = maxRounds
	}
	if scheme != Pairwise {
		rounds = 1
	}
	return &Runner{Model: model, world: world, cart: cart, local: local,
		scheme: scheme, rounds: rounds}
}

// Scheme returns the configured balancing scheme.
func (r *Runner) Scheme() Scheme { return r.scheme }

// PrevLoadSeconds returns the virtual seconds this rank's own columns cost
// during the previous step — the load estimate the balancer works from.
func (r *Runner) PrevLoadSeconds() float64 {
	return r.world.Proc().Model().FlopSeconds(r.myPrevFlops)
}

// segment is a run of columns sharing one origin, used to mirror every
// rank's holdings during planning.
type segment struct {
	origin, count int
}

// transfer is one concrete planned move of whole columns.
type transfer struct {
	round, src, dst, count int
}

// Step runs one physics step over the T and Q fields, balancing per the
// configured scheme.  Collective: all ranks call it each step.
func (r *Runner) Step(T, Q *grid.Field, step int) {
	p := r.world.Proc()
	cols := r.extractColumns(T, Q)

	if r.scheme == None || !r.haveEstimate || r.world.Size() == 1 {
		total := 0.0
		for _, c := range cols {
			f := r.Model.Compute(c, step)
			p.Compute(f)
			total += f
		}
		r.myPrevFlops = total
		r.haveEstimate = true
		r.writeBack(cols, T, Q)
		return
	}

	// --- 1. Share the previous-pass load estimates. ---
	if r.gOut == nil {
		r.gOut = make([][]float64, r.world.Size())
		r.loads = make([]float64, r.world.Size())
		r.loadBuf = make([]float64, 1)
	}
	r.loadBuf[0] = r.PrevLoadSeconds()
	parts := r.world.AllgathervInto(r.loadBuf, r.gOut)
	for i, q := range parts {
		r.loads[i] = q[0]
	}

	// --- 2. Plan transfers; identical on every rank. ---
	transfers, holdings := r.plan(r.loads)

	// --- 3. Execute the column movements round by round. ---
	held := append(r.held[:0], cols...)
	for _, t := range transfers {
		tag := tagColumns + t.round
		switch r.world.Rank() {
		case t.src:
			nk := len(held) - t.count
			out := held[nk:]
			held = held[:nk]
			r.world.Send(t.dst, tag, r.packInputs(out))
			p.Compute(packBookkeepingFlops * float64(t.count))
		case t.dst:
			in := r.unpackInputs(r.world.Recv(t.src, tag))
			held = append(held, in...)
			p.Compute(packBookkeepingFlops * float64(len(in)))
		}
	}
	r.held = held // retain the grown backing array for the next step

	// --- 4. Compute every held column where it landed. ---
	me := r.world.Rank()
	flopsByOrigin := make(map[int]float64)
	for _, c := range held {
		f := r.Model.Compute(c, step)
		p.Compute(f)
		flopsByOrigin[c.Origin] += f
		if c.Origin == me {
			// Own columns normally share pointers with cols, but a
			// column relayed back home arrives as a fresh struct:
			// re-link it so its result is not lost.
			cols[c.Index] = c
		}
	}

	// --- 5. Return results to their home subdomains. ---
	byOrigin := make(map[int][]*Column)
	for _, c := range held {
		if c.Origin != me {
			byOrigin[c.Origin] = append(byOrigin[c.Origin], c)
		}
	}
	for origin := 0; origin < r.world.Size(); origin++ {
		group := byOrigin[origin]
		if len(group) == 0 {
			continue
		}
		buf := r.packResults(group)
		buf = append(buf, flopsByOrigin[origin])
		r.world.Send(origin, tagResults, buf)
		p.Compute(packBookkeepingFlops * float64(len(group)))
	}
	// Who holds my columns now?  The holdings simulation says exactly.
	myFlops := flopsByOrigin[me]
	for holder := 0; holder < r.world.Size(); holder++ {
		if holder == me {
			continue
		}
		has := false
		for _, seg := range holdings[holder] {
			if seg.origin == me && seg.count > 0 {
				has = true
				break
			}
		}
		if !has {
			continue
		}
		buf := r.world.Recv(holder, tagResults)
		myFlops += buf[len(buf)-1]
		r.unpackResults(buf[:len(buf)-1], cols)
	}
	// Columns I computed myself (own or foreign) already mutated in
	// place; own results for own columns need no copying because held
	// shares pointers with cols.
	r.myPrevFlops = myFlops
	r.writeBack(cols, T, Q)
}

// plan converts load estimates into whole-column transfers, mirroring every
// rank's holdings so result routing needs no extra communication.  All
// inputs are globally known, so every rank computes the identical plan.
func (r *Runner) plan(loads []float64) ([]transfer, [][]segment) {
	n := r.world.Size()
	d := r.local.Decomp
	counts := make([]int, n)
	totalCols := 0
	for rank := 0; rank < n; rank++ {
		row, col := rank/d.Px, rank%d.Px
		la, lb := d.LatRange(row)
		lo, hi := d.LonRange(col)
		counts[rank] = (lb - la) * (hi - lo)
		totalCols += counts[rank]
	}
	totalLoad := 0.0
	for _, v := range loads {
		totalLoad += v
	}
	perCol := totalLoad / float64(totalCols)
	if perCol <= 0 {
		return nil, initialHoldings(counts)
	}

	holdings := initialHoldings(counts)
	cur := append([]float64(nil), loads...)
	var transfers []transfer
	for round := 0; round < r.rounds; round++ {
		var moves []loadbalance.Move
		switch r.scheme {
		case Shuffle:
			moves = loadbalance.CyclicShuffle(cur)
		case Greedy:
			moves = loadbalance.SortedGreedy(cur, perCol)
		case Pairwise:
			moves = loadbalance.PairwiseStep(cur, perCol, 0)
		}
		for _, m := range moves {
			cnt := int(m.Amount/perCol + 0.5)
			avail := heldCount(holdings[m.Src]) - 1 // keep at least one
			if cnt > avail {
				cnt = avail
			}
			if cnt <= 0 {
				continue
			}
			transfers = append(transfers, transfer{round: round, src: m.Src, dst: m.Dst, count: cnt})
			moved := popTail(&holdings[m.Src], cnt)
			holdings[m.Dst] = append(holdings[m.Dst], moved...)
			amt := float64(cnt) * perCol
			cur[m.Src] -= amt
			cur[m.Dst] += amt
		}
	}
	return transfers, holdings
}

func initialHoldings(counts []int) [][]segment {
	h := make([][]segment, len(counts))
	for rank, c := range counts {
		h[rank] = []segment{{origin: rank, count: c}}
	}
	return h
}

func heldCount(segs []segment) int {
	n := 0
	for _, s := range segs {
		n += s.count
	}
	return n
}

// popTail removes the last n columns from a holdings list and returns them
// as segments in their held order.
func popTail(segs *[]segment, n int) []segment {
	s := *segs
	var tail []segment
	for n > 0 && len(s) > 0 {
		last := &s[len(s)-1]
		take := last.count
		if take > n {
			take = n
		}
		tail = append([]segment{{origin: last.origin, count: take}}, tail...)
		last.count -= take
		n -= take
		if last.count == 0 {
			s = s[:len(s)-1]
		}
	}
	*segs = s
	return tail
}

// extractColumns builds the local column list in the canonical (j, i)
// order.  The structs and their profile slices live in per-Runner arenas
// refreshed in place, so steady-state extraction allocates nothing; the
// pointer table is re-seeded each step because balancing may have swapped
// foreign column structs into it.
func (r *Runner) extractColumns(T, Q *grid.Field) []*Column {
	nlat, nlon, nl := r.local.Nlat(), r.local.Nlon(), r.local.Nlayers()
	ncols := nlat * nlon
	if r.cols == nil {
		r.cols = make([]*Column, ncols)
		r.colArena = make([]Column, ncols)
		r.tqArena = make([]float64, 2*ncols*nl)
		for idx := range r.colArena {
			r.colArena[idx].T = r.tqArena[2*idx*nl : (2*idx+1)*nl]
			r.colArena[idx].Q = r.tqArena[(2*idx+1)*nl : (2*idx+2)*nl]
		}
	}
	me := r.world.Rank()
	for j := 0; j < nlat; j++ {
		for i := 0; i < nlon; i++ {
			idx := j*nlon + i
			c := &r.colArena[idx]
			c.Origin = me
			c.Index = idx
			c.J = r.local.GlobalLat(j)
			c.I = r.local.GlobalLon(i)
			copy(c.T, T.Column(j, i))
			copy(c.Q, Q.Column(j, i))
			r.cols[idx] = c
		}
	}
	return r.cols
}

// writeBack stores the (possibly remotely computed) column profiles into
// the local fields.
func (r *Runner) writeBack(cols []*Column, T, Q *grid.Field) {
	nlon := r.local.Nlon()
	for _, c := range cols {
		j, i := c.Index/nlon, c.Index%nlon
		copy(T.Column(j, i), c.T)
		copy(Q.Column(j, i), c.Q)
	}
}

// packInputs serializes columns for shipment: per column J, I, Origin,
// Index, then the T and Q profiles.
func (r *Runner) packInputs(cols []*Column) []float64 {
	nl := r.local.Nlayers()
	buf := make([]float64, 0, len(cols)*(4+2*nl))
	for _, c := range cols {
		buf = append(buf, float64(c.J), float64(c.I), float64(c.Origin), float64(c.Index))
		buf = append(buf, c.T...)
		buf = append(buf, c.Q...)
	}
	return buf
}

func (r *Runner) unpackInputs(buf []float64) []*Column {
	nl := r.local.Nlayers()
	stride := 4 + 2*nl
	if len(buf)%stride != 0 {
		panic(fmt.Sprintf("physics: column message of %d values not divisible by %d", len(buf), stride))
	}
	cols := make([]*Column, 0, len(buf)/stride)
	for off := 0; off < len(buf); off += stride {
		c := &Column{
			J: int(buf[off]), I: int(buf[off+1]),
			Origin: int(buf[off+2]), Index: int(buf[off+3]),
			T: append([]float64(nil), buf[off+4:off+4+nl]...),
			Q: append([]float64(nil), buf[off+4+nl:off+stride]...),
		}
		cols = append(cols, c)
	}
	return cols
}

// packResults serializes computed columns for the trip home: per column
// Index, then T and Q.
func (r *Runner) packResults(cols []*Column) []float64 {
	nl := r.local.Nlayers()
	buf := make([]float64, 0, len(cols)*(1+2*nl))
	for _, c := range cols {
		buf = append(buf, float64(c.Index))
		buf = append(buf, c.T...)
		buf = append(buf, c.Q...)
	}
	return buf
}

// unpackResults applies returned column profiles to the home column list.
func (r *Runner) unpackResults(buf []float64, cols []*Column) {
	nl := r.local.Nlayers()
	stride := 1 + 2*nl
	if len(buf)%stride != 0 {
		panic(fmt.Sprintf("physics: result message of %d values not divisible by %d", len(buf), stride))
	}
	for off := 0; off < len(buf); off += stride {
		idx := int(buf[off])
		c := cols[idx]
		copy(c.T, buf[off+1:off+1+nl])
		copy(c.Q, buf[off+1+nl:off+stride])
	}
}
