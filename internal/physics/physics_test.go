package physics

import (
	"fmt"
	"math"
	"testing"

	"agcm/internal/comm"
	"agcm/internal/grid"
	"agcm/internal/machine"
	"agcm/internal/sim"
)

const stepsPerDay = 48

func testColumn(spec grid.Spec, j, i int) *Column {
	lat := spec.LatCenter(j)
	k := spec.Nlayers
	c := &Column{J: j, I: i, T: make([]float64, k), Q: make([]float64, k)}
	for kk := 0; kk < k; kk++ {
		c.T[kk] = 288 - 60*math.Sin(lat)*math.Sin(lat) - 6*float64(kk)
		c.Q[kk] = 0.015 * math.Cos(lat) * math.Exp(-0.4*float64(kk))
	}
	return c
}

func TestNoise01Range(t *testing.T) {
	for j := 0; j < 50; j++ {
		for i := 0; i < 50; i += 7 {
			v := noise01(j, i, 3)
			if v < 0 || v >= 1 {
				t.Fatalf("noise01(%d,%d,3) = %g", j, i, v)
			}
		}
	}
	if noise01(3, 4, 5) != noise01(3, 4, 5) {
		t.Fatal("noise01 not deterministic")
	}
	if noise01(3, 4, 5) == noise01(3, 4, 6) && noise01(1, 1, 1) == noise01(1, 1, 2) {
		t.Fatal("noise01 ignores the epoch")
	}
}

func TestComputeDeterministic(t *testing.T) {
	spec := grid.TwoByTwoPointFive(9)
	m := NewModel(spec, stepsPerDay)
	a := testColumn(spec, 45, 10)
	b := testColumn(spec, 45, 10)
	fa := m.Compute(a, 7)
	fb := m.Compute(b, 7)
	if fa != fb {
		t.Fatalf("flops differ: %g vs %g", fa, fb)
	}
	for k := range a.T {
		if a.T[k] != b.T[k] || a.Q[k] != b.Q[k] {
			t.Fatalf("profiles differ at layer %d", k)
		}
	}
}

func TestDaylightCostsMore(t *testing.T) {
	spec := grid.TwoByTwoPointFive(9)
	m := NewModel(spec, stepsPerDay)
	// Two equatorial columns on opposite sides of the planet: one is in
	// daylight, the other in darkness at any step.
	c1 := testColumn(spec, 45, 0)
	c2 := testColumn(spec, 45, spec.Nlon/2)
	f1 := m.EstimateFlops(c1, 0)
	f2 := m.EstimateFlops(c2, 0)
	day, night := f1, f2
	if m.CosZenith(c1, 0) < m.CosZenith(c2, 0) {
		day, night = f2, f1
	}
	if day <= night {
		t.Fatalf("daylight column (%g flops) not costlier than night (%g)", day, night)
	}
}

func TestTropicsCostMoreThanPoles(t *testing.T) {
	spec := grid.TwoByTwoPointFive(9)
	m := NewModel(spec, stepsPerDay)
	// Average over a full day to remove the day/night phase.
	avg := func(j int) float64 {
		var sum float64
		for step := 0; step < stepsPerDay; step++ {
			sum += m.EstimateFlops(testColumn(spec, j, 7), step)
		}
		return sum / stepsPerDay
	}
	tropics := avg(spec.Nlat / 2)
	pole := avg(1)
	if tropics <= pole {
		t.Fatalf("tropical column (%g flops) not costlier than polar (%g)", tropics, pole)
	}
}

func TestComputeKeepsProfilesBounded(t *testing.T) {
	spec := grid.TwoByTwoPointFive(9)
	m := NewModel(spec, stepsPerDay)
	c := testColumn(spec, 50, 20)
	for step := 0; step < 500; step++ {
		m.Compute(c, step)
	}
	for k, v := range c.T {
		if v < 150 || v > 400 {
			t.Fatalf("T[%d] = %g K after 500 steps", k, v)
		}
	}
	for k, v := range c.Q {
		if v < 0 || v > 0.05 {
			t.Fatalf("Q[%d] = %g after 500 steps", k, v)
		}
	}
}

func TestEstimateFlopsDoesNotMutate(t *testing.T) {
	spec := grid.TwoByTwoPointFive(9)
	m := NewModel(spec, stepsPerDay)
	c := testColumn(spec, 45, 3)
	t0 := append([]float64(nil), c.T...)
	m.EstimateFlops(c, 5)
	for k := range t0 {
		if c.T[k] != t0[k] {
			t.Fatal("EstimateFlops mutated the column")
		}
	}
}

func TestSchemeStrings(t *testing.T) {
	want := map[Scheme]string{None: "none", Shuffle: "shuffle", Greedy: "greedy", Pairwise: "pairwise"}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), w)
		}
	}
}

func TestPopTail(t *testing.T) {
	segs := []segment{{origin: 0, count: 5}, {origin: 1, count: 3}}
	tail := popTail(&segs, 4)
	// Takes 3 from origin 1 and 1 from origin 0, preserving held order.
	if len(tail) != 2 || tail[0].origin != 0 || tail[0].count != 1 ||
		tail[1].origin != 1 || tail[1].count != 3 {
		t.Fatalf("tail = %+v", tail)
	}
	if len(segs) != 1 || segs[0].count != 4 {
		t.Fatalf("remaining = %+v", segs)
	}
}

// runPhysics integrates `steps` physics steps on a mesh and returns the
// gathered T field and the sim result.
func runPhysics(t *testing.T, spec grid.Spec, py, px, steps int,
	scheme Scheme, rounds int) ([]float64, *sim.Result) {
	t.Helper()
	d, err := grid.NewDecomp(spec, py, px)
	if err != nil {
		t.Fatal(err)
	}
	var out []float64
	m := sim.New(py*px, machine.CrayT3D())
	res, err := m.Run(func(p *sim.Proc) error {
		world := comm.World(p)
		cart := comm.NewCart2D(world, py, px)
		l := grid.NewLocal(d, cart.MyRow, cart.MyCol)
		T := grid.NewField(l, 1)
		Q := grid.NewField(l, 1)
		for j := 0; j < l.Nlat(); j++ {
			for i := 0; i < l.Nlon(); i++ {
				ref := testColumn(spec, l.GlobalLat(j), l.GlobalLon(i))
				copy(T.Column(j, i), ref.T)
				copy(Q.Column(j, i), ref.Q)
			}
		}
		r := NewRunner(world, cart, l, NewModel(spec, stepsPerDay), scheme, rounds)
		for n := 0; n < steps; n++ {
			p.Timed("physics", func() { r.Step(T, Q, n) })
		}
		g := grid.Gather(world, cart, T)
		if world.Rank() == 0 {
			out = g
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out, res
}

func TestBalancedSchemesPreserveResults(t *testing.T) {
	// The transparency invariant: moving columns around must not change
	// the answer, for any scheme on any mesh.
	spec := grid.Spec{Nlon: 24, Nlat: 16, Nlayers: 4}
	want, _ := runPhysics(t, spec, 1, 1, 5, None, 1)
	for _, tc := range []struct {
		scheme Scheme
		py, px int
	}{
		{None, 2, 2}, {Pairwise, 2, 2}, {Pairwise, 4, 2}, {Pairwise, 4, 3},
		{Greedy, 2, 3}, {Shuffle, 2, 2},
	} {
		name := fmt.Sprintf("%s/%dx%d", tc.scheme, tc.py, tc.px)
		t.Run(name, func(t *testing.T) {
			got, _ := runPhysics(t, spec, tc.py, tc.px, 5, tc.scheme, 2)
			for idx := range want {
				if math.Abs(got[idx]-want[idx]) > 1e-12 {
					t.Fatalf("T[%d] = %g, want %g", idx, got[idx], want[idx])
				}
			}
		})
	}
}

func TestUnbalancedPhysicsIsImbalanced(t *testing.T) {
	// The paper measures 35-48% imbalance in the unbalanced Physics.
	spec := grid.TwoByTwoPointFive(9)
	_, res := runPhysics(t, spec, 4, 4, 2, None, 1)
	loads := res.Accounts["physics"]
	max, sum := 0.0, 0.0
	for _, v := range loads {
		sum += v
		if v > max {
			max = v
		}
	}
	avg := sum / float64(len(loads))
	imb := (max - avg) / avg
	if imb < 0.15 {
		t.Fatalf("unbalanced physics imbalance only %.1f%%; load model too uniform", imb*100)
	}
}

func TestPairwiseBalancingReducesCriticalPath(t *testing.T) {
	spec := grid.TwoByTwoPointFive(9)
	const steps = 4
	_, resNone := runPhysics(t, spec, 4, 4, steps, None, 1)
	_, resBal := runPhysics(t, spec, 4, 4, steps, Pairwise, 2)
	tNone := resNone.MaxAccount("physics")
	tBal := resBal.MaxAccount("physics")
	if tBal >= tNone {
		t.Fatalf("pairwise balancing did not help: %.3f s vs %.3f s", tBal, tNone)
	}
}

func TestRunnerDeterministic(t *testing.T) {
	spec := grid.Spec{Nlon: 24, Nlat: 16, Nlayers: 3}
	a, ra := runPhysics(t, spec, 2, 2, 4, Pairwise, 2)
	b, rb := runPhysics(t, spec, 2, 2, 4, Pairwise, 2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("results differ across identical runs")
		}
	}
	for r := range ra.Clocks {
		if ra.Clocks[r] != rb.Clocks[r] {
			t.Fatal("clocks differ across identical runs")
		}
	}
}

func TestPairwiseAbsorbsDegradedNode(t *testing.T) {
	// Hardware heterogeneity: one node runs 3x slower.  The balancer
	// only sees per-rank times, so it should move columns off the slow
	// node exactly as it moves them off physics hot spots.
	spec := grid.TwoByTwoPointFive(9)
	const py, px, steps = 4, 4, 4
	run := func(scheme Scheme) *sim.Result {
		d, _ := grid.NewDecomp(spec, py, px)
		models := make([]sim.CostModel, py*px)
		for i := range models {
			models[i] = machine.CrayT3D()
		}
		models[5] = machine.Degraded(machine.CrayT3D(), 3)
		m := sim.NewHeterogeneous(models)
		res, err := m.Run(func(p *sim.Proc) error {
			world := comm.World(p)
			cart := comm.NewCart2D(world, py, px)
			l := grid.NewLocal(d, cart.MyRow, cart.MyCol)
			T := grid.NewField(l, 1)
			Q := grid.NewField(l, 1)
			for j := 0; j < l.Nlat(); j++ {
				for i := 0; i < l.Nlon(); i++ {
					ref := testColumn(spec, l.GlobalLat(j), l.GlobalLon(i))
					copy(T.Column(j, i), ref.T)
					copy(Q.Column(j, i), ref.Q)
				}
			}
			r := NewRunner(world, cart, l, NewModel(spec, stepsPerDay), scheme, 2)
			for n := 0; n < steps; n++ {
				p.Timed("physics", func() { r.Step(T, Q, n) })
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	unbal := run(None).MaxAccount("physics")
	bal := run(Pairwise).MaxAccount("physics")
	if bal >= 0.85*unbal {
		t.Fatalf("balancer did not absorb the slow node: %.4f s vs %.4f s unbalanced", bal, unbal)
	}
}

func TestColumnPackUnpackRoundTrip(t *testing.T) {
	spec := grid.Spec{Nlon: 8, Nlat: 8, Nlayers: 3}
	d, _ := grid.NewDecomp(spec, 1, 1)
	m := sim.New(1, machine.Paragon())
	_, err := m.Run(func(p *sim.Proc) error {
		world := comm.World(p)
		cart := comm.NewCart2D(world, 1, 1)
		l := grid.NewLocal(d, 0, 0)
		r := NewRunner(world, cart, l, NewModel(spec, stepsPerDay), Pairwise, 2)
		orig := []*Column{testColumn(spec, 2, 3), testColumn(spec, 5, 1)}
		orig[0].Origin, orig[0].Index = 0, 19
		orig[1].Origin, orig[1].Index = 0, 41
		got := r.unpackInputs(r.packInputs(orig))
		if len(got) != 2 {
			return fmt.Errorf("got %d columns", len(got))
		}
		for ci := range orig {
			o, g := orig[ci], got[ci]
			if o.J != g.J || o.I != g.I || o.Origin != g.Origin || o.Index != g.Index {
				return fmt.Errorf("metadata mismatch: %+v vs %+v", o, g)
			}
			for k := range o.T {
				if o.T[k] != g.T[k] || o.Q[k] != g.Q[k] {
					return fmt.Errorf("profile mismatch at %d", k)
				}
			}
		}
		// Results round trip.
		got[0].T[0] = 999
		cols := make([]*Column, 64)
		cols[19], cols[41] = orig[0], orig[1]
		r.unpackResults(r.packResults(got), cols)
		if cols[19].T[0] != 999 {
			return fmt.Errorf("result not applied")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
