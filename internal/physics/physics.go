// Package physics implements the AGCM/Physics component: column processes
// (radiation, boundary-layer mixing, cumulus convection) whose computational
// cost varies strongly in space and time.  The paper's Section 3.4 measures
// 35-48% load imbalance in this component and balances it with the iterative
// pairwise-exchange scheme; this package provides both the column model that
// creates the imbalance and the parallel runner that executes any of the
// three balancing schemes with real column data movement.
//
// The cost of a column depends, as in the paper, on "whether it is day or
// night, the cloud distribution, and the amount of cumulus convection
// determined by the conditional stability of the atmosphere": the sunlit
// hemisphere pays for shortwave radiation, a seeded pseudo-random cloud
// field modulates the radiative work, and moist tropical columns undergo a
// variable number of convective-adjustment iterations.
package physics

import (
	"math"

	"agcm/internal/grid"
)

// Calibrated per-column operation counts.  With nine layers these average
// about 6800 flops per column per step, which places the simulated
// single-node Physics cost of the 2x2.5x9 model near the paper's Table 4
// residual (total minus Dynamics).
const (
	baseFlops        = 950 // always-on surface/bookkeeping work
	lwPairFlops      = 63  // longwave exchange, per layer pair
	swLayerFlops     = 256 // shortwave path, per layer, daylight only
	cloudLayerFlops  = 162 // extra radiative work per cloudy layer
	pblLayerFlops    = 52  // boundary-layer mixing, per layer
	cuIterLayerFlops = 104 // convective adjustment, per iteration per layer
	// MaxConvectionIters bounds the convective adjustment loop.
	MaxConvectionIters = 6
)

// Column is one grid column's physics state, self-contained so it can be
// shipped to another processor, computed there, and returned.
type Column struct {
	// Origin is the world rank whose subdomain owns the column; Index is
	// the column's position in the origin's local column ordering.
	Origin, Index int
	// J, I are the global grid indices (they seed the cloud field and
	// locate the column for the solar geometry).
	J, I int
	// T and Q are the temperature (K) and specific humidity profiles,
	// surface layer first.
	T, Q []float64
}

// Model evaluates column physics.  It is deterministic: the same column at
// the same step produces the same result and the same cost on any
// processor — which is what makes load balancing by data movement
// transparent to the simulation's answer.  The scratch fields only cache
// values the computation would otherwise rebuild, so they never change an
// answer; a Model belongs to one rank and Compute is not reentrant.
type Model struct {
	Spec        grid.Spec
	StepsPerDay int

	// Longwave-exchange scratch: t4 holds each layer's (T/300)^4 built
	// with the same multiplication chain as the direct loop; winv holds
	// the 1/(1+distance) pair weights, divided out once.
	t4, winv []float64
}

// NewModel builds a physics model for the given grid.
func NewModel(spec grid.Spec, stepsPerDay int) *Model {
	if stepsPerDay < 1 {
		panic("physics: StepsPerDay must be positive")
	}
	return &Model{Spec: spec, StepsPerDay: stepsPerDay}
}

// noise01 is a deterministic hash of (j, i, epoch) to [0, 1): the
// unpredictable-but-reproducible cloud field.
func noise01(j, i, epoch int) float64 {
	x := uint64(j)*0x9E3779B97F4A7C15 ^ uint64(i)*0xC2B2AE3D27D4EB4F ^ uint64(epoch)*0x165667B19E3779F9
	x ^= x >> 31
	x *= 0xD6E8FEB86659FD93
	x ^= x >> 27
	x *= 0xD6E8FEB86659FD93
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// CosZenith returns the cosine of the solar zenith angle for the column at
// the given step (equinox declination; the sun moves once around per
// simulated day).  Positive means daylight.
func (m *Model) CosZenith(c *Column, step int) float64 {
	lat := m.Spec.LatCenter(c.J)
	lon := m.Spec.LonCenter(c.I)
	hour := lon + 2*math.Pi*float64(step%m.StepsPerDay)/float64(m.StepsPerDay)
	return math.Cos(lat) * math.Cos(hour)
}

// Cloudiness returns the column's cloud fraction in [0, 1]: a moisture-
// weighted seeded noise field that evolves every few steps.
func (m *Model) Cloudiness(c *Column, step int) float64 {
	qsfc := c.Q[0]
	moist := qsfc / 0.015 // ~1 in the tropics, ~0 at the poles
	if moist > 1 {
		moist = 1
	}
	n := noise01(c.J, c.I, step/4)
	cf := 0.3*moist + 0.7*moist*n
	if cf > 1 {
		cf = 1
	}
	return cf
}

// Compute runs the column physics for one step, mutating T and Q in place,
// and returns the calibrated flop count of the work performed — the number
// the caller charges to the virtual clock.  The cost varies column to
// column exactly as the paper describes, producing the load imbalance that
// Section 3.4 measures.
func (m *Model) Compute(c *Column, step int) float64 {
	k := len(c.T)
	flops := float64(baseFlops)

	// --- Longwave radiation: every layer pair exchanges. ---
	// Scaled Stefan-Boltzmann exchange, cooling upper layers that are
	// warmer than their neighbours would be in radiative equilibrium.
	// The fourth powers and pair weights are cached — refreshed as each
	// layer updates — with the identical multiplication chain and
	// division, so every term matches the direct nested loop bit for bit.
	if cap(m.t4) < k {
		m.t4 = make([]float64, k)
		m.winv = make([]float64, k)
		for d := 0; d < k; d++ {
			m.winv[d] = 1.0 / float64(1+d)
		}
	}
	t4 := m.t4[:k]
	winv := m.winv[:k]
	for kk := 0; kk < k; kk++ {
		t := c.T[kk] / 300
		t4[kk] = t * t * t * t
	}
	for k1 := 0; k1 < k; k1++ {
		var heat float64
		p1 := t4[k1]
		for k2 := 0; k2 < k1; k2++ {
			heat += winv[k1-k2] * (t4[k2] - p1)
		}
		for k2 := k1 + 1; k2 < k; k2++ {
			heat += winv[k2-k1] * (t4[k2] - p1)
		}
		c.T[k1] += 0.02 * heat
		t := c.T[k1] / 300
		t4[k1] = t * t * t * t
	}
	flops += float64(k*(k+1)/2) * lwPairFlops

	// --- Shortwave radiation: daylight columns only. ---
	cosz := m.CosZenith(c, step)
	cloud := m.Cloudiness(c, step)
	if cosz > 0 {
		absorb := 0.5 * cosz * (1 - 0.6*cloud)
		for kk := 0; kk < k; kk++ {
			c.T[kk] += 0.01 * absorb / float64(1+kk)
		}
		flops += float64(k) * swLayerFlops
		// Cloudy layers add overlap/scattering work.
		flops += cloud * float64(k) * cloudLayerFlops
	}

	// --- Boundary-layer mixing of heat and moisture. ---
	for kk := 0; kk+1 < min(3, k); kk++ {
		dT := c.T[kk] - c.T[kk+1]
		c.T[kk] -= 0.05 * dT * 0.1
		c.T[kk+1] += 0.05 * dT * 0.1
		dQ := c.Q[kk] - c.Q[kk+1]
		c.Q[kk] -= 0.02 * dQ
		c.Q[kk+1] += 0.02 * dQ
	}
	flops += float64(k) * pblLayerFlops

	// --- Cumulus convection: conditional instability drives a variable
	// number of adjustment iterations — the paper's dominant source of
	// unpredictable load. ---
	// Surface heating plus tropical moisture destabilize the column.
	if cosz > 0 {
		c.T[0] += 0.15 * cosz * (1 - 0.3*cloud)
	}
	critLapse := 2.0 - 80.0*c.Q[0] // moist columns convect sooner
	if critLapse < 0.3 {
		critLapse = 0.3
	}
	iters := 0
	for ; iters < MaxConvectionIters; iters++ {
		adjusted := false
		for kk := 0; kk+1 < k; kk++ {
			lapse := c.T[kk] - c.T[kk+1]
			if lapse > critLapse+6.0*float64(kk) {
				ex := 0.5 * (lapse - 6.0*float64(kk))
				c.T[kk] -= 0.5 * ex
				c.T[kk+1] += 0.5 * ex
				c.Q[kk] *= 0.97 // rainout
				adjusted = true
			}
		}
		if !adjusted {
			break
		}
	}
	flops += float64(iters) * float64(k) * cuIterLayerFlops

	// --- Weak relaxation keeps profiles bounded over long runs. ---
	lat := m.Spec.LatCenter(c.J)
	teq := 288 - 60*math.Sin(lat)*math.Sin(lat)
	qeq := 0.015 * math.Cos(lat)
	for kk := 0; kk < k; kk++ {
		c.T[kk] += 0.002 * (teq - 6*float64(kk) - c.T[kk])
		c.Q[kk] += 0.002 * (qeq*math.Exp(-0.4*float64(kk)) - c.Q[kk])
		if c.Q[kk] < 0 {
			c.Q[kk] = 0
		}
	}
	return flops
}

// EstimateFlops returns the cost Compute would report for the column
// without mutating it — used only by tests that need a cheap oracle.
func (m *Model) EstimateFlops(c *Column, step int) float64 {
	cp := &Column{Origin: c.Origin, Index: c.Index, J: c.J, I: c.I,
		T: append([]float64(nil), c.T...), Q: append([]float64(nil), c.Q...)}
	return m.Compute(cp, step)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
