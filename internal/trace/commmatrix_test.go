package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"agcm/internal/sim"
	"agcm/internal/topology"
)

// loggedResult runs a small ring exchange with the event log enabled.
func loggedResult(t *testing.T) *sim.Result {
	t.Helper()
	m := sim.New(4, flatModel{})
	m.EnableEventLog()
	res, err := m.Run(func(p *sim.Proc) error {
		n := p.Ranks()
		next := (p.Rank() + 1) % n
		prev := (p.Rank() + n - 1) % n
		p.Send(next, 1, []float64{1, 2}, 16)
		p.Recv(prev, 1)
		// Rank 0 also floods rank 2 to make a clear hottest pair.
		if p.Rank() == 0 {
			p.Send(2, 2, make([]float64, 100), 800)
		}
		if p.Rank() == 2 {
			p.Recv(0, 2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCommMatrix(t *testing.T) {
	res := loggedResult(t)
	m := NewCommMatrix(res)
	if m == nil {
		t.Fatal("nil matrix with event log enabled")
	}
	if msgs, bytes := m.At(0, 1); msgs != 1 || bytes != 16 {
		t.Fatalf("At(0,1) = %d msgs %d bytes", msgs, bytes)
	}
	if msgs, bytes := m.At(0, 2); msgs != 1 || bytes != 800 {
		t.Fatalf("At(0,2) = %d msgs %d bytes", msgs, bytes)
	}
	if got, want := m.TotalBytes(), int64(4*16+800); got != want {
		t.Fatalf("TotalBytes = %d, want %d", got, want)
	}

	hot := m.HottestPairs(2)
	if len(hot) != 2 || hot[0].Src != 0 || hot[0].Dst != 2 {
		t.Fatalf("HottestPairs = %+v", hot)
	}
	// Equal-weight ring pairs tie-break by (src, dst).
	if hot[1].Src != 0 || hot[1].Dst != 1 {
		t.Fatalf("tie-break wrong: %+v", hot[1])
	}

	raw, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back CommMatrix
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Ranks != 4 || back.Bytes[2] != 800 {
		t.Fatalf("JSON round-trip lost data: %+v", back)
	}

	grid := m.CommMatrixTable(8)
	if !strings.Contains(grid, "kB") || len(strings.Split(strings.TrimSpace(grid), "\n")) != 5 {
		t.Fatalf("grid table malformed:\n%s", grid)
	}
	pairsView := m.CommMatrixTable(2)
	if !strings.Contains(pairsView, "hottest pairs") {
		t.Fatalf("large-world view missing pairs listing:\n%s", pairsView)
	}

	// No event log -> no matrix.
	plain := sim.New(2, flatModel{})
	pres, err := plain.Run(func(p *sim.Proc) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if NewCommMatrix(pres) != nil {
		t.Fatal("matrix from run without event log")
	}
}

func TestLinkUtilizationTable(t *testing.T) {
	topo, err := topology.NewMesh2D(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	n, err := topology.NewNetworkParams(topo, topology.RowMajor(), topology.Params{
		BaseSeconds: 1e-4, HopSeconds: 1e-5, LinkBytesPerSec: 1e7, InjectBytesPerSec: 1e7,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.RouteSeconds(0, 3, 1000, 0)
	n.RouteSeconds(1, 0, 500, 0)

	rep, err := n.Contend([]topology.Transfer{
		{Src: 0, Dst: 3, Bytes: 1000, Start: 0, Seq: 1},
		{Src: 1, Dst: 0, Bytes: 500, Start: 0, Seq: 1},
	})
	if err != nil {
		t.Fatal(err)
	}

	out := LinkUtilizationTable(n.LinkStats(), rep, 1.0, 4)
	if !strings.Contains(out, "carried traffic") || !strings.Contains(out, "stall ms") {
		t.Fatalf("table missing columns:\n%s", out)
	}
	if !strings.Contains(out, "contention replay: 2 transfers") {
		t.Fatalf("table missing replay summary:\n%s", out)
	}
	// Without a replay the stall column disappears.
	plain := LinkUtilizationTable(n.LinkStats(), nil, 1.0, 4)
	if strings.Contains(plain, "stall") {
		t.Fatalf("nil replay still shows stalls:\n%s", plain)
	}
	// Deterministic: same inputs, same rendering.
	if again := LinkUtilizationTable(n.LinkStats(), rep, 1.0, 4); again != out {
		t.Fatal("table not deterministic")
	}
}
