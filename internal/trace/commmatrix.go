package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"agcm/internal/sim"
)

// CommMatrix is the rank-by-rank communication matrix of a run: who sent how
// much to whom.  It is collected from the simulator's event log, so it works
// on any machine — flat or topology-modelled — at the cost of enabling
// sim.Machine.EnableEventLog before Run.
type CommMatrix struct {
	// Ranks is the world size; Msgs and Bytes are Ranks*Ranks row-major
	// (sender-major) counters.  Self-sends land on the diagonal.
	Ranks int     `json:"ranks"`
	Msgs  []int64 `json:"msgs"`
	Bytes []int64 `json:"bytes"`
}

// NewCommMatrix collects the matrix from a run's event log.  The result is
// nil if the log was not enabled.
func NewCommMatrix(res *sim.Result) *CommMatrix {
	if res.Events == nil {
		return nil
	}
	n := len(res.Clocks)
	m := &CommMatrix{
		Ranks: n,
		Msgs:  make([]int64, n*n),
		Bytes: make([]int64, n*n),
	}
	for src, evs := range res.Events {
		for _, e := range evs {
			if e.Kind != sim.EventSend {
				continue
			}
			i := src*n + e.Peer
			m.Msgs[i]++
			m.Bytes[i] += int64(e.Bytes)
		}
	}
	return m
}

// At returns the (messages, bytes) sent from src to dst.
func (m *CommMatrix) At(src, dst int) (msgs, bytes int64) {
	i := src*m.Ranks + dst
	return m.Msgs[i], m.Bytes[i]
}

// TotalBytes sums the whole matrix.
func (m *CommMatrix) TotalBytes() int64 {
	var t int64
	for _, b := range m.Bytes {
		t += b
	}
	return t
}

// JSON renders the matrix for offline analysis.
func (m *CommMatrix) JSON() ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}

// CommPair is one sender/receiver pair's traffic.
type CommPair struct {
	Src, Dst    int
	Msgs, Bytes int64
}

// HottestPairs returns the n off-diagonal pairs carrying the most bytes,
// heaviest first, ties broken by (src, dst) for reproducible output.
func (m *CommMatrix) HottestPairs(n int) []CommPair {
	var pairs []CommPair
	for s := 0; s < m.Ranks; s++ {
		for d := 0; d < m.Ranks; d++ {
			if s == d {
				continue
			}
			if msgs, bytes := m.At(s, d); msgs > 0 {
				pairs = append(pairs, CommPair{Src: s, Dst: d, Msgs: msgs, Bytes: bytes})
			}
		}
	}
	sort.SliceStable(pairs, func(i, j int) bool {
		if pairs[i].Bytes != pairs[j].Bytes {
			return pairs[i].Bytes > pairs[j].Bytes
		}
		if pairs[i].Src != pairs[j].Src {
			return pairs[i].Src < pairs[j].Src
		}
		return pairs[i].Dst < pairs[j].Dst
	})
	if n < len(pairs) {
		pairs = pairs[:n]
	}
	return pairs
}

// CommMatrixTable renders the matrix as a small fixed-width grid of
// kilobytes sent, sender rows by receiver columns, for worlds up to maxRanks;
// larger worlds get the hottest-pairs listing instead.
func (m *CommMatrix) CommMatrixTable(maxRanks int) string {
	var b strings.Builder
	if m.Ranks <= maxRanks {
		fmt.Fprintf(&b, "%-6s", "kB")
		for d := 0; d < m.Ranks; d++ {
			fmt.Fprintf(&b, " %7d", d)
		}
		b.WriteString("\n")
		for s := 0; s < m.Ranks; s++ {
			fmt.Fprintf(&b, "%-6d", s)
			for d := 0; d < m.Ranks; d++ {
				_, bytes := m.At(s, d)
				fmt.Fprintf(&b, " %7.0f", float64(bytes)/1e3)
			}
			b.WriteString("\n")
		}
		return b.String()
	}
	fmt.Fprintf(&b, "%d ranks; hottest pairs:\n", m.Ranks)
	for _, p := range m.HottestPairs(maxRanks) {
		fmt.Fprintf(&b, "  %4d -> %-4d  %8d msgs  %10.1f kB\n",
			p.Src, p.Dst, p.Msgs, float64(p.Bytes)/1e3)
	}
	return b.String()
}
