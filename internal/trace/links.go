package trace

import (
	"fmt"
	"sort"
	"strings"

	"agcm/internal/topology"
)

// LinkUtilizationTable renders the busiest links of a routed run: per-link
// traffic and utilization (busy time over the run's critical path), plus —
// when a contention replay is supplied — the stall time each link induced.
// rep may be nil.  maxRows bounds the listing; links are ordered busiest
// first with ties broken by link id.
func LinkUtilizationTable(stats []topology.LinkStat, rep *topology.ContentionReport, duration float64, maxRows int) string {
	if maxRows < 1 {
		maxRows = 1
	}
	sorted := append([]topology.LinkStat(nil), stats...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].BusySeconds != sorted[j].BusySeconds {
			return sorted[i].BusySeconds > sorted[j].BusySeconds
		}
		return sorted[i].Link < sorted[j].Link
	})

	var used int
	var busySum float64
	for _, s := range stats {
		if s.Msgs > 0 {
			used++
		}
		busySum += s.BusySeconds
	}

	var b strings.Builder
	fmt.Fprintf(&b, "links: %d total, %d carried traffic", len(stats), used)
	if duration > 0 && len(stats) > 0 {
		fmt.Fprintf(&b, ", mean utilization %.1f%%", 100*busySum/(duration*float64(len(stats))))
	}
	b.WriteString("\n")
	header := fmt.Sprintf("%-22s %10s %12s %8s", "link", "msgs", "kB", "busy%")
	if rep != nil {
		header += fmt.Sprintf(" %10s", "stall ms")
	}
	b.WriteString(header + "\n")
	shown := 0
	for _, s := range sorted {
		if shown >= maxRows || s.Msgs == 0 {
			break
		}
		util := 0.0
		if duration > 0 {
			util = 100 * s.BusySeconds / duration
		}
		fmt.Fprintf(&b, "%-22s %10d %12.1f %8.2f", s.Name, s.Msgs, float64(s.Bytes)/1e3, util)
		if rep != nil {
			fmt.Fprintf(&b, " %10.3f", 1e3*rep.Links[s.Link].StallSeconds)
		}
		b.WriteString("\n")
		shown++
	}
	if used > shown {
		fmt.Fprintf(&b, "... (%d of %d active links shown)\n", shown, used)
	}
	if rep != nil {
		fmt.Fprintf(&b, "contention replay: %d transfers, total stall %.3f ms, max %.3f ms\n",
			rep.Transfers, 1e3*rep.TotalStallSeconds, 1e3*rep.MaxStallSeconds)
	}
	return b.String()
}
