package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"agcm/internal/sim"
)

// chromeEvent is one record of the Chrome trace-event format (the JSON
// array flavour), loadable in chrome://tracing and Perfetto.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`            // microseconds
	Dur   float64        `json:"dur,omitempty"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	ID    string         `json:"id,omitempty"`
	BP    string         `json:"bp,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// ExportChromeTrace writes the run's event log as a Chrome trace-event JSON
// array: one timeline row per rank, named spans for the Timed categories,
// and flow arrows connecting each send to its receive.  The run must have
// been executed with Machine.EnableEventLog.
func ExportChromeTrace(w io.Writer, res *sim.Result) error {
	if res.Events == nil {
		return fmt.Errorf("trace: run has no event log (call Machine.EnableEventLog before Run)")
	}
	us := func(seconds float64) float64 { return seconds * 1e6 }
	var out []chromeEvent
	// Rank name metadata.
	for rank := range res.Events {
		out = append(out, chromeEvent{
			Name: "thread_name", Phase: "M", PID: 0, TID: rank,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", rank)},
		})
	}
	for rank, events := range res.Events {
		for _, e := range events {
			switch e.Kind {
			case sim.EventSpan:
				out = append(out, chromeEvent{
					Name: e.Name, Cat: "span", Phase: "X",
					TS: us(e.Start), Dur: us(e.End - e.Start),
					PID: 0, TID: rank,
				})
			case sim.EventSend:
				out = append(out, chromeEvent{
					Name: "msg", Cat: "comm", Phase: "s",
					TS: us(e.Start), PID: 0, TID: rank,
					ID:   fmt.Sprintf("%d.%d", rank, e.Seq),
					Args: map[string]any{"bytes": e.Bytes, "dst": e.Peer},
				})
			case sim.EventRecv:
				// The wait interval, if the message made the rank idle.
				if e.End > e.Start {
					out = append(out, chromeEvent{
						Name: "wait", Cat: "wait", Phase: "X",
						TS: us(e.Start), Dur: us(e.End - e.Start),
						PID: 0, TID: rank,
					})
				}
				out = append(out, chromeEvent{
					Name: "msg", Cat: "comm", Phase: "f", BP: "e",
					TS: us(e.End), PID: 0, TID: rank,
					ID:   fmt.Sprintf("%d.%d", e.Peer, e.Seq),
					Args: map[string]any{"bytes": e.Bytes, "src": e.Peer},
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
