package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"agcm/internal/sim"
)

func eventResult(t *testing.T) *sim.Result {
	t.Helper()
	m := sim.New(2, flatModel{})
	m.EnableEventLog()
	res, err := m.Run(func(p *sim.Proc) error {
		p.Timed("work", func() { p.Compute(1000) })
		if p.Rank() == 0 {
			p.Send(1, 0, []float64{1, 2}, 16)
		} else {
			p.Timed("recv", func() { p.Recv(0, 0) })
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestExportChromeTrace(t *testing.T) {
	res := eventResult(t)
	var buf bytes.Buffer
	if err := ExportChromeTrace(&buf, res); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("output is not a JSON array: %v", err)
	}
	var spans, sends, flows, metas, waits int
	for _, e := range events {
		switch e["ph"] {
		case "X":
			if e["name"] == "wait" {
				waits++
			} else {
				spans++
			}
		case "s":
			sends++
		case "f":
			flows++
		case "M":
			metas++
		}
	}
	if metas != 2 {
		t.Errorf("expected 2 thread_name records, got %d", metas)
	}
	if spans != 3 { // work on both ranks + recv span on rank 1
		t.Errorf("expected 3 spans, got %d", spans)
	}
	if sends != 1 || flows != 1 {
		t.Errorf("expected 1 send/1 flow, got %d/%d", sends, flows)
	}
	if waits != 1 {
		t.Errorf("expected 1 wait interval, got %d", waits)
	}
	// Flow id links sender and receiver records.
	if !strings.Contains(buf.String(), `"id":"0.1"`) {
		t.Errorf("flow id missing:\n%s", buf.String())
	}
}

func TestExportChromeTraceRequiresLog(t *testing.T) {
	res := demoResult(t) // no event log
	if err := ExportChromeTrace(&bytes.Buffer{}, res); err == nil {
		t.Fatal("export without event log succeeded")
	}
}

func TestEventLogDisabledByDefault(t *testing.T) {
	res := demoResult(t)
	if res.Events != nil {
		t.Fatal("events recorded without EnableEventLog")
	}
}
