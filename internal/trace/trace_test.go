package trace

import (
	"strings"
	"testing"

	"agcm/internal/sim"
)

type flatModel struct{}

func (flatModel) FlopSeconds(n float64) float64         { return n * 1e-6 }
func (flatModel) MemSeconds(n float64) float64          { return n * 1e-9 }
func (flatModel) SendOverheadSeconds(bytes int) float64 { return 1e-5 }
func (flatModel) RecvOverheadSeconds(bytes int) float64 { return 1e-5 }
func (flatModel) NetworkSeconds(bytes int) float64      { return 1e-4 + float64(bytes)*1e-8 }

// demoResult runs an unbalanced two-phase program on 4 ranks.
func demoResult(t *testing.T) *sim.Result {
	t.Helper()
	m := sim.New(4, flatModel{})
	res, err := m.Run(func(p *sim.Proc) error {
		p.Timed("compute", func() { p.Compute(float64(1000 * (p.Rank() + 1))) })
		// Rank 0 waits for the slowest rank's message.
		if p.Rank() == 3 {
			p.Send(0, 1, []float64{1}, 8)
		}
		if p.Rank() == 0 {
			p.Timed("recv", func() { p.Recv(3, 1) })
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestProfiles(t *testing.T) {
	res := demoResult(t)
	profiles := Profiles(res)
	if len(profiles) != 4 {
		t.Fatalf("%d profiles", len(profiles))
	}
	// Rank 3 computed 4x rank 0's work.
	if profiles[3].Busy["compute"] <= 3*profiles[0].Busy["compute"] {
		t.Errorf("compute shares wrong: %v vs %v",
			profiles[3].Busy["compute"], profiles[0].Busy["compute"])
	}
	// Rank 0 waited for rank 3.
	if profiles[0].Wait <= 0 {
		t.Errorf("rank 0 recorded no wait")
	}
	if profiles[1].Wait != 0 {
		t.Errorf("rank 1 waited %g with no receives", profiles[1].Wait)
	}
	// Other is non-negative by construction.
	for _, p := range profiles {
		if p.Other() < 0 {
			t.Errorf("rank %d Other < 0", p.Rank)
		}
	}
	if profiles[3].Messages != 1 {
		t.Errorf("rank 3 sent %d messages", profiles[3].Messages)
	}
}

// TestOtherIsBitDeterministic pins the fix for a reproducibility bug the
// nondeterm analyzer found: Other subtracted Busy values in map iteration
// order, and float subtraction is not associative, so the result could
// differ bit-for-bit between calls.  The category values below are chosen
// so that any two subtraction orders disagree in the last place.
func TestOtherIsBitDeterministic(t *testing.T) {
	p := Profile{
		Clock: 1e16 + 4,
		Wait:  1,
		Busy: map[string]float64{
			"a": 1e16,
			"b": 1,
			"c": 0.5,
			"d": 0.25,
		},
	}
	// Reference: sorted category order, the documented semantics.
	want := p.Clock - p.Wait
	for _, c := range []string{"a", "b", "c", "d"} {
		want -= p.Busy[c]
	}
	if want < 0 {
		want = 0
	}
	// Go randomizes map iteration per range statement, so repeated calls
	// exercise different orders; all must agree bitwise.
	for i := 0; i < 100; i++ {
		if got := p.Other(); got != want {
			t.Fatalf("call %d: Other() = %v, want %v", i, got, want)
		}
	}
}

func TestUtilizationTable(t *testing.T) {
	res := demoResult(t)
	out := UtilizationTable(res, "compute", 10)
	if !strings.Contains(out, "compute") || !strings.Contains(out, "wait") {
		t.Fatalf("missing columns:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header + 4 ranks
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestUtilizationTableTruncates(t *testing.T) {
	m := sim.New(20, flatModel{})
	res, err := m.Run(func(p *sim.Proc) error {
		p.Timed("w", func() { p.Compute(float64(100 * (p.Rank() + 1))) })
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	out := UtilizationTable(res, "w", 6)
	if !strings.Contains(out, "of 20 ranks shown") {
		t.Fatalf("no truncation notice:\n%s", out)
	}
	// The most loaded rank (19) must appear even when truncated.
	if !strings.Contains(out, "\n19 ") && !strings.Contains(out, "\n19\t") {
		// fixed-width: rank 19 line starts with "19"
		found := false
		for _, l := range strings.Split(out, "\n") {
			if strings.HasPrefix(l, "19") {
				found = true
			}
		}
		if !found {
			t.Fatalf("most loaded rank missing:\n%s", out)
		}
	}
}

func TestGantt(t *testing.T) {
	res := demoResult(t)
	out := Gantt(res, 40)
	if !strings.Contains(out, "c=compute") {
		t.Fatalf("legend missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // legend + 4 bars
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// The slowest rank's bar is the longest.
	bar := func(line string) int {
		open := strings.IndexByte(line, '|')
		close := strings.LastIndexByte(line, '|')
		return close - open
	}
	if bar(lines[4]) < bar(lines[2]) {
		t.Fatalf("rank 3's bar shorter than rank 1's:\n%s", out)
	}
	// Rank 0's bar contains wait cells.
	if !strings.Contains(lines[1], ".") {
		t.Fatalf("rank 0 bar has no wait cells:\n%s", out)
	}
}

func TestSummary(t *testing.T) {
	res := demoResult(t)
	out := Summary(res)
	for _, want := range []string{"ranks 4", "compute", "wait", "traffic: 1 messages"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}
