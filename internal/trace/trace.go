// Package trace renders performance-analysis views of a simulated run:
// per-rank utilization profiles and an ASCII timeline in the spirit of the
// tools the paper's authors used to find the filtering bottleneck.  It
// consumes the per-category accounts and communication counters the sim
// package collects, so tracing costs nothing extra at run time.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"agcm/internal/sim"
)

// Profile summarizes one rank's time breakdown over a run.
type Profile struct {
	Rank int
	// Busy maps category to accounted seconds.
	Busy map[string]float64
	// Wait is the time blocked on unarrived messages.
	Wait float64
	// Clock is the rank's final virtual time.
	Clock float64
	// Messages and Bytes are the rank's send-side traffic.
	Messages int64
	Bytes    int64
}

// Other returns clock time not covered by accounted categories or waiting:
// untimed compute and send/recv overheads outside Timed sections.
func (p Profile) Other() float64 {
	// Subtract in sorted category order: float subtraction is not
	// associative, so ranging the map directly would make the result depend
	// on iteration order and differ bit-for-bit between runs.
	t := p.Clock - p.Wait
	cats := make([]string, 0, len(p.Busy))
	for c := range p.Busy {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	for _, c := range cats {
		t -= p.Busy[c]
	}
	if t < 0 {
		return 0
	}
	return t
}

// Profiles extracts one Profile per rank from a sim result.
//
// Note: the per-category accounts include any wait time spent inside their
// Timed sections, so Wait (measured at Recv) can overlap them; Other
// therefore underestimates when categories wait internally.  For the AGCM
// the step structure puts almost all waiting inside accounted sections,
// which is exactly what the utilization view should show.
func Profiles(res *sim.Result) []Profile {
	n := len(res.Clocks)
	out := make([]Profile, n)
	for r := 0; r < n; r++ {
		busy := make(map[string]float64)
		//lint:allow nondeterm each iteration writes busy[cat] for its own ranged key only, so the result is iteration-order independent
		for cat, perRank := range res.Accounts {
			busy[cat] = perRank[r]
		}
		out[r] = Profile{
			Rank:     r,
			Busy:     busy,
			Wait:     res.WaitSeconds[r],
			Clock:    res.Clocks[r],
			Messages: res.MessagesSent[r],
			Bytes:    res.BytesSent[r],
		}
	}
	return out
}

// UtilizationTable renders a fixed-width per-rank breakdown.  With more
// than maxRows ranks it shows the first few, the most and least loaded for
// the given category, and machine-wide totals.
func UtilizationTable(res *sim.Result, category string, maxRows int) string {
	profiles := Profiles(res)
	if maxRows < 3 {
		maxRows = 3
	}
	cats := res.Categories()
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s", "rank")
	for _, c := range cats {
		fmt.Fprintf(&b, "  %12s", c)
	}
	fmt.Fprintf(&b, "  %12s  %12s  %10s\n", "wait", "clock", "msgs")

	writeRow := func(p Profile) {
		fmt.Fprintf(&b, "%-6d", p.Rank)
		for _, c := range cats {
			fmt.Fprintf(&b, "  %12.4f", p.Busy[c])
		}
		fmt.Fprintf(&b, "  %12.4f  %12.4f  %10d\n", p.Wait, p.Clock, p.Messages)
	}

	show := profiles
	if len(profiles) > maxRows {
		// First rows plus extremes of the chosen category.
		sorted := append([]Profile(nil), profiles...)
		sort.Slice(sorted, func(i, j int) bool {
			return sorted[i].Busy[category] > sorted[j].Busy[category]
		})
		seen := map[int]bool{}
		show = nil
		for _, p := range append(profiles[:maxRows-2],
			sorted[0], sorted[len(sorted)-1]) {
			if !seen[p.Rank] {
				show = append(show, p)
				seen[p.Rank] = true
			}
		}
		sort.Slice(show, func(i, j int) bool { return show[i].Rank < show[j].Rank })
	}
	for _, p := range show {
		writeRow(p)
	}
	if len(profiles) > len(show) {
		fmt.Fprintf(&b, "... (%d of %d ranks shown)\n", len(show), len(profiles))
	}
	return b.String()
}

// Gantt renders an ASCII utilization bar per rank: each bar divides the
// rank's clock into its category shares (first letter of each category)
// plus waiting ('.') and other ('-').  width is the bar length in cells.
// It is a share view, not an event timeline: segment order within the bar
// is alphabetical, not chronological.
func Gantt(res *sim.Result, width int) string {
	if width < 10 {
		width = 10
	}
	profiles := Profiles(res)
	maxClock := res.MaxClock()
	if maxClock == 0 {
		return ""
	}
	cats := res.Categories()
	symbols := assignSymbols(cats)
	var b strings.Builder
	fmt.Fprintf(&b, "one cell = %.4g s; ", maxClock/float64(width))
	for i, c := range cats {
		fmt.Fprintf(&b, "%c=%s ", symbols[i], c)
	}
	b.WriteString(".=wait -=other\n")
	for _, p := range profiles {
		fmt.Fprintf(&b, "%4d |", p.Rank)
		cells := 0
		total := int(p.Clock / maxClock * float64(width))
		emit := func(ch byte, seconds float64) {
			n := int(seconds / maxClock * float64(width))
			for i := 0; i < n && cells < total; i++ {
				b.WriteByte(ch)
				cells++
			}
		}
		for i, c := range cats {
			emit(symbols[i], p.Busy[c])
		}
		emit('.', p.Wait)
		for cells < total {
			b.WriteByte('-')
			cells++
		}
		b.WriteString("|\n")
	}
	return b.String()
}

// assignSymbols gives each category a unique bar character: the first
// letter of its name not already taken, else a digit.
func assignSymbols(cats []string) []byte {
	taken := map[byte]bool{'.': true, '-': true, '|': true}
	out := make([]byte, len(cats))
	for i, c := range cats {
		sym := byte('?')
		for k := 0; k < len(c); k++ {
			ch := c[k]
			if ch != '-' && !taken[ch] {
				sym = ch
				break
			}
		}
		if sym == '?' {
			for d := byte('0'); d <= '9'; d++ {
				if !taken[d] {
					sym = d
					break
				}
			}
		}
		taken[sym] = true
		out[i] = sym
	}
	return out
}

// Summary renders machine-wide aggregates: total busy share per category,
// aggregate wait share, and traffic.
func Summary(res *sim.Result) string {
	profiles := Profiles(res)
	var clockSum, waitSum float64
	var msgs, bytes int64
	busy := map[string]float64{}
	for _, p := range profiles {
		clockSum += p.Clock
		waitSum += p.Wait
		msgs += p.Messages
		bytes += p.Bytes
		// Each key appears once per profile, so for a fixed category the
		// additions happen in the deterministic profiles slice order.
		//lint:allow nondeterm per-key accumulation order follows the profiles slice, not the map
		for c, v := range p.Busy {
			busy[c] += v
		}
	}
	if clockSum == 0 {
		return "empty run\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "ranks %d, critical path %.4f s\n", len(profiles), res.MaxClock())
	cats := res.Categories()
	for _, c := range cats {
		fmt.Fprintf(&b, "  %-16s %6.1f%% of aggregate time\n", c, 100*busy[c]/clockSum)
	}
	fmt.Fprintf(&b, "  %-16s %6.1f%% of aggregate time\n", "wait", 100*waitSum/clockSum)
	fmt.Fprintf(&b, "  traffic: %d messages, %.2f MB\n", msgs, float64(bytes)/1e6)
	return b.String()
}
