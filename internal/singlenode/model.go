package singlenode

import (
	"agcm/internal/cachesim"
	"agcm/internal/machine"
)

// divFlops is the cost of one floating-point division relative to a
// multiply-add on the paper's microprocessors (no pipelined divide).
const divFlops = 15

// commonFlops is the advection routine's per-point work untouched by the
// Section 3.4 optimizations (vertical advection, limiters, stores).
const commonFlops = 30

// wordBytes is the size of one float64.
const wordBytes = 8

// LayoutResult reports the modeled cost of the 7-point Laplace experiment
// on one machine for both storage layouts (Section 3.4, Eqs. 5-6).
type LayoutResult struct {
	Machine string
	// N is the cubic grid edge; M the number of discrete fields.
	N, M int
	// SeparateSeconds and BlockSeconds are the modeled kernel times.
	SeparateSeconds float64
	BlockSeconds    float64
	// SeparateMissRate and BlockMissRate are data-cache miss rates.
	SeparateMissRate float64
	BlockMissRate    float64
	// Speedup = SeparateSeconds / BlockSeconds; the paper reports 5.0 on
	// the Paragon and 2.6 on the T3D for 32^3 arrays.
	Speedup float64
}

// ModelLaplaceLayout replays the Laplace kernel's exact address streams
// through the machine's cache geometry and converts flops and misses into
// time.  The separate arrays sit at their natural n^3-aligned bases (as
// Fortran COMMON placed them), which is what produces the pathological
// conflict behaviour the paper observed.
func ModelLaplaceLayout(mach *machine.Model, n, m int) LayoutResult {
	arrayBytes := int64(n*n*n) * wordBytes
	points := (n - 2) * (n - 2) * (n - 2)
	flops := float64(points) * float64(m) * 8 // 1 mul + 7 adds per field

	// Separate arrays: field f at base f*arrayBytes, out after them.
	sep := cachesim.New(mach.CacheBytes, mach.CacheLineBytes, mach.CacheWays)
	outBase := int64(m) * arrayBytes
	addr := func(base int64, p int) int64 { return base + int64(p)*wordBytes }
	for x := 1; x < n-1; x++ {
		for y := 1; y < n-1; y++ {
			for z := 1; z < n-1; z++ {
				p := idx3(n, x, y, z)
				for f := 0; f < m; f++ {
					base := int64(f) * arrayBytes
					sep.Access(addr(base, p))
					sep.Access(addr(base, idx3(n, x-1, y, z)))
					sep.Access(addr(base, idx3(n, x+1, y, z)))
					sep.Access(addr(base, idx3(n, x, y-1, z)))
					sep.Access(addr(base, idx3(n, x, y+1, z)))
					sep.Access(addr(base, p-1))
					sep.Access(addr(base, p+1))
				}
				sep.Access(addr(outBase, p))
			}
		}
	}

	// Block array: value (p, f) at p*m+f; out after the block.  The
	// trace follows LaplaceBlock's position-major order, consuming each
	// line completely before moving to the next stencil position.
	blk := cachesim.New(mach.CacheBytes, mach.CacheLineBytes, mach.CacheWays)
	blockOutBase := int64(m) * arrayBytes
	baddr := func(p, f int) int64 { return (int64(p)*int64(m) + int64(f)) * wordBytes }
	for x := 1; x < n-1; x++ {
		for y := 1; y < n-1; y++ {
			for z := 1; z < n-1; z++ {
				p := idx3(n, x, y, z)
				for _, q := range [7]int{p, idx3(n, x-1, y, z), idx3(n, x+1, y, z),
					idx3(n, x, y-1, z), idx3(n, x, y+1, z), p - 1, p + 1} {
					for f := 0; f < m; f++ {
						blk.Access(baddr(q, f))
					}
				}
				blk.Access(blockOutBase + int64(p)*wordBytes)
			}
		}
	}

	sepT := flops/mach.KernelFlopRate + float64(sep.Misses())*mach.MissPenalty
	blkT := flops/mach.KernelFlopRate + float64(blk.Misses())*mach.MissPenalty
	return LayoutResult{
		Machine:          mach.Name,
		N:                n,
		M:                m,
		SeparateSeconds:  sepT,
		BlockSeconds:     blkT,
		SeparateMissRate: sep.MissRate(),
		BlockMissRate:    blk.MissRate(),
		Speedup:          sepT / blkT,
	}
}

// AdvectionResult reports the modeled effect of the paper's single-node
// optimizations on the advection routine.
type AdvectionResult struct {
	Machine string
	// OriginalSeconds and OptimizedSeconds are the modeled kernel times.
	OriginalSeconds  float64
	OptimizedSeconds float64
	// Reduction is 1 - optimized/original; the paper achieved about 35%
	// on a Cray T3D node.
	Reduction float64
}

// ModelAdvection models the advection kernel before and after the paper's
// optimizations: the original recomputes metric terms with two divisions
// per point and walks the arrays layer-outermost (poor line reuse when the
// vertical index is innermost in memory); the optimized form hoists
// reciprocals, multiplies instead of divides, and fuses the layer loop.
func ModelAdvection(mach *machine.Model, nlat, nlon, nl int) AdvectionResult {
	points := float64((nlat - 2) * nlon * nl)
	at := func(j, i, k int) int64 { return (int64(j)*int64(nlon)+int64(i))*int64(nl) + int64(k) }
	fBase := int64(0)
	uBase := int64(nlat*nlon*nl) * wordBytes
	vBase := 2 * uBase
	outBase := 3 * uBase

	// Both versions sweep the arrays in the same (j, i, k-innermost)
	// order — the 35% came from arithmetic restructuring, not layout —
	// so one trace serves both; the flop models differ.
	trace := cachesim.New(mach.CacheBytes, mach.CacheLineBytes, mach.CacheWays)
	for j := 1; j < nlat-1; j++ {
		for i := 0; i < nlon; i++ {
			ip := (i + 1) % nlon
			im := (i - 1 + nlon) % nlon
			for k := 0; k < nl; k++ {
				trace.Access(fBase + at(j, ip, k)*wordBytes)
				trace.Access(fBase + at(j, im, k)*wordBytes)
				trace.Access(fBase + at(j+1, i, k)*wordBytes)
				trace.Access(fBase + at(j-1, i, k)*wordBytes)
				trace.Access(uBase + at(j, i, k)*wordBytes)
				trace.Access(vBase + at(j, i, k)*wordBytes)
				trace.Access(outBase + at(j, i, k)*wordBytes)
			}
		}
	}
	// Original: one division, redundant metric recomputation, plus the
	// routine's irreducible surrounding work (vertical terms, limiters)
	// that the optimization does not touch.
	origFlops := points * (divFlops + 14 + commonFlops)
	// Optimized: reciprocals hoisted, divisions replaced by multiplies,
	// redundant computation removed.
	optFlops := points * (9 + commonFlops)

	missSeconds := float64(trace.Misses()) * mach.MissPenalty
	origT := origFlops/mach.KernelFlopRate + missSeconds
	optT := optFlops/mach.KernelFlopRate + missSeconds
	return AdvectionResult{
		Machine:          mach.Name,
		OriginalSeconds:  origT,
		OptimizedSeconds: optT,
		Reduction:        1 - optT/origT,
	}
}
