// Package singlenode implements the single-node performance experiments of
// Section 3.4: the pointwise vector-multiply kernel (Eq. 4), BLAS-1 style
// routines used to replace hand-coded loops, the 7-point Laplace stencil on
// separate versus block-interleaved field arrays (Eqs. 5-6), and the
// advection-routine optimization (invariant hoisting, division removal,
// loop restructuring) that gave the paper its 35% single-node improvement.
//
// Every experiment exists twice: as real Go kernels measured by testing.B
// benchmarks on the host CPU, and as cache-simulator models that reproduce
// the paper's Paragon/T3D numbers from the machine models' cache geometry
// (see model.go).
package singlenode

import "fmt"

// --- Pointwise vector multiply (Eq. 4) ------------------------------------

// PointwiseVecMul computes the paper's proposed kernel
// a (.) b = {a1*b1, ..., am*bm, a(m+1)*b1, ...}: c[i] = a[i] * b[i mod m].
// This is the naive form with a modulo in the inner loop.
func PointwiseVecMul(a, b, c []float64) {
	if len(c) != len(a) || len(b) == 0 || len(a)%len(b) != 0 {
		panic(fmt.Sprintf("singlenode: vecmul shapes |a|=%d |b|=%d |c|=%d",
			len(a), len(b), len(c)))
	}
	m := len(b)
	for i := range a {
		c[i] = a[i] * b[i%m]
	}
}

// PointwiseVecMulOptimized computes the same kernel blocked over b with no
// modulo: the "optimized library routine" shape Section 3.4 proposes.
func PointwiseVecMulOptimized(a, b, c []float64) {
	if len(c) != len(a) || len(b) == 0 || len(a)%len(b) != 0 {
		panic(fmt.Sprintf("singlenode: vecmul shapes |a|=%d |b|=%d |c|=%d",
			len(a), len(b), len(c)))
	}
	m := len(b)
	for base := 0; base < len(a); base += m {
		ab := a[base : base+m]
		cb := c[base : base+m]
		for j, bv := range b {
			cb[j] = ab[j] * bv
		}
	}
}

// --- BLAS-1 style routines -------------------------------------------------

// Dcopy copies x into y.
func Dcopy(x, y []float64) {
	if len(x) != len(y) {
		panic("singlenode: dcopy length mismatch")
	}
	copy(y, x)
}

// Dscal scales x by alpha in place.
func Dscal(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Daxpy computes y += alpha*x.
func Daxpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("singlenode: daxpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// DaxpyUnrolled4 is the 4-way unrolled variant (the paper's "enforcing
// loop-unrolling on some large loops").
func DaxpyUnrolled4(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("singlenode: daxpy length mismatch")
	}
	n := len(x)
	i := 0
	for ; i+4 <= n; i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

// --- 7-point Laplace stencil, separate vs block arrays (Eqs. 5-6) ---------

// idx3 maps (x, y, z) into a flattened n^3 array, z innermost.
func idx3(n, x, y, z int) int { return (x*n+y)*n + z }

// LaplaceSeparate evaluates out(p) = sum_f Lap(field_f)(p) over the interior
// of m separate n^3 arrays — the layout of Eq. (5) with one array per
// discrete field.
func LaplaceSeparate(fields [][]float64, out []float64, n int) {
	for x := 1; x < n-1; x++ {
		for y := 1; y < n-1; y++ {
			for z := 1; z < n-1; z++ {
				p := idx3(n, x, y, z)
				var sum float64
				for _, f := range fields {
					sum += -6*f[p] +
						f[idx3(n, x-1, y, z)] + f[idx3(n, x+1, y, z)] +
						f[idx3(n, x, y-1, z)] + f[idx3(n, x, y+1, z)] +
						f[p-1] + f[p+1]
				}
				out[p] = sum
			}
		}
	}
}

// LaplaceBlock evaluates the same sum over a single block array holding the
// m fields interleaved per grid point — the f(m, idim, jdim, kdim) layout of
// Eq. (6): block[p*m+f].  The inner sweep is position-major (all m values
// of one stencil position before moving to the next) so each fetched cache
// line is consumed completely — the access order that realizes the block
// layout's locality.
func LaplaceBlock(block []float64, m int, out []float64, n int) {
	for x := 1; x < n-1; x++ {
		for y := 1; y < n-1; y++ {
			for z := 1; z < n-1; z++ {
				p := idx3(n, x, y, z)
				var sum float64
				for _, q := range [7]int{p, idx3(n, x-1, y, z), idx3(n, x+1, y, z),
					idx3(n, x, y-1, z), idx3(n, x, y+1, z), p - 1, p + 1} {
					base := q * m
					var s float64
					for f := 0; f < m; f++ {
						s += block[base+f]
					}
					if q == p {
						sum -= 6 * s
					} else {
						sum += s
					}
				}
				out[p] = sum
			}
		}
	}
}

// PackBlock interleaves separate field arrays into a block array.
func PackBlock(fields [][]float64) []float64 {
	m := len(fields)
	n := len(fields[0])
	block := make([]float64, m*n)
	for f, arr := range fields {
		if len(arr) != n {
			panic("singlenode: ragged fields")
		}
		for p, v := range arr {
			block[p*m+f] = v
		}
	}
	return block
}

// --- Advection kernel, original vs optimized (Section 3.4) ----------------

// AdvectionOriginal computes the horizontal advection tendency
// t = -(u/(a cos(lat)) df/dlam + v/a df/dphi) the way the original Fortran
// did: metric factors and reciprocals recomputed per grid point, divisions
// in the inner loop, and layers processed in separate passes over the data.
func AdvectionOriginal(u, v, f, out []float64, nlat, nlon, nl int,
	cosLat []float64, a, dlam, dphi float64) {
	at := func(j, i, k int) int { return (j*nlon+i)*nl + k }
	for k := 0; k < nl; k++ { // layer-outermost: one pass per layer
		for j := 1; j < nlat-1; j++ {
			for i := 0; i < nlon; i++ {
				ip := (i + 1) % nlon
				im := (i - 1 + nlon) % nlon
				// Redundant per-point recomputation and divisions.
				dx := a * cosLat[j] * dlam
				dy := a * dphi
				dfdx := (f[at(j, ip, k)] - f[at(j, im, k)]) / (2 * dx)
				dfdy := (f[at(j+1, i, k)] - f[at(j-1, i, k)]) / (2 * dy)
				out[at(j, i, k)] = -(u[at(j, i, k)]*dfdx + v[at(j, i, k)]*dfdy)
			}
		}
	}
}

// AdvectionOptimized computes the identical tendency with the paper's
// single-node optimizations applied: metric reciprocals hoisted out of the
// inner loops, divisions replaced by multiplications, and the layer loop
// fused innermost so each (j,i) neighbourhood is swept once.
func AdvectionOptimized(u, v, f, out []float64, nlat, nlon, nl int,
	cosLat []float64, a, dlam, dphi float64) {
	at := func(j, i, k int) int { return (j*nlon+i)*nl + k }
	rdy := 1 / (2 * a * dphi)
	rdx := make([]float64, nlat)
	for j := range rdx {
		rdx[j] = 1 / (2 * a * cosLat[j] * dlam)
	}
	for j := 1; j < nlat-1; j++ {
		rx := rdx[j]
		for i := 0; i < nlon; i++ {
			ip := (i + 1) % nlon
			im := (i - 1 + nlon) % nlon
			base := at(j, i, 0)
			east := at(j, ip, 0)
			west := at(j, im, 0)
			north := at(j+1, i, 0)
			south := at(j-1, i, 0)
			for k := 0; k < nl; k++ {
				dfdx := (f[east+k] - f[west+k]) * rx
				dfdy := (f[north+k] - f[south+k]) * rdy
				out[base+k] = -(u[base+k]*dfdx + v[base+k]*dfdy)
			}
		}
	}
}
