package singlenode

import (
	"math"
	"math/rand"
	"testing"

	"agcm/internal/machine"
)

func randSlice(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

func TestPointwiseVecMulVariantsAgree(t *testing.T) {
	a := randSlice(1024, 1)
	b := randSlice(16, 2)
	c1 := make([]float64, len(a))
	c2 := make([]float64, len(a))
	PointwiseVecMul(a, b, c1)
	PointwiseVecMulOptimized(a, b, c2)
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("variants differ at %d: %g vs %g", i, c1[i], c2[i])
		}
		if want := a[i] * b[i%16]; c1[i] != want {
			t.Fatalf("wrong value at %d", i)
		}
	}
}

func TestPointwiseVecMulPanicsOnBadShapes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for indivisible lengths")
		}
	}()
	PointwiseVecMul(make([]float64, 10), make([]float64, 3), make([]float64, 10))
}

func TestBLAS1Routines(t *testing.T) {
	x := randSlice(100, 3)
	y := randSlice(100, 4)
	yCopy := append([]float64(nil), y...)
	Daxpy(2.5, x, y)
	for i := range y {
		if want := yCopy[i] + 2.5*x[i]; math.Abs(y[i]-want) > 1e-15 {
			t.Fatalf("daxpy wrong at %d", i)
		}
	}
	y2 := append([]float64(nil), yCopy...)
	DaxpyUnrolled4(2.5, x, y2)
	for i := range y2 {
		if y2[i] != y[i] {
			t.Fatalf("unrolled daxpy differs at %d", i)
		}
	}
	Dscal(0.5, x)
	Dcopy(x, y)
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("dcopy wrong at %d", i)
		}
	}
}

func TestLaplaceBlockMatchesSeparate(t *testing.T) {
	const n, m = 12, 5
	fields := make([][]float64, m)
	for f := range fields {
		fields[f] = randSlice(n*n*n, int64(10+f))
	}
	out1 := make([]float64, n*n*n)
	out2 := make([]float64, n*n*n)
	LaplaceSeparate(fields, out1, n)
	LaplaceBlock(PackBlock(fields), m, out2, n)
	for i := range out1 {
		if math.Abs(out1[i]-out2[i]) > 1e-11 {
			t.Fatalf("layouts disagree at %d: %g vs %g", i, out1[i], out2[i])
		}
	}
}

func TestPackBlockLayout(t *testing.T) {
	fields := [][]float64{{1, 2}, {10, 20}, {100, 200}}
	block := PackBlock(fields)
	want := []float64{1, 10, 100, 2, 20, 200}
	for i := range want {
		if block[i] != want[i] {
			t.Fatalf("PackBlock = %v", block)
		}
	}
}

func TestAdvectionVariantsAgree(t *testing.T) {
	const nlat, nlon, nl = 16, 24, 5
	sz := nlat * nlon * nl
	u := randSlice(sz, 20)
	v := randSlice(sz, 21)
	f := randSlice(sz, 22)
	cosLat := make([]float64, nlat)
	for j := range cosLat {
		cosLat[j] = math.Cos((float64(j)/nlat - 0.5) * 3)
	}
	out1 := make([]float64, sz)
	out2 := make([]float64, sz)
	AdvectionOriginal(u, v, f, out1, nlat, nlon, nl, cosLat, 6.4e6, 0.1, 0.1)
	AdvectionOptimized(u, v, f, out2, nlat, nlon, nl, cosLat, 6.4e6, 0.1, 0.1)
	for i := range out1 {
		if math.Abs(out1[i]-out2[i]) > 1e-18 {
			t.Fatalf("advection variants differ at %d: %g vs %g", i, out1[i], out2[i])
		}
	}
}

func TestModelLaplaceLayoutReproducesPaper(t *testing.T) {
	// Section 3.4: "a speed-up a factor of 5 over the use of separate
	// arrays on the Intel Paragon, and a speed-up factor of 2.6 ... on
	// Cray T3D" for 32^3 arrays.
	p := ModelLaplaceLayout(machine.Paragon(), 32, 12)
	if p.Speedup < 4.0 || p.Speedup > 6.5 {
		t.Errorf("Paragon block-array speedup %.2f outside [4, 6.5] (paper: 5.0)", p.Speedup)
	}
	c := ModelLaplaceLayout(machine.CrayT3D(), 32, 12)
	if c.Speedup < 2.0 || c.Speedup > 3.6 {
		t.Errorf("T3D block-array speedup %.2f outside [2, 3.6] (paper: 2.6)", c.Speedup)
	}
	if p.Speedup <= c.Speedup {
		t.Errorf("Paragon speedup %.2f not above T3D %.2f as the paper found", p.Speedup, c.Speedup)
	}
	// The mechanism: separate arrays thrash the cache.
	if p.SeparateMissRate < 2*p.BlockMissRate {
		t.Errorf("separate-array miss rate %.2f not clearly above block %.2f",
			p.SeparateMissRate, p.BlockMissRate)
	}
}

func TestModelAdvectionReproducesPaper(t *testing.T) {
	// "we were able to reduce its execution time on a single Cray T3D
	// node by about 35%".
	r := ModelAdvection(machine.CrayT3D(), 90, 144, 9)
	if r.Reduction < 0.22 || r.Reduction > 0.45 {
		t.Errorf("T3D advection reduction %.1f%% outside [22%%, 45%%] (paper: 35%%)",
			r.Reduction*100)
	}
	if r.OptimizedSeconds >= r.OriginalSeconds {
		t.Errorf("optimization did not help")
	}
	p := ModelAdvection(machine.Paragon(), 90, 144, 9)
	if p.Reduction <= 0 {
		t.Errorf("Paragon advection reduction non-positive")
	}
}

func TestModelDeterministic(t *testing.T) {
	a := ModelLaplaceLayout(machine.CrayT3D(), 16, 6)
	b := ModelLaplaceLayout(machine.CrayT3D(), 16, 6)
	if a != b {
		t.Fatal("ModelLaplaceLayout not deterministic")
	}
}

// --- Native benchmarks: the same experiments on the host CPU -------------

func BenchmarkLaplaceSeparate32(b *testing.B) {
	const n, m = 32, 12
	fields := make([][]float64, m)
	for f := range fields {
		fields[f] = randSlice(n*n*n, int64(f))
	}
	out := make([]float64, n*n*n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LaplaceSeparate(fields, out, n)
	}
}

func BenchmarkLaplaceBlock32(b *testing.B) {
	const n, m = 32, 12
	fields := make([][]float64, m)
	for f := range fields {
		fields[f] = randSlice(n*n*n, int64(f))
	}
	block := PackBlock(fields)
	out := make([]float64, n*n*n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LaplaceBlock(block, m, out, n)
	}
}

func BenchmarkAdvectionOriginal(b *testing.B) {
	const nlat, nlon, nl = 90, 144, 9
	sz := nlat * nlon * nl
	u, v, f := randSlice(sz, 1), randSlice(sz, 2), randSlice(sz, 3)
	out := make([]float64, sz)
	cosLat := make([]float64, nlat)
	for j := range cosLat {
		cosLat[j] = 0.1 + float64(j%45)/45
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AdvectionOriginal(u, v, f, out, nlat, nlon, nl, cosLat, 6.4e6, 0.04, 0.03)
	}
}

func BenchmarkAdvectionOptimized(b *testing.B) {
	const nlat, nlon, nl = 90, 144, 9
	sz := nlat * nlon * nl
	u, v, f := randSlice(sz, 1), randSlice(sz, 2), randSlice(sz, 3)
	out := make([]float64, sz)
	cosLat := make([]float64, nlat)
	for j := range cosLat {
		cosLat[j] = 0.1 + float64(j%45)/45
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AdvectionOptimized(u, v, f, out, nlat, nlon, nl, cosLat, 6.4e6, 0.04, 0.03)
	}
}

func BenchmarkPointwiseVecMul(b *testing.B) {
	a := randSlice(1<<16, 1)
	vb := randSlice(64, 2)
	c := make([]float64, len(a))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PointwiseVecMul(a, vb, c)
	}
}

func BenchmarkPointwiseVecMulOptimized(b *testing.B) {
	a := randSlice(1<<16, 1)
	vb := randSlice(64, 2)
	c := make([]float64, len(a))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PointwiseVecMulOptimized(a, vb, c)
	}
}

func BenchmarkDaxpy(b *testing.B) {
	x := randSlice(1<<16, 1)
	y := randSlice(1<<16, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Daxpy(1.0001, x, y)
	}
}

func BenchmarkDaxpyUnrolled4(b *testing.B) {
	x := randSlice(1<<16, 1)
	y := randSlice(1<<16, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DaxpyUnrolled4(1.0001, x, y)
	}
}
