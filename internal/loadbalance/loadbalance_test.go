package loadbalance

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// paperLoads is the worked four-node example used in Figures 5 and 6.
var paperLoads = []float64{65, 24, 38, 15}

func TestAverageAndImbalance(t *testing.T) {
	if got := Average(paperLoads); got != 35.5 {
		t.Fatalf("Average = %g, want 35.5", got)
	}
	// (65 - 35.5)/35.5 = 0.8309...
	if got := Imbalance(paperLoads); math.Abs(got-29.5/35.5) > 1e-12 {
		t.Fatalf("Imbalance = %g", got)
	}
	if Imbalance([]float64{5, 5, 5}) != 0 {
		t.Fatalf("balanced imbalance not zero")
	}
	if Imbalance(nil) != 0 || Average(nil) != 0 {
		t.Fatalf("empty inputs must yield zero")
	}
	if Imbalance([]float64{0, 0}) != 0 {
		t.Fatalf("zero loads must yield zero imbalance")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax(paperLoads)
	if lo != 15 || hi != 65 {
		t.Fatalf("MinMax = %g,%g", lo, hi)
	}
}

func TestApplyConservesLoad(t *testing.T) {
	moves := []Move{{Src: 0, Dst: 3, Amount: 10}, {Src: 2, Dst: 1, Amount: 2.5}}
	out := Apply(paperLoads, moves)
	if Average(out) != Average(paperLoads) {
		t.Fatalf("Apply changed total load")
	}
	if out[0] != 55 || out[3] != 25 || out[2] != 35.5 || out[1] != 26.5 {
		t.Fatalf("Apply = %v", out)
	}
	// Original untouched.
	if paperLoads[0] != 65 {
		t.Fatalf("Apply mutated input")
	}
}

func TestTargetsEq3(t *testing.T) {
	// Eq. (3): ceil/floor of total/N, remainder on the leading processors.
	got := Targets(10, 4)
	want := []int{3, 3, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Targets(10,4) = %v", got)
		}
	}
	got = Targets(8, 4)
	for _, v := range got {
		if v != 2 {
			t.Fatalf("Targets(8,4) = %v", got)
		}
	}
	if got := Targets(0, 3); got[0] != 0 || got[1] != 0 || got[2] != 0 {
		t.Fatalf("Targets(0,3) = %v", got)
	}
}

func TestTargetsPanicsOnBadInput(t *testing.T) {
	for _, fn := range []func(){
		func() { Targets(5, 0) },
		func() { Targets(-1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestPlanRowsBalancesFilterRows(t *testing.T) {
	// The filtering scenario: high-latitude processors hold many rows to
	// filter, equatorial ones none.
	counts := []int{12, 7, 0, 0, 0, 0, 7, 12} // 38 rows over 8 procs
	moves, targets := PlanRows(append([]int(nil), counts...))
	// Replay the moves against the original counts.
	final := append([]int(nil), counts...)
	for _, m := range moves {
		if m.Count <= 0 {
			t.Fatalf("non-positive move %+v", m)
		}
		final[m.Src] -= m.Count
		final[m.Dst] += m.Count
	}
	for i := range final {
		if final[i] != targets[i] {
			t.Fatalf("proc %d ended with %d rows, want %d (moves %v)", i, final[i], targets[i], moves)
		}
		if final[i] < 38/8 || final[i] > 38/8+1 {
			t.Fatalf("proc %d rows %d outside Eq.(3) band", i, final[i])
		}
	}
}

func TestPlanRowsProperty(t *testing.T) {
	// Property: for any non-negative counts, PlanRows yields the Eq.(3)
	// distribution, never moves more than the total, and never produces a
	// move from a processor that had nothing to give.
	f := func(seed int64, pRaw uint8) bool {
		p := int(pRaw)%16 + 1
		rng := rand.New(rand.NewSource(seed))
		counts := make([]int, p)
		total := 0
		for i := range counts {
			counts[i] = rng.Intn(20)
			total += counts[i]
		}
		orig := append([]int(nil), counts...)
		moves, targets := PlanRows(counts)
		final := append([]int(nil), orig...)
		vol := 0
		for _, m := range moves {
			final[m.Src] -= m.Count
			final[m.Dst] += m.Count
			vol += m.Count
			if final[m.Src] < 0 {
				return false
			}
		}
		if vol > total {
			return false
		}
		for i := range final {
			if final[i] != targets[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCyclicShuffleScheme1(t *testing.T) {
	moves := CyclicShuffle(paperLoads)
	// P*(P-1) messages — the scheme's drawback.
	if len(moves) != 4*3 {
		t.Fatalf("scheme 1 produced %d messages, want 12", len(moves))
	}
	out := Apply(paperLoads, moves)
	// Perfect balance for divisible loads.
	avg := Average(paperLoads)
	for i, v := range out {
		if math.Abs(v-avg) > 1e-12 {
			t.Fatalf("proc %d load %g, want %g (out=%v)", i, v, avg, out)
		}
	}
}

func TestCyclicShuffleMessageComplexityQuadratic(t *testing.T) {
	loads := make([]float64, 16)
	for i := range loads {
		loads[i] = float64(i + 1)
	}
	msgs, _ := PlanCost(CyclicShuffle(loads))
	if msgs != 16*15 {
		t.Fatalf("scheme 1 on 16 procs: %d messages, want 240", msgs)
	}
}

func TestSortedGreedyPaperExample(t *testing.T) {
	// Figure 5: loads 65,24,38,15.  Sorting gives 65(p0),38(p2),24(p1),
	// 15(p3); avg 35.5.  With integer granularity the richest (p0) feeds
	// the poorest (p3) then the next poorest (p1); p2's small surplus
	// tops up the remainder.
	moves := SortedGreedy(paperLoads, 1)
	out := Apply(paperLoads, moves)
	// O(N) messages: at most P-1.
	if len(moves) > 3 {
		t.Fatalf("scheme 2 used %d messages, want <= 3 (moves %v)", len(moves), moves)
	}
	// Every processor within 1 unit of the average (granularity 1).
	for i, v := range out {
		if math.Abs(v-35.5) > 1.0 {
			t.Fatalf("proc %d load %g not within 1 of 35.5 (out=%v, moves=%v)", i, v, out, moves)
		}
	}
	// Load conserved.
	if Average(out) != 35.5 {
		t.Fatalf("scheme 2 lost load")
	}
}

func TestSortedGreedyExactWhenNoGranularity(t *testing.T) {
	moves := SortedGreedy(paperLoads, 0)
	out := Apply(paperLoads, moves)
	for i, v := range out {
		if math.Abs(v-35.5) > 1e-9 {
			t.Fatalf("proc %d load %g, want exactly 35.5", i, v)
		}
	}
}

func TestSortedGreedyProperty(t *testing.T) {
	// Property: scheme 2 with no granularity always reaches near-zero
	// imbalance with at most P-1 messages and conserves total load.
	f := func(seed int64, pRaw uint8) bool {
		p := int(pRaw)%20 + 2
		rng := rand.New(rand.NewSource(seed))
		loads := make([]float64, p)
		for i := range loads {
			loads[i] = rng.Float64() * 100
		}
		moves := SortedGreedy(loads, 0)
		if len(moves) > p-1 {
			return false
		}
		out := Apply(loads, moves)
		if math.Abs(Average(out)-Average(loads)) > 1e-9 {
			return false
		}
		return Imbalance(out) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPairwiseStepPaperExampleFirstRound(t *testing.T) {
	// Figure 6B: sorted 65,38,24,15; pairs (65,15) and (38,24); transfers
	// 25 and 7 give 40,31,31,40.
	moves := PairwiseStep(paperLoads, 1, 0)
	out := Apply(paperLoads, moves)
	want := []float64{40, 31, 31, 40}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("after round 1: %v, want %v (moves %v)", out, want, moves)
		}
	}
}

func TestPairwisePaperExampleConverges(t *testing.T) {
	// Figure 6D: after the second round the loads are 36,35,35,36.
	hist := Pairwise(paperLoads, 1, 0.02, 2)
	if len(hist) != 3 {
		t.Fatalf("history has %d entries, want 3 (initial + 2 rounds)", len(hist))
	}
	if hist[0].MaxLoad != 65 || hist[0].MinLoad != 15 {
		t.Fatalf("initial entry %+v", hist[0])
	}
	final := Apply(Apply(paperLoads, hist[1].Moves), hist[2].Moves)
	want := []float64{36, 35, 35, 36}
	for i := range want {
		if final[i] != want[i] {
			t.Fatalf("after 2 rounds: %v, want %v", final, want)
		}
	}
	if hist[2].Imbalance >= hist[1].Imbalance {
		t.Fatalf("imbalance did not decrease: %g -> %g", hist[1].Imbalance, hist[2].Imbalance)
	}
}

func TestPairwiseStopsAtTolerance(t *testing.T) {
	loads := []float64{10, 10.1, 9.9, 10}
	hist := Pairwise(loads, 0, 0.05, 10)
	if len(hist) != 1 {
		t.Fatalf("already-balanced loads triggered %d extra rounds", len(hist)-1)
	}
}

func TestPairwiseMessageComplexityLinear(t *testing.T) {
	loads := make([]float64, 64)
	for i := range loads {
		loads[i] = float64((i * 37) % 100)
	}
	moves := PairwiseStep(loads, 0, 0)
	if len(moves) > 32 {
		t.Fatalf("one pairwise round used %d exchanges, want <= P/2 = 32", len(moves))
	}
}

func TestPairwiseConvergenceProperty(t *testing.T) {
	// Property: scheme 3 monotonically reduces imbalance and conserves
	// load, and a handful of rounds reaches single-digit imbalance from
	// any initial distribution — the paper's Tables 1-3 claim.
	f := func(seed int64, pRaw uint8) bool {
		p := int(pRaw)%30 + 2
		rng := rand.New(rand.NewSource(seed))
		loads := make([]float64, p)
		for i := range loads {
			loads[i] = rng.Float64()*10 + 0.1
		}
		hist := Pairwise(loads, 0, 0.01, 12)
		cur := loads
		for i := 1; i < len(hist); i++ {
			cur = Apply(cur, hist[i].Moves)
			if hist[i].Imbalance > hist[i-1].Imbalance+1e-12 {
				return false // must not increase
			}
		}
		if math.Abs(Average(cur)-Average(loads)) > 1e-9 {
			return false
		}
		return Imbalance(cur) <= 0.01+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPlanCost(t *testing.T) {
	msgs, vol := PlanCost([]Move{{0, 1, 5}, {1, 2, 0}, {2, 3, 2.5}})
	if msgs != 2 || vol != 7.5 {
		t.Fatalf("PlanCost = %d, %g", msgs, vol)
	}
}

func TestSchemeCostOrdering(t *testing.T) {
	// The paper's argument: scheme 2 and 3 use far fewer messages than
	// scheme 1's all-to-all shuffle.
	rng := rand.New(rand.NewSource(7))
	loads := make([]float64, 32)
	for i := range loads {
		loads[i] = rng.Float64() * 50
	}
	m1, _ := PlanCost(CyclicShuffle(loads))
	m2, _ := PlanCost(SortedGreedy(loads, 0))
	m3, _ := PlanCost(PairwiseStep(loads, 0, 0))
	if !(m2 < m1 && m3 < m1) {
		t.Fatalf("message counts: shuffle=%d greedy=%d pairwise=%d; schemes 2,3 must beat 1", m1, m2, m3)
	}
}
