package loadbalance_test

import (
	"fmt"

	"agcm/internal/loadbalance"
)

// The paper's Figure 6 worked example: four nodes with loads 65, 24, 38
// and 15 reach near-perfect balance in two sorted pairwise-exchange rounds.
func ExamplePairwise() {
	loads := []float64{65, 24, 38, 15}
	history := loadbalance.Pairwise(loads, 1, 0, 2)
	cur := loads
	for _, h := range history {
		if h.Iteration > 0 {
			cur = loadbalance.Apply(cur, h.Moves)
		}
		fmt.Printf("round %d: %v (imbalance %.1f%%)\n", h.Iteration, cur, 100*h.Imbalance)
	}
	// Output:
	// round 0: [65 24 38 15] (imbalance 83.1%)
	// round 1: [40 31 31 40] (imbalance 12.7%)
	// round 2: [36 35 35 36] (imbalance 1.4%)
}

// Scheme 1 shuffles every node's load to every other node: perfectly
// balanced, but P*(P-1) messages.
func ExampleCyclicShuffle() {
	moves := loadbalance.CyclicShuffle([]float64{65, 24, 38, 15})
	after := loadbalance.Apply([]float64{65, 24, 38, 15}, moves)
	msgs, _ := loadbalance.PlanCost(moves)
	fmt.Printf("%d messages, loads %v\n", msgs, after)
	// Output:
	// 12 messages, loads [35.5 35.5 35.5 35.5]
}

// Targets is Eq. (3): spread indivisible rows as evenly as possible.
func ExampleTargets() {
	fmt.Println(loadbalance.Targets(38, 8))
	// Output:
	// [5 5 5 5 5 5 4 4]
}
