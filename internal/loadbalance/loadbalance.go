// Package loadbalance implements the load-balancing algorithms of the paper:
// the generic row-redistribution module used by the load-balanced FFT
// filtering (Section 3.3, Figures 2-3) and the three candidate schemes for
// balancing the Physics component (Section 3.4, Figures 4-6):
//
//   - Scheme 1: cyclic data shuffling — every processor splits its load into
//     P pieces and scatters them, guaranteeing balance at O(P^2) messages.
//   - Scheme 2: sorted greedy moves — processors are sorted by load and
//     surplus flows to deficit with a minimal number of messages, O(P), at
//     the price of global bookkeeping on every invocation.
//   - Scheme 3: iterative sorted pairwise exchange — the adopted scheme:
//     sort, pair rank i with rank P-1-i, exchange half the difference, and
//     repeat until the imbalance falls inside a tolerance.
//
// The package is pure planning: it computes who sends how much to whom from
// load measurements alone, so the same plan can be derived independently and
// identically on every rank.  Executing a plan against real field data is
// the job of the filter and physics packages.
package loadbalance

import (
	"fmt"
	"math"
	"sort"
)

// Average returns the mean of loads, the paper's AverageLoad.
func Average(loads []float64) float64 {
	if len(loads) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range loads {
		sum += v
	}
	return sum / float64(len(loads))
}

// Imbalance returns the paper's percentage-of-load-imbalance as a fraction:
// (MaxLoad - AverageLoad) / AverageLoad.  A perfectly balanced distribution
// returns 0; the all-on-one-processor distribution over P processors
// returns P-1.
func Imbalance(loads []float64) float64 {
	if len(loads) == 0 {
		return 0
	}
	avg := Average(loads)
	if avg == 0 {
		return 0
	}
	max := loads[0]
	for _, v := range loads[1:] {
		if v > max {
			max = v
		}
	}
	return (max - avg) / avg
}

// MinMax returns the smallest and largest load.
func MinMax(loads []float64) (min, max float64) {
	if len(loads) == 0 {
		return 0, 0
	}
	min, max = loads[0], loads[0]
	for _, v := range loads[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// Move transfers Amount units of load from processor Src to processor Dst.
type Move struct {
	Src, Dst int
	Amount   float64
}

// Apply returns a copy of loads with the moves applied.
func Apply(loads []float64, moves []Move) []float64 {
	out := append([]float64(nil), loads...)
	for _, m := range moves {
		out[m.Src] -= m.Amount
		out[m.Dst] += m.Amount
	}
	return out
}

// PlanCost summarizes the communication a plan implies: the number of
// point-to-point messages and the total transferred load volume.
func PlanCost(moves []Move) (messages int, volume float64) {
	for _, m := range moves {
		if m.Amount > 0 {
			messages++
			volume += m.Amount
		}
	}
	return messages, volume
}

// --- Generic integer row balancing (filter module, Eq. 3) ---------------

// Targets splits total indivisible items over p processors as evenly as
// possible: every processor receives floor(total/p) items and the first
// total%p processors receive one extra — the paper's Eq. (3) allocation.
func Targets(total, p int) []int {
	if p <= 0 {
		panic(fmt.Sprintf("loadbalance: invalid processor count %d", p))
	}
	if total < 0 {
		panic(fmt.Sprintf("loadbalance: negative total %d", total))
	}
	base, rem := total/p, total%p
	t := make([]int, p)
	for i := range t {
		t[i] = base
		if i < rem {
			t[i]++
		}
	}
	return t
}

// IntMove transfers Count items from processor Src to processor Dst.
type IntMove struct {
	Src, Dst, Count int
}

// PlanRows computes the moves that turn the per-processor item counts into
// the balanced Targets distribution.  The plan is deterministic (surplus
// processors in index order feed deficit processors in index order), so
// every rank derives the identical plan from the same counts — no extra
// communication is needed to agree on it.
func PlanRows(counts []int) ([]IntMove, []int) {
	total := 0
	for _, c := range counts {
		if c < 0 {
			panic(fmt.Sprintf("loadbalance: negative count %d", c))
		}
		total += c
	}
	targets := Targets(total, len(counts))
	var moves []IntMove
	deficitIdx := 0
	for src := range counts {
		surplus := counts[src] - targets[src]
		for surplus > 0 {
			for deficitIdx < len(counts) && counts[deficitIdx] >= targets[deficitIdx] {
				deficitIdx++
			}
			if deficitIdx == len(counts) {
				panic("loadbalance: internal error: surplus without deficit")
			}
			dst := deficitIdx
			need := targets[dst] - counts[dst]
			n := min(surplus, need)
			moves = append(moves, IntMove{Src: src, Dst: dst, Count: n})
			counts[src] -= n
			counts[dst] += n
			surplus -= n
		}
	}
	return moves, targets
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// --- Scheme 1: cyclic data shuffling (Figure 4) --------------------------

// CyclicShuffle returns the scheme-1 plan: every processor divides its local
// load into P equal pieces and sends piece j to processor j, keeping its
// own piece.  The result is exactly balanced whenever the load within each
// processor is uniformly divisible, at the cost of P*(P-1) messages.
func CyclicShuffle(loads []float64) []Move {
	p := len(loads)
	var moves []Move
	for src := 0; src < p; src++ {
		piece := loads[src] / float64(p)
		for dst := 0; dst < p; dst++ {
			if dst == src || piece == 0 {
				continue
			}
			moves = append(moves, Move{Src: src, Dst: dst, Amount: piece})
		}
	}
	return moves
}

// --- Scheme 2: sorted greedy moves (Figure 5) ----------------------------

// SortedGreedy returns the scheme-2 plan: processors are ranked by load,
// then surplus load flows from the most loaded to the least loaded with the
// fewest possible messages.  granularity > 0 quantizes every transfer (the
// paper assigns integer weights to load pieces); granularity == 0 transfers
// exact amounts.
func SortedGreedy(loads []float64, granularity float64) []Move {
	p := len(loads)
	avg := Average(loads)
	// Rank processors by load (descending), original index as tiebreak —
	// the "new node id through a sorting of all local loads" of Fig. 5B.
	order := sortedOrder(loads)
	type node struct {
		idx  int
		diff float64 // positive = surplus
	}
	nodes := make([]node, p)
	for r, idx := range order {
		nodes[r] = node{idx: idx, diff: loads[idx] - avg}
	}
	var moves []Move
	give, take := 0, p-1 // richest gives, poorest takes
	for give < take {
		g, t := &nodes[give], &nodes[take]
		if g.diff <= 0 {
			give++
			continue
		}
		if t.diff >= 0 {
			take--
			continue
		}
		amount := math.Min(g.diff, -t.diff)
		if granularity > 0 {
			amount = math.Floor(amount/granularity) * granularity
		}
		if amount <= 0 {
			// Remaining differences are below the granularity.
			if g.diff < -t.diff {
				give++
			} else {
				take--
			}
			continue
		}
		moves = append(moves, Move{Src: g.idx, Dst: t.idx, Amount: amount})
		g.diff -= amount
		t.diff += amount
		if g.diff <= 0 {
			give++
		}
		if t.diff >= 0 {
			take--
		}
	}
	return moves
}

// sortedOrder returns processor indices sorted by descending load, stable in
// the original index for ties — all ranks derive the same order.
func sortedOrder(loads []float64) []int {
	order := make([]int, len(loads))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return loads[order[a]] > loads[order[b]]
	})
	return order
}

// --- Scheme 3: iterative sorted pairwise exchange (Figure 6) -------------

// PairwiseStep returns one scheme-3 round: processors are ranked by load and
// the processor of rank i exchanges with the processor of rank P-1-i, moving
// half their load difference from the richer to the poorer.  Transfers whose
// amount would fall below granularity (or below tolerance) are skipped —
// "a pairwise data exchange is only needed when the load difference in the
// pair of nodes exceeds some tolerance".
func PairwiseStep(loads []float64, granularity, tolerance float64) []Move {
	p := len(loads)
	order := sortedOrder(loads)
	var moves []Move
	for i := 0; i < p/2; i++ {
		hi, lo := order[i], order[p-1-i]
		diff := loads[hi] - loads[lo]
		if diff <= tolerance {
			continue
		}
		amount := diff / 2
		if granularity > 0 {
			amount = math.Floor(amount/granularity) * granularity
		}
		if amount <= 0 {
			continue
		}
		moves = append(moves, Move{Src: hi, Dst: lo, Amount: amount})
	}
	return moves
}

// BalanceResult records one scheme-3 iteration for reporting: the paper's
// Tables 1-3 are exactly this history.
type BalanceResult struct {
	// Iteration 0 is the initial state; iteration i > 0 is the state
	// after the i-th sort-and-exchange round.
	Iteration int
	MaxLoad   float64
	MinLoad   float64
	// Imbalance is (max-avg)/avg as a fraction.
	Imbalance float64
	// Moves holds the exchanges performed to reach this state (nil for
	// iteration 0).
	Moves []Move
}

// Pairwise iterates scheme 3 until the imbalance is at most tol (a
// fraction) or maxIter rounds have run, and returns the per-iteration
// history including the initial state.  granularity quantizes transfers as
// in PairwiseStep.
func Pairwise(loads []float64, granularity, tol float64, maxIter int) []BalanceResult {
	cur := append([]float64(nil), loads...)
	minL, maxL := MinMax(cur)
	history := []BalanceResult{{
		Iteration: 0, MaxLoad: maxL, MinLoad: minL, Imbalance: Imbalance(cur),
	}}
	for it := 1; it <= maxIter; it++ {
		if Imbalance(cur) <= tol {
			break
		}
		moves := PairwiseStep(cur, granularity, 0)
		if len(moves) == 0 {
			break // converged to within granularity
		}
		cur = Apply(cur, moves)
		minL, maxL = MinMax(cur)
		history = append(history, BalanceResult{
			Iteration: it, MaxLoad: maxL, MinLoad: minL,
			Imbalance: Imbalance(cur), Moves: moves,
		})
	}
	return history
}
