package history

import (
	"fmt"
	"io"

	"agcm/internal/frame"
	"agcm/internal/grid"
)

// Frame-backed history encoding.  A checkpoint is a frame.TypeHistory frame:
//
//	section 1       meta: u32 nlon, u32 nlat, u32 nlayers, u64 step,
//	                u32 variable count
//	section 2       names: one length-prefixed string per variable,
//	                in variable order
//	section 0x100+i variable i's data: u32 count + IEEE-754 bit patterns
//
// Giving every variable its own section is what buys random access: a
// reader can pull one field out of a multi-megabyte checkpoint by slicing
// a single section — FrameVariable — without decoding the rest, and the
// CRC catches a corrupted checkpoint before any value is trusted.  The
// legacy "AGMH" stream format remains readable (Read sniffs the magic),
// so checkpoints written before the frame migration still load.
const (
	histSecMeta    = 1
	histSecNames   = 2
	histSecVarBase = 0x100
)

// maxVars matches the legacy reader's variable-count plausibility cap.
const maxVars = 1 << 10

// EncodeFrame serializes a history file as a canonical frame.  Identical
// files encode to identical bytes (the format has one encoding per value),
// so checkpoint bytes are content-addressable like everything else built
// on frames.
func EncodeFrame(f *File) ([]byte, error) {
	if len(f.Names) != len(f.Data) {
		return nil, fmt.Errorf("history: %d names but %d variables", len(f.Names), len(f.Data))
	}
	if len(f.Names) > maxVars {
		return nil, fmt.Errorf("history: %d variables exceeds cap %d", len(f.Names), maxVars)
	}
	if f.Step < 0 {
		return nil, fmt.Errorf("history: negative step %d", f.Step)
	}
	var b frame.Builder
	b.Begin(histSecMeta)
	b.Uint32(uint32(f.Spec.Nlon))
	b.Uint32(uint32(f.Spec.Nlat))
	b.Uint32(uint32(f.Spec.Nlayers))
	b.Uint64(uint64(f.Step))
	b.Uint32(uint32(len(f.Names)))
	b.Begin(histSecNames)
	for i, name := range f.Names {
		if len(name) > 255 {
			return nil, fmt.Errorf("history: variable name %q too long", name)
		}
		if len(f.Data[i]) != f.Spec.Points() {
			return nil, fmt.Errorf("history: variable %q has %d values, want %d",
				name, len(f.Data[i]), f.Spec.Points())
		}
		b.LenBytes([]byte(name))
	}
	for i, data := range f.Data {
		b.Begin(histSecVarBase + uint32(i))
		b.Float64s(data)
	}
	raw, err := b.Finish(frame.TypeHistory)
	if err != nil {
		return nil, err
	}
	// Finish aliases the builder's buffer; the builder dies here, but copy
	// anyway so the contract ("returned bytes are yours") is unconditional.
	return append([]byte(nil), raw...), nil
}

// WriteFrame serializes f in the frame encoding — what new checkpoints
// use.  Write (the legacy stream form) remains for compatibility tooling.
func WriteFrame(w io.Writer, f *File) error {
	raw, err := EncodeFrame(f)
	if err != nil {
		return err
	}
	if _, err := w.Write(raw); err != nil {
		return fmt.Errorf("history: writing frame: %w", err)
	}
	return nil
}

// decodeFrame rebuilds a File from frame bytes.
func decodeFrame(buf []byte) (*File, error) {
	fr, err := frame.Parse(buf)
	if err != nil {
		return nil, fmt.Errorf("history: %w", err)
	}
	if fr.Type() != frame.TypeHistory {
		return nil, fmt.Errorf("history: frame type %d is not a history frame", fr.Type())
	}
	meta, ok := fr.Section(histSecMeta)
	if !ok {
		return nil, fmt.Errorf("history: frame has no meta section")
	}
	c := frame.NewCursor(meta)
	f := &File{
		Spec: grid.Spec{
			Nlon:    int(c.Uint32()),
			Nlat:    int(c.Uint32()),
			Nlayers: int(c.Uint32()),
		},
		Step: int(c.Uint64()),
	}
	nvars := int(c.Uint32())
	if err := c.Err(); err != nil {
		return nil, fmt.Errorf("history: meta section: %w", err)
	}
	if err := f.Spec.Validate(); err != nil {
		return nil, err
	}
	if f.Spec.Nlon > 1<<16 || f.Spec.Nlat > 1<<16 || f.Spec.Nlayers > 1<<12 {
		return nil, fmt.Errorf("history: implausible grid %dx%dx%d",
			f.Spec.Nlon, f.Spec.Nlat, f.Spec.Nlayers)
	}
	if nvars < 0 || nvars > maxVars {
		return nil, fmt.Errorf("history: implausible variable count %d", nvars)
	}
	names, err := frameNames(fr, nvars)
	if err != nil {
		return nil, err
	}
	f.Names = names
	for i := 0; i < nvars; i++ {
		data, err := frameData(fr, f.Spec, i)
		if err != nil {
			return nil, fmt.Errorf("history: variable %q: %w", names[i], err)
		}
		f.Data = append(f.Data, data)
	}
	return f, nil
}

// frameNames decodes the names section.
func frameNames(fr frame.Frame, nvars int) ([]string, error) {
	sec, ok := fr.Section(histSecNames)
	if !ok {
		return nil, fmt.Errorf("history: frame has no names section")
	}
	c := frame.NewCursor(sec)
	names := make([]string, nvars)
	for i := range names {
		nb := c.LenBytes()
		if c.Err() != nil || len(nb) > 255 {
			return nil, fmt.Errorf("history: malformed names section")
		}
		names[i] = string(nb)
	}
	if c.Remaining() != 0 {
		return nil, fmt.Errorf("history: %d trailing bytes in names section", c.Remaining())
	}
	return names, nil
}

// frameData decodes variable i's section.
func frameData(fr frame.Frame, spec grid.Spec, i int) ([]float64, error) {
	sec, ok := fr.Section(histSecVarBase + uint32(i))
	if !ok {
		return nil, fmt.Errorf("history: frame has no section for variable %d", i)
	}
	c := frame.NewCursor(sec)
	data := c.Float64s(make([]float64, 0, spec.Points()))
	if err := c.Err(); err != nil {
		return nil, err
	}
	if len(data) != spec.Points() {
		return nil, fmt.Errorf("history: %d values, want %d", len(data), spec.Points())
	}
	return data, nil
}

// FrameVariable extracts one named variable from an encoded history frame
// without decoding any other variable — the offset-indexed random access
// the frame layout exists for.  buf must be a complete history frame.
func FrameVariable(buf []byte, name string) ([]float64, error) {
	fr, err := frame.Parse(buf)
	if err != nil {
		return nil, fmt.Errorf("history: %w", err)
	}
	if fr.Type() != frame.TypeHistory {
		return nil, fmt.Errorf("history: frame type %d is not a history frame", fr.Type())
	}
	meta, ok := fr.Section(histSecMeta)
	if !ok {
		return nil, fmt.Errorf("history: frame has no meta section")
	}
	c := frame.NewCursor(meta)
	spec := grid.Spec{
		Nlon:    int(c.Uint32()),
		Nlat:    int(c.Uint32()),
		Nlayers: int(c.Uint32()),
	}
	_ = c.Uint64() // step
	nvars := int(c.Uint32())
	if err := c.Err(); err != nil {
		return nil, fmt.Errorf("history: meta section: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if nvars < 0 || nvars > maxVars {
		return nil, fmt.Errorf("history: implausible variable count %d", nvars)
	}
	names, err := frameNames(fr, nvars)
	if err != nil {
		return nil, err
	}
	for i, n := range names {
		if n == name {
			return frameData(fr, spec, i)
		}
	}
	return nil, fmt.Errorf("history: no variable %q", name)
}
