package history

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"agcm/internal/grid"
)

func demoFile(t *testing.T) *File {
	t.Helper()
	spec := grid.Spec{Nlon: 8, Nlat: 6, Nlayers: 2}
	f := &File{Spec: spec, Step: 42}
	rng := rand.New(rand.NewSource(1))
	for _, name := range []string{"u", "v", "h"} {
		data := make([]float64, spec.Points())
		for i := range data {
			data[i] = rng.NormFloat64() * 100
		}
		if err := f.AddVariable(name, data); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func TestRoundTripBothByteOrders(t *testing.T) {
	for _, bo := range []ByteOrder{BigEndian, LittleEndian} {
		f := demoFile(t)
		var buf bytes.Buffer
		if err := Write(&buf, f, bo); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Step != 42 || got.Spec != f.Spec {
			t.Fatalf("metadata mismatch: %+v", got)
		}
		for vi, name := range f.Names {
			data, err := got.Variable(name)
			if err != nil {
				t.Fatal(err)
			}
			for i := range data {
				if data[i] != f.Data[vi][i] {
					t.Fatalf("order %d variable %s index %d: %g != %g",
						bo, name, i, data[i], f.Data[vi][i])
				}
			}
		}
	}
}

func TestDifferentByteOrdersDifferOnDisk(t *testing.T) {
	f := demoFile(t)
	var big, little bytes.Buffer
	if err := Write(&big, f, BigEndian); err != nil {
		t.Fatal(err)
	}
	if err := Write(&little, f, LittleEndian); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(big.Bytes(), little.Bytes()) {
		t.Fatal("big- and little-endian files identical; endianness ignored")
	}
	if big.Len() != little.Len() {
		t.Fatal("file sizes differ between byte orders")
	}
}

func TestReverseBytesConvertsEndianness(t *testing.T) {
	// Reversing each 8-byte word of a big-endian payload must yield the
	// little-endian payload — the paper's conversion routine.
	f := demoFile(t)
	var big, little bytes.Buffer
	if err := Write(&big, f, BigEndian); err != nil {
		t.Fatal(err)
	}
	if err := Write(&little, f, LittleEndian); err != nil {
		t.Fatal(err)
	}
	// Headers (8*4 bytes) are both big-endian; the per-variable name
	// blocks are identical; only the float payloads differ.  Convert the
	// whole big payload variable by variable.
	bb := big.Bytes()
	lb := little.Bytes()
	// The stored byte-order flag (header word 2) legitimately differs;
	// align it so the comparison checks only the payload conversion.
	bb[11] = lb[11]
	// Walk the format: 32-byte header, then per variable 4-byte name
	// length + name + 8*Points payload.
	off := 32
	for v := 0; v < 3; v++ {
		nameLen := int(bb[off+3]) // small names, big-endian u32
		off += 4 + nameLen
		payload := bb[off : off+8*f.Spec.Points()]
		if err := ReverseBytes(payload); err != nil {
			t.Fatal(err)
		}
		off += 8 * f.Spec.Points()
	}
	if !bytes.Equal(bb, lb) {
		t.Fatal("ReverseBytes did not convert big-endian payload to little-endian")
	}
}

func TestReverseBytesRejectsBadLength(t *testing.T) {
	if err := ReverseBytes(make([]byte, 12)); err == nil {
		t.Fatal("expected error for non-multiple-of-8 buffer")
	}
}

func TestReverseBytesInvolution(t *testing.T) {
	buf := make([]byte, 64)
	for i := range buf {
		buf[i] = byte(i * 7)
	}
	orig := append([]byte(nil), buf...)
	if err := ReverseBytes(buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(buf, orig) {
		t.Fatal("ReverseBytes was a no-op")
	}
	if err := ReverseBytes(buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, orig) {
		t.Fatal("ReverseBytes not an involution")
	}
}

func TestReadRejectsCorruptHeaders(t *testing.T) {
	f := demoFile(t)
	var buf bytes.Buffer
	if err := Write(&buf, f, BigEndian); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	corrupt := func(mutate func(b []byte)) error {
		b := append([]byte(nil), good...)
		mutate(b)
		_, err := Read(bytes.NewReader(b))
		return err
	}
	if err := corrupt(func(b []byte) { b[0] = 0xFF }); err == nil {
		t.Error("bad magic accepted")
	}
	if err := corrupt(func(b []byte) { b[7] = 99 }); err == nil {
		t.Error("bad version accepted")
	}
	if err := corrupt(func(b []byte) { b[11] = 9 }); err == nil {
		t.Error("bad byte-order flag accepted")
	}
	// Truncated payload.
	if _, err := Read(bytes.NewReader(good[:len(good)-10])); err == nil {
		t.Error("truncated file accepted")
	}
}

func TestAddVariableValidatesLength(t *testing.T) {
	f := &File{Spec: grid.Spec{Nlon: 8, Nlat: 6, Nlayers: 2}}
	if err := f.AddVariable("u", make([]float64, 5)); err == nil {
		t.Fatal("wrong-length variable accepted")
	}
}

func TestVariableNotFound(t *testing.T) {
	f := demoFile(t)
	if _, err := f.Variable("nope"); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("err = %v", err)
	}
}

func TestSpecialFloatValuesSurvive(t *testing.T) {
	spec := grid.Spec{Nlon: 4, Nlat: 4, Nlayers: 1}
	f := &File{Spec: spec}
	data := make([]float64, spec.Points())
	data[0] = math.Inf(1)
	data[1] = math.Inf(-1)
	data[2] = math.SmallestNonzeroFloat64
	data[3] = -0.0
	data[4] = math.MaxFloat64
	if err := f.AddVariable("x", data); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, f, LittleEndian); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := got.Variable("x")
	for i := 0; i < 5; i++ {
		if math.Float64bits(x[i]) != math.Float64bits(data[i]) {
			t.Fatalf("value %d: bits differ", i)
		}
	}
}
