package history

import (
	"bytes"
	"testing"

	"agcm/internal/grid"
)

// FuzzRead exercises the history parser on arbitrary byte streams: it must
// return an error or a valid file, never panic or over-allocate wildly.
func FuzzRead(f *testing.F) {
	// Seed with a valid file and a few mutations.
	spec := grid.Spec{Nlon: 4, Nlat: 4, Nlayers: 1}
	file := &File{Spec: spec, Step: 1}
	data := make([]float64, spec.Points())
	for i := range data {
		data[i] = float64(i)
	}
	if err := file.AddVariable("u", data); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, file, BigEndian); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte{})
	mut := append([]byte(nil), good...)
	mut[9] = 0xFF
	f.Add(mut)

	// Frame-encoded seeds: Read dispatches on the magic, so the fuzzer
	// must reach both decode paths.
	goodFrame, err := EncodeFrame(file)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(goodFrame)
	f.Add(goodFrame[:len(goodFrame)/2])
	f.Add(goodFrame[:4]) // bare frame magic
	fmut := append([]byte(nil), goodFrame...)
	fmut[len(fmut)-10] ^= 1 // payload bit flip: CRC must catch it
	f.Add(fmut)

	f.Fuzz(func(t *testing.T, in []byte) {
		got, err := Read(bytes.NewReader(in))
		if err != nil {
			return
		}
		// A successful parse must be internally consistent.
		if got.Spec.Validate() != nil {
			t.Fatalf("accepted file with invalid spec %+v", got.Spec)
		}
		for i, d := range got.Data {
			if len(d) != got.Spec.Points() {
				t.Fatalf("variable %d has %d values, want %d", i, len(d), got.Spec.Points())
			}
		}
	})
}
