package history

import (
	"bytes"
	"reflect"
	"testing"

	"agcm/internal/frame"
)

// TestFrameRoundTrip: frame-encoded history files decode back exactly, and
// identical files encode to identical bytes (the canonical-form property).
func TestFrameRoundTrip(t *testing.T) {
	f := demoFile(t)
	raw1, err := EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	raw2, err := EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Fatal("two encodings of the same file differ")
	}
	got, err := Read(bytes.NewReader(raw1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, f) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, f)
	}
	// And re-encoding the decoded file reproduces the bytes.
	raw3, err := EncodeFrame(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw1, raw3) {
		t.Fatal("encode(decode(encode(f))) != encode(f)")
	}
}

// TestVersionGatedReader: one Read loads all three on-disk forms — legacy
// big-endian, legacy little-endian, and frame — so checkpoints written
// before the frame migration still restore.
func TestVersionGatedReader(t *testing.T) {
	f := demoFile(t)
	encodings := map[string][]byte{}
	for name, enc := range map[string]func() ([]byte, error){
		"legacy-big": func() ([]byte, error) {
			var b bytes.Buffer
			err := Write(&b, f, BigEndian)
			return b.Bytes(), err
		},
		"legacy-little": func() ([]byte, error) {
			var b bytes.Buffer
			err := Write(&b, f, LittleEndian)
			return b.Bytes(), err
		},
		"frame": func() ([]byte, error) { return EncodeFrame(f) },
	} {
		raw, err := enc()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		encodings[name] = raw
	}
	for name, raw := range encodings {
		got, err := Read(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Step != f.Step || got.Spec != f.Spec || !reflect.DeepEqual(got.Names, f.Names) {
			t.Fatalf("%s: metadata mismatch: %+v", name, got)
		}
		for i := range f.Data {
			if !reflect.DeepEqual(got.Data[i], f.Data[i]) {
				t.Fatalf("%s: variable %q differs", name, f.Names[i])
			}
		}
	}
}

// TestFrameVariableRandomAccess: a single variable comes out of the frame
// bytes without decoding the others, and matches the full decode.
func TestFrameVariableRandomAccess(t *testing.T) {
	f := demoFile(t)
	raw, err := EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range f.Names {
		data, err := FrameVariable(raw, name)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if !reflect.DeepEqual(data, f.Data[i]) {
			t.Fatalf("%q: random-access data differs from source", name)
		}
	}
	if _, err := FrameVariable(raw, "no-such-variable"); err == nil {
		t.Fatal("FrameVariable found a variable that does not exist")
	}
}

// TestFrameRejectsCorrupt: every single-bit corruption of a history frame
// is rejected (CRC or layout), never silently decoded and never a panic.
func TestFrameRejectsCorrupt(t *testing.T) {
	f := demoFile(t)
	raw, err := EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(raw); off += 7 {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x40
		if _, err := Read(bytes.NewReader(mut)); err == nil {
			t.Fatalf("bit flip at offset %d accepted", off)
		}
	}
	// A response frame is not a history frame, even though it parses.
	var b frame.Builder
	b.Begin(1)
	b.Uint32(1)
	resp, err := b.Finish(frame.TypeResponse)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(resp)); err == nil {
		t.Fatal("response frame accepted as a history file")
	}
}

// TestEncodeFrameValidates: malformed in-memory files are refused at
// encode time, mirroring the legacy writer's checks.
func TestEncodeFrameValidates(t *testing.T) {
	f := demoFile(t)
	f.Names = append(f.Names, "orphan") // name without data
	if _, err := EncodeFrame(f); err == nil {
		t.Fatal("EncodeFrame accepted mismatched names/data")
	}
	f = demoFile(t)
	f.Data[0] = f.Data[0][:3] // wrong length
	if _, err := EncodeFrame(f); err == nil {
		t.Fatal("EncodeFrame accepted short variable data")
	}
}
