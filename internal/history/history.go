// Package history implements the AGCM's history/restart file IO.  The
// original code read a NetCDF history file; porting it to the Intel Paragon
// required a byte-order reversal routine because no NetCDF library was
// available there (Section 4).  This package reproduces that code path with
// a self-describing binary format whose on-disk byte order is explicit, plus
// the byte-order reversal routine for foreign-endian files.
package history

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"agcm/internal/frame"
	"agcm/internal/grid"
)

// Magic identifies a history file.
const Magic = 0x41474D48 // "AGMH"

// Version is the current format version.
const Version = 1

// File is an in-memory history record: the full global state of every
// stored variable at one instant.
type File struct {
	Spec grid.Spec
	// Step is the time-step index the record was taken at.
	Step int
	// Names and Data hold the variables; Data[i] is flattened
	// [Nlat][Nlon][Nlayers] like grid.Gather's output.
	Names []string
	Data  [][]float64
}

// AddVariable appends a variable; the data length must match the spec.
func (f *File) AddVariable(name string, data []float64) error {
	if len(data) != f.Spec.Points() {
		return fmt.Errorf("history: variable %q has %d values, want %d",
			name, len(data), f.Spec.Points())
	}
	f.Names = append(f.Names, name)
	f.Data = append(f.Data, data)
	return nil
}

// Variable returns the named variable's data, or an error.
func (f *File) Variable(name string) ([]float64, error) {
	for i, n := range f.Names {
		if n == name {
			return f.Data[i], nil
		}
	}
	return nil, fmt.Errorf("history: no variable %q", name)
}

// ByteOrder selects the on-disk endianness.
type ByteOrder int

const (
	// BigEndian is the canonical history byte order (the workstation
	// side in the paper's anecdote).
	BigEndian ByteOrder = iota
	// LittleEndian matches the Paragon's native order.
	LittleEndian
)

func (b ByteOrder) order() binary.ByteOrder {
	if b == BigEndian {
		return binary.BigEndian
	}
	return binary.LittleEndian
}

// Write serializes the file in the given byte order.  The header is always
// written in big-endian so a reader can detect the payload order from the
// stored flag.
func Write(w io.Writer, f *File, bo ByteOrder) error {
	hdr := make([]uint32, 8)
	hdr[0] = Magic
	hdr[1] = Version
	hdr[2] = uint32(bo)
	hdr[3] = uint32(f.Spec.Nlon)
	hdr[4] = uint32(f.Spec.Nlat)
	hdr[5] = uint32(f.Spec.Nlayers)
	hdr[6] = uint32(f.Step)
	hdr[7] = uint32(len(f.Names))
	if err := binary.Write(w, binary.BigEndian, hdr); err != nil {
		return fmt.Errorf("history: writing header: %w", err)
	}
	ord := bo.order()
	for i, name := range f.Names {
		nb := []byte(name)
		if len(nb) > 255 {
			return fmt.Errorf("history: variable name %q too long", name)
		}
		if err := binary.Write(w, binary.BigEndian, uint32(len(nb))); err != nil {
			return err
		}
		if _, err := w.Write(nb); err != nil {
			return err
		}
		buf := make([]byte, 8*len(f.Data[i]))
		for j, v := range f.Data[i] {
			ord.PutUint64(buf[8*j:], math.Float64bits(v))
		}
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("history: writing %q: %w", name, err)
		}
	}
	return nil
}

// Read deserializes a history file in either supported encoding.  It
// sniffs the 4-byte magic: "AGCF" selects the frame encoding (the current
// checkpoint format), "AGMH" the legacy stream format, transparently
// applying the byte-order reversal when the legacy payload order differs
// from what the caller's platform would have written — the routine the
// paper's authors had to add for the Paragon port.  Checkpoints written
// before the frame migration therefore still load.
func Read(r io.Reader) (*File, error) {
	var first [4]byte
	if _, err := io.ReadFull(r, first[:]); err != nil {
		return nil, fmt.Errorf("history: reading header: %w", err)
	}
	if frame.IsFrame(first[:]) {
		rest, err := io.ReadAll(r)
		if err != nil {
			return nil, fmt.Errorf("history: reading frame: %w", err)
		}
		return decodeFrame(append(first[:], rest...))
	}
	return readLegacy(first, r)
}

// readLegacy deserializes the pre-frame "AGMH" stream format, whose first
// four bytes have already been consumed as the magic sniff.
func readLegacy(first [4]byte, r io.Reader) (*File, error) {
	hdr := make([]uint32, 8)
	hdr[0] = binary.BigEndian.Uint32(first[:])
	if err := binary.Read(r, binary.BigEndian, hdr[1:]); err != nil {
		return nil, fmt.Errorf("history: reading header: %w", err)
	}
	if hdr[0] != Magic {
		return nil, fmt.Errorf("history: bad magic %#x", hdr[0])
	}
	if hdr[1] != Version {
		return nil, fmt.Errorf("history: unsupported version %d", hdr[1])
	}
	bo := ByteOrder(hdr[2])
	if bo != BigEndian && bo != LittleEndian {
		return nil, fmt.Errorf("history: bad byte-order flag %d", hdr[2])
	}
	f := &File{
		Spec: grid.Spec{Nlon: int(hdr[3]), Nlat: int(hdr[4]), Nlayers: int(hdr[5])},
		Step: int(hdr[6]),
	}
	if err := f.Spec.Validate(); err != nil {
		return nil, err
	}
	// Bound allocations before trusting header-declared sizes: the
	// largest plausible history grid is far below these caps.
	if f.Spec.Nlon > 1<<16 || f.Spec.Nlat > 1<<16 || f.Spec.Nlayers > 1<<12 {
		return nil, fmt.Errorf("history: implausible grid %dx%dx%d",
			f.Spec.Nlon, f.Spec.Nlat, f.Spec.Nlayers)
	}
	nvars := int(hdr[7])
	if nvars > 1<<10 {
		return nil, fmt.Errorf("history: implausible variable count %d", nvars)
	}
	ord := bo.order()
	for v := 0; v < nvars; v++ {
		var nameLen uint32
		if err := binary.Read(r, binary.BigEndian, &nameLen); err != nil {
			return nil, err
		}
		if nameLen > 255 { // Write never produces longer names
			return nil, fmt.Errorf("history: implausible name length %d", nameLen)
		}
		nb := make([]byte, nameLen)
		if _, err := io.ReadFull(r, nb); err != nil {
			return nil, err
		}
		buf := make([]byte, 8*f.Spec.Points())
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("history: reading %q: %w", nb, err)
		}
		data := make([]float64, f.Spec.Points())
		for j := range data {
			data[j] = math.Float64frombits(ord.Uint64(buf[8*j:]))
		}
		f.Names = append(f.Names, string(nb))
		f.Data = append(f.Data, data)
	}
	return f, nil
}

// ReverseBytes reverses the byte order of every 8-byte word in place — the
// raw conversion routine for repairing a history payload read with the
// wrong endianness assumption.
func ReverseBytes(buf []byte) error {
	if len(buf)%8 != 0 {
		return fmt.Errorf("history: buffer length %d not a multiple of 8", len(buf))
	}
	for off := 0; off < len(buf); off += 8 {
		for a, b := off, off+7; a < b; a, b = a+1, b-1 {
			buf[a], buf[b] = buf[b], buf[a]
		}
	}
	return nil
}
