package frame

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Store is the disk-backed content-addressed frame tier: a directory of
// frames laid out as <dir>/<first-2-of-key>/<key>.frame, sitting under an
// in-memory cache.  Keys are 64-char lowercase-hex content addresses (the
// serving stack's job keys), so a key names its bytes forever: a Get that
// passes the frame CRC is byte-identical to what was Put, across process
// restarts and across any replica that shares the directory.
//
// Writes are atomic (tmp file + rename in the same directory), so a reader
// or a crash never observes a torn frame; reads re-Parse the frame, so a
// corrupted file (bad CRC, bad layout) is dropped and counted rather than
// served.  The store does not deduplicate fills — callers that need
// single-flight semantics (the server's flight table) provide them; the
// store itself only promises atomicity and validation.
//
// The tier is bounded: when Put would exceed the byte budget the oldest
// entries are evicted first (insertion order; on open, the rescan order is
// sorted key order), a rule chosen because it is a pure function of the
// operation sequence — two replicas applying the same fills evict the same
// files.
type Store struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	sizes   map[string]int64
	order   []string // insertion order, oldest first
	bytes   int64
	evicted uint64
	corrupt uint64
}

// DefaultStoreBytes is the disk tier's default byte budget (256 MiB).
const DefaultStoreBytes = 256 << 20

// ValidKey reports whether key is a well-formed content address: exactly
// 64 lowercase-hex characters.  Everything else is rejected before any
// path is formed, so request-supplied keys cannot traverse the tree.
func ValidKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// OpenStore opens (creating if needed) the store rooted at dir with the
// given byte budget (0 means DefaultStoreBytes).  Existing entries are
// rescanned in sorted key order and the budget re-applied, so a restarted
// process resumes with a warm, bounded tier.
func OpenStore(dir string, maxBytes int64) (*Store, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultStoreBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("frame: opening store: %w", err)
	}
	st := &Store{
		dir:      dir,
		maxBytes: maxBytes,
		sizes:    make(map[string]int64),
	}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		key, found := strings.CutSuffix(name, ".frame")
		if !found || !ValidKey(key) {
			return nil // foreign file; leave it alone
		}
		info, err := d.Info()
		if err != nil {
			return nil // raced with a concurrent delete
		}
		st.sizes[key] = info.Size()
		st.order = append(st.order, key)
		st.bytes += info.Size()
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("frame: scanning store: %w", err)
	}
	// WalkDir visits lexically, which is already sorted key order; sort
	// anyway so the eviction order never depends on filesystem quirks.
	sort.Strings(st.order)
	st.mu.Lock()
	st.evictOverBudgetLocked()
	st.mu.Unlock()
	return st, nil
}

func (st *Store) path(key string) string {
	return filepath.Join(st.dir, key[:2], key+".frame")
}

// Get returns the stored frame bytes for key, or (nil, false).  The bytes
// are re-validated with Parse — layout and CRC — before being returned;
// a file that fails validation is removed and counted as corrupt, so the
// tier degrades to a miss, never to serving damaged bytes.
func (st *Store) Get(key string) ([]byte, bool) {
	if !ValidKey(key) {
		return nil, false
	}
	st.mu.Lock()
	_, known := st.sizes[key]
	st.mu.Unlock()
	if !known {
		return nil, false
	}
	buf, err := os.ReadFile(st.path(key))
	if err != nil {
		st.drop(key, false)
		return nil, false
	}
	if _, err := Parse(buf); err != nil {
		st.drop(key, true)
		return nil, false
	}
	return buf, true
}

// drop forgets key (and deletes its file) after a failed read.
func (st *Store) drop(key string, corrupt bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.sizes[key]; !ok {
		return
	}
	st.removeLocked(key)
	if corrupt {
		st.corrupt++
	}
}

// Put stores frameBytes under key with an atomic tmp+rename write, then
// evicts oldest-first until the tier is back under budget (the entry just
// written is never evicted by its own Put).  The bytes must be a valid
// frame — the store refuses to persist anything Parse rejects.
func (st *Store) Put(key string, frameBytes []byte) error {
	if !ValidKey(key) {
		return fmt.Errorf("frame: store key %q is not a content address", key)
	}
	if _, err := Parse(frameBytes); err != nil {
		return fmt.Errorf("frame: refusing to store invalid frame: %w", err)
	}
	subdir := filepath.Join(st.dir, key[:2])
	if err := os.MkdirAll(subdir, 0o755); err != nil {
		return fmt.Errorf("frame: store put: %w", err)
	}
	tmp, err := os.CreateTemp(subdir, key+".*.tmp")
	if err != nil {
		return fmt.Errorf("frame: store put: %w", err)
	}
	if _, err := tmp.Write(frameBytes); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("frame: store put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("frame: store put: %w", err)
	}
	if err := os.Rename(tmp.Name(), st.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("frame: store put: %w", err)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if old, ok := st.sizes[key]; ok {
		st.bytes -= old
	} else {
		st.order = append(st.order, key)
	}
	st.sizes[key] = int64(len(frameBytes))
	st.bytes += int64(len(frameBytes))
	st.evictOverBudgetLocked()
	return nil
}

// evictOverBudgetLocked removes oldest entries until bytes <= maxBytes,
// always sparing the newest entry so a single oversized frame still
// persists (the budget then holds for everything else).
func (st *Store) evictOverBudgetLocked() {
	for st.bytes > st.maxBytes && len(st.order) > 1 {
		st.removeLocked(st.order[0])
		st.evicted++
	}
}

// removeLocked deletes key's file and index entry.
func (st *Store) removeLocked(key string) {
	if _, ok := st.sizes[key]; !ok {
		return
	}
	os.Remove(st.path(key))
	st.bytes -= st.sizes[key]
	delete(st.sizes, key)
	for i, k := range st.order {
		if k == key {
			st.order = append(st.order[:i], st.order[i+1:]...)
			break
		}
	}
}

// Len returns the number of resident entries.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.sizes)
}

// Bytes returns the resident byte total.
func (st *Store) Bytes() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.bytes
}

// Evictions returns how many entries the budget has evicted.
func (st *Store) Evictions() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.evicted
}

// CorruptDropped returns how many entries failed validation on read and
// were deleted.
func (st *Store) CorruptDropped() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.corrupt
}
