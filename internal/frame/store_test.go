package frame

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testFrame builds a distinct valid frame of roughly the given payload
// size, keyed by seed.
func testFrame(t *testing.T, seed, size int) (string, []byte) {
	t.Helper()
	var b Builder
	b.Begin(1)
	b.Uint32(uint32(seed))
	b.Begin(2)
	b.Bytes(bytes.Repeat([]byte{byte(seed)}, size))
	raw, err := b.Finish(TypeResponse)
	if err != nil {
		t.Fatal(err)
	}
	raw = append([]byte(nil), raw...)
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), raw
}

func TestStorePutGetRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	key, raw := testFrame(t, 1, 100)
	if _, ok := st.Get(key); ok {
		t.Fatal("empty store reported a hit")
	}
	if err := st.Put(key, raw); err != nil {
		t.Fatal(err)
	}
	got, ok := st.Get(key)
	if !ok || !bytes.Equal(got, raw) {
		t.Fatalf("Get after Put: ok=%v byte-exact=%v", ok, bytes.Equal(got, raw))
	}
	if st.Len() != 1 || st.Bytes() != int64(len(raw)) {
		t.Fatalf("Len=%d Bytes=%d, want 1/%d", st.Len(), st.Bytes(), len(raw))
	}
	// The on-disk layout is <dir>/<first2>/<key>.frame.
	if _, err := os.Stat(filepath.Join(dir, key[:2], key+".frame")); err != nil {
		t.Fatalf("expected content-addressed path: %v", err)
	}

	// A second store over the same directory — the restarted process —
	// serves the same bytes without any re-fill.
	st2, err := OpenStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	got2, ok := st2.Get(key)
	if !ok || !bytes.Equal(got2, raw) {
		t.Fatal("warm restart did not serve byte-identical frame")
	}
}

func TestStoreRejectsBadKeysAndFrames(t *testing.T) {
	st, err := OpenStore(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	key, raw := testFrame(t, 2, 10)
	for _, bad := range []string{
		"", "short", strings.ToUpper(key), key[:63] + "/",
		"../../../../etc/passwd", key[:62] + "zz",
	} {
		if err := st.Put(bad, raw); err == nil {
			t.Errorf("Put accepted malformed key %q", bad)
		}
		if _, ok := st.Get(bad); ok {
			t.Errorf("Get accepted malformed key %q", bad)
		}
	}
	if err := st.Put(key, []byte("not a frame")); err == nil {
		t.Error("Put accepted invalid frame bytes")
	}
	if st.Len() != 0 {
		t.Errorf("rejected writes left %d entries resident", st.Len())
	}
}

func TestStoreDropsCorruptOnRead(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	key, raw := testFrame(t, 3, 50)
	if err := st.Put(key, raw); err != nil {
		t.Fatal(err)
	}
	// Flip a payload bit behind the store's back: the CRC check must
	// catch it, the entry must be dropped, and the file deleted.
	path := filepath.Join(dir, key[:2], key+".frame")
	damaged := append([]byte(nil), raw...)
	damaged[len(damaged)-10] ^= 1
	if err := os.WriteFile(path, damaged, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(key); ok {
		t.Fatal("corrupted frame served")
	}
	if st.CorruptDropped() != 1 {
		t.Fatalf("CorruptDropped = %d, want 1", st.CorruptDropped())
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupted file not deleted")
	}
	if _, ok := st.Get(key); ok {
		t.Fatal("dropped key still resident")
	}
}

// TestStoreBoundedEviction: the byte budget holds, eviction is
// oldest-first, and the just-written entry survives its own Put.
func TestStoreBoundedEviction(t *testing.T) {
	dir := t.TempDir()
	_, probe := testFrame(t, 0, 256)
	budget := int64(3 * len(probe))
	st, err := OpenStore(dir, budget)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for i := 1; i <= 5; i++ {
		key, raw := testFrame(t, i, 256)
		keys = append(keys, key)
		if err := st.Put(key, raw); err != nil {
			t.Fatal(err)
		}
	}
	if st.Bytes() > budget {
		t.Fatalf("store over budget: %d > %d", st.Bytes(), budget)
	}
	if st.Evictions() != 2 {
		t.Fatalf("Evictions = %d, want 2", st.Evictions())
	}
	// Oldest two evicted, newest three resident.
	for i, key := range keys {
		_, ok := st.Get(key)
		if want := i >= 2; ok != want {
			t.Fatalf("key %d resident=%v, want %v", i, ok, want)
		}
	}

	// Reopen with a tighter budget: the rescan re-applies the bound
	// deterministically (sorted key order).
	st2, err := OpenStore(dir, int64(len(probe)))
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != 1 {
		t.Fatalf("tight reopen kept %d entries, want 1", st2.Len())
	}
	resident := make([]string, 0, 3)
	for _, key := range keys[2:] {
		resident = append(resident, key)
	}
	// Sorted order: the lexicographically last key survives.
	max := resident[0]
	for _, k := range resident[1:] {
		if k > max {
			max = k
		}
	}
	if _, ok := st2.Get(max); !ok {
		t.Fatal("deterministic rescan eviction kept an unexpected entry")
	}
}

// TestStoreOversizedEntrySpared: a single frame larger than the whole
// budget still persists (and everything else is evicted around it).
func TestStoreOversizedEntrySpared(t *testing.T) {
	st, err := OpenStore(t.TempDir(), 64)
	if err != nil {
		t.Fatal(err)
	}
	key, raw := testFrame(t, 9, 1024)
	if err := st.Put(key, raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(key); !ok {
		t.Fatal("oversized entry evicted by its own Put")
	}
}

// TestStoreIgnoresForeignFiles: stray files in the tree are neither
// indexed nor deleted.
func TestStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	stray := filepath.Join(dir, "README.txt")
	if err := os.WriteFile(stray, []byte("not a frame"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 0 {
		t.Fatalf("foreign file indexed: Len=%d", st.Len())
	}
	if _, err := os.Stat(stray); err != nil {
		t.Fatal("foreign file touched")
	}
}

func TestValidKey(t *testing.T) {
	sum := sha256.Sum256([]byte("x"))
	good := hex.EncodeToString(sum[:])
	if !ValidKey(good) {
		t.Fatal("valid key rejected")
	}
	for _, bad := range []string{"", good[:63], good + "0", strings.ToUpper(good),
		strings.Replace(good, good[:1], "/", 1), fmt.Sprintf("%064s", "g")} {
		if ValidKey(bad) {
			t.Errorf("ValidKey accepted %q", bad)
		}
	}
}
