// Package frame implements the repo's canonical, offset-indexed,
// random-access binary frame format — the PAOSP-style wire and state
// encoding behind the serving stack's result cache, the disk cache tier,
// and the history/checkpoint files.
//
// A frame is a single contiguous byte string:
//
//	[0:4)        magic "AGCF"
//	[4:6)        u16 version (currently 1)
//	[6:8)        u16 frame type tag (what the payload means; see Type)
//	[8:12)       u32 section count n
//	[12:16)      u32 total frame length, CRC included
//	[16:16+12n)  section table: n entries of {u32 tag, u32 offset, u32 length}
//	...          section payloads, contiguous, in table order
//	[len-4:len)  u32 CRC-32C (Castagnoli) of every preceding byte
//
// All fixed-width scalars are little-endian.  Offsets are absolute from the
// start of the frame, so a reader can slice any one section out of a []byte
// without touching the others — decoding a single field never unpacks the
// whole frame, and replaying a cached frame is one Write of stored bytes.
//
// The layout is canonical: section tags must be strictly increasing, the
// payloads must be gapless and in table order, and every scalar has exactly
// one encoding.  Encoding the same value twice therefore yields identical
// bytes, which is what lets content-addressed caches compare and replay
// frames without ever decoding them.  Parse enforces every canonicality
// rule, so a parsed frame is also proof the bytes are in normal form.
package frame

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Magic is the 4-byte frame signature.
var magic = [4]byte{'A', 'G', 'C', 'F'}

// Version is the current frame-format version.  Readers reject frames with
// a newer version instead of guessing; adding sections with fresh tags is
// backward compatible and does not bump it.
const Version = 1

// Type tags what a frame's payload means.  Allocated centrally here so two
// subsystems can never collide.
type Type uint16

const (
	// TypeResponse is an agcmd run-response frame (internal/server).
	TypeResponse Type = 1
	// TypeHistory is a history/checkpoint state frame (internal/history).
	TypeHistory Type = 2
)

// Format limits.  The caps bound allocation before any header field is
// trusted; both are far above anything the repo produces.
const (
	// MaxSections caps the section count a frame may declare.
	MaxSections = 1 << 16
	// MaxFrameBytes caps the total length a frame may declare.
	MaxFrameBytes = 1 << 31
)

const (
	headerSize  = 16
	entrySize   = 12
	trailerSize = 4
)

// Decode errors.  Every malformed input maps onto one of these sentinels
// (wrapped with detail), never a panic.
var (
	// ErrTruncated: the buffer ends before the structure it declares.
	ErrTruncated = errors.New("frame: truncated")
	// ErrMagic: the buffer does not begin with the frame signature.
	ErrMagic = errors.New("frame: bad magic")
	// ErrVersion: the frame declares an unsupported format version.
	ErrVersion = errors.New("frame: unsupported version")
	// ErrLayout: the header or section table violates a canonicality rule
	// (tag order, offset contiguity, length accounting).
	ErrLayout = errors.New("frame: non-canonical layout")
	// ErrCRC: the trailer checksum does not match the bytes.
	ErrCRC = errors.New("frame: CRC mismatch")
)

// castagnoli is the CRC-32C table; Castagnoli is hardware-accelerated on
// every platform the daemon runs on, so checking a frame costs a memory
// scan, not allocations.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// IsFrame reports whether buf begins with the frame signature — the sniff
// version-gated readers use to tell frames from legacy formats before
// committing to either decode path.
func IsFrame(buf []byte) bool {
	return len(buf) >= 4 && [4]byte(buf[0:4]) == magic
}

// Builder assembles a frame.  Sections are opened with Begin (tags must be
// strictly increasing) and filled with the typed appenders; Finish seals
// the frame.  A Builder can be Reset and reused, so steady-state encoding
// amortizes to zero allocations.
type Builder struct {
	payload []byte // concatenated section payloads
	tags    []uint32
	ends    []int // payload end offset of each closed-or-open section
	out     []byte
	err     error
}

// Reset clears the builder for a fresh frame, keeping its buffers.
func (b *Builder) Reset() {
	b.payload = b.payload[:0]
	b.tags = b.tags[:0]
	b.ends = b.ends[:0]
	b.out = b.out[:0]
	b.err = nil
}

// Begin opens a new section.  Tags must be strictly increasing within a
// frame — that is what makes the byte layout canonical — so a violation is
// a programming error reported by Finish.
func (b *Builder) Begin(tag uint32) {
	if b.err != nil {
		return
	}
	if n := len(b.tags); n > 0 && tag <= b.tags[n-1] {
		b.err = fmt.Errorf("frame: section tag %d not above predecessor %d", tag, b.tags[n-1])
		return
	}
	if len(b.tags) > 0 {
		b.ends[len(b.ends)-1] = len(b.payload)
	}
	b.tags = append(b.tags, tag)
	b.ends = append(b.ends, len(b.payload))
}

func (b *Builder) open() bool {
	if b.err != nil {
		return false
	}
	if len(b.tags) == 0 {
		b.err = errors.New("frame: append before Begin")
		return false
	}
	return true
}

// Uint32 appends a little-endian u32 to the open section.
func (b *Builder) Uint32(v uint32) {
	if b.open() {
		b.payload = binary.LittleEndian.AppendUint32(b.payload, v)
	}
}

// Uint64 appends a little-endian u64 to the open section.
func (b *Builder) Uint64(v uint64) {
	if b.open() {
		b.payload = binary.LittleEndian.AppendUint64(b.payload, v)
	}
}

// Float64 appends a float64 as its IEEE-754 bit pattern.  The bit pattern
// is the value's one canonical encoding — no text formatting is involved,
// so round-tripping is exact by construction.
func (b *Builder) Float64(v float64) {
	b.Uint64(math.Float64bits(v))
}

// Bytes appends raw bytes to the open section.
func (b *Builder) Bytes(p []byte) {
	if b.open() {
		b.payload = append(b.payload, p...)
	}
}

// LenBytes appends a u32 length prefix followed by the bytes.
func (b *Builder) LenBytes(p []byte) {
	if b.open() {
		if len(p) > math.MaxUint32 {
			b.err = fmt.Errorf("frame: byte string of %d exceeds u32 length", len(p))
			return
		}
		b.Uint32(uint32(len(p)))
		b.payload = append(b.payload, p...)
	}
}

// Float64s appends a u32 count prefix followed by each value's bit pattern.
func (b *Builder) Float64s(xs []float64) {
	if !b.open() {
		return
	}
	b.Uint32(uint32(len(xs)))
	for _, v := range xs {
		b.payload = binary.LittleEndian.AppendUint64(b.payload, math.Float64bits(v))
	}
}

// AddSection appends a whole section in one call.
func (b *Builder) AddSection(tag uint32, p []byte) {
	b.Begin(tag)
	b.Bytes(p)
}

// Finish seals the frame and returns its bytes: header, section table,
// payloads, CRC.  The returned slice aliases the builder's internal buffer
// and is invalidated by the next Reset — callers that retain it (caches)
// must copy, callers that write it out immediately need not.
func (b *Builder) Finish(t Type) ([]byte, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.tags) == 0 {
		return nil, errors.New("frame: no sections")
	}
	b.ends[len(b.ends)-1] = len(b.payload)
	n := len(b.tags)
	total := headerSize + entrySize*n + len(b.payload) + trailerSize
	if total > MaxFrameBytes {
		return nil, fmt.Errorf("frame: %d bytes exceeds MaxFrameBytes", total)
	}
	if cap(b.out) < total {
		b.out = make([]byte, 0, total)
	}
	out := b.out[:0]
	out = append(out, magic[:]...)
	out = binary.LittleEndian.AppendUint16(out, Version)
	out = binary.LittleEndian.AppendUint16(out, uint16(t))
	out = binary.LittleEndian.AppendUint32(out, uint32(n))
	out = binary.LittleEndian.AppendUint32(out, uint32(total))
	start := 0
	base := headerSize + entrySize*n
	for i, tag := range b.tags {
		out = binary.LittleEndian.AppendUint32(out, tag)
		out = binary.LittleEndian.AppendUint32(out, uint32(base+start))
		out = binary.LittleEndian.AppendUint32(out, uint32(b.ends[i]-start))
		start = b.ends[i]
	}
	out = append(out, b.payload...)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(out, castagnoli))
	b.out = out
	return out, nil
}

// Frame is a parsed, validated view over a frame's bytes.  It holds no
// decoded state — every accessor slices the underlying buffer — so parsing
// and section access are allocation-free.
type Frame struct {
	buf []byte
	n   int
}

// Parse validates buf as a canonical frame and returns a zero-copy view.
// It checks the magic, version, every section-table invariant (strictly
// increasing tags, contiguous gapless payloads, exact length accounting)
// and the CRC, so corrupted or malicious bytes are rejected here, before
// any section is interpreted.
func Parse(buf []byte) (Frame, error) {
	if len(buf) < headerSize+trailerSize {
		return Frame{}, fmt.Errorf("%w: %d bytes, need at least %d", ErrTruncated, len(buf), headerSize+trailerSize)
	}
	if [4]byte(buf[0:4]) != magic {
		return Frame{}, fmt.Errorf("%w: % x", ErrMagic, buf[0:4])
	}
	if v := binary.LittleEndian.Uint16(buf[4:6]); v != Version {
		return Frame{}, fmt.Errorf("%w: %d", ErrVersion, v)
	}
	n := binary.LittleEndian.Uint32(buf[8:12])
	if n == 0 || n > MaxSections {
		return Frame{}, fmt.Errorf("%w: section count %d", ErrLayout, n)
	}
	total := binary.LittleEndian.Uint32(buf[12:16])
	if total > MaxFrameBytes || int(total) != len(buf) {
		return Frame{}, fmt.Errorf("%w: declared length %d, buffer %d", ErrTruncated, total, len(buf))
	}
	base := headerSize + entrySize*int(n)
	if base+trailerSize > len(buf) {
		return Frame{}, fmt.Errorf("%w: section table overruns frame", ErrTruncated)
	}
	want := binary.LittleEndian.Uint32(buf[len(buf)-trailerSize:])
	if got := crc32.Checksum(buf[:len(buf)-trailerSize], castagnoli); got != want {
		return Frame{}, fmt.Errorf("%w: computed %08x, stored %08x", ErrCRC, got, want)
	}
	// Canonical layout: payloads contiguous from the table's end to the
	// CRC, in strictly increasing tag order.
	next := uint32(base)
	var prevTag uint32
	for i := 0; i < int(n); i++ {
		e := buf[headerSize+entrySize*i:]
		tag := binary.LittleEndian.Uint32(e[0:4])
		off := binary.LittleEndian.Uint32(e[4:8])
		length := binary.LittleEndian.Uint32(e[8:12])
		if i > 0 && tag <= prevTag {
			return Frame{}, fmt.Errorf("%w: tag %d after %d", ErrLayout, tag, prevTag)
		}
		prevTag = tag
		if off != next {
			return Frame{}, fmt.Errorf("%w: section %d at offset %d, want %d", ErrLayout, tag, off, next)
		}
		if length > total-trailerSize || off > total-trailerSize-length {
			return Frame{}, fmt.Errorf("%w: section %d overruns frame", ErrLayout, tag)
		}
		next = off + length
	}
	if int(next) != len(buf)-trailerSize {
		return Frame{}, fmt.Errorf("%w: %d payload bytes unaccounted for", ErrLayout, len(buf)-trailerSize-int(next))
	}
	return Frame{buf: buf, n: int(n)}, nil
}

// Type returns the frame's type tag.
func (f Frame) Type() Type {
	return Type(binary.LittleEndian.Uint16(f.buf[6:8]))
}

// Sections returns the number of sections.
func (f Frame) Sections() int { return f.n }

// Bytes returns the frame's full underlying byte string (for replaying the
// frame itself, e.g. writing it to a socket or disk).
func (f Frame) Bytes() []byte { return f.buf }

// entry returns the i-th table entry's tag, offset, and length.
func (f Frame) entry(i int) (tag, off, length uint32) {
	e := f.buf[headerSize+entrySize*i:]
	return binary.LittleEndian.Uint32(e[0:4]),
		binary.LittleEndian.Uint32(e[4:8]),
		binary.LittleEndian.Uint32(e[8:12])
}

// TagAt returns the i-th section's tag, in table (= ascending) order.
func (f Frame) TagAt(i int) uint32 {
	tag, _, _ := f.entry(i)
	return tag
}

// Section returns the payload of the section with the given tag as a
// zero-copy subslice, or (nil, false).  Binary search over the sorted
// table: random access to one field of a large frame costs O(log n) reads
// and no allocation.
func (f Frame) Section(tag uint32) ([]byte, bool) {
	lo, hi := 0, f.n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		t, off, length := f.entry(mid)
		switch {
		case t == tag:
			return f.buf[off : off+length : off+length], true
		case t < tag:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return nil, false
}

// Cursor reads scalars sequentially out of a section payload.  It is a
// value type with a sticky error: read past the end and every subsequent
// read returns zero, with Err reporting the overrun — so decoders can read
// a whole section and check the error once.
type Cursor struct {
	b      []byte
	off    int
	failed bool
}

// NewCursor returns a cursor over a section payload.
func NewCursor(b []byte) Cursor { return Cursor{b: b} }

func (c *Cursor) take(n int) []byte {
	if c.failed || n < 0 || len(c.b)-c.off < n {
		c.failed = true
		return nil
	}
	p := c.b[c.off : c.off+n : c.off+n]
	c.off += n
	return p
}

// Uint32 reads a little-endian u32.
func (c *Cursor) Uint32() uint32 {
	p := c.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

// Uint64 reads a little-endian u64.
func (c *Cursor) Uint64() uint64 {
	p := c.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// Float64 reads an IEEE-754 bit pattern.
func (c *Cursor) Float64() float64 {
	return math.Float64frombits(c.Uint64())
}

// Bytes reads n raw bytes as a zero-copy subslice.
func (c *Cursor) Bytes(n int) []byte { return c.take(n) }

// LenBytes reads a u32 length prefix and that many bytes, zero-copy.
func (c *Cursor) LenBytes() []byte {
	n := c.Uint32()
	return c.take(int(n))
}

// Float64s reads a u32 count prefix and that many values, appending to dst
// (pass a reused buffer for allocation-free decoding).
func (c *Cursor) Float64s(dst []float64) []float64 {
	n := int(c.Uint32())
	p := c.take(8 * n)
	if p == nil {
		return dst
	}
	for i := 0; i < n; i++ {
		dst = append(dst, math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:])))
	}
	return dst
}

// Remaining returns how many unread bytes the cursor has.
func (c *Cursor) Remaining() int {
	if c.failed {
		return 0
	}
	return len(c.b) - c.off
}

// Err reports whether any read overran the section.
func (c *Cursor) Err() error {
	if c.failed {
		return fmt.Errorf("%w: section read past %d bytes", ErrTruncated, len(c.b))
	}
	return nil
}
