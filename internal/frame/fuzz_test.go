package frame

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzParse exercises the frame parser on arbitrary byte strings: it must
// return an error or a frame whose every declared invariant actually holds
// — never panic, never slice out of bounds.  Seeds cover the attack
// surfaces the format is defended against: truncated headers, overlapping
// and out-of-bounds section offsets, and wrong CRCs.
func FuzzParse(f *testing.F) {
	var b Builder
	b.Begin(1)
	b.Uint32(42)
	b.Begin(2)
	b.LenBytes([]byte("payload"))
	good, err := b.Finish(TypeResponse)
	if err != nil {
		f.Fatal(err)
	}
	good = append([]byte(nil), good...)

	f.Add(good)
	f.Add([]byte{})
	f.Add(good[:4])               // bare magic
	f.Add(good[:headerSize])      // header, no table
	f.Add(good[:len(good)/2])     // truncated mid-table/payload
	f.Add(good[:len(good)-1])     // truncated CRC
	f.Add(bytes.Repeat(good, 2))  // trailing garbage
	f.Add([]byte("AGCFAGCFAGCF")) // magic soup

	// Section offset pointing past the end.
	oob := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(oob[headerSize+4:], 1<<30)
	refreshCRC(oob)
	f.Add(oob)

	// Overlapping sections: second offset rewound onto the first.
	overlap := append([]byte(nil), good...)
	first := binary.LittleEndian.Uint32(overlap[headerSize+4:])
	binary.LittleEndian.PutUint32(overlap[headerSize+entrySize+4:], first)
	refreshCRC(overlap)
	f.Add(overlap)

	// Huge declared section count.
	big := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(big[8:12], 1<<31-1)
	refreshCRC(big)
	f.Add(big)

	// Valid layout, wrong CRC.
	badcrc := append([]byte(nil), good...)
	badcrc[len(badcrc)-1] ^= 0xA5
	f.Add(badcrc)

	f.Fuzz(func(t *testing.T, in []byte) {
		fr, err := Parse(in)
		if err != nil {
			return
		}
		// A successful parse must be internally consistent: every section
		// reachable, in strictly ascending tag order, within bounds.
		var prev uint32
		for i := 0; i < fr.Sections(); i++ {
			tag := fr.TagAt(i)
			if i > 0 && tag <= prev {
				t.Fatalf("accepted frame with unsorted tags: %d after %d", tag, prev)
			}
			prev = tag
			sec, ok := fr.Section(tag)
			if !ok {
				t.Fatalf("table tag %d not retrievable", tag)
			}
			_ = sec
		}
		// Round-trip: rebuilding from the parsed view must reproduce the
		// accepted bytes exactly (canonical form is unique).
		var rb Builder
		for i := 0; i < fr.Sections(); i++ {
			tag := fr.TagAt(i)
			sec, _ := fr.Section(tag)
			rb.AddSection(tag, sec)
		}
		re, err := rb.Finish(fr.Type())
		if err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		if !bytes.Equal(re, in) {
			t.Fatalf("accepted frame is not in canonical form:\n in %x\nout %x", in, re)
		}
	})
}
