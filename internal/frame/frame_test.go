package frame

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"hash/crc32"
	"math"
	"testing"
)

// buildSample builds a small three-section frame with every appender
// exercised.
func buildSample(b *Builder) []byte {
	b.Reset()
	b.Begin(1)
	b.Uint32(7)
	b.Uint64(1 << 40)
	b.Float64(math.Pi)
	b.Begin(5)
	b.LenBytes([]byte("hello"))
	b.Float64s([]float64{1.5, -2.25, 0, math.Inf(1)})
	b.Begin(0x100)
	b.Bytes([]byte{0xde, 0xad, 0xbe, 0xef})
	out, err := b.Finish(TypeResponse)
	if err != nil {
		panic(err)
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	var b Builder
	raw := buildSample(&b)
	f, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type() != TypeResponse {
		t.Fatalf("type = %d, want %d", f.Type(), TypeResponse)
	}
	if f.Sections() != 3 {
		t.Fatalf("sections = %d, want 3", f.Sections())
	}
	for i, want := range []uint32{1, 5, 0x100} {
		if got := f.TagAt(i); got != want {
			t.Fatalf("TagAt(%d) = %d, want %d", i, got, want)
		}
	}

	s1, ok := f.Section(1)
	if !ok {
		t.Fatal("section 1 missing")
	}
	c := NewCursor(s1)
	if v := c.Uint32(); v != 7 {
		t.Fatalf("u32 = %d", v)
	}
	if v := c.Uint64(); v != 1<<40 {
		t.Fatalf("u64 = %d", v)
	}
	if v := c.Float64(); v != math.Pi {
		t.Fatalf("f64 = %v", v)
	}
	if c.Remaining() != 0 || c.Err() != nil {
		t.Fatalf("cursor state: remaining=%d err=%v", c.Remaining(), c.Err())
	}

	s5, _ := f.Section(5)
	c = NewCursor(s5)
	if got := c.LenBytes(); string(got) != "hello" {
		t.Fatalf("LenBytes = %q", got)
	}
	xs := c.Float64s(nil)
	want := []float64{1.5, -2.25, 0, math.Inf(1)}
	if len(xs) != len(want) {
		t.Fatalf("Float64s = %v", xs)
	}
	for i := range xs {
		if xs[i] != want[i] {
			t.Fatalf("Float64s[%d] = %v, want %v", i, xs[i], want[i])
		}
	}

	s256, _ := f.Section(0x100)
	if !bytes.Equal(s256, []byte{0xde, 0xad, 0xbe, 0xef}) {
		t.Fatalf("section 0x100 = % x", s256)
	}

	if _, ok := f.Section(2); ok {
		t.Fatal("absent tag 2 reported present")
	}
}

// TestCanonicalReproducible: encoding the same value twice — from two
// separate builders and from a reused one — yields identical bytes, and
// re-encoding a decoded frame reproduces the original (the
// encode(decode(encode(v))) == encode(v) property the content-addressed
// cache depends on).
func TestCanonicalReproducible(t *testing.T) {
	var b1, b2 Builder
	raw1 := buildSample(&b1)
	raw2 := buildSample(&b2)
	if !bytes.Equal(raw1, raw2) {
		t.Fatal("two builders produced different bytes for the same value")
	}
	copy1 := append([]byte(nil), raw1...)
	again := buildSample(&b1) // reused builder
	if !bytes.Equal(copy1, again) {
		t.Fatal("reused builder produced different bytes")
	}

	// decode → re-encode from the decoded view.
	f, err := Parse(copy1)
	if err != nil {
		t.Fatal(err)
	}
	var rb Builder
	rb.Reset()
	for i := 0; i < f.Sections(); i++ {
		tag := f.TagAt(i)
		sec, _ := f.Section(tag)
		rb.AddSection(tag, sec)
	}
	re, err := rb.Finish(f.Type())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, copy1) {
		t.Fatal("encode(decode(encode(v))) != encode(v)")
	}
}

// TestGoldenBytes pins the byte layout of a tiny frame exactly, and the
// sample frame's hash, so any accidental format change fails loudly.  A
// deliberate format change must bump Version and update these constants.
func TestGoldenBytes(t *testing.T) {
	var b Builder
	b.Begin(3)
	b.Uint32(0x01020304)
	raw, err := b.Finish(TypeHistory)
	if err != nil {
		t.Fatal(err)
	}
	const wantHex = "41474346" + // "AGCF"
		"0100" + // version 1
		"0200" + // type 2 (history)
		"01000000" + // 1 section
		"24000000" + // total length 36
		"030000001c00000004000000" + // table: tag 3, offset 28, length 4
		"04030201" + // payload
		"4a0379dd" // CRC-32C
	if got := hex.EncodeToString(raw); got != wantHex {
		t.Fatalf("golden frame layout changed:\n got %s\nwant %s", got, wantHex)
	}

	sum := sha256.Sum256(buildSample(&b))
	const wantSum = "4e1e488c452cd20e84b64131d2e4ba916ab7e86420216323892563e486f3c928"
	if got := hex.EncodeToString(sum[:]); got != wantSum {
		t.Fatalf("golden sample-frame hash changed:\n got %s\nwant %s", got, wantSum)
	}
}

func corrupt(raw []byte, mutate func([]byte)) []byte {
	c := append([]byte(nil), raw...)
	mutate(c)
	return c
}

func refreshCRC(c []byte) {
	binary.LittleEndian.PutUint32(c[len(c)-4:],
		crc32.Checksum(c[:len(c)-4], castagnoli))
}

func TestParseRejections(t *testing.T) {
	var b Builder
	raw := buildSample(&b)
	raw = append([]byte(nil), raw...)

	cases := []struct {
		name string
		buf  []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short header", raw[:10], ErrTruncated},
		{"truncated body", raw[:len(raw)-8], ErrTruncated},
		{"bad magic", corrupt(raw, func(c []byte) { c[0] = 'X' }), ErrMagic},
		{"future version", corrupt(raw, func(c []byte) {
			binary.LittleEndian.PutUint16(c[4:6], 99)
			refreshCRC(c)
		}), ErrVersion},
		{"zero sections", corrupt(raw, func(c []byte) {
			binary.LittleEndian.PutUint32(c[8:12], 0)
			refreshCRC(c)
		}), ErrLayout},
		{"flipped payload bit", corrupt(raw, func(c []byte) { c[len(c)-10] ^= 1 }), ErrCRC},
		{"wrong CRC", corrupt(raw, func(c []byte) { c[len(c)-1] ^= 0xFF }), ErrCRC},
		{"gapped offset", corrupt(raw, func(c []byte) {
			// shift section 2's offset forward: no longer contiguous
			off := binary.LittleEndian.Uint32(c[16+12+4:])
			binary.LittleEndian.PutUint32(c[16+12+4:], off+1)
			refreshCRC(c)
		}), ErrLayout},
		{"out-of-bounds length", corrupt(raw, func(c []byte) {
			binary.LittleEndian.PutUint32(c[16+8:], 1<<30)
			refreshCRC(c)
		}), ErrLayout},
		{"tag order violation", corrupt(raw, func(c []byte) {
			binary.LittleEndian.PutUint32(c[16+12:], 0) // second tag below first
			refreshCRC(c)
		}), ErrLayout},
	}
	for _, tc := range cases {
		if _, err := Parse(tc.buf); err == nil {
			t.Errorf("%s: Parse accepted corrupt frame", tc.name)
		} else if tc.want != nil && !errors.Is(err, tc.want) {
			t.Errorf("%s: error %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestBuilderTagOrder: the builder refuses non-increasing tags.
func TestBuilderTagOrder(t *testing.T) {
	var b Builder
	b.Begin(5)
	b.Uint32(1)
	b.Begin(5)
	if _, err := b.Finish(TypeResponse); err == nil {
		t.Fatal("Finish accepted duplicate tag")
	}
	b.Reset()
	b.Uint32(1) // append before Begin
	if _, err := b.Finish(TypeResponse); err == nil {
		t.Fatal("Finish accepted append before Begin")
	}
	b.Reset()
	if _, err := b.Finish(TypeResponse); err == nil {
		t.Fatal("Finish accepted empty frame")
	}
}

// TestCursorOverrun: reads past a section's end stick at zero and report an
// error, never panic.
func TestCursorOverrun(t *testing.T) {
	c := NewCursor([]byte{1, 2})
	if v := c.Uint64(); v != 0 {
		t.Fatalf("overrun u64 = %d", v)
	}
	if c.Err() == nil {
		t.Fatal("overrun not reported")
	}
	if v := c.Uint32(); v != 0 {
		t.Fatal("sticky failure did not hold")
	}
	c2 := NewCursor([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // LenBytes length 2^32-1
	if p := c2.LenBytes(); p != nil {
		t.Fatalf("oversized LenBytes = %d bytes", len(p))
	}
	if c2.Err() == nil {
		t.Fatal("oversized LenBytes not reported")
	}
}

// TestParseAllocs: validating and slicing a frame is allocation-free —
// the property that makes cache hits and disk replays GC-neutral.
func TestParseAllocs(t *testing.T) {
	var b Builder
	raw := append([]byte(nil), buildSample(&b)...)
	var sink []byte
	allocs := testing.AllocsPerRun(200, func() {
		f, err := Parse(raw)
		if err != nil {
			t.Fatal(err)
		}
		sec, ok := f.Section(5)
		if !ok {
			t.Fatal("section missing")
		}
		sink = sec
	})
	if allocs != 0 {
		t.Fatalf("Parse+Section allocates %v times per run, want 0", allocs)
	}
	_ = sink
}

// TestBuilderSteadyStateAllocs: a reused builder encodes without
// allocating once its buffers have grown.
func TestBuilderSteadyStateAllocs(t *testing.T) {
	var b Builder
	buildSample(&b) // warm the buffers
	allocs := testing.AllocsPerRun(200, func() {
		buildSample(&b)
	})
	if allocs != 0 {
		t.Fatalf("warm Builder allocates %v times per run, want 0", allocs)
	}
}

func BenchmarkParseAndSection(b *testing.B) {
	var bl Builder
	raw := append([]byte(nil), buildSample(&bl)...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f, err := Parse(raw)
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := f.Section(5); !ok {
			b.Fatal("missing")
		}
	}
}
