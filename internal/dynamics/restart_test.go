package dynamics

import (
	"bytes"
	"fmt"
	"math"
	"sync/atomic"
	"testing"

	"agcm/internal/comm"
	"agcm/internal/filter"
	"agcm/internal/grid"
	"agcm/internal/history"
	"agcm/internal/machine"
	"agcm/internal/sim"
)

func TestRestartEquivalence(t *testing.T) {
	// Run 12 steps continuously, versus run 7, save, load into a fresh
	// model, run 5 more: the final fields must be identical.
	spec := testSpec
	dt := 0.5 * CFLTimeStep(spec, filter.Strong.CritLat())
	const py, px = 2, 2
	d, _ := grid.NewDecomp(spec, py, px)

	runSteps := func(s *State, dy *Dynamics, n int) {
		for i := 0; i < n; i++ {
			dy.Step(s)
		}
	}

	var continuous, resumed [][]float64
	var checkpoint *history.File

	// Continuous 12-step run.
	m := sim.New(py*px, machine.CrayT3D())
	_, err := m.Run(func(p *sim.Proc) error {
		world := comm.World(p)
		cart := comm.NewCart2D(world, py, px)
		l := grid.NewLocal(d, cart.MyRow, cart.MyCol)
		s := NewState(l)
		InitSolidBody(s, 20, 4)
		dy := New(cart, spec, l, dt, filter.NewFFT(cart, spec, l, true))
		runSteps(s, dy, 12)
		if g := grid.Gather(world, cart, s.H); world.Rank() == 0 {
			continuous = append(continuous, g)
		}
		if g := grid.Gather(world, cart, s.U); world.Rank() == 0 {
			continuous = append(continuous, g)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// 7 steps, checkpoint through a serialized byte stream.
	m = sim.New(py*px, machine.CrayT3D())
	_, err = m.Run(func(p *sim.Proc) error {
		world := comm.World(p)
		cart := comm.NewCart2D(world, py, px)
		l := grid.NewLocal(d, cart.MyRow, cart.MyCol)
		s := NewState(l)
		InitSolidBody(s, 20, 4)
		dy := New(cart, spec, l, dt, filter.NewFFT(cart, spec, l, true))
		runSteps(s, dy, 7)
		file := SaveState(world, cart, s)
		if world.Rank() == 0 {
			var buf bytes.Buffer
			if err := history.Write(&buf, file, history.LittleEndian); err != nil {
				return err
			}
			restored, err := history.Read(&buf)
			if err != nil {
				return err
			}
			checkpoint = restored
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if checkpoint == nil || checkpoint.Step != 7 {
		t.Fatalf("checkpoint missing or wrong step: %+v", checkpoint)
	}

	// Fresh model, load, 5 more steps.
	m = sim.New(py*px, machine.CrayT3D())
	_, err = m.Run(func(p *sim.Proc) error {
		world := comm.World(p)
		cart := comm.NewCart2D(world, py, px)
		l := grid.NewLocal(d, cart.MyRow, cart.MyCol)
		s := NewState(l)
		var file *history.File
		if world.Rank() == 0 {
			file = checkpoint
		}
		dy := New(cart, spec, l, dt, filter.NewFFT(cart, spec, l, true))
		if err := LoadState(world, cart, file, s); err != nil {
			return err
		}
		if s.Steps != 7 {
			return fmt.Errorf("restored step counter %d", s.Steps)
		}
		runSteps(s, dy, 5)
		if g := grid.Gather(world, cart, s.H); world.Rank() == 0 {
			resumed = append(resumed, g)
		}
		if g := grid.Gather(world, cart, s.U); world.Rank() == 0 {
			resumed = append(resumed, g)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	for fi := range continuous {
		for idx := range continuous[fi] {
			if continuous[fi][idx] != resumed[fi][idx] {
				t.Fatalf("restart diverged: field %d index %d: %g vs %g",
					fi, idx, continuous[fi][idx], resumed[fi][idx])
			}
		}
	}
}

func TestLoadStateRejectsWrongGrid(t *testing.T) {
	spec := testSpec
	other := grid.Spec{Nlon: 12, Nlat: 8, Nlayers: 2}
	dOther, _ := grid.NewDecomp(other, 1, 1)
	var bad *history.File
	m := sim.New(1, machine.CrayT3D())
	_, err := m.Run(func(p *sim.Proc) error {
		world := comm.World(p)
		cart := comm.NewCart2D(world, 1, 1)
		s := NewState(grid.NewLocal(dOther, 0, 0))
		bad = SaveState(world, cart, s)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	d, _ := grid.NewDecomp(spec, 2, 2)
	m = sim.New(4, machine.CrayT3D())
	_, err = m.Run(func(p *sim.Proc) error {
		world := comm.World(p)
		cart := comm.NewCart2D(world, 2, 2)
		s := NewState(grid.NewLocal(d, cart.MyRow, cart.MyCol))
		var file *history.File
		if world.Rank() == 0 {
			file = bad
		}
		if err := LoadState(world, cart, file, s); err == nil {
			return fmt.Errorf("wrong-grid restart accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVerticalDiffusionMixesAndConserves(t *testing.T) {
	spec := grid.Spec{Nlon: 8, Nlat: 6, Nlayers: 5}
	d, _ := grid.NewDecomp(spec, 1, 1)
	m := sim.New(1, machine.CrayT3D())
	_, err := m.Run(func(p *sim.Proc) error {
		world := comm.World(p)
		cart := comm.NewCart2D(world, 1, 1)
		l := grid.NewLocal(d, 0, 0)
		s := NewState(l)
		// A sharply sheared column.
		for k := 0; k < 5; k++ {
			s.U.Set(2, 3, k, float64(k*k))
		}
		dy := New(cart, spec, l, 100, nil)
		dy.SetVerticalDiffusion(0.5)
		before := append([]float64(nil), s.U.Column(2, 3)...)
		var sum0 float64
		for _, v := range before {
			sum0 += v
		}
		dy.verticalDiffusion(s)
		after := s.U.Column(2, 3)
		var sum1, var0, var1 float64
		for k := range after {
			sum1 += after[k]
		}
		mean := sum0 / 5
		for k := range after {
			var0 += (before[k] - mean) * (before[k] - mean)
			var1 += (after[k] - sum1/5) * (after[k] - sum1/5)
		}
		// No-flux boundaries conserve the column integral.
		if math.Abs(sum1-sum0) > 1e-9 {
			return fmt.Errorf("column momentum not conserved: %g -> %g", sum0, sum1)
		}
		// Diffusion reduces vertical variance.
		if var1 >= var0 {
			return fmt.Errorf("diffusion did not smooth: variance %g -> %g", var0, var1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSetVerticalDiffusionValidation(t *testing.T) {
	d, _ := grid.NewDecomp(testSpec, 1, 1)
	m := sim.New(1, machine.CrayT3D())
	_, err := m.Run(func(p *sim.Proc) error {
		cart := comm.NewCart2D(comm.World(p), 1, 1)
		dy := New(cart, testSpec, grid.NewLocal(d, 0, 0), 100, nil)
		dy.SetVerticalDiffusion(-1)
		return nil
	})
	if err == nil {
		t.Fatal("negative diffusion accepted")
	}
}

// TestLoadStateRejectsTruncatedFile: a restart file with a right-sized but
// wrong-named variable set (as left by a torn write) must be rejected on
// every rank by the up-front validation — not discovered mid-scatter on
// rank 0 alone, which would leave the other ranks deadlocked in the
// collective.
func TestLoadStateRejectsTruncatedFile(t *testing.T) {
	spec := testSpec
	const py, px = 2, 2
	d, _ := grid.NewDecomp(spec, py, px)

	var good *history.File
	m := sim.New(py*px, machine.CrayT3D())
	_, err := m.Run(func(p *sim.Proc) error {
		world := comm.World(p)
		cart := comm.NewCart2D(world, py, px)
		s := NewState(grid.NewLocal(d, cart.MyRow, cart.MyCol))
		InitSolidBody(s, 20, 4)
		if f := SaveState(world, cart, s); world.Rank() == 0 {
			good = f
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(mutate func(f *history.File)) *history.File {
		f := &history.File{Spec: good.Spec, Step: good.Step,
			Names: append([]string(nil), good.Names...),
			Data:  append([][]float64(nil), good.Data...)}
		mutate(f)
		return f
	}
	cases := []struct {
		name string
		file *history.File
	}{
		{"variable missing", corrupt(func(f *history.File) {
			f.Names = f.Names[:len(f.Names)-1]
			f.Data = f.Data[:len(f.Data)-1]
		})},
		{"variable renamed", corrupt(func(f *history.File) {
			f.Names[len(f.Names)-1] = "bogus"
		})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var rejections atomic.Int32
			m := sim.New(py*px, machine.CrayT3D())
			_, err := m.Run(func(p *sim.Proc) error {
				world := comm.World(p)
				cart := comm.NewCart2D(world, py, px)
				s := NewState(grid.NewLocal(d, cart.MyRow, cart.MyCol))
				var file *history.File
				if world.Rank() == 0 {
					file = tc.file
				}
				if err := LoadState(world, cart, file, s); err != nil {
					rejections.Add(1)
					return nil
				}
				return fmt.Errorf("rank %d: corrupt restart accepted", world.Rank())
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := rejections.Load(); got != py*px {
				t.Fatalf("%d ranks rejected the file, want all %d", got, py*px)
			}
		})
	}
}
