package dynamics

import (
	"agcm/internal/filter"
	"agcm/internal/grid"
)

// Step advances the state one time step: spectral filtering of the
// prognostic fields (as in the UCLA code, before the finite-difference
// procedures), ghost exchange, tendency evaluation, leapfrog update with a
// Robert-Asselin filter, and polar boundary enforcement.
//
// Virtual time is charged in two categories on the rank's clock accounts:
// the caller wraps Step in its own Timed sections; Step itself charges the
// calibrated finite-difference flop count and lets the comm layer charge
// message costs.
func (d *Dynamics) Step(s *State) {
	p := d.cart.World.Proc()

	// Spectral filtering of the fields that feed the finite differences.
	if d.filter != nil {
		if d.vars == nil {
			d.vars = []filter.Variable{
				{Name: "u", Kind: filter.Strong, Field: s.U},
				{Name: "v", Kind: filter.Strong, Field: s.V},
				{Name: "h", Kind: filter.Strong, Field: s.H},
			}
		}
		// Synchronize before the filter so that skew left over from the
		// previous step's physics is accounted as synchronization wait,
		// not as filtering cost.
		p.Timed("sync", func() { d.cart.World.Barrier() })
		p.Timed("filter", func() { d.filter.Apply(d.vars) })
	}

	p.Timed("dynamics-comm", func() {
		// T and Q ride along: the full model advects its tracers, so
		// their ghost points are part of the per-step exchange volume.
		d.ex.Exchange(s.U, s.V, s.H, s.T, s.Q)
		d.applyPolarBC(s)
	})

	p.Timed("dynamics-fd", func() { d.horizontalSmoothing(s) })

	p.Timed("dynamics-comm", func() {
		// The smoothing moved the interior; refresh the ghost points it
		// invalidated so the tendency stencils see one consistent state
		// on every decomposition.
		d.ex.Exchange(s.U, s.V, s.H)
		d.applyPolarBC(s)
	})

	p.Timed("dynamics-fd", func() {
		d.computeTendencies(s)
		d.advance(s)
		d.verticalDiffusion(s)
		// Charge the calibrated cost of the full primitive-equation
		// finite-difference suite.
		pts := float64(d.local.Points())
		p.ComputeMem(FlopsPerPoint*pts, bytesPerPoint*pts)
	})
	s.Steps++
}

// DiffusionKappa is the dimensionless strength of the weak horizontal
// del-2 smoothing applied each step to control the nonlinear aliasing
// instability of centred advection (the production model's Arakawa schemes
// conserve energy by construction; this compact core damps instead, as
// simpler GCM cores conventionally do).  The two-grid-interval wave loses
// about 4*kappa per step — far too little to substitute for the polar
// filter, whose required damping near the poles exceeds 95% per step.
const DiffusionKappa = 0.02

// horizontalSmoothing applies one forward-Euler step of scale-selective
// horizontal diffusion to the prognostic fields, using the just-exchanged
// halos.  The meridional term is in flux form with cos(lat) face weights,
// so the height field's mass integral is conserved exactly (pole faces
// carry zero weight).
func (d *Dynamics) horizontalSmoothing(s *State) {
	l := d.local
	nlat, nlon, nl := l.Nlat(), l.Nlon(), l.Nlayers()
	dlam := d.spec.DLon()
	dphi := d.spec.DLat()
	for fi, f := range []*grid.Field{s.U, s.V, s.H} {
		scratch := []*grid.Field{d.tend.du, d.tend.dv, d.tend.dh}[fi]
		isV := fi == 1
		for j := 0; j < nlat; j++ {
			cosC := d.cosC[j+1]
			cosN := d.cosN[j+1]
			cosS := d.cosN[j]
			if isV && d.local.GlobalLat(j) == d.spec.Nlat-1 {
				// The pole face: v stays exactly zero.
				for i := 0; i < nlon; i++ {
					for k := 0; k < nl; k++ {
						scratch.Set(j, i, k, 0)
					}
				}
				continue
			}
			// The meridional diffusivity lives on the faces —
			// (dx_face/dy)^2, shared by the two adjacent rows — so
			// the flux form telescopes and mass is conserved
			// exactly; it vanishes toward the poles with dx, while
			// the zonal two-grid damping is kappa everywhere.
			ratioN := (cosN * dlam / dphi) * (cosN * dlam / dphi)
			ratioS := (cosS * dlam / dphi) * (cosS * dlam / dphi)
			// Row-sliced stencil: fC/fN/fS are the halo-padded state rows
			// (column i at offset (i+1)*nl), sc the halo-free scratch row.
			fRow, fN_, fS_ := f.RowData(j), f.RowData(j+1), f.RowData(j-1)
			sc := scratch.RowData(j)
			for i := 0; i < nlon; i++ {
				c := (i + 1) * nl
				t := i * nl
				for k := 0; k < nl; k++ {
					q := fRow[c+k]
					zon := fRow[c+nl+k] - 2*q + fRow[c-nl+k]
					mer := (ratioN*cosN*(fN_[c+k]-q) -
						ratioS*cosS*(q-fS_[c+k])) / cosC
					sc[t+k] = DiffusionKappa * (zon + mer)
				}
			}
		}
		for j := 0; j < nlat; j++ {
			fRow := f.RowData(j)
			sc := scratch.RowData(j)
			for i := 0; i < nlon; i++ {
				c := (i + 1) * nl
				t := i * nl
				for k := 0; k < nl; k++ {
					fRow[c+k] += sc[t+k]
				}
			}
		}
	}
}

// applyPolarBC fills the pole-side halo rows: zero-gradient for u and h,
// and zero meridional velocity at (and beyond) the poles.
func (d *Dynamics) applyPolarBC(s *State) {
	l := d.local
	nl := l.Nlayers()
	if l.Lat0 == 0 { // my subdomain touches the south pole
		for i := -1; i <= l.Nlon(); i++ {
			for k := 0; k < nl; k++ {
				s.U.Set(-1, i, k, s.U.At(0, i, k))
				s.H.Set(-1, i, k, s.H.At(0, i, k))
				s.V.Set(-1, i, k, 0)
			}
		}
	}
	if l.Lat1 == d.spec.Nlat { // touches the north pole
		jn := l.Nlat()
		for i := -1; i <= l.Nlon(); i++ {
			for k := 0; k < nl; k++ {
				s.U.Set(jn, i, k, s.U.At(jn-1, i, k))
				s.H.Set(jn, i, k, s.H.At(jn-1, i, k))
				s.V.Set(jn, i, k, 0)
				// The northernmost interior v row is the pole face.
				s.V.Set(jn-1, i, k, 0)
			}
		}
	}
}

// computeTendencies evaluates the C-grid shallow-water tendencies du, dv,
// dh on the interior using 5-point stencils over the exchanged halos.
func (d *Dynamics) computeTendencies(s *State) {
	l := d.local
	spec := d.spec
	a := grid.EarthRadius
	g := grid.Gravity
	dlam := spec.DLon()
	dphi := spec.DLat()
	nlat, nlon, nl := l.Nlat(), l.Nlon(), l.Nlayers()

	for j := 0; j < nlat; j++ {
		cosC := d.cosC[j+1]
		cosN := d.cosN[j+1]
		cosS := d.cosN[j] // southern edge of row j = northern edge of row j-1
		fC := d.fC[j+1]
		fN := d.fN[j+1]
		rdx := 1 / (a * cosC * dlam) // 1/dx at centres
		rdy := 1 / (a * dphi)
		northPole := l.GlobalLat(j) == spec.Nlat-1
		rdxN := 1 / (a*cosN*dlam + 1e-30)
		// Row-sliced stencil access: column i of the halo-1 state rows
		// starts at (i+1)*nl; the halo-free tendency rows at i*nl.
		uC, uN, uS := s.U.RowData(j), s.U.RowData(j+1), s.U.RowData(j-1)
		vC, vN, vS := s.V.RowData(j), s.V.RowData(j+1), s.V.RowData(j-1)
		hC, hN, hS := s.H.RowData(j), s.H.RowData(j+1), s.H.RowData(j-1)
		duR, dvR, dhR := d.tend.du.RowData(j), d.tend.dv.RowData(j), d.tend.dh.RowData(j)
		for i := 0; i < nlon; i++ {
			c := (i + 1) * nl
			t := i * nl
			for k := 0; k < nl; k++ {
				e := c + nl + k // east neighbour (i+1)
				w := c - nl + k // west neighbour (i-1)
				u := uC[c+k]
				v := vC[c+k]
				h := hC[c+k]

				// --- u momentum at the east face of (j,i) ---
				vbar := 0.25 * (vC[c+k] + vC[e] + vS[c+k] + vS[e])
				dudx := (uC[e] - uC[w]) * 0.5 * rdx
				dudy := (uN[c+k] - uS[c+k]) * 0.5 * rdy
				dhdx := (hC[e] - h) * rdx
				duR[t+k] = fC*vbar - g*dhdx - u*dudx - vbar*dudy

				// --- v momentum at the north face of (j,i) ---
				if northPole {
					dvR[t+k] = 0 // pole face: v stays 0
				} else {
					ubar := 0.25 * (uC[c+k] + uC[w] + uN[c+k] + uN[w])
					dvdx := (vC[e] - vC[w]) * 0.5 * rdxN
					dvdy := (vN[c+k] - vS[c+k]) * 0.5 * rdy
					dhdy := (hN[c+k] - h) * rdy
					dvR[t+k] = -fN*ubar - g*dhdy - ubar*dvdx - v*dvdy
				}

				// --- continuity at the centre of (j,i), flux form ---
				// Zonal mass fluxes through the east and west faces.
				fe := 0.5 * (h + hC[e]) * u
				fw := 0.5 * (hC[w] + h) * uC[w]
				// Meridional fluxes through the north and south faces,
				// weighted by cos(lat) at the face.
				fn := 0.5 * (h + hN[c+k]) * cosN * v
				fs := 0.5 * (hS[c+k] + h) * cosS * vS[c+k]
				dhR[t+k] = -(fe-fw)*rdx - (fn-fs)*rdy/cosC
			}
		}
	}
}

// advance applies the leapfrog update with a Robert-Asselin filter, or
// forward Euler on the first step.
func (d *Dynamics) advance(s *State) {
	l := d.local
	nlat, nlon, nl := l.Nlat(), l.Nlon(), l.Nlayers()
	dt := d.dt
	first := s.Steps == 0

	update := func(cur, prev, tend *grid.Field) {
		for j := 0; j < nlat; j++ {
			cR, pR := cur.RowData(j), prev.RowData(j)
			tR := tend.RowData(j)
			for i := 0; i < nlon; i++ {
				co := (i + 1) * nl
				to := i * nl
				for k := 0; k < nl; k++ {
					c := cR[co+k]
					var next float64
					if first {
						next = c + dt*tR[to+k]
					} else {
						next = pR[co+k] + 2*dt*tR[to+k]
					}
					// Robert-Asselin filter on the centre level.
					filtered := c + RobertAlpha*(pR[co+k]-2*c+next)
					pR[co+k] = filtered
					cR[co+k] = next
				}
			}
		}
	}
	update(s.U, s.PrevU, d.tend.du)
	update(s.V, s.PrevV, d.tend.dv)
	update(s.H, s.PrevH, d.tend.dh)
}

// TotalMass returns this rank's contribution to the global mass integral
// sum(h * cos(lat)) over the interior — conserved by the flux-form
// continuity equation up to round-off.
func (d *Dynamics) TotalMass(s *State) float64 {
	l := d.local
	sum := 0.0
	for j := 0; j < l.Nlat(); j++ {
		w := d.cosC[j+1]
		for i := 0; i < l.Nlon(); i++ {
			for k := 0; k < l.Nlayers(); k++ {
				sum += s.H.At(j, i, k) * w
			}
		}
	}
	return sum
}
