package dynamics

import (
	"fmt"

	"agcm/internal/comm"
	"agcm/internal/grid"
	"agcm/internal/history"
)

// stateVariables lists the fields a restart must capture, in a fixed order:
// the prognostic fields, their leapfrog previous levels, and the tracers.
func (s *State) stateVariables() []struct {
	name string
	f    *grid.Field
} {
	return []struct {
		name string
		f    *grid.Field
	}{
		{"u", s.U}, {"v", s.V}, {"h", s.H}, {"T", s.T}, {"q", s.Q},
		{"u_prev", s.PrevU}, {"v_prev", s.PrevV}, {"h_prev", s.PrevH},
	}
}

// SaveState gathers the complete model state (including the leapfrog
// previous time level) into a history file on world rank 0; other ranks
// return nil.  Collective.
func SaveState(world *comm.Comm, cart *comm.Cart2D, s *State) *history.File {
	spec := s.U.Local().Decomp.Spec
	file := &history.File{Spec: spec, Step: s.Steps}
	for _, v := range s.stateVariables() {
		g := grid.Gather(world, cart, v.f)
		if world.Rank() == 0 {
			if err := file.AddVariable(v.name, g); err != nil {
				panic("dynamics: SaveState: " + err.Error())
			}
		}
	}
	if world.Rank() != 0 {
		return nil
	}
	return file
}

// LoadState scatters a restart file (present on world rank 0, nil
// elsewhere) into the state, restoring the step counter on every rank.
// Collective.  It returns an error if the file's grid does not match.
func LoadState(world *comm.Comm, cart *comm.Cart2D, file *history.File, s *State) error {
	spec := s.U.Local().Decomp.Spec
	// Rank 0 validates; the verdict is broadcast so every rank takes the
	// same path (otherwise a bad file would leave ranks deadlocked in
	// mismatched collectives).
	var step float64
	ok := 1.0
	var checkErr error
	if world.Rank() == 0 {
		switch {
		case file.Spec != spec:
			checkErr = fmt.Errorf("dynamics: restart grid %+v does not match model grid %+v",
				file.Spec, spec)
		case len(file.Names) != len(s.stateVariables()):
			checkErr = fmt.Errorf("dynamics: restart has %d variables, want %d",
				len(file.Names), len(s.stateVariables()))
		default:
			// Every variable must be present *before* any scatter begins:
			// a mid-loop failure on rank 0 alone would leave the other
			// ranks deadlocked inside grid.Scatter.
			for _, v := range s.stateVariables() {
				if _, err := file.Variable(v.name); err != nil {
					checkErr = fmt.Errorf("dynamics: restart file truncated or corrupt: %w", err)
					break
				}
			}
		}
		if checkErr != nil {
			ok = 0
		}
		step = float64(file.Step)
	}
	if world.Bcast(0, []float64{ok})[0] == 0 {
		if checkErr != nil {
			return checkErr
		}
		return fmt.Errorf("dynamics: restart rejected by rank 0")
	}
	for _, v := range s.stateVariables() {
		var global []float64
		if world.Rank() == 0 {
			g, err := file.Variable(v.name)
			if err != nil {
				return err
			}
			global = g
		}
		grid.Scatter(world, cart, global, v.f)
	}
	s.Steps = int(world.Bcast(0, []float64{step})[0])
	return nil
}
