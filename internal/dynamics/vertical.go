package dynamics

import (
	"agcm/internal/solver"
)

// SetVerticalDiffusion enables implicit vertical mixing of momentum with
// the dimensionless per-step diffusion number kv (= nu*dt/dz^2 in layer
// units).  Each column solves (I - kv*Dzz) u_new = u with no-flux
// boundaries via the Thomas algorithm — the "implicit time-differencing"
// use case for the Section 5 solver toolkit.  kv = 0 disables the solve.
func (d *Dynamics) SetVerticalDiffusion(kv float64) {
	if kv < 0 {
		panic("dynamics: negative vertical diffusion")
	}
	d.kv = kv
}

// verticalDiffusion applies one backward-Euler vertical mixing step to the
// momentum fields.
func (d *Dynamics) verticalDiffusion(s *State) {
	nl := d.local.Nlayers()
	if d.kv == 0 || nl < 2 {
		return
	}
	kv := d.kv
	a := make([]float64, nl)
	b := make([]float64, nl)
	c := make([]float64, nl)
	for k := 0; k < nl; k++ {
		a[k], c[k] = -kv, -kv
		b[k] = 1 + 2*kv
	}
	// No-flux boundaries: the missing neighbour term folds back into the
	// diagonal.
	b[0] = 1 + kv
	b[nl-1] = 1 + kv

	x := make([]float64, nl)
	for j := 0; j < d.local.Nlat(); j++ {
		for i := 0; i < d.local.Nlon(); i++ {
			for _, f := range []interface {
				Column(j, i int) []float64
			}{s.U, s.V} {
				col := f.Column(j, i)
				if err := solver.Tridiag(a, b, c, col, x); err != nil {
					panic("dynamics: vertical diffusion solve failed: " + err.Error())
				}
				copy(col, x)
			}
		}
	}
	// Two Thomas solves (8 flops/row) per column.
	d.cart.World.Proc().Compute(float64(d.local.Nlat()*d.local.Nlon()) * 2 * 8 * float64(nl))
}
