// Package dynamics implements the AGCM/Dynamics finite-difference component:
// a multi-layer rotating shallow-water dynamical core on the Arakawa C-grid
// in spherical geometry, integrated with a leapfrog scheme and a
// Robert-Asselin time filter.
//
// This core plays the role of the UCLA model's primitive-equation solver: it
// has the same computational structure (C-grid staggering, nearest-neighbour
// ghost exchanges, a uniform time step whose polar CFL violation the
// spectral filter must absorb) while remaining compact.  The per-point
// operation count of the full primitive-equation suite is represented by a
// calibrated flop charge on the virtual clock; the arithmetic actually
// executed is the shallow-water subset, which is what the correctness tests
// verify (decomposition invariance, mass conservation, filter-enabled
// stability).
package dynamics

import (
	"math"

	"agcm/internal/comm"
	"agcm/internal/filter"
	"agcm/internal/grid"
)

// FlopsPerPoint is the calibrated per-gridpoint-per-step operation count of
// the full Dynamics finite-difference suite (momentum, continuity,
// thermodynamics, vertical terms), chosen so that the simulated single-node
// run of the 2°x2.5°x9 model lands near the paper's Table 4/6 timings.
const FlopsPerPoint = 590

// bytesPerPoint is the memory traffic per grid point per step charged to
// the cost model (the fields touched by the finite-difference sweeps).
const bytesPerPoint = 10 * 8

// RobertAlpha is the Robert-Asselin time-filter coefficient.
const RobertAlpha = 0.06

// State holds one rank's prognostic fields: velocity components on the
// C-grid faces, the layer thickness (geopotential) at centres, and the
// physics tracers (temperature and moisture) at centres.
type State struct {
	U, V, H *grid.Field
	T, Q    *grid.Field
	// Leapfrog previous-step copies of the dynamical fields.
	PrevU, PrevV, PrevH *grid.Field
	// Steps counts completed time steps (step 0 uses forward Euler).
	Steps int
}

// NewState allocates a zeroed state on subdomain l with halo width 1.
func NewState(l grid.Local) *State {
	return &State{
		U: grid.NewField(l, 1), V: grid.NewField(l, 1), H: grid.NewField(l, 1),
		T: grid.NewField(l, 1), Q: grid.NewField(l, 1),
		PrevU: grid.NewField(l, 1), PrevV: grid.NewField(l, 1), PrevH: grid.NewField(l, 1),
	}
}

// MeanDepth is the resting layer thickness in metres — the equivalent
// depth of the gravest mode this core carries; the gravity-wave speed
// sqrt(g*MeanDepth) ~ 157 m/s controls the CFL limit.
const MeanDepth = 2500

// InitSolidBody initializes a geostrophically balanced solid-body zonal
// flow of peak speed u0 (m/s) with a small wavenumber-w perturbation, plus
// smooth temperature and moisture distributions.  The same formula is used
// on every decomposition, so differently decomposed runs start from the
// identical global state.
func InitSolidBody(s *State, u0 float64, w int) {
	l := s.U.Local()
	spec := l.Decomp.Spec
	a := grid.EarthRadius
	for j := 0; j < l.Nlat(); j++ {
		gj := l.GlobalLat(j)
		lat := spec.LatCenter(gj)
		for i := 0; i < l.Nlon(); i++ {
			gi := l.GlobalLon(i)
			lon := spec.LonCenter(gi)
			// Geostrophic thickness for u = u0*cos(lat):
			// g*dh/dphi = -(f*u + u^2*tan(lat)/a)*a  integrates to
			// h = H - (a*Omega*u0 + u0^2/2) * sin^2(lat)/g.
			hb := MeanDepth - (a*grid.Omega*u0+0.5*u0*u0)*
				math.Sin(lat)*math.Sin(lat)/grid.Gravity
			pert := 1 + 0.01*math.Cos(float64(w)*lon)*math.Cos(lat)*math.Cos(lat)
			for k := 0; k < l.Nlayers(); k++ {
				lf := 1 + 0.02*float64(k)
				s.U.Set(j, i, k, u0*math.Cos(lat)*lf)
				s.V.Set(j, i, k, 0)
				s.H.Set(j, i, k, hb*pert)
				s.T.Set(j, i, k, 288-60*math.Sin(lat)*math.Sin(lat)-6*float64(k))
				s.Q.Set(j, i, k, 0.015*math.Cos(lat)*math.Exp(-0.4*float64(k)))
			}
		}
	}
	s.PrevU.CopyFrom(s.U)
	s.PrevV.CopyFrom(s.V)
	s.PrevH.CopyFrom(s.H)
}

// Dynamics advances a State on one rank of the processor mesh.
type Dynamics struct {
	cart  *comm.Cart2D
	spec  grid.Spec
	local grid.Local
	dt    float64

	// Per-local-row metric terms, indexed by local j with one halo row
	// on each side (offset by 1).
	cosC   []float64 // cos(lat) at centres
	cosN   []float64 // cos(lat) at the northern edge of row j
	fC     []float64 // Coriolis at centres
	fN     []float64 // Coriolis at northern edges
	tend   tendencies
	filter filter.Parallel
	vars   []filter.Variable
	kv     float64 // implicit vertical diffusion number (0 = off)

	// ex owns the persistent halo-exchange staging buffers, keeping the
	// twice-per-step ghost updates allocation-free.
	ex *grid.Exchanger
}

type tendencies struct {
	du, dv, dh *grid.Field
}

// New builds the Dynamics component for one rank.  flt may be nil to run
// unfiltered (which is numerically unstable at polar-CFL-violating time
// steps — exactly the configuration the paper's filter exists to prevent).
func New(cart *comm.Cart2D, spec grid.Spec, local grid.Local, dt float64, flt filter.Parallel) *Dynamics {
	d := &Dynamics{
		cart: cart, spec: spec, local: local, dt: dt, filter: flt,
		ex: grid.NewExchanger(cart),
	}
	n := local.Nlat()
	d.cosC = make([]float64, n+2)
	d.cosN = make([]float64, n+2)
	d.fC = make([]float64, n+2)
	d.fN = make([]float64, n+2)
	for j := -1; j <= n; j++ {
		gj := local.GlobalLat(j)
		if gj < 0 {
			gj = 0
		}
		if gj > spec.Nlat-1 {
			gj = spec.Nlat - 1
		}
		d.cosC[j+1] = spec.CosLatCenter(gj)
		d.fC[j+1] = spec.Coriolis(gj)
		// Northern edge of local row j is global edge gj+1.
		edge := local.GlobalLat(j) + 1
		if edge < 0 {
			edge = 0
		}
		if edge > spec.Nlat {
			edge = spec.Nlat
		}
		d.cosN[j+1] = spec.CosLatEdge(edge)
		d.fN[j+1] = 2 * grid.Omega * math.Sin(spec.LatEdge(edge))
	}
	d.tend = tendencies{
		du: grid.NewField(local, 0),
		dv: grid.NewField(local, 0),
		dh: grid.NewField(local, 0),
	}
	return d
}

// CFLTimeStep returns the largest stable time step for gravity waves at
// the given latitude on this C-grid: the staggered discrete dispersion is
// omega = 2*c*sqrt(sin^2(kx*dx/2)/dx^2 + sin^2(ky*dy/2)/dy^2), whose
// maximum gives dt <= 1 / (2*c*sqrt(1/dx^2 + 1/dy^2)).  The polar filter
// makes the critical-latitude value usable globally.
func CFLTimeStep(spec grid.Spec, lat float64) float64 {
	c := math.Sqrt(grid.Gravity * MeanDepth)
	dx := grid.EarthRadius * math.Cos(lat) * spec.DLon()
	dy := grid.EarthRadius * spec.DLat()
	return 1 / (2 * c * math.Sqrt(1/(dx*dx)+1/(dy*dy)))
}

// Filter returns the spectral filter in use (nil if unfiltered).
func (d *Dynamics) Filter() filter.Parallel { return d.filter }
