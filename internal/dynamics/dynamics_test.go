package dynamics

import (
	"fmt"
	"math"
	"testing"

	"agcm/internal/comm"
	"agcm/internal/filter"
	"agcm/internal/grid"
	"agcm/internal/machine"
	"agcm/internal/sim"
)

// testSpec is a reduced grid that keeps the tests fast while preserving the
// polar-CFL structure (10-degree longitudes, 7.5-degree latitudes).
var testSpec = grid.Spec{Nlon: 36, Nlat: 24, Nlayers: 2}

// runModel integrates `steps` time steps on a py*px mesh and returns the
// gathered global U, V, H fields and the per-rank sim result.
func runModel(t *testing.T, spec grid.Spec, py, px, steps int, dt float64,
	useFilter bool) ([][]float64, *sim.Result) {
	t.Helper()
	d, err := grid.NewDecomp(spec, py, px)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]float64, 3)
	m := sim.New(py*px, machine.CrayT3D())
	res, err := m.Run(func(p *sim.Proc) error {
		world := comm.World(p)
		cart := comm.NewCart2D(world, py, px)
		l := grid.NewLocal(d, cart.MyRow, cart.MyCol)
		s := NewState(l)
		InitSolidBody(s, 20, 4)
		var flt filter.Parallel
		if useFilter {
			flt = filter.NewFFT(cart, spec, l, true)
		}
		dy := New(cart, spec, l, dt, flt)
		for n := 0; n < steps; n++ {
			dy.Step(s)
		}
		for fi, f := range []*grid.Field{s.U, s.V, s.H} {
			g := grid.Gather(world, cart, f)
			if world.Rank() == 0 {
				out[fi] = g
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out, res
}

func TestCFLTimeStepGeometry(t *testing.T) {
	spec := grid.TwoByTwoPointFive(9)
	mid := CFLTimeStep(spec, 45*math.Pi/180)
	pole := CFLTimeStep(spec, spec.LatCenter(0))
	if !(pole < mid/5) {
		t.Fatalf("polar CFL dt %g not far below mid-latitude %g", pole, mid)
	}
	if mid < 100 || mid > 2000 {
		t.Fatalf("mid-latitude CFL dt %g s implausible for 2.5 deg grid", mid)
	}
}

func TestInitSolidBodyIsBalanced(t *testing.T) {
	// A geostrophically balanced state should evolve only weakly: after a
	// few steps the height field must stay within a fraction of a percent
	// of its initial range.
	dt := 0.5 * CFLTimeStep(testSpec, filter.Strong.CritLat())
	fields, _ := runModel(t, testSpec, 1, 1, 10, dt, true)
	h := fields[2]
	min, max := h[0], h[0]
	for _, v := range h {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	// The geostrophic polar depression for a 20 m/s jet is ~970 m of the
	// 2500 m resting depth, so the balanced range is roughly [1530, 2530];
	// instability would blow far outside it within a few steps.
	if min < 0.55*MeanDepth || max > 1.1*MeanDepth {
		t.Fatalf("height drifted to [%g, %g] after 10 steps", min, max)
	}
}

func TestDecompositionInvariance(t *testing.T) {
	// The core correctness property of the whole parallel AGCM: the
	// answer must not depend on the processor mesh.
	dt := 0.5 * CFLTimeStep(testSpec, filter.Strong.CritLat())
	const steps = 8
	want, _ := runModel(t, testSpec, 1, 1, steps, dt, true)
	for _, mesh := range [][2]int{{1, 3}, {2, 2}, {4, 3}, {6, 2}} {
		py, px := mesh[0], mesh[1]
		t.Run(fmt.Sprintf("%dx%d", py, px), func(t *testing.T) {
			got, _ := runModel(t, testSpec, py, px, steps, dt, true)
			for fi := range want {
				for idx := range want[fi] {
					if d := math.Abs(got[fi][idx] - want[fi][idx]); d > 1e-9 {
						t.Fatalf("field %d index %d differs by %g from 1x1 run", fi, idx, d)
					}
				}
			}
		})
	}
}

func TestMassConservation(t *testing.T) {
	spec := testSpec
	d, _ := grid.NewDecomp(spec, 2, 2)
	dt := 0.5 * CFLTimeStep(spec, filter.Strong.CritLat())
	m := sim.New(4, machine.CrayT3D())
	_, err := m.Run(func(p *sim.Proc) error {
		world := comm.World(p)
		cart := comm.NewCart2D(world, 2, 2)
		l := grid.NewLocal(d, cart.MyRow, cart.MyCol)
		s := NewState(l)
		InitSolidBody(s, 20, 4)
		dy := New(cart, spec, l, dt, filter.NewFFT(cart, spec, l, true))
		m0 := world.AllreduceScalar(dy.TotalMass(s), comm.SumOp)
		for n := 0; n < 20; n++ {
			dy.Step(s)
		}
		m1 := world.AllreduceScalar(dy.TotalMass(s), comm.SumOp)
		if rel := math.Abs(m1-m0) / m0; rel > 1e-6 {
			return fmt.Errorf("mass drifted by %g over 20 steps", rel)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFilterStabilizesPolarCFLViolation(t *testing.T) {
	// The reason the filter exists: at a time step set by the CFL limit
	// at the critical latitude (stable in mid-latitudes, violated near
	// the poles), the filtered model must remain bounded while the
	// unfiltered model blows up.
	dt := 0.9 * CFLTimeStep(testSpec, filter.Strong.CritLat())
	const steps = 60

	filtered, _ := runModel(t, testSpec, 1, 1, steps, dt, true)
	maxH := 0.0
	for _, v := range filtered[2] {
		if math.Abs(v) > maxH {
			maxH = math.Abs(v)
		}
	}
	if maxH > 5*MeanDepth || math.IsNaN(maxH) {
		t.Fatalf("filtered run unstable: max|h| = %g", maxH)
	}

	unfiltered, _ := runModel(t, testSpec, 1, 1, steps, dt, false)
	blewUp := false
	for _, f := range unfiltered {
		for _, v := range f {
			if math.IsNaN(v) || math.Abs(v) > 1e6 {
				blewUp = true
			}
		}
	}
	if !blewUp {
		t.Fatalf("unfiltered run stayed bounded at a polar-CFL-violating dt; filter unnecessary?")
	}
}

func TestPolarDiffusionAlsoStabilizes(t *testing.T) {
	// The implicit-diffusion alternative (Section 5 toolkit) must give
	// the same CFL protection as the spectral filter.
	dt := 0.9 * CFLTimeStep(testSpec, filter.Strong.CritLat())
	d, _ := grid.NewDecomp(testSpec, 2, 2)
	m := sim.New(4, machine.CrayT3D())
	_, err := m.Run(func(p *sim.Proc) error {
		world := comm.World(p)
		cart := comm.NewCart2D(world, 2, 2)
		l := grid.NewLocal(d, cart.MyRow, cart.MyCol)
		s := NewState(l)
		InitSolidBody(s, 20, 4)
		dy := New(cart, testSpec, l, dt, filter.NewPolarDiffusion(cart, testSpec, l))
		for n := 0; n < 60; n++ {
			dy.Step(s)
		}
		if mh := s.H.MaxAbs(); mh > 5*MeanDepth || math.IsNaN(mh) {
			return fmt.Errorf("polar diffusion failed to stabilize: max|h| = %g", mh)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStepAccountsTime(t *testing.T) {
	dt := 0.5 * CFLTimeStep(testSpec, filter.Strong.CritLat())
	_, res := runModel(t, testSpec, 2, 2, 4, dt, true)
	if res.MaxAccount("dynamics-fd") <= 0 {
		t.Errorf("no finite-difference time accounted")
	}
	if res.MaxAccount("filter") <= 0 {
		t.Errorf("no filter time accounted")
	}
	if res.MaxAccount("dynamics-comm") <= 0 {
		t.Errorf("no ghost-exchange time accounted")
	}
}

func TestVStaysZeroAtPoles(t *testing.T) {
	dt := 0.5 * CFLTimeStep(testSpec, filter.Strong.CritLat())
	fields, _ := runModel(t, testSpec, 2, 2, 6, dt, true)
	v := fields[1]
	spec := testSpec
	for i := 0; i < spec.Nlon; i++ {
		for k := 0; k < spec.Nlayers; k++ {
			north := v[((spec.Nlat-1)*spec.Nlon+i)*spec.Nlayers+k]
			if north != 0 {
				t.Fatalf("v at north pole face not zero: %g", north)
			}
		}
	}
}

func TestDeterministicDynamics(t *testing.T) {
	dt := 0.5 * CFLTimeStep(testSpec, filter.Strong.CritLat())
	a, ra := runModel(t, testSpec, 2, 3, 5, dt, true)
	b, rb := runModel(t, testSpec, 2, 3, 5, dt, true)
	for fi := range a {
		for idx := range a[fi] {
			if a[fi][idx] != b[fi][idx] {
				t.Fatalf("field %d differs across identical runs", fi)
			}
		}
	}
	for r := range ra.Clocks {
		if ra.Clocks[r] != rb.Clocks[r] {
			t.Fatalf("virtual clocks differ across identical runs")
		}
	}
}
