package comm

import (
	"fmt"
	"testing"
)

// TestAllreduceIntoAllocFree pins the steady-state allocation count of the
// AllreduceInto hot path at zero.  testing.AllocsPerRun counts mallocs
// process-wide, so every rank of the machine — not just the measured one —
// must run its rounds allocation-free; the warmup rounds populate the
// transport's message free lists and payload pools first.  AllocsPerRun
// invokes the measured function runs+1 times, so the partner ranks loop
// exactly runs+1 collective rounds to stay matched.
func TestAllreduceIntoAllocFree(t *testing.T) {
	const warm, runs = 5, 50
	runWorld(t, 4, func(c *Comm) error {
		data := make([]float64, 64)
		for i := range data {
			data[i] = float64(c.Rank()*1000 + i)
		}
		out := make([]float64, 0, len(data))
		round := func() {
			out = c.AllreduceInto(data, out, SumOp)
		}
		for i := 0; i < warm; i++ {
			round()
		}
		if c.Rank() == 0 {
			if n := testing.AllocsPerRun(runs, round); n != 0 {
				return fmt.Errorf("AllreduceInto allocated %.1f times per round; want 0", n)
			}
			return nil
		}
		for i := 0; i < runs+1; i++ {
			round()
		}
		return nil
	})
}
