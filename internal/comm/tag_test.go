package comm

import (
	"fmt"
	"strings"
	"testing"

	"agcm/internal/sim"
)

// TestReservedTagPanicsClearly: a user tag inside the reserved collective
// band must abort with a message naming the valid range, not silently
// collide with collective traffic.
func TestReservedTagPanicsClearly(t *testing.T) {
	for _, tag := range []int{maxUserTag, tagBarrier, -1} {
		m := sim.New(2, flatModel{})
		_, err := m.Run(func(p *sim.Proc) error {
			c := World(p)
			if c.Rank() == 0 {
				c.Send(1, tag, []float64{1})
			}
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "reserved for collective traffic") {
			t.Fatalf("tag %d: err = %v, want reserved-tag panic message", tag, err)
		}
	}
}

// TestHighUserTagNoGathervCollision is the regression test for the tag
// collision: Gatherv's payload tag used to sit at maxUserTag-1 *inside* the
// user range, so a pending user message with that tag was consumed by a
// concurrent Gatherv.  Every legal user tag must now be safe.
func TestHighUserTagNoGathervCollision(t *testing.T) {
	const userTag = maxUserTag - 1 // the old Gatherv payload tag
	runWorld(t, 3, func(c *Comm) error {
		// Non-root ranks post a user message to root *before* the
		// collective, so it is queued when Gatherv's receives run.
		if c.Rank() != 0 {
			c.Send(0, userTag, []float64{-1, -2})
		}
		parts := c.Gatherv(0, []float64{float64(c.Rank() + 1)})
		if c.Rank() == 0 {
			for r, part := range parts {
				if len(part) != 1 || part[0] != float64(r+1) {
					return fmt.Errorf("gathered part[%d] = %v, want [%d] (user message leaked into the collective)",
						r, part, r+1)
				}
			}
			for src := 1; src < c.Size(); src++ {
				got := c.Recv(src, userTag)
				if len(got) != 2 || got[0] != -1 {
					return fmt.Errorf("user message from %d = %v, want [-1 -2]", src, got)
				}
			}
		}
		return nil
	})
}

// TestSplitHighTagNoCollectiveCollision checks the Split interaction with
// the reserved tag band: user messages at the very top of the user range
// (maxUserTag-1), pending both across the split boundary on the parent comm
// and inside a sub-communicator, must survive collectives on BOTH
// communicators untouched.  Split gives each color a fresh context, so a
// collision here would mean either the context fold or the reserved-band
// offset regressed.
func TestSplitHighTagNoCollectiveCollision(t *testing.T) {
	const userTag = maxUserTag - 1
	runWorld(t, 4, func(c *Comm) error {
		colors := []int{0, 0, 1, 1}
		keys := []int{0, 1, 0, 1}
		sub := c.Split(colors, keys, 7)
		groupBase := 2 * colors[c.Rank()] // world rank of each group's sub rank 0

		// A high-tag user message crossing the split boundary on the
		// parent comm, queued before any collective runs.
		if c.Rank() == 0 {
			c.Send(2, userTag, []float64{42})
		}
		// And one at the same tag inside each sub-communicator.
		if sub.Rank() == 1 {
			sub.Send(0, userTag, []float64{float64(100 + c.Rank())})
		}

		// Collectives on both communicators with both messages pending.
		subParts := sub.Gatherv(0, []float64{float64(c.Rank())})
		if sub.Rank() == 0 {
			for r, part := range subParts {
				if len(part) != 1 || part[0] != float64(groupBase+r) {
					return fmt.Errorf("sub gather part[%d] = %v, want [%d] (user message leaked into the sub-comm collective)",
						r, part, groupBase+r)
				}
			}
		}
		worldParts := c.Gatherv(0, []float64{float64(10 * c.Rank())})
		if c.Rank() == 0 {
			for r, part := range worldParts {
				if len(part) != 1 || part[0] != float64(10*r) {
					return fmt.Errorf("world gather part[%d] = %v, want [%d] (user message leaked into the parent collective)",
						r, part, 10*r)
				}
			}
		}

		// Both user messages must still be deliverable, intact.
		if c.Rank() == 2 {
			if got := c.Recv(0, userTag); len(got) != 1 || got[0] != 42 {
				return fmt.Errorf("cross-boundary user message = %v, want [42]", got)
			}
		}
		if sub.Rank() == 0 {
			want := float64(100 + groupBase + 1)
			if got := sub.Recv(1, userTag); len(got) != 1 || got[0] != want {
				return fmt.Errorf("sub-comm user message = %v, want [%v]", got, want)
			}
		}
		return nil
	})
}

// TestSplitReservedTagStillPanics checks that checkUserTag guards
// sub-communicators exactly as it guards the world comm: the reserved band
// begins at maxUserTag in every context.
func TestSplitReservedTagStillPanics(t *testing.T) {
	m := sim.New(4, flatModel{})
	_, err := m.Run(func(p *sim.Proc) error {
		c := World(p)
		sub := c.Split([]int{0, 0, 1, 1}, []int{0, 1, 0, 1}, 3)
		if sub.Rank() == 0 {
			sub.Send(1, maxUserTag, []float64{1})
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "reserved for collective traffic") {
		t.Fatalf("err = %v, want reserved-tag panic message on the split comm", err)
	}
}

// TestScattervWithPendingHighTag is the mirrored case for Scatterv.
func TestScattervWithPendingHighTag(t *testing.T) {
	const userTag = maxUserTag - 1
	runWorld(t, 3, func(c *Comm) error {
		var parts [][]float64
		if c.Rank() == 0 {
			for r := 1; r < c.Size(); r++ {
				c.Send(r, userTag, []float64{99})
			}
			parts = [][]float64{{10}, {11}, {12}}
		}
		mine := c.Scatterv(0, parts)
		if len(mine) != 1 || mine[0] != float64(10+c.Rank()) {
			return fmt.Errorf("scattered %v, want [%d]", mine, 10+c.Rank())
		}
		if c.Rank() != 0 {
			if got := c.Recv(0, userTag); len(got) != 1 || got[0] != 99 {
				return fmt.Errorf("user message = %v, want [99]", got)
			}
		}
		return nil
	})
}
