package comm

import (
	"fmt"
	"strings"
	"testing"

	"agcm/internal/sim"
)

// TestReservedTagPanicsClearly: a user tag inside the reserved collective
// band must abort with a message naming the valid range, not silently
// collide with collective traffic.
func TestReservedTagPanicsClearly(t *testing.T) {
	for _, tag := range []int{maxUserTag, tagBarrier, -1} {
		m := sim.New(2, flatModel{})
		_, err := m.Run(func(p *sim.Proc) error {
			c := World(p)
			if c.Rank() == 0 {
				c.Send(1, tag, []float64{1})
			}
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "reserved for collective traffic") {
			t.Fatalf("tag %d: err = %v, want reserved-tag panic message", tag, err)
		}
	}
}

// TestHighUserTagNoGathervCollision is the regression test for the tag
// collision: Gatherv's payload tag used to sit at maxUserTag-1 *inside* the
// user range, so a pending user message with that tag was consumed by a
// concurrent Gatherv.  Every legal user tag must now be safe.
func TestHighUserTagNoGathervCollision(t *testing.T) {
	const userTag = maxUserTag - 1 // the old Gatherv payload tag
	runWorld(t, 3, func(c *Comm) error {
		// Non-root ranks post a user message to root *before* the
		// collective, so it is queued when Gatherv's receives run.
		if c.Rank() != 0 {
			c.Send(0, userTag, []float64{-1, -2})
		}
		parts := c.Gatherv(0, []float64{float64(c.Rank() + 1)})
		if c.Rank() == 0 {
			for r, part := range parts {
				if len(part) != 1 || part[0] != float64(r+1) {
					return fmt.Errorf("gathered part[%d] = %v, want [%d] (user message leaked into the collective)",
						r, part, r+1)
				}
			}
			for src := 1; src < c.Size(); src++ {
				got := c.Recv(src, userTag)
				if len(got) != 2 || got[0] != -1 {
					return fmt.Errorf("user message from %d = %v, want [-1 -2]", src, got)
				}
			}
		}
		return nil
	})
}

// TestScattervWithPendingHighTag is the mirrored case for Scatterv.
func TestScattervWithPendingHighTag(t *testing.T) {
	const userTag = maxUserTag - 1
	runWorld(t, 3, func(c *Comm) error {
		var parts [][]float64
		if c.Rank() == 0 {
			for r := 1; r < c.Size(); r++ {
				c.Send(r, userTag, []float64{99})
			}
			parts = [][]float64{{10}, {11}, {12}}
		}
		mine := c.Scatterv(0, parts)
		if len(mine) != 1 || mine[0] != float64(10+c.Rank()) {
			return fmt.Errorf("scattered %v, want [%d]", mine, 10+c.Rank())
		}
		if c.Rank() != 0 {
			if got := c.Recv(0, userTag); len(got) != 1 || got[0] != 99 {
				return fmt.Errorf("user message = %v, want [99]", got)
			}
		}
		return nil
	})
}
