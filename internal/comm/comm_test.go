package comm

import (
	"fmt"
	"math"
	"testing"

	"agcm/internal/sim"
)

type flatModel struct{}

func (flatModel) FlopSeconds(n float64) float64         { return n * 1e-7 }
func (flatModel) MemSeconds(n float64) float64          { return n * 1e-9 }
func (flatModel) SendOverheadSeconds(bytes int) float64 { return 1e-5 }
func (flatModel) RecvOverheadSeconds(bytes int) float64 { return 1e-5 }
func (flatModel) NetworkSeconds(bytes int) float64      { return 1e-4 + float64(bytes)*1e-8 }

// runWorld executes body on an n-rank machine and fails the test on error.
func runWorld(t *testing.T, n int, body func(c *Comm) error) *sim.Result {
	t.Helper()
	m := sim.New(n, flatModel{})
	res, err := m.Run(func(p *sim.Proc) error {
		return body(World(p))
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWorldRankSize(t *testing.T) {
	runWorld(t, 5, func(c *Comm) error {
		if c.Size() != 5 {
			return fmt.Errorf("Size = %d", c.Size())
		}
		if c.Rank() != c.Proc().Rank() {
			return fmt.Errorf("Rank %d != proc rank %d", c.Rank(), c.Proc().Rank())
		}
		return nil
	})
}

func TestSendRecvRoundtrip(t *testing.T) {
	runWorld(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 3, []float64{1, 2, 3})
			got := c.Recv(1, 4)
			if len(got) != 1 || got[0] != 9 {
				return fmt.Errorf("got %v", got)
			}
		} else {
			got := c.Recv(0, 3)
			if len(got) != 3 || got[1] != 2 {
				return fmt.Errorf("got %v", got)
			}
			c.Send(0, 4, []float64{9})
		}
		return nil
	})
}

func TestSendCopyIsolatesBuffer(t *testing.T) {
	runWorld(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []float64{1, 2, 3}
			c.SendCopy(1, 0, buf)
			buf[0] = 99 // mutate after send: receiver must not see it
		} else {
			got := c.Recv(0, 0)
			if got[0] != 1 {
				return fmt.Errorf("receiver saw mutation: %v", got)
			}
		}
		return nil
	})
}

func TestSendRecvInts(t *testing.T) {
	runWorld(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.SendInts(1, 1, []int{4, 5, 6})
		} else {
			got := c.RecvInts(0, 1)
			if len(got) != 3 || got[2] != 6 {
				return fmt.Errorf("got %v", got)
			}
		}
		return nil
	})
}

func TestSendrecvPairwiseNoDeadlock(t *testing.T) {
	runWorld(t, 2, func(c *Comm) error {
		partner := 1 - c.Rank()
		got := c.Sendrecv(partner, 0, []float64{float64(c.Rank())}, partner, 0)
		if got[0] != float64(partner) {
			return fmt.Errorf("rank %d got %v", c.Rank(), got)
		}
		return nil
	})
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	res := runWorld(t, 7, func(c *Comm) error {
		// Rank r computes r milliseconds of virtual work, then barriers.
		c.Proc().Compute(float64(c.Rank()) * 1e4)
		c.Barrier()
		return nil
	})
	// After a barrier no clock may precede the slowest pre-barrier clock.
	slowest := 6.0 * 1e4 * 1e-7
	for r, clk := range res.Clocks {
		if clk < slowest {
			t.Errorf("rank %d clock %g below slowest pre-barrier time %g", r, clk, slowest)
		}
	}
}

func TestBcastAllRootsAllSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 13} {
		for root := 0; root < n; root++ {
			n, root := n, root
			runWorld(t, n, func(c *Comm) error {
				var data []float64
				if c.Rank() == root {
					data = []float64{3.5, -1, float64(root)}
				}
				got := c.Bcast(root, data)
				if len(got) != 3 || got[0] != 3.5 || got[2] != float64(root) {
					return fmt.Errorf("n=%d root=%d rank=%d got %v", n, root, c.Rank(), got)
				}
				return nil
			})
		}
	}
}

func TestReduceSumAllRootsAllSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8, 12} {
		for root := 0; root < n; root += 3 {
			n, root := n, root
			runWorld(t, n, func(c *Comm) error {
				data := []float64{float64(c.Rank()), 1}
				got := c.Reduce(root, data, SumOp)
				if c.Rank() != root {
					if got != nil {
						return fmt.Errorf("non-root got %v", got)
					}
					return nil
				}
				wantSum := float64(n*(n-1)) / 2
				if got[0] != wantSum || got[1] != float64(n) {
					return fmt.Errorf("n=%d root=%d reduce got %v, want [%g %d]", n, root, got, wantSum, n)
				}
				return nil
			})
		}
	}
}

func TestAllreduceMaxMin(t *testing.T) {
	runWorld(t, 6, func(c *Comm) error {
		v := float64(c.Rank()*c.Rank()) - 3
		if got := c.AllreduceScalar(v, MaxOp); got != 22 {
			return fmt.Errorf("max got %g, want 22", got)
		}
		if got := c.AllreduceScalar(v, MinOp); got != -3 {
			return fmt.Errorf("min got %g, want -3", got)
		}
		if got := c.AllreduceScalar(1, SumOp); got != 6 {
			return fmt.Errorf("sum got %g, want 6", got)
		}
		return nil
	})
}

func TestGatherAndGatherv(t *testing.T) {
	runWorld(t, 4, func(c *Comm) error {
		// Variable-length contributions: rank r sends r+1 values of r.
		mine := make([]float64, c.Rank()+1)
		for i := range mine {
			mine[i] = float64(c.Rank())
		}
		parts := c.Gatherv(2, mine)
		if c.Rank() != 2 {
			if parts != nil {
				return fmt.Errorf("non-root got parts")
			}
			return nil
		}
		for r, p := range parts {
			if len(p) != r+1 {
				return fmt.Errorf("part %d has len %d", r, len(p))
			}
			for _, v := range p {
				if v != float64(r) {
					return fmt.Errorf("part %d contains %g", r, v)
				}
			}
		}
		return nil
	})
	runWorld(t, 3, func(c *Comm) error {
		flat := c.Gather(0, []float64{float64(c.Rank()), float64(c.Rank() * 10)})
		if c.Rank() == 0 {
			want := []float64{0, 0, 1, 10, 2, 20}
			if len(flat) != len(want) {
				return fmt.Errorf("gather len %d", len(flat))
			}
			for i := range want {
				if flat[i] != want[i] {
					return fmt.Errorf("gather %v, want %v", flat, want)
				}
			}
		}
		return nil
	})
}

func TestScatterv(t *testing.T) {
	runWorld(t, 4, func(c *Comm) error {
		var parts [][]float64
		if c.Rank() == 1 {
			parts = [][]float64{{0}, {1, 1}, {2, 2, 2}, {3}}
		}
		got := c.Scatterv(1, parts)
		if len(got) == 0 || got[0] != float64(c.Rank()) {
			return fmt.Errorf("rank %d got %v", c.Rank(), got)
		}
		if c.Rank() == 2 && len(got) != 3 {
			return fmt.Errorf("rank 2 got %v", got)
		}
		return nil
	})
}

func TestAlltoallv(t *testing.T) {
	runWorld(t, 5, func(c *Comm) error {
		parts := make([][]float64, 5)
		for dst := range parts {
			parts[dst] = []float64{float64(c.Rank()*100 + dst)}
		}
		got := c.Alltoallv(parts)
		for src, p := range got {
			want := float64(src*100 + c.Rank())
			if len(p) != 1 || p[0] != want {
				return fmt.Errorf("rank %d from %d got %v, want %g", c.Rank(), src, p, want)
			}
		}
		return nil
	})
}

func TestRingShiftAndAllgatherv(t *testing.T) {
	runWorld(t, 4, func(c *Comm) error {
		got := c.RingShift([]float64{float64(c.Rank())})
		prev := (c.Rank() + 3) % 4
		if got[0] != float64(prev) {
			return fmt.Errorf("ring shift got %v, want %d", got, prev)
		}
		all := c.Allgatherv([]float64{float64(c.Rank() * 11)})
		for r, p := range all {
			if len(p) != 1 || p[0] != float64(r*11) {
				return fmt.Errorf("allgather from %d got %v", r, p)
			}
		}
		return nil
	})
}

func TestAllgathervTreeMatchesRing(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		n := n
		runWorld(t, n, func(c *Comm) error {
			mine := make([]float64, c.Rank()+1) // variable lengths
			for i := range mine {
				mine[i] = float64(c.Rank()*10 + i)
			}
			ring := c.Allgatherv(mine)
			tree := c.AllgathervTree(mine)
			if len(ring) != len(tree) {
				return fmt.Errorf("n=%d: lengths differ", n)
			}
			for r := range ring {
				if len(ring[r]) != len(tree[r]) {
					return fmt.Errorf("n=%d: rank %d part lengths differ", n, r)
				}
				for i := range ring[r] {
					if ring[r][i] != tree[r][i] {
						return fmt.Errorf("n=%d: rank %d value %d differs", n, r, i)
					}
				}
			}
			return nil
		})
	}
}

func TestAllgathervTreeCheaperThanRingAtScale(t *testing.T) {
	// The paper's point about the binary-tree alternative: fewer message
	// start-ups on wide meshes.
	timeOf := func(fn func(c *Comm)) float64 {
		m := sim.New(30, flatModel{})
		res, err := m.Run(func(p *sim.Proc) error {
			fn(World(p))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MaxClock()
	}
	data := make([]float64, 4) // latency-dominated regime
	ring := timeOf(func(c *Comm) { c.Allgatherv(data) })
	tree := timeOf(func(c *Comm) { c.AllgathervTree(data) })
	if tree >= ring {
		t.Fatalf("tree allgather (%g s) not cheaper than ring (%g s) on 30 ranks", tree, ring)
	}
}

func TestSplitCommunicatorsIsolateTraffic(t *testing.T) {
	// Messages sent within one split group must never be received by a
	// same-rank member of another group (context isolation).
	runWorld(t, 4, func(c *Comm) error {
		colors := []int{0, 0, 1, 1}
		keys := []int{0, 1, 0, 1}
		sub := c.Split(colors, keys, 50)
		partner := 1 - sub.Rank()
		sent := float64(c.Rank() * 100)
		got := sub.Sendrecv(partner, 9, []float64{sent}, partner, 9)
		// My partner is within my color group.
		wantFrom := map[int]int{0: 1, 1: 0, 2: 3, 3: 2}[c.Rank()]
		if got[0] != float64(wantFrom*100) {
			return fmt.Errorf("rank %d got %g, want from world rank %d", c.Rank(), got[0], wantFrom)
		}
		return nil
	})
}

func TestSplitRowsAndColumns(t *testing.T) {
	// 2x3 mesh: check row and column communicators see the right peers.
	runWorld(t, 6, func(c *Comm) error {
		cart := NewCart2D(c, 2, 3)
		if cart.Row.Size() != 3 || cart.Col.Size() != 2 {
			return fmt.Errorf("row size %d col size %d", cart.Row.Size(), cart.Col.Size())
		}
		if cart.Row.Rank() != cart.MyCol {
			return fmt.Errorf("row rank %d, want col index %d", cart.Row.Rank(), cart.MyCol)
		}
		if cart.Col.Rank() != cart.MyRow {
			return fmt.Errorf("col rank %d, want row index %d", cart.Col.Rank(), cart.MyRow)
		}
		// A row allreduce must sum only within the row.
		sum := cart.Row.AllreduceScalar(float64(c.Rank()), SumOp)
		wantRow := 0.0
		for col := 0; col < 3; col++ {
			wantRow += float64(cart.MyRow*3 + col)
		}
		if sum != wantRow {
			return fmt.Errorf("row sum %g, want %g", sum, wantRow)
		}
		// A column allreduce must sum only within the column.
		csum := cart.Col.AllreduceScalar(float64(c.Rank()), SumOp)
		wantCol := float64(cart.MyCol) + float64(3+cart.MyCol)
		if csum != wantCol {
			return fmt.Errorf("col sum %g, want %g", csum, wantCol)
		}
		return nil
	})
}

func TestCartNeighbours(t *testing.T) {
	runWorld(t, 6, func(c *Comm) error {
		cart := NewCart2D(c, 3, 2) // 3 rows x 2 cols
		r, col := cart.MyRow, cart.MyCol
		if r == 0 && cart.South() != -1 {
			return fmt.Errorf("rank %d south = %d, want -1", c.Rank(), cart.South())
		}
		if r == 2 && cart.North() != -1 {
			return fmt.Errorf("rank %d north = %d, want -1", c.Rank(), cart.North())
		}
		if r > 0 && cart.South() != (r-1)*2+col {
			return fmt.Errorf("south wrong")
		}
		if cart.East() != r*2+(col+1)%2 {
			return fmt.Errorf("east wrong")
		}
		if cart.West() != r*2+(col+1)%2 {
			return fmt.Errorf("west wrong in 2-wide mesh (east==west)")
		}
		return nil
	})
}

func TestCartBadMeshPanics(t *testing.T) {
	m := sim.New(4, flatModel{})
	_, err := m.Run(func(p *sim.Proc) error {
		NewCart2D(World(p), 3, 2) // 6 != 4
		return nil
	})
	if err == nil {
		t.Fatalf("mismatched mesh did not error")
	}
}

func TestCollectiveTimingOrdering(t *testing.T) {
	// A bigger message must take at least as long to broadcast.
	bcastTime := func(elems int) float64 {
		var res *sim.Result
		res = runWorld(t, 8, func(c *Comm) error {
			var data []float64
			if c.Rank() == 0 {
				data = make([]float64, elems)
			}
			c.Bcast(0, data)
			return nil
		})
		return res.MaxClock()
	}
	small, large := bcastTime(10), bcastTime(100000)
	if !(large > small) {
		t.Fatalf("bcast of 100k elems (%g s) not slower than 10 elems (%g s)", large, small)
	}
}

func TestReduceChargesComputeTime(t *testing.T) {
	res := runWorld(t, 2, func(c *Comm) error {
		c.Reduce(0, make([]float64, 1000), SumOp)
		return nil
	})
	// Root combined one 1000-element vector: >= 1000 flops of virtual time.
	if res.Clocks[0] < 1000*1e-7 {
		t.Fatalf("root clock %g too small; reduce arithmetic not charged", res.Clocks[0])
	}
}

func TestWorldRankOutOfRangePanics(t *testing.T) {
	m := sim.New(2, flatModel{})
	_, err := m.Run(func(p *sim.Proc) error {
		World(p).WorldRank(7)
		return nil
	})
	if err == nil {
		t.Fatalf("WorldRank(7) on size-2 comm did not error")
	}
}

func TestMessageComplexityFormulas(t *testing.T) {
	// The paper's Section 3 reasons about algorithms by their message
	// counts; the simulator's counters must match the closed forms.
	count := func(n int, body func(c *Comm)) int64 {
		m := sim.New(n, flatModel{})
		res, err := m.Run(func(p *sim.Proc) error {
			body(World(p))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalMessages()
	}
	const n = 8
	data := make([]float64, 10)

	// Ring allgather: every rank forwards P-1 times -> P*(P-1).
	if got := count(n, func(c *Comm) { c.Allgatherv(data) }); got != n*(n-1) {
		t.Errorf("ring allgather: %d messages, want %d", got, n*(n-1))
	}
	// Alltoallv: every rank sends to P-1 others.
	if got := count(n, func(c *Comm) {
		parts := make([][]float64, n)
		for i := range parts {
			parts[i] = data
		}
		c.Alltoallv(parts)
	}); got != n*(n-1) {
		t.Errorf("alltoallv: %d messages, want %d", got, n*(n-1))
	}
	// Binomial broadcast: P-1 messages total.
	if got := count(n, func(c *Comm) {
		var d []float64
		if c.Rank() == 0 {
			d = data
		}
		c.Bcast(0, d)
	}); got != n-1 {
		t.Errorf("bcast: %d messages, want %d", got, n-1)
	}
	// Binomial reduce: P-1 messages total.
	if got := count(n, func(c *Comm) { c.Reduce(0, data, SumOp) }); got != n-1 {
		t.Errorf("reduce: %d messages, want %d", got, n-1)
	}
	// Dissemination barrier: P * ceil(log2 P).
	if got := count(n, func(c *Comm) { c.Barrier() }); got != n*3 {
		t.Errorf("barrier: %d messages, want %d", got, n*3)
	}
	// Tree allgather = gather (P-1) + two broadcasts (2*(P-1)).
	if got := count(n, func(c *Comm) { c.AllgathervTree(data) }); got != 3*(n-1) {
		t.Errorf("tree allgather: %d messages, want %d", got, 3*(n-1))
	}
}

func TestAllreduceVectorAssociativityInvariant(t *testing.T) {
	// Allreduce result must be identical on all ranks and independent of
	// which rank contributed what order — verify against a serial sum.
	const n = 9
	want := make([]float64, 4)
	for r := 0; r < n; r++ {
		for i := range want {
			want[i] += float64(r*i) + 0.25
		}
	}
	runWorld(t, n, func(c *Comm) error {
		mine := make([]float64, 4)
		for i := range mine {
			mine[i] = float64(c.Rank()*i) + 0.25
		}
		got := c.Allreduce(mine, SumOp)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				return fmt.Errorf("rank %d element %d: got %g want %g", c.Rank(), i, got[i], want[i])
			}
		}
		return nil
	})
}
