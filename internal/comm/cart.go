package comm

import "fmt"

// Cart2D arranges a communicator as a Py x Px processor mesh matching the
// AGCM's two-dimensional horizontal domain decomposition: Py processor rows
// stacked in the latitudinal direction and Px processor columns in the
// longitudinal direction.  World rank = row*Px + col.
type Cart2D struct {
	// World is the full communicator the mesh was built from.
	World *Comm
	// Py and Px are the mesh extents in the latitude and longitude
	// directions.
	Py, Px int
	// MyRow and MyCol locate this rank in the mesh.
	MyRow, MyCol int
	// Row contains the Px ranks sharing this rank's latitude band,
	// ordered west to east.  Filtering transposes happen here.
	Row *Comm
	// Col contains the Py ranks sharing this rank's longitude band,
	// ordered south to north.  Filter-row load balancing happens here.
	Col *Comm
}

// Context ids for the derived communicators.  Row comms use contexts
// [1, 1+Py), column comms use [1+maxMesh, 1+maxMesh+Px).
const cartCtxBase = 1
const maxMeshDim = 1024

// NewCart2D builds the mesh topology.  The communicator size must equal
// Py*Px.
func NewCart2D(world *Comm, py, px int) *Cart2D {
	if py < 1 || px < 1 || py > maxMeshDim || px > maxMeshDim {
		panic(fmt.Sprintf("comm: invalid mesh %dx%d", py, px))
	}
	if world.Size() != py*px {
		panic(fmt.Sprintf("comm: mesh %dx%d needs %d ranks, communicator has %d",
			py, px, py*px, world.Size()))
	}
	me := world.Rank()
	myRow, myCol := me/px, me%px
	rowColors := make([]int, world.Size())
	colColors := make([]int, world.Size())
	keys := make([]int, world.Size())
	for r := 0; r < world.Size(); r++ {
		rowColors[r] = r / px
		colColors[r] = r % px
		keys[r] = r
	}
	return &Cart2D{
		World: world,
		Py:    py, Px: px,
		MyRow: myRow, MyCol: myCol,
		Row: world.Split(rowColors, keys, cartCtxBase),
		Col: world.Split(colColors, keys, cartCtxBase+maxMeshDim),
	}
}

// North returns the world-comm rank of the neighbour one processor row
// toward the north pole, or -1 at the northern mesh edge.
func (c *Cart2D) North() int {
	if c.MyRow == c.Py-1 {
		return -1
	}
	return (c.MyRow+1)*c.Px + c.MyCol
}

// South returns the world-comm rank of the neighbour one processor row
// toward the south pole, or -1 at the southern mesh edge.
func (c *Cart2D) South() int {
	if c.MyRow == 0 {
		return -1
	}
	return (c.MyRow-1)*c.Px + c.MyCol
}

// East returns the world-comm rank of the eastern neighbour; the longitude
// direction is periodic, so there is always one.
func (c *Cart2D) East() int {
	return c.MyRow*c.Px + (c.MyCol+1)%c.Px
}

// West returns the world-comm rank of the western neighbour (periodic).
func (c *Cart2D) West() int {
	return c.MyRow*c.Px + (c.MyCol-1+c.Px)%c.Px
}
