// Package comm provides an MPI-flavoured message-passing layer on top of the
// sim virtual machine: communicators with sub-groups, point-to-point
// messaging, and the collective operations the parallel AGCM needs (barrier,
// broadcast, reduce, allreduce, gather, scatter, all-to-all).
//
// The paper's filtering variants are distinguished by their communication
// patterns — convolution over rings or binary trees versus a data transpose
// (all-to-all) — so all of those patterns are first-class here and their
// costs emerge from the underlying sim cost model.
package comm

import (
	"fmt"

	"agcm/internal/sim"
)

// bytesPerFloat is the wire size of one float64 element.
const bytesPerFloat = 8

// tagSpace is the number of user tags reserved per communicator context;
// collectives use tags near the top of the space.
const tagSpace = 1 << 16

// Reserved collective tags within a context's tag space.  User tags must
// stay below maxUserTag (checkUserTag enforces this with a panic) so user
// traffic can never collide with collective traffic.
const (
	tagBarrier = tagSpace - 1 - iota
	tagBcast
	tagReduce
	tagGather
	tagScatter
	tagAlltoall
	tagShift
	// tagGatherData carries Gatherv/Scatterv payloads.  It used to live at
	// maxUserTag-1 *inside* the user range, where a user message with the
	// same tag silently interleaved with collective payloads.
	tagGatherData
	maxUserTag = tagSpace - 64
)

// MaxUserTag is the exclusive upper bound of the user tag range: every tag
// passed to Send/SendCopy/Recv/SendInts/RecvInts/Sendrecv must lie in
// [0, MaxUserTag).  Tags at or above it are reserved for collective traffic.
// checkUserTag enforces the bound at run time and the commtag analyzer
// (internal/analysis) enforces it for constant tags at lint time.
const MaxUserTag = maxUserTag

// Compile-time guard: the lowest reserved collective tag must stay strictly
// above the user range, or checkUserTag's bound would no longer protect the
// collectives.  Adding too many reserved tags makes this constant negative,
// which fails to compile.
const _ = uint64(tagGatherData - maxUserTag - 1)

// Comm is a communicator: an ordered group of world ranks with a private tag
// context, analogous to an MPI communicator.
type Comm struct {
	p     *sim.Proc
	world []int // members' world ranks, in comm rank order
	me    int   // this process's rank within the comm
	ctx   int   // context id isolating this comm's traffic
	scr   *scratch
}

// scratch holds per-communicator reusable buffers for the internal stages of
// the collectives, so their steady state allocates nothing.  A Comm's methods
// are only ever called from its own rank's goroutine, so no locking is
// needed.
type scratch struct {
	reduce []float64 // tree-reduce receive staging
}

// scratchBufs lazily allocates the collective scratch space.
func (c *Comm) scratchBufs() *scratch {
	if c.scr == nil {
		c.scr = &scratch{}
	}
	return c.scr
}

// World returns the communicator containing every rank of the machine.
func World(p *sim.Proc) *Comm {
	members := make([]int, p.Ranks())
	for i := range members {
		members[i] = i
	}
	return &Comm{p: p, world: members, me: p.Rank(), ctx: 0}
}

// Rank returns this process's rank within the communicator.
func (c *Comm) Rank() int { return c.me }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.world) }

// Proc returns the underlying simulated processor.
func (c *Comm) Proc() *sim.Proc { return c.p }

// WorldRank translates a comm rank to the machine's world rank.
func (c *Comm) WorldRank(rank int) int {
	if rank < 0 || rank >= len(c.world) {
		panic(fmt.Sprintf("comm: rank %d out of range [0,%d)", rank, len(c.world)))
	}
	return c.world[rank]
}

func (c *Comm) tag(t int) int {
	if t < 0 || t >= tagSpace {
		panic(fmt.Sprintf("comm: tag %d out of range [0,%d)", t, tagSpace))
	}
	return c.ctx*tagSpace + t
}

// Split partitions the communicator like MPI_Comm_split: ranks passing the
// same color form a new communicator, ordered by (key, old rank).  All ranks
// must call Split with deterministic, globally consistent knowledge of every
// member's color and key, supplied via the colors and keys slices indexed by
// comm rank.  (The simulated code computes these locally from the mesh
// geometry, so no communication is needed.)  newCtx must be the same on all
// ranks and unique among live communicators derived from the same parent.
func (c *Comm) Split(colors, keys []int, newCtx int) *Comm {
	if len(colors) != len(c.world) || len(keys) != len(c.world) {
		panic("comm: Split needs one color and key per rank")
	}
	myColor := colors[c.me]
	// Collect members with my color, sorted by (key, rank) via stable
	// selection — group sizes are small so O(n^2) is fine and allocation
	// free of sort.Slice's comparator indirection.
	var members []int
	var memberKeys []int
	for r, col := range colors {
		if col == myColor {
			members = append(members, c.world[r])
			memberKeys = append(memberKeys, keys[r])
		}
	}
	for i := 1; i < len(members); i++ {
		for j := i; j > 0 && memberKeys[j] < memberKeys[j-1]; j-- {
			memberKeys[j], memberKeys[j-1] = memberKeys[j-1], memberKeys[j]
			members[j], members[j-1] = members[j-1], members[j]
		}
	}
	me := -1
	for i, w := range members {
		if w == c.p.Rank() {
			me = i
			break
		}
	}
	if me < 0 {
		panic("comm: Split lost the calling rank")
	}
	// Distinct colors must map to distinct contexts; fold the color in.
	return &Comm{p: c.p, world: members, me: me, ctx: newCtx + myColor + 1}
}

// Send transmits a copy-free reference to data to comm rank dst.
// The caller must not mutate data afterwards; use SendCopy when the buffer
// will be reused.
func (c *Comm) Send(dst, tag int, data []float64) {
	c.checkUserTag(tag)
	c.p.SendFloats(c.WorldRank(dst), c.tag(tag), data, len(data)*bytesPerFloat)
}

// SendCopy transmits a private copy of data to comm rank dst: the caller may
// reuse data immediately.  The copy is drawn from the receiver's payload
// pool, so a steady-state SendCopy/RecvInto exchange allocates nothing.
func (c *Comm) SendCopy(dst, tag int, data []float64) {
	c.checkUserTag(tag)
	c.p.SendFloatsCopy(c.WorldRank(dst), c.tag(tag), data, len(data)*bytesPerFloat)
}

// Recv receives a []float64 from comm rank src.  Ownership of the returned
// slice transfers to the caller.
func (c *Comm) Recv(src, tag int) []float64 {
	c.checkUserTag(tag)
	return c.p.RecvFloats(c.WorldRank(src), c.tag(tag))
}

// RecvInto receives a []float64 from comm rank src into buf (grown from
// buf[:0] as needed) and returns the filled slice.  The returned slice
// aliases buf's backing array, which the caller owns again once the call
// returns; pairing SendCopy with RecvInto keeps the exchange allocation-free
// at steady state.  Timing is identical to Recv.
func (c *Comm) RecvInto(src, tag int, buf []float64) []float64 {
	c.checkUserTag(tag)
	return c.p.RecvFloatsInto(c.WorldRank(src), c.tag(tag), buf)
}

// SendInts transmits an int slice (bookkeeping metadata, e.g. row plans).
func (c *Comm) SendInts(dst, tag int, data []int) {
	c.checkUserTag(tag)
	c.p.Send(c.WorldRank(dst), c.tag(tag), data, len(data)*8)
}

// RecvInts receives an int slice from comm rank src.
func (c *Comm) RecvInts(src, tag int) []int {
	c.checkUserTag(tag)
	return c.p.Recv(c.WorldRank(src), c.tag(tag)).([]int)
}

func (c *Comm) checkUserTag(tag int) {
	if tag < 0 || tag >= maxUserTag {
		panic(fmt.Sprintf(
			"comm: user tag %d outside [0,%d): tags %d..%d are reserved for collective traffic (barrier/bcast/reduce/gather/alltoall)",
			tag, maxUserTag, maxUserTag, tagSpace-1))
	}
}

// Sendrecv exchanges data with a partner rank in one logical step: it posts
// the send before blocking on the receive, so symmetric pairwise exchanges
// cannot deadlock.  The caller may reuse data immediately.
func (c *Comm) Sendrecv(dst, sendTag int, data []float64, src, recvTag int) []float64 {
	return c.SendrecvInto(dst, sendTag, data, src, recvTag, nil)
}

// SendrecvInto is Sendrecv with a caller-owned receive buffer: the send is a
// pooled copy (data is reusable immediately) and the reply lands in buf via
// RecvInto.  With a persistent buf the steady-state exchange allocates
// nothing.
func (c *Comm) SendrecvInto(dst, sendTag int, data []float64, src, recvTag int, buf []float64) []float64 {
	c.SendCopy(dst, sendTag, data)
	return c.RecvInto(src, recvTag, buf)
}

// Barrier blocks until every rank in the communicator has entered it, using
// a dissemination pattern with ceil(log2 P) rounds.
func (c *Comm) Barrier() {
	n := len(c.world)
	for dist := 1; dist < n; dist *= 2 {
		dst := (c.me + dist) % n
		src := (c.me - dist + n) % n
		c.p.Send(c.WorldRank(dst), c.tag(tagBarrier), nil, 0)
		c.p.Recv(c.WorldRank(src), c.tag(tagBarrier))
	}
}

// Bcast distributes root's buffer to all ranks along a binomial tree and
// returns each rank's copy (root returns data unchanged).
func (c *Comm) Bcast(root int, data []float64) []float64 {
	n := len(c.world)
	if n == 1 {
		return data
	}
	// Rotate so the root is virtual rank 0.
	vrank := (c.me - root + n) % n
	if vrank != 0 {
		src := c.findBcastParent(vrank)
		data = c.p.RecvFloats(c.WorldRank((src+root)%n), c.tag(tagBcast))
	}
	// Forward to children: standard binomial tree on virtual ranks.
	for dist := nextPow2(n); dist >= 1; dist /= 2 {
		if vrank%(2*dist) == 0 && vrank+dist < n {
			c.p.SendFloats(c.WorldRank((vrank+dist+root)%n), c.tag(tagBcast), data, len(data)*bytesPerFloat)
		}
	}
	return data
}

// BcastInto distributes root's buffer to all ranks along the same binomial
// tree as Bcast, but every hop copies: the root passes its data in buf,
// non-roots receive into buf (grown from buf[:0] as needed), and all ranks
// may reuse the returned slice — which they own — immediately.  With
// persistent buffers the steady state allocates nothing.  Timing is
// identical to Bcast.
func (c *Comm) BcastInto(root int, buf []float64) []float64 {
	n := len(c.world)
	if n == 1 {
		return buf
	}
	vrank := (c.me - root + n) % n
	if vrank != 0 {
		src := c.findBcastParent(vrank)
		buf = c.p.RecvFloatsInto(c.WorldRank((src+root)%n), c.tag(tagBcast), buf)
	}
	for dist := nextPow2(n); dist >= 1; dist /= 2 {
		if vrank%(2*dist) == 0 && vrank+dist < n {
			c.p.SendFloatsCopy(c.WorldRank((vrank+dist+root)%n), c.tag(tagBcast), buf, len(buf)*bytesPerFloat)
		}
	}
	return buf
}

// findBcastParent returns the virtual rank that sends to vrank in the
// binomial broadcast tree.
func (c *Comm) findBcastParent(vrank int) int {
	dist := 1
	for vrank%(2*dist) == 0 {
		dist *= 2
	}
	return vrank - dist
}

// nextPow2 returns the largest power of two strictly below 2n that is >= n/1;
// i.e. the highest tree distance used for n ranks.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p / 2
}

// Op is a binary reduction operator over equal-length vectors.
type Op func(dst, src []float64)

// SumOp adds src into dst elementwise.
func SumOp(dst, src []float64) {
	for i, v := range src {
		dst[i] += v
	}
}

// MaxOp keeps the elementwise maximum in dst.
func MaxOp(dst, src []float64) {
	for i, v := range src {
		if v > dst[i] {
			dst[i] = v
		}
	}
}

// MinOp keeps the elementwise minimum in dst.
func MinOp(dst, src []float64) {
	for i, v := range src {
		if v < dst[i] {
			dst[i] = v
		}
	}
}

// Reduce combines every rank's data with op along a binomial tree rooted at
// root.  The root returns the combined vector; other ranks return nil.
// Reduction arithmetic is charged to the virtual clock (one flop per
// element per combine).
func (c *Comm) Reduce(root int, data []float64, op Op) []float64 {
	acc := c.ReduceInto(root, data, make([]float64, 0, len(data)), op)
	if c.me != root {
		return nil
	}
	return acc
}

// ReduceInto is Reduce accumulating into the caller-owned buffer out (grown
// from out[:0] as needed).  The root returns the combined vector, aliasing
// out's backing array; other ranks use out as scratch and return nil.  The
// internal tree stages stage receives in per-Comm scratch and send pooled
// copies, so with a persistent out the steady state allocates nothing.
// Timing is identical to Reduce.
func (c *Comm) ReduceInto(root int, data, out []float64, op Op) []float64 {
	n := len(c.world)
	s := c.scratchBufs()
	acc := append(out[:0], data...)
	vrank := (c.me - root + n) % n
	for dist := 1; dist < n; dist *= 2 {
		if vrank&dist != 0 {
			// This node's subtree is combined; pass it up and exit.
			dst := (vrank - dist + root + n) % n
			c.p.SendFloatsCopy(c.WorldRank(dst), c.tag(tagReduce), acc, len(acc)*bytesPerFloat)
			return nil
		}
		if vrank+dist < n {
			src := (vrank + dist + root) % n
			s.reduce = c.p.RecvFloatsInto(c.WorldRank(src), c.tag(tagReduce), s.reduce)
			op(acc, s.reduce)
			c.p.Compute(float64(len(acc)))
		}
	}
	return acc
}

// Allreduce combines every rank's data with op and returns the result on all
// ranks (reduce to rank 0, then broadcast).
func (c *Comm) Allreduce(data []float64, op Op) []float64 {
	acc := c.Reduce(0, data, op)
	if c.me != 0 {
		acc = nil
	}
	return c.Bcast(0, acc)
}

// AllreduceInto is Allreduce with a caller-owned result buffer: the combined
// vector lands in out (grown from out[:0] as needed) on every rank.  With a
// persistent out the steady state allocates nothing.  Timing is identical to
// Allreduce (same reduce-to-0 + broadcast message pattern).
func (c *Comm) AllreduceInto(data, out []float64, op Op) []float64 {
	res := c.ReduceInto(0, data, out, op)
	if c.me == 0 {
		out = res
	}
	return c.BcastInto(0, out)
}

// AllreduceScalar is a convenience wrapper for single-value reductions.
func (c *Comm) AllreduceScalar(v float64, op Op) float64 {
	return c.Allreduce([]float64{v}, op)[0]
}

// Gather collects equal-length contributions onto root, concatenated in comm
// rank order.  Non-roots return nil.
func (c *Comm) Gather(root int, data []float64) []float64 {
	parts := c.Gatherv(root, data)
	if parts == nil {
		return nil
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]float64, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Gatherv collects variable-length contributions onto root, returned as one
// slice per rank in comm rank order.  Non-roots return nil.
func (c *Comm) Gatherv(root int, data []float64) [][]float64 {
	if c.me != root {
		c.p.SendFloats(c.WorldRank(root), c.tag(tagGatherData), data, len(data)*bytesPerFloat)
		return nil
	}
	parts := make([][]float64, len(c.world))
	for r := range c.world {
		if r == root {
			parts[r] = data
			continue
		}
		parts[r] = c.p.RecvFloats(c.WorldRank(r), c.tag(tagGatherData))
	}
	return parts
}

// GathervInto is Gatherv with caller-owned receive buffers: on the root,
// out[r] (grown from out[r][:0]) receives rank r's contribution and
// out[root] receives a copy of data; non-roots send a pooled copy of data —
// reusable immediately — and return nil.  With persistent buffers the steady
// state allocates nothing.  Timing is identical to Gatherv.
func (c *Comm) GathervInto(root int, data []float64, out [][]float64) [][]float64 {
	if c.me != root {
		c.p.SendFloatsCopy(c.WorldRank(root), c.tag(tagGatherData), data, len(data)*bytesPerFloat)
		return nil
	}
	if len(out) != len(c.world) {
		panic(fmt.Sprintf("comm: GathervInto needs %d buffers, got %d", len(c.world), len(out)))
	}
	for r := range c.world {
		if r == root {
			out[r] = append(out[r][:0], data...)
			continue
		}
		out[r] = c.p.RecvFloatsInto(c.WorldRank(r), c.tag(tagGatherData), out[r])
	}
	return out
}

// Scatterv distributes parts[i] from root to comm rank i and returns each
// rank's part.  Only root may pass non-nil parts.
func (c *Comm) Scatterv(root int, parts [][]float64) []float64 {
	if c.me == root {
		if len(parts) != len(c.world) {
			panic(fmt.Sprintf("comm: Scatterv needs %d parts, got %d", len(c.world), len(parts)))
		}
		for r := range c.world {
			if r == root {
				continue
			}
			c.p.SendFloats(c.WorldRank(r), c.tag(tagGatherData), parts[r], len(parts[r])*bytesPerFloat)
		}
		return parts[root]
	}
	return c.p.RecvFloats(c.WorldRank(root), c.tag(tagGatherData))
}

// ScattervInto is Scatterv with pooled sends and a caller-owned receive
// buffer: the root may reuse every parts[i] immediately, and each rank's
// share lands in buf (grown from buf[:0] as needed).  With persistent
// buffers the steady state allocates nothing.  Timing is identical to
// Scatterv.
func (c *Comm) ScattervInto(root int, parts [][]float64, buf []float64) []float64 {
	if c.me == root {
		if len(parts) != len(c.world) {
			panic(fmt.Sprintf("comm: ScattervInto needs %d parts, got %d", len(c.world), len(parts)))
		}
		for r := range c.world {
			if r == root {
				continue
			}
			c.p.SendFloatsCopy(c.WorldRank(r), c.tag(tagGatherData), parts[r], len(parts[r])*bytesPerFloat)
		}
		return append(buf[:0], parts[root]...)
	}
	return c.p.RecvFloatsInto(c.WorldRank(root), c.tag(tagGatherData), buf)
}

// Alltoallv sends parts[i] to comm rank i and returns the slice received
// from each rank, indexed by source rank.  This is the data-transpose
// primitive used by the FFT filtering module.
func (c *Comm) Alltoallv(parts [][]float64) [][]float64 {
	n := len(c.world)
	if len(parts) != n {
		panic(fmt.Sprintf("comm: Alltoallv needs %d parts, got %d", n, len(parts)))
	}
	out := make([][]float64, n)
	out[c.me] = parts[c.me]
	// Post all sends first (eager), then drain receives: deadlock-free.
	for off := 1; off < n; off++ {
		dst := (c.me + off) % n
		c.p.SendFloats(c.WorldRank(dst), c.tag(tagAlltoall), parts[dst], len(parts[dst])*bytesPerFloat)
	}
	for off := 1; off < n; off++ {
		src := (c.me - off + n) % n
		out[src] = c.p.RecvFloats(c.WorldRank(src), c.tag(tagAlltoall))
	}
	return out
}

// AlltoallvInto is Alltoallv with pooled sends and caller-owned receive
// buffers: out[src] (grown from out[src][:0]) receives rank src's part, the
// local part is copied into out[me], and the caller may reuse every parts[i]
// immediately.  With persistent buffers the steady state allocates nothing.
// Timing is identical to Alltoallv.
func (c *Comm) AlltoallvInto(parts, out [][]float64) [][]float64 {
	n := len(c.world)
	if len(parts) != n {
		panic(fmt.Sprintf("comm: AlltoallvInto needs %d parts, got %d", n, len(parts)))
	}
	if len(out) != n {
		panic(fmt.Sprintf("comm: AlltoallvInto needs %d out buffers, got %d", n, len(out)))
	}
	for off := 1; off < n; off++ {
		dst := (c.me + off) % n
		c.p.SendFloatsCopy(c.WorldRank(dst), c.tag(tagAlltoall), parts[dst], len(parts[dst])*bytesPerFloat)
	}
	out[c.me] = append(out[c.me][:0], parts[c.me]...)
	for off := 1; off < n; off++ {
		src := (c.me - off + n) % n
		out[src] = c.p.RecvFloatsInto(c.WorldRank(src), c.tag(tagAlltoall), out[src])
	}
	return out
}

// RingShift passes data to the next rank around the communicator ring
// (rank+1 mod P) and returns the slice received from the previous rank.
func (c *Comm) RingShift(data []float64) []float64 {
	n := len(c.world)
	next := (c.me + 1) % n
	prev := (c.me - 1 + n) % n
	c.p.SendFloats(c.WorldRank(next), c.tag(tagShift), data, len(data)*bytesPerFloat)
	return c.p.RecvFloats(c.WorldRank(prev), c.tag(tagShift))
}

// RingShiftInto is RingShift with a pooled send and a caller-owned receive
// buffer: data is reusable immediately and the previous rank's slice lands
// in buf (grown from buf[:0] as needed).  With a persistent buf the steady
// state allocates nothing.  Timing is identical to RingShift.
func (c *Comm) RingShiftInto(data, buf []float64) []float64 {
	n := len(c.world)
	next := (c.me + 1) % n
	prev := (c.me - 1 + n) % n
	c.p.SendFloatsCopy(c.WorldRank(next), c.tag(tagShift), data, len(data)*bytesPerFloat)
	return c.p.RecvFloatsInto(c.WorldRank(prev), c.tag(tagShift), buf)
}

// Allgatherv gathers every rank's contribution on every rank (by rank order)
// using a ring pipeline of P-1 steps, matching the original AGCM's ring
// filtering data motion.
func (c *Comm) Allgatherv(data []float64) [][]float64 {
	n := len(c.world)
	out := make([][]float64, n)
	out[c.me] = data
	cur := data
	curSrc := c.me
	for step := 1; step < n; step++ {
		cur = c.RingShift(cur)
		curSrc = (curSrc - 1 + n) % n
		out[curSrc] = cur
	}
	return out
}

// AllgathervInto is Allgatherv with caller-owned receive buffers: rank r's
// contribution lands in out[r] (grown from out[r][:0]), with out[me]
// receiving a copy of data, and the caller may reuse data immediately.  Each
// ring hop forwards a pooled copy, so with persistent buffers the steady
// state allocates nothing.  The message pattern — P-1 hops of each segment
// around the ring — is identical to Allgatherv, and so is the timing.
func (c *Comm) AllgathervInto(data []float64, out [][]float64) [][]float64 {
	n := len(c.world)
	if len(out) != n {
		panic(fmt.Sprintf("comm: AllgathervInto needs %d out buffers, got %d", n, len(out)))
	}
	next := (c.me + 1) % n
	prev := (c.me - 1 + n) % n
	out[c.me] = append(out[c.me][:0], data...)
	cur := data
	curSrc := c.me
	for step := 1; step < n; step++ {
		c.p.SendFloatsCopy(c.WorldRank(next), c.tag(tagShift), cur, len(cur)*bytesPerFloat)
		curSrc = (curSrc - 1 + n) % n
		out[curSrc] = c.p.RecvFloatsInto(c.WorldRank(prev), c.tag(tagShift), out[curSrc])
		cur = out[curSrc]
	}
	return out
}

// AllgathervTree gathers every rank's contribution on every rank via a
// binomial gather to rank 0 followed by a tree broadcast — the paper's
// "binary tree" alternative to the ring for the convolution filter's data
// motion: O(2P) messages moving O(N*P + N*logP) data.
func (c *Comm) AllgathervTree(data []float64) [][]float64 {
	parts := c.Gatherv(0, data)
	var lengths, flat []float64
	if c.me == 0 {
		lengths = make([]float64, len(parts))
		total := 0
		for i, p := range parts {
			lengths[i] = float64(len(p))
			total += len(p)
		}
		flat = make([]float64, 0, total)
		for _, p := range parts {
			flat = append(flat, p...)
		}
	}
	lengths = c.Bcast(0, lengths)
	flat = c.Bcast(0, flat)
	out := make([][]float64, len(c.world))
	off := 0
	for i := range out {
		n := int(lengths[i])
		out[i] = flat[off : off+n]
		off += n
	}
	return out
}
