package diag

import (
	"fmt"
	"strings"

	"agcm/internal/trace"
)

// CommMatrixTable renders a run's communication matrix for a performance
// report: machine-wide traffic totals followed by the topN hottest
// sender/receiver pairs, heaviest first.  It is the human-readable companion
// of trace.CommMatrix's JSON export.
func CommMatrixTable(m *trace.CommMatrix, topN int) string {
	if m == nil {
		return "communication matrix: event log not enabled\n"
	}
	if topN < 1 {
		topN = 1
	}
	var msgs int64
	for _, c := range m.Msgs {
		msgs += c
	}
	var b strings.Builder
	fmt.Fprintf(&b, "communication matrix: %d ranks, %d messages, %.2f MB\n",
		m.Ranks, msgs, float64(m.TotalBytes())/1e6)
	pairs := m.HottestPairs(topN)
	if len(pairs) == 0 {
		b.WriteString("  no off-rank traffic\n")
		return b.String()
	}
	b.WriteString("  hottest pairs:\n")
	for i, p := range pairs {
		fmt.Fprintf(&b, "  %3d. rank %4d -> %-4d  %8d msgs  %10.1f kB\n",
			i+1, p.Src, p.Dst, p.Msgs, float64(p.Bytes)/1e3)
	}
	return b.String()
}
