package diag

import (
	"fmt"
	"math"
	"testing"

	"agcm/internal/comm"
	"agcm/internal/dynamics"
	"agcm/internal/filter"
	"agcm/internal/grid"
	"agcm/internal/machine"
	"agcm/internal/sim"
)

var testSpec = grid.Spec{Nlon: 36, Nlat: 24, Nlayers: 2}

// runDiag integrates steps and returns the diagnostics history from rank 0
// plus the final zonal mean of u.
func runDiag(t *testing.T, py, px, steps int) ([]Global, []float64) {
	t.Helper()
	d, err := grid.NewDecomp(testSpec, py, px)
	if err != nil {
		t.Fatal(err)
	}
	dt := 0.5 * dynamics.CFLTimeStep(testSpec, filter.Strong.CritLat())
	var hist []Global
	var zm []float64
	m := sim.New(py*px, machine.CrayT3D())
	_, err = m.Run(func(p *sim.Proc) error {
		world := comm.World(p)
		cart := comm.NewCart2D(world, py, px)
		l := grid.NewLocal(d, cart.MyRow, cart.MyCol)
		s := dynamics.NewState(l)
		dynamics.InitSolidBody(s, 20, 4)
		dy := dynamics.New(cart, testSpec, l, dt, filter.NewFFT(cart, testSpec, l, true))
		for n := 0; n < steps; n++ {
			g := Compute(world, l, s)
			if world.Rank() == 0 {
				hist = append(hist, g)
			}
			dy.Step(s)
		}
		z := ZonalMean(world, cart, s.U)
		if world.Rank() == 0 {
			zm = z
		} else if z != nil {
			return fmt.Errorf("non-root got zonal mean")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return hist, zm
}

func TestDiagnosticsPhysical(t *testing.T) {
	hist, zm := runDiag(t, 2, 2, 10)
	if len(hist) != 10 {
		t.Fatalf("history %d entries", len(hist))
	}
	g0 := hist[0]
	if g0.Mass <= 0 || g0.KineticEnergy <= 0 || g0.PotentialEnergy <= 0 {
		t.Fatalf("non-positive integrals: %+v", g0)
	}
	if g0.MeanT < 200 || g0.MeanT > 320 {
		t.Fatalf("MeanT = %g K", g0.MeanT)
	}
	if g0.MinH < 1000 || g0.MaxH > 20000 {
		t.Fatalf("thickness bounds [%g, %g]", g0.MinH, g0.MaxH)
	}
	if g0.MaxWind < 15 || g0.MaxWind > 50 {
		t.Fatalf("MaxWind = %g for a 20 m/s jet", g0.MaxWind)
	}
	// Conservation over the short run: mass tight, energy within a
	// fraction of a percent (the filter dissipates a little).
	last := hist[len(hist)-1]
	if rel := math.Abs(last.Mass-g0.Mass) / g0.Mass; rel > 1e-6 {
		t.Errorf("mass drifted by %g", rel)
	}
	if rel := math.Abs(last.TotalEnergy()-g0.TotalEnergy()) / g0.TotalEnergy(); rel > 0.01 {
		t.Errorf("energy drifted by %g", rel)
	}
	// Zonal mean of u: westerly jet peaked off the poles, ~cos(lat).
	if len(zm) != testSpec.Nlat {
		t.Fatalf("zonal mean has %d rows", len(zm))
	}
	eq := zm[testSpec.Nlat/2]
	pole := zm[0]
	if eq < pole {
		t.Errorf("zonal-mean u at equator (%g) below polar value (%g)", eq, pole)
	}
	if eq < 10 || eq > 30 {
		t.Errorf("equatorial zonal-mean u = %g for a 20 m/s jet", eq)
	}
}

func TestDiagnosticsDecompositionInvariant(t *testing.T) {
	h1, z1 := runDiag(t, 1, 1, 3)
	h2, z2 := runDiag(t, 3, 2, 3)
	for i := range h1 {
		if math.Abs(h1[i].Mass-h2[i].Mass) > 1e-6*h1[i].Mass {
			t.Fatalf("step %d: mass differs across meshes", i)
		}
		if math.Abs(h1[i].KineticEnergy-h2[i].KineticEnergy) > 1e-6*h1[i].KineticEnergy {
			t.Fatalf("step %d: KE differs across meshes", i)
		}
		if h1[i].MaxWind != h2[i].MaxWind {
			t.Fatalf("step %d: MaxWind differs (max is order-independent)", i)
		}
	}
	for j := range z1 {
		if math.Abs(z1[j]-z2[j]) > 1e-9 {
			t.Fatalf("zonal mean differs at row %d: %g vs %g", j, z1[j], z2[j])
		}
	}
}
