// Package diag computes global diagnostics of the model state in parallel:
// conserved integrals (mass, energy), extrema, and zonal means — the
// quantities an atmospheric scientist watches to judge a simulation's
// health, and the quantities the repository's long-run tests assert on.
package diag

import (
	"math"

	"agcm/internal/comm"
	"agcm/internal/dynamics"
	"agcm/internal/grid"
)

// Global holds machine-wide integrals of the model state, identical on
// every rank after Compute.
type Global struct {
	// Mass is the area-weighted integral of the layer thickness.
	Mass float64
	// KineticEnergy is the integral of 0.5*h*(u^2+v^2).
	KineticEnergy float64
	// PotentialEnergy is the integral of 0.5*g*h^2.
	PotentialEnergy float64
	// MeanT and MeanQ are area-weighted tracer means.
	MeanT, MeanQ float64
	// MaxWind is the largest |u| or |v| anywhere.
	MaxWind float64
	// MaxH and MinH bound the thickness field.
	MaxH, MinH float64
}

// TotalEnergy returns kinetic plus potential energy.
func (g Global) TotalEnergy() float64 { return g.KineticEnergy + g.PotentialEnergy }

// Compute evaluates the global diagnostics for the state.  Collective: all
// ranks call it and receive the same result.
func Compute(world *comm.Comm, local grid.Local, s *dynamics.State) Global {
	spec := local.Decomp.Spec
	var mass, ke, pe, tsum, qsum, wsum float64
	maxWind, maxH := 0.0, math.Inf(-1)
	minH := math.Inf(1)
	for j := 0; j < local.Nlat(); j++ {
		w := spec.CosLatCenter(local.GlobalLat(j))
		for i := 0; i < local.Nlon(); i++ {
			for k := 0; k < local.Nlayers(); k++ {
				u := s.U.At(j, i, k)
				v := s.V.At(j, i, k)
				h := s.H.At(j, i, k)
				mass += w * h
				ke += w * 0.5 * h * (u*u + v*v)
				pe += w * 0.5 * grid.Gravity * h * h
				tsum += w * s.T.At(j, i, k)
				qsum += w * s.Q.At(j, i, k)
				wsum += w
				if a := math.Abs(u); a > maxWind {
					maxWind = a
				}
				if a := math.Abs(v); a > maxWind {
					maxWind = a
				}
				if h > maxH {
					maxH = h
				}
				if h < minH {
					minH = h
				}
			}
		}
	}
	sums := world.Allreduce([]float64{mass, ke, pe, tsum, qsum, wsum}, comm.SumOp)
	maxes := world.Allreduce([]float64{maxWind, maxH, -minH}, comm.MaxOp)
	return Global{
		Mass:            sums[0],
		KineticEnergy:   sums[1],
		PotentialEnergy: sums[2],
		MeanT:           sums[3] / sums[5],
		MeanQ:           sums[4] / sums[5],
		MaxWind:         maxes[0],
		MaxH:            maxes[1],
		MinH:            -maxes[2],
	}
}

// ZonalMean returns, on world rank 0, the zonal-and-vertical mean of field
// f for every global latitude row ([Nlat] values); other ranks return nil.
// Collective.
func ZonalMean(world *comm.Comm, cart *comm.Cart2D, f *grid.Field) []float64 {
	l := f.Local()
	spec := l.Decomp.Spec
	// Partial sums per local latitude row.
	partial := make([]float64, l.Nlat())
	for j := 0; j < l.Nlat(); j++ {
		var sum float64
		for i := 0; i < l.Nlon(); i++ {
			for k := 0; k < l.Nlayers(); k++ {
				sum += f.At(j, i, k)
			}
		}
		partial[j] = sum
	}
	// Sum across the mesh row (full circles), then gather rows by column.
	rowSums := cart.Row.Allreduce(partial, comm.SumOp)
	var mine []float64
	if cart.Row.Rank() == 0 {
		mine = rowSums
	} else {
		mine = nil // only column 0 contributes upward
	}
	// Gather the latitude strips onto world rank 0 in mesh-row order.
	parts := world.Gatherv(0, mine)
	if parts == nil {
		return nil
	}
	out := make([]float64, spec.Nlat)
	den := float64(spec.Nlon * spec.Nlayers)
	for r, part := range parts {
		if len(part) == 0 {
			continue
		}
		row := r / cart.Px
		lo, _ := l.Decomp.LatRange(row)
		for jj, v := range part {
			out[lo+jj] = v / den
		}
	}
	return out
}
