package diag

import (
	"strings"
	"testing"

	"agcm/internal/sim"
	"agcm/internal/trace"
)

type commModel struct{}

func (commModel) FlopSeconds(n float64) float64         { return n * 1e-6 }
func (commModel) MemSeconds(n float64) float64          { return n * 1e-9 }
func (commModel) SendOverheadSeconds(bytes int) float64 { return 1e-5 }
func (commModel) RecvOverheadSeconds(bytes int) float64 { return 1e-5 }
func (commModel) NetworkSeconds(bytes int) float64      { return 1e-4 + float64(bytes)*1e-8 }

func TestCommMatrixTable(t *testing.T) {
	m := sim.New(3, commModel{})
	m.EnableEventLog()
	res, err := m.Run(func(p *sim.Proc) error {
		if p.Rank() == 0 {
			p.Send(1, 1, []float64{1}, 8000)
			p.Send(2, 1, []float64{1}, 80)
		}
		if p.Rank() != 0 {
			p.Recv(0, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	out := CommMatrixTable(trace.NewCommMatrix(res), 5)
	if !strings.Contains(out, "3 ranks, 2 messages") {
		t.Fatalf("missing totals:\n%s", out)
	}
	// The heavy pair leads the listing.
	lines := strings.Split(out, "\n")
	var first string
	for _, l := range lines {
		if strings.Contains(l, "1.") {
			first = l
			break
		}
	}
	if !strings.Contains(first, "rank    0 -> 1") {
		t.Fatalf("hottest pair not first:\n%s", out)
	}
	if got := CommMatrixTable(nil, 5); !strings.Contains(got, "not enabled") {
		t.Fatalf("nil matrix message wrong: %q", got)
	}
}
