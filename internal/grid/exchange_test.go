package grid

import (
	"fmt"
	"math/rand"
	"testing"

	"agcm/internal/comm"
	"agcm/internal/sim"
)

type flatModel struct{}

func (flatModel) FlopSeconds(n float64) float64         { return n * 1e-7 }
func (flatModel) MemSeconds(n float64) float64          { return n * 1e-9 }
func (flatModel) SendOverheadSeconds(bytes int) float64 { return 1e-5 }
func (flatModel) RecvOverheadSeconds(bytes int) float64 { return 1e-5 }
func (flatModel) NetworkSeconds(bytes int) float64      { return 1e-4 + float64(bytes)*1e-8 }

// globalValue is the test pattern: a unique value per (global j, i, k).
func globalValue(j, i, k int) float64 {
	return float64(j*100000 + i*100 + k)
}

// runMesh executes body on a py*px machine with a cart topology.
func runMesh(t *testing.T, py, px int, spec Spec, body func(world *comm.Comm, cart *comm.Cart2D, l Local) error) {
	t.Helper()
	d, err := NewDecomp(spec, py, px)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.New(py*px, flatModel{})
	_, err = m.Run(func(p *sim.Proc) error {
		world := comm.World(p)
		cart := comm.NewCart2D(world, py, px)
		return body(world, cart, NewLocal(d, cart.MyRow, cart.MyCol))
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchangeHalosAllMeshes(t *testing.T) {
	spec := Spec{Nlon: 12, Nlat: 10, Nlayers: 2}
	for _, mesh := range [][2]int{{1, 1}, {1, 3}, {2, 1}, {2, 2}, {2, 3}, {5, 4}} {
		py, px := mesh[0], mesh[1]
		t.Run(fmt.Sprintf("%dx%d", py, px), func(t *testing.T) {
			runMesh(t, py, px, spec, func(world *comm.Comm, cart *comm.Cart2D, l Local) error {
				f := NewField(l, 1)
				for j := 0; j < l.Nlat(); j++ {
					for i := 0; i < l.Nlon(); i++ {
						for k := 0; k < 2; k++ {
							f.Set(j, i, k, globalValue(l.GlobalLat(j), l.GlobalLon(i), k))
						}
					}
				}
				ExchangeHalos(cart, f)
				// East/west halos must hold the periodic neighbours.
				for j := 0; j < l.Nlat(); j++ {
					gj := l.GlobalLat(j)
					for k := 0; k < 2; k++ {
						wantW := globalValue(gj, (l.Lon0-1+spec.Nlon)%spec.Nlon, k)
						if got := f.At(j, -1, k); got != wantW {
							return fmt.Errorf("west halo at j=%d k=%d: got %g want %g", j, k, got, wantW)
						}
						wantE := globalValue(gj, l.Lon1%spec.Nlon, k)
						if got := f.At(j, l.Nlon(), k); got != wantE {
							return fmt.Errorf("east halo at j=%d k=%d: got %g want %g", j, k, got, wantE)
						}
					}
				}
				// North/south halos where a neighbour exists.
				for i := 0; i < l.Nlon(); i++ {
					gi := l.GlobalLon(i)
					for k := 0; k < 2; k++ {
						if l.Lat0 > 0 {
							want := globalValue(l.Lat0-1, gi, k)
							if got := f.At(-1, i, k); got != want {
								return fmt.Errorf("south halo at i=%d: got %g want %g", i, got, want)
							}
						}
						if l.Lat1 < spec.Nlat {
							want := globalValue(l.Lat1, gi, k)
							if got := f.At(l.Nlat(), i, k); got != want {
								return fmt.Errorf("north halo at i=%d: got %g want %g", i, got, want)
							}
						}
					}
				}
				return nil
			})
		})
	}
}

func TestExchangeFillsCornerGhostCells(t *testing.T) {
	// The C-grid staggering averages read diagonal-neighbour values
	// (e.g. U at (j+1, i-1)), so corner ghost cells must be correct.
	spec := Spec{Nlon: 12, Nlat: 12, Nlayers: 1}
	runMesh(t, 3, 3, spec, func(world *comm.Comm, cart *comm.Cart2D, l Local) error {
		f := NewField(l, 1)
		for j := 0; j < l.Nlat(); j++ {
			for i := 0; i < l.Nlon(); i++ {
				f.Set(j, i, 0, globalValue(l.GlobalLat(j), l.GlobalLon(i), 0))
			}
		}
		ExchangeHalos(cart, f)
		check := func(j, i int) error {
			gj := l.Lat0 + j
			if gj < 0 || gj >= spec.Nlat {
				return nil // pole-side halo: left to the polar BC
			}
			gi := ((l.Lon0+i)%spec.Nlon + spec.Nlon) % spec.Nlon
			want := globalValue(gj, gi, 0)
			if got := f.At(j, i, 0); got != want {
				return fmt.Errorf("corner (%d,%d): got %g want %g", j, i, got, want)
			}
			return nil
		}
		for _, c := range [][2]int{{-1, -1}, {-1, l.Nlon()}, {l.Nlat(), -1}, {l.Nlat(), l.Nlon()}} {
			if err := check(c[0], c[1]); err != nil {
				return err
			}
		}
		return nil
	})
}

func TestExchangeHalosZeroHaloNoOp(t *testing.T) {
	spec := Spec{Nlon: 8, Nlat: 8, Nlayers: 1}
	runMesh(t, 2, 2, spec, func(world *comm.Comm, cart *comm.Cart2D, l Local) error {
		f := NewField(l, 0)
		ExchangeHalos(cart, f) // must not deadlock or panic
		return nil
	})
}

func TestExchangeMultipleFields(t *testing.T) {
	spec := Spec{Nlon: 8, Nlat: 6, Nlayers: 1}
	runMesh(t, 2, 2, spec, func(world *comm.Comm, cart *comm.Cart2D, l Local) error {
		a := NewField(l, 1)
		b := NewField(l, 1)
		for j := 0; j < l.Nlat(); j++ {
			for i := 0; i < l.Nlon(); i++ {
				a.Set(j, i, 0, globalValue(l.GlobalLat(j), l.GlobalLon(i), 0))
				b.Set(j, i, 0, -globalValue(l.GlobalLat(j), l.GlobalLon(i), 0))
			}
		}
		ExchangeHalos(cart, a, b)
		// Spot-check that each field received its own data.
		wantA := globalValue(l.GlobalLat(0), (l.Lon0-1+spec.Nlon)%spec.Nlon, 0)
		if a.At(0, -1, 0) != wantA {
			return fmt.Errorf("field a west halo wrong")
		}
		if b.At(0, -1, 0) != -wantA {
			return fmt.Errorf("field b west halo wrong (cross-field mixup)")
		}
		return nil
	})
}

func TestGatherScatterPropertyRandomMeshes(t *testing.T) {
	// Property: scatter(gather(f)) == f for random specs and meshes.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		spec := Spec{
			Nlon:    4 + rng.Intn(20),
			Nlat:    4 + rng.Intn(16),
			Nlayers: 1 + rng.Intn(4),
		}
		py := 1 + rng.Intn(4)
		px := 1 + rng.Intn(4)
		if py > spec.Nlat {
			py = spec.Nlat
		}
		if px > spec.Nlon {
			px = spec.Nlon
		}
		runMesh(t, py, px, spec, func(world *comm.Comm, cart *comm.Cart2D, l Local) error {
			f := NewField(l, 1)
			for j := 0; j < l.Nlat(); j++ {
				for i := 0; i < l.Nlon(); i++ {
					for k := 0; k < l.Nlayers(); k++ {
						f.Set(j, i, k, globalValue(l.GlobalLat(j), l.GlobalLon(i), k))
					}
				}
			}
			g := Gather(world, cart, f)
			back := NewField(l, 1)
			Scatter(world, cart, g, back)
			if !f.InteriorEqual(back, 0) {
				return fmt.Errorf("trial %d (%+v mesh %dx%d): round trip differs",
					trial, spec, py, px)
			}
			return nil
		})
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	spec := Spec{Nlon: 12, Nlat: 9, Nlayers: 3}
	for _, mesh := range [][2]int{{1, 1}, {3, 2}, {2, 4}} {
		py, px := mesh[0], mesh[1]
		t.Run(fmt.Sprintf("%dx%d", py, px), func(t *testing.T) {
			runMesh(t, py, px, spec, func(world *comm.Comm, cart *comm.Cart2D, l Local) error {
				f := NewField(l, 1)
				for j := 0; j < l.Nlat(); j++ {
					for i := 0; i < l.Nlon(); i++ {
						for k := 0; k < 3; k++ {
							f.Set(j, i, k, globalValue(l.GlobalLat(j), l.GlobalLon(i), k))
						}
					}
				}
				global := Gather(world, cart, f)
				if world.Rank() == 0 {
					if len(global) != spec.Points() {
						return fmt.Errorf("gathered %d values", len(global))
					}
					for j := 0; j < spec.Nlat; j++ {
						for i := 0; i < spec.Nlon; i++ {
							for k := 0; k < 3; k++ {
								want := globalValue(j, i, k)
								if got := global[(j*spec.Nlon+i)*3+k]; got != want {
									return fmt.Errorf("global[%d,%d,%d] = %g, want %g", j, i, k, got, want)
								}
							}
						}
					}
				} else if global != nil {
					return fmt.Errorf("non-root received global data")
				}
				// Scatter back into a fresh field and compare.
				g := NewField(l, 1)
				Scatter(world, cart, global, g)
				if !f.InteriorEqual(g, 0) {
					return fmt.Errorf("scatter round-trip mismatch on rank %d", world.Rank())
				}
				return nil
			})
		})
	}
}
