package grid

import (
	"fmt"
	"testing"

	"agcm/internal/comm"
)

// TestExchangerAllocFree pins the steady-state allocation count of the ghost
// exchange at zero.  testing.AllocsPerRun counts mallocs process-wide, so
// every rank of the 2x2 mesh must run its rounds allocation-free; the warmup
// rounds grow the Exchanger staging and the transport pools to the working-
// set size first.  AllocsPerRun invokes the measured function runs+1 times,
// so the partner ranks loop exactly runs+1 exchanges to stay matched.
func TestExchangerAllocFree(t *testing.T) {
	spec := Spec{Nlon: 16, Nlat: 12, Nlayers: 3}
	const warm, runs = 5, 30
	runMesh(t, 2, 2, spec, func(world *comm.Comm, cart *comm.Cart2D, l Local) error {
		f := NewField(l, 1)
		g := NewField(l, 1)
		for j := 0; j < l.Nlat(); j++ {
			for i := 0; i < l.Nlon(); i++ {
				for k := 0; k < l.Nlayers(); k++ {
					f.Set(j, i, k, globalValue(l.GlobalLat(j), l.GlobalLon(i), k))
					g.Set(j, i, k, -globalValue(l.GlobalLat(j), l.GlobalLon(i), k))
				}
			}
		}
		ex := NewExchanger(cart)
		fields := []*Field{f, g}
		round := func() {
			ex.Exchange(fields...)
		}
		for i := 0; i < warm; i++ {
			round()
		}
		if world.Rank() == 0 {
			if n := testing.AllocsPerRun(runs, round); n != 0 {
				return fmt.Errorf("Exchange allocated %.1f times per round; want 0", n)
			}
			return nil
		}
		for i := 0; i < runs+1; i++ {
			round()
		}
		return nil
	})
}
