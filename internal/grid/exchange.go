package grid

import (
	"fmt"

	"agcm/internal/comm"
)

// Tags used by the halo exchange and global gather/scatter.
const (
	tagEast = 100 + iota
	tagWest
	tagNorth
	tagSouth
	tagGather
	tagScatter
)

// ExchangeHalos fills the ghost cells of every given field from the
// neighbouring subdomains: periodically in longitude, and up to the mesh
// edges in latitude (pole-side halos are left untouched for the dynamics'
// polar boundary treatment).  Corner ghost cells are filled correctly by
// ordering: the east-west exchange runs first, then the north-south
// exchange ships full-width rows including the freshly filled east-west
// halo columns, so diagonal-neighbour values arrive in two hops — the
// standard trick that avoids eight-way exchanges.
//
// The exchange posts all sends before any receive, so it is deadlock-free
// on any mesh, including meshes of width or height 1 (where the east/west
// exchange degenerates into a local periodic copy).
func ExchangeHalos(cart *comm.Cart2D, fields ...*Field) {
	for _, f := range fields {
		if f.halo == 0 {
			continue
		}
		exchangeEastWest(cart, f)
		exchangeNorthSouth(cart, f)
	}
}

func exchangeEastWest(cart *comm.Cart2D, f *Field) {
	h, nlat, nlon, nl := f.halo, f.local.Nlat(), f.local.Nlon(), f.nl
	if cart.Px == 1 {
		// Periodic wrap within the single subdomain.
		for j := 0; j < nlat; j++ {
			for g := 0; g < h; g++ {
				for k := 0; k < nl; k++ {
					f.Set(j, -1-g, k, f.At(j, nlon-1-g, k))
					f.Set(j, nlon+g, k, f.At(j, g, k))
				}
			}
		}
		return
	}
	row := cart.Row
	east := (cart.MyCol + 1) % cart.Px
	west := (cart.MyCol - 1 + cart.Px) % cart.Px
	pack := func(i0 int) []float64 {
		buf := make([]float64, h*nlat*nl)
		p := 0
		for g := 0; g < h; g++ {
			for j := 0; j < nlat; j++ {
				for k := 0; k < nl; k++ {
					buf[p] = f.At(j, i0+g, k)
					p++
				}
			}
		}
		return buf
	}
	unpack := func(i0 int, buf []float64) {
		p := 0
		for g := 0; g < h; g++ {
			for j := 0; j < nlat; j++ {
				for k := 0; k < nl; k++ {
					f.Set(j, i0+g, k, buf[p])
					p++
				}
			}
		}
	}
	// Send my eastmost interior columns east, westmost west.
	row.Send(east, tagEast, pack(nlon-h))
	row.Send(west, tagWest, pack(0))
	unpack(-h, row.Recv(west, tagEast)) // west neighbour's east edge fills my west halo
	unpack(nlon, row.Recv(east, tagWest))
}

func exchangeNorthSouth(cart *comm.Cart2D, f *Field) {
	h, nlat, nlon, nl := f.halo, f.local.Nlat(), f.local.Nlon(), f.nl
	col := cart.Col
	north := cart.MyRow + 1
	south := cart.MyRow - 1
	// Rows travel at full padded width (-h .. nlon+h) so that corner
	// ghost cells carry the diagonal neighbours' values.
	width := nlon + 2*h
	pack := func(j0 int) []float64 {
		buf := make([]float64, h*width*nl)
		p := 0
		for g := 0; g < h; g++ {
			for i := -h; i < nlon+h; i++ {
				for k := 0; k < nl; k++ {
					buf[p] = f.At(j0+g, i, k)
					p++
				}
			}
		}
		return buf
	}
	unpack := func(j0 int, buf []float64) {
		p := 0
		for g := 0; g < h; g++ {
			for i := -h; i < nlon+h; i++ {
				for k := 0; k < nl; k++ {
					f.Set(j0+g, i, k, buf[p])
					p++
				}
			}
		}
	}
	if north < cart.Py {
		col.Send(north, tagNorth, pack(nlat-h))
	}
	if south >= 0 {
		col.Send(south, tagSouth, pack(0))
	}
	if south >= 0 {
		unpack(-h, col.Recv(south, tagNorth))
	}
	if north < cart.Py {
		unpack(nlat, col.Recv(north, tagSouth))
	}
}

// Gather assembles the global interior of f on world rank 0 and returns it
// flattened as [Nlat][Nlon][Nlayers] (latitude-major, layer innermost).
// Other ranks return nil.
func Gather(world *comm.Comm, cart *comm.Cart2D, f *Field) []float64 {
	d := f.local.Decomp
	mine := make([]float64, f.local.Points())
	p := 0
	for j := 0; j < f.local.Nlat(); j++ {
		for i := 0; i < f.local.Nlon(); i++ {
			for k := 0; k < f.nl; k++ {
				mine[p] = f.At(j, i, k)
				p++
			}
		}
	}
	parts := world.Gatherv(0, mine)
	if parts == nil {
		return nil
	}
	spec := d.Spec
	global := make([]float64, spec.Points())
	for r, part := range parts {
		row, col := r/d.Px, r%d.Px
		lat0, lat1 := d.LatRange(row)
		lon0, lon1 := d.LonRange(col)
		q := 0
		for j := lat0; j < lat1; j++ {
			for i := lon0; i < lon1; i++ {
				for k := 0; k < spec.Nlayers; k++ {
					global[(j*spec.Nlon+i)*spec.Nlayers+k] = part[q]
					q++
				}
			}
		}
	}
	return global
}

// Scatter distributes a global flattened array (layout as returned by
// Gather) from world rank 0 into each rank's field interior.
func Scatter(world *comm.Comm, cart *comm.Cart2D, global []float64, f *Field) {
	d := f.local.Decomp
	spec := d.Spec
	var parts [][]float64
	if world.Rank() == 0 {
		if len(global) != spec.Points() {
			panic(fmt.Sprintf("grid: Scatter global size %d, want %d", len(global), spec.Points()))
		}
		parts = make([][]float64, world.Size())
		for r := range parts {
			row, col := r/d.Px, r%d.Px
			lat0, lat1 := d.LatRange(row)
			lon0, lon1 := d.LonRange(col)
			part := make([]float64, (lat1-lat0)*(lon1-lon0)*spec.Nlayers)
			q := 0
			for j := lat0; j < lat1; j++ {
				for i := lon0; i < lon1; i++ {
					for k := 0; k < spec.Nlayers; k++ {
						part[q] = global[(j*spec.Nlon+i)*spec.Nlayers+k]
						q++
					}
				}
			}
			parts[r] = part
		}
	}
	mine := world.Scatterv(0, parts)
	p := 0
	for j := 0; j < f.local.Nlat(); j++ {
		for i := 0; i < f.local.Nlon(); i++ {
			for k := 0; k < f.nl; k++ {
				f.Set(j, i, k, mine[p])
				p++
			}
		}
	}
}
