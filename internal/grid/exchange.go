package grid

import (
	"fmt"

	"agcm/internal/comm"
)

// Tags used by the halo exchange and global gather/scatter.
const (
	tagEast = 100 + iota
	tagWest
	tagNorth
	tagSouth
	tagGather
	tagScatter
)

// Exchanger owns the reusable pack/unpack buffers for one rank's halo
// exchanges and gather/scatter participation, so the per-step communication
// of a long run is allocation-free at steady state.  Sends are pooled copies
// (comm.SendCopy) and receives land in persistent scratch (comm.RecvInto),
// which also removes any aliasing hazard from buffer reuse.  An Exchanger is
// bound to one rank's cart and must only be used from that rank's goroutine.
type Exchanger struct {
	cart *comm.Cart2D
	pack []float64   // staging for outgoing halo slabs and interior packs
	recv []float64   // staging for incoming halo slabs
	out  [][]float64 // per-rank receive buffers for GathervInto on the root
}

// NewExchanger creates an exchanger for this rank.  Buffers grow on first
// use to the working-set size and are reused afterwards.
func NewExchanger(cart *comm.Cart2D) *Exchanger {
	return &Exchanger{cart: cart}
}

// growFloats returns buf resized to n elements, reallocating only when the
// capacity is insufficient.  Contents are unspecified.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// ExchangeHalos fills the ghost cells of every given field from the
// neighbouring subdomains: periodically in longitude, and up to the mesh
// edges in latitude (pole-side halos are left untouched for the dynamics'
// polar boundary treatment).  Corner ghost cells are filled correctly by
// ordering: the east-west exchange runs first, then the north-south
// exchange ships full-width rows including the freshly filled east-west
// halo columns, so diagonal-neighbour values arrive in two hops — the
// standard trick that avoids eight-way exchanges.
//
// The exchange posts all sends before any receive, so it is deadlock-free
// on any mesh, including meshes of width or height 1 (where the east/west
// exchange degenerates into a local periodic copy).
//
// ExchangeHalos allocates fresh staging per call; steady-state callers (the
// dynamics step) hold an Exchanger and use its Exchange method instead.
func ExchangeHalos(cart *comm.Cart2D, fields ...*Field) {
	NewExchanger(cart).Exchange(fields...)
}

// Exchange fills the ghost cells of every given field like ExchangeHalos,
// staging all packing and unpacking in the Exchanger's persistent buffers.
func (ex *Exchanger) Exchange(fields ...*Field) {
	for _, f := range fields {
		if f.halo == 0 {
			continue
		}
		ex.exchangeEastWest(f)
		ex.exchangeNorthSouth(f)
	}
}

func (ex *Exchanger) exchangeEastWest(f *Field) {
	cart := ex.cart
	h, nlat, nlon, nl := f.halo, f.local.Nlat(), f.local.Nlon(), f.nl
	if cart.Px == 1 {
		// Periodic wrap within the single subdomain.
		for j := 0; j < nlat; j++ {
			for g := 0; g < h; g++ {
				for k := 0; k < nl; k++ {
					f.Set(j, -1-g, k, f.At(j, nlon-1-g, k))
					f.Set(j, nlon+g, k, f.At(j, g, k))
				}
			}
		}
		return
	}
	row := cart.Row
	east := (cart.MyCol + 1) % cart.Px
	west := (cart.MyCol - 1 + cart.Px) % cart.Px
	pack := func(i0 int) []float64 {
		ex.pack = growFloats(ex.pack, h*nlat*nl)
		p := 0
		for g := 0; g < h; g++ {
			for j := 0; j < nlat; j++ {
				for k := 0; k < nl; k++ {
					ex.pack[p] = f.At(j, i0+g, k)
					p++
				}
			}
		}
		return ex.pack
	}
	unpack := func(i0 int, buf []float64) {
		p := 0
		for g := 0; g < h; g++ {
			for j := 0; j < nlat; j++ {
				for k := 0; k < nl; k++ {
					f.Set(j, i0+g, k, buf[p])
					p++
				}
			}
		}
	}
	// Send my eastmost interior columns east, westmost west.  SendCopy
	// stages a pooled copy, so the single pack buffer is reusable at once.
	row.SendCopy(east, tagEast, pack(nlon-h))
	row.SendCopy(west, tagWest, pack(0))
	// West neighbour's east edge fills my west halo, and vice versa.
	ex.recv = row.RecvInto(west, tagEast, ex.recv)
	unpack(-h, ex.recv)
	ex.recv = row.RecvInto(east, tagWest, ex.recv)
	unpack(nlon, ex.recv)
}

func (ex *Exchanger) exchangeNorthSouth(f *Field) {
	cart := ex.cart
	h, nlat, nlon, nl := f.halo, f.local.Nlat(), f.local.Nlon(), f.nl
	col := cart.Col
	north := cart.MyRow + 1
	south := cart.MyRow - 1
	// Rows travel at full padded width (-h .. nlon+h) so that corner
	// ghost cells carry the diagonal neighbours' values.
	width := nlon + 2*h
	pack := func(j0 int) []float64 {
		ex.pack = growFloats(ex.pack, h*width*nl)
		p := 0
		for g := 0; g < h; g++ {
			for i := -h; i < nlon+h; i++ {
				for k := 0; k < nl; k++ {
					ex.pack[p] = f.At(j0+g, i, k)
					p++
				}
			}
		}
		return ex.pack
	}
	unpack := func(j0 int, buf []float64) {
		p := 0
		for g := 0; g < h; g++ {
			for i := -h; i < nlon+h; i++ {
				for k := 0; k < nl; k++ {
					f.Set(j0+g, i, k, buf[p])
					p++
				}
			}
		}
	}
	if north < cart.Py {
		col.SendCopy(north, tagNorth, pack(nlat-h))
	}
	if south >= 0 {
		col.SendCopy(south, tagSouth, pack(0))
	}
	if south >= 0 {
		ex.recv = col.RecvInto(south, tagNorth, ex.recv)
		unpack(-h, ex.recv)
	}
	if north < cart.Py {
		ex.recv = col.RecvInto(north, tagSouth, ex.recv)
		unpack(nlat, ex.recv)
	}
}

// Gather assembles the global interior of f on world rank 0 and returns it
// flattened as [Nlat][Nlon][Nlayers] (latitude-major, layer innermost).
// Other ranks return nil.
func Gather(world *comm.Comm, cart *comm.Cart2D, f *Field) []float64 {
	return NewExchanger(cart).Gather(world, f)
}

// Gather is the Exchanger form of the package-level Gather: the interior
// pack and the root's per-rank receive staging live in the Exchanger's
// persistent buffers, so only the returned global array is allocated per
// call (and only on the root).
func (ex *Exchanger) Gather(world *comm.Comm, f *Field) []float64 {
	d := f.local.Decomp
	ex.pack = growFloats(ex.pack, f.local.Points())
	p := 0
	for j := 0; j < f.local.Nlat(); j++ {
		for i := 0; i < f.local.Nlon(); i++ {
			for k := 0; k < f.nl; k++ {
				ex.pack[p] = f.At(j, i, k)
				p++
			}
		}
	}
	if world.Rank() == 0 && ex.out == nil {
		ex.out = make([][]float64, world.Size())
	}
	parts := world.GathervInto(0, ex.pack, ex.out)
	if parts == nil {
		return nil
	}
	spec := d.Spec
	global := make([]float64, spec.Points())
	for r, part := range parts {
		row, col := r/d.Px, r%d.Px
		lat0, lat1 := d.LatRange(row)
		lon0, lon1 := d.LonRange(col)
		q := 0
		for j := lat0; j < lat1; j++ {
			for i := lon0; i < lon1; i++ {
				for k := 0; k < spec.Nlayers; k++ {
					global[(j*spec.Nlon+i)*spec.Nlayers+k] = part[q]
					q++
				}
			}
		}
	}
	return global
}

// Scatter distributes a global flattened array (layout as returned by
// Gather) from world rank 0 into each rank's field interior.
func Scatter(world *comm.Comm, cart *comm.Cart2D, global []float64, f *Field) {
	NewExchanger(cart).Scatter(world, global, f)
}

// Scatter is the Exchanger form of the package-level Scatter, staging the
// root's per-rank parts and each rank's share in persistent buffers.
func (ex *Exchanger) Scatter(world *comm.Comm, global []float64, f *Field) {
	d := f.local.Decomp
	spec := d.Spec
	var parts [][]float64
	if world.Rank() == 0 {
		if len(global) != spec.Points() {
			panic(fmt.Sprintf("grid: Scatter global size %d, want %d", len(global), spec.Points()))
		}
		if ex.out == nil {
			ex.out = make([][]float64, world.Size())
		}
		parts = ex.out
		for r := range parts {
			row, col := r/d.Px, r%d.Px
			lat0, lat1 := d.LatRange(row)
			lon0, lon1 := d.LonRange(col)
			parts[r] = growFloats(parts[r], (lat1-lat0)*(lon1-lon0)*spec.Nlayers)
			part := parts[r]
			q := 0
			for j := lat0; j < lat1; j++ {
				for i := lon0; i < lon1; i++ {
					for k := 0; k < spec.Nlayers; k++ {
						part[q] = global[(j*spec.Nlon+i)*spec.Nlayers+k]
						q++
					}
				}
			}
		}
	}
	ex.recv = world.ScattervInto(0, parts, ex.recv)
	mine := ex.recv
	p := 0
	for j := 0; j < f.local.Nlat(); j++ {
		for i := 0; i < f.local.Nlon(); i++ {
			for k := 0; k < f.nl; k++ {
				f.Set(j, i, k, mine[p])
				p++
			}
		}
	}
}
