package grid

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTwoByTwoPointFive(t *testing.T) {
	s := TwoByTwoPointFive(9)
	if s.Nlon != 144 || s.Nlat != 90 || s.Nlayers != 9 {
		t.Fatalf("spec = %+v", s)
	}
	if s.Points() != 144*90*9 {
		t.Fatalf("Points = %d", s.Points())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsDegenerate(t *testing.T) {
	bad := []Spec{{0, 90, 9}, {144, 0, 9}, {144, 90, 0}, {2, 2, 1}}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", s)
		}
	}
}

func TestLatLonGeometry(t *testing.T) {
	s := TwoByTwoPointFive(9)
	if got := s.DLat() * float64(s.Nlat); math.Abs(got-math.Pi) > 1e-12 {
		t.Errorf("latitudes span %g, want pi", got)
	}
	if got := s.DLon() * float64(s.Nlon); math.Abs(got-2*math.Pi) > 1e-12 {
		t.Errorf("longitudes span %g, want 2pi", got)
	}
	// Centres are strictly inside the poles and increase monotonically.
	prev := -math.Pi / 2
	for j := 0; j < s.Nlat; j++ {
		c := s.LatCenter(j)
		if c <= prev || c >= math.Pi/2 {
			t.Fatalf("LatCenter(%d) = %g not monotone in (-pi/2, pi/2)", j, c)
		}
		prev = c
	}
	// Symmetry about the equator.
	for j := 0; j < s.Nlat/2; j++ {
		if d := s.LatCenter(j) + s.LatCenter(s.Nlat-1-j); math.Abs(d) > 1e-12 {
			t.Fatalf("latitude centres not equator-symmetric at j=%d: %g", j, d)
		}
	}
	if s.CosLatEdge(0) != 0 || s.CosLatEdge(s.Nlat) != 0 {
		t.Errorf("pole edges must have cos(lat) = 0")
	}
}

func TestZonalSpacingShrinksTowardPoles(t *testing.T) {
	s := TwoByTwoPointFive(9)
	eq := s.ZonalSpacing(s.Nlat / 2)
	pole := s.ZonalSpacing(0)
	if pole >= eq {
		t.Fatalf("zonal spacing at pole %g not smaller than equator %g", pole, eq)
	}
	if ratio := eq / pole; ratio < 10 {
		t.Fatalf("pole/equator spacing ratio %g too small for a 2-degree grid", ratio)
	}
}

func TestCoriolisSign(t *testing.T) {
	s := TwoByTwoPointFive(9)
	if s.Coriolis(0) >= 0 {
		t.Errorf("southern-hemisphere Coriolis should be negative")
	}
	if s.Coriolis(s.Nlat-1) <= 0 {
		t.Errorf("northern-hemisphere Coriolis should be positive")
	}
}

func TestBlockRangePartitionProperty(t *testing.T) {
	// Property: for any (n, p) the block ranges exactly tile [0, n) in
	// order, and sizes differ by at most 1.
	f := func(nRaw, pRaw uint8) bool {
		n := int(nRaw)%500 + 1
		p := int(pRaw)%32 + 1
		if p > n {
			p = n
		}
		next := 0
		minSize, maxSize := n+1, -1
		for b := 0; b < p; b++ {
			lo, hi := blockRange(n, p, b)
			if lo != next || hi < lo {
				return false
			}
			size := hi - lo
			if size < minSize {
				minSize = size
			}
			if size > maxSize {
				maxSize = size
			}
			next = hi
		}
		return next == n && maxSize-minSize <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecompRanges(t *testing.T) {
	d, err := NewDecomp(TwoByTwoPointFive(9), 8, 30)
	if err != nil {
		t.Fatal(err)
	}
	// 90 rows over 8 procs: sizes 12 or 11.
	total := 0
	for r := 0; r < 8; r++ {
		lo, hi := d.LatRange(r)
		if hi-lo != 11 && hi-lo != 12 {
			t.Errorf("row %d has %d rows", r, hi-lo)
		}
		total += hi - lo
	}
	if total != 90 {
		t.Errorf("latitude rows total %d", total)
	}
	// RowOfLat is the inverse of LatRange.
	for j := 0; j < 90; j++ {
		r := d.RowOfLat(j)
		lo, hi := d.LatRange(r)
		if j < lo || j >= hi {
			t.Fatalf("RowOfLat(%d) = %d has range [%d,%d)", j, r, lo, hi)
		}
	}
}

func TestNewDecompRejectsOversizedMesh(t *testing.T) {
	if _, err := NewDecomp(TwoByTwoPointFive(9), 91, 1); err == nil {
		t.Error("mesh taller than grid accepted")
	}
	if _, err := NewDecomp(TwoByTwoPointFive(9), 1, 145); err == nil {
		t.Error("mesh wider than grid accepted")
	}
	if _, err := NewDecomp(TwoByTwoPointFive(9), 0, 1); err == nil {
		t.Error("zero mesh accepted")
	}
}

func TestLocalView(t *testing.T) {
	d, _ := NewDecomp(TwoByTwoPointFive(9), 3, 4)
	l := NewLocal(d, 1, 2)
	if l.Nlat() <= 0 || l.Nlon() <= 0 {
		t.Fatalf("degenerate local %+v", l)
	}
	if l.GlobalLat(0) != l.Lat0 || l.GlobalLon(l.Nlon()-1) != l.Lon1-1 {
		t.Errorf("global index conversion wrong")
	}
	if l.Points() != l.Nlat()*l.Nlon()*9 {
		t.Errorf("Points = %d", l.Points())
	}
}

func TestFieldIndexingAndColumns(t *testing.T) {
	d, _ := NewDecomp(Spec{Nlon: 8, Nlat: 6, Nlayers: 3}, 1, 1)
	f := NewField(NewLocal(d, 0, 0), 1)
	f.Set(2, 3, 1, 42)
	if got := f.At(2, 3, 1); got != 42 {
		t.Fatalf("At = %g", got)
	}
	f.Add(2, 3, 1, 8)
	if got := f.At(2, 3, 1); got != 50 {
		t.Fatalf("after Add, At = %g", got)
	}
	col := f.Column(2, 3)
	if len(col) != 3 || col[1] != 50 {
		t.Fatalf("Column = %v", col)
	}
	col[0] = 7 // column is a mutable view
	if f.At(2, 3, 0) != 7 {
		t.Fatalf("Column is not a view")
	}
	// Distinct cells map to distinct storage.
	f.Fill(0)
	f.Set(0, 0, 0, 1)
	f.Set(-1, 0, 0, 2) // halo cell
	f.Set(0, -1, 0, 3)
	if f.At(0, 0, 0) != 1 || f.At(-1, 0, 0) != 2 || f.At(0, -1, 0) != 3 {
		t.Fatalf("halo cells alias interior")
	}
}

func TestFieldRowSlice(t *testing.T) {
	d, _ := NewDecomp(Spec{Nlon: 5, Nlat: 4, Nlayers: 2}, 1, 1)
	f := NewField(NewLocal(d, 0, 0), 0)
	want := []float64{1, 2, 3, 4, 5}
	f.SetRowSlice(2, 1, want)
	got := f.RowSlice(2, 1, nil)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RowSlice = %v", got)
		}
	}
	// Other layers untouched.
	if f.At(2, 0, 0) != 0 {
		t.Fatalf("layer 0 polluted")
	}
}

func TestFieldCloneAndEqual(t *testing.T) {
	d, _ := NewDecomp(Spec{Nlon: 6, Nlat: 5, Nlayers: 2}, 1, 1)
	f := NewField(NewLocal(d, 0, 0), 1)
	f.Set(1, 1, 0, 3.25)
	g := f.Clone()
	if !f.InteriorEqual(g, 0) {
		t.Fatalf("clone differs")
	}
	g.Set(1, 1, 0, 3.5)
	if f.InteriorEqual(g, 0.1) {
		t.Fatalf("InteriorEqual ignored difference beyond tol")
	}
	if !f.InteriorEqual(g, 0.3) {
		t.Fatalf("InteriorEqual rejected difference within tol")
	}
	if f.At(1, 1, 0) != 3.25 {
		t.Fatalf("clone shares storage")
	}
}

func TestFieldMaxAbs(t *testing.T) {
	d, _ := NewDecomp(Spec{Nlon: 4, Nlat: 4, Nlayers: 1}, 1, 1)
	f := NewField(NewLocal(d, 0, 0), 1)
	f.Set(0, 0, 0, -9)
	f.Set(3, 3, 0, 4)
	f.Set(-1, -1, 0, -100) // halo must not count
	if got := f.MaxAbs(); got != 9 {
		t.Fatalf("MaxAbs = %g, want 9", got)
	}
}
