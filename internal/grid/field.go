package grid

import "fmt"

// Field is one rank's halo-padded storage for a three-dimensional physical
// variable on its subdomain.  The interior is Nlat x Nlon x Nlayers; a halo
// of ghost rows/columns surrounds it in the horizontal.  The vertical index
// is innermost, so a grid column is contiguous in memory.
type Field struct {
	local Local
	halo  int
	// strides
	nlonP int // padded longitude extent = Nlon + 2*halo
	nl    int
	data  []float64
}

// NewField allocates a zeroed field on subdomain l with the given halo width.
func NewField(l Local, halo int) *Field {
	if halo < 0 {
		panic(fmt.Sprintf("grid: negative halo %d", halo))
	}
	nlatP := l.Nlat() + 2*halo
	nlonP := l.Nlon() + 2*halo
	return &Field{
		local: l,
		halo:  halo,
		nlonP: nlonP,
		nl:    l.Nlayers(),
		data:  make([]float64, nlatP*nlonP*l.Nlayers()),
	}
}

// Local returns the subdomain the field lives on.
func (f *Field) Local() Local { return f.local }

// Halo returns the halo width.
func (f *Field) Halo() int { return f.halo }

// index maps local interior coordinates (j latitude, i longitude, k layer),
// where j and i may extend halo cells outside the interior, to a flat offset.
func (f *Field) index(j, i, k int) int {
	return ((j+f.halo)*f.nlonP+(i+f.halo))*f.nl + k
}

// At returns the value at local interior coordinates (j, i, k).  Halo cells
// are addressed with j in [-halo, Nlat+halo) and i likewise.
func (f *Field) At(j, i, k int) float64 { return f.data[f.index(j, i, k)] }

// Set writes the value at local interior coordinates (j, i, k).
func (f *Field) Set(j, i, k int, v float64) { f.data[f.index(j, i, k)] = v }

// Add accumulates into the value at (j, i, k).
func (f *Field) Add(j, i, k int, v float64) { f.data[f.index(j, i, k)] += v }

// Column returns the contiguous vertical column at (j, i) as a mutable
// slice of length Nlayers.
func (f *Field) Column(j, i int) []float64 {
	base := f.index(j, i, 0)
	return f.data[base : base+f.nl]
}

// RowData returns the padded storage of latitude row j (halo columns
// included) as one contiguous mutable slice: element (i, k) of the row lives
// at offset (i+Halo())*Nlayers + k.  Stencil loops use it to index rows
// directly instead of paying At's offset arithmetic per point.
func (f *Field) RowData(j int) []float64 {
	base := (j + f.halo) * f.nlonP * f.nl
	return f.data[base : base+f.nlonP*f.nl]
}

// Fill sets every interior and halo cell to v.
func (f *Field) Fill(v float64) {
	for idx := range f.data {
		f.data[idx] = v
	}
}

// CopyFrom copies the full padded contents of src, which must have identical
// shape.
func (f *Field) CopyFrom(src *Field) {
	if len(src.data) != len(f.data) || src.halo != f.halo {
		panic("grid: CopyFrom shape mismatch")
	}
	copy(f.data, src.data)
}

// Clone returns a deep copy of the field.
func (f *Field) Clone() *Field {
	g := NewField(f.local, f.halo)
	copy(g.data, f.data)
	return g
}

// InteriorEqual reports whether two fields agree on every interior point to
// within tol, ignoring halos.
func (f *Field) InteriorEqual(g *Field, tol float64) bool {
	if f.local.Nlat() != g.local.Nlat() || f.local.Nlon() != g.local.Nlon() || f.nl != g.nl {
		return false
	}
	for j := 0; j < f.local.Nlat(); j++ {
		for i := 0; i < f.local.Nlon(); i++ {
			for k := 0; k < f.nl; k++ {
				d := f.At(j, i, k) - g.At(j, i, k)
				if d < -tol || d > tol {
					return false
				}
			}
		}
	}
	return true
}

// RowSlice copies interior latitude row j, layer k into dst (length Nlon)
// and returns it; dst may be nil.
func (f *Field) RowSlice(j, k int, dst []float64) []float64 {
	n := f.local.Nlon()
	if dst == nil {
		dst = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		dst[i] = f.At(j, i, k)
	}
	return dst
}

// SetRowSlice writes src (length Nlon) into interior latitude row j, layer k.
func (f *Field) SetRowSlice(j, k int, src []float64) {
	for i, v := range src {
		f.Set(j, i, k, v)
	}
}

// InteriorBytes returns the wire size of the interior in bytes.
func (f *Field) InteriorBytes() int { return f.local.Points() * 8 }

// MaxAbs returns the largest absolute interior value, a cheap stability
// diagnostic.
func (f *Field) MaxAbs() float64 {
	max := 0.0
	for j := 0; j < f.local.Nlat(); j++ {
		for i := 0; i < f.local.Nlon(); i++ {
			for k := 0; k < f.nl; k++ {
				v := f.At(j, i, k)
				if v < 0 {
					v = -v
				}
				if v > max {
					max = v
				}
			}
		}
	}
	return max
}
