// Package grid implements the AGCM's three-dimensional computational grid:
// a uniform longitude-latitude Arakawa C-mesh in the horizontal with a small
// number of vertical layers, its two-dimensional block decomposition over a
// Py x Px processor mesh, halo-padded local field storage, and the
// ghost-point exchange used by the finite-difference dynamics.
//
// Conventions: latitude rows are indexed south to north (j = 0 at the row
// nearest the south pole), longitudes west to east with periodic wraparound,
// and the vertical index k is innermost in memory so that one grid column is
// contiguous — the natural layout for column physics.
package grid

import (
	"fmt"
	"math"
)

// EarthRadius is the planetary radius in metres used for metric terms.
const EarthRadius = 6.371e6

// Gravity is the gravitational acceleration in m/s^2.
const Gravity = 9.80665

// Omega is the Earth's rotation rate in rad/s, for the Coriolis parameter.
const Omega = 7.292e-5

// Spec describes the global grid extents.
type Spec struct {
	// Nlon and Nlat are the numbers of longitude and latitude cells.
	Nlon, Nlat int
	// Nlayers is the number of vertical layers.
	Nlayers int
}

// TwoByTwoPointFive returns the paper's standard 2° x 2.5° horizontal
// resolution (144 x 90 cells) with the given number of layers (the paper
// uses 9- and 15-layer models).
func TwoByTwoPointFive(layers int) Spec {
	return Spec{Nlon: 144, Nlat: 90, Nlayers: layers}
}

// Validate reports an error for degenerate specs.
func (s Spec) Validate() error {
	if s.Nlon < 4 || s.Nlat < 4 || s.Nlayers < 1 {
		return fmt.Errorf("grid: degenerate spec %+v", s)
	}
	return nil
}

// Points returns the total number of grid points Nlon*Nlat*Nlayers.
func (s Spec) Points() int { return s.Nlon * s.Nlat * s.Nlayers }

// DLon returns the longitudinal grid spacing in radians.
func (s Spec) DLon() float64 { return 2 * math.Pi / float64(s.Nlon) }

// DLat returns the latitudinal grid spacing in radians.
func (s Spec) DLat() float64 { return math.Pi / float64(s.Nlat) }

// LatCenter returns the latitude of cell-row j's centre in radians,
// from just north of the south pole (j=0) to just south of the north pole.
func (s Spec) LatCenter(j int) float64 {
	return -math.Pi/2 + (float64(j)+0.5)*s.DLat()
}

// LatEdge returns the latitude of the edge between rows j-1 and j (the
// v-point latitude on the C-grid) in radians; LatEdge(0) is the south pole.
func (s Spec) LatEdge(j int) float64 {
	return -math.Pi/2 + float64(j)*s.DLat()
}

// LonCenter returns the longitude of cell-column i's centre in radians.
func (s Spec) LonCenter(i int) float64 {
	return (float64(i) + 0.5) * s.DLon()
}

// CosLatCenter returns cos(latitude) at row j's centre, the metric factor
// that shrinks zonal grid distances toward the poles.
func (s Spec) CosLatCenter(j int) float64 { return math.Cos(s.LatCenter(j)) }

// CosLatEdge returns cos(latitude) at edge j, clamped to zero at the poles.
func (s Spec) CosLatEdge(j int) float64 {
	c := math.Cos(s.LatEdge(j))
	if j == 0 || j == s.Nlat {
		return 0
	}
	return c
}

// Coriolis returns the Coriolis parameter f = 2*Omega*sin(lat) at row j's
// centre.
func (s Spec) Coriolis(j int) float64 { return 2 * Omega * math.Sin(s.LatCenter(j)) }

// ZonalSpacing returns the physical west-east grid distance in metres at row
// j's centre.  Near the poles this shrinks toward zero — the origin of the
// CFL problem that the spectral filter exists to fix.
func (s Spec) ZonalSpacing(j int) float64 {
	return EarthRadius * s.CosLatCenter(j) * s.DLon()
}

// MeridionalSpacing returns the south-north grid distance in metres.
func (s Spec) MeridionalSpacing() float64 { return EarthRadius * s.DLat() }

// Decomp is a 2-D block decomposition of a Spec over a Py x Px processor
// mesh: Py processor rows in latitude, Px columns in longitude.  Every
// subdomain holds all vertical layers, per the paper's design.
type Decomp struct {
	Spec   Spec
	Py, Px int
}

// NewDecomp validates and builds a decomposition.
func NewDecomp(spec Spec, py, px int) (Decomp, error) {
	if err := spec.Validate(); err != nil {
		return Decomp{}, err
	}
	if py < 1 || px < 1 {
		return Decomp{}, fmt.Errorf("grid: invalid mesh %dx%d", py, px)
	}
	if py > spec.Nlat || px > spec.Nlon {
		return Decomp{}, fmt.Errorf("grid: mesh %dx%d exceeds grid %dx%d",
			py, px, spec.Nlat, spec.Nlon)
	}
	return Decomp{Spec: spec, Py: py, Px: px}, nil
}

// blockRange splits n cells over p blocks, spreading the remainder over the
// leading blocks, and returns the half-open range of block b.
func blockRange(n, p, b int) (lo, hi int) {
	base, rem := n/p, n%p
	lo = b*base + min(b, rem)
	size := base
	if b < rem {
		size++
	}
	return lo, lo + size
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// LatRange returns the half-open global latitude-row range owned by
// processor row `row`.
func (d Decomp) LatRange(row int) (lo, hi int) {
	if row < 0 || row >= d.Py {
		panic(fmt.Sprintf("grid: row %d out of mesh range", row))
	}
	return blockRange(d.Spec.Nlat, d.Py, row)
}

// LonRange returns the half-open global longitude-column range owned by
// processor column `col`.
func (d Decomp) LonRange(col int) (lo, hi int) {
	if col < 0 || col >= d.Px {
		panic(fmt.Sprintf("grid: col %d out of mesh range", col))
	}
	return blockRange(d.Spec.Nlon, d.Px, col)
}

// RowOfLat returns the processor row owning global latitude row j.
func (d Decomp) RowOfLat(j int) int {
	for r := 0; r < d.Py; r++ {
		if lo, hi := d.LatRange(r); j >= lo && j < hi {
			return r
		}
	}
	panic(fmt.Sprintf("grid: latitude %d outside grid", j))
}

// Local describes one rank's subdomain.
type Local struct {
	Decomp   Decomp
	Row, Col int
	// Lat0, Lat1 and Lon0, Lon1 are the global half-open index ranges.
	Lat0, Lat1 int
	Lon0, Lon1 int
}

// NewLocal builds the subdomain view for mesh position (row, col).
func NewLocal(d Decomp, row, col int) Local {
	lat0, lat1 := d.LatRange(row)
	lon0, lon1 := d.LonRange(col)
	return Local{Decomp: d, Row: row, Col: col, Lat0: lat0, Lat1: lat1, Lon0: lon0, Lon1: lon1}
}

// Nlat returns the number of local latitude rows.
func (l Local) Nlat() int { return l.Lat1 - l.Lat0 }

// Nlon returns the number of local longitude columns.
func (l Local) Nlon() int { return l.Lon1 - l.Lon0 }

// Nlayers returns the number of vertical layers (same on every rank).
func (l Local) Nlayers() int { return l.Decomp.Spec.Nlayers }

// Points returns the number of local interior grid points.
func (l Local) Points() int { return l.Nlat() * l.Nlon() * l.Nlayers() }

// GlobalLat converts a local latitude index to a global row index.
func (l Local) GlobalLat(j int) int { return l.Lat0 + j }

// GlobalLon converts a local longitude index to a global column index.
func (l Local) GlobalLon(i int) int { return l.Lon0 + i }
