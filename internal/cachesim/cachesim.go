// Package cachesim implements a set-associative LRU data-cache simulator.
// The paper's single-node experiments (Section 3.4) hinge on cache behaviour
// that 1990s hardware exposed brutally — separate field arrays conflicting
// in a small direct-mapped cache versus a block-interleaved array — and this
// simulator lets the repository reproduce those measurements from the
// machine models' cache geometry rather than from the host CPU.
package cachesim

import "fmt"

// Cache is a set-associative cache with LRU replacement.  Addresses are
// byte addresses; only data placement is modelled (no prefetching or write
// buffers, like the i860 XP and EV4 of the paper's machines).
type Cache struct {
	lineBytes int
	sets      int
	ways      int

	// tags[set*ways+way] holds the line tag; lru holds a per-way stamp.
	tags  []int64
	valid []bool
	lru   []uint64
	clock uint64

	accesses uint64
	misses   uint64
}

// New builds a cache of the given total size, line size and associativity.
func New(sizeBytes, lineBytes, ways int) *Cache {
	if sizeBytes <= 0 || lineBytes <= 0 || ways <= 0 {
		panic(fmt.Sprintf("cachesim: invalid geometry size=%d line=%d ways=%d",
			sizeBytes, lineBytes, ways))
	}
	if sizeBytes%(lineBytes*ways) != 0 {
		panic(fmt.Sprintf("cachesim: size %d not divisible by line*ways=%d",
			sizeBytes, lineBytes*ways))
	}
	sets := sizeBytes / (lineBytes * ways)
	return &Cache{
		lineBytes: lineBytes,
		sets:      sets,
		ways:      ways,
		tags:      make([]int64, sets*ways),
		valid:     make([]bool, sets*ways),
		lru:       make([]uint64, sets*ways),
	}
}

// Access touches one byte address and reports whether it hit.
func (c *Cache) Access(addr int64) bool {
	c.accesses++
	c.clock++
	line := addr / int64(c.lineBytes)
	set := int(line % int64(c.sets))
	base := set * c.ways
	// Hit?
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == line {
			c.lru[base+w] = c.clock
			return true
		}
	}
	// Miss: fill the LRU way.
	c.misses++
	victim := base
	for w := 1; w < c.ways; w++ {
		if !c.valid[base+w] {
			victim = base + w
			break
		}
		if c.lru[base+w] < c.lru[victim] {
			victim = base + w
		}
	}
	c.tags[victim] = line
	c.valid[victim] = true
	c.lru[victim] = c.clock
	return false
}

// AccessRange touches every line covered by [addr, addr+bytes) and returns
// the number of misses.
func (c *Cache) AccessRange(addr int64, bytes int) int {
	misses := 0
	first := addr / int64(c.lineBytes)
	last := (addr + int64(bytes) - 1) / int64(c.lineBytes)
	for line := first; line <= last; line++ {
		if !c.Access(line * int64(c.lineBytes)) {
			misses++
		}
	}
	return misses
}

// Accesses returns the total access count.
func (c *Cache) Accesses() uint64 { return c.accesses }

// Misses returns the total miss count.
func (c *Cache) Misses() uint64 { return c.misses }

// MissRate returns misses/accesses (0 when untouched).
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
	}
	c.clock, c.accesses, c.misses = 0, 0, 0
}

// LineBytes returns the cache line size.
func (c *Cache) LineBytes() int { return c.lineBytes }
