package cachesim

import "testing"

func TestColdMissesThenHits(t *testing.T) {
	c := New(1024, 32, 1)
	if c.Access(0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0) {
		t.Fatal("second access missed")
	}
	if !c.Access(31) {
		t.Fatal("same-line access missed")
	}
	if c.Access(32) {
		t.Fatal("next line hit cold")
	}
	if c.Misses() != 2 || c.Accesses() != 4 {
		t.Fatalf("misses=%d accesses=%d", c.Misses(), c.Accesses())
	}
}

func TestDirectMappedConflict(t *testing.T) {
	// 1024-byte direct-mapped cache with 32-byte lines has 32 sets;
	// addresses 0 and 1024 collide.
	c := New(1024, 32, 1)
	c.Access(0)
	c.Access(1024)
	if c.Access(0) {
		t.Fatal("conflicting line survived in direct-mapped cache")
	}
}

func TestAssociativityResolvesConflict(t *testing.T) {
	c := New(2048, 32, 2) // same 32 sets, but 2-way
	c.Access(0)
	c.Access(2048) // same set, other way
	if !c.Access(0) {
		t.Fatal("2-way cache evicted a line it had room for")
	}
}

func TestLRUReplacement(t *testing.T) {
	c := New(2048, 32, 2)
	c.Access(0)    // way A
	c.Access(2048) // way B
	c.Access(0)    // touch A: B is now LRU
	c.Access(4096) // evicts B
	if !c.Access(0) {
		t.Fatal("LRU evicted the recently used line")
	}
	if c.Access(2048) {
		t.Fatal("LRU kept the least recently used line")
	}
}

func TestMissRateAndReset(t *testing.T) {
	c := New(1024, 32, 1)
	for i := int64(0); i < 8; i++ {
		c.Access(i * 32)
	}
	for i := int64(0); i < 8; i++ {
		c.Access(i * 32)
	}
	if got := c.MissRate(); got != 0.5 {
		t.Fatalf("MissRate = %g, want 0.5", got)
	}
	c.Reset()
	if c.Accesses() != 0 || c.Misses() != 0 {
		t.Fatal("Reset did not clear counters")
	}
	if c.Access(0) {
		t.Fatal("Reset did not clear contents")
	}
	if New(64, 32, 1).MissRate() != 0 {
		t.Fatal("untouched cache MissRate not 0")
	}
}

func TestAccessRange(t *testing.T) {
	c := New(1024, 32, 1)
	if got := c.AccessRange(0, 100); got != 4 { // lines 0..3
		t.Fatalf("AccessRange misses = %d, want 4", got)
	}
	if got := c.AccessRange(0, 100); got != 0 {
		t.Fatalf("warm AccessRange misses = %d, want 0", got)
	}
	// Bytes 30..33 span lines 0 and 1, both warm from above.
	if got := c.AccessRange(30, 4); got != 0 {
		t.Fatalf("AccessRange(30,4) misses = %d, want 0", got)
	}
}

func TestStreamingLargeArrayMissesEveryLine(t *testing.T) {
	c := New(8192, 32, 1)
	// Stream 256 KB: every line cold or evicted before reuse.
	n := 256 * 1024
	misses := 0
	for addr := int64(0); addr < int64(n); addr += 8 {
		if !c.Access(addr) {
			misses++
		}
	}
	want := n / 32
	if misses != want {
		t.Fatalf("streaming misses = %d, want %d", misses, want)
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 32, 1) },
		func() { New(1000, 32, 1) },
		func() { New(1024, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestLineBytes(t *testing.T) {
	if New(1024, 64, 2).LineBytes() != 64 {
		t.Fatal("LineBytes wrong")
	}
}
