package roofline

import (
	"fmt"
	"math"
	"sort"
)

// MAPE returns the mean absolute percentage error of predicted against
// measured, in [0, inf) as a fraction (0.25 = 25%).  Pairs with a zero
// measurement are rejected — a calibration gate must not divide by zero
// silently.
func MAPE(predicted, measured []float64) (float64, error) {
	if len(predicted) != len(measured) || len(predicted) == 0 {
		return 0, fmt.Errorf("roofline: MAPE needs equal non-empty series, got %d and %d",
			len(predicted), len(measured))
	}
	var sum float64
	for i := range measured {
		if measured[i] == 0 {
			return 0, fmt.Errorf("roofline: MAPE undefined for zero measurement at %d", i)
		}
		sum += math.Abs(predicted[i]-measured[i]) / math.Abs(measured[i])
	}
	return sum / float64(len(measured)), nil
}

// Spearman returns the Spearman rank correlation of the two series, with
// average ranks on ties — the gate for "does the model order configurations
// the way the machine does", which is the property a scheduling oracle
// actually needs.  Deterministic: ranks are assigned by a canonical sort.
func Spearman(a, b []float64) (float64, error) {
	if len(a) != len(b) || len(a) < 2 {
		return 0, fmt.Errorf("roofline: Spearman needs two equal series of length >= 2, got %d and %d",
			len(a), len(b))
	}
	ra := ranks(a)
	rb := ranks(b)
	// Pearson correlation of the rank vectors (exact under ties).
	n := float64(len(a))
	var ma, mb float64
	for i := range ra {
		ma += ra[i]
		mb += rb[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range ra {
		da, db := ra[i]-ma, rb[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0, fmt.Errorf("roofline: Spearman undefined for a constant series")
	}
	return cov / math.Sqrt(va*vb), nil
}

// ranks assigns 1-based average ranks, ties sharing the mean of their span.
func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool {
		if xs[idx[i]] != xs[idx[j]] {
			return xs[idx[i]] < xs[idx[j]]
		}
		return idx[i] < idx[j] // deterministic within ties
	})
	r := make([]float64, len(xs))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}
