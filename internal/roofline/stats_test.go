package roofline

import (
	"math"
	"testing"
)

func TestMAPE(t *testing.T) {
	got, err := MAPE([]float64{110, 90}, []float64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.10) > 1e-12 {
		t.Fatalf("MAPE = %g, want 0.10", got)
	}
	perfect, err := MAPE([]float64{3, 7}, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if perfect != 0 {
		t.Fatalf("perfect prediction MAPE = %g", perfect)
	}
	if _, err := MAPE([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("accepted mismatched lengths")
	}
	if _, err := MAPE(nil, nil); err == nil {
		t.Fatal("accepted empty series")
	}
	if _, err := MAPE([]float64{1}, []float64{0}); err == nil {
		t.Fatal("accepted a zero measurement")
	}
}

func TestSpearman(t *testing.T) {
	up := []float64{1, 2, 3, 4, 5}
	scaled := []float64{10, 40, 90, 160, 250} // monotone, nonlinear
	got, err := Spearman(up, scaled)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("monotone series Spearman = %g, want 1", got)
	}
	down := []float64{5, 4, 3, 2, 1}
	got, err = Spearman(up, down)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got+1) > 1e-12 {
		t.Fatalf("reversed series Spearman = %g, want -1", got)
	}
	// Ties take average ranks; correlation stays well-defined and below 1.
	tied, err := Spearman([]float64{1, 1, 2, 3}, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !(tied > 0.9 && tied < 1) {
		t.Fatalf("tied series Spearman = %g, want in (0.9, 1)", tied)
	}
	if _, err := Spearman([]float64{1}, []float64{1}); err == nil {
		t.Fatal("accepted a length-1 series")
	}
	if _, err := Spearman([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Fatal("accepted a constant series")
	}
}

func TestRanksAverageTies(t *testing.T) {
	r := ranks([]float64{10, 20, 10, 30})
	want := []float64{1.5, 3, 1.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
}
