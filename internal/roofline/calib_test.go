package roofline

import (
	"strings"
	"testing"
)

func validCalib() Calib {
	return Calib{
		Name:           "test",
		Aggregate:      AggregateMaxRank,
		FlopsPerSec:    1e9,
		BytesPerSec:    1e10,
		NetBytesPerSec: 1e8,
		NetLatencySec:  1e-6,
		MsgOverheadSec: 2e-6,
		Eff:            Efficiencies{Dynamics: 0.5, Physics: 0.25, FilterConv: 0.8, FilterFFT: 0.1, Network: 0.9},
	}
}

func TestCalibValidate(t *testing.T) {
	if err := validCalib().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*Calib)
	}{
		{"empty name", func(c *Calib) { c.Name = "" }},
		{"bad aggregate", func(c *Calib) { c.Aggregate = "mean" }},
		{"zero flops ceiling", func(c *Calib) { c.FlopsPerSec = 0 }},
		{"negative bandwidth", func(c *Calib) { c.BytesPerSec = -1 }},
		{"zero net bandwidth", func(c *Calib) { c.NetBytesPerSec = 0 }},
		{"negative latency", func(c *Calib) { c.NetLatencySec = -1e-9 }},
		{"negative overhead", func(c *Calib) { c.MsgOverheadSec = -1 }},
		{"zero efficiency", func(c *Calib) { c.Eff.Physics = 0 }},
		{"negative efficiency", func(c *Calib) { c.Eff.Network = -0.5 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := validCalib()
			tc.mut(&c)
			if err := c.Validate(); err == nil {
				t.Fatalf("Validate accepted %s", tc.name)
			}
		})
	}
}

func TestCalibCanonicalJSONRoundTrip(t *testing.T) {
	c := validCalib()
	raw, err := c.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	// Canonical means the field order is fixed by the schema, not the input.
	for _, want := range []string{`"name"`, `"aggregate"`, `"flops_per_sec"`,
		`"bytes_per_sec"`, `"net_bytes_per_sec"`, `"net_latency_s"`,
		`"msg_overhead_s"`, `"efficiency"`} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("canonical JSON missing %s: %s", want, raw)
		}
	}
	back, err := ParseCalib(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back != c {
		t.Fatalf("round trip changed the calib:\n  in  %+v\n  out %+v", c, back)
	}
	raw2, err := back.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(raw2) {
		t.Fatalf("re-encoding is not byte-stable:\n  %s\n  %s", raw, raw2)
	}
}

func TestCalibHashTracksContent(t *testing.T) {
	a := validCalib()
	h1, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("hash not stable: %s vs %s", h1, h2)
	}
	if len(h1) != 64 {
		t.Fatalf("hash is not sha-256 hex: %q", h1)
	}
	b := a
	b.FlopsPerSec *= 2
	h3, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Fatal("different calibs share a hash")
	}
	bad := a
	bad.Name = ""
	if _, err := bad.Hash(); err == nil {
		t.Fatal("Hash accepted an invalid calib")
	}
}

func TestParseCalibRejectsUnknownAndTrailing(t *testing.T) {
	good, err := validCalib().CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	withUnknown := strings.Replace(string(good), `"name"`, `"flop_ceiling":1,"name"`, 1)
	if _, err := ParseCalib([]byte(withUnknown)); err == nil {
		t.Fatal("ParseCalib accepted an unknown field")
	}
	if _, err := ParseCalib(append(append([]byte{}, good...), []byte("{}")...)); err == nil {
		t.Fatal("ParseCalib accepted trailing data")
	}
	if _, err := ParseCalib([]byte(`{"name":"x"}`)); err == nil {
		t.Fatal("ParseCalib accepted an invalid calib")
	}
}

func TestEfficienciesByClass(t *testing.T) {
	e := Efficiencies{Dynamics: 0.1, Physics: 0.2, FilterConv: 0.3, FilterFFT: 0.4, Network: 0.5}
	want := map[string]float64{
		ClassDynamics: 0.1, ClassPhysics: 0.2, ClassFilterConv: 0.3,
		ClassFilterFFT: 0.4, ClassNetwork: 0.5,
	}
	for i, class := range Classes {
		if got := e.ByClass(class); got != want[class] {
			t.Fatalf("ByClass(%s) = %g, want %g", class, got, want[class])
		}
		if got := e.withClass(class, float64(i)+10).ByClass(class); got != float64(i)+10 {
			t.Fatalf("withClass(%s) did not stick", class)
		}
	}
	if got := e.ByClass("unclassified"); got != 1 {
		t.Fatalf("unknown class must charge the raw bound, got eff %g", got)
	}
	if NumClasses != len(Classes) {
		t.Fatalf("NumClasses %d != len(Classes) %d", NumClasses, len(Classes))
	}
}
