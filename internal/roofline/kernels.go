package roofline

import (
	"fmt"
	"math"

	"agcm/internal/core"
	"agcm/internal/fft"
	"agcm/internal/filter"
	"agcm/internal/physics"
)

// Kernel is one phase's per-step operation counts, derived analytically from
// the grid dimensions and decomposition — no simulation is run to produce
// them.  Counts come in two aggregates: the critical-path rank's share (CP*,
// the largest subdomain plus the polar concentration the filter and physics
// create) and the whole machine's total, so one classification serves both
// the distributed machines (which run at the pace of the slowest rank) and
// the host (which executes every rank's work on one clock).
type Kernel struct {
	// Name is the phase ("dynamics", "physics", "filter", "network").
	Name string
	// Class selects the fitted efficiency coefficient.
	Class string

	// Per-step compute counts.
	CPFlops, CPBytes       float64
	TotalFlops, TotalBytes float64

	// Per-step communication counts (zero for pure-compute kernels).
	CPMsgs, CPNetBytes       float64
	TotalMsgs, TotalNetBytes float64
}

// Intensity returns the kernel's arithmetic intensity in flop/byte on the
// critical path — the roofline x-axis.  Kernels left of the machine's ridge
// point (FlopsPerSec/BytesPerSec) are bandwidth-bound; right of it,
// compute-bound.
func (k Kernel) Intensity() float64 {
	if k.CPBytes == 0 {
		return math.Inf(1)
	}
	return k.CPFlops / k.CPBytes
}

// Counts is the full per-step operation inventory of one configuration.
type Counts struct {
	// Steps is the number of charged steps: measured plus warmup, the way
	// the run executes them.
	Steps int
	// Kernels holds the classified phases in fixed order: dynamics,
	// physics, filter, network.  The filter kernel is absent for
	// FilterNone; the network kernel is absent on a single rank.
	Kernels []Kernel
}

// Analytic constants mirroring the simulation's calibrated operation counts
// (dynamics.FlopsPerPoint etc.) and averaging its data-dependent terms
// (daylight fraction, cloud fraction, convection iterations).  Absolute
// accuracy is the fitted efficiencies' job; what these must get right is the
// *shape* — how each kernel's work scales with grid dimensions — so the fit
// can tell the classes apart.
const (
	dynFlopsPerPoint = 590 // dynamics.FlopsPerPoint: full FD suite
	dynBytesPerPoint = 80  // dynamics bytesPerPoint: 10 doubles per point

	// Physics column model, from internal/physics: base + longwave pairs +
	// k-linear terms with nominal daylight 0.5, cloudiness 0.3 and one
	// convective adjustment iteration on average.
	physBaseFlops   = 950
	physLWPairFlops = 63
	physLayerFlops  = 0.5*(256+0.3*162) + 52 + 104 // sw + cloud + pbl + cu
	physBytesPerCol = 200
	physBytesPerLay = 64   // T and Q, ~4 passes of 8 bytes each
	physImbalNone   = 1.35 // critical-path concentration, unbalanced
	physImbalScheme = 1.08 // residual imbalance after load balancing
	filteredVars    = 3    // u, v, h take the strong filter
	haloFieldsPass1 = 5    // u, v, h, t, q
	haloFieldsPass2 = 3    // u, v, h after smoothing
	diffFlopsPerPt  = 16   // tridiagonal forward+back sweep per point
	wordBytes       = 8
)

// CountKernels classifies the configuration's kernels and returns their
// per-step operation counts for measuredSteps measured steps.  It is a pure
// function of the canonicalized config (equal ConfigKeys yield equal counts)
// and errors on the same degenerate inputs PredictCost rejects.
func CountKernels(cfg core.Config, measuredSteps int) (Counts, error) {
	c, err := cfg.Normalized()
	if err != nil {
		return Counts{}, err
	}
	if measuredSteps < 1 {
		return Counts{}, fmt.Errorf("roofline: need at least one measured step")
	}

	nlat, nlon := c.Spec.Nlat, c.Spec.Nlon
	k := float64(c.Spec.Nlayers)
	py, px := c.MeshPy, c.MeshPx
	ranks := float64(py * px)
	rowsMax := math.Ceil(float64(nlat) / float64(py))
	colsMax := math.Ceil(float64(nlon) / float64(px))
	ptsCP := rowsMax * colsMax * k
	ptsTot := float64(c.Spec.Points())
	n := float64(nlon)

	kernels := make([]Kernel, 0, 4)

	// --- Dynamics: the C-grid finite differences, smoothing and leapfrog
	// update.  Perfectly data-parallel: the critical path is simply the
	// largest subdomain.  Low arithmetic intensity (590 flops per 80 bytes
	// ~ 7 flop/byte) keeps it near the ridge point on most machines.
	kernels = append(kernels, Kernel{
		Name: "dynamics", Class: ClassDynamics,
		CPFlops: dynFlopsPerPoint * ptsCP, CPBytes: dynBytesPerPoint * ptsCP,
		TotalFlops: dynFlopsPerPoint * ptsTot, TotalBytes: dynBytesPerPoint * ptsTot,
	})

	// --- Physics: independent columns whose cost is quadratic in the
	// layer count (the longwave pair exchange) — the term that lets the
	// fit separate physics from the point-linear dynamics.  The critical
	// path carries the paper's Section 3.4 imbalance: day/night and
	// convective columns concentrate on some ranks unless a balancing
	// scheme spreads them.
	colFlops := physBaseFlops + physLWPairFlops*k*(k+1)/2 + physLayerFlops*k
	colBytes := physBytesPerCol + physBytesPerLay*k
	cols := float64(nlat * nlon)
	colsCP := rowsMax * colsMax
	imbal := 1.0
	if ranks > 1 {
		if c.PhysicsScheme == physics.None {
			imbal = physImbalNone
		} else {
			imbal = physImbalScheme
		}
	}
	kernels = append(kernels, Kernel{
		Name: "physics", Class: ClassPhysics,
		CPFlops: colFlops * colsCP * imbal, CPBytes: colBytes * colsCP * imbal,
		TotalFlops: colFlops * cols, TotalBytes: colBytes * cols,
	})

	// --- Filter: the polar spectral filter, whatever its variant.  Work
	// lives only on the filtered rows (|lat| >= 45 degrees, about half the
	// grid), which is exactly why the unbalanced variants' critical path
	// concentrates on the polar ranks.  Row counts come from the filter
	// package itself, so the classification matches the simulation row for
	// row.
	strongRows := float64(len(filter.Rows(c.Spec, filter.Strong)))
	// Filtered rows inside the worst (polar) rank's row block.
	rowsCPF := math.Min(rowsMax, math.Ceil(strongRows/2))
	if py == 1 {
		rowsCPF = strongRows
	}
	linesTot := filteredVars * k * strongRows // machine-wide filtered lines
	linesCPRow := filteredVars * k * rowsCPF  // lines owned by the polar rank's rows
	fftLineFlops := 2*fft.Flops(nlon) + 4*n   // forward + inverse + damping
	fftLineBytes := 4 * n * wordBytes         // re/im read+write
	netMsgs, netBytes := 0.0, 0.0             // filter comm, folded into network below
	netMsgsTot, netBytesTot := 0.0, 0.0
	fil := Kernel{Name: "filter"}
	switch c.Filter {
	case core.FilterConvolutionRing, core.FilterConvolutionTree:
		// O(N^2) physical-space convolution: each rank convolves its own
		// colsMax columns against the full gathered circle.
		fil.Class = ClassFilterConv
		fil.CPFlops = linesCPRow * 2 * n * colsMax
		fil.CPBytes = linesCPRow * (n + 2*colsMax) * wordBytes
		fil.TotalFlops = linesTot * 2 * n * n
		fil.TotalBytes = linesTot * (float64(px)*n + 2*n) * wordBytes
		if px > 1 {
			// Ring or tree allgather of each line's slabs.
			hops := float64(px - 1)
			if c.Filter == core.FilterConvolutionTree {
				hops = math.Ceil(math.Log2(float64(px)))
			}
			netMsgs = linesCPRow * hops
			netBytes = linesCPRow * (n - colsMax) * wordBytes
			netMsgsTot = linesTot * float64(px) * hops
			netBytesTot = linesTot * float64(px-1) * n * wordBytes
		}
	case core.FilterFFT:
		// Transpose within each mesh row: the row block's lines spread
		// over its px ranks, but polar rows still beat equatorial ones.
		linesCP := math.Ceil(linesCPRow / float64(px))
		fil.Class = ClassFilterFFT
		fil.CPFlops = linesCP * fftLineFlops
		fil.CPBytes = linesCP * fftLineBytes
		fil.TotalFlops = linesTot * fftLineFlops
		fil.TotalBytes = linesTot * fftLineBytes
		if px > 1 {
			frac := float64(px-1) / float64(px) // share that must move
			netMsgs = 4 * float64(px-1)         // scatter + gather alltoallv
			netBytes = 2 * linesCPRow * colsMax * wordBytes * frac
			netMsgsTot = netMsgs * ranks
			netBytesTot = 2 * linesTot * n * wordBytes * frac
		}
	case core.FilterFFTBalanced:
		// Global redistribution first: every rank transforms an equal
		// share of all filtered lines — the paper's Section 3.3 fix.
		linesCP := math.Ceil(linesTot / ranks)
		fil.Class = ClassFilterFFT
		fil.CPFlops = linesCP * fftLineFlops
		fil.CPBytes = linesCP * fftLineBytes
		fil.TotalFlops = linesTot * fftLineFlops
		fil.TotalBytes = linesTot * fftLineBytes
		if ranks > 1 {
			netMsgs = 4 * (float64(px-1) + float64(py-1))
			// A polar rank ships out nearly all its lines and receives
			// its balanced share back.
			netBytes = (linesCPRow + linesCP) * colsMax * wordBytes
			netMsgsTot = netMsgs * ranks
			netBytesTot = 2 * linesTot * n * wordBytes * (ranks - 1) / ranks
		}
	case core.FilterFFTRowwise:
		// Section 3.2 approach 1: allgather the circles, then every rank
		// of the mesh row redundantly transforms all its rows' lines —
		// the variant the paper rejected because the redundancy does not
		// shrink with px.
		fil.Class = ClassFilterFFT
		fil.CPFlops = linesCPRow * fftLineFlops
		fil.CPBytes = linesCPRow * (fftLineBytes + n*wordBytes)
		fil.TotalFlops = linesTot * fftLineFlops * float64(px)
		fil.TotalBytes = linesTot * (fftLineBytes + n*wordBytes) * float64(px)
		if px > 1 {
			netMsgs = linesCPRow * float64(px-1)
			netBytes = linesCPRow * (n - colsMax) * wordBytes
			netMsgsTot = linesTot * float64(px) * float64(px-1)
			netBytesTot = linesTot * float64(px-1) * n * wordBytes
		}
	case core.FilterPolarDiffusion:
		// Implicit zonal diffusion by the distributed periodic tridiagonal
		// solver: a banded sweep, memory-bound like the dynamics stencils.
		fil.Class = ClassDynamics
		fil.CPFlops = linesCPRow * diffFlopsPerPt * colsMax
		fil.CPBytes = linesCPRow * 3 * colsMax * wordBytes
		fil.TotalFlops = linesTot * diffFlopsPerPt * n
		fil.TotalBytes = linesTot * 3 * n * wordBytes
		if px > 1 {
			// Pipelined reduced-system exchange along the ring.
			netMsgs = 2 * linesCPRow
			netBytes = 4 * linesCPRow * wordBytes
			netMsgsTot = 2 * linesTot * float64(px)
			netBytesTot = 4 * linesTot * float64(px) * wordBytes
		}
	case core.FilterNone:
		fil = Kernel{} // no filter kernel
	default:
		return Counts{}, fmt.Errorf("roofline: unknown filter variant %v", c.Filter)
	}
	if fil.Name != "" {
		kernels = append(kernels, fil)
	}

	// --- Network: the two per-step halo exchanges (5 fields, then 3 after
	// smoothing) plus the barrier and whatever the filter variant moves.
	if ranks > 1 {
		ew, ns := 0.0, 0.0
		if px > 1 {
			ew = 1
		}
		if py > 1 {
			ns = 1
		}
		haloMsgs := 2 * (2*ew + 2*ns) // two exchanges, packed per direction
		haloBytes := float64(haloFieldsPass1+haloFieldsPass2) *
			(2*ns*colsMax + 2*ew*rowsMax) * k * wordBytes
		barrier := 2 * math.Ceil(math.Log2(ranks))
		kernels = append(kernels, Kernel{
			Name: "network", Class: ClassNetwork,
			CPMsgs:        haloMsgs + barrier + netMsgs,
			CPNetBytes:    haloBytes + netBytes,
			TotalMsgs:     (haloMsgs+barrier)*ranks + netMsgsTot,
			TotalNetBytes: haloBytes*ranks + netBytesTot,
		})
	}

	return Counts{Steps: measuredSteps + c.WarmupSteps, Kernels: kernels}, nil
}
