package roofline

import (
	"fmt"
	"math"
	"sort"
)

// Sample is one calibration observation: a configuration's raw per-class
// roofline seconds (RawSeconds, at unit efficiency) against the time the
// machine was actually observed — or simulated — to take.
type Sample struct {
	// Machine and Label identify the observation ("host", "144x90x9/4x4").
	Machine string `json:"machine"`
	Label   string `json:"label"`
	// Raw is the design-matrix row in canonical Classes order.
	Raw [NumClasses]float64 `json:"raw_seconds"`
	// Measured is the observed seconds.
	Measured float64 `json:"measured_seconds"`
}

// FitOptions controls which classes Fit estimates.
type FitOptions struct {
	// Base supplies the efficiency for classes not being fitted (because
	// they are excluded by Classes, have no work in any sample, or come
	// out non-positive).  The zero value means unit efficiency throughout.
	Base Efficiencies
	// Classes, when non-nil, restricts the fit to the named classes; the
	// others keep Base and have their Base-efficiency time subtracted from
	// the observations first.  Nil fits every class with work.
	Classes []string
}

// FitResult is the fitted calibration's efficiency block plus which classes
// the data actually determined.
type FitResult struct {
	Eff Efficiencies
	// FittedClasses lists the classes estimated from the data, canonical
	// order; the rest kept their Base value.
	FittedClasses []string
}

// Fit estimates per-class efficiencies from observations by least squares:
// it models Measured ~ sum_j Raw[j] * beta[j] with beta[j] = 1/eff[j], forms
// the normal equations, and solves them by Gaussian elimination with partial
// pivoting.
//
// The fit is deterministic for any insertion order of samples: the samples
// are first sorted into a canonical order (by machine, label, then the
// numeric fields), and every accumulation runs in that fixed order, so the
// same observation set produces bit-identical coefficients no matter how it
// was assembled.
//
// Efficiencies are physical quantities, so the fit is sign-constrained by an
// active-set loop: classes whose coefficient comes out non-positive or
// non-finite (collinear observations) are dropped back to Base and the
// remaining classes are refitted against the reduced residual.  Dropping
// without refitting would be wrong — a negative coefficient in the
// unconstrained solution is compensated by the others, and keeping their
// values while resetting its own breaks that balance.  Classes whose raw
// column is all zero keep Base as well.
func Fit(samples []Sample, opt FitOptions) (FitResult, error) {
	if len(samples) == 0 {
		return FitResult{}, fmt.Errorf("roofline: fit needs at least one sample")
	}
	base := opt.Base
	if base == (Efficiencies{}) {
		base = Efficiencies{Dynamics: 1, Physics: 1, FilterConv: 1, FilterFFT: 1, Network: 1}
	}

	// Canonical sample order: the determinism anchor.
	ss := append([]Sample(nil), samples...)
	sort.Slice(ss, func(i, j int) bool { return sampleLess(ss[i], ss[j]) })

	// Which classes are candidates, in canonical order.
	want := make(map[string]bool, NumClasses)
	if opt.Classes == nil {
		for _, c := range Classes {
			want[c] = true
		}
	} else {
		for _, c := range opt.Classes {
			want[c] = true
		}
	}
	var cols []int // canonical-order indices of fitted columns
	for j, class := range Classes {
		if !want[class] {
			continue
		}
		nonzero := false
		for _, s := range ss {
			if s.Raw[j] != 0 {
				nonzero = true
				break
			}
		}
		if nonzero {
			cols = append(cols, j)
		}
	}
	if len(cols) == 0 {
		return FitResult{Eff: base}, nil
	}
	if len(ss) < len(cols) {
		return FitResult{}, fmt.Errorf("roofline: %d samples cannot determine %d classes",
			len(ss), len(cols))
	}

	// Active-set loop: solve the unconstrained least squares on the active
	// columns, drop every non-positive coefficient to Base, refit the rest.
	// At most NumClasses rounds; each removal is determined by the canonical
	// column order, so the loop is deterministic.
	for len(cols) > 0 {
		beta, err := fitOnce(ss, cols, base)
		if err != nil {
			return FitResult{}, fmt.Errorf("roofline: fit is singular (collinear samples): %w", err)
		}
		next := cols[:0:0]
		for r, j := range cols {
			if beta[r] > 0 && !math.IsInf(beta[r], 0) && !math.IsNaN(beta[r]) {
				next = append(next, j)
			}
		}
		if len(next) == len(cols) {
			res := FitResult{Eff: base}
			for r, j := range cols {
				res.Eff = res.Eff.withClass(Classes[j], 1/beta[r])
				res.FittedClasses = append(res.FittedClasses, Classes[j])
			}
			return res, nil
		}
		cols = next
	}
	return FitResult{Eff: base}, nil
}

// fitOnce solves the unconstrained normal equations for the given active
// columns, with every inactive class charged at Base and subtracted from the
// observations.
func fitOnce(ss []Sample, cols []int, base Efficiencies) ([]float64, error) {
	// Residual observations: subtract the unfitted classes' Base time.
	y := make([]float64, len(ss))
	for i, s := range ss {
		y[i] = s.Measured
		for j, class := range Classes {
			if !containsInt(cols, j) && s.Raw[j] != 0 {
				y[i] -= s.Raw[j] / base.ByClass(class)
			}
		}
	}

	// Normal equations A beta = b over the sorted samples, fixed order.
	p := len(cols)
	a := make([][]float64, p)
	b := make([]float64, p)
	for r := 0; r < p; r++ {
		a[r] = make([]float64, p)
	}
	for i, s := range ss {
		for r := 0; r < p; r++ {
			xr := s.Raw[cols[r]]
			if xr == 0 {
				continue
			}
			b[r] += xr * y[i]
			for c := 0; c < p; c++ {
				a[r][c] += xr * s.Raw[cols[c]]
			}
		}
	}
	return solve(a, b)
}

// PredictSample returns the fitted model's seconds for one sample row.
func PredictSample(eff Efficiencies, raw [NumClasses]float64) float64 {
	var t float64
	for j, class := range Classes {
		if raw[j] != 0 {
			t += raw[j] / eff.ByClass(class)
		}
	}
	return t
}

// sampleLess is the canonical total order on samples: every field takes part
// so that any permutation of the same multiset sorts identically.
func sampleLess(a, b Sample) bool {
	if a.Machine != b.Machine {
		return a.Machine < b.Machine
	}
	if a.Label != b.Label {
		return a.Label < b.Label
	}
	if a.Measured != b.Measured {
		return a.Measured < b.Measured
	}
	for j := 0; j < NumClasses; j++ {
		if a.Raw[j] != b.Raw[j] {
			return a.Raw[j] < b.Raw[j]
		}
	}
	return false
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// solve performs Gaussian elimination with partial pivoting on a copy of the
// dense system.  Pivot choice is deterministic: the largest absolute value,
// earliest row on ties.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	m := make([][]float64, n)
	for i := range a {
		m[i] = append([]float64(nil), a[i]...)
	}
	x := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		piv, best := -1, 0.0
		for r := col; r < n; r++ {
			if v := math.Abs(m[r][col]); v > best {
				best, piv = v, r
			}
		}
		if piv < 0 || best == 0 {
			return nil, fmt.Errorf("zero pivot at column %d", col)
		}
		m[col], m[piv] = m[piv], m[col]
		x[col], x[piv] = x[piv], x[col]
		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	for col := n - 1; col >= 0; col-- {
		s := x[col]
		for c := col + 1; c < n; c++ {
			s -= m[col][c] * x[c]
		}
		x[col] = s / m[col][col]
	}
	return x, nil
}
