package roofline

import (
	"fmt"
	"math"
	"testing"
)

// synthSamples builds an overdetermined sample set whose measurements are
// generated exactly by trueEff, with machine/label variety so the canonical
// sort has real work to do.  The raw rows come from a tiny deterministic
// LCG — no global randomness, per the package's own determinism contract.
func synthSamples(trueEff Efficiencies, n int) []Sample {
	state := uint64(0x9e3779b97f4a7c15)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return 0.25 + float64(state>>40)/float64(1<<24) // in [0.25, 1.25)
	}
	out := make([]Sample, n)
	for i := range out {
		var s Sample
		s.Machine = fmt.Sprintf("m%d", i%3)
		s.Label = fmt.Sprintf("cfg%02d", i)
		for j := range s.Raw {
			s.Raw[j] = next() * float64(j+1)
		}
		s.Measured = PredictSample(trueEff, s.Raw)
		out[i] = s
	}
	return out
}

// TestFitInsertionOrderBitIdentical is the determinism contract of the
// calibration loop: the same observation multiset must produce bit-identical
// coefficients no matter how it was assembled.  Run under -race in CI.
func TestFitInsertionOrderBitIdentical(t *testing.T) {
	trueEff := Efficiencies{Dynamics: 0.47, Physics: 0.031, FilterConv: 0.8, FilterFFT: 0.12, Network: 0.66}
	base := synthSamples(trueEff, 12)

	ref, err := Fit(base, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}

	perms := map[string]func([]Sample) []Sample{
		"reversed": func(ss []Sample) []Sample {
			out := make([]Sample, len(ss))
			for i, s := range ss {
				out[len(ss)-1-i] = s
			}
			return out
		},
		"rotated": func(ss []Sample) []Sample {
			return append(append([]Sample(nil), ss[5:]...), ss[:5]...)
		},
		"interleaved": func(ss []Sample) []Sample {
			var out []Sample
			for i := 0; i < len(ss); i += 2 {
				out = append(out, ss[i])
			}
			for i := 1; i < len(ss); i += 2 {
				out = append(out, ss[i])
			}
			return out
		},
	}
	for name, perm := range perms {
		t.Run(name, func(t *testing.T) {
			got, err := Fit(perm(base), FitOptions{})
			if err != nil {
				t.Fatal(err)
			}
			// Bit-identical, not merely close: == on every coefficient.
			if got.Eff != ref.Eff {
				t.Fatalf("insertion order changed coefficients:\n  ref %+v\n  got %+v", ref.Eff, got.Eff)
			}
		})
	}
}

func TestFitRecoversSyntheticEfficiencies(t *testing.T) {
	trueEff := Efficiencies{Dynamics: 0.5, Physics: 0.04, FilterConv: 0.75, FilterFFT: 0.09, Network: 0.6}
	res, err := Fit(synthSamples(trueEff, 20), FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FittedClasses) != NumClasses {
		t.Fatalf("expected all %d classes fitted, got %v", NumClasses, res.FittedClasses)
	}
	for _, class := range Classes {
		got, want := res.Eff.ByClass(class), trueEff.ByClass(class)
		if math.Abs(got-want) > 1e-9*want {
			t.Fatalf("class %s: fitted %g, want %g", class, got, want)
		}
	}
}

func TestFitZeroColumnKeepsBase(t *testing.T) {
	trueEff := Efficiencies{Dynamics: 0.5, Physics: 0.04, FilterConv: 0.75, FilterFFT: 0.09, Network: 0.6}
	samples := synthSamples(trueEff, 15)
	for i := range samples {
		samples[i].Measured -= samples[i].Raw[NumClasses-1] / trueEff.Network
		samples[i].Raw[NumClasses-1] = 0 // no network work anywhere
	}
	base := Efficiencies{Dynamics: 1, Physics: 1, FilterConv: 1, FilterFFT: 1, Network: 0.123}
	res, err := Fit(samples, FitOptions{Base: base})
	if err != nil {
		t.Fatal(err)
	}
	if res.Eff.Network != base.Network {
		t.Fatalf("all-zero network column must keep Base, got %g", res.Eff.Network)
	}
	for _, class := range res.FittedClasses {
		if class == ClassNetwork {
			t.Fatal("network reported as fitted despite an all-zero column")
		}
	}
}

func TestFitSubsetClassesSubtractsBase(t *testing.T) {
	trueEff := Efficiencies{Dynamics: 0.5, Physics: 0.04, FilterConv: 0.75, FilterFFT: 0.09, Network: 0.6}
	samples := synthSamples(trueEff, 15)
	// Fit only dynamics; supply the true efficiencies of everything else as
	// Base so the residual is exactly the dynamics term.
	res, err := Fit(samples, FitOptions{Base: trueEff, Classes: []string{ClassDynamics}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FittedClasses) != 1 || res.FittedClasses[0] != ClassDynamics {
		t.Fatalf("expected only dynamics fitted, got %v", res.FittedClasses)
	}
	if math.Abs(res.Eff.Dynamics-trueEff.Dynamics) > 1e-9 {
		t.Fatalf("dynamics eff %g, want %g", res.Eff.Dynamics, trueEff.Dynamics)
	}
	if res.Eff.Physics != trueEff.Physics || res.Eff.Network != trueEff.Network {
		t.Fatal("unfitted classes must keep Base")
	}
}

func TestFitSingularAndDegenerate(t *testing.T) {
	if _, err := Fit(nil, FitOptions{}); err == nil {
		t.Fatal("Fit accepted an empty sample set")
	}
	// Two collinear columns: dynamics and physics rows proportional in every
	// sample make the normal equations singular.
	var collinear []Sample
	for i := 0; i < 6; i++ {
		var s Sample
		s.Label = fmt.Sprintf("c%d", i)
		s.Raw[0] = float64(i + 1)
		s.Raw[1] = 2 * float64(i+1)
		s.Measured = s.Raw[0] + s.Raw[1]
		collinear = append(collinear, s)
	}
	if _, err := Fit(collinear, FitOptions{Classes: []string{ClassDynamics, ClassPhysics}}); err == nil {
		t.Fatal("Fit accepted collinear samples")
	}
	// More fitted columns than samples.
	few := synthSamples(Efficiencies{Dynamics: 1, Physics: 1, FilterConv: 1, FilterFFT: 1, Network: 1}, 3)
	if _, err := Fit(few, FitOptions{}); err == nil {
		t.Fatal("Fit accepted fewer samples than coefficients")
	}
}

func TestFitNonPositiveCoefficientFallsBack(t *testing.T) {
	// A negative correlation drives beta negative; the class must fall back
	// to Base instead of emitting a negative efficiency.
	samples := []Sample{
		{Label: "a", Raw: [NumClasses]float64{1, 0, 0, 0, 0}, Measured: -1},
		{Label: "b", Raw: [NumClasses]float64{2, 0, 0, 0, 0}, Measured: -2},
	}
	base := Efficiencies{Dynamics: 0.33, Physics: 1, FilterConv: 1, FilterFFT: 1, Network: 1}
	res, err := Fit(samples, FitOptions{Base: base})
	if err != nil {
		t.Fatal(err)
	}
	if res.Eff.Dynamics != base.Dynamics {
		t.Fatalf("negative beta must keep Base, got %g", res.Eff.Dynamics)
	}
	if len(res.FittedClasses) != 0 {
		t.Fatalf("no class should count as fitted, got %v", res.FittedClasses)
	}
}
