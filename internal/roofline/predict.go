package roofline

import (
	"fmt"

	"agcm/internal/core"
)

// PhaseTime is one kernel's predicted time and which ceiling bound it.
type PhaseTime struct {
	Name    string  `json:"name"`
	Class   string  `json:"class"`
	Seconds float64 `json:"seconds"` // per step, after efficiency scaling
	// Bound is "flops", "memory" or "network" — which roofline ceiling the
	// kernel hit.
	Bound string `json:"bound"`
	// Intensity is the kernel's arithmetic intensity in flop/byte (0 for
	// the network kernel).
	Intensity float64 `json:"intensity"`
}

// Prediction is a machine's predicted cost breakdown for one configuration.
type Prediction struct {
	Machine     string      `json:"machine"`
	Steps       int         `json:"steps"` // charged steps (measured + warmup)
	Phases      []PhaseTime `json:"phases"`
	StepSeconds float64     `json:"step_seconds"`
	Seconds     float64     `json:"seconds"` // StepSeconds * Steps
}

// Machine predicts run times from a calibration.  It implements
// core.CostOracle, so it can drive the sjf scheduler and the workload
// simulator directly.
type Machine struct {
	calib Calib
	name  string
}

// NewMachine validates the calibration and returns its predictor.
func NewMachine(c Calib) (*Machine, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &Machine{calib: c, name: "roofline:" + c.Name}, nil
}

// Calib returns the machine's calibration.
func (m *Machine) Calib() Calib { return m.calib }

// Name implements core.CostOracle.
func (m *Machine) Name() string { return m.name }

// Predict returns the per-phase and end-to-end predicted time of running cfg
// for measuredSteps measured steps on this machine: each compute kernel is
// charged max(flops/peak, bytes/bandwidth), the network kernel is charged
// messages*(latency+overhead) + bytes/injection, and each charge is divided
// by the fitted efficiency of its class.
func (m *Machine) Predict(cfg core.Config, measuredSteps int) (*Prediction, error) {
	counts, err := CountKernels(cfg, measuredSteps)
	if err != nil {
		return nil, err
	}
	c := m.calib
	pred := &Prediction{Machine: c.Name, Steps: counts.Steps}
	for _, k := range counts.Kernels {
		flops, bytes := k.CPFlops, k.CPBytes
		msgs, netBytes := k.CPMsgs, k.CPNetBytes
		if c.Aggregate == AggregateSum {
			flops, bytes = k.TotalFlops, k.TotalBytes
			msgs, netBytes = k.TotalMsgs, k.TotalNetBytes
		}
		var t float64
		var bound string
		if k.Class == ClassNetwork {
			t = msgs*(c.NetLatencySec+c.MsgOverheadSec) + netBytes/c.NetBytesPerSec
			bound = "network"
		} else {
			ft := flops / c.FlopsPerSec
			bt := bytes / c.BytesPerSec
			if ft >= bt {
				t, bound = ft, "flops"
			} else {
				t, bound = bt, "memory"
			}
		}
		t /= c.Eff.ByClass(k.Class)
		pred.Phases = append(pred.Phases, PhaseTime{
			Name: k.Name, Class: k.Class, Seconds: t, Bound: bound,
			Intensity: intensityOrZero(k),
		})
		pred.StepSeconds += t
	}
	norm, err := cfg.Normalized()
	if err != nil {
		return nil, err
	}
	if norm.DegradeRank >= 0 {
		// The degraded rank is the critical path, exactly as in the
		// simulation and the linear oracle.
		pred.StepSeconds *= norm.DegradeFactor
	}
	pred.Seconds = pred.StepSeconds * float64(pred.Steps)
	return pred, nil
}

func intensityOrZero(k Kernel) float64 {
	if k.Class == ClassNetwork || k.CPBytes == 0 {
		return 0
	}
	return k.CPFlops / k.CPBytes
}

// PredictSeconds implements core.CostOracle.
func (m *Machine) PredictSeconds(cfg core.Config, measuredSteps int) (float64, error) {
	p, err := m.Predict(cfg, measuredSteps)
	if err != nil {
		return 0, err
	}
	if p.Seconds <= 0 {
		return 0, fmt.Errorf("roofline: non-positive prediction for %q", m.calib.Name)
	}
	return p.Seconds, nil
}

// RawSeconds returns the per-class predicted seconds at unit efficiency —
// the fit's design-matrix row for one configuration: the observed time is
// modelled as sum over classes of raw[class]/eff[class].  Indexed in
// canonical Classes order.
func RawSeconds(c Calib, cfg core.Config, measuredSteps int) ([NumClasses]float64, error) {
	var raw [NumClasses]float64
	unit := c
	unit.Eff = Efficiencies{Dynamics: 1, Physics: 1, FilterConv: 1, FilterFFT: 1, Network: 1}
	m, err := NewMachine(unit)
	if err != nil {
		return raw, err
	}
	p, err := m.Predict(cfg, measuredSteps)
	if err != nil {
		return raw, err
	}
	for _, ph := range p.Phases {
		for i, class := range Classes {
			if ph.Class == class {
				raw[i] += ph.Seconds * float64(p.Steps)
			}
		}
	}
	// Degradation already scaled StepSeconds inside Predict; recover the
	// per-phase split from the scaled phases, which sum to StepSeconds
	// before degradation only.  Re-scale so the rows sum to p.Seconds.
	var sum float64
	for _, v := range raw {
		sum += v
	}
	if sum > 0 && p.Seconds > 0 {
		scale := p.Seconds / sum
		for i := range raw {
			raw[i] *= scale
		}
	}
	return raw, nil
}
