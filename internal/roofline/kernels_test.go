package roofline

import (
	"reflect"
	"testing"

	"agcm/internal/core"
	"agcm/internal/grid"
	"agcm/internal/machine"
	"agcm/internal/physics"
)

func testConfig(py, px int, f core.FilterVariant) core.Config {
	return core.Config{
		Spec:          grid.Spec{Nlon: 72, Nlat: 46, Nlayers: 9},
		Machine:       machine.Paragon(),
		MeshPy:        py,
		MeshPx:        px,
		Filter:        f,
		PhysicsScheme: physics.None,
	}
}

func kernelByName(t *testing.T, counts Counts, name string) Kernel {
	t.Helper()
	for _, k := range counts.Kernels {
		if k.Name == name {
			return k
		}
	}
	t.Fatalf("no %q kernel in %v", name, counts.Kernels)
	return Kernel{}
}

func TestCountKernelsDeterministic(t *testing.T) {
	cfg := testConfig(2, 4, core.FilterFFTBalanced)
	a, err := CountKernels(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CountKernels(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("CountKernels is not a pure function of the config")
	}
	if a.Steps != 3+2 { // measured + default warmup
		t.Fatalf("Steps = %d, want measured+warmup = 5", a.Steps)
	}
}

func TestCountKernelsDegenerate(t *testing.T) {
	if _, err := CountKernels(testConfig(1, 1, core.FilterFFT), 0); err == nil {
		t.Fatal("accepted zero measured steps")
	}
	if _, err := CountKernels(core.Config{}, 1); err == nil {
		t.Fatal("accepted the zero config")
	}
	bad := testConfig(0, 2, core.FilterFFT)
	if _, err := CountKernels(bad, 1); err == nil {
		t.Fatal("accepted a zero-rank mesh")
	}
}

func TestCountKernelsFilterVariants(t *testing.T) {
	cases := []struct {
		filter    core.FilterVariant
		class     string
		hasFilter bool
	}{
		{core.FilterNone, "", false},
		{core.FilterConvolutionRing, ClassFilterConv, true},
		{core.FilterConvolutionTree, ClassFilterConv, true},
		{core.FilterFFT, ClassFilterFFT, true},
		{core.FilterFFTBalanced, ClassFilterFFT, true},
		{core.FilterFFTRowwise, ClassFilterFFT, true},
		{core.FilterPolarDiffusion, ClassDynamics, true},
	}
	for _, tc := range cases {
		counts, err := CountKernels(testConfig(2, 4, tc.filter), 2)
		if err != nil {
			t.Fatalf("%v: %v", tc.filter, err)
		}
		found := false
		for _, k := range counts.Kernels {
			if k.Name == "filter" {
				found = true
				if k.Class != tc.class {
					t.Errorf("%v: filter class %q, want %q", tc.filter, k.Class, tc.class)
				}
				if k.CPFlops <= 0 || k.TotalFlops < k.CPFlops {
					t.Errorf("%v: implausible filter counts %+v", tc.filter, k)
				}
			}
		}
		if found != tc.hasFilter {
			t.Errorf("%v: filter kernel present=%v, want %v", tc.filter, found, tc.hasFilter)
		}
		// Multi-rank mesh always has the halo-exchange network kernel.
		net := kernelByName(t, counts, "network")
		if net.Class != ClassNetwork || net.CPMsgs <= 0 || net.CPNetBytes <= 0 {
			t.Errorf("%v: implausible network kernel %+v", tc.filter, net)
		}
	}
}

func TestCountKernelsSingleRankHasNoNetwork(t *testing.T) {
	counts, err := CountKernels(testConfig(1, 1, core.FilterFFT), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range counts.Kernels {
		if k.Class == ClassNetwork {
			t.Fatal("single-rank run must not have a network kernel")
		}
		if k.CPFlops != k.TotalFlops {
			t.Fatalf("on one rank CP and total must agree for %s: %g vs %g",
				k.Name, k.CPFlops, k.TotalFlops)
		}
	}
}

func TestCountKernelsScaling(t *testing.T) {
	small, err := CountKernels(testConfig(1, 1, core.FilterFFT), 2)
	if err != nil {
		t.Fatal(err)
	}
	bigCfg := testConfig(1, 1, core.FilterFFT)
	bigCfg.Spec = grid.Spec{Nlon: 144, Nlat: 90, Nlayers: 9}
	big, err := CountKernels(bigCfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"dynamics", "physics", "filter"} {
		ks, kb := kernelByName(t, small, name), kernelByName(t, big, name)
		if kb.TotalFlops <= ks.TotalFlops || kb.TotalBytes <= ks.TotalBytes {
			t.Errorf("%s work did not grow with the grid: %g vs %g flops",
				name, ks.TotalFlops, kb.TotalFlops)
		}
	}
	// Splitting the mesh shrinks the per-rank critical path but not the total.
	whole, err := CountKernels(testConfig(1, 1, core.FilterFFTBalanced), 2)
	if err != nil {
		t.Fatal(err)
	}
	split, err := CountKernels(testConfig(2, 2, core.FilterFFTBalanced), 2)
	if err != nil {
		t.Fatal(err)
	}
	dw, ds := kernelByName(t, whole, "dynamics"), kernelByName(t, split, "dynamics")
	if ds.CPFlops >= dw.CPFlops {
		t.Fatalf("critical-path dynamics did not shrink under decomposition: %g vs %g",
			ds.CPFlops, dw.CPFlops)
	}
	if ds.TotalFlops != dw.TotalFlops {
		t.Fatalf("total dynamics flops changed under decomposition: %g vs %g",
			ds.TotalFlops, dw.TotalFlops)
	}
}

func TestKernelIntensity(t *testing.T) {
	k := Kernel{CPFlops: 700, CPBytes: 100}
	if got := k.Intensity(); got != 7 {
		t.Fatalf("intensity = %g, want 7", got)
	}
	pure := Kernel{CPFlops: 1}
	if got := pure.Intensity(); !(got > 0 && got > 1e300) {
		t.Fatalf("zero-byte kernel should be infinitely compute-bound, got %g", got)
	}
}
