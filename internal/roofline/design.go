package roofline

import (
	"agcm/internal/core"
	"agcm/internal/grid"
	"agcm/internal/machine"
	"agcm/internal/physics"
)

// CalibPoint is one machine-grid calibration configuration: a labelled
// core.Config the observe side runs and the fit side prices.
type CalibPoint struct {
	Label string
	Cfg   core.Config
}

// MachineCalibPoints is the calibration design for a modelled machine: the
// paper's standard 2x2.5x9 FFT+LB runs across the processor-mesh grid, plus
// fit-only decorrelation points.  The mesh sweep alone is nearly collinear —
// every kernel's work shrinks as 1/ranks, so least squares cannot tell the
// classes apart.  The convolution-filter runs give the filter-conv column
// real data and split the filter from the dynamics, and the 5- and 15-layer
// runs split the physics (quadratic in the layer count through the longwave
// pair exchange) from the dynamics (linear).  Eleven points over at most
// four fitted classes keep the residuals honest.
func MachineCalibPoints(m *machine.Model) []CalibPoint {
	mk := func(label string, layers, py, px int, v core.FilterVariant) CalibPoint {
		return CalibPoint{
			Label: label,
			Cfg: core.Config{
				Spec: grid.TwoByTwoPointFive(layers), Machine: m,
				MeshPy: py, MeshPx: px,
				Filter:        v,
				PhysicsScheme: physics.None,
			},
		}
	}
	return []CalibPoint{
		mk("1x1", 9, 1, 1, core.FilterFFTBalanced),
		mk("2x2", 9, 2, 2, core.FilterFFTBalanced),
		mk("4x4", 9, 4, 4, core.FilterFFTBalanced),
		mk("4x8", 9, 4, 8, core.FilterFFTBalanced),
		mk("8x8", 9, 8, 8, core.FilterFFTBalanced),
		mk("8x30", 9, 8, 30, core.FilterFFTBalanced),
		mk("1x1/conv", 9, 1, 1, core.FilterConvolutionRing),
		mk("2x2/conv", 9, 2, 2, core.FilterConvolutionRing),
		mk("4x4/conv", 9, 4, 4, core.FilterConvolutionRing),
		mk("1x1/k5", 5, 1, 1, core.FilterFFTBalanced),
		mk("1x1/k15", 15, 1, 1, core.FilterFFTBalanced),
	}
}

// ComputeClasses are the classes fitted on the machine grid: the network
// constants derive exactly from the machine model the simulation charges, so
// the network efficiency stays at its derived unit value instead of
// absorbing compute error.
var ComputeClasses = []string{ClassDynamics, ClassPhysics, ClassFilterConv, ClassFilterFFT}
