package roofline

import (
	"testing"

	"agcm/internal/machine"
)

func TestFromModelDerivesPaperMachines(t *testing.T) {
	for _, m := range machine.All() {
		c := FromModel(m)
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if c.Name != m.Name || c.Aggregate != AggregateMaxRank {
			t.Fatalf("%s: calib misnamed or wrong aggregate: %+v", m.Name, c)
		}
		if c.FlopsPerSec != m.FlopRate || c.BytesPerSec != m.MemBandwidth ||
			c.NetBytesPerSec != m.Bandwidth || c.NetLatencySec != m.Latency ||
			c.MsgOverheadSec != m.SendOverhead+m.RecvOverhead {
			t.Fatalf("%s: ceilings do not match the linear model: %+v", m.Name, c)
		}
		if c.Eff != (Efficiencies{Dynamics: 1, Physics: 1, FilterConv: 1, FilterFFT: 1, Network: 1}) {
			t.Fatalf("%s: derived calib must start at unit efficiency", m.Name)
		}
	}
}

func TestDefaultHostIsValid(t *testing.T) {
	c := DefaultHost()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Aggregate != AggregateSum {
		t.Fatalf("host must aggregate total work, got %q", c.Aggregate)
	}
	if _, err := NewMachine(c); err != nil {
		t.Fatal(err)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"host", "hostcpu", "Host CPU"} {
		c, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c != DefaultHost() {
			t.Fatalf("%s: expected the fitted host calib, got %+v", name, c)
		}
	}
	c, err := ByName("paragon")
	if err != nil {
		t.Fatal(err)
	}
	if c != FromModel(machine.Paragon()) {
		t.Fatalf("paragon calib diverges from its model: %+v", c)
	}
	if _, err := ByName("cm-5"); err == nil {
		t.Fatal("accepted an unknown machine")
	}
}
