// Package roofline describes machines by a small calibration struct — a
// per-rank flops ceiling, a memory-bandwidth ceiling, network injection
// bandwidth and latency, and per-kernel-class efficiency factors — and
// predicts per-phase and end-to-end AGCM run time as the roofline bound
// max(flops/peak, bytes/bandwidth) scaled by the fitted efficiencies.
//
// Unlike the linear machine models in internal/machine, which are calibrated
// point fits to the paper's 1996 tables and can describe only those three
// computers, a roofline calibration is observable on any machine — including
// the host CPU this process runs on: run benchmarks, fit the efficiency
// coefficients by least squares (Fit, deterministic for any sample insertion
// order), and the fitted Calib predicts configurations it never measured.
// The closed observe → predict → calibrate loop lives in internal/bench
// (Bench10) and `agcmbench -calibrate`; the error it reports (MAPE, rank
// correlation) is gated in CI so model drift fails the build.
//
// Everything in this package is a pure function of its inputs: kernel
// operation counts are derived analytically from grid dimensions, the fit
// sorts its samples into a canonical order before accumulating, and the
// calibration struct has a canonical JSON form (fixed field order, unknown
// fields rejected, SHA-256 hashable) following the core.Config discipline.
package roofline

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Aggregate says how per-rank kernel counts combine into a machine time.
const (
	// AggregateMaxRank charges the critical path: the largest subdomain's
	// counts, the way the distributed machines run (all ranks in parallel,
	// the slowest one sets the pace).
	AggregateMaxRank = "max-rank"
	// AggregateSum charges the whole machine's counts on one clock: the way
	// the host CPU executes the virtual machine, where every rank's work
	// shares the same cores and the wall time tracks the total.
	AggregateSum = "sum"
)

// Efficiencies are the fitted per-kernel-class efficiency factors: the
// fraction of the roofline bound a kernel class actually sustains on the
// machine (an MFU-style number, normally in (0, 1]).  A value above 1 means
// the analytic operation counts overestimate that kernel's work; the fit
// reports what the observations support either way.
type Efficiencies struct {
	Dynamics   float64 `json:"dynamics"`
	Physics    float64 `json:"physics"`
	FilterConv float64 `json:"filter_conv"`
	FilterFFT  float64 `json:"filter_fft"`
	Network    float64 `json:"network"`
}

// Kernel classes, in the canonical coefficient order used by the fit.
const (
	ClassDynamics   = "dynamics"
	ClassPhysics    = "physics"
	ClassFilterConv = "filter-conv"
	ClassFilterFFT  = "filter-fft"
	ClassNetwork    = "network"
)

// Classes lists the kernel classes in canonical (fit coefficient) order.
var Classes = []string{ClassDynamics, ClassPhysics, ClassFilterConv, ClassFilterFFT, ClassNetwork}

// NumClasses is len(Classes), the fit's coefficient count.
const NumClasses = 5

// ByClass returns the efficiency for a kernel class (1 for unknown names, so
// an unclassified kernel is charged the raw roofline bound).
func (e Efficiencies) ByClass(class string) float64 {
	switch class {
	case ClassDynamics:
		return e.Dynamics
	case ClassPhysics:
		return e.Physics
	case ClassFilterConv:
		return e.FilterConv
	case ClassFilterFFT:
		return e.FilterFFT
	case ClassNetwork:
		return e.Network
	}
	return 1
}

// withClass returns a copy with the named class's efficiency replaced.
func (e Efficiencies) withClass(class string, v float64) Efficiencies {
	switch class {
	case ClassDynamics:
		e.Dynamics = v
	case ClassPhysics:
		e.Physics = v
	case ClassFilterConv:
		e.FilterConv = v
	case ClassFilterFFT:
		e.FilterFFT = v
	case ClassNetwork:
		e.Network = v
	}
	return e
}

// Calib is a roofline machine description: the ceilings a perfect kernel
// could reach and the fitted efficiencies real kernels do reach.  It is the
// unit of calibration — small enough to observe on any machine, rich enough
// to predict any AGCM configuration on it.
type Calib struct {
	// Name identifies the machine ("Intel Paragon", "host", ...).
	Name string `json:"name"`
	// Aggregate is AggregateMaxRank (distributed critical path) or
	// AggregateSum (all ranks' work on one clock, the host's view).
	Aggregate string `json:"aggregate"`
	// FlopsPerSec is the per-rank floating-point ceiling in flop/s.
	FlopsPerSec float64 `json:"flops_per_sec"`
	// BytesPerSec is the per-rank memory-bandwidth ceiling in byte/s.
	BytesPerSec float64 `json:"bytes_per_sec"`
	// NetBytesPerSec is the network injection bandwidth in byte/s.
	NetBytesPerSec float64 `json:"net_bytes_per_sec"`
	// NetLatencySec is the per-message network latency in seconds.
	NetLatencySec float64 `json:"net_latency_s"`
	// MsgOverheadSec is the per-message CPU occupancy (send plus receive
	// software overhead) in seconds.
	MsgOverheadSec float64 `json:"msg_overhead_s"`
	// Eff are the fitted per-kernel-class efficiency factors.
	Eff Efficiencies `json:"efficiency"`
}

// Validate reports an error if the calibration cannot price work.
func (c Calib) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("roofline: calib needs a name")
	case c.Aggregate != AggregateMaxRank && c.Aggregate != AggregateSum:
		return fmt.Errorf("roofline: calib %q: aggregate must be %q or %q, got %q",
			c.Name, AggregateMaxRank, AggregateSum, c.Aggregate)
	case c.FlopsPerSec <= 0:
		return fmt.Errorf("roofline: calib %q: flops ceiling must be positive", c.Name)
	case c.BytesPerSec <= 0:
		return fmt.Errorf("roofline: calib %q: bandwidth ceiling must be positive", c.Name)
	case c.NetBytesPerSec <= 0:
		return fmt.Errorf("roofline: calib %q: network bandwidth must be positive", c.Name)
	case c.NetLatencySec < 0 || c.MsgOverheadSec < 0:
		return fmt.Errorf("roofline: calib %q: network overheads must be non-negative", c.Name)
	}
	for _, class := range Classes {
		if c.Eff.ByClass(class) <= 0 {
			return fmt.Errorf("roofline: calib %q: efficiency %s must be positive", c.Name, class)
		}
	}
	return nil
}

// CanonicalJSON returns the calibration's canonical encoding: a fixed field
// set in a fixed order with no omitted fields, so the byte layout is fully
// determined by the values — the same discipline as core.Config.CanonicalJSON,
// and the reason a fitted machine can be committed, diffed, and hashed.
func (c Calib) CanonicalJSON() ([]byte, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(c)
}

// Hash returns the SHA-256 of the canonical encoding as lowercase hex: the
// content address of this machine description.
func (c Calib) Hash() (string, error) {
	raw, err := c.CanonicalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// ParseCalib decodes a calibration from JSON, rejecting unknown fields — a
// misspelled field in a fitted-machine file must fail loudly, not silently
// leave a ceiling at zero.
func ParseCalib(data []byte) (Calib, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var c Calib
	if err := dec.Decode(&c); err != nil {
		return Calib{}, fmt.Errorf("roofline: decoding calib: %w", err)
	}
	if dec.More() {
		return Calib{}, fmt.Errorf("roofline: trailing data after calib")
	}
	if err := c.Validate(); err != nil {
		return Calib{}, err
	}
	return c, nil
}
