package roofline

import (
	"math"
	"testing"

	"agcm/internal/core"
)

func TestNewMachineValidates(t *testing.T) {
	m, err := NewMachine(validCalib())
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "roofline:test" {
		t.Fatalf("oracle name %q", m.Name())
	}
	if m.Calib() != validCalib() {
		t.Fatal("Calib() does not round-trip")
	}
	if _, err := NewMachine(Calib{}); err == nil {
		t.Fatal("NewMachine accepted the zero calib")
	}
}

func TestPredictBreakdown(t *testing.T) {
	m, err := NewMachine(validCalib())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(2, 4, core.FilterFFTBalanced)
	p, err := m.Predict(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Steps != 5 {
		t.Fatalf("charged steps = %d, want 5", p.Steps)
	}
	var sum float64
	for _, ph := range p.Phases {
		if ph.Seconds <= 0 {
			t.Fatalf("phase %s predicted non-positive time", ph.Name)
		}
		switch ph.Class {
		case ClassNetwork:
			if ph.Bound != "network" {
				t.Fatalf("network phase bound %q", ph.Bound)
			}
		default:
			if ph.Bound != "flops" && ph.Bound != "memory" {
				t.Fatalf("compute phase %s bound %q", ph.Name, ph.Bound)
			}
			if ph.Intensity <= 0 {
				t.Fatalf("compute phase %s has no intensity", ph.Name)
			}
		}
		sum += ph.Seconds
	}
	if math.Abs(sum-p.StepSeconds) > 1e-12*p.StepSeconds {
		t.Fatalf("phases sum %g != StepSeconds %g", sum, p.StepSeconds)
	}
	if math.Abs(p.Seconds-p.StepSeconds*float64(p.Steps)) > 1e-12*p.Seconds {
		t.Fatalf("Seconds %g != StepSeconds*Steps %g", p.Seconds, p.StepSeconds*float64(p.Steps))
	}
}

func TestPredictAggregateSumChargesTotalWork(t *testing.T) {
	cp := validCalib()
	sum := cp
	sum.Aggregate = AggregateSum
	mcp, err := NewMachine(cp)
	if err != nil {
		t.Fatal(err)
	}
	msum, err := NewMachine(sum)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(2, 4, core.FilterFFTBalanced)
	pcp, err := mcp.Predict(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	psum, err := msum.Predict(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Eight ranks' total work on one clock must dominate the critical path.
	if psum.Seconds <= pcp.Seconds {
		t.Fatalf("sum aggregate %g not above max-rank %g", psum.Seconds, pcp.Seconds)
	}
}

func TestPredictDegradeFactor(t *testing.T) {
	m, err := NewMachine(validCalib())
	if err != nil {
		t.Fatal(err)
	}
	base := testConfig(2, 2, core.FilterFFT)
	p0, err := m.Predict(base, 2)
	if err != nil {
		t.Fatal(err)
	}
	deg := base
	deg.DegradeRank = 0
	deg.DegradeFactor = 2.5
	p1, err := m.Predict(deg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p1.Seconds-2.5*p0.Seconds) > 1e-9*p1.Seconds {
		t.Fatalf("degraded prediction %g, want %g", p1.Seconds, 2.5*p0.Seconds)
	}
}

func TestPredictSecondsIsACostOracle(t *testing.T) {
	m, err := NewMachine(validCalib())
	if err != nil {
		t.Fatal(err)
	}
	var oracle core.CostOracle = m // compile-time interface check, used below
	s, err := oracle.PredictSeconds(testConfig(1, 1, core.FilterFFT), 2)
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 {
		t.Fatalf("non-positive prediction %g", s)
	}
	if _, err := oracle.PredictSeconds(core.Config{}, 2); err == nil {
		t.Fatal("oracle accepted the zero config")
	}
	if _, err := oracle.PredictSeconds(testConfig(1, 1, core.FilterFFT), 0); err == nil {
		t.Fatal("oracle accepted zero steps")
	}
}

func TestRawSecondsMatchesPrediction(t *testing.T) {
	c := validCalib()
	cfg := testConfig(2, 4, core.FilterFFTBalanced)
	raw, err := RawSeconds(c, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The design-matrix row at the calib's own efficiencies must reproduce
	// the machine's end-to-end prediction: that identity is what makes the
	// fitted model and the predictor the same model.
	m, err := NewMachine(c)
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Predict(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := PredictSample(c.Eff, raw)
	if math.Abs(got-p.Seconds) > 1e-9*p.Seconds {
		t.Fatalf("PredictSample over RawSeconds %g != Predict %g", got, p.Seconds)
	}
	// And with the degrade factor the identity must still hold.
	deg := cfg
	deg.DegradeRank = 1
	deg.DegradeFactor = 3
	rawDeg, err := RawSeconds(c, deg, 2)
	if err != nil {
		t.Fatal(err)
	}
	pDeg, err := m.Predict(deg, 2)
	if err != nil {
		t.Fatal(err)
	}
	gotDeg := PredictSample(c.Eff, rawDeg)
	if math.Abs(gotDeg-pDeg.Seconds) > 1e-9*pDeg.Seconds {
		t.Fatalf("degraded PredictSample %g != Predict %g", gotDeg, pDeg.Seconds)
	}
}
