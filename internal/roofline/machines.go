package roofline

import (
	"fmt"

	"agcm/internal/machine"
)

// FromModel derives a roofline calibration from a linear machine model: the
// model's sustained rates become the ceilings, its message terms become the
// network constants, and the efficiencies start at unit — to be fitted
// against the simulation (Fit) or kept at unit when the linear model itself
// is the ground truth being approximated.
//
// The paper machines execute one rank per node, so the derived calibration
// aggregates on the critical path.
func FromModel(m *machine.Model) Calib {
	return Calib{
		Name:           m.Name,
		Aggregate:      AggregateMaxRank,
		FlopsPerSec:    m.FlopRate,
		BytesPerSec:    m.MemBandwidth,
		NetBytesPerSec: m.Bandwidth,
		NetLatencySec:  m.Latency,
		MsgOverheadSec: m.SendOverhead + m.RecvOverhead,
		Eff:            Efficiencies{Dynamics: 1, Physics: 1, FilterConv: 1, FilterFFT: 1, Network: 1},
	}
}

// DefaultHost returns the host CPU's calibration as fitted by
// `agcmbench -calibrate` on the reference container (the numbers behind the
// committed BENCH_10.json).  Ceilings are measured by the micro-benchmarks
// (one core, scalar Go loops); efficiencies are least-squares fits over the
// phase benchmarks.  Run `agcmbench -calibrate` to refit on the current
// host; this baked-in value is the fallback the `-cost-oracle roofline`
// daemon flag uses when no calibration file is given.
//
// The host executes every simulated rank on one machine, so it aggregates
// total work, not the critical path.
func DefaultHost() Calib {
	return Calib{
		Name:           "host",
		Aggregate:      AggregateSum,
		FlopsPerSec:    3055576277.5083923,
		BytesPerSec:    18946634014.62566,
		NetBytesPerSec: 9473317007.31283,
		NetLatencySec:  0,
		MsgOverheadSec: 1.0e-6,
		Eff: Efficiencies{
			Dynamics:   2.160031516168156,
			Physics:    4.273914344262374,
			FilterConv: 1.813989414417996,
			FilterFFT:  0.3240541741447226,
			Network:    0.11010412802215186,
		},
	}
}

// ByName returns the named machine's calibration: the three paper machines
// (derived from their linear models) or "host" (the reference-fitted
// DefaultHost).  Accepts the same spellings machine.ByName does.
func ByName(name string) (Calib, error) {
	m, err := machine.ByName(name)
	if err != nil {
		return Calib{}, fmt.Errorf("roofline: %w", err)
	}
	if m.Name == machine.Host().Name {
		return DefaultHost(), nil
	}
	return FromModel(m), nil
}
