package gateway

import (
	"sync"
	"time"
)

// BreakerState is one of the circuit breaker's three states.
type BreakerState int

const (
	// BreakerClosed: the backend is trusted; traffic flows.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the backend has failed repeatedly; traffic is ejected
	// until the open interval elapses.
	BreakerOpen
	// BreakerHalfOpen: the open interval elapsed; exactly one probe request
	// is allowed through to decide between readmission and re-ejection.
	BreakerHalfOpen
)

// String returns the state name used in metrics and event logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "invalid"
}

// breaker is a per-backend three-state circuit breaker.  Failures here mean
// transport-level trouble (connection errors, timeouts, 502/503) — a
// deterministic simulation error is the backend doing its job and never
// trips it.
//
// Closed counts consecutive failures and opens at the threshold.  Open
// rejects everything until openFor elapses, then the next Allow transitions
// to half-open and is admitted as the probe.  Half-open admits exactly one
// in-flight probe: success closes the breaker (readmission), failure
// re-opens it for another openFor.
type breaker struct {
	mu        sync.Mutex
	state     BreakerState
	threshold int           // consecutive failures that open the breaker
	openFor   time.Duration // how long Open rejects before probing
	fails     int           // consecutive failures while closed
	openedAt  time.Time
	probing   bool // half-open: the single probe slot is taken
	now       func() time.Time

	// onTransition, if set, observes every state change (for metrics and
	// event logs).  Called without the breaker lock held.
	onTransition func(from, to BreakerState)
}

func newBreaker(threshold int, openFor time.Duration, now func() time.Time) *breaker {
	if now == nil {
		now = time.Now
	}
	return &breaker{threshold: threshold, openFor: openFor, now: now}
}

// State returns the current state, surfacing Open→HalfOpen expiry without
// waiting for the next Allow.
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.openFor {
		return BreakerHalfOpen
	}
	return b.state
}

// Allow reports whether a request may be sent to this backend now.  probe
// is true when the caller holds the half-open probe slot: its outcome must
// be reported through Record with the same probe flag.
func (b *breaker) Allow() (ok, probe bool) {
	b.mu.Lock()
	var trans [][2]BreakerState
	defer func() {
		b.mu.Unlock()
		b.notify(trans)
	}()
	switch b.state {
	case BreakerClosed:
		return true, false
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.openFor {
			return false, false
		}
		trans = append(trans, [2]BreakerState{BreakerOpen, BreakerHalfOpen})
		b.state = BreakerHalfOpen
		b.probing = true
		return true, true
	case BreakerHalfOpen:
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	}
	return false, false
}

// Record reports one request outcome.  probe must be the flag Allow handed
// out; recovery is probe-gated — only the probe's verdict moves a half-open
// breaker, while stale results from requests launched before the breaker
// opened are ignored.
func (b *breaker) Record(success, probe bool) {
	b.mu.Lock()
	var trans [][2]BreakerState
	switch b.state {
	case BreakerClosed:
		if success {
			b.fails = 0
		} else {
			b.fails++
			if b.fails >= b.threshold {
				trans = append(trans, [2]BreakerState{BreakerClosed, BreakerOpen})
				b.state = BreakerOpen
				b.openedAt = b.now()
				b.fails = 0
			}
		}
	case BreakerHalfOpen:
		if !probe {
			break // stale result from before the trip: not the probe's verdict
		}
		b.probing = false
		if success {
			trans = append(trans, [2]BreakerState{BreakerHalfOpen, BreakerClosed})
			b.state = BreakerClosed
			b.fails = 0
		} else {
			trans = append(trans, [2]BreakerState{BreakerHalfOpen, BreakerOpen})
			b.state = BreakerOpen
			b.openedAt = b.now()
		}
	case BreakerOpen:
		// Late results cannot close an open breaker; only the probe can.
	}
	b.mu.Unlock()
	b.notify(trans)
}

// Forgive releases a claimed probe slot without rendering a verdict: the
// attempt was canceled by the gateway itself (a hedge loser or a client
// disconnect), which says nothing about the backend's health.
func (b *breaker) Forgive(probe bool) {
	if !probe {
		return
	}
	b.mu.Lock()
	if b.state == BreakerHalfOpen {
		b.probing = false
	}
	b.mu.Unlock()
}

func (b *breaker) notify(trans [][2]BreakerState) {
	if b.onTransition == nil {
		return
	}
	for _, t := range trans {
		b.onTransition(t[0], t[1])
	}
}
