package gateway

import (
	"sort"
	"sync/atomic"
)

// A policy ranks the cluster's backends for one request.  It returns every
// backend index in preference order; the gateway walks the order skipping
// ineligible members (breaker open, not ready, in a Retry-After cooldown),
// so spillover under failure is the same mechanism as primary routing.
type policy interface {
	Name() string
	// Order ranks all of backends for the request with the given job key.
	Order(key string, backends []*backend) []int
}

// PolicyNames lists the routing policies, in the order they are documented.
func PolicyNames() []string { return []string{"round-robin", "least-inflight", "key-affinity"} }

// policyByName builds the named routing policy.
func policyByName(name string) (policy, bool) {
	switch name {
	case "", "key-affinity":
		return &keyAffinity{}, true
	case "round-robin":
		return &roundRobin{}, true
	case "least-inflight":
		return &leastInflight{}, true
	}
	return nil, false
}

// roundRobin rotates the starting backend per request, ignoring the key:
// even spread, no cache locality.
type roundRobin struct {
	next atomic.Uint64
}

func (p *roundRobin) Name() string { return "round-robin" }

func (p *roundRobin) Order(key string, backends []*backend) []int {
	n := len(backends)
	start := int((p.next.Add(1) - 1) % uint64(n))
	order := make([]int, n)
	for i := range order {
		order[i] = (start + i) % n
	}
	return order
}

// leastInflight prefers the backend with the fewest requests currently in
// flight (ties broken by index, so the order is deterministic for a given
// load snapshot).
type leastInflight struct{}

func (p *leastInflight) Name() string { return "least-inflight" }

func (p *leastInflight) Order(key string, backends []*backend) []int {
	type load struct{ idx, inflight int }
	loads := make([]load, len(backends))
	for i, b := range backends {
		loads[i] = load{idx: i, inflight: int(b.inflight.Load())}
	}
	sort.SliceStable(loads, func(i, j int) bool {
		if loads[i].inflight != loads[j].inflight {
			return loads[i].inflight < loads[j].inflight
		}
		return loads[i].idx < loads[j].idx
	})
	order := make([]int, len(loads))
	for i, l := range loads {
		order[i] = l.idx
	}
	return order
}

// keyAffinity is rendezvous (highest-random-weight) hashing on the job key:
// every gateway ranks backends for a key identically, so repeat requests
// for a config concentrate on one shard and its cache gets hot, while the
// runner-up order doubles as the spillover sequence when that shard is
// unhealthy.  Unlike modulo hashing, removing or re-adding one backend only
// moves the keys that lived on it.
type keyAffinity struct{}

func (p *keyAffinity) Name() string { return "key-affinity" }

func (p *keyAffinity) Order(key string, backends []*backend) []int {
	type scored struct {
		idx   int
		score uint64
	}
	scores := make([]scored, len(backends))
	for i, b := range backends {
		scores[i] = scored{idx: i, score: rendezvousScore(b.id, key)}
	}
	sort.SliceStable(scores, func(i, j int) bool {
		if scores[i].score != scores[j].score {
			return scores[i].score > scores[j].score
		}
		return scores[i].idx < scores[j].idx
	})
	order := make([]int, len(scores))
	for i, s := range scores {
		order[i] = s.idx
	}
	return order
}

// rendezvousScore hashes (backend ID, job key) with FNV-1a 64 and a
// murmur-style finalizer.  The concatenation is separated so ("ab","c") and
// ("a","bc") differ; the finalizer matters because raw FNV is close to
// monotone in its running state for short inputs, which would rank backends
// in nearly the same order for every key and defeat the load spread.
func rendezvousScore(backendID, key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(backendID); i++ {
		h ^= uint64(backendID[i])
		h *= prime64
	}
	h ^= 0xff // separator outside both alphabets
	h *= prime64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
