// Package gateway implements agcmgw, the fault-tolerant serving gateway
// that fronts N agcmd backends and stays correct while they misbehave.
//
// Routing: a pluggable policy (round-robin, least-inflight, or rendezvous
// key-affinity on the job's ConfigKey) ranks every backend per request; the
// gateway walks the ranking skipping members that are not ready (active
// /readyz probing), are inside a Retry-After cooldown, or whose per-backend
// three-state circuit breaker (closed → open → half-open with probe-gated
// recovery) is open — so spillover under failure is the same mechanism as
// primary routing.
//
// Resilience: failed attempts are retried on the next-ranked backend with
// exponential backoff and deterministic-seeded jitter, governed by a global
// token-bucket retry budget so retries cannot amplify an outage.  Retries
// are safe by construction: agcmd runs are bit-deterministic and
// content-addressed, so replaying a request can only produce the same
// bytes.  High-priority requests may be hedged — a second shard raced after
// a latency-percentile delay, loser canceled via context.  When no backend
// can take a key, the gateway degrades gracefully: it serves the cached
// result from any backend's /v1/cache/{key} address before shedding.
//
// Observability: /metrics (per-backend breaker state, responses by code,
// retries, hedges, probes — emitted in sorted order) and a structured
// JSON-lines event log (breaker transitions, ejections, readmissions,
// hedges, degraded serves).
package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"agcm/internal/core"
	"agcm/internal/server"
)

// Options configures a Gateway.  The zero value of every field but
// Backends takes the documented default.
type Options struct {
	// Backends are the agcmd base URLs ("http://host:port").  Required.
	Backends []string
	// Policy is the routing policy: "key-affinity" (default),
	// "round-robin", or "least-inflight".
	Policy string
	// ProbeInterval paces the active /readyz prober (default 250ms;
	// negative disables probing — tests drive health by hand).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe request (default 1s).
	ProbeTimeout time.Duration
	// FailThreshold is the consecutive transport-failure count that opens a
	// backend's circuit breaker (default 3).
	FailThreshold int
	// OpenFor is how long an open breaker ejects its backend before
	// half-open admits a probe (default 2s).
	OpenFor time.Duration
	// RetryMax caps retries per request (default 3).
	RetryMax int
	// RetryRatio tokens are deposited into the global retry budget per
	// accepted request; each retry or hedge withdraws one (default 0.2).
	RetryRatio float64
	// RetryBurst caps the retry budget's token bucket (default 10).
	RetryBurst float64
	// BackoffBase and BackoffCap bound the exponential retry backoff
	// (defaults 25ms and 1s).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// AttemptTimeout bounds one proxied attempt (default 60s).
	AttemptTimeout time.Duration
	// HedgeDelay enables hedging for high-priority requests when positive:
	// it is the delay before racing a second shard until enough latency
	// samples exist to use the observed p95 instead (0 disables hedging).
	HedgeDelay time.Duration
	// Seed feeds the deterministic backoff jitter (default 1).
	Seed int64
	// MaxBodyBytes bounds a request body (default 1<<20).
	MaxBodyBytes int64
	// Transport overrides the HTTP transport (tests inject fakes).
	Transport http.RoundTripper
	// Events, when set, receives one JSON line per gateway event (breaker
	// transitions, ejections, readmissions, hedges, degraded serves).
	Events io.Writer
}

func (o Options) withDefaults() Options {
	if o.Policy == "" {
		o.Policy = "key-affinity"
	}
	if o.ProbeInterval == 0 {
		o.ProbeInterval = 250 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = time.Second
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 3
	}
	if o.OpenFor <= 0 {
		o.OpenFor = 2 * time.Second
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 3
	}
	if o.RetryRatio <= 0 {
		o.RetryRatio = 0.2
	}
	if o.RetryBurst <= 0 {
		o.RetryBurst = 10
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 25 * time.Millisecond
	}
	if o.BackoffCap <= 0 {
		o.BackoffCap = time.Second
	}
	if o.AttemptTimeout <= 0 {
		o.AttemptTimeout = 60 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.Transport == nil {
		o.Transport = &http.Transport{MaxIdleConnsPerHost: 32}
	}
	return o
}

// Gateway is the cluster front end: an http.Handler plus the health,
// breaker, retry, and hedging machinery behind it.
type Gateway struct {
	opt      Options
	backends []*backend
	policy   policy
	budget   *retryBudget
	backoff  *backoff
	metrics  *metrics
	client   *http.Client
	events   *eventLog
	lat      *latencyRing

	// rootCtx is the gateway's lifecycle context: probes and hedge attempts
	// derive from it, so rootCancel in Close kills every in-flight request
	// the gateway owns (a client's canceled request already kills its own).
	rootCtx    context.Context
	rootCancel context.CancelFunc
	stop       chan struct{}
	stopped    sync.WaitGroup
}

// New builds a Gateway over the configured backends and starts its health
// prober.  Call Close to stop it.
func New(opt Options) (*Gateway, error) {
	if len(opt.Backends) == 0 {
		return nil, errors.New("gateway: at least one backend required")
	}
	opt = opt.withDefaults()
	pol, ok := policyByName(opt.Policy)
	if !ok {
		return nil, fmt.Errorf("gateway: unknown policy %q (want %s)",
			opt.Policy, strings.Join(PolicyNames(), ", "))
	}
	//lint:allow ctxflow gateway lifecycle root: rootCancel runs in Close, killing every probe and hedge the gateway owns
	rootCtx, rootCancel := context.WithCancel(context.Background())
	g := &Gateway{
		opt:        opt,
		policy:     pol,
		budget:     newRetryBudget(opt.RetryRatio, opt.RetryBurst),
		backoff:    newBackoff(opt.BackoffBase, opt.BackoffCap, opt.Seed),
		metrics:    newGatewayMetrics(),
		client:     &http.Client{Transport: opt.Transport},
		events:     &eventLog{w: opt.Events},
		lat:        &latencyRing{},
		rootCtx:    rootCtx,
		rootCancel: rootCancel,
		stop:       make(chan struct{}),
	}
	seen := make(map[string]bool, len(opt.Backends))
	for _, raw := range opt.Backends {
		u, err := url.Parse(raw)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("gateway: bad backend URL %q", raw)
		}
		id := strings.TrimRight(raw, "/")
		if seen[id] {
			return nil, fmt.Errorf("gateway: duplicate backend %q", id)
		}
		seen[id] = true
		br := newBreaker(opt.FailThreshold, opt.OpenFor, nil)
		backendID := id
		br.onTransition = func(from, to BreakerState) {
			g.metrics.IncBreakerTransition(backendID, from.String()+"->"+to.String())
			g.events.Emit("breaker", backendID, from.String()+"->"+to.String())
		}
		g.backends = append(g.backends, newBackend(id, id, br))
	}
	if opt.ProbeInterval > 0 {
		g.stopped.Add(1)
		go g.prober()
	}
	return g, nil
}

// Close stops the health prober, cancels every probe and hedge goroutine
// the gateway owns, waits for all of them to exit, and releases idle
// connections.  After Close returns, no gateway goroutine touches metrics,
// breakers, or the transport again.  Stop accepting requests before calling
// Close: requests already in flight are joined, but a request arriving
// during Close races the join.
func (g *Gateway) Close() {
	g.rootCancel()
	close(g.stop)
	g.stopped.Wait()
	if t, ok := g.opt.Transport.(*http.Transport); ok {
		t.CloseIdleConnections()
	}
}

// Handler returns the gateway's HTTP mux: POST /v1/run, GET /healthz,
// GET /readyz, GET /metrics.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", g.handleRun)
	mux.HandleFunc("/healthz", g.handleHealthz)
	mux.HandleFunc("/readyz", g.handleReadyz)
	mux.HandleFunc("/metrics", g.handleMetrics)
	return mux
}

// Metrics exposes the counter set for tests and embedding daemons.
func (g *Gateway) Metrics() *metrics { return g.metrics }

// eventLog serializes structured events as JSON lines.
type eventLog struct {
	mu sync.Mutex
	w  io.Writer
}

// gatewayEvent is one structured log line.
type gatewayEvent struct {
	TimeMS  int64  `json:"t_ms"`
	Event   string `json:"event"`
	Backend string `json:"backend,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

func (l *eventLog) Emit(event, backend, detail string) {
	if l.w == nil {
		return
	}
	raw, _ := json.Marshal(gatewayEvent{
		TimeMS: time.Now().UnixMilli(), Event: event, Backend: backend, Detail: detail,
	})
	l.mu.Lock()
	l.w.Write(append(raw, '\n'))
	l.mu.Unlock()
}

// latencyRing keeps the last 128 successful-attempt latencies for the
// hedge-delay percentile.
type latencyRing struct {
	mu      sync.Mutex
	samples [128]float64
	n       int // total observed
}

func (r *latencyRing) Observe(seconds float64) {
	r.mu.Lock()
	r.samples[r.n%len(r.samples)] = seconds
	r.n++
	r.mu.Unlock()
}

// P95 returns the 95th-percentile sample, or 0 with fewer than 16 samples.
func (r *latencyRing) P95() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n < 16 {
		return 0
	}
	k := r.n
	if k > len(r.samples) {
		k = len(r.samples)
	}
	buf := make([]float64, k)
	copy(buf, r.samples[:k])
	sort.Float64s(buf)
	return buf[int(0.95*float64(k-1))]
}

// hedgeDelay is how long a high-priority request waits on its primary shard
// before racing a second one: the observed p95 once enough samples exist,
// the configured floor before that.
func (g *Gateway) hedgeDelay() time.Duration {
	if p95 := g.lat.P95(); p95 > 0 {
		d := time.Duration(p95 * float64(time.Second))
		if d < time.Millisecond {
			d = time.Millisecond
		}
		if max := g.opt.AttemptTimeout / 2; d > max {
			d = max
		}
		return d
	}
	return g.opt.HedgeDelay
}

func errorBody(msg string) []byte {
	raw, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{msg})
	return append(raw, '\n')
}

func writeJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// request mirrors the backend's POST /v1/run body: the gateway validates
// up front so garbage is rejected at the edge and the job key (the routing
// and cache address) exists before any backend is touched.
type request struct {
	Config    json.RawMessage `json:"config"`
	Steps     int             `json:"steps"`
	Priority  string          `json:"priority"`
	TimeoutMS int             `json:"timeout_ms"`
	// SLO is the request's service-level class ("interactive" or "batch");
	// empty derives it from priority, exactly as the backend does.  The
	// gateway's hedging keys on the resolved class: only interactive
	// requests are worth a second shard.
	SLO string `json:"slo"`
}

// attemptResult is the outcome of one proxied attempt (or of the degraded
// cache-peek path).
type attemptResult struct {
	status   int
	header   http.Header
	body     []byte
	err      error // transport-level failure
	canceled bool  // abandoned by the gateway itself: no health verdict
}

// relayable reports whether the result is a final answer for the client
// rather than something the retry layer should mask.  429 (saturated), 502
// and 503 (transport-ish) are retried elsewhere; everything else — 200,
// client errors, and deterministic simulation errors (500, 504) — is the
// backend doing its job.
func (a *attemptResult) relayable() bool {
	if a == nil || a.err != nil || a.canceled {
		return false
	}
	switch a.status {
	case http.StatusTooManyRequests, http.StatusBadGateway, http.StatusServiceUnavailable:
		return false
	}
	return true
}

func (g *Gateway) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		g.metrics.IncRequest("rejected")
		writeJSON(w, http.StatusMethodNotAllowed, errorBody("POST only"))
		return
	}
	raw, err := io.ReadAll(io.LimitReader(r.Body, g.opt.MaxBodyBytes))
	if err != nil {
		g.metrics.IncRequest("rejected")
		writeJSON(w, http.StatusBadRequest, errorBody("reading body: "+err.Error()))
		return
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var req request
	if err := dec.Decode(&req); err != nil {
		g.metrics.IncRequest("rejected")
		writeJSON(w, http.StatusBadRequest, errorBody("bad request: "+err.Error()))
		return
	}
	if len(req.Config) == 0 {
		g.metrics.IncRequest("rejected")
		writeJSON(w, http.StatusBadRequest, errorBody("missing config"))
		return
	}
	cfg, err := core.ConfigFromCanonicalJSON(req.Config)
	if err != nil {
		g.metrics.IncRequest("rejected")
		writeJSON(w, http.StatusBadRequest, errorBody(err.Error()))
		return
	}
	steps := req.Steps
	if steps == 0 {
		steps = 1
	}
	if steps < 0 {
		g.metrics.IncRequest("rejected")
		writeJSON(w, http.StatusBadRequest, errorBody(fmt.Sprintf("steps %d out of range", steps)))
		return
	}
	prio, ok := server.PriorityByName(req.Priority)
	if !ok {
		g.metrics.IncRequest("rejected")
		writeJSON(w, http.StatusBadRequest, errorBody(fmt.Sprintf("unknown priority %q", req.Priority)))
		return
	}
	slo := req.SLO
	if slo == "" {
		slo = r.Header.Get(server.SLOHeader)
	}
	class, ok := server.ClassByName(slo, prio)
	if !ok {
		g.metrics.IncRequest("rejected")
		writeJSON(w, http.StatusBadRequest, errorBody(fmt.Sprintf("unknown slo class %q", slo)))
		return
	}
	key, err := server.JobKeyFor(cfg, steps)
	if err != nil {
		g.metrics.IncRequest("rejected")
		writeJSON(w, http.StatusBadRequest, errorBody(err.Error()))
		return
	}
	g.metrics.IncClassRequest(class.String())

	g.budget.Deposit()
	res, attempts := g.proxyWithRetries(r.Context(), key, prio, class, raw)
	if res != nil && res.relayable() {
		g.relay(w, res, attempts, "")
		label := "ok"
		switch {
		case res.status >= 500:
			label = "error"
		case res.status >= 400:
			label = "rejected"
		}
		g.metrics.IncRequest(label)
		return
	}

	// Graceful degradation: before shedding, serve the cached bytes from
	// any backend that has them — content addressing makes any copy THE
	// answer.
	if peek := g.degradedPeek(r.Context(), key); peek != nil {
		g.events.Emit("degraded", "", key)
		g.metrics.IncRequest("degraded")
		g.relay(w, peek, attempts, "degraded")
		return
	}

	// Shed.  Relay a backend's own 429/503 verbatim (its Retry-After is the
	// best available estimate); otherwise synthesize a 503.
	g.metrics.IncRequest("shed")
	if res != nil && res.err == nil && !res.canceled {
		g.relay(w, res, attempts, "")
		return
	}
	w.Header().Set("Retry-After", "1")
	w.Header().Set("X-Agcmgw-Attempts", strconv.Itoa(attempts))
	writeJSON(w, http.StatusServiceUnavailable, errorBody("no backend available"))
}

// relay writes an attempt's response to the client, forwarding the headers
// that matter and stamping the gateway's own.
func (g *Gateway) relay(w http.ResponseWriter, res *attemptResult, attempts int, mode string) {
	for _, h := range []string{"Content-Type", "Retry-After", "X-Agcmd-Cache", "X-Agcmd-Backend"} {
		if v := res.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	if w.Header().Get("Content-Type") == "" {
		w.Header().Set("Content-Type", "application/json")
	}
	w.Header().Set("X-Agcmgw-Attempts", strconv.Itoa(attempts))
	if mode != "" {
		w.Header().Set("X-Agcmgw-Degraded", "1")
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// proxyWithRetries drives the attempt loop: pick a backend by policy,
// attempt, classify, and either relay, retry elsewhere (budget and backoff
// permitting), or give up.  It returns the last result (nil if no attempt
// ran) and the attempt count.
func (g *Gateway) proxyWithRetries(ctx context.Context, key string, prio server.Priority, class server.SLOClass, body []byte) (*attemptResult, int) {
	var last *attemptResult
	attempts := 0
	lastIdx := -1
	for retry := 0; retry <= g.opt.RetryMax; retry++ {
		if retry > 0 {
			if !g.budget.Take() {
				g.metrics.IncRetryExhausted()
				g.events.Emit("retry_budget_exhausted", "", key)
				break
			}
			g.metrics.IncRetry()
			select {
			case <-time.After(g.backoff.Delay(retry)):
			case <-ctx.Done():
				return last, attempts
			}
		}
		var res *attemptResult
		var idx int
		// Only interactive requests hedge: with no explicit slo field the
		// class derives from priority (high → interactive), so defaulted
		// traffic hedges exactly as it did before SLO classes existed.
		if retry == 0 && class == server.Interactive && g.opt.HedgeDelay > 0 {
			res, idx = g.hedged(ctx, key, class, body)
		} else {
			b, probe, i := g.pick(key, lastIdx)
			if b == nil {
				break
			}
			res, idx = g.attempt(ctx, b, probe, class, body), i
		}
		if res == nil {
			break
		}
		attempts++
		last, lastIdx = res, idx
		if res.relayable() {
			return res, attempts
		}
		if ctx.Err() != nil {
			return last, attempts
		}
	}
	return last, attempts
}

// pick selects the next backend: first pass honors readiness, cooldowns,
// and breakers and skips the backend that just failed; the relaxed second
// pass only requires the breaker to admit (so a half-open probe or a
// cooling-down backend is still reachable when it is the only hope).  probe
// reports that the breaker's half-open slot was claimed and must be
// resolved via Record or Forgive.
func (g *Gateway) pick(key string, exclude int) (b *backend, probe bool, idx int) {
	order := g.policy.Order(key, g.backends)
	now := time.Now()
	for _, i := range order {
		if i == exclude && len(g.backends) > 1 {
			continue
		}
		cand := g.backends[i]
		if !cand.ready.Load() || cand.inCooldown(now) {
			continue
		}
		if ok, pr := cand.breaker.Allow(); ok {
			return cand, pr, i
		}
	}
	for _, i := range order {
		cand := g.backends[i]
		if ok, pr := cand.breaker.Allow(); ok {
			return cand, pr, i
		}
	}
	return nil, false, -1
}

// attempt proxies one POST /v1/run to one backend, reads the full response,
// classifies it, and feeds the breaker, cooldowns, metrics, and the latency
// ring.
func (g *Gateway) attempt(ctx context.Context, b *backend, probe bool, class server.SLOClass, body []byte) *attemptResult {
	actx, cancel := context.WithTimeout(ctx, g.opt.AttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, b.url+"/v1/run", bytes.NewReader(body))
	if err != nil {
		b.breaker.Forgive(probe)
		return &attemptResult{err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	// Propagate the resolved class so the backend's scheduler and per-class
	// metrics see it even when the body has no explicit slo field.
	req.Header.Set(server.SLOHeader, class.String())

	b.inflight.Add(1)
	start := time.Now()
	resp, err := g.client.Do(req)
	var raw []byte
	if err == nil {
		raw, err = io.ReadAll(resp.Body)
		resp.Body.Close()
	}
	elapsed := time.Since(start)
	b.inflight.Add(-1)

	if err != nil {
		// The gateway abandoning the attempt (hedge loser, client gone) says
		// nothing about the backend; everything else is a transport failure.
		if ctx.Err() == context.Canceled {
			g.metrics.IncBackendCanceled(b.id)
			b.breaker.Forgive(probe)
			return &attemptResult{err: err, canceled: true}
		}
		g.metrics.IncBackendError(b.id)
		b.breaker.Record(false, probe)
		return &attemptResult{err: err}
	}

	g.metrics.IncBackendResponse(b.id, resp.StatusCode)
	res := &attemptResult{status: resp.StatusCode, header: resp.Header, body: raw}
	switch resp.StatusCode {
	case http.StatusTooManyRequests:
		// Saturation is not ill health: the breaker sees success, and the
		// backend's own Retry-After becomes its routing cooldown.
		b.breaker.Record(true, probe)
		b.coolDown(time.Now(), retryAfterDuration(resp.Header, time.Second))
	case http.StatusBadGateway, http.StatusServiceUnavailable:
		b.breaker.Record(false, probe)
		b.coolDown(time.Now(), retryAfterDuration(resp.Header, 0))
	default:
		b.breaker.Record(true, probe)
		if resp.StatusCode == http.StatusOK {
			g.lat.Observe(elapsed.Seconds())
		}
	}
	return res
}

// retryAfterDuration parses a Retry-After header in seconds, returning
// fallback when absent or unparseable.
func retryAfterDuration(h http.Header, fallback time.Duration) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return fallback
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return fallback
	}
	return time.Duration(secs) * time.Second
}

// hedged races two shards for a high-priority request: the policy's primary
// immediately, and — if it has not answered within the hedge delay — the
// next-ranked backend, budget permitting.  The first full response wins and
// the loser is canceled via context.  Returns the winning result and its
// backend index.
func (g *Gateway) hedged(ctx context.Context, key string, class server.SLOClass, body []byte) (*attemptResult, int) {
	b1, probe1, idx1 := g.pick(key, -1)
	if b1 == nil {
		return nil, -1
	}
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()
	// Tie the hedge to the gateway's lifecycle: Close cancels rootCtx, which
	// cancels both attempts, so the goroutines below — all tracked in
	// g.stopped — exit promptly and Close's Wait can join them.
	unbind := context.AfterFunc(g.rootCtx, hcancel)
	defer unbind()
	type outcome struct {
		res *attemptResult
		idx int
	}
	// Two slots: one per attempt, so neither send can block after this
	// function stops receiving.
	ch := make(chan outcome, 2)
	g.stopped.Add(1)
	go func() {
		defer g.stopped.Done()
		ch <- outcome{g.attempt(hctx, b1, probe1, class, body), idx1}
	}()

	timer := time.NewTimer(g.hedgeDelay())
	defer timer.Stop()
	select {
	case out := <-ch:
		return out.res, out.idx
	case <-timer.C:
	}

	b2, probe2, idx2 := g.pick(key, idx1)
	if b2 == nil || idx2 == idx1 || !g.budget.Take() {
		if b2 != nil {
			b2.breaker.Forgive(probe2)
		}
		//lint:allow ctxflow bounded wait: the attempt is deadline-bound by AttemptTimeout and canceled through hctx on both caller cancel and Close
		out := <-ch
		return out.res, out.idx
	}
	g.metrics.IncHedge("launched")
	g.events.Emit("hedge", b2.id, key)
	g.stopped.Add(1)
	go func() {
		defer g.stopped.Done()
		ch <- outcome{g.attempt(hctx, b2, probe2, class, body), idx2}
	}()

	//lint:allow ctxflow bounded wait: both attempts are deadline-bound by AttemptTimeout and canceled through hctx on both caller cancel and Close
	out := <-ch
	hcancel() // the loser's attempt sees context.Canceled and is forgiven
	if out.idx == idx2 {
		g.metrics.IncHedge("won")
	}
	// Reap the loser off the buffered channel; completed-but-discarded
	// responses count as lost hedges (they appear in the backend's own
	// counters, which reconciliation must subtract).  The reaper is joined
	// by Close: without the g.stop case it would linger until the loser's
	// attempt timed out on its own, touching metrics after Close returned.
	g.stopped.Add(1)
	go func() {
		defer g.stopped.Done()
		select {
		case lost := <-ch:
			if lost.res != nil && !lost.res.canceled && lost.res.err == nil {
				g.metrics.IncHedge("lost")
			}
		case <-g.stop:
			// Close is joining us; the loser is being canceled via rootCtx
			// and its discarded verdict no longer matters.
		}
	}()
	return out.res, out.idx
}

// degradedPeek asks every backend, in policy order and regardless of
// health, whether it has the key's bytes cached (GET /v1/cache/{key}).  A
// dying or draining backend can still answer — content addressing makes
// any copy authoritative.
func (g *Gateway) degradedPeek(ctx context.Context, key string) *attemptResult {
	timeout := 2 * time.Second
	if g.opt.AttemptTimeout < timeout {
		timeout = g.opt.AttemptTimeout
	}
	for _, i := range g.policy.Order(key, g.backends) {
		b := g.backends[i]
		pctx, cancel := context.WithTimeout(ctx, timeout)
		req, err := http.NewRequestWithContext(pctx, http.MethodGet, b.url+"/v1/cache/"+key, nil)
		if err != nil {
			cancel()
			continue
		}
		resp, err := g.client.Do(req)
		if err != nil {
			cancel()
			continue
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		cancel()
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		return &attemptResult{status: http.StatusOK, header: resp.Header, body: raw}
	}
	return nil
}

// prober is the active health loop: every interval it GETs each backend's
// /readyz, maintains the ready bit (ejection/readmission events on flips),
// and feeds the breaker — failures count toward opening it, and in
// half-open the probe's verdict alone decides recovery, so an idle backend
// is readmitted without risking client traffic.
func (g *Gateway) prober() {
	defer g.stopped.Done()
	t := time.NewTicker(g.opt.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-t.C:
		}
		for _, b := range g.backends {
			g.probeOne(b)
		}
	}
}

func (g *Gateway) probeOne(b *backend) {
	// Probes derive from the gateway's lifecycle context, not a fresh root:
	// Close must not block up to ProbeTimeout behind a probe of a slow or
	// dead backend.
	ctx, cancel := context.WithTimeout(g.rootCtx, g.opt.ProbeTimeout)
	defer cancel()
	ok := false
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/readyz", nil)
	if err == nil {
		resp, err := g.client.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			ok = resp.StatusCode == http.StatusOK
		}
	}
	if g.rootCtx.Err() != nil {
		// The gateway is shutting down: this probe was canceled mid-flight
		// and its verdict says nothing about the backend.
		return
	}
	g.metrics.IncProbe(ok)
	if prev := b.ready.Swap(ok); prev != ok {
		if ok {
			g.events.Emit("readmit", b.id, "readyz ok")
		} else {
			g.events.Emit("eject", b.id, "readyz failed")
		}
	}
	if ok {
		// A healthy probe drives half-open recovery, but must not reset the
		// closed breaker's consecutive-failure count: /readyz succeeding
		// says nothing about /v1/run succeeding.
		if allowed, isProbe := b.breaker.Allow(); allowed && isProbe {
			b.breaker.Record(true, true)
		}
		return
	}
	if allowed, isProbe := b.breaker.Allow(); allowed && isProbe {
		b.breaker.Record(false, true)
	} else if b.breaker.State() == BreakerClosed {
		b.breaker.Record(false, false)
	}
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// handleReadyz reports ready while at least one backend is routable.
func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	for _, b := range g.backends {
		if b.eligible(now) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			io.WriteString(w, "ready\n")
			return
		}
	}
	http.Error(w, "no eligible backend", http.StatusServiceUnavailable)
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	gs := gatewayGauges{BudgetTokens: g.budget.Tokens()}
	ids := make([]backendGauges, 0, len(g.backends))
	for _, b := range g.backends {
		ids = append(ids, backendGauges{
			ID:       b.id,
			State:    b.breaker.State(),
			Ready:    b.ready.Load(),
			Inflight: int(b.inflight.Load()),
		})
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].ID < ids[j].ID })
	gs.Backends = ids
	g.metrics.WriteText(w, gs)
}
