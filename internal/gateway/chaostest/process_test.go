package chaostest

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"agcm/internal/gateway"
)

// repoRoot walks up from the package directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above package directory")
		}
		dir = parent
	}
}

// freePort grabs an ephemeral port and releases it for the daemon to bind.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port
}

// agcmdProc is one real agcmd child process.
type agcmdProc struct {
	cmd  *exec.Cmd
	url  string
	args []string
	bin  string
}

func startAgcmd(t *testing.T, bin string, port int, id string, extra ...string) *agcmdProc {
	t.Helper()
	args := []string{
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-workers", "2", "-queue", "64", "-cache", "256",
		"-backend-id", id,
	}
	args = append(args, extra...)
	p := &agcmdProc{
		url:  fmt.Sprintf("http://127.0.0.1:%d", port),
		args: args,
		bin:  bin,
	}
	p.start(t)
	return p
}

func (p *agcmdProc) start(t *testing.T) {
	t.Helper()
	p.cmd = exec.Command(p.bin, p.args...)
	p.cmd.Stdout = io.Discard
	p.cmd.Stderr = io.Discard
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
}

func (p *agcmdProc) awaitReady(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(p.url + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("agcmd at %s never became ready", p.url)
}

func (p *agcmdProc) kill() {
	if p.cmd != nil && p.cmd.Process != nil {
		p.cmd.Process.Kill()
		p.cmd.Wait()
	}
}

// TestGatewaySurvivesBackendKill is the cluster-grade proof: three real
// agcmd processes behind the gateway, a concurrent storm of requests, one
// backend SIGKILLed mid-load and later restarted.  Every response the
// gateway hands a client must be 200 (byte-exact against the fault-free
// reference) or 429 — the crash must be absorbed by retries, breakers, and
// probing, and the victim must be readmitted after restart.
func TestGatewaySurvivesBackendKill(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives real agcmd processes")
	}
	root := repoRoot(t)
	bin := filepath.Join(t.TempDir(), "agcmd")
	build := exec.Command("go", "build", "-o", bin, "agcm/cmd/agcmd")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building agcmd: %v\n%s", err, out)
	}

	pool := bodyPool()
	refs := referenceBodies(t, pool)

	procs := make([]*agcmdProc, 3)
	for i := range procs {
		procs[i] = startAgcmd(t, bin, freePort(t), fmt.Sprintf("proc%d", i))
		defer procs[i].kill()
		procs[i].awaitReady(t)
	}

	urls := make([]string, len(procs))
	for i, p := range procs {
		urls[i] = p.url
	}
	g, err := gateway.New(gateway.Options{
		Backends:       urls,
		Policy:         "key-affinity",
		ProbeInterval:  40 * time.Millisecond,
		FailThreshold:  2,
		OpenFor:        300 * time.Millisecond,
		RetryMax:       4,
		RetryRatio:     0.5,
		RetryBurst:     60,
		BackoffBase:    2 * time.Millisecond,
		BackoffCap:     30 * time.Millisecond,
		AttemptTimeout: 10 * time.Second,
		Seed:           5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()

	const (
		goroutines = 6
		perG       = 40
		total      = goroutines * perG
	)
	type result struct {
		body   string
		status int
		got    []byte
		err    error
	}
	results := make([]result, total)
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for i := 0; i < perG; i++ {
				body := pool[(gi*17+i)%len(pool)]
				r := result{body: body}
				resp, err := client.Post(gw.URL+"/v1/run", "application/json", strings.NewReader(body))
				if err != nil {
					r.err = err
				} else {
					r.status = resp.StatusCode
					r.got, r.err = io.ReadAll(resp.Body)
					resp.Body.Close()
				}
				results[gi*perG+i] = r
				time.Sleep(2 * time.Millisecond) // stretch the storm across the kill window
			}
		}(gi)
	}

	// Mid-storm: SIGKILL one backend, let the cluster absorb it, restart.
	time.Sleep(150 * time.Millisecond)
	victim := procs[1]
	victim.kill()
	time.Sleep(400 * time.Millisecond)
	victim.start(t)
	victim.awaitReady(t)
	wg.Wait()

	ok200, saturated := 0, 0
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("request %d: client-level error escaped the gateway: %v", i, r.err)
		}
		switch r.status {
		case 200:
			ok200++
			if string(r.got) != string(refs[r.body]) {
				t.Fatalf("request %d: accepted body not byte-exact after backend kill\ngot  %q\nwant %q",
					i, r.got, refs[r.body])
			}
		case 429:
			saturated++
		default:
			t.Fatalf("request %d: status %d (body %q) — a backend crash must never surface as an error", i, r.status, r.got)
		}
	}
	if ok200 == 0 {
		t.Fatal("no request succeeded")
	}
	t.Logf("storm: %d ok, %d saturated, retries=%d", ok200, saturated, g.Metrics().Retries())

	// The crash must have been visible to the resilience machinery.
	if n := g.Metrics().BreakerTransitions(); n == 0 {
		t.Fatal("breaker never transitioned despite a SIGKILLed backend")
	}

	// After readmission the revived backend serves again: drive requests
	// until it answers one (its ready bit and breaker must recover).
	deadline := time.Now().Add(10 * time.Second)
	recovered := false
	for !recovered && time.Now().Before(deadline) {
		for _, body := range pool {
			resp, err := http.Post(gw.URL+"/v1/run", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			backend := resp.Header.Get("X-Agcmd-Backend")
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == 200 && string(raw) != string(refs[body]) {
				t.Fatalf("post-restart body not byte-exact for %q", body)
			}
			if backend == "proc1" {
				recovered = true
				break
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("restarted backend was never readmitted into rotation")
	}
}

// scrapeCounter fetches the backend's /metrics and sums every sample of the
// named counter family (across labels).
func scrapeCounter(t *testing.T, url, family string) float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, line := range strings.Split(string(raw), "\n") {
		if !strings.HasPrefix(line, family) || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line[i+1:], "%g", &v); err != nil {
			t.Fatalf("bad metrics line %q: %v", line, err)
		}
		sum += v
	}
	return sum
}

// TestDiskTierSurvivesSIGKILL is the durability drill for the disk cache
// tier: a real agcmd with -cache-dir serves a request mix through the
// gateway, is SIGKILLed (no drain, no flush window), and restarts over the
// same directory.  Every body the gateway observed before the kill must
// come back byte-identical from the disk tier — with zero simulation
// re-runs, because the daemon persists each result before responding.
func TestDiskTierSurvivesSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives real agcmd processes")
	}
	root := repoRoot(t)
	bin := filepath.Join(t.TempDir(), "agcmd")
	build := exec.Command("go", "build", "-o", bin, "agcm/cmd/agcmd")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building agcmd: %v\n%s", err, out)
	}

	cacheDir := t.TempDir()
	port := freePort(t)
	proc := startAgcmd(t, bin, port, "disk0", "-cache-dir", cacheDir)
	defer proc.kill()
	proc.awaitReady(t)

	g, err := gateway.New(gateway.Options{
		Backends:       []string{proc.url},
		Policy:         "round-robin",
		ProbeInterval:  40 * time.Millisecond,
		FailThreshold:  2,
		OpenFor:        200 * time.Millisecond,
		RetryMax:       4,
		RetryRatio:     1,
		RetryBurst:     60,
		BackoffBase:    2 * time.Millisecond,
		BackoffCap:     30 * time.Millisecond,
		AttemptTimeout: 10 * time.Second,
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()

	// Round 1: populate both tiers through the gateway and record every body.
	pool := bodyPool()
	first := make(map[string][]byte, len(pool))
	for _, body := range pool {
		resp, err := http.Post(gw.URL+"/v1/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("seed request %q: status %d: %s", body, resp.StatusCode, raw)
		}
		first[body] = raw
	}

	// SIGKILL: no drain, no graceful anything.  The durability contract is
	// that every *responded* result was already on disk before its 200.
	proc.kill()
	proc.start(t)
	proc.awaitReady(t)

	// Round 2: the same mix must replay byte-identical from the disk tier.
	// The gateway may need a probe cycle to readmit the backend, so retry
	// briefly on non-200s.
	for _, body := range pool {
		var raw []byte
		var cacheHdr string
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, err := http.Post(gw.URL+"/v1/run", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			raw, err = io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode == 200 {
				cacheHdr = resp.Header.Get("X-Agcmd-Cache")
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("replay %q: status %d never recovered: %s", body, resp.StatusCode, raw)
			}
			time.Sleep(50 * time.Millisecond)
		}
		if string(raw) != string(first[body]) {
			t.Fatalf("replay %q not byte-identical after SIGKILL restart\ngot  %q\nwant %q",
				body, raw, first[body])
		}
		if cacheHdr != "disk-hit" && cacheHdr != "hit" {
			t.Fatalf("replay %q served with disposition %q, want disk-hit (or hit after promotion)", body, cacheHdr)
		}
	}

	// Zero re-runs: the restarted process replayed everything from disk.
	if runs := scrapeCounter(t, proc.url, "agcmd_runs_total"); runs != 0 {
		t.Fatalf("restarted daemon re-ran %g simulations; the disk tier should have served them all", runs)
	}
	if diskHits := scrapeCounter(t, proc.url, `agcmd_requests_total{result="disk_hit"}`); diskHits != float64(len(pool)) {
		t.Fatalf("disk-hit count %g, want %d", diskHits, len(pool))
	}
}
