package chaostest

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"agcm/internal/gateway"
	"agcm/internal/server"
)

// bodyPool is the request mix for chaos storms: a handful of distinct
// configs so key reuse exercises caching and key-affinity while the
// backends stay fast.
func bodyPool() []string {
	var pool []string
	for _, px := range []int{1, 2, 4} {
		for _, steps := range []int{1, 2} {
			pool = append(pool, fmt.Sprintf(`{"config":{"nlon":36,"nlat":24,"nlayers":3,`+
				`"machine":"paragon","mesh_py":1,"mesh_px":%d,"filter":"fft"},"steps":%d}`, px, steps))
		}
	}
	return pool
}

// referenceBodies computes the ground-truth response for every pool entry
// against a clean, fault-free backend.  agcmd is bit-deterministic, so
// these bytes are THE answer a healthy cluster must produce.
func referenceBodies(t *testing.T, pool []string) map[string][]byte {
	t.Helper()
	s, err := server.New(server.Options{Workers: 2, QueueCapacity: 16, CacheEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	refs := make(map[string][]byte, len(pool))
	for _, body := range pool {
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("reference run: status %d err %v", resp.StatusCode, err)
		}
		refs[body] = raw
	}
	return refs
}

// TestTransparentProxyIsByteExact: an empty spec proxies responses
// untouched — the baseline the fault clauses perturb.
func TestTransparentProxyIsByteExact(t *testing.T) {
	s, err := server.New(server.Options{Workers: 1, QueueCapacity: 8, CacheEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	spec, _ := Parse("")
	p := NewProxy(spec, ts.URL)
	defer p.Close()

	body := bodyPool()[0]
	direct, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := io.ReadAll(direct.Body)
	direct.Body.Close()

	through, err := http.Post(p.URL()+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(through.Body)
	through.Body.Close()
	if through.StatusCode != 200 || string(got) != string(want) {
		t.Fatalf("proxied response differs: status %d\ngot  %q\nwant %q", through.StatusCode, got, want)
	}
	if len(p.InjectedKinds()) != 0 {
		t.Fatalf("transparent proxy injected faults: %v", p.InjectedKinds())
	}
}

// TestGatewayUnderChaos is the tentpole proof: three real agcmd backends,
// each behind a fault-injecting proxy with a different seeded misbehavior
// mix (5xx bursts, connection drops, mid-body resets, slow bodies, added
// latency), a gateway in front, and a concurrent request storm.  Every
// accepted (200) response must be byte-exact against the fault-free
// reference, no client-level error may escape the gateway, and the retry
// volume must stay under the token-bucket budget bound.
func TestGatewayUnderChaos(t *testing.T) {
	pool := bodyPool()
	refs := referenceBodies(t, pool)

	specs := []string{
		"seed=11;delay:prob=0.3,ms=3;burst5xx:every=12,len=2",
		"seed=22;reset:prob=0.12;slowbody:prob=0.25,chunk=48,ms=1",
		"seed=33;drop:prob=0.1;delay:prob=0.2,ms=2",
	}
	var proxies []*Proxy
	var backendURLs []string
	for i, raw := range specs {
		spec, err := Parse(raw)
		if err != nil {
			t.Fatal(err)
		}
		s, err := server.New(server.Options{
			Workers: 2, QueueCapacity: 32, CacheEntries: 64,
			BackendID: fmt.Sprintf("b%d", i),
		})
		if err != nil {
			t.Fatal(err)
		}
		bts := httptest.NewServer(s.Handler())
		defer bts.Close()
		p := NewProxy(spec, bts.URL)
		defer p.Close()
		proxies = append(proxies, p)
		backendURLs = append(backendURLs, p.URL())
	}

	const (
		retryRatio = 0.5
		retryBurst = 50
	)
	g, err := gateway.New(gateway.Options{
		Backends:      backendURLs,
		Policy:        "key-affinity",
		ProbeInterval: 50 * time.Millisecond,
		FailThreshold: 3,
		OpenFor:       200 * time.Millisecond,
		RetryMax:      4,
		RetryRatio:    retryRatio,
		RetryBurst:    retryBurst,
		BackoffBase:   2 * time.Millisecond,
		BackoffCap:    20 * time.Millisecond,
		AttemptTimeout: 5 * time.Second,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()

	const (
		goroutines = 8
		perG       = 30
		total      = goroutines * perG
	)
	type result struct {
		body   string
		status int
		got    []byte
		err    error
	}
	results := make([]result, total)
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for i := 0; i < perG; i++ {
				body := pool[(gi*31+i)%len(pool)]
				r := result{body: body}
				resp, err := client.Post(gw.URL+"/v1/run", "application/json", strings.NewReader(body))
				if err != nil {
					r.err = err
				} else {
					r.status = resp.StatusCode
					r.got, r.err = io.ReadAll(resp.Body)
					resp.Body.Close()
				}
				results[gi*perG+i] = r
			}
		}(gi)
	}
	wg.Wait()

	ok200, saturated := 0, 0
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("request %d: client-level error escaped the gateway: %v", i, r.err)
		}
		switch r.status {
		case 200:
			ok200++
			if string(r.got) != string(refs[r.body]) {
				t.Fatalf("request %d: accepted body is not byte-exact\ngot  %q\nwant %q", i, r.got, refs[r.body])
			}
		case 429, 503:
			saturated++
		default:
			t.Fatalf("request %d: status %d (body %q) — the gateway must mask chaos as 200/429/503", i, r.status, r.got)
		}
	}
	if ok200 < total*8/10 {
		t.Fatalf("only %d/%d requests succeeded under chaos (%d saturated)", ok200, total, saturated)
	}

	// Retry volume must respect the budget: ratio per accepted request plus
	// the burst the bucket started with.
	maxRetries := uint64(retryRatio*float64(total)) + retryBurst
	if got := g.Metrics().Retries(); got > maxRetries {
		t.Fatalf("retries = %d, want <= %d (budget bound)", got, maxRetries)
	}

	// The scenario must actually have misbehaved — a chaos test against a
	// healthy cluster proves nothing.
	var injected uint64
	for i, p := range proxies {
		for _, k := range p.InjectedKinds() {
			injected += p.Injected(k)
		}
		t.Logf("proxy %d injected: %v", i, p.InjectedKinds())
	}
	if injected < 10 {
		t.Fatalf("only %d faults injected — chaos schedule did not engage", injected)
	}
	if proxies[0].Injected("burst5xx") == 0 {
		t.Fatal("burst5xx never fired despite a periodic window")
	}

	// The /metrics surface stays coherent under chaos.
	resp, err := http.Get(gw.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"agcmgw_requests_total", "agcmgw_backend_responses_total", "agcmgw_retry_budget_tokens"} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}
