package chaostest

import (
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	in := "seed=42;delay:prob=0.2,ms=50;drop:prob=0.02;reset:prob=0.05;burst5xx:every=20,len=3,code=503;slowbody:prob=0.1,chunk=64,ms=2"
	spec, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 42 || spec.Delay == nil || spec.Drop == nil ||
		spec.Reset == nil || spec.Burst == nil || spec.SlowBody == nil {
		t.Fatalf("parse lost clauses: %+v", spec)
	}
	if spec.Delay.Prob != 0.2 || spec.Delay.MS != 50 {
		t.Fatalf("delay = %+v", spec.Delay)
	}
	if spec.Burst.Every != 20 || spec.Burst.Len != 3 || spec.Burst.Code != 503 {
		t.Fatalf("burst = %+v", spec.Burst)
	}
	// String renders back to the same clause syntax, and re-parsing it
	// yields the same scenario.
	out := spec.String()
	if out != in {
		t.Fatalf("String() = %q, want %q", out, in)
	}
	again, err := Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	if again.String() != out {
		t.Fatalf("round trip unstable: %q vs %q", again.String(), out)
	}
}

func TestParseDefaults(t *testing.T) {
	spec, err := Parse("burst5xx:every=10,len=2;slowbody:prob=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Burst.Code != 503 {
		t.Errorf("burst code default = %d, want 503", spec.Burst.Code)
	}
	if spec.SlowBody.Chunk != 64 {
		t.Errorf("slowbody chunk default = %d, want 64", spec.SlowBody.Chunk)
	}
	if empty, err := Parse(""); err != nil || empty.Seed != 0 || empty.Delay != nil {
		t.Errorf("empty spec should be transparent: %+v, %v", empty, err)
	}
}

func TestParseRejects(t *testing.T) {
	for _, bad := range []string{
		"explode:now=1",                  // unknown kind
		"delay:prob=2,ms=10",             // probability out of range
		"delay:prob=0.1,ms=0",            // non-positive delay
		"delay:prob=0.1,whoops=3",        // unknown parameter
		"burst5xx:every=5,len=9",         // window longer than period
		"burst5xx:every=5,len=2,code=42", // not a 5xx status
		"seed=banana",
		"drop:prob",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted, want error", bad)
		}
	}
}

// TestScheduleIsDeterministic: the fault schedule is a pure function of
// (seed, kind, sequence) — two spec instances agree exactly, and a
// different seed produces a different schedule.
func TestScheduleIsDeterministic(t *testing.T) {
	a, _ := Parse("seed=7;drop:prob=0.3")
	b, _ := Parse("seed=7;drop:prob=0.3")
	c, _ := Parse("seed=8;drop:prob=0.3")
	same, diff := 0, 0
	for seq := uint64(0); seq < 512; seq++ {
		ra, rb, rc := a.roll("drop", seq), b.roll("drop", seq), c.roll("drop", seq)
		if ra != rb {
			t.Fatalf("seq %d: same seed rolled %g vs %g", seq, ra, rb)
		}
		if ra < 0 || ra >= 1 {
			t.Fatalf("seq %d: roll %g outside [0,1)", seq, ra)
		}
		if (ra < 0.3) == (rc < 0.3) {
			same++
		} else {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical schedules")
	}
	// Different kinds must not share a schedule either.
	kinds := 0
	for seq := uint64(0); seq < 256; seq++ {
		if a.roll("drop", seq) != a.roll("delay", seq) {
			kinds++
		}
	}
	if kinds == 0 {
		t.Fatal("fault kinds share one schedule")
	}
}

// TestRollFrequency: over many sequence numbers the empirical fire rate
// tracks the configured probability (the hash is uniform enough to trust
// prob knobs).
func TestRollFrequency(t *testing.T) {
	spec, _ := Parse("seed=123;drop:prob=0.2")
	fired := 0
	const n = 4096
	for seq := uint64(0); seq < n; seq++ {
		if spec.roll("drop", seq) < spec.Drop.Prob {
			fired++
		}
	}
	rate := float64(fired) / n
	if rate < 0.15 || rate > 0.25 {
		t.Fatalf("drop rate %.3f far from configured 0.2", rate)
	}
}

func TestValidateDirect(t *testing.T) {
	bad := &Spec{Burst: &Burst5xx{Every: 0, Len: 1, Code: 503}}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "burst5xx") {
		t.Fatalf("Validate() = %v, want burst5xx error", err)
	}
}
