package chaostest

import (
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy is a fault-injecting reverse proxy in front of one backend.  Every
// request is assigned a sequence number on arrival; the spec decides from
// (seed, kind, sequence) alone which faults fire, so the injected schedule
// is a deterministic property of the scenario even under concurrent load.
//
// Fault order per request: delay (added latency), then drop (connection
// closed before any bytes), then burst5xx (error status without reaching
// the backend), then the request is proxied and reset (connection severed
// mid-body) or slowbody (trickled response) may corrupt the reply.
type Proxy struct {
	spec    *Spec
	backend string
	client  *http.Client
	ts      *httptest.Server
	seq     atomic.Uint64

	mu       sync.Mutex
	injected map[string]uint64
}

// NewProxy starts a fault-injecting proxy in front of the backend base URL.
// Close it when done.
func NewProxy(spec *Spec, backendURL string) *Proxy {
	p := &Proxy{
		spec:     spec,
		backend:  strings.TrimRight(backendURL, "/"),
		client:   &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}},
		injected: make(map[string]uint64),
	}
	p.ts = httptest.NewServer(http.HandlerFunc(p.serve))
	return p
}

// URL returns the proxy's base URL — the address the gateway should dial.
func (p *Proxy) URL() string { return p.ts.URL }

// Close shuts the proxy down.
func (p *Proxy) Close() {
	p.ts.Close()
	p.client.CloseIdleConnections()
}

// Injected returns how many times the named fault fired.
func (p *Proxy) Injected(kind string) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.injected[kind]
}

// InjectedKinds lists the fault kinds that fired, sorted.
func (p *Proxy) InjectedKinds() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	kinds := make([]string, 0, len(p.injected))
	for k := range p.injected {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

func (p *Proxy) count(kind string) {
	p.mu.Lock()
	p.injected[kind]++
	p.mu.Unlock()
}

// sever hijacks the client connection and kills it without a clean
// shutdown — SetLinger(0) turns the close into a TCP RST where the stack
// supports it, so the gateway sees a genuine connection reset rather than
// a tidy EOF.
func sever(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		return
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		return
	}
	if tcp, ok := conn.(*net.TCPConn); ok {
		tcp.SetLinger(0)
	}
	conn.Close()
}

func (p *Proxy) serve(w http.ResponseWriter, r *http.Request) {
	seq := p.seq.Add(1) - 1
	s := p.spec

	if d := s.Delay; d != nil && s.roll("delay", seq) < d.Prob {
		p.count("delay")
		time.Sleep(time.Duration(d.MS) * time.Millisecond)
	}
	if d := s.Drop; d != nil && s.roll("drop", seq) < d.Prob {
		p.count("drop")
		sever(w)
		return
	}
	if b := s.Burst; b != nil && seq%uint64(b.Every) < uint64(b.Len) {
		p.count("burst5xx")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(b.Code)
		io.WriteString(w, `{"error":"chaostest: injected burst"}`+"\n")
		return
	}

	// Proxy the request upstream.
	req, err := http.NewRequestWithContext(r.Context(), r.Method, p.backend+r.URL.RequestURI(), r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := p.client.Do(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}

	//lint:allow nondeterm each iteration copies its own ranged key into the destination header map; order is unobservable
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}

	if rs := s.Reset; rs != nil && s.roll("reset", seq) < rs.Prob {
		p.count("reset")
		w.WriteHeader(resp.StatusCode)
		w.Write(body[:len(body)/2])
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		sever(w)
		return
	}
	if sb := s.SlowBody; sb != nil && s.roll("slowbody", seq) < sb.Prob {
		p.count("slowbody")
		w.WriteHeader(resp.StatusCode)
		f, _ := w.(http.Flusher)
		for off := 0; off < len(body); off += sb.Chunk {
			end := off + sb.Chunk
			if end > len(body) {
				end = len(body)
			}
			if _, err := w.Write(body[off:end]); err != nil {
				return
			}
			if f != nil {
				f.Flush()
			}
			if sb.MS > 0 && end < len(body) {
				time.Sleep(time.Duration(sb.MS) * time.Millisecond)
			}
		}
		return
	}

	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}
