// Package chaostest is the gateway's fault-injection proving ground: a
// reverse proxy that sits between the gateway and a real agcmd backend and
// misbehaves on a deterministic, seeded schedule — dropped connections,
// injected delays, 5xx bursts, mid-body connection resets, and slow bodies.
//
// The schedule mirrors internal/fault's design contract: every decision is
// a pure function of the spec's seed and the request sequence number, never
// of wall-clock time, so a chaos scenario is reproducible and a failing
// test names the exact faults it injected.  The clause grammar is the same
// -fault-spec syntax (semicolon-separated clauses, kind:key=value
// parameters, a bare seed=N clause):
//
//	seed=42;delay:prob=0.2,ms=50;reset:prob=0.05;burst5xx:every=20,len=3
//	drop:prob=0.02;slowbody:prob=0.1,chunk=64,ms=2
package chaostest

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Delay holds a request for MS milliseconds before proxying it.
type Delay struct {
	Prob float64 // per-request probability in [0, 1]
	MS   int     // added latency, milliseconds
}

// Drop closes the client connection without writing a byte: the gateway
// sees a transport error before any response.
type Drop struct {
	Prob float64
}

// Reset proxies the backend's response but severs the connection midway
// through the body: headers and a prefix arrive, then the socket dies.
type Reset struct {
	Prob float64
}

// Burst5xx short-circuits requests with an error status in periodic
// windows: of every Every requests, the first Len are answered Code
// without reaching the backend.
type Burst5xx struct {
	Every int
	Len   int
	Code  int // default 503
}

// SlowBody trickles the response body out Chunk bytes at a time with MS
// milliseconds between chunks.
type SlowBody struct {
	Prob  float64
	Chunk int // bytes per write, default 64
	MS    int // pause between chunks, milliseconds
}

// Spec is one backend's complete misbehavior scenario.  The zero value
// injects nothing (a transparent proxy).
type Spec struct {
	Seed     uint64
	Delay    *Delay
	Drop     *Drop
	Reset    *Reset
	Burst    *Burst5xx
	SlowBody *SlowBody
}

// Validate checks the scenario's parameters.
func (s *Spec) Validate() error {
	checkProb := func(kind string, p float64) error {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return fmt.Errorf("chaostest: %s probability %g outside [0, 1]", kind, p)
		}
		return nil
	}
	if d := s.Delay; d != nil {
		if err := checkProb("delay", d.Prob); err != nil {
			return err
		}
		if d.MS <= 0 {
			return fmt.Errorf("chaostest: delay ms %d must be positive", d.MS)
		}
	}
	if d := s.Drop; d != nil {
		if err := checkProb("drop", d.Prob); err != nil {
			return err
		}
	}
	if r := s.Reset; r != nil {
		if err := checkProb("reset", r.Prob); err != nil {
			return err
		}
	}
	if b := s.Burst; b != nil {
		if b.Every <= 0 || b.Len <= 0 || b.Len > b.Every {
			return fmt.Errorf("chaostest: burst5xx window len=%d every=%d invalid", b.Len, b.Every)
		}
		if b.Code < 500 || b.Code > 599 {
			return fmt.Errorf("chaostest: burst5xx code %d is not a 5xx status", b.Code)
		}
	}
	if sb := s.SlowBody; sb != nil {
		if err := checkProb("slowbody", sb.Prob); err != nil {
			return err
		}
		if sb.Chunk <= 0 || sb.MS < 0 {
			return fmt.Errorf("chaostest: slowbody chunk=%d ms=%d invalid", sb.Chunk, sb.MS)
		}
	}
	return nil
}

// String renders the scenario in the clause syntax accepted by Parse.
func (s *Spec) String() string {
	var parts []string
	if s.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", s.Seed))
	}
	if d := s.Delay; d != nil {
		parts = append(parts, fmt.Sprintf("delay:prob=%g,ms=%d", d.Prob, d.MS))
	}
	if d := s.Drop; d != nil {
		parts = append(parts, fmt.Sprintf("drop:prob=%g", d.Prob))
	}
	if r := s.Reset; r != nil {
		parts = append(parts, fmt.Sprintf("reset:prob=%g", r.Prob))
	}
	if b := s.Burst; b != nil {
		parts = append(parts, fmt.Sprintf("burst5xx:every=%d,len=%d,code=%d", b.Every, b.Len, b.Code))
	}
	if sb := s.SlowBody; sb != nil {
		parts = append(parts, fmt.Sprintf("slowbody:prob=%g,chunk=%d,ms=%d", sb.Prob, sb.Chunk, sb.MS))
	}
	return strings.Join(parts, ";")
}

// Parse builds a Spec from the clause syntax.  An empty string yields a
// transparent proxy.
func Parse(s string) (*Spec, error) {
	spec := &Spec{}
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		kind, params := clause, ""
		if i := strings.Index(clause, ":"); i >= 0 {
			kind, params = clause[:i], clause[i+1:]
		}
		kv, err := parseParams(params)
		if err != nil {
			return nil, fmt.Errorf("chaostest: clause %q: %w", clause, err)
		}
		switch {
		case strings.HasPrefix(kind, "seed="):
			v, err := strconv.ParseUint(strings.TrimPrefix(kind, "seed="), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("chaostest: bad seed in %q", clause)
			}
			spec.Seed = v
		case kind == "delay":
			d := &Delay{MS: 10}
			if err := assign(kv, map[string]any{"prob": &d.Prob, "ms": &d.MS}); err != nil {
				return nil, fmt.Errorf("chaostest: clause %q: %w", clause, err)
			}
			spec.Delay = d
		case kind == "drop":
			d := &Drop{}
			if err := assign(kv, map[string]any{"prob": &d.Prob}); err != nil {
				return nil, fmt.Errorf("chaostest: clause %q: %w", clause, err)
			}
			spec.Drop = d
		case kind == "reset":
			r := &Reset{}
			if err := assign(kv, map[string]any{"prob": &r.Prob}); err != nil {
				return nil, fmt.Errorf("chaostest: clause %q: %w", clause, err)
			}
			spec.Reset = r
		case kind == "burst5xx":
			b := &Burst5xx{Code: 503}
			if err := assign(kv, map[string]any{"every": &b.Every, "len": &b.Len, "code": &b.Code}); err != nil {
				return nil, fmt.Errorf("chaostest: clause %q: %w", clause, err)
			}
			spec.Burst = b
		case kind == "slowbody":
			sb := &SlowBody{Chunk: 64}
			if err := assign(kv, map[string]any{"prob": &sb.Prob, "chunk": &sb.Chunk, "ms": &sb.MS}); err != nil {
				return nil, fmt.Errorf("chaostest: clause %q: %w", clause, err)
			}
			spec.SlowBody = sb
		default:
			return nil, fmt.Errorf("chaostest: unknown clause kind %q (want seed=, delay:, drop:, reset:, burst5xx: or slowbody:)", kind)
		}
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// roll returns a deterministic uniform in [0, 1) for one (fault kind,
// request sequence) pair — a pure function of the seed, so a scenario's
// decision schedule reproduces exactly regardless of goroutine scheduling.
func (s *Spec) roll(kind string, seq uint64) float64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037) ^ s.Seed
	for i := 0; i < len(kind); i++ {
		h ^= uint64(kind[i])
		h *= prime64
	}
	for i := 0; i < 8; i++ {
		h ^= (seq >> (8 * i)) & 0xff
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return float64(h>>11) / float64(1<<53)
}

// parseParams splits "k1=v1,k2=v2" into a map.
func parseParams(s string) (map[string]string, error) {
	kv := make(map[string]string)
	if strings.TrimSpace(s) == "" {
		return kv, nil
	}
	for _, p := range strings.Split(s, ",") {
		i := strings.Index(p, "=")
		if i <= 0 {
			return nil, fmt.Errorf("bad parameter %q (want key=value)", p)
		}
		kv[strings.TrimSpace(p[:i])] = strings.TrimSpace(p[i+1:])
	}
	return kv, nil
}

// assign writes each parsed parameter into its typed destination and
// rejects keys the clause does not define.  Keys are visited sorted so the
// reported error does not depend on map iteration order.
func assign(kv map[string]string, dst map[string]any) error {
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := kv[k]
		d, ok := dst[k]
		if !ok {
			return fmt.Errorf("unknown parameter %q", k)
		}
		switch ptr := d.(type) {
		case *int:
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("parameter %s=%q is not an integer", k, v)
			}
			*ptr = n
		case *float64:
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return fmt.Errorf("parameter %s=%q is not a number", k, v)
			}
			*ptr = f
		default:
			panic("chaostest: unsupported destination type")
		}
	}
	return nil
}
