package gateway

import (
	"sync/atomic"
	"time"
)

// backend is one agcmd cluster member as the gateway sees it: its address,
// its circuit breaker, and the passive state routing consults — in-flight
// count, the last active-probe verdict, and the Retry-After cooldown.
type backend struct {
	// id is the stable identity used in metrics, events, and rendezvous
	// hashing.  It is the configured base URL, so every gateway given the
	// same backend list ranks keys identically.
	id  string
	url string // base URL without trailing slash

	breaker  *breaker
	inflight atomic.Int64
	// ready is the latest /readyz verdict.  It starts true so a fresh
	// gateway routes before the first probe round completes; the prober
	// corrects it within one interval.
	ready atomic.Bool
	// notBefore is a unix-nano cooldown deadline set from a backend's
	// Retry-After: the backend told us when to come back, so routing skips
	// it until then (unless nothing else is eligible).
	notBefore atomic.Int64
}

func newBackend(id, url string, br *breaker) *backend {
	b := &backend{id: id, url: url, breaker: br}
	b.ready.Store(true)
	return b
}

// coolDown records a Retry-After hint: skip this backend until now+d.
func (b *backend) coolDown(now time.Time, d time.Duration) {
	b.notBefore.Store(now.Add(d).UnixNano())
}

// inCooldown reports whether the Retry-After window is still running.
func (b *backend) inCooldown(now time.Time) bool {
	return now.UnixNano() < b.notBefore.Load()
}

// eligible reports whether routing should offer this backend traffic right
// now, without claiming the breaker's probe slot (Allow does that at send
// time).
func (b *backend) eligible(now time.Time) bool {
	if !b.ready.Load() || b.inCooldown(now) {
		return false
	}
	return b.breaker.State() != BreakerOpen
}
