package gateway

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"agcm/internal/server"
)

// SLO propagation through the gateway: the resolved class is stamped on
// every backend attempt, only interactive traffic hedges, and the per-class
// edge counters track validated requests.

// sloReqJSON builds a /v1/run body with explicit priority and slo fields
// (either may be empty to omit it).
func sloReqJSON(px int, prio, slo string) string {
	b := fmt.Sprintf(`{"config":{"nlon":36,"nlat":24,"nlayers":3,"machine":"paragon",`+
		`"mesh_py":1,"mesh_px":%d,"filter":"fft"},"steps":1`, px)
	if prio != "" {
		b += fmt.Sprintf(`,"priority":%q`, prio)
	}
	if slo != "" {
		b += fmt.Sprintf(`,"slo":%q`, slo)
	}
	return b + "}"
}

func TestSLOHeaderStampedOnBackendAttempts(t *testing.T) {
	var lastSLO atomic.Pointer[string]
	b := newStubBackend(func(w http.ResponseWriter, r *http.Request) {
		v := r.Header.Get(server.SLOHeader)
		lastSLO.Store(&v)
		ok200(`{"key":"k","report":{}}` + "\n")(w, r)
	})
	defer b.ts.Close()
	g := newTestGateway(t, Options{Policy: "round-robin"}, b)
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	cases := []struct {
		prio, slo string
		want      string
	}{
		{"", "", "batch"},
		{"high", "", "interactive"},
		{"low", "interactive", "interactive"},
		{"high", "batch", "batch"},
	}
	for _, tc := range cases {
		st, _, raw := postGW(t, ts.URL, sloReqJSON(1, tc.prio, tc.slo))
		if st != 200 {
			t.Fatalf("prio=%q slo=%q: status %d: %s", tc.prio, tc.slo, st, raw)
		}
		if got := lastSLO.Load(); got == nil || *got != tc.want {
			t.Fatalf("prio=%q slo=%q: backend saw %v, want %q", tc.prio, tc.slo, got, tc.want)
		}
	}
	if got := g.metrics.ClassRequests("interactive"); got != 2 {
		t.Errorf("interactive class requests = %d, want 2", got)
	}
	if got := g.metrics.ClassRequests("batch"); got != 2 {
		t.Errorf("batch class requests = %d, want 2", got)
	}
}

func TestSLOHeaderFallbackAtEdge(t *testing.T) {
	// A body without an slo field plus an X-Agcm-SLO header resolves to the
	// header's class, mirroring the backend's own fallback.
	var lastSLO atomic.Pointer[string]
	b := newStubBackend(func(w http.ResponseWriter, r *http.Request) {
		v := r.Header.Get(server.SLOHeader)
		lastSLO.Store(&v)
		ok200(`{"key":"k","report":{}}` + "\n")(w, r)
	})
	defer b.ts.Close()
	g := newTestGateway(t, Options{Policy: "round-robin"}, b)
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/run",
		strings.NewReader(sloReqJSON(1, "low", "")))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(server.SLOHeader, "interactive")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := lastSLO.Load(); got == nil || *got != "interactive" {
		t.Fatalf("backend saw %v, want interactive", got)
	}
}

func TestUnknownSLORejectedAtEdge(t *testing.T) {
	b := newStubBackend(ok200(`{}` + "\n"))
	defer b.ts.Close()
	g := newTestGateway(t, Options{Policy: "round-robin"}, b)
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	st, _, raw := postGW(t, ts.URL, sloReqJSON(1, "", "bulk"))
	if st != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", st, raw)
	}
	if b.runs.Load() != 0 {
		t.Fatalf("bad slo reached a backend: %d runs", b.runs.Load())
	}
}

func TestOnlyInteractiveHedges(t *testing.T) {
	// Two backends, hedging enabled, a slow deterministic primary.  A batch
	// request — even at high priority — must wait out the primary alone; an
	// explicit interactive one at low priority must hedge.
	slowBody := `{"who":"slow"}` + "\n"
	fastBody := `{"who":"fast"}` + "\n"
	slow := newStubBackend(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(30 * time.Millisecond)
		ok200(slowBody)(w, r)
	})
	fast := newStubBackend(ok200(fastBody))
	defer slow.ts.Close()
	defer fast.ts.Close()
	g := newTestGateway(t, Options{Policy: "key-affinity", HedgeDelay: 5 * time.Millisecond}, slow, fast)
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	slowIdx := 0
	if g.backends[0].url != slow.ts.URL {
		slowIdx = 1
	}
	px := 0
	for cand := 1; cand <= 16; cand++ {
		key := keyForBody(t, sloReqJSON(cand, "high", "batch"))
		if g.policy.Order(key, g.backends)[0] == slowIdx {
			px = cand
			break
		}
	}
	if px == 0 {
		t.Fatal("no candidate key ranked the slow backend first")
	}

	st, _, raw := postGW(t, ts.URL, sloReqJSON(px, "high", "batch"))
	if st != 200 || string(raw) != slowBody {
		t.Fatalf("batch request got %d %q, want the primary's answer", st, raw)
	}
	if g.metrics.Hedge("launched") != 0 {
		t.Fatalf("batch request hedged: %d launched", g.metrics.Hedge("launched"))
	}

	st, _, raw = postGW(t, ts.URL, sloReqJSON(px, "low", "interactive"))
	if st != 200 {
		t.Fatalf("interactive request status %d: %s", st, raw)
	}
	if string(raw) != fastBody {
		t.Fatalf("interactive winner %q, want the hedged shard's %q", raw, fastBody)
	}
	if g.metrics.Hedge("launched") != 1 {
		t.Fatalf("interactive request did not hedge: %d launched", g.metrics.Hedge("launched"))
	}
}
