package gateway

import (
	"fmt"
	"testing"
	"time"
)

func testBackends(n int) []*backend {
	bs := make([]*backend, n)
	for i := range bs {
		id := fmt.Sprintf("http://backend-%d:8080", i)
		bs[i] = newBackend(id, id, newBreaker(3, time.Second, nil))
	}
	return bs
}

// TestKeyAffinityDeterministicAndStable: rendezvous hashing ranks backends
// identically for the same key across calls and across policy instances,
// and different keys actually spread across the cluster.
func TestKeyAffinityDeterministicAndStable(t *testing.T) {
	bs := testBackends(4)
	p1, p2 := &keyAffinity{}, &keyAffinity{}
	primaries := make(map[int]int)
	for k := 0; k < 64; k++ {
		key := fmt.Sprintf("key-%d", k)
		o1 := p1.Order(key, bs)
		o2 := p2.Order(key, bs)
		if len(o1) != len(bs) {
			t.Fatalf("order has %d entries, want %d", len(o1), len(bs))
		}
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("key %q: two instances rank differently: %v vs %v", key, o1, o2)
			}
		}
		if o3 := p1.Order(key, bs); o3[0] != o1[0] {
			t.Fatalf("key %q: primary changed between calls", key)
		}
		primaries[o1[0]]++
	}
	if len(primaries) < 3 {
		t.Errorf("64 keys landed on only %d of 4 backends: %v", len(primaries), primaries)
	}
}

// TestKeyAffinitySpilloverIsMinimal: removing the top-ranked backend must
// not reorder the rest — the runner-up inherits the key and every other
// key's ranking is untouched.  This is the rendezvous property that makes
// failover cheap: only the dead shard's keys move.
func TestKeyAffinitySpilloverIsMinimal(t *testing.T) {
	bs := testBackends(5)
	p := &keyAffinity{}
	for k := 0; k < 32; k++ {
		key := fmt.Sprintf("key-%d", k)
		full := p.Order(key, bs)
		// Re-rank without the primary: the surviving backends' relative
		// order must be exactly the full ranking with the primary deleted.
		without := make([]*backend, 0, len(bs)-1)
		for i, b := range bs {
			if i != full[0] {
				without = append(without, b)
			}
		}
		reduced := p.Order(key, without)
		wantIdx := 0
		for _, idx := range full[1:] {
			// Map the full-ranking index onto the reduced slice.
			ri := idx
			if idx > full[0] {
				ri = idx - 1
			}
			if reduced[wantIdx] != ri {
				t.Fatalf("key %q: reduced ranking %v does not preserve full ranking %v", key, reduced, full)
			}
			wantIdx++
		}
	}
}

// TestRoundRobinRotates: successive requests start at successive backends.
func TestRoundRobinRotates(t *testing.T) {
	bs := testBackends(3)
	p := &roundRobin{}
	for want := 0; want < 6; want++ {
		o := p.Order("ignored", bs)
		if o[0] != want%3 {
			t.Fatalf("request %d started at %d, want %d", want, o[0], want%3)
		}
		for i := 1; i < len(o); i++ {
			if o[i] != (o[0]+i)%3 {
				t.Fatalf("request %d: order %v is not a rotation", want, o)
			}
		}
	}
}

// TestLeastInflightPrefersIdle: the backend with the fewest in-flight
// requests ranks first; ties break by index for determinism.
func TestLeastInflightPrefersIdle(t *testing.T) {
	bs := testBackends(3)
	bs[0].inflight.Store(5)
	bs[1].inflight.Store(1)
	bs[2].inflight.Store(3)
	p := &leastInflight{}
	o := p.Order("ignored", bs)
	if o[0] != 1 || o[1] != 2 || o[2] != 0 {
		t.Fatalf("order = %v, want [1 2 0]", o)
	}
	bs[0].inflight.Store(1)
	o = p.Order("ignored", bs)
	if o[0] != 0 || o[1] != 1 {
		t.Fatalf("tied order = %v, want index order [0 1 2]", o)
	}
}
