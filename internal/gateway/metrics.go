package gateway

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// metrics holds the gateway's counters.  One mutex guards everything, as in
// internal/server: increments are cheap next to proxied simulations, and a
// single lock makes each /metrics scrape an internally consistent snapshot.
// Emission is sorted everywhere so two scrapes of identical state are
// byte-identical.
type metrics struct {
	mu sync.Mutex
	// requests by client-edge outcome: ok, degraded, rejected, shed, error.
	requests map[string]uint64
	// backendResponses counts responses fully received from each backend by
	// status code — including hedge losers whose responses were read and
	// discarded, so these reconcile against the backends' own counters.
	backendResponses map[string]map[string]uint64
	// backendErrors counts transport-level failures (dial, reset, timeout).
	backendErrors map[string]uint64
	// backendCanceled counts attempts the gateway abandoned before reading a
	// response (hedge losers, client disconnects).  The backend may or may
	// not have counted these — reconciliation treats them as slack.
	backendCanceled map[string]uint64
	// breakerTransitions counts state changes per backend, labeled
	// "from->to".
	breakerTransitions map[string]map[string]uint64
	retries            uint64
	retryExhausted     uint64
	hedges             map[string]uint64 // launched, won, lost
	probes             map[string]uint64 // ok, fail
	// classRequests counts validated client requests by SLO class; it
	// reconciles against the backends' agcmd_class_requests_total the same
	// way the edge ledger does (hedge losers are extra backend-side counts).
	classRequests map[string]uint64
}

func newGatewayMetrics() *metrics {
	return &metrics{
		requests:           make(map[string]uint64),
		backendResponses:   make(map[string]map[string]uint64),
		backendErrors:      make(map[string]uint64),
		backendCanceled:    make(map[string]uint64),
		breakerTransitions: make(map[string]map[string]uint64),
		hedges:             make(map[string]uint64),
		probes:             make(map[string]uint64),
		classRequests:      make(map[string]uint64),
	}
}

// IncClassRequest counts one validated client request in its SLO class.
func (m *metrics) IncClassRequest(class string) {
	m.mu.Lock()
	m.classRequests[class]++
	m.mu.Unlock()
}

// ClassRequests returns one class's validated-request count (test hook).
func (m *metrics) ClassRequests(class string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.classRequests[class]
}

func (m *metrics) IncRequest(result string) {
	m.mu.Lock()
	m.requests[result]++
	m.mu.Unlock()
}

// Request returns one client-edge outcome count (test hook).
func (m *metrics) Request(result string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.requests[result]
}

func (m *metrics) IncBackendResponse(backend string, code int) {
	m.mu.Lock()
	byCode := m.backendResponses[backend]
	if byCode == nil {
		byCode = make(map[string]uint64)
		m.backendResponses[backend] = byCode
	}
	byCode[strconv.Itoa(code)]++
	m.mu.Unlock()
}

// BackendResponses returns one backend×code count (test and reconcile hook).
func (m *metrics) BackendResponses(backend string, code int) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.backendResponses[backend][strconv.Itoa(code)]
}

func (m *metrics) IncBackendError(backend string) {
	m.mu.Lock()
	m.backendErrors[backend]++
	m.mu.Unlock()
}

func (m *metrics) IncBackendCanceled(backend string) {
	m.mu.Lock()
	m.backendCanceled[backend]++
	m.mu.Unlock()
}

func (m *metrics) IncBreakerTransition(backend, transition string) {
	m.mu.Lock()
	byTrans := m.breakerTransitions[backend]
	if byTrans == nil {
		byTrans = make(map[string]uint64)
		m.breakerTransitions[backend] = byTrans
	}
	byTrans[transition]++
	m.mu.Unlock()
}

// BreakerTransitions returns the total transition count (test hook).
func (m *metrics) BreakerTransitions() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n uint64
	backends := make([]string, 0, len(m.breakerTransitions))
	for b := range m.breakerTransitions {
		backends = append(backends, b)
	}
	sort.Strings(backends)
	for _, b := range backends {
		byTrans := m.breakerTransitions[b]
		labels := make([]string, 0, len(byTrans))
		for t := range byTrans {
			labels = append(labels, t)
		}
		sort.Strings(labels)
		for _, t := range labels {
			n += byTrans[t]
		}
	}
	return n
}

func (m *metrics) IncRetry()          { m.mu.Lock(); m.retries++; m.mu.Unlock() }
func (m *metrics) IncRetryExhausted() { m.mu.Lock(); m.retryExhausted++; m.mu.Unlock() }

// Retries returns the retry count (test hook).
func (m *metrics) Retries() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.retries
}

func (m *metrics) IncHedge(result string) {
	m.mu.Lock()
	m.hedges[result]++
	m.mu.Unlock()
}

// Hedge returns one hedge outcome count (test hook).
func (m *metrics) Hedge(result string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hedges[result]
}

func (m *metrics) IncProbe(ok bool) {
	m.mu.Lock()
	if ok {
		m.probes["ok"]++
	} else {
		m.probes["fail"]++
	}
	m.mu.Unlock()
}

// backendGauges is one backend's point-in-time state for a scrape.
type backendGauges struct {
	ID       string
	State    BreakerState
	Ready    bool
	Inflight int
}

// gatewayGauges is the point-in-time state the gateway contributes to a
// scrape.  Backends must arrive sorted by ID.
type gatewayGauges struct {
	Backends     []backendGauges
	BudgetTokens float64
}

// WriteText renders the Prometheus text exposition in a fixed family order
// with sorted label values.
func (m *metrics) WriteText(w io.Writer, g gatewayGauges) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP agcmgw_requests_total Client requests by outcome.\n")
	fmt.Fprintf(w, "# TYPE agcmgw_requests_total counter\n")
	results := make([]string, 0, len(m.requests))
	for k := range m.requests {
		results = append(results, k)
	}
	sort.Strings(results)
	for _, k := range results {
		fmt.Fprintf(w, "agcmgw_requests_total{result=%q} %d\n", k, m.requests[k])
	}

	fmt.Fprintf(w, "# HELP agcmgw_backend_responses_total Responses fully received from each backend by status code (hedge losers included).\n")
	fmt.Fprintf(w, "# TYPE agcmgw_backend_responses_total counter\n")
	backends := make([]string, 0, len(m.backendResponses))
	for b := range m.backendResponses {
		backends = append(backends, b)
	}
	sort.Strings(backends)
	for _, b := range backends {
		byCode := m.backendResponses[b]
		codes := make([]string, 0, len(byCode))
		for c := range byCode {
			codes = append(codes, c)
		}
		sort.Strings(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "agcmgw_backend_responses_total{backend=%q,code=%q} %d\n", b, c, byCode[c])
		}
	}

	fmt.Fprintf(w, "# HELP agcmgw_backend_transport_errors_total Attempts that failed at the transport level per backend.\n")
	fmt.Fprintf(w, "# TYPE agcmgw_backend_transport_errors_total counter\n")
	errBackends := make([]string, 0, len(m.backendErrors))
	for b := range m.backendErrors {
		errBackends = append(errBackends, b)
	}
	sort.Strings(errBackends)
	for _, b := range errBackends {
		fmt.Fprintf(w, "agcmgw_backend_transport_errors_total{backend=%q} %d\n", b, m.backendErrors[b])
	}

	fmt.Fprintf(w, "# HELP agcmgw_backend_canceled_total Attempts abandoned before a response was read per backend.\n")
	fmt.Fprintf(w, "# TYPE agcmgw_backend_canceled_total counter\n")
	cancBackends := make([]string, 0, len(m.backendCanceled))
	for b := range m.backendCanceled {
		cancBackends = append(cancBackends, b)
	}
	sort.Strings(cancBackends)
	for _, b := range cancBackends {
		fmt.Fprintf(w, "agcmgw_backend_canceled_total{backend=%q} %d\n", b, m.backendCanceled[b])
	}

	fmt.Fprintf(w, "# HELP agcmgw_breaker_transitions_total Circuit-breaker state changes per backend.\n")
	fmt.Fprintf(w, "# TYPE agcmgw_breaker_transitions_total counter\n")
	transBackends := make([]string, 0, len(m.breakerTransitions))
	for b := range m.breakerTransitions {
		transBackends = append(transBackends, b)
	}
	sort.Strings(transBackends)
	for _, b := range transBackends {
		byTrans := m.breakerTransitions[b]
		labels := make([]string, 0, len(byTrans))
		for t := range byTrans {
			labels = append(labels, t)
		}
		sort.Strings(labels)
		for _, t := range labels {
			fmt.Fprintf(w, "agcmgw_breaker_transitions_total{backend=%q,transition=%q} %d\n", b, t, byTrans[t])
		}
	}

	fmt.Fprintf(w, "# HELP agcmgw_retries_total Attempt retries (failovers and backend-saturation retries).\n")
	fmt.Fprintf(w, "# TYPE agcmgw_retries_total counter\n")
	fmt.Fprintf(w, "agcmgw_retries_total %d\n", m.retries)
	fmt.Fprintf(w, "# HELP agcmgw_retry_budget_exhausted_total Retries refused because the token-bucket budget was dry.\n")
	fmt.Fprintf(w, "# TYPE agcmgw_retry_budget_exhausted_total counter\n")
	fmt.Fprintf(w, "agcmgw_retry_budget_exhausted_total %d\n", m.retryExhausted)

	fmt.Fprintf(w, "# HELP agcmgw_hedges_total Hedged attempts by outcome.\n")
	fmt.Fprintf(w, "# TYPE agcmgw_hedges_total counter\n")
	hedgeResults := make([]string, 0, len(m.hedges))
	for k := range m.hedges {
		hedgeResults = append(hedgeResults, k)
	}
	sort.Strings(hedgeResults)
	for _, k := range hedgeResults {
		fmt.Fprintf(w, "agcmgw_hedges_total{result=%q} %d\n", k, m.hedges[k])
	}

	fmt.Fprintf(w, "# HELP agcmgw_probes_total Active health probes by verdict.\n")
	fmt.Fprintf(w, "# TYPE agcmgw_probes_total counter\n")
	probeResults := make([]string, 0, len(m.probes))
	for k := range m.probes {
		probeResults = append(probeResults, k)
	}
	sort.Strings(probeResults)
	for _, k := range probeResults {
		fmt.Fprintf(w, "agcmgw_probes_total{verdict=%q} %d\n", k, m.probes[k])
	}

	fmt.Fprintf(w, "# HELP agcmgw_backend_state Circuit-breaker state per backend (0 closed, 1 open, 2 half-open).\n")
	fmt.Fprintf(w, "# TYPE agcmgw_backend_state gauge\n")
	for _, b := range g.Backends {
		v := 0
		switch b.State {
		case BreakerOpen:
			v = 1
		case BreakerHalfOpen:
			v = 2
		}
		fmt.Fprintf(w, "agcmgw_backend_state{backend=%q} %d\n", b.ID, v)
	}
	fmt.Fprintf(w, "# HELP agcmgw_backend_ready Latest /readyz probe verdict per backend.\n")
	fmt.Fprintf(w, "# TYPE agcmgw_backend_ready gauge\n")
	for _, b := range g.Backends {
		v := 0
		if b.Ready {
			v = 1
		}
		fmt.Fprintf(w, "agcmgw_backend_ready{backend=%q} %d\n", b.ID, v)
	}
	fmt.Fprintf(w, "# HELP agcmgw_backend_inflight Requests currently in flight per backend.\n")
	fmt.Fprintf(w, "# TYPE agcmgw_backend_inflight gauge\n")
	for _, b := range g.Backends {
		fmt.Fprintf(w, "agcmgw_backend_inflight{backend=%q} %d\n", b.ID, b.Inflight)
	}
	fmt.Fprintf(w, "# HELP agcmgw_retry_budget_tokens Retry-budget tokens currently available.\n")
	fmt.Fprintf(w, "# TYPE agcmgw_retry_budget_tokens gauge\n")
	fmt.Fprintf(w, "agcmgw_retry_budget_tokens %s\n", strconv.FormatFloat(g.BudgetTokens, 'g', -1, 64))

	// Appended after the historical layout so pre-SLO scrapes keep their
	// exact byte prefix.
	fmt.Fprintf(w, "# HELP agcmgw_class_requests_total Validated client requests by SLO class.\n")
	fmt.Fprintf(w, "# TYPE agcmgw_class_requests_total counter\n")
	classes := make([]string, 0, len(m.classRequests))
	for k := range m.classRequests {
		classes = append(classes, k)
	}
	sort.Strings(classes)
	for _, k := range classes {
		fmt.Fprintf(w, "agcmgw_class_requests_total{class=%q} %d\n", k, m.classRequests[k])
	}
}
