package gateway

import (
	"math/rand"
	"sync"
	"time"
)

// retryBudget is the global token bucket that keeps retries from amplifying
// an outage.  Every accepted request deposits ratio tokens (capped at
// burst); every retry or hedge withdraws one whole token.  The retry volume
// is therefore bounded by ratio × traffic + burst no matter how badly the
// backends misbehave — when the budget is dry the gateway fails fast with
// whatever it has instead of piling on.
type retryBudget struct {
	mu     sync.Mutex
	tokens float64
	ratio  float64
	burst  float64
}

func newRetryBudget(ratio, burst float64) *retryBudget {
	// Start full: a cold gateway may retry its very first request.
	return &retryBudget{tokens: burst, ratio: ratio, burst: burst}
}

// Deposit credits the budget for one accepted request.
func (b *retryBudget) Deposit() {
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mu.Unlock()
}

// Tokens returns the balance (a /metrics gauge).
func (b *retryBudget) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}

// Take withdraws one retry token, reporting false when the budget is dry.
func (b *retryBudget) Take() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// backoff computes retry pacing: exponential in the attempt number with
// deterministic-seeded jitter, so two gateways started with the same seed
// and fed the same sequence produce the same delays (and tests can pin
// them).
type backoff struct {
	mu   sync.Mutex
	rng  *rand.Rand
	base time.Duration
	cap  time.Duration
}

func newBackoff(base, cap time.Duration, seed int64) *backoff {
	return &backoff{rng: rand.New(rand.NewSource(seed)), base: base, cap: cap}
}

// Delay returns the pause before retry number retry (1-based): base·2^(r−1)
// plus up to 50% jitter, clamped to the cap.
func (b *backoff) Delay(retry int) time.Duration {
	d := b.base << uint(retry-1)
	if d <= 0 || d > b.cap {
		d = b.cap
	}
	b.mu.Lock()
	j := time.Duration(b.rng.Int63n(int64(d)/2 + 1))
	b.mu.Unlock()
	if d+j > b.cap {
		return b.cap
	}
	return d + j
}
