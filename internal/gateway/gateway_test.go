package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"agcm/internal/core"
	"agcm/internal/server"
)

// reqJSON builds a valid /v1/run body (the gateway validates configs at the
// edge, so stubs still need real ones).
func reqJSON(px int, filter string, steps int) string {
	return fmt.Sprintf(`{"config":{"nlon":36,"nlat":24,"nlayers":3,"machine":"paragon",`+
		`"mesh_py":1,"mesh_px":%d,"filter":%q},"steps":%d}`, px, filter, steps)
}

// stubBackend fakes an agcmd: a scripted /v1/run handler plus conventional
// /readyz and /v1/cache handlers.
type stubBackend struct {
	ts    *httptest.Server
	ready atomic.Bool
	runs  atomic.Int64
	run   func(w http.ResponseWriter, r *http.Request)
	// cached, when non-empty, is served for every /v1/cache/{key} GET.
	cached atomic.Pointer[string]
}

func newStubBackend(run func(w http.ResponseWriter, r *http.Request)) *stubBackend {
	b := &stubBackend{run: run}
	b.ready.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", func(w http.ResponseWriter, r *http.Request) {
		b.runs.Add(1)
		b.run(w, r)
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !b.ready.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ready\n")
	})
	mux.HandleFunc("/v1/cache/", func(w http.ResponseWriter, r *http.Request) {
		if body := b.cached.Load(); body != nil && *body != "" {
			w.Header().Set("X-Agcmd-Cache", "peek")
			io.WriteString(w, *body)
			return
		}
		http.Error(w, "not cached", http.StatusNotFound)
	})
	b.ts = httptest.NewServer(mux)
	return b
}

func ok200(body string) func(w http.ResponseWriter, r *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, body)
	}
}

func always503(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "boom", http.StatusServiceUnavailable)
}

// newTestGateway builds a gateway over the stubs with probing disabled
// (tests drive health by hand) and fast backoff.
func newTestGateway(t *testing.T, opt Options, stubs ...*stubBackend) *Gateway {
	t.Helper()
	for _, s := range stubs {
		opt.Backends = append(opt.Backends, s.ts.URL)
	}
	if opt.ProbeInterval == 0 {
		opt.ProbeInterval = -1
	}
	if opt.BackoffBase == 0 {
		opt.BackoffBase = time.Millisecond
	}
	if opt.BackoffCap == 0 {
		opt.BackoffCap = 4 * time.Millisecond
	}
	g, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

func postGW(t *testing.T, url, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, raw
}

// TestRetryMasksBackendFailure: the primary backend answers 503; the retry
// layer must fail over to the healthy one and the client sees a clean 200.
func TestRetryMasksBackendFailure(t *testing.T) {
	bad := newStubBackend(always503)
	good := newStubBackend(ok200(`{"key":"k","report":{}}` + "\n"))
	defer bad.ts.Close()
	defer good.ts.Close()
	// round-robin starts at backend 0 (bad) for the first request.
	g := newTestGateway(t, Options{Policy: "round-robin"}, bad, good)
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	st, h, body := postGW(t, ts.URL, reqJSON(1, "fft", 1))
	if st != 200 {
		t.Fatalf("status %d, want 200 (failure must be masked): %s", st, body)
	}
	if got := h.Get("X-Agcmgw-Attempts"); got != "2" {
		t.Errorf("X-Agcmgw-Attempts = %q, want 2", got)
	}
	if g.metrics.Retries() != 1 {
		t.Errorf("retries = %d, want 1", g.metrics.Retries())
	}
	if bad.runs.Load() != 1 || good.runs.Load() != 1 {
		t.Errorf("backend runs = %d/%d, want 1/1", bad.runs.Load(), good.runs.Load())
	}
}

// TestBreakerOpensEjectsAndRecovers: repeated 503s open the primary's
// breaker (ejecting it from routing), and once it heals a half-open probe
// readmits it.
func TestBreakerOpensEjectsAndRecovers(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	flaky := newStubBackend(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			always503(w, r)
			return
		}
		ok200(`{"ok":true}` + "\n")(w, r)
	})
	good := newStubBackend(ok200(`{"ok":true}` + "\n"))
	defer flaky.ts.Close()
	defer good.ts.Close()
	g := newTestGateway(t, Options{
		Policy:        "round-robin",
		FailThreshold: 2,
		OpenFor:       300 * time.Millisecond,
	}, flaky, good)
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	// Two failed attempts trip the breaker; each request still succeeds via
	// the healthy backend.
	for i := 0; i < 2; i++ {
		if st, _, b := postGW(t, ts.URL, reqJSON(1, "fft", 1)); st != 200 {
			t.Fatalf("request %d: status %d: %s", i, st, b)
		}
	}
	if got := g.backends[0].breaker.State(); got != BreakerOpen {
		t.Fatalf("breaker state %v, want open after %d failures", got, 2)
	}
	// While open, round-robin's turn on the flaky backend is skipped: no new
	// attempts land on it.
	before := flaky.runs.Load()
	for i := 0; i < 4; i++ {
		if st, _, _ := postGW(t, ts.URL, reqJSON(1, "fft", 1)); st != 200 {
			t.Fatalf("request during ejection: status %d", st)
		}
	}
	if got := flaky.runs.Load(); got != before {
		t.Fatalf("ejected backend received %d new requests", got-before)
	}

	// Heal it, wait out the open interval: the next attempt through is the
	// probe and readmission follows.
	failing.Store(false)
	time.Sleep(350 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for g.backends[0].breaker.State() != BreakerClosed {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never closed; state %v", g.backends[0].breaker.State())
		}
		if st, _, _ := postGW(t, ts.URL, reqJSON(1, "fft", 1)); st != 200 {
			t.Fatalf("request during recovery: status %d", st)
		}
	}
	if n := g.metrics.BreakerTransitions(); n < 3 {
		t.Errorf("breaker transitions = %d, want >= 3 (trip, probe, close)", n)
	}
}

// TestSaturationCooldown: a backend's 429 Retry-After becomes a routing
// cooldown — the next request goes elsewhere without burning an attempt on
// the saturated shard.
func TestSaturationCooldown(t *testing.T) {
	busy := newStubBackend(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "60")
		http.Error(w, "queue full", http.StatusTooManyRequests)
	})
	good := newStubBackend(ok200(`{"ok":true}` + "\n"))
	defer busy.ts.Close()
	defer good.ts.Close()
	g := newTestGateway(t, Options{Policy: "round-robin"}, busy, good)
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	if st, _, _ := postGW(t, ts.URL, reqJSON(1, "fft", 1)); st != 200 {
		t.Fatalf("first request not masked")
	}
	if busy.runs.Load() != 1 {
		t.Fatalf("busy backend saw %d requests, want 1", busy.runs.Load())
	}
	// The breaker must NOT have tripped — saturation is not ill health.
	if got := g.backends[0].breaker.State(); got != BreakerClosed {
		t.Fatalf("breaker %v after 429, want closed", got)
	}
	// Round-robin would start at the busy backend again, but the cooldown
	// steers around it with zero extra attempts.
	st, h, _ := postGW(t, ts.URL, reqJSON(2, "fft", 1))
	if st != 200 || h.Get("X-Agcmgw-Attempts") != "1" {
		t.Fatalf("cooldown not honored: status %d attempts %s", st, h.Get("X-Agcmgw-Attempts"))
	}
	if busy.runs.Load() != 1 {
		t.Fatalf("saturated backend was retried during its Retry-After window")
	}
}

// TestRetryBudgetBoundsAmplification: with every backend failing, the
// token bucket caps total retries no matter how many requests arrive.
func TestRetryBudgetBoundsAmplification(t *testing.T) {
	b1 := newStubBackend(always503)
	b2 := newStubBackend(always503)
	defer b1.ts.Close()
	defer b2.ts.Close()
	g := newTestGateway(t, Options{
		Policy:     "round-robin",
		RetryMax:   4,
		RetryRatio: 0.1,
		RetryBurst: 3,
	}, b1, b2)
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	const n = 20
	for i := 0; i < n; i++ {
		st, _, _ := postGW(t, ts.URL, reqJSON(1, "fft", 1))
		if st != http.StatusServiceUnavailable && st != http.StatusTooManyRequests {
			t.Fatalf("request %d: status %d, want 503/429", i, st)
		}
	}
	// Budget bound: burst (3) + deposits (n × 0.1 = 2) = 5 retries max.
	maxRetries := uint64(3 + n/10)
	if got := g.metrics.Retries(); got > maxRetries {
		t.Fatalf("retries = %d, want <= %d (budget must bound amplification)", got, maxRetries)
	}
	if g.metrics.Request("shed") != n {
		t.Errorf("shed = %d, want %d", g.metrics.Request("shed"), n)
	}
	attempts := b1.runs.Load() + b2.runs.Load()
	if attempts > int64(n)+int64(maxRetries) {
		t.Fatalf("backends saw %d attempts for %d requests: amplification", attempts, n)
	}
}

// TestDegradedServeFromAnyCache: when no backend can run the job, a cached
// copy anywhere in the cluster still answers — 200, marked degraded.
func TestDegradedServeFromAnyCache(t *testing.T) {
	down := newStubBackend(always503)
	holder := newStubBackend(always503)
	cached := `{"key":"abc","report":{"total_s_day":1}}` + "\n"
	holder.cached.Store(&cached)
	defer down.ts.Close()
	defer holder.ts.Close()
	g := newTestGateway(t, Options{Policy: "key-affinity", RetryMax: 1, RetryBurst: 1, RetryRatio: 0.01}, down, holder)
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	st, h, body := postGW(t, ts.URL, reqJSON(1, "fft", 1))
	if st != 200 {
		t.Fatalf("status %d, want 200 (degraded serve): %s", st, body)
	}
	if h.Get("X-Agcmgw-Degraded") != "1" {
		t.Errorf("missing X-Agcmgw-Degraded header")
	}
	if string(body) != cached {
		t.Errorf("degraded body %q, want the cached bytes", body)
	}
	if g.metrics.Request("degraded") != 1 {
		t.Errorf("degraded counter = %d, want 1", g.metrics.Request("degraded"))
	}
}

// TestHedgingRacesSecondShard: a high-priority request on a slow primary is
// hedged onto the next shard after the hedge delay, and the faster response
// wins.
func TestHedgingRacesSecondShard(t *testing.T) {
	slowBody := `{"who":"slow"}` + "\n"
	fastBody := `{"who":"fast"}` + "\n"
	release := make(chan struct{})
	slow := newStubBackend(func(w http.ResponseWriter, r *http.Request) {
		<-release
		io.WriteString(w, slowBody)
	})
	fast := newStubBackend(ok200(fastBody))
	defer slow.ts.Close()
	defer fast.ts.Close()
	defer close(release)

	// Make the slow stub the deterministic primary: key-affinity ranks by
	// (url, key), so find a filter whose key lands on it.
	g := newTestGateway(t, Options{Policy: "key-affinity", HedgeDelay: 5 * time.Millisecond}, slow, fast)
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	slowIdx := 0
	if g.backends[0].url != slow.ts.URL {
		slowIdx = 1
	}
	body := ""
	for px := 1; px <= 16; px++ {
		cand := fmt.Sprintf(`{"config":{"nlon":36,"nlat":24,"nlayers":3,"machine":"paragon",`+
			`"mesh_py":1,"mesh_px":%d,"filter":"fft"},"steps":1,"priority":"high"}`, px)
		key := keyForBody(t, cand)
		if g.policy.Order(key, g.backends)[0] == slowIdx {
			body = cand
			break
		}
	}
	if body == "" {
		t.Fatal("no candidate key ranked the slow backend first")
	}

	st, _, raw := postGW(t, ts.URL, body)
	if st != 200 {
		t.Fatalf("status %d: %s", st, raw)
	}
	if string(raw) != fastBody {
		t.Fatalf("winner body %q, want the hedged shard's %q", raw, fastBody)
	}
	if g.metrics.Hedge("launched") != 1 || g.metrics.Hedge("won") != 1 {
		t.Errorf("hedges launched/won = %d/%d, want 1/1",
			g.metrics.Hedge("launched"), g.metrics.Hedge("won"))
	}
}

// keyForBody computes the job key the way the gateway does.
func keyForBody(t *testing.T, body string) string {
	t.Helper()
	var req request
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	cfg, err := core.ConfigFromCanonicalJSON(req.Config)
	if err != nil {
		t.Fatal(err)
	}
	key, err := server.JobKeyFor(cfg, req.Steps)
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// TestProbeEjectionAndReadmission: the active prober flips a backend's
// ready bit on /readyz failures and back on recovery, steering traffic
// without waiting for request failures.
func TestProbeEjectionAndReadmission(t *testing.T) {
	a := newStubBackend(ok200(`{"who":"a"}` + "\n"))
	b := newStubBackend(ok200(`{"who":"b"}` + "\n"))
	defer a.ts.Close()
	defer b.ts.Close()
	g := newTestGateway(t, Options{Policy: "round-robin", ProbeInterval: 5 * time.Millisecond}, a, b)
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	a.ready.Store(false)
	deadline := time.Now().Add(2 * time.Second)
	for g.backends[0].ready.Load() {
		if time.Now().After(deadline) {
			t.Fatal("prober never ejected the not-ready backend")
		}
		time.Sleep(time.Millisecond)
	}
	before := a.runs.Load()
	for i := 0; i < 4; i++ {
		if st, _, _ := postGW(t, ts.URL, reqJSON(1, "fft", 1)); st != 200 {
			t.Fatalf("request while ejected: %d", st)
		}
	}
	if got := a.runs.Load(); got != before {
		t.Fatalf("not-ready backend received %d requests", got-before)
	}

	a.ready.Store(true)
	deadline = time.Now().Add(2 * time.Second)
	for !g.backends[0].ready.Load() {
		if time.Now().After(deadline) {
			t.Fatal("prober never readmitted the recovered backend")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestGatewayRejectsGarbageAtTheEdge: invalid requests never reach a
// backend.
func TestGatewayRejectsGarbageAtTheEdge(t *testing.T) {
	b := newStubBackend(ok200(`{"ok":true}` + "\n"))
	defer b.ts.Close()
	g := newTestGateway(t, Options{}, b)
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	for i, c := range []string{
		`{`,
		`{"steps":1}`,
		`{"config":{"machine":"nope","nlon":36,"nlat":24,"nlayers":3,"mesh_py":1,"mesh_px":1}}`,
		`{"config":{"nlon":36,"nlat":24,"nlayers":3,"machine":"paragon","mesh_py":1,"mesh_px":1},"steps":-2}`,
		`{"config":{"nlon":36,"nlat":24,"nlayers":3,"machine":"paragon","mesh_py":1,"mesh_px":1},"priority":"zz"}`,
	} {
		if st, _, _ := postGW(t, ts.URL, c); st != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, st)
		}
	}
	if b.runs.Load() != 0 {
		t.Errorf("garbage reached a backend")
	}
	if g.metrics.Request("rejected") != 5 {
		t.Errorf("rejected = %d, want 5", g.metrics.Request("rejected"))
	}
}

// TestMetricsDeterministicEmission: two scrapes of identical state are
// byte-identical (sorted labels, fixed family order).
func TestMetricsDeterministicEmission(t *testing.T) {
	m := newGatewayMetrics()
	m.IncRequest("ok")
	m.IncRequest("shed")
	m.IncBackendResponse("http://b", 200)
	m.IncBackendResponse("http://a", 503)
	m.IncBackendError("http://a")
	m.IncBreakerTransition("http://a", "closed->open")
	m.IncRetry()
	m.IncHedge("launched")
	m.IncProbe(true)
	g := gatewayGauges{
		Backends: []backendGauges{
			{ID: "http://a", State: BreakerOpen, Ready: false, Inflight: 1},
			{ID: "http://b", State: BreakerClosed, Ready: true, Inflight: 0},
		},
		BudgetTokens: 7.5,
	}
	var buf1, buf2 strings.Builder
	m.WriteText(&buf1, g)
	m.WriteText(&buf2, g)
	if buf1.String() != buf2.String() {
		t.Fatal("two scrapes of identical state differ")
	}
	for _, want := range []string{
		`agcmgw_requests_total{result="ok"} 1`,
		`agcmgw_backend_responses_total{backend="http://a",code="503"} 1`,
		`agcmgw_breaker_transitions_total{backend="http://a",transition="closed->open"} 1`,
		`agcmgw_backend_state{backend="http://a"} 1`,
		`agcmgw_retry_budget_tokens 7.5`,
	} {
		if !strings.Contains(buf1.String(), want) {
			t.Errorf("metrics missing %q:\n%s", want, buf1.String())
		}
	}
}

// TestCloseCancelsInflightHedgeAttempts is the regression test for the
// goleak finding on the hedge path: the two attempt goroutines and the
// loser-reaper used to be invisible to Close — it returned while they were
// still blocked on backends, holding the client's context as their only way
// out.  Close must now cancel both in-flight attempts (through the gateway's
// root context) and join all three goroutines before returning.
func TestCloseCancelsInflightHedgeAttempts(t *testing.T) {
	var reqN, canceledN atomic.Int64
	// The first two /v1/run requests — the primary and its hedge — stall
	// until the server sees their context canceled; anything after (the
	// retry following Close) succeeds immediately so the client goroutine
	// finishes fast.
	stall := func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so net/http starts its background connection read;
		// without it the server never notices the client abort and
		// r.Context() is never canceled.
		io.Copy(io.Discard, r.Body)
		if reqN.Add(1) <= 2 {
			<-r.Context().Done()
			canceledN.Add(1)
			return
		}
		io.WriteString(w, `{"who":"late"}`+"\n")
	}
	b1 := newStubBackend(stall)
	b2 := newStubBackend(stall)
	defer b1.ts.Close()
	defer b2.ts.Close()

	g, err := New(Options{
		Backends:       []string{b1.ts.URL, b2.ts.URL},
		Policy:         "round-robin",
		ProbeInterval:  -1,
		HedgeDelay:     time.Millisecond,
		AttemptTimeout: 30 * time.Second,
		BackoffBase:    time.Millisecond,
		BackoffCap:     2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	body := `{"config":{"nlon":36,"nlat":24,"nlayers":3,"machine":"paragon",` +
		`"mesh_py":1,"mesh_px":1,"filter":"fft"},"steps":1,"priority":"high"}`
	clientDone := make(chan struct{})
	go func() {
		defer close(clientDone)
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/run", strings.NewReader(body))
		if err != nil {
			return
		}
		req.Header.Set("Content-Type", "application/json")
		if resp, err := http.DefaultClient.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	// Wait until the hedge is launched and both attempts are parked on the
	// backends.
	deadline := time.Now().Add(5 * time.Second)
	for g.metrics.Hedge("launched") < 1 || reqN.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("hedge never got in flight: launched=%d backends hit=%d",
				g.metrics.Hedge("launched"), reqN.Load())
		}
		time.Sleep(time.Millisecond)
	}

	closed := make(chan struct{})
	go func() {
		g.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(3 * time.Second):
		t.Fatal("Close did not return while hedge attempts were in flight")
	}

	// Close's root-context cancellation must have reached both parked
	// attempts — well before the client's own 20s context could.
	deadline = time.Now().Add(2 * time.Second)
	for canceledN.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("after Close, %d of 2 in-flight hedge attempts were canceled; the goroutines leaked past Close",
				canceledN.Load())
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-clientDone:
	case <-time.After(5 * time.Second):
		t.Fatal("client request did not finish after Close")
	}
}

// TestCloseDoesNotAwaitSlowProbe is the regression test for the ctxflow
// finding in probeOne: probes derived from context.Background(), so Close —
// which joins the prober — blocked for up to ProbeTimeout behind a probe of
// a slow or dead backend.  With probes derived from the gateway's root
// context, Close cancels the in-flight probe and returns immediately.
func TestCloseDoesNotAwaitSlowProbe(t *testing.T) {
	probeStarted := make(chan struct{}, 1)
	var probeCanceled atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		select {
		case probeStarted <- struct{}{}:
		default:
		}
		<-r.Context().Done()
		probeCanceled.Add(1)
	})
	slow := httptest.NewServer(mux)
	defer slow.Close()

	g, err := New(Options{
		Backends:      []string{slow.URL},
		ProbeInterval: 2 * time.Millisecond,
		ProbeTimeout:  30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	select {
	case <-probeStarted:
	case <-time.After(5 * time.Second):
		t.Fatal("prober never issued a probe")
	}

	start := time.Now()
	closed := make(chan struct{})
	go func() {
		g.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(3 * time.Second):
		t.Fatal("Close blocked behind an in-flight probe of a slow backend")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Close took %v, must not wait out ProbeTimeout", elapsed)
	}
	deadline := time.Now().Add(2 * time.Second)
	for probeCanceled.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("the in-flight probe was never canceled by Close")
		}
		time.Sleep(time.Millisecond)
	}
}
