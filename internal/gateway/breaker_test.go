package gateway

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is an injectable clock for breaker tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// breakerStep is one operation in a table-driven transition scenario.
type breakerStep struct {
	op        string        // "ok", "fail", "okProbe", "failProbe", "advance", "allow", "deny", "forgiveProbe"
	d         time.Duration // for "advance"
	wantState BreakerState  // checked after the op
	wantProbe bool          // for "allow": expected probe flag
}

// TestBreakerTransitions drives the state machine through every documented
// transition: closed→open at the failure threshold, open→half-open after
// the open interval, half-open→closed on probe success (readmission),
// half-open→open on probe failure, plus the guards — success resets the
// consecutive count, stale non-probe results cannot move a half-open
// breaker, and the half-open slot admits exactly one probe.
func TestBreakerTransitions(t *testing.T) {
	const openFor = 10 * time.Second
	cases := []struct {
		name      string
		threshold int
		steps     []breakerStep
	}{
		{
			name:      "closed opens at threshold",
			threshold: 3,
			steps: []breakerStep{
				{op: "fail", wantState: BreakerClosed},
				{op: "fail", wantState: BreakerClosed},
				{op: "fail", wantState: BreakerOpen},
				{op: "deny", wantState: BreakerOpen},
			},
		},
		{
			name:      "success resets the consecutive count",
			threshold: 2,
			steps: []breakerStep{
				{op: "fail", wantState: BreakerClosed},
				{op: "ok", wantState: BreakerClosed},
				{op: "fail", wantState: BreakerClosed},
				{op: "ok", wantState: BreakerClosed},
				{op: "fail", wantState: BreakerClosed},
				{op: "fail", wantState: BreakerOpen},
			},
		},
		{
			name:      "open admits a probe after the interval, success closes",
			threshold: 1,
			steps: []breakerStep{
				{op: "fail", wantState: BreakerOpen},
				{op: "deny", wantState: BreakerOpen},
				{op: "advance", d: openFor, wantState: BreakerHalfOpen},
				{op: "allow", wantProbe: true, wantState: BreakerHalfOpen},
				{op: "deny", wantState: BreakerHalfOpen}, // single probe slot
				{op: "okProbe", wantState: BreakerClosed},
				{op: "allow", wantProbe: false, wantState: BreakerClosed},
			},
		},
		{
			name:      "half-open probe failure re-opens",
			threshold: 1,
			steps: []breakerStep{
				{op: "fail", wantState: BreakerOpen},
				{op: "advance", d: openFor, wantState: BreakerHalfOpen},
				{op: "allow", wantProbe: true, wantState: BreakerHalfOpen},
				{op: "failProbe", wantState: BreakerOpen},
				{op: "deny", wantState: BreakerOpen},
				// A second full cycle still works: the re-opened interval
				// restarts from the probe failure.
				{op: "advance", d: openFor, wantState: BreakerHalfOpen},
				{op: "allow", wantProbe: true, wantState: BreakerHalfOpen},
				{op: "okProbe", wantState: BreakerClosed},
			},
		},
		{
			name:      "stale non-probe results cannot move a half-open breaker",
			threshold: 1,
			steps: []breakerStep{
				{op: "fail", wantState: BreakerOpen},
				{op: "advance", d: openFor, wantState: BreakerHalfOpen},
				{op: "allow", wantProbe: true, wantState: BreakerHalfOpen},
				{op: "ok", wantState: BreakerHalfOpen},   // late success from before the trip
				{op: "fail", wantState: BreakerHalfOpen}, // late failure likewise
				{op: "okProbe", wantState: BreakerClosed},
			},
		},
		{
			name:      "forgiven probe frees the slot without a verdict",
			threshold: 1,
			steps: []breakerStep{
				{op: "fail", wantState: BreakerOpen},
				{op: "advance", d: openFor, wantState: BreakerHalfOpen},
				{op: "allow", wantProbe: true, wantState: BreakerHalfOpen},
				{op: "forgiveProbe", wantState: BreakerHalfOpen},
				{op: "allow", wantProbe: true, wantState: BreakerHalfOpen},
				{op: "okProbe", wantState: BreakerClosed},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clock := newFakeClock()
			b := newBreaker(tc.threshold, openFor, clock.Now)
			for i, st := range tc.steps {
				switch st.op {
				case "ok":
					b.Record(true, false)
				case "fail":
					b.Record(false, false)
				case "okProbe":
					b.Record(true, true)
				case "failProbe":
					b.Record(false, true)
				case "forgiveProbe":
					b.Forgive(true)
				case "advance":
					clock.Advance(st.d)
				case "allow":
					ok, probe := b.Allow()
					if !ok {
						t.Fatalf("step %d: Allow refused, want admitted", i)
					}
					if probe != st.wantProbe {
						t.Fatalf("step %d: probe = %v, want %v", i, probe, st.wantProbe)
					}
				case "deny":
					if ok, _ := b.Allow(); ok {
						t.Fatalf("step %d: Allow admitted, want refused", i)
					}
				default:
					t.Fatalf("step %d: unknown op %q", i, st.op)
				}
				if got := b.State(); got != st.wantState {
					t.Fatalf("step %d (%s): state = %v, want %v", i, st.op, got, st.wantState)
				}
			}
		})
	}
}

// TestBreakerTransitionCallback: every state change is observed exactly
// once, in order.
func TestBreakerTransitionCallback(t *testing.T) {
	clock := newFakeClock()
	b := newBreaker(2, time.Second, clock.Now)
	var seen []string
	var mu sync.Mutex
	b.onTransition = func(from, to BreakerState) {
		mu.Lock()
		seen = append(seen, from.String()+"->"+to.String())
		mu.Unlock()
	}
	b.Record(false, false)
	b.Record(false, false) // trips
	clock.Advance(time.Second)
	if ok, probe := b.Allow(); !ok || !probe {
		t.Fatalf("expected the half-open probe slot, got ok=%v probe=%v", ok, probe)
	}
	b.Record(true, true) // readmits
	want := []string{"closed->open", "open->half-open", "half-open->closed"}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != len(want) {
		t.Fatalf("transitions = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q", i, seen[i], want[i])
		}
	}
}

// TestBreakerConcurrentRecorders hammers one breaker from many goroutines
// mixing successes, failures, Allow claims, and clock advances — the -race
// guard for the state machine.  Invariants checked throughout: State is
// always one of the three values, and the transition callback only reports
// legal edges.
func TestBreakerConcurrentRecorders(t *testing.T) {
	clock := newFakeClock()
	b := newBreaker(3, time.Millisecond, clock.Now)
	var illegal atomic.Int64
	legal := map[string]bool{
		"closed->open":      true,
		"open->half-open":   true,
		"half-open->closed": true,
		"half-open->open":   true,
	}
	b.onTransition = func(from, to BreakerState) {
		if !legal[from.String()+"->"+to.String()] {
			illegal.Add(1)
		}
	}
	const goroutines = 8
	const iters = 2000
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (gi + i) % 5 {
				case 0:
					b.Record(true, false)
				case 1:
					b.Record(false, false)
				case 2:
					if ok, probe := b.Allow(); ok {
						b.Record(i%2 == 0, probe)
					}
				case 3:
					clock.Advance(time.Millisecond / 4)
				case 4:
					if s := b.State(); s != BreakerClosed && s != BreakerOpen && s != BreakerHalfOpen {
						illegal.Add(1)
					}
				}
			}
		}(gi)
	}
	wg.Wait()
	if n := illegal.Load(); n != 0 {
		t.Fatalf("%d illegal states/transitions observed", n)
	}
	// The machine must still function after the storm: drive it to a known
	// state.
	for i := 0; i < 10; i++ {
		b.Record(false, false)
	}
	clock.Advance(time.Second)
	if ok, probe := b.Allow(); ok && probe {
		b.Record(true, true)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("post-storm recovery failed: state %v", got)
	}
}
